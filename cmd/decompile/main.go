// Command decompile runs the project's compile→decompile pipeline on a
// mini-C source file, optionally applying DIRTY-style name recovery.
//
// Usage:
//
//	decompile [-annotate] [-ir] [-func NAME] [-types a,b,c] FILE
//	decompile -snippet AEEK [-annotate] [-ir]
//
// With -snippet it operates on one of the embedded study snippets instead
// of a file. -ir prints the intermediate representation instead of
// pseudo-C; -annotate applies the corpus-trained recovery model (or the
// paper-faithful overrides for snippets).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"decompstudy/internal/compile"
	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/namerec"
)

func main() {
	os.Exit(run())
}

func run() int {
	annotate := flag.Bool("annotate", false, "apply name/type recovery to the decompiled output")
	showIR := flag.Bool("ir", false, "print the intermediate representation instead of pseudo-C")
	funcName := flag.String("func", "", "only process the named function")
	typeList := flag.String("types", "", "comma-separated extra type names for the parser")
	snippet := flag.String("snippet", "", "operate on an embedded study snippet (AEEK, BAPL, POSTORDER, TC)")
	flag.Parse()

	if *snippet != "" {
		return runSnippet(*snippet, *annotate, *showIR)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: decompile [flags] FILE  (or -snippet ID)")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
		return 1
	}
	var extra []string
	if *typeList != "" {
		extra = strings.Split(*typeList, ",")
	}
	file, err := csrc.Parse(string(src), extra)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
		return 1
	}
	obj, err := compile.Compile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
		return 1
	}

	var annotator *namerec.Annotator
	if *annotate {
		training, err := corpus.TrainingFiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
			return 1
		}
		model, err := namerec.TrainModel(training)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
			return 1
		}
		annotator = &namerec.Annotator{Model: model}
	}

	for _, fn := range obj.Funcs {
		if *funcName != "" && fn.Name != *funcName {
			continue
		}
		if *showIR {
			fmt.Println(fn.String())
			continue
		}
		d, err := decomp.LiftFunc(fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decompile: %s: %v\n", fn.Name, err)
			return 1
		}
		if annotator != nil {
			a, err := annotator.Annotate(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "decompile: %s: %v\n", fn.Name, err)
				return 1
			}
			fmt.Println(a.Source())
			continue
		}
		fmt.Println(d.Source())
	}
	return 0
}

func runSnippet(id string, annotate, showIR bool) int {
	s, ok := corpus.SnippetByID(strings.ToUpper(id))
	if !ok {
		fmt.Fprintf(os.Stderr, "decompile: unknown snippet %q (want AEEK, BAPL, POSTORDER, TC)\n", id)
		return 2
	}
	if showIR {
		file, err := s.Parse()
		if err != nil {
			fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
			return 1
		}
		obj, err := compile.Compile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
			return 1
		}
		cf, ok := obj.Func0(s.FuncName)
		if !ok {
			fmt.Fprintf(os.Stderr, "decompile: %s missing %s\n", s.ID, s.FuncName)
			return 1
		}
		fmt.Println(cf.String())
		return 0
	}
	p, err := corpus.Prepare(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decompile: %v\n", err)
		return 1
	}
	if annotate {
		fmt.Println(p.Dirty.Source())
	} else {
		fmt.Println(p.HexRays.Source())
	}
	return 0
}

// Command decompile runs the project's compile→decompile pipeline on a
// mini-C source file, optionally applying DIRTY-style name recovery.
//
// Usage:
//
//	decompile [-annotate] [-ir] [-opt N] [-func NAME] [-types a,b,c] FILE
//	decompile -snippet AEEK [-annotate] [-ir] [-opt N]
//
// With -snippet it operates on one of the embedded study snippets instead
// of a file. -ir prints the intermediate representation instead of
// pseudo-C; -annotate applies the corpus-trained recovery model (or the
// paper-faithful overrides for snippets); -opt runs the verified
// optimizer (internal/compile/opt) at the given level first, so the
// decompiled output shows what survives -O1/-O2.
//
// Observability flags: -stats prints the per-stage timing tree and a
// metrics snapshot to stderr, -trace writes a Chrome trace-event JSON
// file, -v / -log-level enable structured logging, -cpuprofile /
// -memprofile write pprof profiles, and -debug-addr serves the live
// /debug HTTP surface for the duration of the run.
//
// -model-cache DIR persists the recovery model to a content-addressed
// on-disk store so repeated -annotate runs skip training;
// -no-model-cache trains fresh every run. Output is identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"decompstudy/internal/compile"
	"decompstudy/internal/compile/opt"
	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/fault"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/namerec"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("decompile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	annotate := fs.Bool("annotate", false, "apply name/type recovery to the decompiled output")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "worker count for pipeline fan-outs (results are identical at any value)")
	showIR := fs.Bool("ir", false, "print the intermediate representation instead of pseudo-C")
	optLevel := fs.Int("opt", 0, "optimization level (0-2) applied to the IR before decompiling")
	funcName := fs.String("func", "", "only process the named function")
	typeList := fs.String("types", "", "comma-separated extra type names for the parser")
	snippet := fs.String("snippet", "", "operate on an embedded study snippet (AEEK, BAPL, POSTORDER, TC)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file of the pipeline spans")
	stats := fs.Bool("stats", false, "print the per-stage timing tree and metrics snapshot to stderr")
	verbose := fs.Bool("v", false, "enable debug logging (shorthand for -log-level debug)")
	logLevel := fs.String("log-level", "", "structured log level: debug, info, warn, error")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	faults := fs.String("faults", "", "fault-injection plan, e.g. 'seed=1; csrc.parse:error' (see internal/fault)")
	retryBudget := fs.Int("retry-budget", fault.DefaultRetryBudget, "per-run retry budget for transient injected faults")
	debugAddr := fs.String("debug-addr", "", "serve live /debug endpoints (metrics, spans, stage, pprof) on this address; port 0 picks a free port")
	debugSample := fs.Duration("debug-sample", obs.DefaultSampleInterval, "runtime sampling interval for the /debug metrics gauges")
	modelCache := fs.String("model-cache", "", "persist trained models to this directory, content-addressed (reruns skip training)")
	noModelCache := fs.Bool("no-model-cache", false, "disable the in-process model store; every run trains fresh")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	level, err := opt.ParseLevel(*optLevel)
	if err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 2
	}
	store, err := modelstore.FromFlags(*modelCache, *noModelCache)
	if err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 2
	}

	ctx, finish, ecode := setupObs(obsOptions{
		trace: *tracePath, stats: *stats, verbose: *verbose,
		logLevel: *logLevel, cpuprofile: *cpuprofile, memprofile: *memprofile,
		debugAddr: *debugAddr, debugSample: *debugSample,
	}, "decompile", stderr)
	if ecode != 0 {
		return ecode
	}
	ctx = par.WithJobs(ctx, *jobs)
	if store != nil {
		ctx = modelstore.With(ctx, store)
	}
	ctx, ecode = setupFaults(ctx, *faults, *retryBudget, "decompile", stderr)
	if ecode != 0 {
		return ecode
	}
	defer func() {
		if err := finish(); err != nil && code == 0 {
			code = 1
		}
	}()

	if *snippet != "" {
		return runSnippet(ctx, *snippet, level, *annotate, *showIR, stdout, stderr)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: decompile [flags] FILE  (or -snippet ID)")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 1
	}
	var extra []string
	if *typeList != "" {
		extra = strings.Split(*typeList, ",")
	}
	file, err := csrc.ParseCtx(ctx, string(src), extra)
	if err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 1
	}
	obj, err := compile.CompileCtx(ctx, file)
	if err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 1
	}
	if obj, err = optimize(ctx, obj, level); err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 1
	}

	var annotator *namerec.Annotator
	if *annotate {
		model, err := recoveryModel(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "decompile: %v\n", err)
			return 1
		}
		annotator = &namerec.Annotator{Model: model}
	}

	for _, fn := range obj.Funcs {
		if *funcName != "" && fn.Name != *funcName {
			continue
		}
		if *showIR {
			fmt.Fprintln(stdout, fn.String())
			continue
		}
		d, err := decomp.LiftFuncCtx(ctx, fn)
		if err != nil {
			fmt.Fprintf(stderr, "decompile: %s: %v\n", fn.Name, err)
			return 1
		}
		if annotator != nil {
			a, err := annotator.AnnotateCtx(ctx, d)
			if err != nil {
				fmt.Fprintf(stderr, "decompile: %s: %v\n", fn.Name, err)
				return 1
			}
			fmt.Fprintln(stdout, a.Source())
			continue
		}
		fmt.Fprintln(stdout, d.Source())
	}
	return 0
}

// recoveryModel trains (or, with a store in the context, loads) the
// corpus-trained name recovery model.
func recoveryModel(ctx context.Context) (*namerec.Model, error) {
	if st := modelstore.From(ctx); st != nil {
		return st.NamerecModel(ctx, corpus.TrainingSources(), corpus.TrainingFiles)
	}
	training, err := corpus.TrainingFiles()
	if err != nil {
		return nil, err
	}
	return namerec.TrainModelCtx(ctx, training)
}

// optimize runs the object through the verified optimizer when level is
// above -O0 (the identity, where the object passes through untouched).
func optimize(ctx context.Context, obj *compile.Object, level opt.Level) (*compile.Object, error) {
	out, _, err := opt.OptimizeObject(ctx, obj, level)
	return out, err
}

func runSnippet(ctx context.Context, id string, level opt.Level, annotate, showIR bool, stdout, stderr io.Writer) int {
	s, ok := corpus.SnippetByID(strings.ToUpper(id))
	if !ok {
		fmt.Fprintf(stderr, "decompile: unknown snippet %q (want AEEK, BAPL, POSTORDER, TC)\n", id)
		return 2
	}
	if showIR {
		file, err := s.Parse()
		if err != nil {
			fmt.Fprintf(stderr, "decompile: %v\n", err)
			return 1
		}
		obj, err := compile.CompileCtx(ctx, file)
		if err != nil {
			fmt.Fprintf(stderr, "decompile: %v\n", err)
			return 1
		}
		if obj, err = optimize(ctx, obj, level); err != nil {
			fmt.Fprintf(stderr, "decompile: %v\n", err)
			return 1
		}
		cf, ok := obj.Func0(s.FuncName)
		if !ok {
			fmt.Fprintf(stderr, "decompile: %s missing %s\n", s.ID, s.FuncName)
			return 1
		}
		fmt.Fprintln(stdout, cf.String())
		return 0
	}
	p, err := corpus.PrepareOptCtx(ctx, s, level)
	if err != nil {
		fmt.Fprintf(stderr, "decompile: %v\n", err)
		return 1
	}
	if annotate {
		fmt.Fprintln(stdout, p.Dirty.Source())
	} else {
		fmt.Fprintln(stdout, p.HexRays.Source())
	}
	return 0
}

// setupFaults arms deterministic fault injection from a -faults plan spec
// and attaches a run manifest. A non-zero code means the spec was invalid.
func setupFaults(ctx context.Context, spec string, retryBudget int, prog string, stderr io.Writer) (context.Context, int) {
	ctx = fault.WithManifest(ctx, fault.NewManifest())
	if spec == "" {
		return ctx, 0
	}
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return ctx, 2
	}
	return fault.With(ctx, fault.NewInjector(plan, retryBudget)), 0
}

// obsOptions collects the shared observability flag values.
type obsOptions struct {
	trace, logLevel        string
	stats, verbose         bool
	cpuprofile, memprofile string
	debugAddr              string
	debugSample            time.Duration
}

// setupObs builds the telemetry handle for a CLI run and returns the
// context to thread through the pipeline plus a finish func that flushes
// the trace file, stats report, and profiles. A non-zero code means a flag
// was invalid and the caller should exit with it. With debugAddr set the
// run also gets a live /debug HTTP surface plus a runtime sampler, both
// shut down by finish.
func setupObs(opt obsOptions, prog string, stderr io.Writer) (context.Context, func() error, int) {
	o := &obs.Obs{}
	if opt.trace != "" || opt.stats || opt.debugAddr != "" {
		o.Trace = obs.NewCollector()
		o.Metrics = obs.NewRegistry()
	}
	if opt.verbose || opt.logLevel != "" {
		level := slog.LevelDebug
		if opt.logLevel != "" {
			var err error
			level, err = obs.ParseLevel(opt.logLevel)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", prog, err)
				return nil, nil, 2
			}
		}
		o.Log = obs.NewLogger(stderr, level)
	}
	ctx := obs.With(context.Background(), o)

	var sampler *obs.Sampler
	var debug *obs.DebugListener
	if opt.debugAddr != "" {
		sampler = obs.NewSampler(o.Metrics, opt.debugSample)
		sampler.Start()
		d, err := obs.ServeDebug(opt.debugAddr, o)
		if err != nil {
			sampler.Stop()
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return nil, nil, 1
		}
		debug = d
		fmt.Fprintf(stderr, "%s: debug server listening on http://%s/debug/\n", prog, d.Addr())
	}

	var stopCPU func() error
	if opt.cpuprofile != "" {
		stop, err := obs.StartCPUProfile(opt.cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return nil, nil, 1
		}
		stopCPU = stop
	}
	finish := func() error {
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		if debug != nil {
			if err := debug.Close(); err != nil {
				fmt.Fprintf(stderr, "%s: debug server: %v\n", prog, err)
				fail(err)
			}
		}
		sampler.Stop()
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(stderr, "%s: cpu profile: %v\n", prog, err)
				fail(err)
			}
		}
		if opt.memprofile != "" {
			if err := obs.WriteHeapProfile(opt.memprofile); err != nil {
				fmt.Fprintf(stderr, "%s: heap profile: %v\n", prog, err)
				fail(err)
			}
		}
		if o.Trace != nil && opt.trace != "" {
			f, err := os.Create(opt.trace)
			if err == nil {
				err = o.Trace.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "%s: trace: %v\n", prog, err)
				fail(err)
			}
		}
		if opt.stats && o.Trace != nil {
			fmt.Fprintf(stderr, "\nPer-stage timing tree:\n\n%s", o.Trace.TimingTree())
			fmt.Fprintf(stderr, "\nMetrics snapshot:\n\n%s", o.Metrics.Snapshot().String())
		}
		return firstErr
	}
	return ctx, finish, 0
}

// Command nametool computes the paper's intrinsic similarity metrics for
// name pairs or for an embedded study snippet's full renaming.
//
// Usage:
//
//	nametool pair CANDIDATE REFERENCE     # metrics for one name pair
//	nametool snippet ID                   # full metric report for a snippet
//	nametool nearest NAME [K]             # nearest embedding neighbors
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"decompstudy/internal/corpus"
	"decompstudy/internal/embed"
	"decompstudy/internal/metrics"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	model, err := trainModel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nametool: %v\n", err)
		return 1
	}
	switch os.Args[1] {
	case "pair":
		if len(os.Args) != 4 {
			usage()
			return 2
		}
		return pair(os.Args[2], os.Args[3], model)
	case "snippet":
		if len(os.Args) != 3 {
			usage()
			return 2
		}
		return snippet(os.Args[2], model)
	case "nearest":
		if len(os.Args) < 3 {
			usage()
			return 2
		}
		k := 8
		if len(os.Args) > 3 {
			if n, err := strconv.Atoi(os.Args[3]); err == nil {
				k = n
			}
		}
		return nearest(os.Args[2], k, model)
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nametool pair CANDIDATE REFERENCE
  nametool snippet AEEK|BAPL|POSTORDER|TC
  nametool nearest NAME [K]`)
}

func trainModel() (*embed.Model, error) {
	ctxs, err := corpus.EmbeddingContexts()
	if err != nil {
		return nil, err
	}
	return embed.Train(ctxs, &embed.Config{Dim: 24})
}

func pair(cand, ref string, model *embed.Model) int {
	fmt.Printf("candidate: %q   reference: %q\n\n", cand, ref)
	fmt.Printf("  exact match:            %.0f\n", metrics.ExactMatch(cand, ref))
	fmt.Printf("  Levenshtein distance:   %d\n", metrics.Levenshtein(cand, ref))
	fmt.Printf("  normalized Levenshtein: %.4f\n", metrics.NormalizedLevenshtein(cand, ref))
	fmt.Printf("  Jaccard (char bigrams): %.4f\n", metrics.JaccardNGrams(cand, ref, 2))
	fmt.Printf("  token Jaccard:          %.4f\n", metrics.TokenJaccard(cand, ref))
	bleu := metrics.BLEU(metrics.TokenizeNames(cand), metrics.TokenizeNames(ref), 4)
	fmt.Printf("  BLEU (subtokens):       %.4f\n", bleu)
	if v, err := metrics.VarCLR(cand, ref, model); err == nil {
		fmt.Printf("  VarCLR (embedding):     %.4f\n", v)
	}
	if b, err := metrics.BERTScoreF1(metrics.TokenizeNames(cand), metrics.TokenizeNames(ref), model); err == nil {
		fmt.Printf("  BERTScore F1:           %.4f\n", b)
	}
	return 0
}

func snippet(id string, model *embed.Model) int {
	s, ok := corpus.SnippetByID(strings.ToUpper(id))
	if !ok {
		fmt.Fprintf(os.Stderr, "nametool: unknown snippet %q\n", id)
		return 2
	}
	p, err := corpus.Prepare(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nametool: %v\n", err)
		return 1
	}
	var pairs []metrics.Pair
	fmt.Printf("%s (%s) renamings:\n", s.ID, s.FuncName)
	for _, r := range p.Dirty.Renames {
		fmt.Printf("  %-10s -> %-10s (orig type %-18s -> %s)\n", r.OrigName, r.NewName, r.OrigType, r.NewType)
		pairs = append(pairs, metrics.Pair{Candidate: r.NewName, Reference: r.OrigName})
	}
	rep, err := metrics.Evaluate(pairs, p.Dirty.Source(), p.OrigSource, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nametool: %v\n", err)
		return 1
	}
	fmt.Printf("\n  exact match:   %.3f\n  Levenshtein:   %.2f (mean)\n  Jaccard:       %.3f\n  BLEU:          %.3f\n  codeBLEU:      %.3f\n  BERTScore F1:  %.3f\n  VarCLR:        %.3f\n",
		rep.ExactMatch, rep.Levenshtein, rep.Jaccard, rep.BLEU, rep.CodeBLEU, rep.BERTScoreF1, rep.VarCLR)
	return 0
}

func nearest(name string, k int, model *embed.Model) int {
	near, err := model.Nearest(name, k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nametool: %v\n", err)
		return 1
	}
	fmt.Printf("nearest subtokens to %q: %s\n", name, strings.Join(near, ", "))
	return 0
}

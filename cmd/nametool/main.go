// Command nametool computes the paper's intrinsic similarity metrics for
// name pairs or for an embedded study snippet's full renaming.
//
// Usage:
//
//	nametool [flags] pair CANDIDATE REFERENCE     # metrics for one name pair
//	nametool [flags] snippet ID                   # full metric report for a snippet
//	nametool [flags] nearest NAME [K]             # nearest embedding neighbors
//
// -opt N runs the verified optimizer (internal/compile/opt) at the given
// level before extracting a snippet's renamings, so the report covers
// only the names that survive -O1/-O2.
//
// Observability flags: -stats prints the per-stage timing tree and a
// metrics snapshot to stderr, -trace writes a Chrome trace-event JSON
// file, -v / -log-level enable structured logging, -cpuprofile /
// -memprofile write pprof profiles, and -debug-addr serves the live
// /debug HTTP surface for the duration of the run.
//
// -model-cache DIR persists the embedding model to a content-addressed
// on-disk store so repeated runs skip training; -no-model-cache trains
// fresh every run. Output is identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"decompstudy/internal/compile/opt"
	"decompstudy/internal/corpus"
	"decompstudy/internal/embed"
	"decompstudy/internal/metrics"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("nametool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file of the pipeline spans")
	stats := fs.Bool("stats", false, "print the per-stage timing tree and metrics snapshot to stderr")
	verbose := fs.Bool("v", false, "enable debug logging (shorthand for -log-level debug)")
	logLevel := fs.String("log-level", "", "structured log level: debug, info, warn, error")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	debugAddr := fs.String("debug-addr", "", "serve live /debug endpoints (metrics, spans, stage, pprof) on this address; port 0 picks a free port")
	debugSample := fs.Duration("debug-sample", obs.DefaultSampleInterval, "runtime sampling interval for the /debug metrics gauges")
	optLevel := fs.Int("opt", 0, "optimization level (0-2) applied to the snippet IR before extracting renamings")
	modelCache := fs.String("model-cache", "", "persist trained models to this directory, content-addressed (reruns skip training)")
	noModelCache := fs.Bool("no-model-cache", false, "disable the in-process model store; every run trains fresh")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	level, err := opt.ParseLevel(*optLevel)
	if err != nil {
		fmt.Fprintf(stderr, "nametool: %v\n", err)
		return 2
	}
	store, err := modelstore.FromFlags(*modelCache, *noModelCache)
	if err != nil {
		fmt.Fprintf(stderr, "nametool: %v\n", err)
		return 2
	}
	rest := fs.Args()
	if len(rest) < 1 {
		usage(stderr)
		return 2
	}

	ctx, finish, ecode := setupObs(obsOptions{
		trace: *tracePath, stats: *stats, verbose: *verbose,
		logLevel: *logLevel, cpuprofile: *cpuprofile, memprofile: *memprofile,
		debugAddr: *debugAddr, debugSample: *debugSample,
	}, "nametool", stderr)
	if ecode != 0 {
		return ecode
	}
	if store != nil {
		ctx = modelstore.With(ctx, store)
	}
	defer func() {
		if err := finish(); err != nil && code == 0 {
			code = 1
		}
	}()

	model, err := trainModel(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "nametool: %v\n", err)
		return 1
	}
	switch rest[0] {
	case "pair":
		if len(rest) != 3 {
			usage(stderr)
			return 2
		}
		return pair(rest[1], rest[2], model, stdout)
	case "snippet":
		if len(rest) != 2 {
			usage(stderr)
			return 2
		}
		return snippet(ctx, rest[1], level, model, stdout, stderr)
	case "nearest":
		if len(rest) < 2 {
			usage(stderr)
			return 2
		}
		k := 8
		if len(rest) > 2 {
			if n, err := strconv.Atoi(rest[2]); err == nil {
				k = n
			}
		}
		return nearest(rest[1], k, model, stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  nametool [flags] pair CANDIDATE REFERENCE
  nametool [flags] snippet AEEK|BAPL|POSTORDER|TC
  nametool [flags] nearest NAME [K]`)
}

func trainModel(ctx context.Context) (*embed.Model, error) {
	ctxs, err := corpus.EmbeddingContexts()
	if err != nil {
		return nil, err
	}
	cfg := &embed.Config{Dim: 24}
	if st := modelstore.From(ctx); st != nil {
		return st.EmbedModel(ctx, ctxs, cfg)
	}
	return embed.TrainCtx(ctx, ctxs, cfg)
}

func pair(cand, ref string, model *embed.Model, stdout io.Writer) int {
	fmt.Fprintf(stdout, "candidate: %q   reference: %q\n\n", cand, ref)
	fmt.Fprintf(stdout, "  exact match:            %.0f\n", metrics.ExactMatch(cand, ref))
	fmt.Fprintf(stdout, "  Levenshtein distance:   %d\n", metrics.Levenshtein(cand, ref))
	fmt.Fprintf(stdout, "  normalized Levenshtein: %.4f\n", metrics.NormalizedLevenshtein(cand, ref))
	fmt.Fprintf(stdout, "  Jaccard (char bigrams): %.4f\n", metrics.JaccardNGrams(cand, ref, 2))
	fmt.Fprintf(stdout, "  token Jaccard:          %.4f\n", metrics.TokenJaccard(cand, ref))
	bleu := metrics.BLEU(metrics.TokenizeNames(cand), metrics.TokenizeNames(ref), 4)
	fmt.Fprintf(stdout, "  BLEU (subtokens):       %.4f\n", bleu)
	if v, err := metrics.VarCLR(cand, ref, model); err == nil {
		fmt.Fprintf(stdout, "  VarCLR (embedding):     %.4f\n", v)
	}
	if b, err := metrics.BERTScoreF1(metrics.TokenizeNames(cand), metrics.TokenizeNames(ref), model); err == nil {
		fmt.Fprintf(stdout, "  BERTScore F1:           %.4f\n", b)
	}
	return 0
}

func snippet(ctx context.Context, id string, level opt.Level, model *embed.Model, stdout, stderr io.Writer) int {
	s, ok := corpus.SnippetByID(strings.ToUpper(id))
	if !ok {
		fmt.Fprintf(stderr, "nametool: unknown snippet %q\n", id)
		return 2
	}
	p, err := corpus.PrepareOptCtx(ctx, s, level)
	if err != nil {
		fmt.Fprintf(stderr, "nametool: %v\n", err)
		return 1
	}
	var pairs []metrics.Pair
	fmt.Fprintf(stdout, "%s (%s) renamings:\n", s.ID, s.FuncName)
	for _, r := range p.Dirty.Renames {
		fmt.Fprintf(stdout, "  %-10s -> %-10s (orig type %-18s -> %s)\n", r.OrigName, r.NewName, r.OrigType, r.NewType)
		pairs = append(pairs, metrics.Pair{Candidate: r.NewName, Reference: r.OrigName})
	}
	rep, err := metrics.EvaluateCtx(ctx, pairs, p.Dirty.Source(), p.OrigSource, model)
	if err != nil {
		fmt.Fprintf(stderr, "nametool: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "\n  exact match:   %.3f\n  Levenshtein:   %.2f (mean)\n  Jaccard:       %.3f\n  BLEU:          %.3f\n  codeBLEU:      %.3f\n  BERTScore F1:  %.3f\n  VarCLR:        %.3f\n",
		rep.ExactMatch, rep.Levenshtein, rep.Jaccard, rep.BLEU, rep.CodeBLEU, rep.BERTScoreF1, rep.VarCLR)
	return 0
}

func nearest(name string, k int, model *embed.Model, stdout, stderr io.Writer) int {
	near, err := model.Nearest(name, k)
	if err != nil {
		fmt.Fprintf(stderr, "nametool: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "nearest subtokens to %q: %s\n", name, strings.Join(near, ", "))
	return 0
}

// obsOptions and setupObs mirror cmd/decompile's observability wiring.
type obsOptions struct {
	trace, logLevel        string
	stats, verbose         bool
	cpuprofile, memprofile string
	debugAddr              string
	debugSample            time.Duration
}

func setupObs(opt obsOptions, prog string, stderr io.Writer) (context.Context, func() error, int) {
	o := &obs.Obs{}
	if opt.trace != "" || opt.stats || opt.debugAddr != "" {
		o.Trace = obs.NewCollector()
		o.Metrics = obs.NewRegistry()
	}
	if opt.verbose || opt.logLevel != "" {
		level := slog.LevelDebug
		if opt.logLevel != "" {
			var err error
			level, err = obs.ParseLevel(opt.logLevel)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", prog, err)
				return nil, nil, 2
			}
		}
		o.Log = obs.NewLogger(stderr, level)
	}
	ctx := obs.With(context.Background(), o)

	var sampler *obs.Sampler
	var debug *obs.DebugListener
	if opt.debugAddr != "" {
		sampler = obs.NewSampler(o.Metrics, opt.debugSample)
		sampler.Start()
		d, err := obs.ServeDebug(opt.debugAddr, o)
		if err != nil {
			sampler.Stop()
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return nil, nil, 1
		}
		debug = d
		fmt.Fprintf(stderr, "%s: debug server listening on http://%s/debug/\n", prog, d.Addr())
	}

	var stopCPU func() error
	if opt.cpuprofile != "" {
		stop, err := obs.StartCPUProfile(opt.cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return nil, nil, 1
		}
		stopCPU = stop
	}
	finish := func() error {
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		if debug != nil {
			if err := debug.Close(); err != nil {
				fmt.Fprintf(stderr, "%s: debug server: %v\n", prog, err)
				fail(err)
			}
		}
		sampler.Stop()
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(stderr, "%s: cpu profile: %v\n", prog, err)
				fail(err)
			}
		}
		if opt.memprofile != "" {
			if err := obs.WriteHeapProfile(opt.memprofile); err != nil {
				fmt.Fprintf(stderr, "%s: heap profile: %v\n", prog, err)
				fail(err)
			}
		}
		if o.Trace != nil && opt.trace != "" {
			f, err := os.Create(opt.trace)
			if err == nil {
				err = o.Trace.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "%s: trace: %v\n", prog, err)
				fail(err)
			}
		}
		if opt.stats && o.Trace != nil {
			fmt.Fprintf(stderr, "\nPer-stage timing tree:\n\n%s", o.Trace.TimingTree())
			fmt.Fprintf(stderr, "\nMetrics snapshot:\n\n%s", o.Metrics.Snapshot().String())
		}
		return firstErr
	}
	return ctx, finish, 0
}

// Command loadgen replays a configurable request mix against a running
// served instance and reports throughput, error rates, and exact
// p50/p90/p99 latency percentiles as JSON — the repo's service-level
// benchmark harness.
//
// Usage:
//
//	loadgen -addr HOST:PORT [-duration D] [-conns N] [-rps N]
//	        [-mix "annotate=4,metrics=2,decompile=2,lint=1"] [-opt N]
//	        [-timeout D] [-out FILE]
//
// With -rps 0 (the default) it runs closed-loop: each of -conns workers
// issues its next request as soon as the previous one completes, which
// measures the server's saturation throughput. With -rps > 0 it runs
// open-loop at the target rate. The mix cycles deterministically over
// the four study snippets, so concurrent requests repeat — exactly the
// shape the server's batch coalescing exploits.
//
// The JSON report lands on stdout (or -out) with one key per line, so
// shell gates can grep fields like `"errors": 0` without a JSON parser.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// reqSpec is one pre-marshaled request the schedule cycles through.
type reqSpec struct {
	endpoint string // mix kind: annotate, metrics, decompile, lint, study
	path     string
	body     []byte
}

// sample is one completed request.
type sample struct {
	endpoint string
	ms       float64
	status   int
	failed   bool // transport error or non-2xx
}

// latStats is the latency/throughput summary of one endpoint (or the
// whole run): exact order-statistic percentiles over every sample.
type latStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// report is the emitted JSON document.
type report struct {
	Target          string              `json:"target"`
	Mode            string              `json:"mode"`
	Mix             string              `json:"mix"`
	Conns           int                 `json:"conns"`
	RPSTarget       float64             `json:"rps_target"`
	DurationSeconds float64             `json:"duration_seconds"`
	Requests        int                 `json:"requests"`
	Errors          int                 `json:"errors"`
	RPSAchieved     float64             `json:"rps_achieved"`
	Host            hostInfo            `json:"host"`
	Latency         latStats            `json:"latency"`
	Endpoints       map[string]latStats `json:"endpoints"`
}

type hostInfo struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

var snippets = []string{"AEEK", "BAPL", "POSTORDER", "TC"}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "served address (HOST:PORT, required)")
	duration := fs.Duration("duration", 5*time.Second, "measurement duration")
	conns := fs.Int("conns", 8, "concurrent worker connections")
	rps := fs.Float64("rps", 0, "target request rate (0 = closed-loop: issue as fast as the server answers)")
	mix := fs.String("mix", "annotate=4,metrics=2,decompile=2,lint=1", "request mix as kind=weight pairs (kinds: annotate, metrics, decompile, lint, study)")
	optLevel := fs.Int("opt", 0, "optimization level sent with every request")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	out := fs.String("out", "", "write the JSON report to this file instead of stdout")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "untimed warmup before measurement (fills caches and connections)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "loadgen: -addr is required")
		return 2
	}
	schedule, err := buildSchedule(*mix, *optLevel)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	base := "http://" + strings.TrimPrefix(*addr, "http://")
	base = strings.TrimSuffix(base, "/")

	// One shared client: keep-alive connections sized to the worker
	// count so the measurement is not dominated by TCP setup.
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conns * 2,
			MaxIdleConnsPerHost: *conns * 2,
		},
	}

	// Untimed warmup: prime connections and let the server reach steady
	// state so percentiles reflect serving, not startup.
	if *warmup > 0 {
		deadline := time.Now().Add(*warmup)
		var n atomic.Int64
		runWorkers(*conns, func(int) {
			for time.Now().Before(deadline) {
				shoot(client, base, schedule[int(n.Add(1))%len(schedule)])
			}
		})
	}

	var next atomic.Int64
	results := make([][]sample, *conns)
	start := time.Now()
	deadline := start.Add(*duration)

	if *rps > 0 {
		// Open loop: a ticker releases tokens at the target rate; workers
		// block on tokens, so a slow server makes the achieved rate (not
		// the latency of queued-but-unsent requests) show the shortfall.
		interval := time.Duration(float64(time.Second) / *rps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tokens := make(chan struct{}, *conns)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case tokens <- struct{}{}:
				default: // all workers busy: shed the tick
				}
			}
			close(tokens)
		}()
		runWorkers(*conns, func(w int) {
			for range tokens {
				i := int(next.Add(1)) % len(schedule)
				results[w] = append(results[w], shoot(client, base, schedule[i]))
			}
		})
	} else {
		runWorkers(*conns, func(w int) {
			for time.Now().Before(deadline) {
				i := int(next.Add(1)) % len(schedule)
				results[w] = append(results[w], shoot(client, base, schedule[i]))
			}
		})
	}
	elapsed := time.Since(start)

	rep := summarize(results, report{
		Target:          base,
		Mode:            map[bool]string{true: "open-loop", false: "closed-loop"}[*rps > 0],
		Mix:             *mix,
		Conns:           *conns,
		RPSTarget:       *rps,
		DurationSeconds: elapsed.Seconds(),
		Host:            hostInfo{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)},
	})

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "loadgen: report written to %s\n", *out)
	} else {
		stdout.Write(doc)
	}
	fmt.Fprintf(stderr, "loadgen: %d requests, %d errors, %.1f req/s, p99 %.1fms\n",
		rep.Requests, rep.Errors, rep.RPSAchieved, rep.Latency.P99MS)
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

func runWorkers(n int, fn func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// buildSchedule expands the mix spec into a request cycle: each kind
// repeated by weight, bodies cycling deterministically over the study
// snippets so concurrent workers repeat requests (the coalescing shape).
func buildSchedule(mix string, optLevel int) ([]reqSpec, error) {
	var schedule []reqSpec
	snippetAt := 0
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weightStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		weight, err := strconv.Atoi(weightStr)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", weightStr)
		}
		for i := 0; i < weight; i++ {
			sn := snippets[snippetAt%len(snippets)]
			snippetAt++
			spec, err := buildRequest(kind, sn, optLevel)
			if err != nil {
				return nil, err
			}
			schedule = append(schedule, spec)
		}
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("empty mix %q", mix)
	}
	return schedule, nil
}

func buildRequest(kind, snippet string, optLevel int) (reqSpec, error) {
	marshal := func(v any) []byte {
		b, _ := json.Marshal(v)
		return b
	}
	switch kind {
	case "annotate":
		return reqSpec{kind, "/v1/annotate", marshal(map[string]any{"snippet": snippet, "opt": optLevel})}, nil
	case "metrics":
		return reqSpec{kind, "/v1/metrics", marshal(map[string]any{"snippet": snippet, "opt": optLevel})}, nil
	case "decompile":
		return reqSpec{kind, "/v1/decompile", marshal(map[string]any{"snippet": snippet, "opt": optLevel, "annotate": true})}, nil
	case "lint":
		return reqSpec{kind, "/v1/lint", marshal(map[string]any{"snippet": snippet, "opt": optLevel})}, nil
	case "study":
		return reqSpec{kind, "/v1/study", marshal(map[string]any{"seed": 26, "opt": optLevel})}, nil
	}
	return reqSpec{}, fmt.Errorf("unknown mix kind %q", kind)
}

// shoot sends one request and fully drains the response body (keep-alive
// reuse requires it; partial bodies count as failures).
func shoot(client *http.Client, base string, spec reqSpec) sample {
	start := time.Now()
	resp, err := client.Post(base+spec.path, "application/json", bytes.NewReader(spec.body))
	if err != nil {
		return sample{endpoint: spec.endpoint, ms: msSince(start), failed: true}
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{
		endpoint: spec.endpoint,
		ms:       msSince(start),
		status:   resp.StatusCode,
		failed:   cerr != nil || resp.StatusCode < 200 || resp.StatusCode >= 300,
	}
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}

func summarize(results [][]sample, rep report) report {
	byEndpoint := map[string][]sample{}
	var all []sample
	for _, rs := range results {
		for _, s := range rs {
			all = append(all, s)
			byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
		}
	}
	rep.Requests = len(all)
	rep.Latency = stats(all)
	rep.Errors = rep.Latency.Errors
	if rep.DurationSeconds > 0 {
		rep.RPSAchieved = float64(len(all)) / rep.DurationSeconds
	}
	rep.Endpoints = map[string]latStats{}
	for ep, ss := range byEndpoint {
		rep.Endpoints[ep] = stats(ss)
	}
	return rep
}

func stats(ss []sample) latStats {
	st := latStats{Requests: len(ss)}
	if len(ss) == 0 {
		return st
	}
	lats := make([]float64, 0, len(ss))
	var sum float64
	for _, s := range ss {
		if s.failed {
			st.Errors++
		}
		lats = append(lats, s.ms)
		sum += s.ms
	}
	sort.Float64s(lats)
	st.MeanMS = round3(sum / float64(len(lats)))
	st.P50MS = round3(pct(lats, 0.50))
	st.P90MS = round3(pct(lats, 0.90))
	st.P99MS = round3(pct(lats, 0.99))
	st.MaxMS = round3(lats[len(lats)-1])
	return st
}

// pct is the exact order statistic: the smallest sample ≥ the q-quantile
// position (no interpolation, so reported percentiles are real latencies).
func pct(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round3(f float64) float64 {
	return math.Round(f*1000) / 1000
}

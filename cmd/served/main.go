// Command served runs the decompilation service: a long-lived HTTP JSON
// API in front of the study pipeline, with models trained once at startup
// (or loaded from the content-addressed model store) and shared across
// every request.
//
// Usage:
//
//	served [-addr HOST:PORT] [-jobs N] [-batch-size N] [-batch-delay D]
//	       [-queue N] [-study-concurrency N] [-no-batch]
//	       [-allow-fault-header] [-model-cache DIR | -no-model-cache]
//	       [-addr-file PATH] [-drain-timeout D] [-v | -log-level L]
//
// Endpoints: POST /v1/decompile, /v1/annotate, /v1/lint, /v1/metrics,
// /v1/study; GET /healthz; and the live /debug telemetry surface
// (Prometheus metrics, span ring, stage aggregates, pprof).
//
// The bound address is printed to stdout as the first output line — with
// `-addr :0` the kernel picks a free port, so scripts and tests can start
// the server and discover the port race-free (or read it from -addr-file).
//
// Annotate and metric requests are coalesced into size/latency-bounded
// batches (identical concurrent requests are computed once); -no-batch
// serves them per-request at the same worker count, as the benchmark
// baseline. Saturation returns 503 with Retry-After. SIGTERM/SIGINT
// drain gracefully: in-flight and queued requests complete (up to
// -drain-timeout), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"decompstudy/internal/modelstore"
	"decompstudy/internal/obs"
	"decompstudy/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address; port 0 picks a free port (reported on stdout)")
	addrFile := fs.String("addr-file", "", "also write the bound address to this file (race-free discovery for scripts)")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "worker budget: batch fan-out width, and per-request concurrency in -no-batch mode")
	batchSize := fs.Int("batch-size", serve.DefaultBatchSize, "max items per batch flush")
	batchDelay := fs.Duration("batch-delay", serve.DefaultBatchDelay, "max wait from first queued item to flush")
	queue := fs.Int("queue", serve.DefaultQueue, "per-endpoint admission queue depth (beyond it: 503)")
	studyConc := fs.Int("study-concurrency", serve.DefaultStudyConcurrency, "concurrent /v1/study runs")
	studyQueue := fs.Int("study-queue", serve.DefaultStudyQueue, "/v1/study wait queue depth")
	noBatch := fs.Bool("no-batch", false, "serve annotate/metrics per request instead of batched (benchmark baseline)")
	allowFault := fs.Bool("allow-fault-header", false, "honor X-Fault-Plan chaos headers (off by default)")
	modelCache := fs.String("model-cache", "", "persist trained models to this directory, content-addressed")
	noModelCache := fs.Bool("no-model-cache", false, "disable the in-process model store; train fresh at startup")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on SIGTERM")
	debugSample := fs.Duration("debug-sample", obs.DefaultSampleInterval, "runtime sampling interval for the /debug metrics gauges")
	verbose := fs.Bool("v", false, "enable debug logging (shorthand for -log-level debug)")
	logLevel := fs.String("log-level", "", "structured log level: debug, info, warn, error")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	store, err := modelstore.FromFlags(*modelCache, *noModelCache)
	if err != nil {
		fmt.Fprintf(stderr, "served: %v\n", err)
		return 2
	}

	// A server always carries full telemetry: the /debug surface is part
	// of the API, not an opt-in.
	o := &obs.Obs{Trace: obs.NewCollector(), Metrics: obs.NewRegistry()}
	if *verbose || *logLevel != "" {
		level := slog.LevelDebug
		if *logLevel != "" {
			level, err = obs.ParseLevel(*logLevel)
			if err != nil {
				fmt.Fprintf(stderr, "served: %v\n", err)
				return 2
			}
		}
		o.Log = obs.NewLogger(stderr, level)
	}
	sampler := obs.NewSampler(o.Metrics, *debugSample)
	sampler.Start()
	defer sampler.Stop()

	warmStart := time.Now()
	srv, err := serve.NewServer(context.Background(), o, store, serve.Options{
		Jobs:             *jobs,
		BatchSize:        *batchSize,
		BatchDelay:       *batchDelay,
		Queue:            *queue,
		StudyConcurrency: *studyConc,
		StudyQueue:       *studyQueue,
		NoBatch:          *noBatch,
		AllowFaultHeader: *allowFault,
	})
	if err != nil {
		fmt.Fprintf(stderr, "served: %v\n", err)
		return 1
	}
	defer srv.Close()
	fmt.Fprintf(stderr, "served: models warm in %s (jobs=%d batch=%d/%s queue=%d no-batch=%v)\n",
		time.Since(warmStart).Round(time.Millisecond), *jobs, *batchSize, *batchDelay, *queue, *noBatch)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "served: %v\n", err)
		return 1
	}
	// The bound address is the first stdout line — the discovery contract
	// for scripts, tests, and loadgen (`-addr :0` is race-free).
	fmt.Fprintf(stdout, "served: listening on http://%s/\n", lis.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "served: %v\n", err)
			lis.Close()
			return 1
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "served: %v\n", err)
		return 1
	case got := <-sig:
		fmt.Fprintf(stderr, "served: %s received, draining\n", got)
		srv.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "served: drain: %v\n", err)
			return 1
		}
		fmt.Fprintln(stderr, "served: drained")
	}
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	cleanDemo = "../../examples/lintdemo/clean.c"
	dirtyDemo = "../../examples/lintdemo/dirty.c"
)

func TestCleanFileExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{cleanDemo}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no findings") {
		t.Errorf("stdout = %q, want the no-findings notice", stdout.String())
	}
}

func TestDirtyFileReportsEverySeededFinding(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{dirtyDemo}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"lint.dead-store", "lint.const-cond", "lint.unused-param",
		"lint.uninit-read", "verify.def-before-use",
		// The position and variable naming must survive to the CLI.
		"dead_store", "(acc)", "(extra)", "(total)",
		// The ghost accumulator (genuine-use fixpoint, not plain liveness).
		"cycle_store", "(shadow)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "7 finding(s)") {
		t.Errorf("output missing the summary line:\n%s", out)
	}
}

func TestOptLevelRemovesFindings(t *testing.T) {
	// At -opt 1 the optimizer deletes the dead stores (the ghost
	// accumulator included), folds the constant condition, and
	// zero-initializes the maybe-uninit local; only the unused parameter —
	// which no optimization can remove — survives, and the delta line
	// records what disappeared.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-opt", "1", dirtyDemo}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1 (unused-param survives); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, gone := range []string{"(acc)", "(shadow)", "(total)", "lint.const-cond]"} {
		if strings.Contains(out, gone) {
			t.Errorf("finding %q should be optimized away at -opt 1:\n%s", gone, out)
		}
	}
	for _, want := range []string{
		"1 finding(s): lint.unused-param×1",
		"lint.dead-store 3→0",
		"lint.const-cond 1→0",
		"lint.unused-param 1→1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	stdout.Reset()
	if code := run([]string{"-opt", "3", dirtyDemo}, &stdout, &stderr); code != 2 {
		t.Errorf("-opt 3 exit = %d, want 2 (usage error)", code)
	}
}

func TestOptJSONDeltas(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-opt", "2", dirtyDemo}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if d := rep.OptDeltas["lint.dead-store"]; d.Before != 3 || d.After != 0 {
		t.Errorf("dead-store delta = %+v, want 3→0", d)
	}
	if len(rep.Findings) != 1 {
		t.Errorf("findings = %d, want only the unused param", len(rep.Findings))
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-complexity", dirtyDemo}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(rep.Findings) != 7 {
		t.Errorf("findings = %d, want 7", len(rep.Findings))
	}
	if len(rep.Complexity) != 5 {
		t.Errorf("complexity rows = %d, want one per function", len(rep.Complexity))
	}
	f := rep.Findings[0]
	if f.Source == "" || f.Check == "" || f.Func == "" {
		t.Errorf("finding missing fields: %+v", f)
	}
}

func TestCorpusIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-corpus"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-corpus exit = %d, want 0; stdout: %s stderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestComplexityText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-complexity", cleanDemo}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	out := stdout.String()
	for _, want := range []string{"clamp", "sum_range", "cyclomatic="} {
		if !strings.Contains(out, want) {
			t.Errorf("complexity output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad-flag exit = %d, want 2", code)
	}
}

func TestMissingAndUnparsableFiles(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"definitely/not/there.c"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing-file exit = %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte("int f( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{bad}, &stdout, &stderr); code != 1 {
		t.Errorf("parse-error exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "bad.c") {
		t.Errorf("stderr %q should name the failing file", stderr.String())
	}
}

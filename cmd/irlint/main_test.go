package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	cleanDemo = "../../examples/lintdemo/clean.c"
	dirtyDemo = "../../examples/lintdemo/dirty.c"
)

func TestCleanFileExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{cleanDemo}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no findings") {
		t.Errorf("stdout = %q, want the no-findings notice", stdout.String())
	}
}

func TestDirtyFileReportsEverySeededFinding(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{dirtyDemo}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"lint.dead-store", "lint.const-cond", "lint.unused-param",
		"lint.uninit-read", "verify.def-before-use",
		// The position and variable naming must survive to the CLI.
		"dead_store", "(acc)", "(extra)", "(total)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "5 finding(s)") {
		t.Errorf("output missing the summary line:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-complexity", dirtyDemo}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(rep.Findings) != 5 {
		t.Errorf("findings = %d, want 5", len(rep.Findings))
	}
	if len(rep.Complexity) != 4 {
		t.Errorf("complexity rows = %d, want one per function", len(rep.Complexity))
	}
	f := rep.Findings[0]
	if f.Source == "" || f.Check == "" || f.Func == "" {
		t.Errorf("finding missing fields: %+v", f)
	}
}

func TestCorpusIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-corpus"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-corpus exit = %d, want 0; stdout: %s stderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestComplexityText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-complexity", cleanDemo}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	out := stdout.String()
	for _, want := range []string{"clamp", "sum_range", "cyclomatic="} {
		if !strings.Contains(out, want) {
			t.Errorf("complexity output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad-flag exit = %d, want 2", code)
	}
}

func TestMissingAndUnparsableFiles(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"definitely/not/there.c"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing-file exit = %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte("int f( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{bad}, &stdout, &stderr); code != 1 {
		t.Errorf("parse-error exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "bad.c") {
		t.Errorf("stderr %q should name the failing file", stderr.String())
	}
}

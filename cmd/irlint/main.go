// Command irlint compiles mini-C sources to IR and runs the
// internal/analysis verifier and lint checkers over every function,
// reporting structural errors (malformed CFGs, bad operand kinds,
// use-before-def) and readability findings (dead stores, unreachable
// code, constant conditions, unused parameters, maybe-uninitialized
// reads).
//
// Usage:
//
//	irlint [flags] FILE.c ...
//	irlint -corpus [-jobs N]
//
// -corpus lints the embedded study snippets and the training corpus
// instead of (or in addition to) the listed files. -json emits the
// findings as a JSON document; -complexity appends the per-function
// structural-complexity covariates used as RQ5 predictors. -opt N runs
// the verified optimizer (internal/compile/opt) at level N before
// linting: findings and covariates then describe the optimized IR, and
// the report carries per-check before/after finding deltas. The exit code
// is 0 when every function is clean, 1 when there are findings or a
// pipeline failure, and 2 on usage errors.
//
// Observability flags: -stats prints the per-stage timing tree and a
// metrics snapshot to stderr, -trace writes a Chrome trace-event JSON
// file, -v / -log-level enable structured logging, -cpuprofile /
// -memprofile write pprof profiles, and -debug-addr serves the live
// /debug HTTP surface for the duration of the run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
	"decompstudy/internal/compile/opt"
	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/fault"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic tagged with the compilation unit it came from.
type finding struct {
	Source string `json:"source"`
	analysis.Diag
}

// funcCov is one function's complexity covariates, tagged like finding.
type funcCov struct {
	Source string `json:"source"`
	Func   string `json:"func"`
	analysis.Covariates
}

// optDelta is the per-check finding count before and after optimization.
type optDelta struct {
	Before int `json:"before"`
	After  int `json:"after"`
}

// report accumulates results across every linted unit.
type report struct {
	Findings   []finding           `json:"findings"`
	Complexity []funcCov           `json:"complexity,omitempty"`
	OptDeltas  map[string]optDelta `json:"opt_deltas,omitempty"`
}

func (rep *report) addDelta(check string, before, after int) {
	if rep.OptDeltas == nil {
		rep.OptDeltas = map[string]optDelta{}
	}
	d := rep.OptDeltas[check]
	d.Before += before
	d.After += after
	rep.OptDeltas[check] = d
}

// runner carries the per-invocation state through every linted unit.
type runner struct {
	ctx        context.Context
	rep        report
	complexity bool
	level      opt.Level
}

// lintSrc parses and compiles one mini-C translation unit, lints every
// function in it, and appends the results to rep (r.rep by default). The
// fragment indirection lets lintCorpus lint units concurrently into
// private fragments and merge them in input order.
func (r *runner) lintSrc(ctx context.Context, source, src string, types []string, rep *report) error {
	// The unit label is the fault-injection item key, so a plan can target
	// one snippet or training file of the sweep.
	ctx = fault.WithKey(ctx, source)
	file, err := csrc.ParseCtx(ctx, src, types)
	if err != nil {
		return err
	}
	obj, err := compile.CompileCtx(ctx, file)
	if err != nil {
		return err
	}
	return r.lintObject(ctx, source, obj, rep)
}

// lintObject lints every function of an already-compiled object into rep.
// At -opt 1/2 the object is optimized first: findings and complexity
// covariates describe the optimized IR, and rep records the per-check
// finding deltas (a dead store the optimizer deletes is a finding at -O0
// that is gone at -O1).
func (r *runner) lintObject(ctx context.Context, source string, obj *compile.Object, rep *report) error {
	var before map[string]int
	if r.level > opt.O0 {
		before = map[string]int{}
		for _, fn := range obj.Funcs {
			for _, d := range analysis.Check(ctx, fn) {
				before[d.Check]++
			}
		}
		oobj, _, err := opt.OptimizeObject(ctx, obj, r.level)
		if err != nil {
			return fmt.Errorf("optimizing %s at %s: %w", source, r.level, err)
		}
		obj = oobj
	}
	after := map[string]int{}
	for _, fn := range obj.Funcs {
		for _, d := range analysis.Check(ctx, fn) {
			after[d.Check]++
			rep.Findings = append(rep.Findings, finding{Source: source, Diag: d})
		}
		if r.complexity {
			rep.Complexity = append(rep.Complexity, funcCov{
				Source: source, Func: fn.Name,
				Covariates: analysis.MeasureCtx(ctx, fn),
			})
		}
	}
	if before != nil {
		for check, n := range before {
			rep.addDelta(check, n, after[check])
		}
		for check, n := range after {
			if _, ok := before[check]; !ok {
				rep.addDelta(check, 0, n)
			}
		}
	}
	return nil
}

// lintCorpus feeds the embedded study snippets and the training corpus
// through the same lint path as file arguments. Units lint concurrently on
// par.JobsFrom workers; each unit writes a private report fragment and the
// fragments merge in input order, so the output is identical at any worker
// count. Unit failures are joined in input order rather than aborting the
// sweep at the first fault.
func (r *runner) lintCorpus() error {
	type unit struct {
		lint func(ctx context.Context, rep *report) error
	}
	var units []unit
	for _, s := range corpus.Snippets() {
		units = append(units, unit{lint: func(ctx context.Context, rep *report) error {
			if err := r.lintSrc(ctx, "snippet:"+s.ID, s.Source, s.ExtraTypes, rep); err != nil {
				return fmt.Errorf("snippet %s: %w", s.ID, err)
			}
			return nil
		}})
	}
	files, err := corpus.TrainingFiles()
	if err != nil {
		return err
	}
	for i, f := range files {
		units = append(units, unit{lint: func(ctx context.Context, rep *report) error {
			obj, err := compile.CompileCtx(ctx, f)
			if err != nil {
				return fmt.Errorf("training[%d]: %w", i, err)
			}
			return r.lintObject(ctx, fmt.Sprintf("training[%d]", i), obj, rep)
		}})
	}

	jobs := par.JobsFrom(r.ctx)
	obs.SetGauge(r.ctx, "irlint.jobs", float64(jobs))
	frags, errs := par.MapAll(r.ctx, jobs, units, func(ctx context.Context, _ int, u unit) (*report, error) {
		rep := &report{}
		if err := u.lint(ctx, rep); err != nil {
			return nil, err
		}
		return rep, nil
	})
	var failed []error
	for i := range units {
		if errs[i] != nil {
			failed = append(failed, errs[i])
			continue
		}
		r.rep.Findings = append(r.rep.Findings, frags[i].Findings...)
		r.rep.Complexity = append(r.rep.Complexity, frags[i].Complexity...)
		for check, d := range frags[i].OptDeltas {
			r.rep.addDelta(check, d.Before, d.After)
		}
	}
	return errors.Join(failed...)
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("irlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	useCorpus := fs.Bool("corpus", false, "lint the embedded study snippets and training corpus")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "worker count for the corpus lint sweep (results are identical at any value)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON instead of text")
	complexity := fs.Bool("complexity", false, "also report per-function complexity covariates")
	optLevel := fs.Int("opt", 0, "optimize the IR at this level (0-2) before linting; reports per-check finding deltas")
	typeList := fs.String("types", "", "comma-separated extra type names for the parser")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file of the pipeline spans")
	stats := fs.Bool("stats", false, "print the per-stage timing tree and metrics snapshot to stderr")
	verbose := fs.Bool("v", false, "enable debug logging (shorthand for -log-level debug)")
	logLevel := fs.String("log-level", "", "structured log level: debug, info, warn, error")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	faults := fs.String("faults", "", "fault-injection plan, e.g. 'seed=1; csrc.parse:error,key=snippet:AEEK' (see internal/fault)")
	retryBudget := fs.Int("retry-budget", fault.DefaultRetryBudget, "per-run retry budget for transient injected faults")
	debugAddr := fs.String("debug-addr", "", "serve live /debug endpoints (metrics, spans, stage, pprof) on this address; port 0 picks a free port")
	debugSample := fs.Duration("debug-sample", obs.DefaultSampleInterval, "runtime sampling interval for the /debug metrics gauges")
	modelCache := fs.String("model-cache", "", "persist trained models to this directory, content-addressed (shared CLI flag; irlint trains none today)")
	noModelCache := fs.Bool("no-model-cache", false, "disable the in-process model store; every run trains fresh")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !*useCorpus && fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: irlint [flags] FILE.c ...  (or -corpus)")
		return 2
	}
	level, err := opt.ParseLevel(*optLevel)
	if err != nil {
		fmt.Fprintf(stderr, "irlint: %v\n", err)
		return 2
	}
	store, err := modelstore.FromFlags(*modelCache, *noModelCache)
	if err != nil {
		fmt.Fprintf(stderr, "irlint: %v\n", err)
		return 2
	}

	ctx, finish, ecode := setupObs(obsOptions{
		trace: *tracePath, stats: *stats, verbose: *verbose,
		logLevel: *logLevel, cpuprofile: *cpuprofile, memprofile: *memprofile,
		debugAddr: *debugAddr, debugSample: *debugSample,
	}, "irlint", stderr)
	if ecode != 0 {
		return ecode
	}
	if store != nil {
		ctx = modelstore.With(ctx, store)
	}
	ctx = fault.WithManifest(ctx, fault.NewManifest())
	if *faults != "" {
		plan, perr := fault.ParsePlan(*faults)
		if perr != nil {
			fmt.Fprintf(stderr, "irlint: %v\n", perr)
			return 2
		}
		ctx = fault.With(ctx, fault.NewInjector(plan, *retryBudget))
	}
	defer func() {
		if err := finish(); err != nil && code == 0 {
			code = 1
		}
	}()

	var extra []string
	if *typeList != "" {
		extra = strings.Split(*typeList, ",")
	}

	r := &runner{ctx: par.WithJobs(ctx, *jobs), complexity: *complexity, level: level}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "irlint: %v\n", err)
			return 1
		}
		if err := r.lintSrc(r.ctx, path, string(src), extra, &r.rep); err != nil {
			fmt.Fprintf(stderr, "irlint: %s: %v\n", path, err)
			return 1
		}
	}
	if *useCorpus {
		if err := r.lintCorpus(); err != nil {
			fmt.Fprintf(stderr, "irlint: %v\n", err)
			return 1
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.rep); err != nil {
			fmt.Fprintf(stderr, "irlint: %v\n", err)
			return 1
		}
	} else {
		renderText(stdout, &r.rep)
	}
	if len(r.rep.Findings) > 0 {
		return 1
	}
	return 0
}

func renderText(w io.Writer, rep *report) {
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "%s: %s\n", f.Source, f.Diag.String())
	}
	if rep.Complexity != nil {
		if len(rep.Findings) > 0 {
			fmt.Fprintln(w)
		}
		for _, c := range rep.Complexity {
			fmt.Fprintf(w, "%s: %s: %s\n", c.Source, c.Func, c.Covariates.String())
		}
	}
	if len(rep.OptDeltas) > 0 {
		keys := make([]string, 0, len(rep.OptDeltas))
		for k := range rep.OptDeltas {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			d := rep.OptDeltas[k]
			parts[i] = fmt.Sprintf("%s %d→%d", k, d.Before, d.After)
		}
		fmt.Fprintf(w, "\nopt deltas: %s\n", strings.Join(parts, ", "))
	}
	if len(rep.Findings) == 0 && rep.Complexity == nil {
		fmt.Fprintln(w, "irlint: no findings")
	}
	if len(rep.Findings) > 0 {
		counts := map[string]int{}
		for _, f := range rep.Findings {
			counts[f.Check]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s×%d", k, counts[k])
		}
		fmt.Fprintf(w, "\n%d finding(s): %s\n", len(rep.Findings), strings.Join(parts, ", "))
	}
}

// obsOptions collects the shared observability flag values.
type obsOptions struct {
	trace, logLevel        string
	stats, verbose         bool
	cpuprofile, memprofile string
	debugAddr              string
	debugSample            time.Duration
}

// setupObs builds the telemetry handle for a CLI run and returns the
// context to thread through the pipeline plus a finish func that flushes
// the trace file, stats report, and profiles. A non-zero code means a flag
// was invalid and the caller should exit with it. With debugAddr set the
// run also gets a live /debug HTTP surface plus a runtime sampler, both
// shut down by finish.
func setupObs(opt obsOptions, prog string, stderr io.Writer) (context.Context, func() error, int) {
	o := &obs.Obs{}
	if opt.trace != "" || opt.stats || opt.debugAddr != "" {
		o.Trace = obs.NewCollector()
		o.Metrics = obs.NewRegistry()
	}
	if opt.verbose || opt.logLevel != "" {
		level := slog.LevelDebug
		if opt.logLevel != "" {
			var err error
			level, err = obs.ParseLevel(opt.logLevel)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", prog, err)
				return nil, nil, 2
			}
		}
		o.Log = obs.NewLogger(stderr, level)
	}
	ctx := obs.With(context.Background(), o)

	var sampler *obs.Sampler
	var debug *obs.DebugListener
	if opt.debugAddr != "" {
		sampler = obs.NewSampler(o.Metrics, opt.debugSample)
		sampler.Start()
		d, err := obs.ServeDebug(opt.debugAddr, o)
		if err != nil {
			sampler.Stop()
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return nil, nil, 1
		}
		debug = d
		fmt.Fprintf(stderr, "%s: debug server listening on http://%s/debug/\n", prog, d.Addr())
	}

	var stopCPU func() error
	if opt.cpuprofile != "" {
		stop, err := obs.StartCPUProfile(opt.cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return nil, nil, 1
		}
		stopCPU = stop
	}
	finish := func() error {
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		if debug != nil {
			if err := debug.Close(); err != nil {
				fmt.Fprintf(stderr, "%s: debug server: %v\n", prog, err)
				fail(err)
			}
		}
		sampler.Stop()
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(stderr, "%s: cpu profile: %v\n", prog, err)
				fail(err)
			}
		}
		if opt.memprofile != "" {
			if err := obs.WriteHeapProfile(opt.memprofile); err != nil {
				fmt.Fprintf(stderr, "%s: heap profile: %v\n", prog, err)
				fail(err)
			}
		}
		if o.Trace != nil && opt.trace != "" {
			f, err := os.Create(opt.trace)
			if err == nil {
				err = o.Trace.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "%s: trace: %v\n", prog, err)
				fail(err)
			}
		}
		if opt.stats && o.Trace != nil {
			fmt.Fprintf(stderr, "\nPer-stage timing tree:\n\n%s", o.Trace.TimingTree())
			fmt.Fprintf(stderr, "\nMetrics snapshot:\n\n%s", o.Metrics.Snapshot().String())
		}
		return firstErr
	}
	return ctx, finish, 0
}

// Command studysim runs the full study simulation and regenerates the
// paper's tables and figures.
//
// Usage:
//
//	studysim [-seed N] [-jobs N] [-opt N] [-artifact NAME] [-csv]
//	studysim -stats -trace trace.json [-v] [-cpuprofile cpu.out]
//
// With no flags it prints every table and figure in paper order using the
// shipped seed. -artifact selects a single artifact (table1, table2,
// table3, table4, fig1..fig8, intext, metrics, complexity, ablations,
// confound, optlevels, telemetry); -csv dumps the anonymized response
// dataset instead. -opt prepares the snippets at an optimization level
// (0-2); the default 0 keeps every artifact byte-identical with earlier
// releases, and the optlevels artifact sweeps all three levels.
//
// Observability flags: -stats prints the per-stage timing tree and a
// metrics snapshot to stderr after the run, -trace writes a Chrome
// trace-event JSON file (load it at chrome://tracing or ui.perfetto.dev),
// -v / -log-level enable structured logging, and -cpuprofile/-memprofile
// write pprof profiles. -debug-addr serves the live /debug HTTP surface
// (Prometheus metrics, span ring, stage aggregates, pprof) for the
// duration of the run, with runtime gauges refreshed every -debug-sample.
//
// Robustness flags: -faults arms deterministic fault injection from a plan
// spec (see internal/fault), -retry-budget bounds transient-fault retries.
// When injection is armed (or anything was excluded) the run manifest —
// exclusions and retry counts — is printed to stderr after the run.
//
// Performance flags: -model-cache DIR persists trained models to a
// content-addressed on-disk store so reruns skip training entirely;
// -no-model-cache disables the model store (every run trains fresh);
// -no-stream falls back to the barrier-synchronized pipeline instead of
// the default cross-stage streaming DAG. All three are output-invariant:
// artifacts are byte-identical with any combination.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strings"

	"decompstudy/internal/core"
	"decompstudy/internal/experiments"
	"decompstudy/internal/fault"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("studysim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "simulation seed (0 = shipped default)")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "worker count for pipeline fan-outs (results are identical at any value)")
	artifact := fs.String("artifact", "", "single artifact to render ("+experiments.ArtifactNames()+")")
	csv := fs.Bool("csv", false, "dump the anonymized response dataset as CSV")
	optLevel := fs.Int("opt", 0, "optimization level snippets are prepared at (0, 1, or 2; 0 keeps output byte-identical)")
	export := fs.String("export", "", "write the replication package (CSV + JSON) to this directory")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file of the pipeline spans")
	stats := fs.Bool("stats", false, "print the per-stage timing tree and metrics snapshot to stderr")
	verbose := fs.Bool("v", false, "enable debug logging (shorthand for -log-level debug)")
	logLevel := fs.String("log-level", "", "structured log level: debug, info, warn, error")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	faults := fs.String("faults", "", "fault-injection plan, e.g. 'seed=1; csrc.parse:error,key=AEEK' (see internal/fault)")
	retryBudget := fs.Int("retry-budget", fault.DefaultRetryBudget, "per-run retry budget for transient injected faults")
	debugAddr := fs.String("debug-addr", "", "serve live /debug endpoints (metrics, spans, stage, pprof) on this address; port 0 picks a free port")
	debugSample := fs.Duration("debug-sample", obs.DefaultSampleInterval, "runtime sampling interval for the /debug metrics gauges")
	modelCache := fs.String("model-cache", "", "persist trained models to this directory, content-addressed (reruns skip training)")
	noModelCache := fs.Bool("no-model-cache", false, "disable the in-process model store; every run trains fresh")
	noStream := fs.Bool("no-stream", false, "use the barrier-synchronized pipeline instead of the streaming DAG (outputs are identical)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	store, err := modelstore.FromFlags(*modelCache, *noModelCache)
	if err != nil {
		fmt.Fprintf(stderr, "studysim: %v\n", err)
		return 2
	}

	// Validate -artifact before the (expensive) pipeline runs so typos fail
	// fast with the full menu.
	name := strings.ToLower(*artifact)
	var entry experiments.Artifact
	if name != "" {
		var ok bool
		entry, ok = experiments.LookupArtifact(name)
		if !ok {
			fmt.Fprintf(stderr, "studysim: unknown artifact %q\nvalid artifacts: %s\n", *artifact, experiments.ArtifactNames())
			return 2
		}
	}

	// Assemble the telemetry handle. -artifact telemetry implies tracing and
	// metrics even without -stats/-trace, since the report renders them;
	// -debug-addr implies both, since the /debug surface serves them live.
	o := &obs.Obs{}
	if *tracePath != "" || *stats || name == "telemetry" || *debugAddr != "" {
		o.Trace = obs.NewCollector()
		o.Metrics = obs.NewRegistry()
	}
	if *verbose || *logLevel != "" {
		level := slog.LevelDebug
		if *logLevel != "" {
			var err error
			level, err = obs.ParseLevel(*logLevel)
			if err != nil {
				fmt.Fprintf(stderr, "studysim: %v\n", err)
				return 2
			}
		}
		o.Log = obs.NewLogger(stderr, level)
	}
	ctx := par.WithJobs(obs.With(context.Background(), o), *jobs)
	if store != nil {
		ctx = modelstore.With(ctx, store)
	}

	// Start the live debug surface before the pipeline so a scrape observes
	// the run from its first span. The sampler keeps the runtime gauges
	// fresh between scrapes; both shut down when the run ends.
	if *debugAddr != "" {
		sampler := obs.NewSampler(o.Metrics, *debugSample)
		sampler.Start()
		debug, err := obs.ServeDebug(*debugAddr, o)
		if err != nil {
			sampler.Stop()
			fmt.Fprintf(stderr, "studysim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "studysim: debug server listening on http://%s/debug/\n", debug.Addr())
		defer func() {
			if err := debug.Close(); err != nil {
				fmt.Fprintf(stderr, "studysim: debug server: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
			sampler.Stop()
		}()
	}

	// Arm fault injection and attach a run manifest so exclusions and
	// retries can be reported after the run.
	manifest := fault.NewManifest()
	ctx = fault.WithManifest(ctx, manifest)
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "studysim: %v\n", err)
			return 2
		}
		ctx = fault.With(ctx, fault.NewInjector(plan, *retryBudget))
	}
	defer func() {
		if *faults != "" || !manifest.Empty() {
			fmt.Fprintf(stderr, "\n%s", manifest.Report())
		}
	}()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "studysim: %v\n", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(stderr, "studysim: cpu profile: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	defer func() {
		if *memprofile != "" {
			if err := obs.WriteHeapProfile(*memprofile); err != nil {
				fmt.Fprintf(stderr, "studysim: heap profile: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
	}()
	defer func() {
		if o.Trace != nil && *tracePath != "" {
			if err := writeTrace(o.Trace, *tracePath); err != nil {
				fmt.Fprintf(stderr, "studysim: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
		if *stats && o.Trace != nil {
			fmt.Fprintf(stderr, "\nPer-stage timing tree:\n\n%s", o.Trace.TimingTree())
			fmt.Fprintf(stderr, "\nMetrics snapshot:\n\n%s", o.Metrics.Snapshot().String())
		}
	}()

	r, err := experiments.NewRunnerCtx(ctx, &core.Config{Seed: *seed, Jobs: *jobs, OptLevel: *optLevel, NoStream: *noStream})
	if err != nil {
		fmt.Fprintf(stderr, "studysim: %v\n", err)
		return 1
	}
	if *csv {
		fmt.Fprint(stdout, r.Study.Dataset.CSV())
		return 0
	}
	if *export != "" {
		if err := r.Study.Dataset.WriteReplicationPackage(*export); err != nil {
			fmt.Fprintf(stderr, "studysim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "replication package written to %s\n", *export)
		return 0
	}

	var out string
	if name == "" {
		out, err = r.All()
	} else {
		out, err = entry.Render(r, *seed)
	}
	if err != nil {
		fmt.Fprintf(stderr, "studysim: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}

func writeTrace(c *obs.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := c.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	return f.Close()
}

// Command studysim runs the full study simulation and regenerates the
// paper's tables and figures.
//
// Usage:
//
//	studysim [-seed N] [-artifact NAME] [-csv]
//
// With no flags it prints every table and figure in paper order using the
// shipped seed. -artifact selects a single artifact (table1, table2,
// table3, table4, fig1..fig8, intext, metrics); -csv dumps the anonymized
// response dataset instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"decompstudy/internal/core"
	"decompstudy/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 0, "simulation seed (0 = shipped default)")
	artifact := flag.String("artifact", "", "single artifact to render (table1..table4, fig1..fig8, intext, metrics, ablations, confound)")
	csv := flag.Bool("csv", false, "dump the anonymized response dataset as CSV")
	export := flag.String("export", "", "write the replication package (CSV + JSON) to this directory")
	flag.Parse()

	r, err := experiments.NewRunner(&core.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "studysim: %v\n", err)
		return 1
	}
	if *csv {
		fmt.Print(r.Study.Dataset.CSV())
		return 0
	}
	if *export != "" {
		if err := r.Study.Dataset.WriteReplicationPackage(*export); err != nil {
			fmt.Fprintf(os.Stderr, "studysim: %v\n", err)
			return 1
		}
		fmt.Printf("replication package written to %s\n", *export)
		return 0
	}

	var out string
	switch strings.ToLower(*artifact) {
	case "":
		out, err = r.All()
	case "table1":
		out, err = r.TableI()
	case "table2":
		out, err = r.TableII()
	case "table3":
		out, err = r.TableIII()
	case "table4":
		out, err = r.TableIV()
	case "fig1":
		out, err = r.Figure1()
	case "fig2":
		out, err = r.Figure2()
	case "fig3":
		out, err = r.Figure3()
	case "fig4":
		out, err = r.Figure4()
	case "fig5":
		out, err = r.Figure5()
	case "fig6":
		out, err = r.Figure6()
	case "fig7":
		out, err = r.Figure7()
	case "fig8":
		out, err = r.Figure8()
	case "intext":
		out, err = r.InTextStats()
	case "metrics":
		out = r.MetricReportTable()
	case "ablations":
		out, _, err = experiments.Ablations(*seed)
	case "confound":
		out, err = experiments.ConfoundComparison()
	default:
		fmt.Fprintf(os.Stderr, "studysim: unknown artifact %q\n", *artifact)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "studysim: %v\n", err)
		return 1
	}
	fmt.Print(out)
	return 0
}

package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"decompstudy/internal/experiments"
)

func TestUnknownArtifactListsValidNames(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-artifact", "bogus"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run(-artifact bogus) = %d, want exit code 2", code)
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown artifact "bogus"`) {
		t.Errorf("stderr missing unknown-artifact notice: %q", msg)
	}
	// The error must enumerate every registered artifact.
	for _, name := range strings.Split(experiments.ArtifactNames(), ", ") {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr missing valid artifact %q: %q", name, msg)
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout should be empty on usage error, got %q", stdout.String())
	}
}

func TestUnknownArtifactFailsBeforePipeline(t *testing.T) {
	// The validation must run before the study pipeline: a bogus artifact
	// combined with a bogus export dir should still exit 2 without creating
	// anything.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-artifact", "nope", "-export", t.TempDir() + "/x"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestBadModelCacheDirExitsTwo(t *testing.T) {
	// An unusable -model-cache directory must fail fast, before the
	// pipeline, with the path named — same contract as unknown artifacts.
	for name, dir := range map[string]string{
		"missing": t.TempDir() + "/does/not/exist",
		"file":    mustTempFile(t),
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{"-model-cache", dir}, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("run(-model-cache %s) = %d, want exit code 2", dir, code)
			}
			if msg := stderr.String(); !strings.Contains(msg, dir) {
				t.Errorf("stderr does not name the bad cache dir %q: %q", dir, msg)
			}
			if stdout.Len() != 0 {
				t.Errorf("stdout should be empty on usage error, got %q", stdout.String())
			}
		})
	}
}

func mustTempFile(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/not-a-dir"
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestArtifactRegistryCoversDocumentedNames(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"intext", "metrics", "complexity", "ablations", "confound",
		"optlevels", "telemetry",
	}
	got := strings.Split(experiments.ArtifactNames(), ", ")
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], name)
		}
		if _, ok := experiments.LookupArtifact(name); !ok {
			t.Errorf("LookupArtifact(%q) not found", name)
		}
	}
}

package decompstudy

// BenchmarkKernels measures the serial hot kernels the pipeline spends its
// wall-clock in — the targets of the PR-4 kernel pass. Each sub-benchmark
// isolates one kernel at jobs=1 so the numbers measure single-thread
// throughput, not scheduling; scripts/bench.sh records ns/op and
// allocs/op per kernel in BENCH_kernels.json and compares against the
// committed pre-rewrite baseline.

import (
	"context"
	"fmt"
	"testing"

	"decompstudy/internal/corpus"
	"decompstudy/internal/embed"
	"decompstudy/internal/linalg"
	"decompstudy/internal/metrics"
	"decompstudy/internal/mixed"
	"decompstudy/internal/par"
)

// kernelModel trains one embedding model on the study corpus, shared by the
// cosine kernels.
func kernelModel(b *testing.B) *embed.Model {
	b.Helper()
	ctxs, err := corpus.EmbeddingContexts()
	if err != nil {
		b.Fatal(err)
	}
	m, err := embed.Train(ctxs, &embed.Config{Dim: 24})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// kernelSpec builds a small crossed-design mixed-model spec shaped like the
// paper's correctness/timing models (42 users × 8 questions).
func kernelSpec(b *testing.B, binary bool) *mixed.Spec {
	b.Helper()
	const users, questions = 42, 8
	n := users * questions
	rows := make([][]float64, 0, n)
	resp := make([]float64, 0, n)
	userIdx := make([]int, 0, n)
	qIdx := make([]int, 0, n)
	// Deterministic LCG so the spec is identical across runs.
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40) / float64(1<<24)
	}
	for u := 0; u < users; u++ {
		for q := 0; q < questions; q++ {
			treat := float64((u + q) % 2)
			x1 := next()*4 + 1
			x2 := next()*4 + 1
			rows = append(rows, []float64{1, treat, x1, x2})
			y := 0.3*treat + 0.2*x1 - 0.1*x2 + next()
			if binary {
				if y > 1.4 {
					y = 1
				} else {
					y = 0
				}
			}
			resp = append(resp, y)
			userIdx = append(userIdx, u)
			qIdx = append(qIdx, q)
		}
	}
	fixed, err := linalg.NewMatrixFromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	return &mixed.Spec{
		Response:   resp,
		Fixed:      fixed,
		FixedNames: []string{"(Intercept)", "uses_DIRTY", "Exp_Coding", "Exp_RE"},
		Random: []mixed.RandomFactor{
			{Name: "user", Index: userIdx, NLevels: users},
			{Name: "question", Index: qIdx, NLevels: questions},
		},
	}
}

// BenchmarkKernels is the per-kernel harness behind BENCH_kernels.json.
func BenchmarkKernels(b *testing.B) {
	ctx1 := par.WithJobs(context.Background(), 1)

	b.Run("embed_train", func(b *testing.B) {
		ctxs, err := corpus.EmbeddingContexts()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := embed.TrainCtx(ctx1, ctxs, &embed.Config{Dim: 24}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cosine_miss", func(b *testing.B) {
		m := kernelModel(b)
		// Distinct multi-subtoken pairs so every lookup takes the memo-cache
		// miss path; the identifier pool is warmed below so steady-state
		// misses are measured, not first-touch tokenization.
		pool := make([]string, 512)
		for i := range pool {
			pool[i] = fmt.Sprintf("bufLen%dNode", i)
		}
		for _, id := range pool {
			m.Cosine(id, "sizeValue")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Cosine(pool[i%len(pool)], pool[(i*7+3)%len(pool)])
		}
	})

	b.Run("cosine_hit", func(b *testing.B) {
		m := kernelModel(b)
		m.Cosine("size", "length")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Cosine("size", "length")
		}
	})

	b.Run("levenshtein", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			metrics.Levenshtein("recursive_descent_parser", "recursiveDescentParse")
		}
	})

	b.Run("metrics_evaluate", func(b *testing.B) {
		m := kernelModel(b)
		s, _ := corpus.SnippetByID("AEEK")
		p, err := corpus.Prepare(s)
		if err != nil {
			b.Fatal(err)
		}
		pairs := make([]metrics.Pair, 0, len(p.Dirty.Renames))
		for _, r := range p.Dirty.Renames {
			pairs = append(pairs, metrics.Pair{Candidate: r.NewName, Reference: r.OrigName})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := metrics.EvaluateCtx(ctx1, pairs, p.Dirty.Source(), p.OrigSource, m); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("lmm_fit", func(b *testing.B) {
		spec := kernelSpec(b, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mixed.FitLMM(spec); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("glmm_fit", func(b *testing.B) {
		spec := kernelSpec(b, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mixed.FitGLMMLogit(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

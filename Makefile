GO ?= go

.PHONY: all build test race vet fmt-check check bench-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check:
	./scripts/check.sh

# One iteration of every benchmark — catches bit-rot in the bench suite
# without the cost of a real measurement run.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...

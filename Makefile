GO ?= go

.PHONY: all build test race vet lint fmt-check check chaos debug-smoke opt-check store-check serve-check bench bench-pipeline bench-kernels bench-opt bench-serve bench-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis over the corpus and example programs: go vet plus the
# project's own IR linter. The corpus and clean.c must come back clean;
# dirty.c deliberately seeds one finding per checker and must NOT.
lint: vet
	$(GO) run ./cmd/irlint -corpus examples/lintdemo/clean.c
	@if $(GO) run ./cmd/irlint examples/lintdemo/dirty.c >/dev/null 2>&1; then \
		echo "irlint: examples/lintdemo/dirty.c should have findings"; exit 1; \
	else \
		echo "irlint: dirty.c findings detected (expected)"; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check:
	./scripts/check.sh

# The fault-injection chaos suite: sweep fault plans across every injection
# point of the full pipeline under -race, plus the error-path contract tests
# and the internal/par masking regression tests.
chaos:
	./scripts/check.sh chaos

# Drive the live /debug HTTP surface: a race-instrumented studysim run is
# stretched with a delay-only fault plan, every /debug endpoint is scraped
# mid-run (must answer 200 with a parseable payload), and stdout must stay
# byte-identical to a clean run.
debug-smoke:
	./scripts/check.sh debug-smoke

# The optimizer gate: the compile/opt unit + differential suites under
# -race, a clean `irlint -corpus -opt 2`, dirty.c's seeded dead stores
# deleted at -opt 1, and byte-identical studysim output at -O0.
opt-check:
	./scripts/check.sh opt

# The model-store gate: the store's single-flight/disk/fault tests plus
# the streaming determinism matrix and model marshal round-trips under
# -race, then a studysim identity sweep — cold disk cache, warm reuse,
# -no-model-cache, -no-stream, jobs 1 vs 8 must all hash identical.
store-check:
	./scripts/check.sh store

# The serving gate: the serve package's batcher/admission/e2e suites and
# the modelstore storm test under -race, then a live smoke — served on an
# ephemeral port, a zero-error loadgen run over every endpoint, the
# serve.request series on /debug/metrics, /v1/study byte-identical to the
# studysim CLI at seed 26, and a clean SIGTERM drain.
serve-check:
	./scripts/check.sh serve

# Measure the parallel pipeline at jobs=1,2,4,8 and record ns/op plus the
# speedup over the sequential baseline, the per-stage breakdown, and the
# Amdahl serial-fraction estimate in BENCH_pipeline.json.
bench:
	./scripts/bench.sh

# The pipeline measurement by its explicit name: jobs sweep, cold-vs-warm
# model store, and the batched ablation grid, gated against the committed
# BENCH_pipeline.json (>10% ns/op regressions and serial-fraction rises
# print warnings).
bench-pipeline:
	./scripts/bench.sh pipeline

# Measure the serial hot kernels (embedding training, cosine cache paths,
# Levenshtein, metric battery, mixed-model fits) with -benchmem and record
# ns/op + allocs/op against the pre-optimization baseline in
# BENCH_kernels.json, warning on >10% regressions vs the committed file.
bench-kernels:
	./scripts/bench.sh kernels

# Measure the verified optimizer over the full corpus (SSA round-trips,
# verifier gates, differential execution) and record ns/op, the corpus
# instruction shrink per level, and the per-pass time split in
# BENCH_opt.json.
bench-opt:
	./scripts/bench.sh opt

# Measure decompilation-as-a-service: served is booted twice on ephemeral
# ports — batched and -no-batch at the same worker count — and loadgen
# replays the same closed-loop mix against each. Records both full reports
# plus the batched-over-unbatched throughput ratio and p50/p90/p99 in
# BENCH_serve.json, warning on a >10% batched-p99 regression vs the
# committed file.
bench-serve:
	./scripts/bench.sh serve

# One iteration of every benchmark — catches bit-rot in the bench suite
# without the cost of a real measurement run.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...

package qualcode

import (
	"errors"
	"math"
	"testing"

	"decompstudy/internal/corpus"
	"decompstudy/internal/embed"
)

func TestSynthesizeThemes(t *testing.T) {
	responses := []CodedResponse{
		{UserID: 5, Code: "usage-demonstrates-purpose", Correct: true},
		{UserID: 6, Code: "usage-demonstrates-purpose", Correct: true},
		{UserID: 5, Code: "usage-demonstrates-purpose", Correct: false},
		{UserID: 1, Code: "names-indicate-usage", Correct: false},
		{UserID: 2, Code: "names-indicate-usage", Correct: false},
		{UserID: 3, Code: ""}, // uncoded, ignored
	}
	themes, err := SynthesizeThemes(responses)
	if err != nil {
		t.Fatalf("SynthesizeThemes: %v", err)
	}
	if len(themes) != 2 {
		t.Fatalf("themes = %d, want 2", len(themes))
	}
	// Sorted by code: names-indicate-usage first.
	if themes[0].Code != "names-indicate-usage" || themes[0].Label() != "(P1, P2)" {
		t.Errorf("theme[0] = %+v (label %s)", themes[0], themes[0].Label())
	}
	if themes[1].CorrectRate <= themes[0].CorrectRate {
		t.Errorf("usage-theme correct rate %v should exceed names-theme %v (the §IV-A pattern)",
			themes[1].CorrectRate, themes[0].CorrectRate)
	}
}

func TestSynthesizeThemesEmpty(t *testing.T) {
	if _, err := SynthesizeThemes(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := SynthesizeThemes([]CodedResponse{{UserID: 1}}); !errors.Is(err, ErrNoData) {
		t.Fatalf("uncoded only: err = %v, want ErrNoData", err)
	}
}

func panelModel(t *testing.T) *embed.Model {
	t.Helper()
	ctxs, err := corpus.EmbeddingContexts()
	if err != nil {
		t.Fatalf("EmbeddingContexts: %v", err)
	}
	m, err := embed.Train(ctxs, &embed.Config{Dim: 16})
	if err != nil {
		t.Fatalf("embed.Train: %v", err)
	}
	return m
}

func studyPairSets(t *testing.T) []PairSet {
	t.Helper()
	prepared, err := corpus.PrepareAll()
	if err != nil {
		t.Fatalf("PrepareAll: %v", err)
	}
	var sets []PairSet
	for _, p := range prepared {
		sets = append(sets, PairSet{
			SnippetID: p.Snippet.ID,
			NamePairs: p.Dirty.MetricPairs(),
			TypePairs: p.Dirty.TypePairs(),
		})
	}
	return sets
}

func TestRatePanelAgreement(t *testing.T) {
	res, err := RatePanel(studyPairSets(t), panelModel(t), &PanelConfig{Seed: 3})
	if err != nil {
		t.Fatalf("RatePanel: %v", err)
	}
	// Paper §IV-E: ordinal Krippendorff α = 0.872 — substantial agreement.
	if res.Alpha < 0.75 || res.Alpha > 0.97 {
		t.Errorf("alpha = %v, want substantial agreement ≈0.87", res.Alpha)
	}
	if res.Units < 30 {
		t.Errorf("rated units = %d, want ≥30 (names + types across 4 snippets)", res.Units)
	}
	for _, id := range []string{"AEEK", "BAPL", "POSTORDER", "TC"} {
		v, ok := res.VariableScore[id]
		if !ok || math.IsNaN(v) || v < 1 || v > 5 {
			t.Errorf("variable score for %s = %v", id, v)
		}
	}
}

func TestRatePanelSimilarityOrdering(t *testing.T) {
	res, err := RatePanel(studyPairSets(t), panelModel(t), &PanelConfig{Seed: 3})
	if err != nil {
		t.Fatalf("RatePanel: %v", err)
	}
	// The postorder annotations are textually close to ground truth (t→t,
	// ret→ret) despite being misassigned; experts judging name pairs in
	// isolation rate them most similar — the RQ5 disconnect.
	if res.VariableScore["POSTORDER"] <= res.VariableScore["TC"] {
		t.Errorf("POSTORDER variable similarity %v should exceed TC %v",
			res.VariableScore["POSTORDER"], res.VariableScore["TC"])
	}
}

func TestRatePanelDeterministic(t *testing.T) {
	sets := studyPairSets(t)
	m := panelModel(t)
	r1, err := RatePanel(sets, m, &PanelConfig{Seed: 9})
	if err != nil {
		t.Fatalf("RatePanel: %v", err)
	}
	r2, err := RatePanel(sets, m, &PanelConfig{Seed: 9})
	if err != nil {
		t.Fatalf("RatePanel: %v", err)
	}
	if r1.Alpha != r2.Alpha {
		t.Error("panel not deterministic for fixed seed")
	}
}

func TestRatePanelNoData(t *testing.T) {
	if _, err := RatePanel(nil, nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

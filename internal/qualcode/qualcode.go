// Package qualcode implements the study's two qualitative instruments:
//
//   - grounded-theory open coding of participants' answer rationales
//     (§IV-A): codes are synthesized into themes with the participant
//     lists the paper reports ("P5, P6, P7, …"),
//   - the RQ5 expert similarity panel: twelve simulated expert raters
//     score every DIRTY renaming against the original name on a 5-point
//     Likert scale, with inter-rater agreement measured by ordinal
//     Krippendorff's alpha (the paper reports α = 0.872).
package qualcode

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"decompstudy/internal/embed"
	"decompstudy/internal/htest"
	"decompstudy/internal/metrics"
	"decompstudy/internal/obs"
)

// ErrNoData is returned when an analysis receives no input.
var ErrNoData = errors.New("qualcode: no data")

// Theme is one synthesized open-coding theme.
type Theme struct {
	Code string
	// Participants lists the IDs whose rationales carry the code,
	// ascending.
	Participants []int
	// CorrectRate is the fraction of those responses graded correct.
	CorrectRate float64
}

// Label renders the paper's "(P5, P6, P7)" participant list.
func (t Theme) Label() string {
	parts := make([]string, len(t.Participants))
	for i, p := range t.Participants {
		parts[i] = fmt.Sprintf("P%d", p)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CodedResponse is the minimal view of a response the open-coding pass
// needs.
type CodedResponse struct {
	UserID  int
	Code    string
	Correct bool
}

// SynthesizeThemes groups coded rationales into themes, mirroring the
// §IV-A analysis.
func SynthesizeThemes(responses []CodedResponse) ([]Theme, error) {
	if len(responses) == 0 {
		return nil, ErrNoData
	}
	byCode := map[string][]CodedResponse{}
	for _, r := range responses {
		if r.Code == "" {
			continue
		}
		byCode[r.Code] = append(byCode[r.Code], r)
	}
	if len(byCode) == 0 {
		return nil, fmt.Errorf("qualcode: no coded rationales: %w", ErrNoData)
	}
	var themes []Theme
	for code, rs := range byCode {
		seen := map[int]bool{}
		correct := 0
		var ids []int
		for _, r := range rs {
			if !seen[r.UserID] {
				seen[r.UserID] = true
				ids = append(ids, r.UserID)
			}
			if r.Correct {
				correct++
			}
		}
		sort.Ints(ids)
		themes = append(themes, Theme{
			Code:         code,
			Participants: ids,
			CorrectRate:  float64(correct) / float64(len(rs)),
		})
	}
	sort.Slice(themes, func(i, j int) bool { return themes[i].Code < themes[j].Code })
	return themes, nil
}

// PanelConfig controls the expert similarity panel.
type PanelConfig struct {
	// Raters is the panel size. Zero means the paper's 12.
	Raters int
	// Seed drives rater bias and noise.
	Seed int64
}

func (c *PanelConfig) defaults() PanelConfig {
	out := PanelConfig{Raters: 12, Seed: 1}
	if c == nil {
		return out
	}
	if c.Raters > 0 {
		out.Raters = c.Raters
	}
	out.Seed = c.Seed
	return out
}

// PanelResult is the expert panel's output.
type PanelResult struct {
	// VariableScore and TypeScore are mean Likert similarity ratings
	// (1 = not at all similar … 5 = identical) per snippet ID.
	VariableScore map[string]float64
	TypeScore     map[string]float64
	// Alpha is the ordinal Krippendorff agreement across all rating units.
	Alpha float64
	// Units is the number of rated (pair) units.
	Units int
}

// PairSet carries one snippet's aligned name and type pairs.
type PairSet struct {
	SnippetID string
	NamePairs [][2]string // (recovered, original)
	TypePairs [][2]string
}

// RatePanel runs the simulated expert panel over the snippets' aligned
// pairs. Each rater perceives the true similarity of a pair (a blend of
// surface and embedding similarity) through individual bias and noise; the
// discretized ratings exhibit the high-but-imperfect agreement the paper
// reports.
func RatePanel(sets []PairSet, model *embed.Model, cfg *PanelConfig) (*PanelResult, error) {
	return RatePanelCtx(context.Background(), sets, model, cfg)
}

// RatePanelCtx is RatePanel with telemetry: a qualcode.RatePanel span plus
// unit counters when the context carries an obs handle.
func RatePanelCtx(ctx context.Context, sets []PairSet, model *embed.Model, cfg *PanelConfig) (*PanelResult, error) {
	_, sp := obs.StartSpan(ctx, "qualcode.RatePanel", obs.KV("sets", len(sets)))
	defer sp.End()
	obs.AddCount(ctx, "qualcode.panel.sets", int64(len(sets)))
	if len(sets) == 0 {
		return nil, ErrNoData
	}
	c := cfg.defaults()
	rng := rand.New(rand.NewSource(c.Seed))
	// Each rater occasionally deviates one Likert step from the consensus
	// judgment; the rate is calibrated to the paper's α = 0.872.
	const deviationRate = 0.14

	trueSim := func(cand, ref string) float64 {
		surface := metrics.JaccardNGrams(cand, ref, 2)
		token := metrics.TokenJaccard(cand, ref)
		sem := 0.0
		if model != nil {
			sem = (model.Cosine(cand, ref) + 1) / 2
		}
		s := 0.45*surface + 0.35*token + 0.2*sem
		if cand == ref {
			s = 1
		}
		return s
	}

	res := &PanelResult{
		VariableScore: map[string]float64{},
		TypeScore:     map[string]float64{},
	}
	var allRatings [][]float64
	ratePairs := func(pairs [][2]string) float64 {
		if len(pairs) == 0 {
			return math.NaN()
		}
		sum := 0.0
		for _, p := range pairs {
			s := trueSim(p[0], p[1])
			consensus := math.Round(1 + 4*s)
			unit := make([]float64, c.Raters)
			for r := 0; r < c.Raters; r++ {
				lv := consensus
				if rng.Float64() < deviationRate {
					if rng.Intn(2) == 0 {
						lv++
					} else {
						lv--
					}
				}
				if lv < 1 {
					lv = 1
				}
				if lv > 5 {
					lv = 5
				}
				unit[r] = lv
			}
			allRatings = append(allRatings, unit)
			m := 0.0
			for _, v := range unit {
				m += v
			}
			sum += m / float64(c.Raters)
		}
		return sum / float64(len(pairs))
	}

	for _, set := range sets {
		res.VariableScore[set.SnippetID] = ratePairs(set.NamePairs)
		res.TypeScore[set.SnippetID] = ratePairs(set.TypePairs)
	}
	res.Units = len(allRatings)
	alpha, err := htest.KrippendorffOrdinal(allRatings)
	if err != nil {
		return nil, fmt.Errorf("qualcode: agreement: %w", err)
	}
	res.Alpha = alpha
	return res, nil
}

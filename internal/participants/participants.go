// Package participants implements the synthetic participant pool that
// substitutes for the paper's 40 human reverse engineers. Each participant
// is a small cognitive model with interpretable parameters calibrated from
// the paper's own analysis:
//
//   - a latent skill intercept (the GLMER's user random effect, σ≈0.85),
//   - coding and reverse-engineering experience with the signs Table I/II
//     report (coding helps correctness but correlates with slower answers;
//     RE experience the reverse),
//   - a trust propensity governing whether the participant accepts
//     annotations at face value — the mechanism the paper's qualitative
//     coding identified: trusting participants were misled by the
//     postorder swap and AEEK's `ret`, skeptical participants answered
//     from usage and were correct but slower (§IV-A, §IV-B),
//   - a speed factor for completion-time heterogeneity.
//
// Demographics are sampled to match Figure 3's distributions.
package participants

import (
	"fmt"
	"math"
	"math/rand"

	"decompstudy/internal/corpus"
	"decompstudy/internal/stats"
)

// Occupation mirrors the paper's recruitment categories.
type Occupation int

// Occupations.
const (
	Student Occupation = iota + 1
	Professional
	Unemployed
)

func (o Occupation) String() string {
	switch o {
	case Student:
		return "Student"
	case Professional:
		return "Full-time Employee"
	case Unemployed:
		return "Unemployed"
	default:
		return fmt.Sprintf("Occupation(%d)", int(o))
	}
}

// Demographics holds the Figure 3 attributes.
type Demographics struct {
	AgeGroup  string
	Gender    string
	Education string
}

// Participant is one synthetic reverse engineer.
type Participant struct {
	ID         int
	Occupation Occupation
	Demo       Demographics
	// ExpCoding and ExpRE are years of general coding and reverse
	// engineering experience.
	ExpCoding float64
	ExpRE     float64
	// SkillLogit is the latent per-user ability intercept.
	SkillLogit float64
	// Trust in [0,1] is the propensity to accept annotations at face
	// value.
	Trust float64
	// SpeedFactor multiplies completion times (1 = average).
	SpeedFactor float64
	// Rusher marks low-effort participants who fail the §III-E quality
	// check and are excluded from analysis.
	Rusher bool
}

// PoolConfig controls pool generation.
type PoolConfig struct {
	// Students, Professionals, Unemployed are the recruitment counts. The
	// zero value uses the paper's 31/10/1.
	Students, Professionals, Unemployed int
	// Rushers is the number of low-effort participants (paper: one student
	// and one professional were excluded). Zero keeps the paper's 2; pass
	// a negative value for none.
	Rushers int
	// TrustAlpha and TrustBeta parameterize the Beta distribution of the
	// trust propensity. Zero values keep the calibrated Beta(2,2); a
	// skepticism-training intervention (§V) would shift mass toward zero,
	// e.g. Beta(1.2, 3).
	TrustAlpha, TrustBeta float64
}

func (c *PoolConfig) defaults() PoolConfig {
	out := PoolConfig{Students: 31, Professionals: 10, Unemployed: 1, Rushers: 2}
	if c == nil {
		return out
	}
	if c.Students > 0 || c.Professionals > 0 || c.Unemployed > 0 {
		out.Students, out.Professionals, out.Unemployed = c.Students, c.Professionals, c.Unemployed
	}
	switch {
	case c.Rushers > 0:
		out.Rushers = c.Rushers
	case c.Rushers < 0:
		out.Rushers = 0
	}
	out.TrustAlpha, out.TrustBeta = c.TrustAlpha, c.TrustBeta
	return out
}

// SamplePool generates the recruited participant pool.
func SamplePool(rng *rand.Rand, cfg *PoolConfig) []*Participant {
	c := cfg.defaults()
	trustA, trustB := c.TrustAlpha, c.TrustBeta
	if trustA <= 0 {
		trustA = 2
	}
	if trustB <= 0 {
		trustB = 2
	}
	var pool []*Participant
	add := func(occ Occupation, n int) {
		for i := 0; i < n; i++ {
			p := &Participant{
				ID:          len(pool) + 1,
				Occupation:  occ,
				SkillLogit:  rng.NormFloat64() * 0.85,
				Trust:       sampleBeta(rng, trustA, trustB),
				SpeedFactor: math.Exp(rng.NormFloat64() * 0.35),
			}
			switch occ {
			case Student:
				p.ExpCoding = 2 + float64(rng.Intn(6))
				p.ExpRE = 0.5 + float64(rng.Intn(3))
				p.Demo = Demographics{
					AgeGroup:  pick(rng, []string{"18-24", "18-24", "18-24", "25-34"}),
					Gender:    pick(rng, []string{"Male", "Male", "Male", "Female", "N/A"}),
					Education: pick(rng, []string{"No degree", "No degree", "Bachelor's"}),
				}
			case Professional:
				p.ExpCoding = 5 + float64(rng.Intn(15))
				p.ExpRE = 2 + float64(rng.Intn(10))
				p.Demo = Demographics{
					AgeGroup:  pick(rng, []string{"25-34", "25-34", "35-44", "45+"}),
					Gender:    pick(rng, []string{"Male", "Male", "Male", "Female"}),
					Education: pick(rng, []string{"Bachelor's", "Bachelor's", "Professional", "Doctorate"}),
				}
			case Unemployed:
				p.ExpCoding = 3 + float64(rng.Intn(8))
				p.ExpRE = 1 + float64(rng.Intn(4))
				p.Demo = Demographics{AgeGroup: "25-34", Gender: "N/A", Education: "Bachelor's"}
			}
			pool = append(pool, p)
		}
	}
	add(Student, c.Students)
	add(Professional, c.Professionals)
	add(Unemployed, c.Unemployed)

	// Mark rushers: alternate occupations so the paper's "one student, one
	// professional" exclusion reproduces.
	marked := 0
	for i := 0; i < len(pool) && marked < c.Rushers; i++ {
		if (marked == 0 && pool[i].Occupation == Student) ||
			(marked == 1 && pool[i].Occupation == Professional) ||
			marked >= 2 {
			pool[i].Rusher = true
			marked++
		}
	}
	return pool
}

func pick(rng *rand.Rand, options []string) string {
	return options[rng.Intn(len(options))]
}

// sampleBeta draws from Beta(a, b) via two gamma draws (Jöhnk for small
// shapes is unnecessary; a,b ≥ 1 here).
func sampleBeta(rng *rand.Rand, a, b float64) float64 {
	x := sampleGamma(rng, a)
	y := sampleGamma(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// sampleGamma draws from Gamma(shape, 1) using Marsaglia-Tsang.
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Outcome is one participant's simulated interaction with one question.
type Outcome struct {
	Answered bool
	// Gradable reports whether the free-text answer could be objectively
	// graded (§III-C: some responses were too vague to grade).
	Gradable bool
	Correct  bool
	TimeSec  float64
	// RationaleCode is the grounded-theory open code the answer's
	// justification maps to (§IV-A's two themes), set for misleading
	// treatment questions.
	RationaleCode string
}

// Rationale codes from the paper's qualitative analysis.
const (
	CodeUsageDemonstrates = "usage-demonstrates-purpose"
	CodeNamesIndicate     = "names-indicate-usage"
)

// AnswerQuestion simulates one participant answering one question.
func (p *Participant) AnswerQuestion(rng *rand.Rand, q corpus.Question, usesDirty bool) Outcome {
	out := Outcome{Answered: true, Gradable: true}
	// Optional questions: a small fraction go unanswered (§III-E), and a
	// further fraction of answers are ungradable free text.
	if rng.Float64() < 0.026 {
		return Outcome{}
	}
	if rng.Float64() < 0.075 {
		out.Gradable = false
	}

	// Correctness: mixed-effects data-generating process.
	logit := q.Calib.ControlLogit +
		0.06*(p.ExpCoding-6) -
		0.025*(p.ExpRE-3) +
		p.SkillLogit
	if usesDirty {
		if q.Calib.Misleading {
			// Trust mediates: face-value readers are misled, skeptics
			// answer from usage (paper §IV-A).
			logit += q.Calib.TreatDelta * (0.35 + 1.3*p.Trust)
			if p.Trust > 0.6 {
				out.RationaleCode = CodeNamesIndicate
			} else {
				out.RationaleCode = CodeUsageDemonstrates
			}
		} else {
			logit += q.Calib.TreatDelta
		}
		// Skeptics read the code rather than the labels and are slightly
		// more accurate whenever annotations are present (§V: annotations
		// should complement direct analysis).
		logit += 1.5 * (0.5 - p.Trust)
	}
	out.Correct = rng.Float64() < stats.LogisticCDF(logit+rng.NormFloat64()*0.2)

	// Timing: lognormal base with the Table II covariate signs.
	mu := math.Log(q.Calib.TimeMeanSec)
	sigma := q.Calib.TimeSDSec / q.Calib.TimeMeanSec * 0.8
	t := math.Exp(mu+rng.NormFloat64()*sigma) * p.SpeedFactor
	t += 2.8*(p.ExpCoding-6) - 3.4*(p.ExpRE-3)
	if usesDirty {
		t += q.Calib.TreatTimeDelta
		if q.Calib.Misleading && out.Correct {
			// Correct answers on misleading annotations required the slow,
			// skeptical path (AEEK Q2, Fig. 7c).
			t += (1 - p.Trust) * 180
		}
	}
	if p.Rusher {
		t = 1 + rng.Float64()*2 // seconds: fails the quality check
	}
	if t < 5 && !p.Rusher {
		t = 5 + rng.Float64()*5
	}
	out.TimeSec = t
	return out
}

// Opinion is one participant's Likert ratings for a snippet arm. Scale:
// 1 = "Provided immediate", 2 = "Improved", 3 = "Did not affect",
// 4 = "Hindered", 5 = "Prevented".
type Opinion struct {
	NameLikert int
	TypeLikert int
}

// RateSnippet simulates the §III-D perception survey for one snippet.
func (p *Participant) RateSnippet(rng *rand.Rand, snip *corpus.Snippet, usesDirty bool) Opinion {
	clamp := func(v float64) int {
		r := int(math.Round(v))
		if r < 1 {
			return 1
		}
		if r > 5 {
			return 5
		}
		return r
	}
	if !usesDirty {
		// Hex-Rays names rarely indicate purpose (§IV-C): centered between
		// "did not affect" and "hindered".
		return Opinion{
			NameLikert: clamp(3.5 + rng.NormFloat64()*0.7),
			TypeLikert: clamp(2.9 + rng.NormFloat64()*0.8),
		}
	}
	// DIRTY names are universally preferred; trusting participants rate
	// them even higher (the §IV-A trust/correctness link).
	name := 2.1 - 0.9*p.Trust + rng.NormFloat64()*0.6
	typ := 3.6 - 2.0*p.Trust + rng.NormFloat64()*0.35 + snip.TypeOpinionPenalty
	return Opinion{NameLikert: clamp(name), TypeLikert: clamp(typ)}
}

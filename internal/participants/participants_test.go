package participants

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decompstudy/internal/corpus"
	"decompstudy/internal/stats"
)

func TestSamplePoolDefaultComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := SamplePool(rng, nil)
	if len(pool) != 42 {
		t.Fatalf("pool = %d, want 42 recruited (31+10+1)", len(pool))
	}
	counts := map[Occupation]int{}
	rushers := map[Occupation]int{}
	for _, p := range pool {
		counts[p.Occupation]++
		if p.Rusher {
			rushers[p.Occupation]++
		}
	}
	if counts[Student] != 31 || counts[Professional] != 10 || counts[Unemployed] != 1 {
		t.Errorf("composition = %v, want 31/10/1", counts)
	}
	// Paper §III-E: one student and one professional fail the quality check.
	if rushers[Student] != 1 || rushers[Professional] != 1 {
		t.Errorf("rushers = %v, want one student and one professional", rushers)
	}
}

func TestSamplePoolCustomAndNoRushers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := SamplePool(rng, &PoolConfig{Students: 5, Professionals: 3, Unemployed: 0, Rushers: -1})
	if len(pool) != 8 {
		t.Fatalf("pool = %d, want 8", len(pool))
	}
	for _, p := range pool {
		if p.Rusher {
			t.Error("Rushers: -1 should produce no rushers")
		}
	}
}

func TestParticipantParameterRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := SamplePool(rng, nil)
	for _, p := range pool {
		if p.Trust < 0 || p.Trust > 1 {
			t.Errorf("participant %d trust = %v outside [0,1]", p.ID, p.Trust)
		}
		if p.SpeedFactor <= 0 {
			t.Errorf("participant %d speed = %v, want positive", p.ID, p.SpeedFactor)
		}
		if p.ExpCoding < 0 || p.ExpRE < 0 {
			t.Errorf("participant %d negative experience", p.ID)
		}
		if p.Demo.AgeGroup == "" || p.Demo.Education == "" {
			t.Errorf("participant %d missing demographics", p.ID)
		}
	}
}

func testQuestion(misleading bool) corpus.Question {
	return corpus.Question{
		ID: "T-Q", Kind: corpus.KindPurpose,
		Calib: corpus.Calibration{
			ControlLogit: 0.5, TreatDelta: -2.5, Misleading: misleading,
			TimeMeanSec: 200, TimeSDSec: 100, TreatTimeDelta: 20,
		},
	}
}

func TestTrustMediatesMisleadingQuestions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := testQuestion(true)
	trusting := &Participant{Trust: 0.95, SpeedFactor: 1, ExpCoding: 6, ExpRE: 3}
	skeptic := &Participant{Trust: 0.05, SpeedFactor: 1, ExpCoding: 6, ExpRE: 3}
	const n = 600
	var trustCorrect, skepticCorrect int
	for i := 0; i < n; i++ {
		if o := trusting.AnswerQuestion(rng, q, true); o.Answered && o.Gradable && o.Correct {
			trustCorrect++
		}
		if o := skeptic.AnswerQuestion(rng, q, true); o.Answered && o.Gradable && o.Correct {
			skepticCorrect++
		}
	}
	if trustCorrect >= skepticCorrect {
		t.Errorf("trusting participants should be misled more: trusting %d vs skeptic %d correct", trustCorrect, skepticCorrect)
	}
}

func TestRationaleCodesMatchTrust(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := testQuestion(true)
	trusting := &Participant{Trust: 0.9, SpeedFactor: 1, ExpCoding: 6, ExpRE: 3}
	o := Outcome{}
	for !o.Answered {
		o = trusting.AnswerQuestion(rng, q, true)
	}
	if o.RationaleCode != CodeNamesIndicate {
		t.Errorf("trusting rationale = %q, want %q", o.RationaleCode, CodeNamesIndicate)
	}
	skeptic := &Participant{Trust: 0.1, SpeedFactor: 1, ExpCoding: 6, ExpRE: 3}
	o = Outcome{}
	for !o.Answered {
		o = skeptic.AnswerQuestion(rng, q, true)
	}
	if o.RationaleCode != CodeUsageDemonstrates {
		t.Errorf("skeptic rationale = %q, want %q", o.RationaleCode, CodeUsageDemonstrates)
	}
}

func TestSkepticsSlowerWhenCorrectOnMisleading(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := testQuestion(true)
	skeptic := &Participant{Trust: 0.05, SpeedFactor: 1, ExpCoding: 6, ExpRE: 3}
	var correctTimes, controlTimes []float64
	for i := 0; i < 800; i++ {
		if o := skeptic.AnswerQuestion(rng, q, true); o.Answered && o.Correct {
			correctTimes = append(correctTimes, o.TimeSec)
		}
		if o := skeptic.AnswerQuestion(rng, q, false); o.Answered && o.Correct {
			controlTimes = append(controlTimes, o.TimeSec)
		}
	}
	if len(correctTimes) < 20 || len(controlTimes) < 20 {
		t.Fatalf("not enough correct answers: %d / %d", len(correctTimes), len(controlTimes))
	}
	if stats.Mean(correctTimes) <= stats.Mean(controlTimes)+100 {
		t.Errorf("skeptic correct-on-DIRTY mean %v should be ≫ control %v (AEEK Q2 shape)",
			stats.Mean(correctTimes), stats.Mean(controlTimes))
	}
}

func TestRusherFailsQualityCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := testQuestion(false)
	r := &Participant{Rusher: true, SpeedFactor: 1, ExpCoding: 6, ExpRE: 3}
	for i := 0; i < 50; i++ {
		o := r.AnswerQuestion(rng, q, false)
		if o.Answered && o.TimeSec > 10 {
			t.Fatalf("rusher time %v, want < 10s", o.TimeSec)
		}
	}
}

func TestRateSnippetNamePreference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	snip, _ := corpus.SnippetByID("AEEK")
	p := &Participant{Trust: 0.5, SpeedFactor: 1}
	var dirtySum, hexSum float64
	const n = 400
	for i := 0; i < n; i++ {
		dirtySum += float64(p.RateSnippet(rng, snip, true).NameLikert)
		hexSum += float64(p.RateSnippet(rng, snip, false).NameLikert)
	}
	// Lower is better; DIRTY names must be strongly preferred (§IV-C).
	if dirtySum/n >= hexSum/n-0.8 {
		t.Errorf("DIRTY name rating %v not clearly better than Hex-Rays %v", dirtySum/n, hexSum/n)
	}
}

func TestRateSnippetTCTypePenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tc, _ := corpus.SnippetByID("TC")
	aeek, _ := corpus.SnippetByID("AEEK")
	p := &Participant{Trust: 0.5, SpeedFactor: 1}
	var tcSum, aeekSum float64
	const n = 400
	for i := 0; i < n; i++ {
		tcSum += float64(p.RateSnippet(rng, tc, true).TypeLikert)
		aeekSum += float64(p.RateSnippet(rng, aeek, true).TypeLikert)
	}
	if tcSum/n <= aeekSum/n {
		t.Errorf("TC DIRTY types should rate worse (higher): TC %v vs AEEK %v", tcSum/n, aeekSum/n)
	}
}

func TestOccupationString(t *testing.T) {
	if Student.String() != "Student" || Professional.String() != "Full-time Employee" || Unemployed.String() != "Unemployed" {
		t.Error("Occupation String mismatch")
	}
}

// Property: outcomes are always well-formed — time positive when answered,
// Likert ratings in 1..5.
func TestQuickOutcomeWellFormed(t *testing.T) {
	snip, _ := corpus.SnippetByID("BAPL")
	q := snip.Questions[0]
	f := func(seed int64, trustRaw uint8, dirty bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Participant{
			Trust:       float64(trustRaw%100) / 100,
			SpeedFactor: 0.5 + float64(trustRaw%10)/10,
			ExpCoding:   float64(trustRaw % 20),
			ExpRE:       float64(trustRaw % 8),
		}
		o := p.AnswerQuestion(rng, q, dirty)
		if o.Answered && (o.TimeSec <= 0 || math.IsNaN(o.TimeSec)) {
			return false
		}
		op := p.RateSnippet(rng, snip, dirty)
		return op.NameLikert >= 1 && op.NameLikert <= 5 && op.TypeLikert >= 1 && op.TypeLikert <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package obs

import (
	"sort"
	"strings"
)

// Label is one key/value dimension of a metric series. A metric name plus
// its sorted label set identifies a series: requests{code="200"} and
// requests{code="500"} are independent counters under one name.
type Label struct {
	Key   string
	Value string
}

// L builds a Label — the short constructor used at instrumentation sites:
//
//	obs.AddCountL(ctx, "fault.injected", 1, obs.L("point", "csrc.parse"))
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders a metric name and label set into the canonical series
// key: the bare name with no labels, otherwise name{k1="v1",k2="v2"} with
// labels sorted by key and values escaped. The key doubles as the display
// form in snapshots, so labeled series read the same in text, JSON, and
// Prometheus output. The returned label slice is the sorted private copy
// the registry retains.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.Grow(len(name) + 16*len(ls))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), ls
}

// escapeLabelValue escapes a label value for the quoted exposition form:
// backslash, double quote, and newline become \\, \", and \n — exactly the
// Prometheus text-format escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// keyHash is FNV-1a over the series key, used only to pick a registry
// shard.
func keyHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// fakeClock yields a deterministic, strictly increasing time source.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (f *fakeClock) now() time.Time {
	f.t = f.t.Add(f.step)
	return f.t
}

func newTestCollector(step time.Duration) *Collector {
	base := time.Unix(1000, 0)
	fc := &fakeClock{t: base, step: step}
	return &Collector{epoch: base, now: fc.now}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	c := newTestCollector(time.Millisecond)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)

	ctx1, root := StartSpan(ctx, "root")
	ctx2, child := StartSpan(ctx1, "child", KV("k", "v"))
	_, grand := StartSpan(ctx2, "grandchild")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx1, "sibling")
	sib.End()
	root.End()

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	wantNames := []string{"root", "child", "grandchild", "sibling"}
	for i, w := range wantNames {
		if spans[i].Name != w {
			t.Errorf("span[%d] = %q, want %q (start order)", i, spans[i].Name, w)
		}
	}
	if spans[0].Parent != 0 {
		t.Errorf("root parent = %d, want 0", spans[0].Parent)
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("child parent = %d, want root ID %d", spans[1].Parent, spans[0].ID)
	}
	if spans[2].Parent != spans[1].ID {
		t.Errorf("grandchild parent = %d, want child ID %d", spans[2].Parent, spans[1].ID)
	}
	if spans[3].Parent != spans[0].ID {
		t.Errorf("sibling parent = %d, want root ID %d", spans[3].Parent, spans[0].ID)
	}
	for _, sp := range spans {
		if sp.Finish <= sp.Start {
			t.Errorf("span %s: Finish %v <= Start %v", sp.Name, sp.Finish, sp.Start)
		}
	}
	// The root must cover all of its descendants.
	if spans[0].Finish < spans[2].Finish || spans[0].Start > spans[2].Start {
		t.Errorf("root [%v,%v] does not cover grandchild [%v,%v]",
			spans[0].Start, spans[0].Finish, spans[2].Start, spans[2].Finish)
	}
}

func TestTimingTree(t *testing.T) {
	c := newTestCollector(time.Millisecond)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)

	ctx1, root := StartSpan(ctx, "core.New")
	_, prep := StartSpan(ctx1, "corpus.PrepareAll", KV("snippets", 4))
	prep.End()
	_, sv := StartSpan(ctx1, "survey.Run")
	sv.End()
	root.End()

	tree := c.TimingTree()
	for _, want := range []string{"core.New", "├─ corpus.PrepareAll snippets=4", "└─ survey.Run"} {
		if !strings.Contains(tree, want) {
			t.Errorf("timing tree missing %q:\n%s", want, tree)
		}
	}
}

func TestStageSummaryAndTotals(t *testing.T) {
	c := newTestCollector(time.Millisecond)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "stage.a")
		sp.End()
	}
	_, sp := StartSpan(ctx, "stage.b")
	sp.End()

	totals := c.StageTotals()
	// Each span takes exactly 1 fake tick (start and end each advance 1ms,
	// so duration per span is 1ms).
	if got := totals["stage.a"]; got != 3*time.Millisecond {
		t.Errorf("stage.a total = %v, want 3ms", got)
	}
	sum := c.StageSummary()
	if len(sum) != 2 || sum[0].Name != "stage.a" || sum[0].Count != 3 {
		t.Errorf("summary = %+v, want stage.a first with count 3", sum)
	}
}

func TestDisabledFastPathsAreNoOps(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "nothing", KV("a", 1))
	if sp != nil {
		t.Fatal("disabled StartSpan returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled StartSpan rebound the context")
	}
	sp.End()
	sp.SetAttr("k", "v")
	Start(ctx, "nothing").End()
	AddCount(ctx, "c", 1)
	SetGauge(ctx, "g", 1)
	Observe(ctx, "h", 1)
	ObserveDuration(ctx, "h", time.Second)
	if Logger(ctx) == nil {
		t.Fatal("Logger returned nil")
	}
	Logger(ctx).Info("discarded")

	var zero Obs
	if zero.Enabled() {
		t.Fatal("zero-value Obs reports enabled")
	}
	if got := With(ctx, &zero); got != ctx {
		t.Fatal("With(zero) rebound the context")
	}
	if got := With(ctx, nil); got != ctx {
		t.Fatal("With(nil) rebound the context")
	}
}

func TestLoggerCarriesSpanID(t *testing.T) {
	var buf bytes.Buffer
	c := newTestCollector(time.Millisecond)
	o := &Obs{Trace: c, Log: NewLogger(&buf, slog.LevelDebug)}
	ctx := With(context.Background(), o)
	ctx, sp := StartSpan(ctx, "corpus.Prepare")
	Logger(ctx).Info("hello")
	sp.End()
	out := buf.String()
	if !strings.Contains(out, "span=1") || !strings.Contains(out, "stage=corpus.Prepare") {
		t.Errorf("log line missing span tags: %q", out)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) succeeded, want error")
	}
}

func TestCollectorReset(t *testing.T) {
	c := newTestCollector(time.Millisecond)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)
	_, sp := StartSpan(ctx, "a")
	sp.End()
	c.Reset()
	if n := len(c.Spans()); n != 0 {
		t.Fatalf("after Reset: %d spans, want 0", n)
	}
	_, sp = StartSpan(ctx, "b")
	sp.End()
	if spans := c.Spans(); len(spans) != 1 || spans[0].ID != 1 {
		t.Fatalf("after Reset: spans = %+v, want one span with ID 1", spans)
	}
}

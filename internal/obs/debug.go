package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// DebugServer is the live telemetry surface of a long-running process: an
// http.Handler mounting, under /debug/,
//
//	/debug/health       liveness + uptime JSON
//	/debug/metrics      Prometheus text exposition (?format=json for the
//	                    registry snapshot)
//	/debug/spans        the span ring as JSON, most recent last (?n=K
//	                    limits to the last K)
//	/debug/spans/trace  Chrome trace-event JSON download
//	/debug/stage        per-stage aggregates (?format=json)
//	/debug/pprof/       the stdlib pprof index, profile, symbol, trace
//
// Every handler reads the live collector and registry, so scraping
// mid-run observes the pipeline as it executes. The handler is mountable
// as a mux root (the CLIs' -debug-addr does exactly that) or inside a
// larger server's mux.
type DebugServer struct {
	o       *Obs
	started time.Time
	mux     *http.ServeMux
}

// NewDebugServer builds the /debug surface over a telemetry handle. Nil
// handles (or handles missing a facility) degrade to empty-but-valid
// responses rather than errors, so mounting is unconditional.
func NewDebugServer(o *Obs) *DebugServer {
	if o == nil {
		o = &Obs{}
	}
	s := &DebugServer{o: o, started: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("/debug/health", s.handleHealth)
	s.mux.HandleFunc("/debug/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/spans", s.handleSpans)
	s.mux.HandleFunc("/debug/spans/trace", s.handleSpansTrace)
	s.mux.HandleFunc("/debug/stage", s.handleStage)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

func (s *DebugServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *DebugServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	health := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Goroutines    int     `json:"goroutines"`
		Spans         int     `json:"spans"`
		DroppedSpans  uint64  `json:"dropped_spans"`
	}{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
	}
	if c := s.o.Trace; c != nil {
		health.Spans = len(c.Spans())
		health.DroppedSpans = c.Dropped()
	}
	writeJSON(w, health)
}

func (s *DebugServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.o.Metrics
	if r.URL.Query().Get("format") == "json" {
		if reg == nil {
			writeJSON(w, Snapshot{})
			return
		}
		raw, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		w.Write([]byte("\n"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if reg == nil {
		return
	}
	if err := reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// spanJSON is one span in the /debug/spans payload, timestamps in
// microseconds since the collector epoch like the Chrome trace export.
type spanJSON struct {
	ID       uint64            `json:"id"`
	Parent   uint64            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	StartUS  float64           `json:"start_us"`
	DurUS    float64           `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Finished bool              `json:"finished"`
}

func (s *DebugServer) handleSpans(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Capacity int        `json:"capacity"`
		Count    int        `json:"count"`
		Dropped  uint64     `json:"dropped"`
		Spans    []spanJSON `json:"spans"`
	}{Spans: []spanJSON{}}
	if c := s.o.Trace; c != nil {
		spans := c.Spans()
		out.Capacity = c.Cap()
		out.Dropped = c.Dropped()
		out.Count = len(spans)
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		for _, sp := range spans {
			j := spanJSON{
				ID:       sp.ID,
				Parent:   sp.Parent,
				Name:     sp.Name,
				StartUS:  float64(sp.Start.Nanoseconds()) / 1e3,
				DurUS:    float64((sp.Finish - sp.Start).Nanoseconds()) / 1e3,
				Finished: sp.Finish >= sp.Start,
			}
			if len(sp.Attrs) > 0 {
				j.Attrs = map[string]string{}
				for _, a := range sp.Attrs {
					j.Attrs[a.Key] = a.Value
				}
			}
			out.Spans = append(out.Spans, j)
		}
	}
	writeJSON(w, out)
}

func (s *DebugServer) handleSpansTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	c := s.o.Trace
	if c == nil {
		c = NewCollectorCap(1) // empty trace document
	}
	if err := c.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *DebugServer) handleStage(w http.ResponseWriter, r *http.Request) {
	var stats []StageStat
	if c := s.o.Trace; c != nil {
		stats = c.StageSummary()
	}
	if r.URL.Query().Get("format") == "json" {
		type stageJSON struct {
			Name         string  `json:"name"`
			Count        int     `json:"count"`
			TotalSeconds float64 `json:"total_seconds"`
		}
		out := make([]stageJSON, 0, len(stats))
		for _, st := range stats {
			out = append(out, stageJSON{Name: st.Name, Count: st.Count, TotalSeconds: st.Total.Seconds()})
		}
		writeJSON(w, out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
		return
	}
	for _, st := range stats {
		fmt.Fprintf(w, "%-44s count=%-6d total=%s\n", st.Name, st.Count, st.Total)
	}
}

// DebugListener is a running debug HTTP server bound to a TCP address —
// what a CLI's -debug-addr flag starts. Close shuts the server down and
// releases the port.
type DebugListener struct {
	addr string
	srv  *http.Server
	done chan struct{}
}

// ServeDebug binds addr (host:port; port 0 picks a free port) and serves
// the /debug surface for o in a background goroutine. The returned
// listener reports the resolved address and closes the server.
func ServeDebug(addr string, o *Obs) (*DebugListener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d := &DebugListener{
		addr: lis.Addr().String(),
		srv:  &http.Server{Handler: NewDebugServer(o)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		// Serve returns http.ErrServerClosed (or a closed-listener error)
		// on shutdown; either way the CLI run is over.
		_ = d.srv.Serve(lis)
	}()
	return d, nil
}

// Addr returns the resolved listen address (useful with port 0).
func (d *DebugListener) Addr() string { return d.addr }

// Close stops the server and waits for the serve goroutine to exit.
func (d *DebugListener) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}

package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path after forcing a GC
// so the numbers reflect live heap.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: writing heap profile: %w", err)
	}
	return nil
}

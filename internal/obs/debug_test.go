package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newPopulatedObs builds a handle with a few finished spans and metrics so
// every /debug endpoint has content to serve.
func newPopulatedObs() *Obs {
	o := New()
	ctx := With(context.Background(), o)
	pctx, parent := StartSpan(ctx, "study.Run", KV("seed", 26))
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(pctx, "corpus.Prepare")
		sp.End()
	}
	parent.End()
	o.Metrics.Counter("pipeline.calls").Add(5)
	o.Metrics.CounterL("fault.injected", L("point", "csrc.parse")).Inc()
	o.Metrics.Histogram("stage.seconds", nil).Observe(0.25)
	return o
}

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body), rec.Header().Get("Content-Type")
}

func TestDebugMetricsEndpoint(t *testing.T) {
	s := NewDebugServer(newPopulatedObs())

	code, body, ctype := get(t, s, "/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status = %d", code)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ctype)
	}
	for _, want := range []string{
		"# TYPE pipeline_calls counter",
		"pipeline_calls 5",
		`fault_injected{point="csrc.parse"} 1`,
		`stage_seconds_bucket{le="+Inf"} 1`,
		"stage_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	code, body, ctype = get(t, s, "/debug/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("json metrics status = %d", code)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("json content type = %q", ctype)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("json metrics body does not parse: %v\n%s", err, body)
	}
	if _, ok := snap["counters"]; !ok {
		t.Errorf("json snapshot missing counters: %s", body)
	}
}

func TestDebugSpansEndpoints(t *testing.T) {
	s := NewDebugServer(newPopulatedObs())

	code, body, _ := get(t, s, "/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans status = %d", code)
	}
	var spans struct {
		Capacity int        `json:"capacity"`
		Count    int        `json:"count"`
		Dropped  uint64     `json:"dropped"`
		Spans    []spanJSON `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("spans body does not parse: %v\n%s", err, body)
	}
	if spans.Count != 4 || len(spans.Spans) != 4 {
		t.Errorf("count = %d, spans = %d, want 4 each", spans.Count, len(spans.Spans))
	}
	if spans.Capacity != DefaultSpanCap {
		t.Errorf("capacity = %d, want %d", spans.Capacity, DefaultSpanCap)
	}
	if got := spans.Spans[0].Name; got != "study.Run" {
		t.Errorf("first span = %q, want study.Run", got)
	}
	if spans.Spans[0].Attrs["seed"] != "26" {
		t.Errorf("attrs = %v, want seed=26", spans.Spans[0].Attrs)
	}

	// ?n= keeps only the most recent spans.
	code, body, _ = get(t, s, "/debug/spans?n=2")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans?n=2 status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans.Spans) != 2 || spans.Count != 4 {
		t.Errorf("n=2 returned %d spans (count %d), want 2 of 4", len(spans.Spans), spans.Count)
	}

	// The Chrome trace download is valid trace-event JSON.
	code, body, ctype := get(t, s, "/debug/spans/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans/trace status = %d", code)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("trace content type = %q", ctype)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace body does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}

func TestDebugStageAndHealthEndpoints(t *testing.T) {
	s := NewDebugServer(newPopulatedObs())

	code, body, _ := get(t, s, "/debug/stage")
	if code != http.StatusOK {
		t.Fatalf("/debug/stage status = %d", code)
	}
	if !strings.Contains(body, "corpus.Prepare") || !strings.Contains(body, "count=3") {
		t.Errorf("stage text missing aggregate:\n%s", body)
	}

	code, body, _ = get(t, s, "/debug/stage?format=json")
	if code != http.StatusOK {
		t.Fatalf("stage json status = %d", code)
	}
	var stages []struct {
		Name         string  `json:"name"`
		Count        int     `json:"count"`
		TotalSeconds float64 `json:"total_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &stages); err != nil {
		t.Fatalf("stage json does not parse: %v\n%s", err, body)
	}
	if len(stages) != 2 {
		t.Errorf("stage json = %+v, want 2 stages", stages)
	}

	code, body, _ = get(t, s, "/debug/health")
	if code != http.StatusOK {
		t.Fatalf("/debug/health status = %d", code)
	}
	var health struct {
		Status     string `json:"status"`
		Goroutines int    `json:"goroutines"`
		Spans      int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("health body does not parse: %v", err)
	}
	if health.Status != "ok" || health.Goroutines < 1 || health.Spans != 4 {
		t.Errorf("health = %+v, want ok with 4 spans", health)
	}
}

func TestDebugPprofMounted(t *testing.T) {
	s := NewDebugServer(newPopulatedObs())
	code, body, _ := get(t, s, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profile listing:\n%.200s", body)
	}
	code, _, _ = get(t, s, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestDebugNilFacilities mounts the surface over an empty handle: every
// endpoint must still answer 200 with an empty-but-valid payload.
func TestDebugNilFacilities(t *testing.T) {
	s := NewDebugServer(nil)
	for _, path := range []string{
		"/debug/health", "/debug/metrics", "/debug/metrics?format=json",
		"/debug/spans", "/debug/spans/trace", "/debug/stage",
	} {
		code, body, _ := get(t, s, path)
		if code != http.StatusOK {
			t.Errorf("%s status = %d with nil facilities", path, code)
		}
		if body == "" && !strings.Contains(path, "metrics") {
			t.Errorf("%s returned empty body", path)
		}
	}
}

func TestServeDebugBindsAndCloses(t *testing.T) {
	o := newPopulatedObs()
	d, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	addr := d.Addr()
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("addr = %q, want resolved 127.0.0.1 port", addr)
	}
	resp, err := http.Get("http://" + addr + "/debug/health")
	if err != nil {
		t.Fatalf("GET health: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("health over TCP = %d %q", resp.StatusCode, body)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/health"); err == nil {
		t.Error("server still serving after Close")
	}
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference estimator: the smallest sample whose rank
// covers q*n — the same rank convention the bucket walk uses, so the two
// must land in the same bucket.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketWidthAt returns the width of the bucket that contains v (the
// guaranteed error bound of linear interpolation within a bucket).
func bucketWidthAt(bounds []float64, v float64) float64 {
	lo := 0.0
	for _, ub := range bounds {
		if v <= ub {
			return ub - lo
		}
		lo = ub
	}
	return math.Inf(1)
}

// TestQuantileWithinBucketWidth is the property test: for random positive
// samples that stay inside the finite buckets, the interpolated estimate
// must sit within one bucket width of the exact sorted-sample quantile.
func TestQuantileWithinBucketWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := []float64{0.5, 1, 2, 4, 8, 16, 32, 64}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for trial := 0; trial < 50; trial++ {
		r := NewRegistry()
		h := r.Histogram("q", bounds)
		n := 1 + rng.Intn(500)
		samples := make([]float64, n)
		for i := range samples {
			// Exponential-ish positive values capped below the top bound.
			v := math.Min(rng.ExpFloat64()*4, 63.9)
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		hs := r.Snapshot().Histograms["q"]
		for _, q := range quantiles {
			est := hs.Quantile(q)
			exact := exactQuantile(samples, q)
			width := bucketWidthAt(bounds, exact)
			if diff := math.Abs(est - exact); diff > width+1e-9 {
				t.Fatalf("trial %d n=%d q=%g: estimate %g vs exact %g differs by %g > bucket width %g",
					trial, n, q, est, exact, diff, width)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", []float64{1, 2})

	// Empty histogram estimates 0 for every quantile.
	hs := r.Snapshot().Histograms["edge"]
	for _, q := range []float64{0, 0.5, 1} {
		if got := hs.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	// Mass beyond the finite buckets clamps to the highest finite bound.
	h.Observe(100)
	h.Observe(200)
	hs = r.Snapshot().Histograms["edge"]
	if got := hs.Quantile(0.99); got != 2 {
		t.Errorf("overflow Quantile(0.99) = %g, want clamp to 2", got)
	}
	if hs.P99 != 2 || hs.P50 != 2 {
		t.Errorf("snapshot quantiles = p50 %g p99 %g, want both 2", hs.P50, hs.P99)
	}

	// Out-of-range q clamps instead of misbehaving. With all mass in the
	// overflow bucket even q=0 clamps to the highest finite bound.
	if got := hs.Quantile(-1); got != 2 {
		t.Errorf("Quantile(-1) = %g, want 2 (clamped to q=0, overflow mass)", got)
	}
	if got := hs.Quantile(2); got != 2 {
		t.Errorf("Quantile(2) = %g, want the max estimate", got)
	}
	if got := hs.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %g, want 0", got)
	}
}

// TestSnapshotQuantilesInterpolate pins one hand-computed interpolation so
// the estimator can't silently change convention.
func TestSnapshotQuantilesInterpolate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("interp", []float64{10, 20})
	// 10 observations in (0,10], none above.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	hs := r.Snapshot().Histograms["interp"]
	// rank = 0.5*10 = 5 of 10 in bucket (0,10] → 0 + 10*(5/10) = 5.
	if hs.P50 != 5 {
		t.Errorf("P50 = %g, want 5", hs.P50)
	}
	// rank = 9 of 10 → 9.
	if hs.P90 != 9 {
		t.Errorf("P90 = %g, want 9", hs.P90)
	}
}

package obs

import (
	"runtime"
	"sync"
	"time"
)

// DefaultSampleInterval is the runtime sampler's default tick.
const DefaultSampleInterval = time.Second

// Sampler periodically reads Go runtime health (heap, GC, goroutines)
// into registry gauges, so a long-lived process exposes its resource
// profile on /debug/metrics without anyone attaching a profiler. It is
// started and stopped alongside the collector that owns the registry:
//
//	s := obs.NewSampler(o.Metrics, 0)
//	s.Start()
//	defer s.Stop()
//
// Start samples once synchronously before launching the background
// goroutine, so the gauges exist from the first scrape.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewSampler builds a sampler writing into reg every interval (<= 0 means
// DefaultSampleInterval). A nil registry yields a sampler whose Start and
// Stop are no-ops.
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{reg: reg, interval: interval}
}

// Start samples once and launches the background sampling goroutine.
// Starting an already-started sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil || s.reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.sample()
	go s.loop(s.stop, s.done)
}

// Stop halts the background goroutine and waits for it to exit, taking one
// final sample so the gauges reflect end-of-run state. Safe to call twice
// and on a never-started sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
	s.sample()
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

// sample reads the runtime counters into gauges. Gauge names live under
// the runtime.* prefix so they sort together in snapshots and exposition.
func (s *Sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
	s.reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	s.reg.Gauge("runtime.sys_bytes").Set(float64(ms.Sys))
	s.reg.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
	s.reg.Gauge("runtime.gc_runs").Set(float64(ms.NumGC))
	s.reg.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	s.reg.Counter("runtime.samples").Inc()
}

package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingEvictsOldest checks the single-threaded ring contract: capacity
// is never exceeded, the retained spans are the most recent ones in start
// order, and the drop counter accounts exactly for the evictions.
func TestRingEvictsOldest(t *testing.T) {
	c := NewCollectorCap(4)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("s%d", i))
		sp.End()
	}
	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, want := range []string{"s6", "s7", "s8", "s9"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q", i, spans[i].Name, want)
		}
	}
	if got := c.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	if got := c.Cap(); got != 4 {
		t.Errorf("cap = %d, want 4", got)
	}
}

// TestRingEvictedSpanEndIsSafe ends a span after it has been evicted from
// the ring — End must stay safe (the span just records into itself).
func TestRingEvictedSpanEndIsSafe(t *testing.T) {
	c := NewCollectorCap(2)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)
	_, first := StartSpan(ctx, "evicted")
	for i := 0; i < 4; i++ {
		_, sp := StartSpan(ctx, "filler")
		sp.End()
	}
	first.End() // evicted by now
	first.SetAttr("late", "attr")
	if d := first.Duration(); d < 0 {
		t.Errorf("evicted span duration = %v, want >= 0", d)
	}
}

// TestRingBoundedUnderConcurrentStarts hammers one collector from many
// goroutines with 10x the ring capacity in span starts (the acceptance
// load), asserting bounded retention and exact drop accounting; run with
// -race to verify the ring is data-race free.
func TestRingBoundedUnderConcurrentStarts(t *testing.T) {
	const capacity = 64
	const workers = 8
	const perWorker = capacity * 10 / workers // 10x capacity in total
	c := NewCollectorCap(capacity)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sctx, sp := StartSpan(ctx, "outer", KV("w", w))
				_, inner := StartSpan(sctx, "inner")
				inner.End()
				sp.End()
				// Concurrent readers must see a consistent bounded view.
				if i%50 == 0 {
					if n := len(c.Spans()); n > capacity {
						t.Errorf("Spans() returned %d > capacity %d", n, capacity)
					}
					_ = c.Dropped()
					_ = c.StageTotals()
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * perWorker * 2) // outer + inner per iteration
	if n := len(c.Spans()); n != capacity {
		t.Errorf("retained %d spans, want capacity %d", n, capacity)
	}
	if got := c.Dropped(); got != total-capacity {
		t.Errorf("dropped = %d, want %d (started %d, capacity %d)",
			got, total-capacity, total, capacity)
	}
	// IDs keep counting past the ring: the newest retained span has the
	// final ID.
	spans := c.Spans()
	if last := spans[len(spans)-1].ID; last != total {
		t.Errorf("newest span ID = %d, want %d", last, total)
	}
}

// TestRingRendersAfterWrap checks the renderers stay usable on a wrapped
// ring (orphaned children whose parents were evicted must not break the
// tree walk).
func TestRingRendersAfterWrap(t *testing.T) {
	c := NewCollectorCap(3)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)
	pctx, parent := StartSpan(ctx, "parent")
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(pctx, "child")
		sp.End()
	}
	parent.End()
	if tree := c.TimingTree(); tree == "" {
		t.Error("TimingTree on wrapped ring is empty")
	}
	if sum := c.StageSummary(); len(sum) == 0 {
		t.Error("StageSummary on wrapped ring is empty")
	}
	c.Reset()
	if len(c.Spans()) != 0 || c.Dropped() != 0 {
		t.Error("Reset did not clear ring and drop counter")
	}
	if got := c.Cap(); got != 3 {
		t.Errorf("Reset changed capacity to %d, want 3", got)
	}
}

func TestSamplerSetsRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, 10*time.Millisecond)
	s.Start()
	s.Start() // second Start is a no-op
	time.Sleep(35 * time.Millisecond)
	s.Stop()
	s.Stop() // second Stop is a no-op
	if g := r.Gauge("runtime.goroutines").Value(); g < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", g)
	}
	if g := r.Gauge("runtime.heap_alloc_bytes").Value(); g <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %g, want > 0", g)
	}
	if n := r.Counter("runtime.samples").Value(); n < 2 {
		t.Errorf("runtime.samples = %d, want >= 2 (start + ticks + stop)", n)
	}
	// Nil-registry and nil samplers are inert.
	NewSampler(nil, 0).Start()
	var nilSampler *Sampler
	nilSampler.Start()
	nilSampler.Stop()
}

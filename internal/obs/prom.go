package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): one # TYPE header per metric family, then one
// line per series with labels sorted by key and values escaped. Metric
// names are sanitized (every character outside [a-zA-Z0-9_:] becomes '_',
// so the registry's dotted names read as embed_cache_lookups). Histograms
// emit cumulative _bucket series with le labels ending at +Inf, plus _sum
// and _count. Families and series are emitted in sorted order, so the
// output is byte-stable for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type series struct {
		meta seriesMeta
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	// family groups every series sharing a sanitized name and metric kind
	// (keyed by both, so a name accidentally reused across kinds still
	// emits each series under a correct # TYPE header).
	type famKey struct {
		name string
		kind string // "counter", "gauge", "histogram"
	}
	fams := map[famKey][]series{}
	add := func(kind, key string, sh *regShard, s series) {
		m, ok := sh.meta[key]
		if !ok {
			m = seriesMeta{name: key}
		}
		s.meta = m
		fk := famKey{name: sanitizeMetricName(m.name), kind: kind}
		fams[fk] = append(fams[fk], s)
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for key, c := range sh.counters {
			add("counter", key, sh, series{c: c})
		}
		for key, g := range sh.gauges {
			add("gauge", key, sh, series{g: g})
		}
		for key, h := range sh.hists {
			add("histogram", key, sh, series{h: h})
		}
		sh.mu.RUnlock()
	}

	keys := make([]famKey, 0, len(fams))
	for fk := range fams {
		keys = append(keys, fk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].kind < keys[j].kind
	})
	for _, fk := range keys {
		name, fam := fk.name, fams[fk]
		sort.Slice(fam, func(i, j int) bool {
			return labelBody(fam[i].meta.labels) < labelBody(fam[j].meta.labels)
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fk.kind); err != nil {
			return err
		}
		for _, s := range fam {
			var err error
			switch {
			case s.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, labelSet(s.meta.labels), s.c.Value())
			case s.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", name, labelSet(s.meta.labels), formatFloat(s.g.Value()))
			case s.h != nil:
				err = writePromHistogram(w, name, s.meta.labels, s.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits one histogram series: cumulative buckets with
// the le label appended to the series' own labels, then _sum and _count.
func writePromHistogram(w io.Writer, name string, labels []Label, h *Histogram) error {
	hs := snapshotHistogram(h)
	for _, b := range hs.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		withLE := append(append([]Label(nil), labels...), L("le", le))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelSet(withLE), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSet(labels), formatFloat(hs.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSet(labels), hs.Count)
	return err
}

// labelBody renders the inside of a label set (no braces) for sorting and
// exposition; labels are already sorted by key at series creation, and the
// le label appends after them, matching Prometheus' own bucket rendering.
func labelBody(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// labelSet renders a full {…} label set, or the empty string for an
// unlabeled series.
func labelSet(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelBody(labels) + "}"
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; the pipeline's dotted names become
// underscore-separated.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one complete ("ph":"X") event in the Chrome trace-event
// format, loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds since trace start
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every recorded span as Chrome trace-event JSON.
// Events are emitted in span start order with timestamps in microseconds
// relative to the collector epoch.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, sp := range c.Spans() {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  "pipeline",
			Ph:   "X",
			TS:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64((sp.Finish - sp.Start).Nanoseconds()) / 1e3,
			PID:  1,
			TID:  1,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = map[string]string{}
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		trace.TraceEvents = append(trace.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(trace)
}

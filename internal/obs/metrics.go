package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket layout: upper bounds in
// seconds, tuned for the pipeline's sub-second stages.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. An observation lands in
// the first bucket whose upper bound is >= the value (bounds are
// inclusive); values above every bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	total   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds named metrics. All methods are safe for concurrent use;
// lookups get-or-create, so instrumentation sites never need registration
// boilerplate.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (nil = DefBuckets). Later calls ignore the
// bounds argument and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count
// of observations <= the upper bound.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistSnapshot is a point-in-time histogram reading.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a point-in-time reading of the whole registry. It marshals
// directly to JSON and renders as text via String.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: ub, Count: cum})
		}
		cum += h.counts[len(h.bounds)].Load()
		hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
		s.Histograms[name] = hs
	}
	return s
}

// JSON renders the snapshot as indented JSON. Histogram +Inf bounds are
// emitted as the string "+Inf" to stay valid JSON.
func (s Snapshot) JSON() ([]byte, error) {
	type jsonBucket struct {
		UpperBound string `json:"le"`
		Count      int64  `json:"count"`
	}
	type jsonHist struct {
		Count   int64        `json:"count"`
		Sum     float64      `json:"sum"`
		Buckets []jsonBucket `json:"buckets"`
	}
	out := struct {
		Counters   map[string]int64    `json:"counters,omitempty"`
		Gauges     map[string]float64  `json:"gauges,omitempty"`
		Histograms map[string]jsonHist `json:"histograms,omitempty"`
	}{Counters: s.Counters, Gauges: s.Gauges, Histograms: map[string]jsonHist{}}
	for name, h := range s.Histograms {
		jh := jsonHist{Count: h.Count, Sum: h.Sum}
		for _, b := range h.Buckets {
			ub := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				ub = formatFloat(b.UpperBound)
			}
			jh.Buckets = append(jh.Buckets, jsonBucket{UpperBound: ub, Count: b.Count})
		}
		out.Histograms[name] = jh
	}
	return json.MarshalIndent(out, "", "  ")
}

// String renders the snapshot as sorted, aligned text.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter  %-44s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge    %-44s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(&b, "hist     %-44s count=%d sum=%.6g mean=%.6g\n", name, h.Count, h.Sum, mean)
		for _, bk := range h.Buckets {
			if bk.Count == 0 {
				continue
			}
			ub := "+Inf"
			if !math.IsInf(bk.UpperBound, 1) {
				ub = formatFloat(bk.UpperBound)
			}
			fmt.Fprintf(&b, "           ≤%-10s %d\n", ub, bk.Count)
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

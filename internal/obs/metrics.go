package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket layout: upper bounds in
// seconds, tuned for the pipeline's sub-second stages.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. An observation lands in
// the first bucket whose upper bound is >= the value (bounds are
// inclusive); values above every bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	total   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// regShards is the shard count of the registry's series index; a power of
// two so the shard pick is a mask of the series-key hash. 16 shards keep
// get-or-create contention negligible with every pipeline fan-out bumping
// labeled counters concurrently.
const regShards = 16

// seriesMeta remembers a series' structured identity (base name + sorted
// labels) so the Prometheus exposition never has to re-parse the rendered
// key.
type seriesMeta struct {
	name   string
	labels []Label
}

// regShard is one slice of the registry: its own lock plus the metric and
// metadata maps for the series that hash to it.
type regShard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]seriesMeta
}

// Registry holds named, optionally labeled metrics behind a lock-sharded
// series index. All methods are safe for concurrent use; lookups
// get-or-create, so instrumentation sites never need registration
// boilerplate. A series is (name, sorted label set); the label-free
// methods address the unlabeled series of a name.
type Registry struct {
	shards [regShards]regShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.counters = map[string]*Counter{}
		s.gauges = map[string]*Gauge{}
		s.hists = map[string]*Histogram{}
		s.meta = map[string]seriesMeta{}
	}
	return r
}

func (r *Registry) shard(key string) *regShard {
	return &r.shards[keyHash(key)&(regShards-1)]
}

// Counter returns the named unlabeled counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter { return r.CounterL(name) }

// CounterL returns the counter series for (name, labels), creating it on
// first use. Labels are canonicalized by key order, so the argument order
// never splits a series.
func (r *Registry) CounterL(name string, labels ...Label) *Counter {
	key, ls := seriesKey(name, labels)
	s := r.shard(key)
	s.mu.RLock()
	c, ok := s.counters[key]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.counters[key]; ok {
		return c
	}
	c = &Counter{}
	s.counters[key] = c
	s.recordMeta(key, name, ls)
	return c
}

// Gauge returns the named unlabeled gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeL(name) }

// GaugeL returns the gauge series for (name, labels), creating it on first
// use.
func (r *Registry) GaugeL(name string, labels ...Label) *Gauge {
	key, ls := seriesKey(name, labels)
	s := r.shard(key)
	s.mu.RLock()
	g, ok := s.gauges[key]
	s.mu.RUnlock()
	if ok {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok = s.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	s.gauges[key] = g
	s.recordMeta(key, name, ls)
	return g
}

// Histogram returns the named unlabeled histogram, creating it with the
// given bucket upper bounds on first use (nil = DefBuckets). Later calls
// ignore the bounds argument and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.HistogramL(name, bounds)
}

// HistogramL returns the histogram series for (name, labels), creating it
// with the given bucket upper bounds on first use (nil = DefBuckets).
func (r *Registry) HistogramL(name string, bounds []float64, labels ...Label) *Histogram {
	key, ls := seriesKey(name, labels)
	s := r.shard(key)
	s.mu.RLock()
	h, ok := s.hists[key]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok = s.hists[key]; ok {
		return h
	}
	h = newHistogram(bounds)
	s.hists[key] = h
	s.recordMeta(key, name, ls)
	return h
}

// recordMeta stores the structured identity of a new series. Caller holds
// the shard write lock.
func (s *regShard) recordMeta(key, name string, labels []Label) {
	if _, ok := s.meta[key]; !ok {
		s.meta[key] = seriesMeta{name: name, labels: labels}
	}
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count
// of observations <= the upper bound.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistSnapshot is a point-in-time histogram reading, including the
// bucket-interpolated quantile estimates.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution from the cumulative buckets, interpolating linearly within
// the bucket that contains the target rank — the same estimator Prometheus
// applies to histogram series. Values in the +Inf bucket clamp to the
// highest finite bound (the estimate cannot exceed what the buckets
// resolve), and an empty histogram estimates 0. Observations are assumed
// non-negative, which holds for every duration- and size-shaped series the
// pipeline records.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	lo := 0.0
	var prevCum int64
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank && b.Count > prevCum {
			if math.IsInf(b.UpperBound, 1) {
				// Target falls beyond the finite buckets: clamp to the
				// highest finite bound.
				return lo
			}
			in := float64(b.Count - prevCum)
			return lo + (b.UpperBound-lo)*(rank-float64(prevCum))/in
		}
		if !math.IsInf(b.UpperBound, 1) {
			lo = b.UpperBound
		}
		prevCum = b.Count
	}
	return lo
}

// Snapshot is a point-in-time reading of the whole registry, keyed by
// series key (the bare name, or name{k="v",...} for labeled series). It
// marshals directly to JSON and renders as text via String.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for key, c := range sh.counters {
			s.Counters[key] = c.Value()
		}
		for key, g := range sh.gauges {
			s.Gauges[key] = g.Value()
		}
		for key, h := range sh.hists {
			s.Histograms[key] = snapshotHistogram(h)
		}
		sh.mu.RUnlock()
	}
	return s
}

func snapshotHistogram(h *Histogram) HistSnapshot {
	hs := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: ub, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
	hs.P50 = hs.Quantile(0.50)
	hs.P90 = hs.Quantile(0.90)
	hs.P99 = hs.Quantile(0.99)
	return hs
}

// JSON renders the snapshot as indented JSON. Histogram +Inf bounds are
// emitted as the string "+Inf" to stay valid JSON.
func (s Snapshot) JSON() ([]byte, error) {
	type jsonBucket struct {
		UpperBound string `json:"le"`
		Count      int64  `json:"count"`
	}
	type jsonHist struct {
		Count   int64        `json:"count"`
		Sum     float64      `json:"sum"`
		P50     float64      `json:"p50"`
		P90     float64      `json:"p90"`
		P99     float64      `json:"p99"`
		Buckets []jsonBucket `json:"buckets"`
	}
	out := struct {
		Counters   map[string]int64    `json:"counters,omitempty"`
		Gauges     map[string]float64  `json:"gauges,omitempty"`
		Histograms map[string]jsonHist `json:"histograms,omitempty"`
	}{Counters: s.Counters, Gauges: s.Gauges, Histograms: map[string]jsonHist{}}
	for name, h := range s.Histograms {
		jh := jsonHist{Count: h.Count, Sum: h.Sum, P50: h.P50, P90: h.P90, P99: h.P99}
		for _, b := range h.Buckets {
			ub := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				ub = formatFloat(b.UpperBound)
			}
			jh.Buckets = append(jh.Buckets, jsonBucket{UpperBound: ub, Count: b.Count})
		}
		out.Histograms[name] = jh
	}
	return json.MarshalIndent(out, "", "  ")
}

// String renders the snapshot as sorted, aligned text. Float values go
// through formatFloat, so the text round-trips every float64 exactly.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter  %-44s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge    %-44s %s\n", name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(&b, "hist     %-44s count=%d sum=%s mean=%s p50=%s p90=%s p99=%s\n",
			name, h.Count, formatFloat(h.Sum), formatFloat(mean),
			formatFloat(h.P50), formatFloat(h.P90), formatFloat(h.P99))
		for _, bk := range h.Buckets {
			if bk.Count == 0 {
				continue
			}
			ub := "+Inf"
			if !math.IsInf(bk.UpperBound, 1) {
				ub = formatFloat(bk.UpperBound)
			}
			fmt.Fprintf(&b, "           ≤%-10s %d\n", ub, bk.Count)
		}
	}
	return b.String()
}

// formatFloat renders v with the minimal digits that parse back to exactly
// v — strconv's shortest 'g' form, so golden output is stable wherever
// fmt's fixed-precision verbs would truncate.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

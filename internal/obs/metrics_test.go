package obs

import (
	"context"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	if got := r.Counter("c").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Gauge("g").Set(2.5)
	r.Gauge("g").Add(-1)
	if got := r.Gauge("g").Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 5})
	// Boundary semantics: a value equal to an upper bound lands in that
	// bucket (cumulative "le" counts, Prometheus-style).
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 5.0, 7.0} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-17.0) > 1e-12 {
		t.Errorf("sum = %g, want 17", s.Sum)
	}
	wantCum := []int64{2, 4, 5, 6} // ≤1, ≤2, ≤5, +Inf
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %+v, want 4 entries", s.Buckets)
	}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket[%d] (le=%g) = %d, want %d", i, s.Buckets[i].UpperBound, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", s.Buckets[3].UpperBound)
	}
	// Re-requesting with different bounds returns the existing histogram.
	if got := r.Histogram("h", []float64{99}); got != r.Histogram("h", nil) {
		t.Error("Histogram returned a new instance for an existing name")
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.calls").Add(7)
	r.Gauge("fit.converged").Set(1)
	r.Histogram("fit.seconds", []float64{0.1, 1}).Observe(0.05)
	s := r.Snapshot()

	text := s.String()
	for _, want := range []string{"counter", "pipeline.calls", "7", "gauge", "fit.converged", "hist", "fit.seconds", "count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}

	raw, err := s.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, raw)
	}
	if _, ok := parsed["histograms"]; !ok {
		t.Errorf("snapshot JSON missing histograms: %s", raw)
	}
}

// TestRegistryConcurrency exercises get-or-create plus updates from many
// goroutines; run with -race to verify the registry is data-race free.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	o := &Obs{Metrics: r, Trace: NewCollector()}
	ctx := With(context.Background(), o)

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				AddCount(ctx, "shared.counter", 1)
				SetGauge(ctx, "shared.gauge", float64(i))
				Observe(ctx, "shared.hist", float64(i%10))
				_, sp := StartSpan(ctx, "shared.span")
				sp.SetAttr("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// 8000 span starts overflow the default ring: the collector retains the
	// most recent DefaultSpanCap and counts the rest as dropped.
	retained := len(o.Trace.Spans())
	if retained != DefaultSpanCap {
		t.Errorf("span count = %d, want ring capacity %d", retained, DefaultSpanCap)
	}
	if got := o.Trace.Dropped(); got != workers*perWorker-DefaultSpanCap {
		t.Errorf("dropped = %d, want %d", got, workers*perWorker-DefaultSpanCap)
	}
}

func TestLabeledSeriesAreIndependent(t *testing.T) {
	r := NewRegistry()
	r.CounterL("req", L("code", "200")).Add(3)
	r.CounterL("req", L("code", "500")).Inc()
	r.Counter("req").Add(7) // the unlabeled series of the same name
	if got := r.CounterL("req", L("code", "200")).Value(); got != 3 {
		t.Errorf("req{code=200} = %d, want 3", got)
	}
	if got := r.CounterL("req", L("code", "500")).Value(); got != 1 {
		t.Errorf("req{code=500} = %d, want 1", got)
	}
	if got := r.Counter("req").Value(); got != 7 {
		t.Errorf("req = %d, want 7", got)
	}
	// Label order never splits a series.
	a := r.CounterL("multi", L("b", "2"), L("a", "1"))
	b := r.CounterL("multi", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order split the series")
	}
	s := r.Snapshot()
	for _, key := range []string{`req`, `req{code="200"}`, `req{code="500"}`, `multi{a="1",b="2"}`} {
		if _, ok := s.Counters[key]; !ok {
			t.Errorf("snapshot missing series key %q (have %v)", key, sortedKeys(s.Counters))
		}
	}
	// Labeled gauges and histograms share the same series index.
	r.GaugeL("depth", L("stage", "survey")).Set(4)
	if got := r.GaugeL("depth", L("stage", "survey")).Value(); got != 4 {
		t.Errorf("depth{stage=survey} = %g, want 4", got)
	}
	r.HistogramL("lat", []float64{1, 2}, L("op", "a")).Observe(1.5)
	if got := r.HistogramL("lat", nil, L("op", "a")).Count(); got != 1 {
		t.Errorf("lat{op=a} count = %d, want 1", got)
	}
}

func TestFormatFloatRoundTrips(t *testing.T) {
	// Values where fmt's default %g-style rendering would be fine but a
	// fixed %.6g would truncate; formatFloat must emit the shortest string
	// that parses back to exactly the same float64.
	for _, v := range []float64{
		0.1, 1.0 / 3.0, 1e-17, 123456.789012345, 2.5000000000000004, math.Pi,
	} {
		got := formatFloat(v)
		back, err := strconv.ParseFloat(got, 64)
		if err != nil {
			t.Fatalf("formatFloat(%v) = %q does not parse: %v", v, got, err)
		}
		if back != v {
			t.Errorf("formatFloat(%v) = %q round-trips to %v", v, got, back)
		}
	}
}

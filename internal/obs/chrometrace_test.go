package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// buildGoldenTrace records a small deterministic span tree using the fake
// clock (every clock read advances exactly 1ms).
func buildGoldenTrace() *Collector {
	c := newTestCollector(time.Millisecond)
	o := &Obs{Trace: c}
	ctx := With(context.Background(), o)

	ctx1, run := StartSpan(ctx, "core.New", KV("seed", 99))
	ctx2, prep := StartSpan(ctx1, "corpus.PrepareAll")
	_, parse := StartSpan(ctx2, "csrc.Parse", KV("snippet", "AEEK"))
	parse.End()
	_, comp := StartSpan(ctx2, "compile.Compile")
	comp.End()
	prep.End()
	_, sv := StartSpan(ctx1, "survey.Run", KV("participants", 42))
	sv.End()
	run.End()
	return c
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	goldenPath := filepath.Join("testdata", "chrometrace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceFormat checks the structural invariants chrome://tracing
// needs: a traceEvents array of complete events with name/ph/ts/dur/pid/tid
// and non-negative monotone timestamps.
func TestChromeTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(parsed.TraceEvents))
	}
	lastTS := -1.0
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.PID == 0 || ev.TID == 0 {
			t.Errorf("event missing required fields: %+v", ev)
		}
		if ev.TS < lastTS {
			t.Errorf("timestamps not in start order: %g after %g", ev.TS, lastTS)
		}
		lastTS = ev.TS
		if ev.Dur <= 0 {
			t.Errorf("event %s: dur = %g, want > 0", ev.Name, ev.Dur)
		}
	}
}

// TestChromeTraceEmpty ensures an empty collector still writes valid JSON
// with an empty (not null) traceEvents array.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if string(bytes.TrimSpace(parsed["traceEvents"])) == "null" {
		t.Error("traceEvents is null, want []")
	}
}

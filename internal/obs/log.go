package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// discardLogger backs Logger when no handler is configured. (slog's own
// DiscardHandler postdates this module's go directive.)
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NewLogger builds a text-format slog logger at the given level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error)", s)
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is a key/value annotation attached to a span.
type Attr struct {
	Key   string
	Value string
}

// KV builds an Attr, formatting non-string values with fmt.Sprint.
func KV(key string, value any) Attr {
	if s, ok := value.(string); ok {
		return Attr{Key: key, Value: s}
	}
	return Attr{Key: key, Value: fmt.Sprint(value)}
}

// Span is one timed stage of a pipeline run. Spans form a tree via parent
// IDs; IDs are assigned in start order, starting at 1.
type Span struct {
	c *Collector

	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Attrs  []Attr
	// Start and Finish are offsets from the collector epoch. Finish <
	// Start means the span has not ended yet.
	Start, Finish time.Duration
}

// End closes the span. Safe on a nil span and safe to call once from a
// different goroutine than the one that started it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	if s.Finish < s.Start {
		s.Finish = s.c.since()
	}
	s.c.mu.Unlock()
}

// SetAttr attaches an annotation to the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	s.Attrs = append(s.Attrs, KV(key, value))
	s.c.mu.Unlock()
}

// Duration returns the span's elapsed time (zero while still open).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish < s.Start {
		return 0
	}
	return s.Finish - s.Start
}

// Collector accumulates spans in memory. The zero value is not usable; call
// NewCollector. All methods are safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	epoch  time.Time
	now    func() time.Time // test hook; nil = time.Now
	nextID uint64
	spans  []*Span
}

// NewCollector returns an empty collector whose epoch is now.
func NewCollector() *Collector {
	return &Collector{epoch: time.Now()}
}

func (c *Collector) since() time.Duration {
	if c.now != nil {
		return c.now().Sub(c.epoch)
	}
	return time.Since(c.epoch)
}

func (c *Collector) start(name string, parent *Span, attrs []Attr) *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	sp := &Span{
		c:      c,
		ID:     c.nextID,
		Name:   name,
		Attrs:  attrs,
		Start:  c.since(),
		Finish: -1,
	}
	if parent != nil {
		sp.Parent = parent.ID
	}
	c.spans = append(c.spans, sp)
	return sp
}

// Spans returns a snapshot of all spans in start order. Open spans are
// reported with Finish clamped to now so renderers see a monotone duration.
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.since()
	out := make([]*Span, len(c.spans))
	for i, sp := range c.spans {
		cp := *sp
		if cp.Finish < cp.Start {
			cp.Finish = now
		}
		cp.Attrs = append([]Attr(nil), sp.Attrs...)
		out[i] = &cp
	}
	return out
}

// Reset drops all recorded spans and restarts the epoch.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = nil
	c.nextID = 0
	if c.now != nil {
		c.epoch = c.now()
	} else {
		c.epoch = time.Now()
	}
}

// StageStat aggregates every span sharing one name.
type StageStat struct {
	Name  string
	Count int
	Total time.Duration
}

// StageTotals sums span durations by name — the per-stage breakdown used by
// the benchmarks' b.ReportMetric integration.
func (c *Collector) StageTotals() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, sp := range c.Spans() {
		out[sp.Name] += sp.Finish - sp.Start
	}
	return out
}

// StageSummary returns per-stage aggregates sorted by total descending.
func (c *Collector) StageSummary() []StageStat {
	byName := map[string]*StageStat{}
	var order []string
	for _, sp := range c.Spans() {
		st, ok := byName[sp.Name]
		if !ok {
			st = &StageStat{Name: sp.Name}
			byName[sp.Name] = st
			order = append(order, sp.Name)
		}
		st.Count++
		st.Total += sp.Finish - sp.Start
	}
	out := make([]StageStat, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// TimingTree renders the span hierarchy as a human-readable tree with one
// line per span: name, attributes, and duration.
func (c *Collector) TimingTree() string {
	spans := c.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	children := map[uint64][]*Span{}
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var b strings.Builder
	var walk func(parent uint64, prefix string)
	walk = func(parent uint64, prefix string) {
		kids := children[parent]
		for i, sp := range kids {
			last := i == len(kids)-1
			branch, cont := "├─ ", "│  "
			if last {
				branch, cont = "└─ ", "   "
			}
			if parent == 0 {
				branch, cont = "", ""
			}
			label := sp.Name
			for _, a := range sp.Attrs {
				label += fmt.Sprintf(" %s=%s", a.Key, a.Value)
			}
			line := prefix + branch + label
			fmt.Fprintf(&b, "%-58s %12s\n", line, formatDuration(sp.Finish-sp.Start))
			walk(sp.ID, prefix+cont)
		}
	}
	walk(0, "")
	return b.String()
}

// formatDuration renders d with a stable, compact precision for the tree.
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

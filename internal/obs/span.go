package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is a key/value annotation attached to a span.
type Attr struct {
	Key   string
	Value string
}

// KV builds an Attr, formatting non-string values with fmt.Sprint.
func KV(key string, value any) Attr {
	if s, ok := value.(string); ok {
		return Attr{Key: key, Value: s}
	}
	return Attr{Key: key, Value: fmt.Sprint(value)}
}

// Span is one timed stage of a pipeline run. Spans form a tree via parent
// IDs; IDs are assigned in start order, starting at 1.
type Span struct {
	c *Collector

	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Attrs  []Attr
	// Start and Finish are offsets from the collector epoch. Finish <
	// Start means the span has not ended yet.
	Start, Finish time.Duration
}

// End closes the span. Safe on a nil span and safe to call once from a
// different goroutine than the one that started it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	if s.Finish < s.Start {
		s.Finish = s.c.since()
	}
	s.c.mu.Unlock()
}

// SetAttr attaches an annotation to the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	s.Attrs = append(s.Attrs, KV(key, value))
	s.c.mu.Unlock()
}

// Duration returns the span's elapsed time (zero while still open).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish < s.Start {
		return 0
	}
	return s.Finish - s.Start
}

// DefaultSpanCap is the span ring capacity NewCollector uses: enough to
// hold every span of a full batch study run, small enough that a long-
// lived process keeps bounded memory no matter how many requests it
// serves.
const DefaultSpanCap = 4096

// Collector accumulates spans in a fixed-capacity ring buffer: once the
// ring is full, starting a span evicts the oldest recorded one and bumps
// the drop counter, so a long-lived process always holds the most recent
// traces in bounded memory. Short batch runs never fill the ring and see
// the complete trace, exactly as before the ring existed. All methods are
// safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	epoch   time.Time
	now     func() time.Time // test hook; nil = time.Now
	nextID  uint64
	cap     int     // ring capacity; 0 means DefaultSpanCap on first start
	ring    []*Span // insertion-ordered ring, len(ring) <= cap
	head    int     // index of the oldest span once the ring is full
	dropped uint64  // spans evicted to admit newer ones
}

// NewCollector returns an empty collector whose epoch is now, holding up
// to DefaultSpanCap spans.
func NewCollector() *Collector {
	return NewCollectorCap(DefaultSpanCap)
}

// NewCollectorCap returns an empty collector with the given span ring
// capacity (<= 0 means DefaultSpanCap).
func NewCollectorCap(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Collector{epoch: time.Now(), cap: capacity}
}

// Cap returns the span ring capacity.
func (c *Collector) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		return DefaultSpanCap
	}
	return c.cap
}

// Dropped returns how many spans have been evicted from the ring to make
// room for newer ones.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

func (c *Collector) since() time.Duration {
	if c.now != nil {
		return c.now().Sub(c.epoch)
	}
	return time.Since(c.epoch)
}

func (c *Collector) start(name string, parent *Span, attrs []Attr) *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	sp := &Span{
		c:      c,
		ID:     c.nextID,
		Name:   name,
		Attrs:  attrs,
		Start:  c.since(),
		Finish: -1,
	}
	if parent != nil {
		sp.Parent = parent.ID
	}
	if c.cap == 0 {
		c.cap = DefaultSpanCap // zero-value collectors (tests) get the default
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, sp)
	} else {
		c.ring[c.head] = sp
		c.head = (c.head + 1) % c.cap
		c.dropped++
	}
	return sp
}

// Spans returns a snapshot of the retained spans in start order (the
// oldest retained span first — spans evicted from the ring are gone; see
// Dropped). Open spans are reported with Finish clamped to now so
// renderers see a monotone duration.
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.since()
	out := make([]*Span, len(c.ring))
	for i := range c.ring {
		sp := c.ring[(c.head+i)%len(c.ring)]
		cp := *sp
		if cp.Finish < cp.Start {
			cp.Finish = now
		}
		cp.Attrs = append([]Attr(nil), sp.Attrs...)
		out[i] = &cp
	}
	return out
}

// Reset drops all recorded spans (and the drop counter) and restarts the
// epoch. The ring capacity is retained.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = nil
	c.head = 0
	c.dropped = 0
	c.nextID = 0
	if c.now != nil {
		c.epoch = c.now()
	} else {
		c.epoch = time.Now()
	}
}

// StageStat aggregates every span sharing one name.
type StageStat struct {
	Name  string
	Count int
	Total time.Duration
}

// StageTotals sums span durations by name — the per-stage breakdown used by
// the benchmarks' b.ReportMetric integration.
func (c *Collector) StageTotals() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, sp := range c.Spans() {
		out[sp.Name] += sp.Finish - sp.Start
	}
	return out
}

// StageSummary returns per-stage aggregates sorted by total descending.
func (c *Collector) StageSummary() []StageStat {
	byName := map[string]*StageStat{}
	var order []string
	for _, sp := range c.Spans() {
		st, ok := byName[sp.Name]
		if !ok {
			st = &StageStat{Name: sp.Name}
			byName[sp.Name] = st
			order = append(order, sp.Name)
		}
		st.Count++
		st.Total += sp.Finish - sp.Start
	}
	out := make([]StageStat, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// TimingTree renders the span hierarchy as a human-readable tree with one
// line per span: name, attributes, and duration.
func (c *Collector) TimingTree() string {
	spans := c.Spans()
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	present := map[uint64]bool{}
	for _, sp := range spans {
		present[sp.ID] = true
	}
	children := map[uint64][]*Span{}
	for _, sp := range spans {
		parent := sp.Parent
		if !present[parent] {
			// The parent was evicted from the ring; render the span as a
			// root so wrapped traces stay visible.
			parent = 0
		}
		children[parent] = append(children[parent], sp)
	}
	var b strings.Builder
	var walk func(parent uint64, prefix string)
	walk = func(parent uint64, prefix string) {
		kids := children[parent]
		for i, sp := range kids {
			last := i == len(kids)-1
			branch, cont := "├─ ", "│  "
			if last {
				branch, cont = "└─ ", "   "
			}
			if parent == 0 {
				branch, cont = "", ""
			}
			label := sp.Name
			for _, a := range sp.Attrs {
				label += fmt.Sprintf(" %s=%s", a.Key, a.Value)
			}
			line := prefix + branch + label
			fmt.Fprintf(&b, "%-58s %12s\n", line, formatDuration(sp.Finish-sp.Start))
			walk(sp.ID, prefix+cont)
		}
	}
	walk(0, "")
	return b.String()
}

// formatDuration renders d with a stable, compact precision for the tree.
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Package obs is the project's stdlib-only observability layer: hierarchical
// span tracing with an in-memory collector (rendered as a per-stage timing
// tree or exported as Chrome trace-event JSON), a metrics registry
// (counters, gauges, fixed-bucket histograms) with text and JSON snapshots,
// and log/slog-based structured logging that carries span IDs through
// context.Context.
//
// Telemetry is opt-in per run. A handle travels in the context:
//
//	o := obs.New()
//	ctx := obs.With(context.Background(), o)
//	ctx, sp := obs.StartSpan(ctx, "corpus.Prepare", obs.KV("snippet", "AEEK"))
//	defer sp.End()
//	obs.AddCount(ctx, "corpus.prepare.calls", 1)
//
// Every entry point is nil-safe: with no handle in the context (or a
// zero-value handle) the calls reduce to a single context lookup and no
// allocation, so instrumented hot paths cost nothing when telemetry is off.
package obs

import (
	"context"
	"log/slog"
	"time"
)

type ctxKey int

const (
	handleKey ctxKey = iota
	spanKey
)

// Obs bundles the three telemetry facilities. Any field may be nil; a
// zero-value Obs disables everything.
type Obs struct {
	// Trace collects spans for the timing tree and Chrome trace export.
	Trace *Collector
	// Metrics is the counter/gauge/histogram registry.
	Metrics *Registry
	// Log receives structured log records (nil = discard).
	Log *slog.Logger
}

// New returns a handle with tracing and metrics enabled and logging
// discarded.
func New() *Obs {
	return &Obs{Trace: NewCollector(), Metrics: NewRegistry()}
}

// Enabled reports whether any facility is active.
func (o *Obs) Enabled() bool {
	return o != nil && (o.Trace != nil || o.Metrics != nil || o.Log != nil)
}

// With attaches the handle to the context. A nil or disabled handle returns
// the context unchanged, keeping the disabled fast path a single Value call.
func With(ctx context.Context, o *Obs) context.Context {
	if !o.Enabled() {
		return ctx
	}
	return context.WithValue(ctx, handleKey, o)
}

// From returns the handle attached to the context, or nil.
func From(ctx context.Context) *Obs {
	o, _ := ctx.Value(handleKey).(*Obs)
	return o
}

// StartSpan opens a child span of the context's current span and returns a
// context carrying it. With tracing disabled it returns (ctx, nil); the nil
// *Span accepts End and SetAttr as no-ops.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	o := From(ctx)
	if o == nil || o.Trace == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	sp := o.Trace.start(name, parent, attrs)
	return context.WithValue(ctx, spanKey, sp), sp
}

// Start opens a span without rebinding the context — for callers that only
// need `defer obs.Start(ctx, "stage").End()`. Children started from the same
// ctx attach to the ctx's current span, not to this one.
func Start(ctx context.Context, name string, attrs ...Attr) *Span {
	o := From(ctx)
	if o == nil || o.Trace == nil {
		return nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	return o.Trace.start(name, parent, attrs)
}

// CurrentSpan returns the context's active span, or nil.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// AddCount adds delta to the named counter (no-op without a registry).
func AddCount(ctx context.Context, name string, delta int64) {
	if o := From(ctx); o != nil && o.Metrics != nil {
		o.Metrics.Counter(name).Add(delta)
	}
}

// SetGauge sets the named gauge (no-op without a registry).
func SetGauge(ctx context.Context, name string, v float64) {
	if o := From(ctx); o != nil && o.Metrics != nil {
		o.Metrics.Gauge(name).Set(v)
	}
}

// Observe records v into the named histogram with the default buckets
// (no-op without a registry).
func Observe(ctx context.Context, name string, v float64) {
	if o := From(ctx); o != nil && o.Metrics != nil {
		o.Metrics.Histogram(name, nil).Observe(v)
	}
}

// ObserveDuration records d (in seconds) into the named histogram.
func ObserveDuration(ctx context.Context, name string, d time.Duration) {
	Observe(ctx, name, d.Seconds())
}

// AddCountL adds delta to the labeled counter series (no-op without a
// registry).
func AddCountL(ctx context.Context, name string, delta int64, labels ...Label) {
	if o := From(ctx); o != nil && o.Metrics != nil {
		o.Metrics.CounterL(name, labels...).Add(delta)
	}
}

// SetGaugeL sets the labeled gauge series (no-op without a registry).
func SetGaugeL(ctx context.Context, name string, v float64, labels ...Label) {
	if o := From(ctx); o != nil && o.Metrics != nil {
		o.Metrics.GaugeL(name, labels...).Set(v)
	}
}

// ObserveL records v into the labeled histogram series with the default
// buckets (no-op without a registry).
func ObserveL(ctx context.Context, name string, v float64, labels ...Label) {
	if o := From(ctx); o != nil && o.Metrics != nil {
		o.Metrics.HistogramL(name, nil, labels...).Observe(v)
	}
}

// Logger returns a logger that tags records with the context's span. It
// never returns nil; with logging disabled it returns a discard logger.
func Logger(ctx context.Context) *slog.Logger {
	o := From(ctx)
	if o == nil || o.Log == nil {
		return discardLogger
	}
	if sp := CurrentSpan(ctx); sp != nil {
		return o.Log.With(slog.Uint64("span", sp.ID), slog.String("stage", sp.Name))
	}
	return o.Log
}

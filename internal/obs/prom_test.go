package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition: family ordering,
// name sanitization, label escaping (backslash, quote, newline),
// cumulative buckets ending at +Inf, and the _sum/_count tail.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.calls").Add(7)
	r.CounterL("fault.injected", L("point", "csrc.parse")).Add(2)
	r.CounterL("fault.injected", L("point", "embed.train")).Add(1)
	r.CounterL("weird.labels", L("msg", "a\\b\"c\nd")).Inc()
	r.Gauge("embed.cache.hit_rate").Set(0.5625)
	r.GaugeL("pool.depth", L("stage", "survey"), L("arm", "treat")).Set(3)
	h := r.Histogram("stage.seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.003, 0.05, 2} {
		h.Observe(v)
	}
	hl := r.HistogramL("op.seconds", []float64{1, 2}, L("op", "fit"))
	hl.Observe(1.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusBucketCumulative checks structural invariants the golden
// file alone would not explain: bucket counts are monotone, the +Inf
// bucket equals _count, and every line parses as `name{labels} value`.
func TestPrometheusBucketCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 4, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var last int64 = -1
	infSeen := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_bucket") {
			continue
		}
		var cum int64
		for i := len(line) - 1; i >= 0; i-- {
			if line[i] == ' ' {
				for _, c := range line[i+1:] {
					cum = cum*10 + int64(c-'0')
				}
				break
			}
		}
		if cum < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = cum
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if cum != 5 {
				t.Errorf("+Inf bucket = %d, want 5", cum)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
	if !strings.Contains(out, "lat_count 5") {
		t.Errorf("missing lat_count 5 in:\n%s", out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"embed.cache.hit_rate": "embed_cache_hit_rate",
		"fault.injected":       "fault_injected",
		"9lives":               "_9lives",
		"ok:name_1":            "ok:name_1",
		"sp ace-dash":          "sp_ace_dash",
		"":                     "_",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

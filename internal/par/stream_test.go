package par

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTaskResult(t *testing.T) {
	task := Go(context.Background(), func(context.Context) (int, error) { return 42, nil })
	v, err := task.Wait(context.Background())
	if v != 42 || err != nil {
		t.Fatalf("Wait = %d, %v; want 42, nil", v, err)
	}
	// A second Wait observes the same result.
	v, err = task.Wait(context.Background())
	if v != 42 || err != nil {
		t.Fatalf("second Wait = %d, %v; want 42, nil", v, err)
	}
}

func TestTaskError(t *testing.T) {
	boom := errors.New("boom")
	task := Go(context.Background(), func(context.Context) (int, error) { return 0, boom })
	if _, err := task.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	task := Go(context.Background(), func(context.Context) (int, error) { panic("kaboom") })
	_, err := task.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Wait err = %v, want the panic value surfaced", err)
	}
	if !strings.Contains(err.Error(), "stream_test.go") {
		t.Errorf("panic error should carry the stack, got %q", err)
	}
}

func TestTaskWaitHonorsContext(t *testing.T) {
	release := make(chan struct{})
	task := Go(context.Background(), func(context.Context) (int, error) {
		<-release
		return 7, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := task.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v, want context.Canceled", err)
	}
	// A cancelled Wait must not consume the result: later waiters with live
	// contexts still get it.
	close(release)
	if v, err := task.Wait(context.Background()); v != 7 || err != nil {
		t.Fatalf("Wait after release = %d, %v; want 7, nil", v, err)
	}
}

func TestTaskManyWaiters(t *testing.T) {
	task := Go(context.Background(), func(context.Context) (string, error) {
		time.Sleep(time.Millisecond)
		return "shared", nil
	})
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := task.Wait(context.Background()); v != "shared" || err != nil {
				t.Errorf("Wait = %q, %v; want shared, nil", v, err)
			}
		}()
	}
	wg.Wait()
	select {
	case <-task.Done():
	default:
		t.Error("Done() should be closed after Wait returned")
	}
}

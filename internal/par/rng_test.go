package par

import (
	"fmt"
	"testing"
)

func TestSplitSeedDeterministic(t *testing.T) {
	if SplitSeed(99, "participant:7") != SplitSeed(99, "participant:7") {
		t.Error("same (base, key) must derive the same seed")
	}
	if SplitSeed(99, "participant:7") == SplitSeed(100, "participant:7") {
		t.Error("different bases should derive different seeds")
	}
}

// TestStreamIndependence is the satellite's RNG-stream guarantee: no two
// work items ever share a stream. Adjacent keys and adjacent bases must
// land on distinct seeds, and the streams they open must diverge
// immediately rather than being shifted copies of each other.
func TestStreamIndependence(t *testing.T) {
	const n = 2000
	seeds := map[int64]string{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("participant:%d", i)
		s := SplitSeed(42, key)
		if prev, dup := seeds[s]; dup {
			t.Fatalf("seed collision: %q and %q both derive %d", prev, key, s)
		}
		seeds[s] = key
	}

	a := Stream(42, "participant:1")
	b := Stream(42, "participant:2")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent keys shared %d/64 draws", same)
	}
}

func TestStreamReproducible(t *testing.T) {
	a := Stream(7, "snippet:AEEK")
	b := Stream(7, "snippet:AEEK")
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (base, key) must reproduce the stream")
		}
	}
}

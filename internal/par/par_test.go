package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, jobs := range []int{1, 2, 7, 64} {
		out, err := Map(context.Background(), jobs, items, func(_ context.Context, i, v int) (string, error) {
			// Reverse the natural completion order so fast finishers land last.
			time.Sleep(time.Duration(len(items)-i) * 10 * time.Microsecond)
			return fmt.Sprintf("%d!", v), nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, s := range out {
			if want := fmt.Sprintf("%d!", i); s != want {
				t.Fatalf("jobs=%d: out[%d] = %q, want %q", jobs, i, s, want)
			}
		}
	}
}

func TestMapSaturation(t *testing.T) {
	const jobs = 4
	var cur, peak atomic.Int64
	items := make([]int, 40)
	_, err := Map(context.Background(), jobs, items, func(_ context.Context, i, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("peak concurrency %d exceeds jobs=%d", p, jobs)
	}
	// With 40 sleeping items the pool should actually fill up.
	if p := peak.Load(); p < jobs {
		t.Errorf("peak concurrency %d never reached jobs=%d", p, jobs)
	}
}

func TestMapFirstErrorIsLowestIndex(t *testing.T) {
	items := make([]int, 20)
	_, err := Map(context.Background(), 8, items, func(_ context.Context, i, _ int) (int, error) {
		if i == 3 || i == 11 {
			// Make the higher index fail first.
			if i == 3 {
				time.Sleep(20 * time.Millisecond)
			}
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	// Item 11 fails first and cancels the map; item 3 may or may not run to
	// completion. Whatever happened, the reported error must be the
	// lowest-index failure among those that ran.
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMapCancellationMidMap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	items := make([]int, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	var mapErr error
	go func() {
		defer wg.Done()
		_, mapErr = Map(ctx, 2, items, func(ctx context.Context, i, _ int) (int, error) {
			started.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			return 0, nil
		})
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	wg.Wait()
	if !errors.Is(mapErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", mapErr)
	}
	if n := started.Load(); n >= int64(len(items)) {
		t.Errorf("all %d items started despite mid-map cancellation", n)
	}
}

func TestMapPanicRecovery(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		_, err := Map(context.Background(), jobs, []int{0, 1, 2}, func(_ context.Context, i, _ int) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("jobs=%d: want error from panicking worker", jobs)
		}
		if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "boom") {
			t.Errorf("jobs=%d: error %q does not surface the panic", jobs, err)
		}
	}
}

func TestMapAllJoinsInInputOrder(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	for _, jobs := range []int{1, 3, 8} {
		out, errs := MapAll(context.Background(), jobs, items, func(_ context.Context, i, v int) (int, error) {
			if i%2 == 1 {
				// Later odd items finish before earlier ones.
				time.Sleep(time.Duration(len(items)-i) * time.Millisecond)
				return 0, fmt.Errorf("odd %d", i)
			}
			return v * 10, nil
		})
		if len(errs) != len(items) {
			t.Fatalf("jobs=%d: errs len %d", jobs, len(errs))
		}
		joined := errors.Join(nonNil(errs)...)
		want := "odd 1\nodd 3\nodd 5"
		if joined == nil || joined.Error() != want {
			t.Errorf("jobs=%d: joined = %v, want %q", jobs, joined, want)
		}
		for i, v := range out {
			if i%2 == 0 && v != i*10 {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*10)
			}
		}
	}
}

func nonNil(errs []error) []error {
	var out []error
	for _, err := range errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

func TestPoolFirstErrorSkipsRemaining(t *testing.T) {
	p := NewPool(context.Background(), 1)
	var ran atomic.Int64
	p.Go(func(context.Context) error { ran.Add(1); return errors.New("first") })
	p.Go(func(ctx context.Context) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		ran.Add(1)
		return nil
	})
	err := p.Wait()
	if err == nil || err.Error() != "first" {
		t.Fatalf("Wait = %v, want the lowest-index failure", err)
	}
}

func TestJoinPoolCollectsAll(t *testing.T) {
	p := NewJoinPool(context.Background(), 4)
	for i := 0; i < 6; i++ {
		i := i
		p.Go(func(context.Context) error {
			if i%2 == 0 {
				return fmt.Errorf("e%d", i)
			}
			return nil
		})
	}
	err := p.Wait()
	if err == nil {
		t.Fatal("want joined error")
	}
	if got, want := err.Error(), "e0\ne2\ne4"; got != want {
		t.Errorf("joined = %q, want %q (submit order)", got, want)
	}
}

func TestJobsContext(t *testing.T) {
	ctx := context.Background()
	if JobsFrom(ctx) < 1 {
		t.Error("default jobs < 1")
	}
	if got := JobsFrom(WithJobs(ctx, 7)); got != 7 {
		t.Errorf("JobsFrom = %d, want 7", got)
	}
	if got := JobsFrom(WithJobs(ctx, 0)); got < 1 {
		t.Errorf("JobsFrom after WithJobs(0) = %d", got)
	}
}

package par

import (
	"runtime"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count at test start and fails the test
// if, after a grace period at cleanup, more goroutines are alive than when
// it started — a hand-rolled stand-in for goleak that catches workers or
// feeders left blocked by a cancellation path. Every test in this package
// calls it first.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			now := runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

package par

import (
	"context"
	"fmt"
	"runtime/debug"
)

// Task is a one-shot future: Go starts the function on its own goroutine
// and Wait blocks for the result. It is the stage-level counterpart to the
// data-parallel Map family — the streaming pipeline uses one Task per
// shared stage (embedding training, recovery training, survey) so
// independent stages overlap instead of running behind barriers, while
// per-item fan-outs keep going through Map/MapAll.
//
// Tasks run outside the Map worker budget: they represent the handful of
// pipeline stages, not per-item work, so a stage waiting on another stage
// can never deadlock against a saturated worker pool.
type Task[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Go starts fn immediately on a new goroutine. A panic in fn surfaces as
// an error from Wait (carrying the stack), matching the pool's guard
// semantics, instead of tearing down the process.
func Go[T any](ctx context.Context, fn func(context.Context) (T, error)) *Task[T] {
	t := &Task[T]{done: make(chan struct{})}
	go func() {
		defer close(t.done)
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("par: task panic: %v\n%s", r, debug.Stack())
			}
		}()
		t.val, t.err = fn(ctx)
	}()
	return t
}

// Wait blocks until the task finishes or the caller's context ends,
// whichever comes first, and returns the task's result. Multiple
// goroutines may Wait on the same task; all observe the same result.
// A context-cancelled Wait does not stop the task — its result stays
// available to other waiters.
func (t *Task[T]) Wait(ctx context.Context) (T, error) {
	select {
	case <-t.done:
		return t.val, t.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Done returns a channel closed when the task has finished.
func (t *Task[T]) Done() <-chan struct{} { return t.done }

// Package par is the pipeline's parallel-execution substrate: a bounded
// worker pool with context cancellation and first-error-or-join semantics,
// an order-preserving generic Map, and a deterministic RNG-splitting scheme
// that derives an independent random stream per work item from the study
// seed and the item's key.
//
// Every fan-out in the study pipeline (corpus preparation, survey
// administration, metric evaluation, artifact rendering) goes through this
// package, so results are byte-identical at any worker count: work items
// never share mutable state or a random stream, and outputs are assembled
// in input order regardless of completion order.
//
// The worker count travels in the context via WithJobs/JobsFrom, so CLIs
// set it once (-jobs) and every stage below picks it up without threading
// an extra parameter through the pipeline.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

type ctxKey int

const jobsKey ctxKey = iota

// WithJobs returns a context carrying the worker count for the pipeline
// fan-outs below it. Non-positive n leaves the context unchanged.
func WithJobs(ctx context.Context, n int) context.Context {
	if n <= 0 {
		return ctx
	}
	return context.WithValue(ctx, jobsKey, n)
}

// JobsFrom returns the context's worker count, defaulting to
// runtime.GOMAXPROCS(0) when none was set.
func JobsFrom(ctx context.Context) int {
	if n, ok := ctx.Value(jobsKey).(int); ok && n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// clampJobs bounds the worker count to [1, n] for n work items.
func clampJobs(jobs, n int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// guard converts a worker panic into an error carrying the stack, so a
// panicking work item surfaces as a pipeline failure instead of tearing
// down the process from a goroutine.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: worker panic: %v\n%s", r, debug.Stack())
		}
	}()
	return f()
}

// Pool is a bounded worker pool. Tasks submitted with Go run on at most
// `jobs` goroutines; Wait blocks until all submitted tasks finish and
// returns the pool error. Two error modes:
//
//   - first-error (NewPool): the first failing task cancels the pool
//     context — tasks not yet started are skipped, and Wait returns the
//     failure with the lowest submit index (deterministic under races).
//   - join (NewJoinPool): every task runs to completion and Wait joins
//     all failures in submit order via errors.Join.
type Pool struct {
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup
	join   bool

	mu      sync.Mutex
	errs    []error // indexed by submit order
	skipped []bool  // true when errs[i] records a cancellation skip, not a task result
	next    int
}

// NewPool returns a first-error pool running at most jobs tasks at once.
func NewPool(ctx context.Context, jobs int) *Pool {
	return newPool(ctx, jobs, false)
}

// NewJoinPool returns a pool that runs every task to completion and joins
// all failures in submit order.
func NewJoinPool(ctx context.Context, jobs int) *Pool {
	return newPool(ctx, jobs, true)
}

func newPool(ctx context.Context, jobs int, join bool) *Pool {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	pctx, cancel := context.WithCancel(ctx)
	return &Pool{ctx: pctx, cancel: cancel, sem: make(chan struct{}, jobs), join: join}
}

// Go submits one task. It blocks while the pool is saturated, which bounds
// both concurrency and the backlog of pending goroutines — but never past
// cancellation: once the pool context is done (a first-error pool saw a
// failure, or the caller's context was cancelled), submission fast-fails
// and the task is recorded as skipped instead of stalling the submitter on
// a semaphore no one will release promptly.
func (p *Pool) Go(f func(ctx context.Context) error) {
	p.mu.Lock()
	idx := p.next
	p.next++
	p.errs = append(p.errs, nil)
	p.skipped = append(p.skipped, false)
	p.mu.Unlock()

	select {
	case p.sem <- struct{}{}:
	case <-p.ctx.Done():
		p.record(idx, p.ctx.Err(), true)
		return
	}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		if err := p.ctx.Err(); err != nil {
			p.record(idx, err, true)
			return
		}
		if err := guard(func() error { return f(p.ctx) }); err != nil {
			p.record(idx, err, false)
			if !p.join {
				p.cancel()
			}
		}
	}()
}

func (p *Pool) record(idx int, err error, skip bool) {
	p.mu.Lock()
	p.errs[idx] = err
	p.skipped[idx] = skip
	p.mu.Unlock()
}

// Wait blocks until every submitted task has finished and returns the pool
// error: the lowest-submit-index failure in first-error mode, or every
// failure joined in submit order in join mode. It releases the pool's
// context; the pool must not be reused after Wait.
//
// In first-error mode, genuine task failures take precedence over
// cancellation fallout. When a failing task cancels the pool, tasks that
// were skipped — or that returned the pool context's error on their way out
// — record context.Canceled, possibly at a lower submit index than the
// failure that caused the cancellation; returning that would mask the real
// error. Wait therefore returns the lowest-index non-cancellation task
// error when one exists, and falls back to the lowest-index recorded error
// (the caller's own cancellation) only when no genuine failure was seen.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.join {
		return joinNonNil(p.errs)
	}
	var genuine, fallback error
	for i, err := range p.errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if genuine == nil && !p.skipped[i] && !isCancellation(err) {
			genuine = err
			break
		}
	}
	if genuine != nil {
		return genuine
	}
	return fallback
}

// isCancellation reports whether err is context-cancellation fallout rather
// than a failure in its own right. This is a heuristic — a task error that
// wraps context.Canceled for unrelated reasons is classified as fallout —
// but it only changes which error wins when a genuine failure exists
// elsewhere, which is exactly the masking case being prevented.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Map runs f over every item on at most jobs workers and returns the
// results in input order. The first failure cancels outstanding work
// (items not yet started are skipped) and Map returns the genuine failure
// with the lowest input index, so the reported error depends neither on
// completion order nor on cancellation fallout: an item that observed the
// post-failure cancellation and returned context.Canceled never outranks
// the failure that caused it. A jobs value ≤ 0 uses runtime.GOMAXPROCS(0);
// jobs == 1 is the exact sequential loop.
func Map[T, R any](ctx context.Context, jobs int, items []T, f func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	jobs = clampJobs(jobs, len(items))
	if jobs == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			r, err := guard2(ctx, i, items[i], f)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := runWorkers(ctx, jobs, items, func(ctx context.Context, i int, item T) error {
		r, err := guard2(ctx, i, item, f)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}, true)
	if err := firstMapError(errs); err != nil {
		return results, err
	}
	return results, ctx.Err()
}

// firstMapError picks Map's reported error from the per-item errors. A
// genuine failure cancels the worker context, so items already in flight
// can come back with that context's Canceled at a lower input index than
// the failure itself; preferring the lowest-index non-cancellation error
// keeps the real failure from being masked by its own fallout. Only when
// every recorded error is cancellation-class (the caller's own context was
// cancelled) does the lowest-index cancellation win.
func firstMapError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !isCancellation(err) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// MapAll runs f over every item on at most jobs workers, never cancelling
// on item failure, and returns the results alongside the per-item errors
// (both in input order). Items skipped because the surrounding context was
// cancelled report the context error. Callers that want one error join
// the non-nil entries — errors.Join preserves the input order.
func MapAll[T, R any](ctx context.Context, jobs int, items []T, f func(ctx context.Context, idx int, item T) (R, error)) ([]R, []error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return results, errs
	}
	jobs = clampJobs(jobs, len(items))
	if jobs == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = guard2(ctx, i, items[i], f)
		}
		return results, errs
	}
	got := runWorkers(ctx, jobs, items, func(ctx context.Context, i int, item T) error {
		r, err := guard2(ctx, i, item, f)
		results[i] = r
		return err
	}, false)
	copy(errs, got)
	return results, errs
}

// guard2 is guard specialized for Map's (result, error) workers.
func guard2[T, R any](ctx context.Context, i int, item T, f func(ctx context.Context, idx int, item T) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("par: worker panic on item %d: %v\n%s", i, p, debug.Stack())
		}
	}()
	return f(ctx, i, item)
}

// runWorkers fans items out to jobs goroutines pulling indices from a
// shared channel and returns the per-item errors in input order. With
// cancelOnError, the first failure stops the index feed so remaining items
// are skipped (their error stays nil); without it, cancellation only
// follows the caller's context. Either way, items skipped because the
// CALLER's context ended — whether their index was handed to a worker or
// never left the feed — report the caller's context error, never the
// internal worker context's.
func runWorkers[T any](ctx context.Context, jobs int, items []T, f func(ctx context.Context, i int, item T) error, cancelOnError bool) []error {
	errs := make([]error, len(items))
	// done marks indices a worker fully handled (ran f or recorded a skip);
	// indices the feed never delivered stay false and are back-filled with
	// the caller's context error below. Each index is touched by exactly
	// one worker, and wg.Wait orders those writes before the back-fill.
	done := make([]bool, len(items))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idxCh := make(chan int)
	var feed sync.WaitGroup
	feed.Add(1)
	go func() {
		defer feed.Done()
		defer close(idxCh)
		for i := range items {
			select {
			case idxCh <- i:
			case <-wctx.Done():
				return
			}
		}
	}()

	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := ctx.Err(); err != nil {
					// The caller's own context ended: record its error, so
					// skipped items report the cancellation that skipped
					// them (never the internal wctx's).
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					done[i] = true
					continue
				}
				if cancelOnError && wctx.Err() != nil {
					// Internal cancellation after another item's failure:
					// skip silently (error stays nil) so the genuine
					// failure is the only error the caller sees.
					done[i] = true
					continue
				}
				err := f(wctx, i, items[i])
				done[i] = true
				if err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					if cancelOnError {
						cancel()
					}
				}
			}
		}()
	}
	wg.Wait()
	feed.Wait()
	// Back-fill items the feed never delivered: if the caller's context
	// ended they were skipped by that cancellation and report it; after an
	// internal first-error stop they stay nil, like every other skip.
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if !done[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return errs
}

// Chunks splits [0, n) into at most k contiguous [lo, hi) ranges of
// near-equal size — the work units for data-parallel loops (matrix rows,
// token ranges) where spawning one goroutine per element would drown the
// useful work in scheduling overhead.
func Chunks(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// joinNonNil joins the non-nil errors of errs in slice order. Unlike
// errors.Join it is explicit about preserving input order, which keeps
// fan-out failure reports deterministic at any worker count.
func joinNonNil(errs []error) error {
	var nonNil []error
	for _, err := range errs {
		if err != nil {
			nonNil = append(nonNil, err)
		}
	}
	if len(nonNil) == 0 {
		return nil
	}
	return errors.Join(nonNil...)
}

package par

import "math/rand"

// SplitSeed derives an independent seed for one work item from the study
// seed and the item's key. The derivation hashes the key with FNV-1a and
// pushes the combination through two splitmix64 finalizer rounds, so
//
//   - the same (base, key) always yields the same seed — survey results
//     are byte-identical at any worker count, because each participant's
//     stream depends only on the study seed and their own key, never on
//     how work was scheduled;
//   - distinct keys yield statistically independent streams — splitmix64's
//     finalizer is a bijection with full avalanche, so even adjacent keys
//     ("participant:7" vs "participant:8") land far apart;
//   - distinct bases (study seeds) relocate every item's stream.
func SplitSeed(base int64, key string) int64 {
	// FNV-1a over the key bytes.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	// Mix base and key hash through the splitmix64 finalizer, twice.
	z := uint64(base) + 0x9e3779b97f4a7c15
	z ^= h
	for i := 0; i < 2; i++ {
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// Stream returns a private *rand.Rand for one work item, seeded by
// SplitSeed(base, key). Each stream is independent of every other item's
// stream and of the master stream that consumed the base seed, so a
// fan-out can hand one to each worker without any cross-item coupling.
func Stream(base int64, key string) *rand.Rand {
	return rand.New(rand.NewSource(SplitSeed(base, key)))
}

package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapDoesNotMaskGenuineError is the regression test for the
// cancellation-masking class: after a genuine failure cancels the worker
// context, an item at a LOWER input index that observes the cancellation
// and returns ctx.Err() must not win the lowest-index scan.
func TestMapDoesNotMaskGenuineError(t *testing.T) {
	leakCheck(t)
	for _, jobs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			items := make([]int, 12)
			genuine := errors.New("item 7 exploded")
			_, err := Map(context.Background(), jobs, items, func(ctx context.Context, i, _ int) (int, error) {
				if i == 7 {
					return 0, genuine
				}
				// Lower-index items park until the post-failure cancellation
				// reaches them (with a timeout so jobs=1, where no
				// cancellation ever happens, still completes).
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(100 * time.Millisecond):
					return 0, nil
				}
			})
			if !errors.Is(err, genuine) {
				t.Fatalf("Map = %v, want the genuine item-7 failure", err)
			}
			if errors.Is(err, context.Canceled) {
				t.Fatalf("Map returned cancellation fallout in place of the failure: %v", err)
			}
		})
	}
}

// TestMapForcedLowIndexCancellation pins the exact interleaving from the
// bug report: a blocker at index 1 waits for the worker context to die,
// while index 7 fails genuinely — so index 1 records context.Canceled
// below the failing index.
func TestMapForcedLowIndexCancellation(t *testing.T) {
	leakCheck(t)
	for _, jobs := range []int{2, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			items := make([]int, 10)
			genuine := errors.New("genuine failure at 7")
			var sawCancel atomic.Bool
			_, err := Map(context.Background(), jobs, items, func(ctx context.Context, i, _ int) (int, error) {
				if i == 1 {
					<-ctx.Done() // unblocked only by the index-7 failure
					sawCancel.Store(true)
					return 0, ctx.Err()
				}
				if i == 7 {
					time.Sleep(5 * time.Millisecond) // let the blocker park first
					return 0, genuine
				}
				return 0, nil
			})
			if !errors.Is(err, genuine) {
				t.Fatalf("Map = %v, want genuine failure (blocker cancelled: %v)", err, sawCancel.Load())
			}
			if !sawCancel.Load() {
				t.Fatal("blocker never observed cancellation — scenario did not exercise the masking path")
			}
		})
	}
}

// TestMapCallerCancellationStillReported: when the only errors are the
// caller's own cancellation, Map must still report it — the genuine-error
// preference must not swallow real cancellations.
func TestMapCallerCancellationStillReported(t *testing.T) {
	leakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		_, err := Map(ctx, jobs, make([]int, 8), func(ctx context.Context, i, _ int) (int, error) {
			return 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: Map = %v, want context.Canceled", jobs, err)
		}
	}
}

// TestMapAllSkippedItemsReportCallerCtxError is the MapAll contract: items
// skipped because the surrounding context ended report the caller's context
// error, and completed items keep their own results/errors.
func TestMapAllSkippedItemsReportCallerCtxError(t *testing.T) {
	leakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		results, errs := MapAll(ctx, jobs, make([]int, 6), func(context.Context, int, int) (int, error) {
			return 42, nil
		})
		for i := range errs {
			if !errors.Is(errs[i], context.Canceled) {
				t.Fatalf("jobs=%d: errs[%d] = %v, want the caller's context.Canceled", jobs, i, errs[i])
			}
			if results[i] != 0 {
				t.Errorf("jobs=%d: skipped item %d has result %d", jobs, i, results[i])
			}
		}
	}
}

// TestPoolWaitPrefersGenuineOverCancellation: a task at submit index 0
// parks until the pool's first-error cancellation (triggered by index 1's
// genuine failure) and returns ctx.Err(); Wait must still report index 1.
func TestPoolWaitPrefersGenuineOverCancellation(t *testing.T) {
	leakCheck(t)
	p := NewPool(context.Background(), 2)
	genuine := errors.New("task 1 exploded")
	p.Go(func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	p.Go(func(context.Context) error {
		time.Sleep(5 * time.Millisecond)
		return genuine
	})
	if err := p.Wait(); !errors.Is(err, genuine) || errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want the genuine task-1 failure", err)
	}
}

// TestPoolSkipRecordDoesNotMask exercises the skip bookkeeping directly: a
// skip recorded below a genuine failure loses to it; with only skips, the
// cancellation surfaces.
func TestPoolSkipRecordDoesNotMask(t *testing.T) {
	leakCheck(t)
	p := newPool(context.Background(), 2, false)
	p.errs = []error{context.Canceled, errors.New("real"), context.Canceled}
	p.skipped = []bool{true, false, true}
	p.next = 3
	if err := p.Wait(); err == nil || err.Error() != "real" {
		t.Fatalf("Wait = %v, want the genuine error despite a lower-index skip", err)
	}
	p2 := newPool(context.Background(), 2, false)
	p2.errs = []error{context.Canceled, context.Canceled}
	p2.skipped = []bool{true, true}
	p2.next = 2
	if err := p2.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("all-skip Wait = %v, want context.Canceled", err)
	}
}

// TestPoolGoFastFailWhenCancelled: Go on a saturated pool whose context is
// already dead must return promptly (recording a skip) instead of blocking
// on the semaphore.
func TestPoolGoFastFailWhenCancelled(t *testing.T) {
	leakCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Go(func(context.Context) error { close(started); <-gate; return nil }) // holds the only slot
	<-started                                                                // the slot is held before the context dies
	cancel()                                                                 // pool context dies while saturated

	done := make(chan struct{})
	go func() {
		p.Go(func(context.Context) error { return errors.New("should never run") })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Go blocked on a saturated semaphore after pool cancellation")
	}
	close(gate)
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want the cancellation (no task genuinely failed)", err)
	}
}

// TestPoolJoinModeUnchanged: join pools still run everything and join every
// failure in submit order, including after the masking fixes.
func TestPoolJoinModeUnchanged(t *testing.T) {
	leakCheck(t)
	p := NewJoinPool(context.Background(), 2)
	for i := 0; i < 4; i++ {
		i := i
		p.Go(func(context.Context) error {
			if i%2 == 1 {
				return fmt.Errorf("j%d", i)
			}
			return nil
		})
	}
	err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "j1") || !strings.Contains(err.Error(), "j3") {
		t.Fatalf("join Wait = %v", err)
	}
}

package analysis_test

// Golden-file tests live in the external test package: internal/corpus
// imports internal/analysis for IR verification, so importing corpus
// from an in-package test would be an import cycle.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
	"decompstudy/internal/corpus"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func TestCorpusIRIsVerifierClean(t *testing.T) {
	ctx := context.Background()
	for _, s := range corpus.Snippets() {
		file, err := s.Parse()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		obj, err := compile.CompileCtx(ctx, file)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		for _, fn := range obj.Funcs {
			diags := analysis.Check(ctx, fn)
			if len(diags) != 0 {
				t.Errorf("%s/%s: want clean, got %v", s.ID, fn.Name, diags)
			}
		}
	}
	files, err := corpus.TrainingFiles()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		obj, err := compile.CompileCtx(ctx, f)
		if err != nil {
			t.Fatalf("training[%d]: %v", i, err)
		}
		for _, fn := range obj.Funcs {
			if diags := analysis.Check(ctx, fn); len(diags) != 0 {
				t.Errorf("training[%d]/%s: want clean, got %v", i, fn.Name, diags)
			}
		}
	}
}

// TestCorpusComplexityGolden pins the structural covariates of every
// study function: a change here means the lowering or an analysis
// changed shape, which shifts the RQ5 predictors. Refresh deliberately
// with: go test ./internal/analysis/ -run Golden -update
func TestCorpusComplexityGolden(t *testing.T) {
	ctx := context.Background()
	var sb strings.Builder
	for _, s := range corpus.Snippets() {
		file, err := s.Parse()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		obj, err := compile.CompileCtx(ctx, file)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		fn, ok := obj.Func0(s.FuncName)
		if !ok {
			t.Fatalf("%s: missing %s", s.ID, s.FuncName)
		}
		fmt.Fprintf(&sb, "%s %s: %s\n", s.ID, fn.Name, analysis.MeasureCtx(ctx, fn))
	}
	compareGolden(t, "complexity.golden", sb.String())
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s\n-- got --\n%s-- want --\n%s", name, got, want)
	}
}

package analysis

import "decompstudy/internal/compile"

// Direction selects how facts propagate through the CFG.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota + 1
	Backward
)

// Lattice defines the fact domain of one dataflow problem. Facts are an
// arbitrary type F; the shipped passes all use Bits but the framework
// does not care.
type Lattice[F any] struct {
	// Bottom returns the optimistic initial fact for non-boundary blocks
	// (empty set for may-analyses, universal set for must-analyses).
	Bottom func() F
	// Boundary returns the fact entering the entry block (Forward) or
	// leaving every exit block (Backward).
	Boundary func() F
	// Join merges src into dst in place and reports whether dst changed;
	// it implements the confluence operator (union or intersection).
	Join func(dst, src F) bool
	// Clone copies a fact so Transfer may mutate its input freely.
	Clone func(F) F
}

// Transfer computes a block's out fact (Forward) or in fact (Backward)
// from the fact flowing into it. It may mutate and return its argument —
// the solver always passes a clone.
type Transfer[F any] func(b *compile.Block, fact F) F

// Solution holds the fixpoint facts at each block boundary, indexed like
// Graph.Blocks. For Forward problems In is the fact before the block and
// Out after; for Backward problems Out is the fact after the block
// (flowing in from successors) and In the fact before it.
type Solution[F any] struct {
	In, Out []F
}

// Solve runs the worklist algorithm to fixpoint. Blocks are seeded in
// reverse postorder (postorder for backward problems) so reducible CFGs
// converge in few passes; the worklist handles the rest. Unreachable
// blocks keep their Bottom facts.
func Solve[F any](g *Graph, dir Direction, lat Lattice[F], transfer Transfer[F]) *Solution[F] {
	n := g.NumBlocks()
	sol := &Solution[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = lat.Bottom()
		sol.Out[i] = lat.Bottom()
	}
	if n == 0 {
		return sol
	}

	// order is the seed iteration order; flow/depend pick the edge
	// direction so one loop body serves both problem directions.
	order := g.RPO
	if dir == Backward {
		order = make([]int, len(g.RPO))
		for i, b := range g.RPO {
			order[len(g.RPO)-1-i] = b
		}
	}

	inQueue := NewBits(n)
	queue := make([]int, 0, len(order))
	for _, b := range order {
		queue = append(queue, b)
		inQueue.Set(b)
	}

	boundary := func(i int) bool {
		if dir == Forward {
			return i == 0
		}
		return len(g.Succs[i]) == 0
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue.Clear(b)

		// Gather the fact flowing into the transfer function.
		gather := lat.Bottom()
		if boundary(b) {
			lat.Join(gather, lat.Boundary())
		}
		preds := g.Preds[b]
		if dir == Backward {
			preds = g.Succs[b]
		}
		for _, p := range preds {
			src := sol.Out[p]
			if dir == Backward {
				src = sol.In[p]
			}
			lat.Join(gather, src)
		}

		result := transfer(g.Blocks[b], lat.Clone(gather))
		if dir == Forward {
			sol.In[b] = gather
			if lat.Join(sol.Out[b], result) {
				for _, s := range g.Succs[b] {
					if !inQueue.Has(s) {
						inQueue.Set(s)
						queue = append(queue, s)
					}
				}
			}
		} else {
			sol.Out[b] = gather
			if lat.Join(sol.In[b], result) {
				for _, p := range g.Preds[b] {
					if !inQueue.Has(p) {
						inQueue.Set(p)
						queue = append(queue, p)
					}
				}
			}
		}
	}
	return sol
}

// BitsLattice builds the standard bitset lattice over n elements.
// must=false gives the may-analysis lattice (⊥ = ∅, join = ∪);
// must=true gives the must-analysis lattice (⊥ = universe, join = ∩).
func BitsLattice(n int, must bool, boundary Bits) Lattice[Bits] {
	lat := Lattice[Bits]{
		Clone: func(b Bits) Bits { return b.Clone() },
		Boundary: func() Bits {
			if boundary == nil {
				return NewBits(n)
			}
			return boundary.Clone()
		},
	}
	if must {
		lat.Bottom = func() Bits {
			b := NewBits(n)
			b.Fill(n)
			return b
		}
		lat.Join = func(dst, src Bits) bool { return dst.Intersect(src) }
	} else {
		lat.Bottom = func() Bits { return NewBits(n) }
		lat.Join = func(dst, src Bits) bool { return dst.Union(src) }
	}
	return lat
}

package analysis

import (
	"testing"

	"decompstudy/internal/compile"
)

// reachFixture builds
//
//	b0: t2 = 1          ; condbr t0 → b1, b2
//	b1: t2 = 5          ; br b3
//	b2: t3 = t2         ; br b3        (sees only b0's def of t2)
//	b3: t3 = t2 + t1    ; ret t3      (sees b0's and b1's defs of t2)
func reachFixture() *compile.Func {
	return tfn(2, 4,
		tb(0, mov(2, compile.Const(1)), condbr(compile.Temp(0), 1, 2)),
		tb(1, mov(2, compile.Const(5)), br(3)),
		tb(2, mov(3, compile.Temp(2)), br(3)),
		tb(3, add(3, compile.Temp(2), compile.Temp(1)), ret(compile.Temp(3))),
	)
}

func TestReachingDefsSites(t *testing.T) {
	g := NewGraph(reachFixture())
	r := ReachingDefs(g)

	// Two param pseudo-sites plus four real defs.
	if len(r.Sites) != 6 {
		t.Fatalf("len(Sites) = %d, want 6", len(r.Sites))
	}
	if s := r.Sites[0]; s.Temp != 0 || s.Instr != -1 {
		t.Errorf("Sites[0] = %+v, want param pseudo-site for t0", s)
	}
	if got := len(r.SitesOf(2)); got != 2 {
		t.Errorf("t2 has %d def sites, want 2", got)
	}
}

func TestUseDefChains(t *testing.T) {
	g := NewGraph(reachFixture())
	r := ReachingDefs(g)
	chains := r.UseDefs()

	siteBlocks := func(u Use) map[int]bool {
		out := map[int]bool{}
		for _, si := range chains[u] {
			out[r.Sites[si].Block] = true
		}
		return out
	}

	// The read of t2 in b2 sees only b0's def.
	got := siteBlocks(Use{Block: 2, Instr: 0, Temp: 2})
	if len(got) != 1 || !got[0] {
		t.Errorf("b2 read of t2 reaches blocks %v, want {0}", got)
	}
	// The read of t2 at the join sees both defs.
	got = siteBlocks(Use{Block: 3, Instr: 0, Temp: 2})
	if len(got) != 2 || !got[0] || !got[1] {
		t.Errorf("b3 read of t2 reaches blocks %v, want {0,1}", got)
	}
	// The read of the parameter resolves to its pseudo-site.
	sites := chains[Use{Block: 3, Instr: 0, Temp: 1}]
	if len(sites) != 1 || r.Sites[sites[0]].Instr != -1 {
		t.Errorf("param read chain = %v, want the single pseudo-site", sites)
	}
}

func TestReachingDefsKill(t *testing.T) {
	// Same-block redefinition: only the last def escapes the block.
	fn := tfn(0, 1,
		tb(0, mov(0, compile.Const(1)), mov(0, compile.Const(2)), ret(compile.Temp(0))),
	)
	r := ReachingDefs(NewGraph(fn))
	if !r.Out[0].Has(1) || r.Out[0].Has(0) {
		t.Errorf("Out[0] = %v, want only the second def (site 1)", r.Out[0])
	}
}

func TestLiveness(t *testing.T) {
	g := NewGraph(reachFixture())
	l := Liveness(g)

	// Both params are live into the entry: t0 feeds the branch, t1 the join.
	if !l.In[0].Has(0) || !l.In[0].Has(1) {
		t.Errorf("live-in entry = %v, want t0 and t1", l.In[0])
	}
	// t2 and t1 are live into the join; t0 is dead by then.
	if !l.In[3].Has(2) || !l.In[3].Has(1) || l.In[3].Has(0) {
		t.Errorf("live-in b3 = %v, want {1,2}", l.In[3])
	}
	// Nothing is live out of the exit block.
	if l.Out[3].Count() != 0 {
		t.Errorf("live-out exit = %v, want empty", l.Out[3])
	}
}

func TestMaxPressure(t *testing.T) {
	// Straight line holding three values at once before consuming them.
	fn := tfn(0, 4,
		tb(0,
			mov(0, compile.Const(1)),
			mov(1, compile.Const(2)),
			mov(2, compile.Const(3)),
			add(3, compile.Temp(0), compile.Temp(1)),
			add(3, compile.Temp(3), compile.Temp(2)),
			ret(compile.Temp(3)),
		),
	)
	if got := Liveness(NewGraph(fn)).MaxPressure(); got != 3 {
		t.Errorf("MaxPressure = %d, want 3", got)
	}
}

func TestDefiniteAssignment(t *testing.T) {
	// t1 is assigned on only one arm of the branch.
	fn := tfn(1, 2,
		tb(0, condbr(compile.Temp(0), 1, 2)),
		tb(1, mov(1, compile.Const(1)), br(3)),
		tb(2, br(3)),
		tb(3, ret(compile.Temp(1))),
	)
	sol := DefiniteAssignment(NewGraph(fn))
	if sol.In[3].Has(1) {
		t.Error("t1 must not be definitely assigned at the join")
	}
	if !sol.In[3].Has(0) {
		t.Error("the parameter must be definitely assigned everywhere")
	}
	if !sol.Out[1].Has(1) {
		t.Error("t1 must be assigned at the end of the defining arm")
	}
}

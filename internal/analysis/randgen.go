package analysis

import (
	"math/rand"

	"decompstudy/internal/compile"
)

// Instruction constructors mirroring the lowering conventions of
// internal/compile: Dst is -1 on non-defining instructions, params occupy
// temps 0..NParams-1. They are shared by the hand-built IR tests in this
// package and by GenFunc.

func mov(dst int, a compile.Operand) compile.Instr {
	return compile.Instr{Op: compile.OpMov, Dst: dst, A: a}
}

func load(dst int, addr compile.Operand, width int) compile.Instr {
	return compile.Instr{Op: compile.OpLoad, Dst: dst, A: addr, Width: width}
}

func store(addr, val compile.Operand, width int) compile.Instr {
	return compile.Instr{Op: compile.OpStore, Dst: -1, A: addr, B: val, Width: width}
}

func ret(a compile.Operand) compile.Instr {
	return compile.Instr{Op: compile.OpRet, Dst: -1, A: a}
}

func br(target int) compile.Instr {
	return compile.Instr{Op: compile.OpBr, Dst: -1, Target: target}
}

func condbr(cond compile.Operand, target, els int) compile.Instr {
	return compile.Instr{Op: compile.OpCondBr, Dst: -1, A: cond, Target: target, Else: els}
}

// GenFunc builds a random well-formed function: the entry block defines
// every non-parameter temp before any branching, so definite assignment
// holds on every path; every other block ends in a branch to an existing
// block or a return. The result must be verifier-clean apart from
// possible unreachable-block warnings. The generator is deterministic per
// RNG state, which makes it usable as a quick-check corpus for the
// verifier's mutation tests and for the optimizer's differential suite
// (compile/opt runs every generated function at -O0 and -O2 and requires
// interpreter agreement).
func GenFunc(r *rand.Rand) *compile.Func {
	nparams := r.Intn(3)
	nlocals := 1 + r.Intn(5)
	ntemps := nparams + nlocals
	nblocks := 1 + r.Intn(7)

	anyTemp := func() compile.Operand { return compile.Temp(r.Intn(ntemps)) }
	value := func() compile.Operand {
		if r.Intn(2) == 0 {
			return compile.Const(int64(r.Intn(100)))
		}
		return anyTemp()
	}
	widths := []int{1, 2, 4, 8}
	binops := []compile.Opcode{
		compile.OpAdd, compile.OpSub, compile.OpMul, compile.OpAnd,
		compile.OpOr, compile.OpXor, compile.OpCmpEQ, compile.OpCmpLT,
	}

	fn := &compile.Func{Name: "rand", NParams: nparams, NTemps: ntemps, RetWidth: 8}
	for id := 0; id < nblocks; id++ {
		b := &compile.Block{ID: id}
		if id == 0 {
			for t := nparams; t < ntemps; t++ {
				b.Instrs = append(b.Instrs, mov(t, compile.Const(int64(t))))
			}
		}
		for k := r.Intn(4); k > 0; k-- {
			switch r.Intn(4) {
			case 0:
				b.Instrs = append(b.Instrs, mov(r.Intn(ntemps), value()))
			case 1:
				b.Instrs = append(b.Instrs, compile.Instr{
					Op: binops[r.Intn(len(binops))], Dst: r.Intn(ntemps), A: value(), B: value(),
				})
			case 2:
				b.Instrs = append(b.Instrs, store(anyTemp(), value(), widths[r.Intn(len(widths))]))
			case 3:
				b.Instrs = append(b.Instrs, load(r.Intn(ntemps), anyTemp(), widths[r.Intn(len(widths))]))
			}
		}
		switch {
		case id == nblocks-1 || r.Intn(3) == 0:
			b.Instrs = append(b.Instrs, ret(value()))
		case r.Intn(2) == 0:
			b.Instrs = append(b.Instrs, br(r.Intn(nblocks)))
		default:
			b.Instrs = append(b.Instrs, condbr(anyTemp(), r.Intn(nblocks), r.Intn(nblocks)))
		}
		fn.Blocks = append(fn.Blocks, b)
	}
	return fn
}

package analysis

import (
	"strings"
	"testing"

	"decompstudy/internal/compile"
)

func TestMeasureBranchy(t *testing.T) {
	cov := Measure(compileSrc(t, `
int clamp(int value, int lo, int hi) {
  if (value < lo) {
    return lo;
  }
  if (value > hi) {
    return hi;
  }
  return value;
}
`))
	// Two decisions → McCabe 3, even with three returns (the virtual-exit
	// form must not undercount multi-return functions).
	if cov.Cyclomatic != 3 {
		t.Errorf("Cyclomatic = %d, want 3", cov.Cyclomatic)
	}
	if cov.MaxLoopDepth != 0 {
		t.Errorf("MaxLoopDepth = %d, want 0", cov.MaxLoopDepth)
	}
	if cov.Blocks != 5 || cov.Edges != 4 {
		t.Errorf("Blocks/Edges = %d/%d, want 5/4", cov.Blocks, cov.Edges)
	}
}

func TestMeasureLoop(t *testing.T) {
	cov := Measure(compileSrc(t, `
long sum(long *v, int n) {
  long total = 0;
  for (int i = 0; i < n; i++) {
    total = total + v[i];
  }
  return total;
}
`))
	if cov.Cyclomatic != 2 {
		t.Errorf("Cyclomatic = %d, want 2", cov.Cyclomatic)
	}
	if cov.MaxLoopDepth != 1 {
		t.Errorf("MaxLoopDepth = %d, want 1", cov.MaxLoopDepth)
	}
	if cov.MaxLivePressure < 3 {
		t.Errorf("MaxLivePressure = %d, want at least v, n, total, i live together", cov.MaxLivePressure)
	}
}

func TestMeasureCountsCallsAndNesting(t *testing.T) {
	fn := nestedLoops()
	fn.Blocks[2].Instrs = append([]compile.Instr{
		{Op: compile.OpCall, Dst: -1, Callee: compile.Sym("g")},
	}, fn.Blocks[2].Instrs...)
	cov := Measure(fn)
	if cov.Calls != 1 {
		t.Errorf("Calls = %d, want 1", cov.Calls)
	}
	if cov.MaxLoopDepth != 2 {
		t.Errorf("MaxLoopDepth = %d, want 2", cov.MaxLoopDepth)
	}
}

func TestMeasureIgnoresUnreachable(t *testing.T) {
	fn := tfn(0, 0,
		tb(0, ret(compile.Const(0))),
		tb(1, compile.Instr{Op: compile.OpCall, Dst: -1, Callee: compile.Sym("g")}, ret(compile.Const(0))),
	)
	cov := Measure(fn)
	if cov.Blocks != 1 || cov.Calls != 0 {
		t.Errorf("Blocks/Calls = %d/%d, want 1/0 (unreachable excluded)", cov.Blocks, cov.Calls)
	}
}

func TestMeasureEmptyFunc(t *testing.T) {
	cov := Measure(&compile.Func{Name: "empty"})
	if cov.Cyclomatic != 0 || cov.Blocks != 0 {
		t.Errorf("empty func covariates = %+v, want zeros", cov)
	}
}

func TestCovariatesString(t *testing.T) {
	s := Covariates{Blocks: 2, Cyclomatic: 3}.String()
	for _, want := range []string{"blocks=2", "cyclomatic=3", "loopdepth=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

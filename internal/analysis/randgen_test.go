package analysis

import (
	"math/rand"
	"testing"

	"decompstudy/internal/compile"
)

// genFunc is the test-local alias for the exported generator; the tests
// predate the promotion of GenFunc into the package API.
func genFunc(r *rand.Rand) *compile.Func { return GenFunc(r) }

func TestVerifyRandomWellFormed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		fn := genFunc(r)
		for _, d := range Verify(fn) {
			if d.Sev == SevError {
				t.Fatalf("seed %d: generated IR flagged: %v\n%s", seed, d, fn)
			}
		}
	}
}

// mutation breaks one invariant of a well-formed function and names the
// check that must fire. ok reports whether the function offered a
// mutation site.
type mutation struct {
	name  string
	check string
	apply func(fn *compile.Func, r *rand.Rand) bool
}

var mutations = []mutation{
	{
		name: "broken branch target", check: "verify.branch-target",
		apply: func(fn *compile.Func, r *rand.Rand) bool {
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					switch b.Instrs[i].Op {
					case compile.OpBr, compile.OpCondBr:
						b.Instrs[i].Target = len(fn.Blocks) + 17
						return true
					}
				}
			}
			return false
		},
	},
	{
		name: "use before def", check: "verify.def-before-use",
		apply: func(fn *compile.Func, r *rand.Rand) bool {
			// A brand-new temp with no definition anywhere, read by a
			// fresh instruction at the front of the entry block.
			t := fn.NTemps
			fn.NTemps++
			b := fn.Blocks[0]
			b.Instrs = append([]compile.Instr{mov(0, compile.Temp(t))}, b.Instrs...)
			return true
		},
	},
	{
		name: "bad width", check: "verify.width",
		apply: func(fn *compile.Func, r *rand.Rand) bool {
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					switch b.Instrs[i].Op {
					case compile.OpLoad, compile.OpStore:
						b.Instrs[i].Width = 3
						return true
					}
				}
			}
			return false
		},
	},
	{
		name: "empty block", check: "verify.empty-block",
		apply: func(fn *compile.Func, r *rand.Rand) bool {
			fn.Blocks[r.Intn(len(fn.Blocks))].Instrs = nil
			return true
		},
	},
	{
		name: "stray terminator", check: "verify.stray-terminator",
		apply: func(fn *compile.Func, r *rand.Rand) bool {
			b := fn.Blocks[0]
			b.Instrs = append([]compile.Instr{ret(compile.Const(0))}, b.Instrs...)
			return len(b.Instrs) > 1
		},
	},
	{
		name: "operand temp out of range", check: "verify.temp-range",
		apply: func(fn *compile.Func, r *rand.Rand) bool {
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].A.Kind == compile.OperandTemp {
						b.Instrs[i].A.Temp = fn.NTemps + 9
						return true
					}
				}
			}
			return false
		},
	},
}

func TestVerifyFlagsMutatedInvariants(t *testing.T) {
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			applied := 0
			for seed := int64(0); seed < 30; seed++ {
				r := rand.New(rand.NewSource(seed))
				fn := genFunc(r)
				if !m.apply(fn, r) {
					continue
				}
				applied++
				if !checkIDs(Verify(fn))[m.check] {
					t.Fatalf("seed %d: mutation %q not flagged as %s\n%s", seed, m.name, m.check, fn)
				}
			}
			if applied == 0 {
				t.Fatalf("mutation %q never found a site in 30 seeds", m.name)
			}
		})
	}
}

func TestAnalysesNeverPanicOnCorruptIR(t *testing.T) {
	// Scramble random fields of random instructions and run every entry
	// point. Any panic fails the test; the diagnostics themselves are
	// unconstrained.
	for seed := int64(0); seed < 80; seed++ {
		r := rand.New(rand.NewSource(seed))
		fn := genFunc(r)
		for k := 1 + r.Intn(6); k > 0; k-- {
			b := fn.Blocks[r.Intn(len(fn.Blocks))]
			if len(b.Instrs) == 0 {
				continue
			}
			in := &b.Instrs[r.Intn(len(b.Instrs))]
			switch r.Intn(6) {
			case 0:
				in.Op = compile.Opcode(r.Intn(40))
			case 1:
				in.Dst = r.Intn(20) - 10
			case 2:
				in.A = compile.Operand{Kind: compile.OperandKind(r.Intn(6)), Temp: r.Intn(30) - 5}
			case 3:
				in.Target = r.Intn(20) - 5
			case 4:
				in.Width = r.Intn(20) - 3
			case 5:
				b.Instrs = b.Instrs[:r.Intn(len(b.Instrs))]
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("seed %d: panic on corrupt IR: %v\n%s", seed, p, fn)
				}
			}()
			Verify(fn)
			Lint(fn)
			Measure(fn)
		}()
	}
}

func TestGenFuncIsDeterministic(t *testing.T) {
	a := genFunc(rand.New(rand.NewSource(7)))
	b := genFunc(rand.New(rand.NewSource(7)))
	if a.String() != b.String() {
		t.Error("genFunc must be deterministic per seed")
	}
}

package analysis

import (
	"errors"
	"strings"
	"testing"

	"decompstudy/internal/compile"
)

func TestVerifyCleanFunc(t *testing.T) {
	for name, fn := range map[string]*compile.Func{
		"diamond": diamond(),
		"loops":   nestedLoops(),
		"reach":   reachFixture(),
	} {
		if diags := Verify(fn); len(diags) != 0 {
			t.Errorf("%s: Verify = %v, want clean", name, diags)
		}
	}
}

func TestVerifySeededViolations(t *testing.T) {
	cases := []struct {
		name  string
		fn    *compile.Func
		check string
		sev   Severity
	}{
		{
			name:  "no blocks",
			fn:    tfn(0, 0),
			check: "verify.no-blocks", sev: SevError,
		},
		{
			name: "duplicate block ID",
			fn: tfn(0, 0,
				tb(0, br(1)),
				tb(1, ret(compile.Const(0))),
				tb(1, ret(compile.Const(0)))),
			check: "verify.duplicate-block", sev: SevError,
		},
		{
			name:  "empty block",
			fn:    tfn(0, 0, tb(0, br(1)), tb(1)),
			check: "verify.empty-block", sev: SevError,
		},
		{
			name:  "missing terminator",
			fn:    tfn(0, 1, tb(0, mov(0, compile.Const(1)))),
			check: "verify.terminator", sev: SevError,
		},
		{
			name:  "stray terminator",
			fn:    tfn(0, 1, tb(0, ret(compile.Const(0)), mov(0, compile.Const(1)), ret(compile.Const(0)))),
			check: "verify.stray-terminator", sev: SevError,
		},
		{
			name:  "branch target missing",
			fn:    tfn(0, 0, tb(0, br(7))),
			check: "verify.branch-target", sev: SevError,
		},
		{
			name: "condbr false target missing",
			fn: tfn(1, 1,
				tb(0, condbr(compile.Temp(0), 1, 9)),
				tb(1, ret(compile.Const(0)))),
			check: "verify.branch-target", sev: SevError,
		},
		{
			name:  "param count exceeds temps",
			fn:    tfn(3, 1, tb(0, ret(compile.Temp(0)))),
			check: "verify.param-count", sev: SevError,
		},
		{
			name:  "operand temp out of range",
			fn:    tfn(0, 1, tb(0, ret(compile.Temp(5)))),
			check: "verify.temp-range", sev: SevError,
		},
		{
			name:  "destination out of range",
			fn:    tfn(0, 1, tb(0, mov(9, compile.Const(1)), ret(compile.Const(0)))),
			check: "verify.temp-range", sev: SevError,
		},
		{
			name:  "mov missing source",
			fn:    tfn(0, 1, tb(0, mov(0, compile.None), ret(compile.Const(0)))),
			check: "verify.operand", sev: SevError,
		},
		{
			name: "add with stray B on mov",
			fn: tfn(0, 2, tb(0,
				compile.Instr{Op: compile.OpMov, Dst: 0, A: compile.Const(1), B: compile.Const(2)},
				ret(compile.Const(0)))),
			check: "verify.operand", sev: SevError,
		},
		{
			name:  "condbr without condition",
			fn:    tfn(0, 0, tb(0, condbr(compile.None, 0, 0))),
			check: "verify.operand", sev: SevError,
		},
		{
			name: "call callee is a constant",
			fn: tfn(0, 1, tb(0,
				compile.Instr{Op: compile.OpCall, Dst: 0, Callee: compile.Const(4)},
				ret(compile.Const(0)))),
			check: "verify.operand", sev: SevError,
		},
		{
			name:  "bad load width",
			fn:    tfn(1, 2, tb(0, load(1, compile.Temp(0), 3), ret(compile.Temp(1)))),
			check: "verify.width", sev: SevError,
		},
		{
			name:  "bad store width",
			fn:    tfn(2, 2, tb(0, store(compile.Temp(0), compile.Temp(1), 16), ret(compile.Const(0)))),
			check: "verify.width", sev: SevError,
		},
		{
			name: "defining op without Dst",
			fn: tfn(0, 1, tb(0,
				compile.Instr{Op: compile.OpAdd, Dst: -1, A: compile.Const(1), B: compile.Const(2)},
				ret(compile.Const(0)))),
			check: "verify.dst", sev: SevError,
		},
		{
			name:  "unknown opcode",
			fn:    tfn(0, 0, tb(0, compile.Instr{Op: compile.Opcode(99)}, ret(compile.Const(0)))),
			check: "verify.operand", sev: SevError,
		},
		{
			name:  "temp read but never defined",
			fn:    tfn(0, 1, tb(0, ret(compile.Temp(0)))),
			check: "verify.def-before-use", sev: SevError,
		},
		{
			name: "temp not assigned on every path",
			fn: tfn(1, 2,
				tb(0, condbr(compile.Temp(0), 1, 2)),
				tb(1, mov(1, compile.Const(1)), br(3)),
				tb(2, br(3)),
				tb(3, ret(compile.Temp(1)))),
			check: "verify.def-before-use", sev: SevWarn,
		},
		{
			name: "void function returns value",
			fn: &compile.Func{Name: "f", NTemps: 0,
				Blocks: []*compile.Block{tb(0, ret(compile.Const(1)))}},
			check: "verify.ret-value", sev: SevWarn,
		},
		{
			name: "valued function returns nothing",
			fn: &compile.Func{Name: "f", NTemps: 0, RetWidth: 4,
				Blocks: []*compile.Block{tb(0, ret(compile.None))}},
			check: "verify.ret-value", sev: SevWarn,
		},
		{
			name: "unreachable block",
			fn: tfn(0, 0,
				tb(0, ret(compile.Const(0))),
				tb(1, ret(compile.Const(0)))),
			check: "verify.unreachable", sev: SevWarn,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCheck(t, Verify(tc.fn), tc.check, tc.sev)
		})
	}
}

func TestVerifyDiagPositions(t *testing.T) {
	// The diagnostic must name the offending block and instruction.
	fn := tfn(0, 1,
		tb(4, br(5)),
		tb(5, mov(0, compile.Const(1)), load(0, compile.Temp(0), 3), ret(compile.Temp(0))),
	)
	d := wantCheck(t, Verify(fn), "verify.width", SevError)
	if d.Block != 5 || d.Instr != 1 {
		t.Errorf("width diag at b%d/i%d, want b5/i1", d.Block, d.Instr)
	}
	if got := d.Pos(); got != "f/b5/i1" {
		t.Errorf("Pos() = %q, want f/b5/i1", got)
	}
	if !strings.Contains(d.String(), "[verify.width]") {
		t.Errorf("String() = %q, missing check ID", d.String())
	}
}

func TestVerifySkipsDataflowOnBrokenStructure(t *testing.T) {
	// An empty block breaks the CFG; the def-before-use pass must not run
	// (and must not panic) — only the structural findings appear.
	fn := tfn(0, 1,
		tb(0, condbr(compile.Temp(0), 1, 1)),
		tb(1),
	)
	ids := checkIDs(Verify(fn))
	if !ids["verify.empty-block"] {
		t.Fatal("missing verify.empty-block")
	}
	if ids["verify.def-before-use"] {
		t.Error("def-before-use should be suppressed on structurally broken IR")
	}
}

func TestAsError(t *testing.T) {
	fn := tfn(0, 0, tb(0, br(7)))
	diags := Verify(fn)
	err := AsError(diags, SevError)
	if err == nil {
		t.Fatal("AsError = nil for broken IR")
	}
	if !errors.Is(err, ErrMalformed) {
		t.Error("joined error must wrap ErrMalformed")
	}
	if !strings.Contains(err.Error(), "verify.branch-target") {
		t.Errorf("error text %q must carry the diagnostic", err.Error())
	}
	// A clean function yields nil at any threshold.
	if err := AsError(Verify(diamond()), SevWarn); err != nil {
		t.Errorf("AsError(clean) = %v, want nil", err)
	}
}

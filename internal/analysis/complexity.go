package analysis

import (
	"context"
	"fmt"

	"decompstudy/internal/compile"
	"decompstudy/internal/obs"
)

// Covariates are the structural-complexity measures of one function,
// computed from the dataflow analyses. They are the RQ5 structural
// predictors the DIRE line of work argues should sit beside surface
// similarity when modeling comprehension.
type Covariates struct {
	// Blocks and Edges count the reachable CFG.
	Blocks int `json:"blocks"`
	Edges  int `json:"edges"`
	// Instrs counts instructions in reachable blocks.
	Instrs int `json:"instrs"`
	// Temps is the function's register count (variable pressure proxy).
	Temps int `json:"temps"`
	// Cyclomatic is McCabe's E − N + 2 over the reachable CFG augmented
	// with a virtual exit node every ret branches to, so multi-return
	// functions are not undercounted.
	Cyclomatic int `json:"cyclomatic"`
	// MaxLoopDepth is the deepest natural-loop nesting.
	MaxLoopDepth int `json:"max_loop_depth"`
	// MaxLivePressure is the largest number of simultaneously live temps
	// at any instruction boundary.
	MaxLivePressure int `json:"max_live_pressure"`
	// Calls counts call instructions in reachable blocks.
	Calls int `json:"calls"`
}

func (c Covariates) String() string {
	return fmt.Sprintf("blocks=%d edges=%d instrs=%d temps=%d cyclomatic=%d loopdepth=%d livepressure=%d calls=%d",
		c.Blocks, c.Edges, c.Instrs, c.Temps, c.Cyclomatic, c.MaxLoopDepth, c.MaxLivePressure, c.Calls)
}

// Measure computes the structural covariates of one function. The
// function should be verifier-clean; on malformed IR Measure still
// returns without panicking but the numbers describe only the salvaged
// graph.
func Measure(fn *compile.Func) Covariates {
	return MeasureCtx(context.Background(), fn)
}

// MeasureCtx is Measure with telemetry: an analysis.Measure span when
// the context carries an obs handle.
func MeasureCtx(ctx context.Context, fn *compile.Func) Covariates {
	_, sp := obs.StartSpan(ctx, "analysis.Measure", obs.KV("func", fn.Name))
	defer sp.End()
	obs.AddCount(ctx, "analysis.measure.funcs", 1)

	g := NewGraph(fn)
	cov := Covariates{Temps: fn.NTemps}
	rets := 0
	for i, b := range g.Blocks {
		if !g.Reach.Has(i) {
			continue
		}
		cov.Blocks++
		cov.Instrs += len(b.Instrs)
		for _, in := range b.Instrs {
			switch in.Op {
			case compile.OpCall:
				cov.Calls++
			case compile.OpRet:
				rets++
			}
		}
	}
	cov.Edges = g.NumEdges()
	if cov.Blocks > 0 {
		// Virtual-exit form of E − N + 2: each ret adds an edge to a
		// shared exit node ((E+rets) − (N+1) + 2).
		cov.Cyclomatic = cov.Edges + rets - cov.Blocks + 1
	}
	cov.MaxLoopDepth = Dominators(g).MaxDepth()
	cov.MaxLivePressure = Liveness(g).MaxPressure()
	sp.SetAttr("cyclomatic", cov.Cyclomatic)
	return cov
}

// MeasureObject computes covariates for every function in an object,
// keyed by function name.
func MeasureObject(ctx context.Context, obj *compile.Object) map[string]Covariates {
	out := make(map[string]Covariates, len(obj.Funcs))
	for _, fn := range obj.Funcs {
		out[fn.Name] = MeasureCtx(ctx, fn)
	}
	return out
}

package analysis

import "decompstudy/internal/compile"

// DefSite is one temp-defining instruction, addressed by dense block
// index and instruction index.
type DefSite struct {
	Block, Instr int // dense block index, instruction index
	Temp         int
}

// Use is one temp read, addressed like DefSite.
type Use struct {
	Block, Instr int
	Temp         int
}

// ReachInfo is the reaching-definitions solution plus the use-def chains
// derived from it.
type ReachInfo struct {
	g *Graph
	// Sites lists every definition site; bit i in the In/Out sets refers
	// to Sites[i].
	Sites []DefSite
	// In and Out are the reaching-definition sets at block boundaries.
	In, Out []Bits
	// byTemp maps a temp to the indices of its definition sites.
	byTemp map[int][]int
}

// ReachingDefs runs the classic forward may-analysis: a definition
// reaches a point if some path from it arrives without an intervening
// redefinition of the same temp. Function parameters are modeled as
// definition sites at (entry, -1).
func ReachingDefs(g *Graph) *ReachInfo {
	r := &ReachInfo{g: g, byTemp: map[int][]int{}}
	addSite := func(s DefSite) int {
		idx := len(r.Sites)
		r.Sites = append(r.Sites, s)
		r.byTemp[s.Temp] = append(r.byTemp[s.Temp], idx)
		return idx
	}
	for p := 0; p < g.Fn.NParams; p++ {
		addSite(DefSite{Block: 0, Instr: -1, Temp: p})
	}
	for bi, b := range g.Blocks {
		for ii, in := range b.Instrs {
			if t := defTemp(in); t >= 0 {
				addSite(DefSite{Block: bi, Instr: ii, Temp: t})
			}
		}
	}
	ns := len(r.Sites)

	// Per-block gen (downward-exposed defs) and kill (every other site of
	// a temp the block redefines).
	n := g.NumBlocks()
	gen := make([]Bits, n)
	kill := make([]Bits, n)
	siteAt := map[[2]int]int{}
	for i, s := range r.Sites {
		if s.Instr >= 0 {
			siteAt[[2]int{s.Block, s.Instr}] = i
		}
	}
	for bi, b := range g.Blocks {
		gen[bi] = NewBits(ns)
		kill[bi] = NewBits(ns)
		lastDef := map[int]int{} // temp → site index of last def in block
		for ii, in := range b.Instrs {
			if t := defTemp(in); t >= 0 {
				lastDef[t] = siteAt[[2]int{bi, ii}]
			}
		}
		for t, site := range lastDef {
			gen[bi].Set(site)
			for _, other := range r.byTemp[t] {
				if other != site {
					kill[bi].Set(other)
				}
			}
		}
	}

	boundary := NewBits(ns)
	for i := 0; i < g.Fn.NParams && i < ns; i++ {
		boundary.Set(i) // parameter pseudo-sites reach the entry
	}
	sol := Solve(g, Forward, BitsLattice(ns, false, boundary), func(b *compile.Block, in Bits) Bits {
		bi := g.Index[b.ID]
		in.AndNot(kill[bi])
		in.Union(gen[bi])
		return in
	})
	r.In, r.Out = sol.In, sol.Out
	return r
}

// SitesOf returns the definition-site indices of a temp.
func (r *ReachInfo) SitesOf(temp int) []int { return r.byTemp[temp] }

// UseDefs computes the use-def chains: for every temp read it returns
// the definition sites that reach it, walking each block's prefix to
// refine the block-entry set to the exact instruction.
func (r *ReachInfo) UseDefs() map[Use][]int {
	out := map[Use][]int{}
	for bi, b := range r.g.Blocks {
		// cur maps temp → current reaching sites within the block walk;
		// temps not in cur fall back to the block-in set filtered by temp.
		cur := map[int][]int{}
		reachingNow := func(t int) []int {
			if sites, ok := cur[t]; ok {
				return sites
			}
			var sites []int
			for _, si := range r.byTemp[t] {
				if r.In[bi].Has(si) {
					sites = append(sites, si)
				}
			}
			return sites
		}
		var scratch []int
		for ii, in := range b.Instrs {
			scratch = usedTemps(in, scratch[:0])
			for _, t := range scratch {
				u := Use{Block: bi, Instr: ii, Temp: t}
				if _, seen := out[u]; !seen {
					out[u] = append([]int(nil), reachingNow(t)...)
				}
			}
			if t := defTemp(in); t >= 0 {
				for _, si := range r.byTemp[t] {
					if s := r.Sites[si]; s.Block == bi && s.Instr == ii {
						cur[t] = []int{si}
						break
					}
				}
			}
		}
	}
	return out
}

// LiveInfo is the liveness solution: which temps are still needed at
// each block boundary.
type LiveInfo struct {
	g *Graph
	// In and Out are live-temp sets at block boundaries.
	In, Out []Bits
}

// Liveness runs the classic backward may-analysis over temps.
func Liveness(g *Graph) *LiveInfo {
	nt := g.Fn.NTemps
	sol := Solve(g, Backward, BitsLattice(nt, false, NewBits(nt)), func(b *compile.Block, live Bits) Bits {
		return liveThroughBlock(b, live, nil)
	})
	return &LiveInfo{g: g, In: sol.In, Out: sol.Out}
}

// liveThroughBlock transfers a live-out set backward through a block's
// instructions. When visit is non-nil it is called before each
// instruction's effect with (instr index, live-after set) — the hook the
// dead-store lint and pressure covariate use.
func liveThroughBlock(b *compile.Block, live Bits, visit func(ii int, liveAfter Bits)) Bits {
	var scratch []int
	for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
		in := b.Instrs[ii]
		if visit != nil {
			visit(ii, live)
		}
		if t := defTemp(in); t >= 0 && t < len(live)*64 {
			live.Clear(t)
		}
		scratch = usedTemps(in, scratch[:0])
		for _, t := range scratch {
			if t >= 0 && t < len(live)*64 {
				live.Set(t)
			}
		}
	}
	return live
}

// MaxPressure returns the maximum number of simultaneously live temps at
// any instruction boundary — the register-pressure covariate.
func (l *LiveInfo) MaxPressure() int {
	max := 0
	note := func(n int) {
		if n > max {
			max = n
		}
	}
	for bi, b := range l.g.Blocks {
		if !l.g.Reach.Has(bi) {
			continue
		}
		note(l.In[bi].Count())
		liveThroughBlock(b, l.Out[bi].Clone(), func(_ int, after Bits) {
			note(after.Count())
		})
	}
	return max
}

// DefiniteAssignment runs the forward must-analysis "definitely assigned
// along every path": a temp is in the set when all paths from entry
// assign it. Parameters are assigned on entry. The result feeds the
// verifier's use-before-def check and the uninitialized-read lint.
func DefiniteAssignment(g *Graph) *Solution[Bits] {
	nt := g.Fn.NTemps
	boundary := NewBits(nt)
	for p := 0; p < g.Fn.NParams && p < nt; p++ {
		boundary.Set(p)
	}
	return Solve(g, Forward, BitsLattice(nt, true, boundary), func(b *compile.Block, in Bits) Bits {
		for _, instr := range b.Instrs {
			if t := defTemp(instr); t >= 0 && t < nt {
				in.Set(t)
			}
		}
		return in
	})
}

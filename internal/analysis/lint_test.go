package analysis

import (
	"context"
	"strings"
	"testing"

	"decompstudy/internal/compile"
	"decompstudy/internal/csrc"
)

// compileSrc lowers a mini-C translation unit and returns the single
// function compiled from it.
func compileSrc(t *testing.T, src string) *compile.Func {
	t.Helper()
	file, err := csrc.Parse(src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	obj, err := compile.Compile(file)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(obj.Funcs) != 1 {
		t.Fatalf("compiled %d functions, want 1", len(obj.Funcs))
	}
	return obj.Funcs[0]
}

func TestLintDeadStore(t *testing.T) {
	fn := compileSrc(t, `
int f(int a) {
  int x = a + 1;
  x = a * 2;
  return x;
}
`)
	d := wantCheck(t, Lint(fn), "lint.dead-store", SevWarn)
	if !strings.Contains(d.Msg, "(x)") {
		t.Errorf("dead-store message %q should name the variable x", d.Msg)
	}
}

func TestLintDeadStoreIgnoresScratchTemps(t *testing.T) {
	// The statement-position i++ leaves a dead scratch copy of the old
	// value in the IR; that lowering artifact must not be reported.
	fn := compileSrc(t, `
long sum(long *v, int n) {
  long total = 0;
  for (int i = 0; i < n; i++) {
    total = total + v[i];
  }
  return total;
}
`)
	if diags := Lint(fn); len(diags) != 0 {
		t.Errorf("Lint(sum) = %v, want clean", diags)
	}
}

func TestLintDeadStoreCopyCycle(t *testing.T) {
	// A ghost accumulator: ghost circulates through the loop back edge
	// (read to produce its own next value) but never reaches a return,
	// store, call, or branch. Classic per-instruction liveness keeps every
	// one of its stores "live"; the genuine-use fixpoint must flag them.
	fn := compileSrc(t, `
int f(int n) {
  int ghost = 0;
  int i = 0;
  while (i < n) {
    ghost = ghost + i;
    i = i + 1;
  }
  return i;
}
`)
	found := 0
	for _, d := range Lint(fn) {
		if d.Check == "lint.dead-store" && strings.Contains(d.Msg, "(ghost)") {
			found++
		}
		if d.Check == "lint.dead-store" && strings.Contains(d.Msg, "(i)") {
			t.Errorf("i escapes via the return and the loop condition, must not be flagged: %v", d)
		}
	}
	if found == 0 {
		t.Error("ghost-accumulator stores were not flagged as dead")
	}
}

func TestLintDeadStoreCycleEscapesViaReturn(t *testing.T) {
	// The same shape, but the accumulator is returned: every store in the
	// cycle is genuine and nothing may be flagged.
	fn := compileSrc(t, `
int f(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  return acc;
}
`)
	for _, d := range Lint(fn) {
		if d.Check == "lint.dead-store" {
			t.Errorf("escaping accumulator flagged as dead store: %v", d)
		}
	}
}

func TestLintConstCondViaReachingDef(t *testing.T) {
	fn := compileSrc(t, `
int f(int x) {
  int flag = 1;
  if (flag) {
    return x + 1;
  }
  return x - 1;
}
`)
	d := wantCheck(t, Lint(fn), "lint.const-cond", SevWarn)
	if !strings.Contains(d.Msg, "always") {
		t.Errorf("const-cond message %q should state the branch is decided", d.Msg)
	}
}

func TestLintConstCondLiteral(t *testing.T) {
	// A literal constant condition: taken edge depends on the value.
	mk := func(v int64) *compile.Func {
		return tfn(0, 0,
			tb(0, condbr(compile.Const(v), 1, 2)),
			tb(1, ret(compile.Const(1))),
			tb(2, ret(compile.Const(2))),
		)
	}
	d := wantCheck(t, Lint(mk(1)), "lint.const-cond", SevWarn)
	if !strings.Contains(d.Msg, "takes b1") {
		t.Errorf("true-const message %q should pick the true edge", d.Msg)
	}
	d = wantCheck(t, Lint(mk(0)), "lint.const-cond", SevWarn)
	if !strings.Contains(d.Msg, "takes b2") {
		t.Errorf("zero-const message %q should pick the false edge", d.Msg)
	}
}

func TestLintUnusedParam(t *testing.T) {
	fn := compileSrc(t, `
int f(int keep, int extra) {
  return keep * 2;
}
`)
	d := wantCheck(t, Lint(fn), "lint.unused-param", SevWarn)
	if !strings.Contains(d.Msg, "(extra)") {
		t.Errorf("unused-param message %q should name extra", d.Msg)
	}
	if strings.Contains(d.Msg, "(keep)") {
		t.Errorf("unused-param must not flag the used parameter: %q", d.Msg)
	}
}

func TestLintUninitRead(t *testing.T) {
	fn := compileSrc(t, `
int f(int n) {
  int total;
  if (n > 0) {
    total = n;
  }
  return total;
}
`)
	d := wantCheck(t, Lint(fn), "lint.uninit-read", SevWarn)
	if !strings.Contains(d.Msg, "(total)") {
		t.Errorf("uninit-read message %q should name total", d.Msg)
	}
}

func TestLintUnreachableCode(t *testing.T) {
	fn := tfn(0, 0,
		tb(0, ret(compile.Const(0))),
		tb(1, ret(compile.Const(1))),
	)
	d := wantCheck(t, Lint(fn), "lint.unreachable-code", SevWarn)
	if d.Block != 1 {
		t.Errorf("unreachable diag at b%d, want b1", d.Block)
	}
}

func TestLintCallResultNotDeadStore(t *testing.T) {
	// A discarded call result is a side-effecting statement, not a dead
	// store — even when the destination carries a name.
	fn := tfn(0, 1,
		tb(0,
			compile.Instr{Op: compile.OpCall, Dst: 0, Callee: compile.Sym("g")},
			ret(compile.Const(0)),
		),
	)
	fn.Symbols = []compile.Symbol{{Kind: compile.VarLocal, OrigName: "r", Temp: 0, Width: 8}}
	for _, d := range Lint(fn) {
		if d.Check == "lint.dead-store" {
			t.Errorf("call result flagged as dead store: %v", d)
		}
	}
}

func TestLintMalformedReturnsVerifierDiags(t *testing.T) {
	fn := tfn(0, 0, tb(0, br(1)), tb(1))
	diags := Lint(fn)
	if !checkIDs(diags)["verify.empty-block"] {
		t.Errorf("Lint on malformed IR = %v, want the verifier errors", diags)
	}
	for _, d := range diags {
		if strings.HasPrefix(d.Check, "lint.") {
			t.Errorf("lint checker ran on malformed IR: %v", d)
		}
	}
}

func TestCheckCombinesVerifyWarningsAndLints(t *testing.T) {
	// One function holding both a verifier warning (maybe-uninit read of a
	// named local) and a lint finding for the same hazard.
	fn := tfn(1, 2,
		tb(0, condbr(compile.Temp(0), 1, 2)),
		tb(1, mov(1, compile.Const(1)), br(3)),
		tb(2, br(3)),
		tb(3, ret(compile.Temp(1))),
	)
	fn.Symbols = []compile.Symbol{
		{Kind: compile.VarParam, OrigName: "c", Temp: 0, Width: 8},
		{Kind: compile.VarLocal, OrigName: "x", Temp: 1, Width: 8},
	}
	ids := checkIDs(Check(context.Background(), fn))
	if !ids["verify.def-before-use"] || !ids["lint.uninit-read"] {
		t.Errorf("Check = %v, want both the verifier warning and the lint finding", ids)
	}
}

package analysis

import (
	"testing"

	"decompstudy/internal/compile"
)

// nestedLoops builds
//
//	b0 → b1 → b2 → b3 → b2 (inner back edge)
//	          b2 → b4 → b1 (outer back edge)
//	     b1 → b5 (exit)
func nestedLoops() *compile.Func {
	return tfn(1, 1,
		tb(0, br(1)),
		tb(1, condbr(compile.Temp(0), 2, 5)),
		tb(2, condbr(compile.Temp(0), 3, 4)),
		tb(3, br(2)),
		tb(4, br(1)),
		tb(5, ret(compile.Temp(0))),
	)
}

func TestDominatorsSets(t *testing.T) {
	g := NewGraph(diamond())
	d := Dominators(g)
	// Entry dominates everything; neither arm dominates the join.
	for i := 0; i < 4; i++ {
		if !d.Dominates(0, i) {
			t.Errorf("entry should dominate block %d", i)
		}
		if !d.Dominates(i, i) {
			t.Errorf("block %d should dominate itself", i)
		}
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("diamond arms must not dominate the join")
	}
	if d.MaxDepth() != 0 {
		t.Errorf("acyclic MaxDepth = %d, want 0", d.MaxDepth())
	}
	if len(d.BackEdges) != 0 {
		t.Errorf("acyclic BackEdges = %v, want none", d.BackEdges)
	}
}

func TestDominatorsNestedLoops(t *testing.T) {
	g := NewGraph(nestedLoops())
	d := Dominators(g)

	if len(d.BackEdges) != 2 {
		t.Fatalf("BackEdges = %v, want 2 edges", d.BackEdges)
	}
	edges := map[[2]int]bool{}
	for _, e := range d.BackEdges {
		edges[e] = true
	}
	if !edges[[2]int{3, 2}] || !edges[[2]int{4, 1}] {
		t.Errorf("BackEdges = %v, want 3→2 and 4→1", d.BackEdges)
	}

	inner, outer := d.Loops[2], d.Loops[1]
	if inner == nil || outer == nil {
		t.Fatalf("Loops = %v, want headers 1 and 2", d.Loops)
	}
	if inner.Count() != 2 || !inner.Has(2) || !inner.Has(3) {
		t.Errorf("inner loop body count=%d, want {2,3}", inner.Count())
	}
	if outer.Count() != 4 || !outer.Has(1) || !outer.Has(4) {
		t.Errorf("outer loop body count=%d, want {1,2,3,4}", outer.Count())
	}

	wantDepth := []int{0, 1, 2, 2, 1, 0}
	for i, w := range wantDepth {
		if d.Depth[i] != w {
			t.Errorf("Depth[%d] = %d, want %d", i, d.Depth[i], w)
		}
	}
	if d.MaxDepth() != 2 {
		t.Errorf("MaxDepth = %d, want 2", d.MaxDepth())
	}
}

func TestDominatorsEmptyFunc(t *testing.T) {
	d := Dominators(NewGraph(&compile.Func{Name: "empty"}))
	if d.MaxDepth() != 0 || len(d.BackEdges) != 0 {
		t.Errorf("empty func dominators: depth=%d backedges=%v", d.MaxDepth(), d.BackEdges)
	}
}

package analysis

import (
	"reflect"
	"testing"

	"decompstudy/internal/compile"
)

func TestBitsBasicOps(t *testing.T) {
	b := NewBits(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Errorf("Has(%d) = false after Set", i)
		}
	}
	if got := b.Count(); got != 4 {
		t.Errorf("Count() = %d, want 4", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Has(64) = true after Clear")
	}

	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if want := []int{0, 63, 129}; !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
}

func TestBitsSetAlgebra(t *testing.T) {
	a := NewBits(100)
	a.Set(1)
	a.Set(70)
	b := NewBits(100)
	b.Set(70)
	b.Set(99)

	u := a.Clone()
	if !u.Union(b) {
		t.Error("Union should report a change")
	}
	if u.Union(b) {
		t.Error("second Union should be a no-op")
	}
	if u.Count() != 3 || !u.Has(1) || !u.Has(70) || !u.Has(99) {
		t.Errorf("union wrong: %v", u)
	}

	i := a.Clone()
	if !i.Intersect(b) {
		t.Error("Intersect should report a change")
	}
	if i.Count() != 1 || !i.Has(70) {
		t.Errorf("intersection wrong: count=%d", i.Count())
	}

	d := a.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("AndNot wrong: count=%d", d.Count())
	}

	if !a.Equal(a.Clone()) {
		t.Error("Equal(clone) = false")
	}
	if a.Equal(b) {
		t.Error("Equal of distinct sets = true")
	}

	f := NewBits(67)
	f.Fill(67)
	if f.Count() != 67 {
		t.Errorf("Fill(67).Count() = %d", f.Count())
	}
}

func TestNewGraphDiamond(t *testing.T) {
	g := NewGraph(diamond())
	if g.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", g.NumBlocks())
	}
	wantSuccs := [][]int{{1, 2}, {3}, {3}, nil}
	if !reflect.DeepEqual(g.Succs, wantSuccs) {
		t.Errorf("Succs = %v, want %v", g.Succs, wantSuccs)
	}
	wantPreds := [][]int{nil, {0}, {0}, {1, 2}}
	if !reflect.DeepEqual(g.Preds, wantPreds) {
		t.Errorf("Preds = %v, want %v", g.Preds, wantPreds)
	}
	if g.Reach.Count() != 4 {
		t.Errorf("Reach.Count = %d, want 4", g.Reach.Count())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if len(g.RPO) != 4 || g.RPO[0] != 0 || g.RPO[3] != 3 {
		t.Errorf("RPO = %v, want entry first and join last", g.RPO)
	}
}

func TestNewGraphUnreachableAndDangling(t *testing.T) {
	// b1 is unreachable; b0's branch to b9 does not exist.
	fn := tfn(0, 1,
		tb(0, mov(0, compile.Const(1)), condbr(compile.Temp(0), 9, 0)),
		tb(1, ret(compile.Const(0))),
	)
	g := NewGraph(fn)
	if g.Reach.Has(1) {
		t.Error("b1 should be unreachable")
	}
	// The dangling edge to b9 is dropped, the self-edge kept.
	if want := []int{0}; !reflect.DeepEqual(g.Succs[0], want) {
		t.Errorf("Succs[0] = %v, want %v", g.Succs[0], want)
	}
}

func TestNewGraphDuplicateIDFirstWins(t *testing.T) {
	fn := tfn(0, 0,
		tb(0, br(1)),
		tb(1, ret(compile.Const(0))),
		tb(1, ret(compile.Const(1))),
	)
	g := NewGraph(fn)
	if g.Index[1] != 1 {
		t.Errorf("Index[1] = %d, want 1 (first block with the ID)", g.Index[1])
	}
}

func TestUsedTempsAndDefTemp(t *testing.T) {
	call := compile.Instr{
		Op: compile.OpCall, Dst: 5,
		Callee: compile.Temp(2),
		Args:   []compile.Operand{compile.Temp(3), compile.Const(7), compile.Temp(4)},
	}
	if got, want := usedTemps(call, nil), []int{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("usedTemps(call) = %v, want %v", got, want)
	}
	if got := defTemp(call); got != 5 {
		t.Errorf("defTemp(call) = %d, want 5", got)
	}

	st := store(compile.Temp(0), compile.Temp(1), 8)
	if got, want := usedTemps(st, nil), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("usedTemps(store) = %v, want %v", got, want)
	}
	if got := defTemp(st); got != -1 {
		t.Errorf("defTemp(store) = %d, want -1", got)
	}

	// Terminators never define, whatever Dst holds.
	r := ret(compile.Temp(0))
	r.Dst = 3
	if got := defTemp(r); got != -1 {
		t.Errorf("defTemp(ret with Dst=3) = %d, want -1", got)
	}
}

package analysis

import (
	"context"
	"fmt"

	"decompstudy/internal/compile"
	"decompstudy/internal/obs"
)

// Lint runs the readability checkers over one function and returns the
// findings (all SevWarn — lints never make IR unusable):
//
//   - lint.dead-store        a temp is written and never read afterwards
//   - lint.unreachable-code  a block cannot execute
//   - lint.const-cond        a conditional branch always goes one way
//   - lint.unused-param      a parameter is never read
//   - lint.uninit-read       a named local may be read before assignment
//
// Lint assumes well-formed IR: when Verify reports error-severity
// findings those are returned instead, so callers can always show the
// result without crashing on malformed input.
func Lint(fn *compile.Func) []Diag {
	return LintCtx(context.Background(), fn)
}

// LintCtx is Lint with telemetry: an analysis.Lint span plus finding
// counters when the context carries an obs handle.
func LintCtx(ctx context.Context, fn *compile.Func) []Diag {
	_, sp := obs.StartSpan(ctx, "analysis.Lint", obs.KV("func", fn.Name))
	defer sp.End()
	if verr := VerifyCtx(ctx, fn); AsError(verr, SevError) != nil {
		sp.SetAttr("malformed", true)
		return verr
	}
	diags := runLints(fn)
	obs.AddCount(ctx, "analysis.lint.funcs", 1)
	obs.AddCount(ctx, "analysis.lint.findings", int64(len(diags)))
	sp.SetAttr("diags", len(diags))
	return diags
}

// LintObject lints every function in a compiled object.
func LintObject(ctx context.Context, obj *compile.Object) []Diag {
	var out []Diag
	for _, fn := range obj.Funcs {
		out = append(out, LintCtx(ctx, fn)...)
	}
	return out
}

// Check runs the verifier and — when the IR is structurally sound — the
// lint checkers, returning both diagnostic sets. This is the cmd/irlint
// entry point: verifier warnings (unreachable blocks, maybe-uninit
// temps, ret-value mismatches) and lint findings appear together.
func Check(ctx context.Context, fn *compile.Func) []Diag {
	diags := VerifyCtx(ctx, fn)
	if AsError(diags, SevError) != nil {
		return diags
	}
	return append(diags, runLints(fn)...)
}

// CheckObject runs Check over every function in a compiled object.
func CheckObject(ctx context.Context, obj *compile.Object) []Diag {
	var out []Diag
	for _, fn := range obj.Funcs {
		out = append(out, Check(ctx, fn)...)
	}
	return out
}

// runLints executes every checker over verifier-clean IR.
func runLints(fn *compile.Func) []Diag {
	l := &linter{fn: fn, g: NewGraph(fn)}
	l.deadStores()
	l.unreachableCode()
	l.constConditions()
	l.unusedParams()
	l.uninitReads()
	return l.diags
}

type linter struct {
	fn    *compile.Func
	g     *Graph
	diags []Diag
}

func (l *linter) add(check string, block, instr int, format string, args ...any) {
	l.diags = append(l.diags, Diag{
		Check: check, Sev: SevWarn, Func: l.fn.Name,
		Block: block, Instr: instr, Msg: fmt.Sprintf(format, args...),
	})
}

// tempName renders a temp with its original name when the symbol table
// has one, so lint output speaks the source vocabulary.
func (l *linter) tempName(t int) string {
	if sym, ok := l.fn.SymbolForTemp(t); ok {
		return fmt.Sprintf("t%d (%s)", t, sym.OrigName)
	}
	return fmt.Sprintf("t%d", t)
}

// deadStores flags writes to named variables whose value no later
// instruction can read. Only symbol-carrying temps are considered:
// expression lowering routinely leaves dead scratch temps (the discarded
// old value of a statement-position i++, say) that no reader of the
// decompiled output ever sees. Calls are exempt (the write is incidental
// to the side effect); memory stores have no Dst and are never flagged.
//
// Classic liveness alone under-reports one store class: a ghost
// accumulator whose value only circulates through a copy/arithmetic
// cycle (typically over a loop back edge — x feeds y feeds x) without
// ever reaching an observable sink. Every store in the cycle is "live"
// because the next cycle instruction reads it, yet none of them can
// affect the program. genuineTemps closes that hole; stores the classic
// check already flags are not re-reported.
func (l *linter) deadStores() {
	live := Liveness(l.g)
	genuine := l.genuineTemps()
	for bi, b := range l.g.Blocks {
		if !l.g.Reach.Has(bi) {
			continue
		}
		liveThroughBlock(b, live.Out[bi].Clone(), func(ii int, after Bits) {
			in := b.Instrs[ii]
			t := defTemp(in)
			if t < 0 || t >= l.fn.NTemps || in.Op == compile.OpCall {
				return
			}
			if _, named := l.fn.SymbolForTemp(t); !named {
				return
			}
			if !after.Has(t) {
				l.add("lint.dead-store", b.ID, ii, "value stored in %s is never read", l.tempName(t))
			} else if !genuine.Has(t) {
				l.add("lint.dead-store", b.ID, ii,
					"value stored in %s only feeds copies of itself and is never observed", l.tempName(t))
			}
		})
	}
}

// genuineTemps computes which temps can influence an observable effect.
// Sinks are the instructions with behavior of their own — memory stores,
// calls, returns, conditional branches, and loads (their address operand
// decides what memory is read); every temp they use is genuine. A
// pass-through instruction (mov, arithmetic, comparison) makes its
// operands genuine only if its destination is. The backward fixpoint
// leaves a copy cycle that never escapes with no genuine member, which is
// exactly the ghost-accumulator signature deadStores wants.
func (l *linter) genuineTemps() Bits {
	genuine := NewBits(l.fn.NTemps)
	var scratch []int
	mark := func(in compile.Instr) bool {
		changed := false
		scratch = usedTemps(in, scratch[:0])
		for _, t := range scratch {
			if t >= 0 && t < l.fn.NTemps && !genuine.Has(t) {
				genuine.Set(t)
				changed = true
			}
		}
		return changed
	}
	for changed := true; changed; {
		changed = false
		for bi, b := range l.g.Blocks {
			if !l.g.Reach.Has(bi) {
				continue
			}
			for _, in := range b.Instrs {
				switch in.Op {
				case compile.OpStore, compile.OpCall, compile.OpRet, compile.OpCondBr, compile.OpLoad:
					if mark(in) {
						changed = true
					}
				default:
					if t := defTemp(in); t >= 0 && t < l.fn.NTemps && genuine.Has(t) && mark(in) {
						changed = true
					}
				}
			}
		}
	}
	return genuine
}

// unreachableCode flags whole blocks the entry cannot reach.
func (l *linter) unreachableCode() {
	for bi, b := range l.g.Blocks {
		if !l.g.Reach.Has(bi) {
			l.add("lint.unreachable-code", b.ID, -1,
				"block is unreachable (%d instruction(s) can never execute)", len(b.Instrs))
		}
	}
}

// constConditions flags condbr conditions that are constants, either
// literally or through a single reaching definition that moves a
// constant (one step of sparse constant propagation along the use-def
// chain).
func (l *linter) constConditions() {
	var reach *ReachInfo
	var chains map[Use][]int
	for bi, b := range l.g.Blocks {
		if !l.g.Reach.Has(bi) {
			continue
		}
		for ii, in := range b.Instrs {
			if in.Op != compile.OpCondBr {
				continue
			}
			switch in.A.Kind {
			case compile.OperandConst:
				l.add("lint.const-cond", b.ID, ii,
					"branch condition is the constant %d: always takes b%d", in.A.Const, constTarget(in, in.A.Const))
			case compile.OperandTemp:
				if chains == nil {
					reach = ReachingDefs(l.g)
					chains = reach.UseDefs()
				}
				sites := chains[Use{Block: bi, Instr: ii, Temp: in.A.Temp}]
				if len(sites) != 1 {
					continue
				}
				s := reach.Sites[sites[0]]
				if s.Instr < 0 {
					continue // parameter pseudo-definition
				}
				def := l.g.Blocks[s.Block].Instrs[s.Instr]
				if def.Op == compile.OpMov && def.A.Kind == compile.OperandConst {
					l.add("lint.const-cond", b.ID, ii,
						"branch condition %s is always %d (set in b%d): always takes b%d",
						l.tempName(in.A.Temp), def.A.Const, l.g.Blocks[s.Block].ID, constTarget(in, def.A.Const))
				}
			}
		}
	}
}

func constTarget(in compile.Instr, v int64) int {
	if v != 0 {
		return in.Target
	}
	return in.Else
}

// unusedParams flags parameters no reachable instruction reads.
func (l *linter) unusedParams() {
	used := NewBits(l.fn.NTemps)
	var scratch []int
	for bi, b := range l.g.Blocks {
		if !l.g.Reach.Has(bi) {
			continue
		}
		for _, in := range b.Instrs {
			scratch = usedTemps(in, scratch[:0])
			for _, t := range scratch {
				if t >= 0 && t < l.fn.NTemps {
					used.Set(t)
				}
			}
		}
	}
	for p := 0; p < l.fn.NParams && p < l.fn.NTemps; p++ {
		if !used.Has(p) {
			l.add("lint.unused-param", -1, -1, "parameter %s is never used", l.tempName(p))
		}
	}
}

// uninitReads flags reads of named locals that some path reaches without
// an assignment — the construct decompiled output renders as an
// uninitialized variable read.
func (l *linter) uninitReads() {
	assigned := DefiniteAssignment(l.g)
	var scratch []int
	for bi, b := range l.g.Blocks {
		if !l.g.Reach.Has(bi) {
			continue
		}
		cur := assigned.In[bi].Clone()
		for ii, in := range b.Instrs {
			scratch = usedTemps(in, scratch[:0])
			for _, t := range scratch {
				if t < 0 || t >= l.fn.NTemps || t < l.fn.NParams || cur.Has(t) {
					continue
				}
				if sym, ok := l.fn.SymbolForTemp(t); ok && sym.Kind == compile.VarLocal {
					l.add("lint.uninit-read", b.ID, ii,
						"local %s may be read before it is assigned", l.tempName(t))
				}
			}
			if t := defTemp(in); t >= 0 && t < l.fn.NTemps {
				cur.Set(t)
			}
		}
	}
}

// Package analysis is the static-analysis layer over the project IR: a
// generic worklist dataflow framework (dominators, reaching definitions,
// liveness, use-def chains), an IR verifier that proves the output of
// internal/compile is well-formed before internal/decomp structures it,
// lint checkers for readability-affecting constructs (dead stores,
// unreachable code, constant conditions, unused parameters,
// uninitialized reads), and structural-complexity covariates
// (cyclomatic complexity, loop depth, live-variable pressure) that the
// RQ5 analysis puts beside the intrinsic similarity metrics.
//
// The related work the paper builds on motivates both halves: DIRE-style
// models predict comprehension from structure rather than surface
// similarity, and DecompileBench argues decompiler output should be
// validated by automated checks rather than trusted. Everything here is
// pure analysis — no pass mutates the Func it is given.
package analysis

import (
	"errors"
	"fmt"
	"strings"
)

// Severity grades a diagnostic.
type Severity int

// Diagnostic severities. SevError marks IR the rest of the pipeline must
// not consume; SevWarn marks suspicious-but-well-formed constructs.
const (
	SevWarn Severity = iota + 1
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalText renders the severity for JSON output (cmd/irlint -json).
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the text form back, so diagnostic JSON
// round-trips through encoding/json.
func (s *Severity) UnmarshalText(text []byte) error {
	switch string(text) {
	case "warn":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("analysis: unknown severity %q", text)
	}
	return nil
}

// Diag is one structured diagnostic from the verifier or a lint checker.
type Diag struct {
	// Check is the stable check identifier, e.g. "verify.branch-target"
	// or "lint.dead-store".
	Check string `json:"check"`
	// Sev grades the finding.
	Sev Severity `json:"severity"`
	// Func names the function the finding is in.
	Func string `json:"func"`
	// Block is the basic-block ID, -1 for function-level findings.
	Block int `json:"block"`
	// Instr is the instruction index within Block, -1 for block-level
	// findings.
	Instr int `json:"instr"`
	// Msg is the human-readable explanation.
	Msg string `json:"msg"`
}

// Pos renders the function/block/instruction position compactly.
func (d Diag) Pos() string {
	var sb strings.Builder
	sb.WriteString(d.Func)
	if d.Block >= 0 {
		fmt.Fprintf(&sb, "/b%d", d.Block)
		if d.Instr >= 0 {
			fmt.Fprintf(&sb, "/i%d", d.Instr)
		}
	}
	return sb.String()
}

// String renders "pos: severity: [check] msg".
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", d.Pos(), d.Sev, d.Check, d.Msg)
}

// Error makes a Diag usable as an error value, so a diagnostic list can
// be joined with errors.Join and unwrapped by callers.
func (d Diag) Error() string { return d.String() }

// ErrMalformed is the sentinel every error-severity verifier diagnostic
// wraps through AsError, so callers can errors.Is for it.
var ErrMalformed = errors.New("analysis: malformed IR")

// AsError converts a diagnostic list into a single error via errors.Join,
// keeping only diagnostics at or above minSev. It returns nil when no
// diagnostic reaches the threshold. The joined error wraps ErrMalformed
// plus every individual Diag.
func AsError(diags []Diag, minSev Severity) error {
	var errs []error
	for _, d := range diags {
		if d.Sev >= minSev {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(append([]error{ErrMalformed}, errs...)...)
}

// CountSev tallies the diagnostics at the given severity.
func CountSev(diags []Diag, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Sev == sev {
			n++
		}
	}
	return n
}

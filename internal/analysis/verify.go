package analysis

import (
	"context"
	"fmt"

	"decompstudy/internal/compile"
	"decompstudy/internal/obs"
)

// validWidths are the legal Load/Store byte widths.
var validWidths = map[int]bool{1: true, 2: true, 4: true, 8: true}

// Verify checks that a function's IR is well-formed and returns every
// finding as a structured diagnostic. Error-severity findings mean the
// IR must not be fed to the decompiler or interpreter:
//
//   - verify.no-blocks        function has no blocks (error)
//   - verify.duplicate-block  two blocks share an ID (error)
//   - verify.empty-block      block has no instructions, so no terminator (error)
//   - verify.terminator       last instruction is not ret/br/condbr (error)
//   - verify.stray-terminator terminator before the end of a block (error)
//   - verify.branch-target    br/condbr target does not exist (error)
//   - verify.param-count      NParams exceeds NTemps or is negative (error)
//   - verify.temp-range       Dst or temp operand outside [0, NTemps) (error)
//   - verify.operand          operand kind invalid for its opcode slot (error)
//   - verify.width            load/store width outside {1,2,4,8} (error)
//   - verify.dst              register-writing opcode without a Dst (error)
//   - verify.def-before-use   temp read but never defined (error), or not
//     definitely assigned along every path to the read (warning)
//   - verify.ret-value        ret value disagrees with RetWidth (warning)
//   - verify.unreachable      block unreachable from entry (warning)
//
// Verify never panics, whatever the IR looks like; dataflow-dependent
// checks degrade gracefully on structurally broken functions.
func Verify(fn *compile.Func) []Diag {
	return VerifyCtx(context.Background(), fn)
}

// VerifyCtx is Verify with telemetry: a analysis.Verify span plus
// finding counters when the context carries an obs handle.
func VerifyCtx(ctx context.Context, fn *compile.Func) []Diag {
	_, sp := obs.StartSpan(ctx, "analysis.Verify", obs.KV("func", fn.Name))
	defer sp.End()
	v := &verifier{fn: fn}
	v.run()
	obs.AddCount(ctx, "analysis.verify.funcs", 1)
	obs.AddCount(ctx, "analysis.verify.errors", int64(CountSev(v.diags, SevError)))
	obs.AddCount(ctx, "analysis.verify.warnings", int64(CountSev(v.diags, SevWarn)))
	sp.SetAttr("diags", len(v.diags))
	return v.diags
}

// VerifyObject verifies every function in a compiled object.
func VerifyObject(ctx context.Context, obj *compile.Object) []Diag {
	var out []Diag
	for _, fn := range obj.Funcs {
		out = append(out, VerifyCtx(ctx, fn)...)
	}
	return out
}

type verifier struct {
	fn    *compile.Func
	diags []Diag
}

func (v *verifier) add(sev Severity, check string, block, instr int, format string, args ...any) {
	v.diags = append(v.diags, Diag{
		Check: check, Sev: sev, Func: v.fn.Name,
		Block: block, Instr: instr, Msg: fmt.Sprintf(format, args...),
	})
}

func (v *verifier) run() {
	fn := v.fn
	if fn.NParams < 0 || fn.NParams > fn.NTemps {
		v.add(SevError, "verify.param-count", -1, -1,
			"%d params but only %d temps", fn.NParams, fn.NTemps)
	}
	if len(fn.Blocks) == 0 {
		v.add(SevError, "verify.no-blocks", -1, -1, "function has no blocks")
		return
	}

	ids := map[int]bool{}
	for _, b := range fn.Blocks {
		if ids[b.ID] {
			v.add(SevError, "verify.duplicate-block", b.ID, -1, "duplicate block ID b%d", b.ID)
		}
		ids[b.ID] = true
	}

	structuralOK := true
	for _, b := range fn.Blocks {
		if len(b.Instrs) == 0 {
			// Block.Term() returns a zero Instr here, which every caller
			// would misread as "no terminator, no successors" — flag it
			// explicitly instead of letting decomp fail opaquely.
			v.add(SevError, "verify.empty-block", b.ID, -1, "empty block (no terminator)")
			structuralOK = false
			continue
		}
		for ii, in := range b.Instrs {
			last := ii == len(b.Instrs)-1
			if isTerminator(in.Op) && !last {
				v.add(SevError, "verify.stray-terminator", b.ID, ii,
					"%s terminates the block early (%d trailing instruction(s))", in.Op, len(b.Instrs)-1-ii)
				structuralOK = false
			}
			if last && !isTerminator(in.Op) {
				v.add(SevError, "verify.terminator", b.ID, ii,
					"block falls through: last instruction is %s, want ret/br/condbr", in.Op)
				structuralOK = false
			}
			v.checkInstr(b, ii, in, ids)
		}
	}

	g := NewGraph(fn)
	for i, b := range fn.Blocks {
		if !g.Reach.Has(i) {
			v.add(SevWarn, "verify.unreachable", b.ID, -1, "block unreachable from entry")
		}
	}

	// Definition checks need a sane graph; on structurally broken IR the
	// earlier diagnostics already explain the problem.
	if !structuralOK {
		return
	}
	v.checkDefBeforeUse(g)
}

// checkDefBeforeUse reports reads of temps with no definition anywhere
// (error), and reads not definitely assigned along every path (warning —
// legitimate for source like "int x; if (c) x = 1; use(x);", but worth
// surfacing since the decompiler will render exactly that hazard).
func (v *verifier) checkDefBeforeUse(g *Graph) {
	reach := ReachingDefs(g)
	assigned := DefiniteAssignment(g)
	nt := g.Fn.NTemps
	var scratch []int
	for bi, b := range g.Blocks {
		if !g.Reach.Has(bi) {
			continue
		}
		cur := assigned.In[bi].Clone()
		for ii, in := range b.Instrs {
			scratch = usedTemps(in, scratch[:0])
			for _, t := range scratch {
				if t < 0 || t >= nt {
					continue // verify.temp-range already fired
				}
				if t < g.Fn.NParams || cur.Has(t) {
					continue
				}
				if len(reach.SitesOf(t)) == 0 {
					v.add(SevError, "verify.def-before-use", b.ID, ii,
						"t%d is read but never defined", t)
				} else {
					v.add(SevWarn, "verify.def-before-use", b.ID, ii,
						"t%d may be read before assignment on some path", t)
				}
			}
			if t := defTemp(in); t >= 0 && t < nt {
				cur.Set(t)
			}
		}
	}
}

// operand slot expectations per opcode.
type slotRule int

const (
	slotNone  slotRule = iota // operand must be absent
	slotValue                 // temp, const, or symbol
	slotAny                   // value or absent
)

func (v *verifier) checkOperand(b *compile.Block, ii int, slot string, o compile.Operand, rule slotRule) {
	switch rule {
	case slotNone:
		if o.Kind != compile.OperandNone {
			v.add(SevError, "verify.operand", b.ID, ii, "%s operand must be absent, got %s", slot, o)
		}
	case slotValue:
		if o.Kind == compile.OperandNone {
			v.add(SevError, "verify.operand", b.ID, ii, "%s operand missing", slot)
		}
	}
	switch o.Kind {
	case compile.OperandNone, compile.OperandConst, compile.OperandSym:
	case compile.OperandTemp:
		if o.Temp < 0 || o.Temp >= v.fn.NTemps {
			v.add(SevError, "verify.temp-range", b.ID, ii,
				"%s operand t%d outside [0, %d)", slot, o.Temp, v.fn.NTemps)
		}
	default:
		v.add(SevError, "verify.operand", b.ID, ii, "%s operand has invalid kind %d", slot, int(o.Kind))
	}
}

func (v *verifier) checkTarget(b *compile.Block, ii int, which string, id int, ids map[int]bool) {
	if !ids[id] {
		v.add(SevError, "verify.branch-target", b.ID, ii, "%s target b%d does not exist", which, id)
	}
}

func (v *verifier) checkInstr(b *compile.Block, ii int, in compile.Instr, ids map[int]bool) {
	wantsDst := false
	switch in.Op {
	case compile.OpMov, compile.OpNot, compile.OpNeg, compile.OpLNot:
		wantsDst = true
		v.checkOperand(b, ii, "A", in.A, slotValue)
		v.checkOperand(b, ii, "B", in.B, slotNone)
	case compile.OpAdd, compile.OpSub, compile.OpMul, compile.OpDiv, compile.OpRem,
		compile.OpAnd, compile.OpOr, compile.OpXor, compile.OpShl, compile.OpShr,
		compile.OpCmpEQ, compile.OpCmpNE, compile.OpCmpLT, compile.OpCmpLE,
		compile.OpCmpGT, compile.OpCmpGE:
		wantsDst = true
		v.checkOperand(b, ii, "A", in.A, slotValue)
		v.checkOperand(b, ii, "B", in.B, slotValue)
	case compile.OpLoad:
		wantsDst = true
		v.checkOperand(b, ii, "address", in.A, slotValue)
		v.checkOperand(b, ii, "B", in.B, slotNone)
		if !validWidths[in.Width] {
			v.add(SevError, "verify.width", b.ID, ii, "load width %d not in {1,2,4,8}", in.Width)
		}
	case compile.OpStore:
		v.checkOperand(b, ii, "address", in.A, slotValue)
		v.checkOperand(b, ii, "value", in.B, slotValue)
		if !validWidths[in.Width] {
			v.add(SevError, "verify.width", b.ID, ii, "store width %d not in {1,2,4,8}", in.Width)
		}
	case compile.OpCall:
		if in.Callee.Kind != compile.OperandSym && in.Callee.Kind != compile.OperandTemp {
			v.add(SevError, "verify.operand", b.ID, ii, "call callee must be a symbol or temp, got %s", in.Callee)
		} else {
			v.checkOperand(b, ii, "callee", in.Callee, slotValue)
		}
		for ai, a := range in.Args {
			v.checkOperand(b, ii, fmt.Sprintf("arg%d", ai), a, slotValue)
		}
		if in.Dst >= v.fn.NTemps {
			v.add(SevError, "verify.temp-range", b.ID, ii, "call result t%d outside [0, %d)", in.Dst, v.fn.NTemps)
		}
	case compile.OpRet:
		v.checkOperand(b, ii, "A", in.A, slotAny)
		v.checkOperand(b, ii, "B", in.B, slotNone)
		if v.fn.RetWidth == 0 && in.A.Kind != compile.OperandNone {
			v.add(SevWarn, "verify.ret-value", b.ID, ii, "void function returns a value")
		}
		if v.fn.RetWidth > 0 && in.A.Kind == compile.OperandNone {
			v.add(SevWarn, "verify.ret-value", b.ID, ii,
				"function with %d-byte result returns no value", v.fn.RetWidth)
		}
	case compile.OpBr:
		v.checkOperand(b, ii, "A", in.A, slotNone)
		v.checkOperand(b, ii, "B", in.B, slotNone)
		v.checkTarget(b, ii, "branch", in.Target, ids)
	case compile.OpCondBr:
		v.checkOperand(b, ii, "condition", in.A, slotValue)
		v.checkOperand(b, ii, "B", in.B, slotNone)
		v.checkTarget(b, ii, "true", in.Target, ids)
		v.checkTarget(b, ii, "false", in.Else, ids)
	default:
		v.add(SevError, "verify.operand", b.ID, ii, "unknown opcode %d", int(in.Op))
		return
	}
	if wantsDst {
		switch {
		case in.Dst < 0:
			v.add(SevError, "verify.dst", b.ID, ii, "%s must define a temp, Dst is %d", in.Op, in.Dst)
		case in.Dst >= v.fn.NTemps:
			v.add(SevError, "verify.temp-range", b.ID, ii, "destination t%d outside [0, %d)", in.Dst, v.fn.NTemps)
		}
	}
}

func isTerminator(op compile.Opcode) bool {
	switch op {
	case compile.OpRet, compile.OpBr, compile.OpCondBr:
		return true
	}
	return false
}

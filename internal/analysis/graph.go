package analysis

import (
	"math/bits"

	"decompstudy/internal/compile"
)

// Bits is a fixed-capacity bitset — the fact representation every shipped
// dataflow pass uses (block sets, definition sites, live temps).
type Bits []uint64

// NewBits returns a bitset able to hold n elements.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set adds i to the set.
func (b Bits) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (b Bits) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Fill adds every element in [0, n).
func (b Bits) Fill(n int) {
	for i := 0; i < n; i++ {
		b.Set(i)
	}
}

// Union adds o's elements, reporting whether b changed.
func (b Bits) Union(o Bits) bool {
	changed := false
	for i, w := range o {
		nw := b[i] | w
		if nw != b[i] {
			b[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect keeps only elements also in o, reporting whether b changed.
func (b Bits) Intersect(o Bits) bool {
	changed := false
	for i := range b {
		var w uint64
		if i < len(o) {
			w = o[i]
		}
		nw := b[i] & w
		if nw != b[i] {
			b[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot removes o's elements from b.
func (b Bits) AndNot(o Bits) {
	for i, w := range o {
		b[i] &^= w
	}
}

// Equal reports set equality.
func (b Bits) Equal(o Bits) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Count returns the number of elements in the set.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every element in ascending order.
func (b Bits) ForEach(fn func(int)) {
	for i, w := range b {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			fn(i*64 + j)
			w &^= 1 << uint(j)
		}
	}
}

// Graph is the control-flow graph of one function, with blocks addressed
// by dense index rather than block ID so passes can use slices and
// bitsets. Construction never fails: edges to nonexistent blocks are
// dropped (the verifier reports them separately), which lets the
// verifier itself run dataflow over partially malformed IR.
type Graph struct {
	Fn *compile.Func
	// Blocks holds the function's blocks in Func order; index 0 is entry.
	Blocks []*compile.Block
	// Index maps block ID → dense index.
	Index map[int]int
	// Succs and Preds are edge lists by dense index.
	Succs, Preds [][]int
	// Reach marks the block indices reachable from entry.
	Reach Bits
	// RPO lists the reachable block indices in reverse postorder.
	RPO []int
}

// NewGraph builds the CFG for fn.
func NewGraph(fn *compile.Func) *Graph {
	n := len(fn.Blocks)
	g := &Graph{
		Fn:     fn,
		Blocks: fn.Blocks,
		Index:  make(map[int]int, n),
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		Reach:  NewBits(n),
	}
	for i, b := range fn.Blocks {
		// First block with a given ID wins; duplicates are a verifier
		// finding, not a graph-construction fault.
		if _, dup := g.Index[b.ID]; !dup {
			g.Index[b.ID] = i
		}
	}
	for i, b := range fn.Blocks {
		for _, s := range b.Succs() {
			j, ok := g.Index[s]
			if !ok {
				continue
			}
			g.Succs[i] = append(g.Succs[i], j)
			g.Preds[j] = append(g.Preds[j], i)
		}
	}
	if n > 0 {
		g.dfsPostorder(0)
		// Reverse the postorder in place to get RPO.
		for l, r := 0, len(g.RPO)-1; l < r; l, r = l+1, r-1 {
			g.RPO[l], g.RPO[r] = g.RPO[r], g.RPO[l]
		}
	}
	return g
}

// dfsPostorder marks reachability and records postorder into g.RPO
// (reversed afterwards by NewGraph).
func (g *Graph) dfsPostorder(root int) {
	type frame struct {
		node int
		next int
	}
	g.Reach.Set(root)
	stack := []frame{{node: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.node]) {
			s := g.Succs[f.node][f.next]
			f.next++
			if !g.Reach.Has(s) {
				g.Reach.Set(s)
				stack = append(stack, frame{node: s})
			}
			continue
		}
		g.RPO = append(g.RPO, f.node)
		stack = stack[:len(stack)-1]
	}
}

// NumBlocks returns the block count.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

// NumEdges returns the CFG edge count over reachable blocks.
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.Blocks {
		if g.Reach.Has(i) {
			n += len(g.Succs[i])
		}
	}
	return n
}

// usedTemps appends the temp IDs the instruction reads to dst: value
// operands, call arguments, and temp callees (function pointers).
func usedTemps(in compile.Instr, dst []int) []int {
	add := func(o compile.Operand) {
		if o.Kind == compile.OperandTemp {
			dst = append(dst, o.Temp)
		}
	}
	add(in.A)
	add(in.B)
	if in.Op == compile.OpCall {
		add(in.Callee)
		for _, a := range in.Args {
			add(a)
		}
	}
	return dst
}

// defTemp returns the temp the instruction defines, or -1. Only
// register-writing opcodes count: Store writes memory and branch/return
// terminators define nothing, whatever their Dst field holds.
func defTemp(in compile.Instr) int {
	switch in.Op {
	case compile.OpStore, compile.OpRet, compile.OpBr, compile.OpCondBr:
		return -1
	}
	if in.Dst >= 0 {
		return in.Dst
	}
	return -1
}

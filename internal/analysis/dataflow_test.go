package analysis

import (
	"testing"

	"decompstudy/internal/compile"
)

// blockBitTransfer marks each block's own dense index in the fact — the
// simplest transfer that distinguishes paths, used to probe the solver.
func blockBitTransfer(g *Graph) Transfer[Bits] {
	return func(b *compile.Block, fact Bits) Bits {
		fact.Set(g.Index[b.ID])
		return fact
	}
}

func TestSolveForwardMay(t *testing.T) {
	// Forward may-analysis with "blocks seen on some path": at the join
	// the fact is the union over both arms.
	g := NewGraph(diamond())
	sol := Solve(g, Forward, BitsLattice(4, false, NewBits(4)), blockBitTransfer(g))
	for i, want := range [][]int{{0}, {0, 1}, {0, 2}, {0, 1, 2, 3}} {
		got := sol.Out[i]
		if got.Count() != len(want) {
			t.Errorf("Out[%d].Count = %d, want %d", i, got.Count(), len(want))
		}
		for _, w := range want {
			if !got.Has(w) {
				t.Errorf("Out[%d] missing %d", i, w)
			}
		}
	}
	// In[3] is the union of both predecessors' outs, before b3's own bit.
	if in := sol.In[3]; !in.Has(1) || !in.Has(2) || in.Has(3) {
		t.Errorf("In[3] = %v, want {0,1,2} without 3", in)
	}
}

func TestSolveForwardMust(t *testing.T) {
	// Must-analysis on the same graph: at the join only blocks on EVERY
	// path survive — b1 and b2 drop out.
	g := NewGraph(diamond())
	sol := Solve(g, Forward, BitsLattice(4, true, NewBits(4)), blockBitTransfer(g))
	got := sol.Out[3]
	if !got.Has(0) || !got.Has(3) || got.Has(1) || got.Has(2) {
		t.Errorf("must Out[3] = %v, want exactly {0,3}", got)
	}
}

func TestSolveBackwardMay(t *testing.T) {
	// Backward: the entry's In accumulates every block reachable from it.
	g := NewGraph(diamond())
	sol := Solve(g, Backward, BitsLattice(4, false, NewBits(4)), blockBitTransfer(g))
	if got := sol.In[0]; got.Count() != 4 {
		t.Errorf("backward In[0].Count = %d, want 4", got.Count())
	}
	// b3 has no successors, so its Out is the (empty) boundary fact.
	if got := sol.Out[3]; got.Count() != 0 {
		t.Errorf("backward Out[3].Count = %d, want 0", got.Count())
	}
}

func TestSolveLoopReachesFixpoint(t *testing.T) {
	// b0 → b1 ⇄ b2, b1 → b3. The loop must not prevent termination, and
	// facts from inside the loop must flow around the back edge.
	fn := tfn(1, 2,
		tb(0, mov(1, compile.Const(0)), br(1)),
		tb(1, condbr(compile.Temp(0), 2, 3)),
		tb(2, add(1, compile.Temp(1), compile.Const(1)), br(1)),
		tb(3, ret(compile.Temp(1))),
	)
	g := NewGraph(fn)
	sol := Solve(g, Forward, BitsLattice(4, false, NewBits(4)), blockBitTransfer(g))
	// After the fixpoint the loop header has seen the latch's bit.
	if !sol.In[1].Has(2) {
		t.Errorf("In[header] = %v, want the back-edge fact included", sol.In[1])
	}
}

func TestSolveUnreachableKeepsBottom(t *testing.T) {
	fn := tfn(0, 1,
		tb(0, mov(0, compile.Const(1)), ret(compile.Temp(0))),
		tb(1, br(0)), // unreachable
	)
	g := NewGraph(fn)
	sol := Solve(g, Forward, BitsLattice(2, false, NewBits(2)), blockBitTransfer(g))
	if sol.Out[1].Count() != 0 {
		t.Errorf("unreachable block Out = %v, want bottom (empty)", sol.Out[1])
	}
}

func TestSolveEmptyFunc(t *testing.T) {
	g := NewGraph(&compile.Func{Name: "empty"})
	sol := Solve(g, Forward, BitsLattice(0, false, nil), func(b *compile.Block, f Bits) Bits { return f })
	if len(sol.In) != 0 || len(sol.Out) != 0 {
		t.Errorf("empty solve = %d/%d facts, want none", len(sol.In), len(sol.Out))
	}
}

package analysis

import "decompstudy/internal/compile"

// DomInfo holds the dominator analysis of one function: dominator sets
// per block (dense indices), the back edges, and the natural loops they
// induce.
type DomInfo struct {
	g *Graph
	// Dom[i] is the set of block indices dominating block i (including i
	// itself). Unreachable blocks carry the universal set.
	Dom []Bits
	// BackEdges lists the (tail, head) index pairs where head dominates
	// tail.
	BackEdges [][2]int
	// Loops maps a loop-header index to the body set (header included).
	Loops map[int]Bits
	// Depth[i] is the loop-nesting depth of block i (0 = not in a loop).
	Depth []int
}

// Dominators computes dominator sets via the forward must-dataflow
// (in = ∩ preds, out = in ∪ {self}) on the shared solver, then derives
// back edges, natural loops, and per-block loop depth.
func Dominators(g *Graph) *DomInfo {
	n := g.NumBlocks()
	d := &DomInfo{g: g, Loops: map[int]Bits{}, Depth: make([]int, n)}
	if n == 0 {
		return d
	}
	lat := BitsLattice(n, true, NewBits(n))
	sol := Solve(g, Forward, lat, func(b *compile.Block, in Bits) Bits {
		in.Set(g.Index[b.ID])
		return in
	})
	d.Dom = make([]Bits, n)
	for i := 0; i < n; i++ {
		d.Dom[i] = sol.Out[i]
	}

	// Back edges: u→h with h ∈ Dom(u), both reachable.
	for u := 0; u < n; u++ {
		if !g.Reach.Has(u) {
			continue
		}
		for _, h := range g.Succs[u] {
			if d.Dom[u].Has(h) {
				d.BackEdges = append(d.BackEdges, [2]int{u, h})
			}
		}
	}

	// Natural loop of u→h: {h} plus everything reaching u without
	// passing h, found by a reverse flood from u.
	for _, e := range d.BackEdges {
		u, h := e[0], e[1]
		body := d.Loops[h]
		if body == nil {
			body = NewBits(n)
			body.Set(h)
			d.Loops[h] = body
		}
		stack := []int{u}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body.Has(v) {
				continue
			}
			body.Set(v)
			stack = append(stack, g.Preds[v]...)
		}
	}

	for _, body := range d.Loops {
		body.ForEach(func(i int) { d.Depth[i]++ })
	}
	return d
}

// MaxDepth returns the deepest loop nesting in the function.
func (d *DomInfo) MaxDepth() int {
	max := 0
	for _, v := range d.Depth {
		if v > max {
			max = v
		}
	}
	return max
}

// Dominates reports whether block index a dominates block index b.
func (d *DomInfo) Dominates(a, b int) bool {
	if b < 0 || b >= len(d.Dom) {
		return false
	}
	return d.Dom[b].Has(a)
}

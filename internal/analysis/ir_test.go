package analysis

import (
	"testing"

	"decompstudy/internal/compile"
)

// Hand-built IR helpers. They mirror the lowering conventions of
// internal/compile: Dst is -1 on non-defining instructions, params
// occupy temps 0..NParams-1.

func tb(id int, instrs ...compile.Instr) *compile.Block {
	return &compile.Block{ID: id, Instrs: instrs}
}

func tfn(nparams, ntemps int, blocks ...*compile.Block) *compile.Func {
	return &compile.Func{
		Name: "f", NParams: nparams, NTemps: ntemps,
		Blocks: blocks, RetWidth: 8,
	}
}

// mov, load, store, ret, br, and condbr now live in randgen.go so GenFunc
// can share them; add remains test-only.

func add(dst int, a, b compile.Operand) compile.Instr {
	return compile.Instr{Op: compile.OpAdd, Dst: dst, A: a, B: b}
}

// diamond builds the canonical four-block CFG
//
//	b0 → {b1, b2} → b3
//
// used across the dataflow tests. t0 is the branch condition parameter.
func diamond() *compile.Func {
	return tfn(1, 3,
		tb(0, mov(1, compile.Const(1)), condbr(compile.Temp(0), 1, 2)),
		tb(1, mov(2, compile.Const(10)), br(3)),
		tb(2, mov(2, compile.Const(20)), br(3)),
		tb(3, ret(compile.Temp(2))),
	)
}

// checkIDs collects the distinct check identifiers in a diagnostic list.
func checkIDs(diags []Diag) map[string]bool {
	out := map[string]bool{}
	for _, d := range diags {
		out[d.Check] = true
	}
	return out
}

// wantCheck fails the test unless a diagnostic with the given check ID
// and severity is present, and returns the first match.
func wantCheck(t *testing.T, diags []Diag, check string, sev Severity) Diag {
	t.Helper()
	for _, d := range diags {
		if d.Check == check && d.Sev == sev {
			return d
		}
	}
	t.Fatalf("no %s diagnostic at severity %s in %v", check, sev, diags)
	return Diag{}
}

// wantNoErrors fails the test when any error-severity diagnostic is
// present.
func wantNoErrors(t *testing.T, diags []Diag) {
	t.Helper()
	if n := CountSev(diags, SevError); n > 0 {
		t.Fatalf("want no error diagnostics, got %d: %v", n, diags)
	}
}

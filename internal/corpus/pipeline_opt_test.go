package corpus

import (
	"context"
	"testing"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile/opt"
)

// TestPrepareAllOptLevels runs the full corpus through every optimization
// level: every snippet must survive the pipeline (the optimizer's verify
// and differential gates included), the optimized IR must carry zero
// verifier diagnostics of any severity, and -O2 must measurably shrink
// the total instruction count — mov-heavy expression lowering leaves
// plenty for copy propagation and DCE to reclaim.
func TestPrepareAllOptLevels(t *testing.T) {
	ctx := context.Background()
	count := func(ps []*Prepared) int {
		n := 0
		for _, p := range ps {
			for _, b := range p.IR.Blocks {
				n += len(b.Instrs)
			}
		}
		return n
	}

	base, err := PrepareAllCtx(ctx)
	if err != nil {
		t.Fatalf("-O0: %v", err)
	}
	totals := map[opt.Level]int{opt.O0: count(base)}

	for _, level := range []opt.Level{opt.O1, opt.O2} {
		ps, err := PrepareAllOptCtx(ctx, level)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if len(ps) != len(base) {
			t.Fatalf("%s lost snippets: %d of %d survived", level, len(ps), len(base))
		}
		for _, p := range ps {
			if p.OptLevel != level {
				t.Errorf("%s: %s records level %s", level, p.Snippet.ID, p.OptLevel)
			}
			if diags := analysis.VerifyCtx(ctx, p.IR); len(diags) > 0 {
				t.Errorf("%s: %s optimized IR has %d diagnostics, first: %s",
					level, p.Snippet.ID, len(diags), diags[0])
			}
		}
		totals[level] = count(ps)
	}

	if totals[opt.O1] > totals[opt.O0] {
		t.Errorf("-O1 grew the corpus: %d -> %d instructions", totals[opt.O0], totals[opt.O1])
	}
	if totals[opt.O2] >= totals[opt.O0] {
		t.Errorf("-O2 did not shrink the corpus: %d -> %d instructions", totals[opt.O0], totals[opt.O2])
	}
	t.Logf("corpus instructions: -O0 %d, -O1 %d, -O2 %d", totals[opt.O0], totals[opt.O1], totals[opt.O2])
}

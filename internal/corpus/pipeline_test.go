package corpus

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"testing"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

func TestPrepareSnippetsJoinsAllErrors(t *testing.T) {
	good, ok := SnippetByID("AEEK")
	if !ok {
		t.Fatal("AEEK snippet missing")
	}
	// bad1 fails at parse; bad2 parses but lacks the named function, so the
	// two failures come from different pipeline stages.
	bad1 := &Snippet{ID: "BAD1", FuncName: "f", Source: "int f( {"}
	bad2 := &Snippet{ID: "BAD2", FuncName: "not_defined", Source: "void g(void) {}"}

	prepared, err := PrepareSnippets(context.Background(), []*Snippet{bad1, good, bad2})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	if len(prepared) != 1 || prepared[0].Snippet.ID != "AEEK" {
		t.Fatalf("want the one good snippet prepared, got %d", len(prepared))
	}
	msg := err.Error()
	// errors.Join must carry BOTH failures, not just the first.
	if !strings.Contains(msg, "BAD1") {
		t.Errorf("joined error missing BAD1: %v", err)
	}
	if !strings.Contains(msg, "BAD2") {
		t.Errorf("joined error missing BAD2: %v", err)
	}
}

// TestPrepareSnippetsDeterministicUnderFanOut scrambles completion order —
// a deliberately slow (large but valid) snippet goes first, instant
// failures after it — and asserts that fan-out still reports successes and
// joined failures in input order, identically at every worker count.
func TestPrepareSnippetsDeterministicUnderFanOut(t *testing.T) {
	var b strings.Builder
	b.WriteString("int slow_fn(int x) {\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "  x = x + %d;\n  x = x - %d;\n", i+1, i)
	}
	b.WriteString("  return x;\n}\n")
	slow := &Snippet{ID: "SLOW", FuncName: "slow_fn", Source: b.String()}
	badA := &Snippet{ID: "BAD_A", FuncName: "f", Source: "int f( {"}
	badB := &Snippet{ID: "BAD_B", FuncName: "missing_fn", Source: "void g(void) {}"}
	input := []*Snippet{slow, badA, badB}

	var wantPrepared []string
	var wantErr string
	for i, jobs := range []int{1, 4, 8} {
		prepared, err := PrepareSnippets(par.WithJobs(context.Background(), jobs), input)
		if err == nil {
			t.Fatalf("jobs=%d: want joined error", jobs)
		}
		var ids []string
		for _, p := range prepared {
			ids = append(ids, p.Snippet.ID)
		}
		if i == 0 {
			wantPrepared, wantErr = ids, err.Error()
			// The slow snippet completes last under fan-out but must stay first.
			if len(ids) != 1 || ids[0] != "SLOW" {
				t.Fatalf("prepared = %v, want [SLOW]", ids)
			}
			// Failures joined in input order: BAD_A before BAD_B.
			ia, ib := strings.Index(wantErr, "BAD_A"), strings.Index(wantErr, "BAD_B")
			if ia < 0 || ib < 0 || ia > ib {
				t.Fatalf("joined error not in input order: %v", err)
			}
			continue
		}
		if !slices.Equal(ids, wantPrepared) {
			t.Errorf("jobs=%d: prepared %v, want %v", jobs, ids, wantPrepared)
		}
		if err.Error() != wantErr {
			t.Errorf("jobs=%d: joined error differs from sequential:\n%v\nvs\n%v", jobs, err, wantErr)
		}
	}
}

func TestPrepareSnippetsCountsOutcomes(t *testing.T) {
	o := obs.New()
	ctx := obs.With(context.Background(), o)
	bad := &Snippet{ID: "BROKEN", FuncName: "f", Source: "int f( {"}
	if _, err := PrepareSnippets(ctx, append([]*Snippet{bad}, Snippets()...)); err == nil {
		t.Fatal("want error from broken snippet")
	}
	if got := o.Metrics.Counter("corpus.prepare.failed").Value(); got != 1 {
		t.Errorf("corpus.prepare.failed = %d, want 1", got)
	}
	if got := o.Metrics.Counter("corpus.prepare.ok").Value(); got != int64(len(Snippets())) {
		t.Errorf("corpus.prepare.ok = %d, want %d", got, len(Snippets()))
	}
}

func TestVerifyIRRejectsMalformedWithDiagnostics(t *testing.T) {
	// compile never emits malformed IR, so break a compiled object by hand
	// to exercise the rejection path: the error must identify the snippet,
	// satisfy errors.Is(err, analysis.ErrMalformed), and name the offending
	// block via the verifier diagnostics it joins.
	s, ok := SnippetByID("AEEK")
	if !ok {
		t.Fatal("AEEK snippet missing")
	}
	file, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := compile.Compile(file)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := obj.Func0(s.FuncName)
	if !ok {
		t.Fatalf("missing %s", s.FuncName)
	}
	emptied := fn.Blocks[1].ID
	fn.Blocks[1].Instrs = nil

	err = verifyIR(context.Background(), s.ID, obj)
	if err == nil {
		t.Fatal("verifyIR accepted IR with an empty block")
	}
	if !errors.Is(err, analysis.ErrMalformed) {
		t.Errorf("error = %v, want analysis.ErrMalformed in the chain", err)
	}
	msg := err.Error()
	for _, want := range []string{"AEEK", "verify.empty-block", fmt.Sprintf("b%d", emptied)} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestPrepareExposesVerifiedIR(t *testing.T) {
	s, ok := SnippetByID("TC")
	if !ok {
		t.Fatal("TC snippet missing")
	}
	p, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.IR == nil || p.IR.Name != s.FuncName {
		t.Fatalf("Prepared.IR = %v, want the compiled %s", p.IR, s.FuncName)
	}
	if diags := analysis.Verify(p.IR); analysis.CountSev(diags, analysis.SevError) != 0 {
		t.Errorf("Prepared.IR not verifier-clean: %v", diags)
	}
}

package corpus

import (
	"context"
	"strings"
	"testing"

	"decompstudy/internal/obs"
)

func TestPrepareSnippetsJoinsAllErrors(t *testing.T) {
	good, ok := SnippetByID("AEEK")
	if !ok {
		t.Fatal("AEEK snippet missing")
	}
	// bad1 fails at parse; bad2 parses but lacks the named function, so the
	// two failures come from different pipeline stages.
	bad1 := &Snippet{ID: "BAD1", FuncName: "f", Source: "int f( {"}
	bad2 := &Snippet{ID: "BAD2", FuncName: "not_defined", Source: "void g(void) {}"}

	prepared, err := PrepareSnippets(context.Background(), []*Snippet{bad1, good, bad2})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	if len(prepared) != 1 || prepared[0].Snippet.ID != "AEEK" {
		t.Fatalf("want the one good snippet prepared, got %d", len(prepared))
	}
	msg := err.Error()
	// errors.Join must carry BOTH failures, not just the first.
	if !strings.Contains(msg, "BAD1") {
		t.Errorf("joined error missing BAD1: %v", err)
	}
	if !strings.Contains(msg, "BAD2") {
		t.Errorf("joined error missing BAD2: %v", err)
	}
}

func TestPrepareSnippetsCountsOutcomes(t *testing.T) {
	o := obs.New()
	ctx := obs.With(context.Background(), o)
	bad := &Snippet{ID: "BROKEN", FuncName: "f", Source: "int f( {"}
	if _, err := PrepareSnippets(ctx, append([]*Snippet{bad}, Snippets()...)); err == nil {
		t.Fatal("want error from broken snippet")
	}
	if got := o.Metrics.Counter("corpus.prepare.failed").Value(); got != 1 {
		t.Errorf("corpus.prepare.failed = %d, want 1", got)
	}
	if got := o.Metrics.Counter("corpus.prepare.ok").Value(); got != int64(len(Snippets())) {
		t.Errorf("corpus.prepare.ok = %d, want %d", got, len(Snippets()))
	}
}

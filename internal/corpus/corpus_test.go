package corpus

import (
	"reflect"
	"strings"
	"testing"

	"decompstudy/internal/embed"
	"decompstudy/internal/namerec"
)

func TestSnippetsInventory(t *testing.T) {
	snippets := Snippets()
	if len(snippets) != 4 {
		t.Fatalf("snippets = %d, want 4", len(snippets))
	}
	wantIDs := map[string]string{
		"AEEK":      "lighttpd",
		"BAPL":      "lighttpd",
		"POSTORDER": "coreutils",
		"TC":        "openssl",
	}
	totalQuestions := 0
	for _, s := range snippets {
		proj, ok := wantIDs[s.ID]
		if !ok {
			t.Errorf("unexpected snippet %s", s.ID)
			continue
		}
		if s.Project != proj {
			t.Errorf("%s project = %q, want %q", s.ID, s.Project, proj)
		}
		if len(s.Questions) != 2 {
			t.Errorf("%s has %d questions, want 2 (paper §III-C)", s.ID, len(s.Questions))
		}
		totalQuestions += len(s.Questions)
		// Paper §III-B: at least three renamed or retyped variables.
		if len(s.DirtyOverrides) < 3 {
			t.Errorf("%s has %d DIRTY renamings, want ≥3", s.ID, len(s.DirtyOverrides))
		}
	}
	if totalQuestions != 8 {
		t.Errorf("total questions = %d, want 8", totalQuestions)
	}
}

func TestSnippetByID(t *testing.T) {
	if _, ok := SnippetByID("AEEK"); !ok {
		t.Error("AEEK not found")
	}
	if _, ok := SnippetByID("NOPE"); ok {
		t.Error("unexpected snippet found")
	}
}

func TestAllSnippetsParse(t *testing.T) {
	for _, s := range Snippets() {
		if _, err := s.Parse(); err != nil {
			t.Errorf("snippet %s: %v", s.ID, err)
		}
	}
}

func TestPrepareAllPipeline(t *testing.T) {
	prepared, err := PrepareAll()
	if err != nil {
		t.Fatalf("PrepareAll: %v", err)
	}
	if len(prepared) != 4 {
		t.Fatalf("prepared = %d, want 4", len(prepared))
	}
	for _, p := range prepared {
		hex := p.HexRays.Source()
		dirty := p.Dirty.Source()
		if hex == dirty {
			t.Errorf("%s: treatment arms identical", p.Snippet.ID)
		}
		if !strings.Contains(hex, "__fastcall") {
			t.Errorf("%s: control arm missing Hex-Rays idiom:\n%s", p.Snippet.ID, hex)
		}
		if p.OrigSource == "" {
			t.Errorf("%s: missing original source", p.Snippet.ID)
		}
		// Paper §III-B: snippets fit on one screen (≤50 lines).
		for arm, src := range map[string]string{"hexrays": hex, "dirty": dirty} {
			if n := strings.Count(src, "\n"); n > 50 {
				t.Errorf("%s %s arm is %d lines, exceeds the 50-line screen constraint", p.Snippet.ID, arm, n)
			}
		}
	}
}

func TestAEEKReproducesPaperFailures(t *testing.T) {
	s, _ := SnippetByID("AEEK")
	p, err := Prepare(s)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	dirty := p.Dirty.Source()
	// Fig 7b: the dedupe produces indexa, the never-returned local is
	// named ret, and the extracted element is char *next.
	for _, want := range []string{"indexa", "ret", "char *next", "array_t_0 *array"} {
		if !strings.Contains(dirty, want) {
			t.Errorf("AEEK DIRTY output missing %q:\n%s", want, dirty)
		}
	}
	// Control arm shows the famous access pattern.
	if !strings.Contains(p.HexRays.Source(), "*(_QWORD *)(8LL * ") {
		t.Errorf("AEEK control arm missing scaled struct access:\n%s", p.HexRays.Source())
	}
}

func TestPostorderReproducesArgSwap(t *testing.T) {
	s, _ := SnippetByID("POSTORDER")
	p, err := Prepare(s)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	dirty := p.Dirty.Source()
	// Fig 4b: tree234 *t, void *e, cmpfn234 cmp — with the call through e.
	for _, want := range []string{"tree234 *t", "void *e", "cmpfn234 cmp", "e(cmp, t)"} {
		if !strings.Contains(dirty, want) {
			t.Errorf("POSTORDER DIRTY output missing %q:\n%s", want, dirty)
		}
	}
	// Control arm: a2(a3, a1), the paper's Fig 4a call.
	if !strings.Contains(p.HexRays.Source(), "a2(a3, a1)") {
		t.Errorf("POSTORDER control arm missing a2(a3, a1):\n%s", p.HexRays.Source())
	}
}

func TestBAPLReproducesSignature(t *testing.T) {
	s, _ := SnippetByID("BAPL")
	p, err := Prepare(s)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	dirty := p.Dirty.Source()
	for _, want := range []string{"SSL *s", "const char *str", "size_t n"} {
		if !strings.Contains(dirty, want) {
			t.Errorf("BAPL DIRTY output missing %q:\n%s", want, dirty)
		}
	}
	if !strings.Contains(p.HexRays.Source(), "_BYTE *a2") {
		t.Errorf("BAPL control arm missing _BYTE *a2:\n%s", p.HexRays.Source())
	}
}

func TestCalibrationShapes(t *testing.T) {
	var sumDelta float64
	var count int
	misleading := 0
	for _, s := range Snippets() {
		for _, q := range s.Questions {
			sumDelta += q.Calib.TreatDelta
			count++
			if q.Calib.Misleading {
				misleading++
			}
			if q.Calib.TimeMeanSec <= 0 || q.Calib.TimeSDSec <= 0 {
				t.Errorf("%s: non-positive time calibration", q.ID)
			}
		}
	}
	// Paper Table I: the average DIRTY effect is slightly negative.
	avg := sumDelta / float64(count)
	if avg >= 0 || avg < -0.5 {
		t.Errorf("mean treatment delta = %v, want slightly negative", avg)
	}
	if misleading != 2 {
		t.Errorf("misleading questions = %d, want 2 (AEEK-Q2, POSTORDER-Q2)", misleading)
	}
}

func TestTrainingFilesAndModel(t *testing.T) {
	files, err := TrainingFiles()
	if err != nil {
		t.Fatalf("TrainingFiles: %v", err)
	}
	if len(files) < 10 {
		t.Errorf("training files = %d, want ≥10", len(files))
	}
	m, err := namerec.TrainModel(files)
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}
	if m.NumExamples() < 30 {
		t.Errorf("training variables = %d, want ≥30", m.NumExamples())
	}
}

func TestEmbeddingContexts(t *testing.T) {
	ctxs, err := EmbeddingContexts()
	if err != nil {
		t.Fatalf("EmbeddingContexts: %v", err)
	}
	if len(ctxs) < 15 {
		t.Errorf("contexts = %d, want ≥15", len(ctxs))
	}
	m, err := embed.Train(ctxs, &embed.Config{Dim: 16})
	if err != nil {
		t.Fatalf("embed.Train on corpus contexts: %v", err)
	}
	// The study vocabulary must be embeddable.
	for _, word := range []string{"klen", "index", "buffer", "tree", "aux"} {
		if !m.Contains(word) {
			t.Errorf("embedding vocabulary missing %q", word)
		}
	}
}

// TestEmbeddingContextsStableOrder guards against map-iteration order
// leaking into the training input: context order decides embedding
// vocabulary IDs and co-occurrence windows, so any run-to-run shuffle here
// (the DirtyOverrides maps are the tempting source) makes the trained
// model — and every downstream metric — nondeterministic.
func TestEmbeddingContextsStableOrder(t *testing.T) {
	a, err := EmbeddingContexts()
	if err != nil {
		t.Fatalf("EmbeddingContexts: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		b, err := EmbeddingContexts()
		if err != nil {
			t.Fatalf("EmbeddingContexts: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: context order changed between calls", trial)
		}
	}
}

func TestQuestionKindString(t *testing.T) {
	kinds := []QuestionKind{KindValueAt, KindPurpose, KindReturns, KindArgMatch}
	for _, k := range kinds {
		if strings.HasPrefix(k.String(), "QuestionKind(") {
			t.Errorf("missing String for %d", int(k))
		}
	}
}

func TestVariantPerfectAnnotations(t *testing.T) {
	variants := VariantPerfectAnnotations()
	if len(variants) != 4 {
		t.Fatalf("variants = %d, want 4", len(variants))
	}
	for _, v := range variants {
		if v.SwapParams != [2]string{} {
			t.Errorf("%s: swap not removed", v.ID)
		}
		for _, q := range v.Questions {
			if q.Calib.Misleading {
				t.Errorf("%s/%s: still misleading", v.ID, q.ID)
			}
		}
		// Must still prepare end-to-end.
		if _, err := Prepare(v); err != nil {
			t.Errorf("%s: %v", v.ID, err)
		}
	}
	// Mutating a variant must not touch the canonical snippets.
	orig, _ := SnippetByID("POSTORDER")
	if orig.SwapParams == [2]string{} {
		t.Error("variant mutation leaked into the canonical POSTORDER snippet")
	}
}

func TestVariantHarderQuestions(t *testing.T) {
	base := Snippets()
	hard := VariantHarderQuestions()
	for i := range base {
		for j := range base[i].Questions {
			got := hard[i].Questions[j].Calib.ControlLogit
			want := base[i].Questions[j].Calib.ControlLogit - 1
			if got != want {
				t.Errorf("%s: logit = %v, want %v", hard[i].Questions[j].ID, got, want)
			}
		}
	}
}

func TestSnippetCloneIsDeep(t *testing.T) {
	s, _ := SnippetByID("AEEK")
	c := s.Clone()
	c.DirtyOverrides["a"] = namerec.Prediction{Name: "mutated"}
	c.Questions[0].Calib.ControlLogit = 99
	fresh, _ := SnippetByID("AEEK")
	if fresh.DirtyOverrides["a"].Name == "mutated" {
		t.Error("override mutation leaked through Clone")
	}
	if fresh.Questions[0].Calib.ControlLogit == 99 {
		t.Error("question mutation leaked through Clone")
	}
}

package corpus

import "decompstudy/internal/namerec"

// Clone returns a deep copy of the snippet that can be mutated without
// affecting the canonical study materials.
func (s *Snippet) Clone() *Snippet {
	out := *s
	out.DirtyOverrides = make(map[string]namerec.Prediction, len(s.DirtyOverrides))
	for k, v := range s.DirtyOverrides {
		out.DirtyOverrides[k] = v
	}
	out.Questions = append([]Question(nil), s.Questions...)
	return &out
}

// VariantPerfectAnnotations returns the study snippets with every
// documented annotation failure repaired: the postorder argument swap is
// removed, misleading questions stop misleading, and their treatment
// effects turn mildly positive. This is the "what if DIRTY never misled?"
// ablation — the counterfactual the paper's Discussion reasons about.
func VariantPerfectAnnotations() []*Snippet {
	var out []*Snippet
	for _, s := range Snippets() {
		c := s.Clone()
		c.SwapParams = [2]string{}
		for i := range c.Questions {
			if c.Questions[i].Calib.Misleading {
				c.Questions[i].Calib.Misleading = false
				c.Questions[i].Calib.TreatDelta = 0.5
				c.Questions[i].Calib.TreatTimeDelta = -10
			}
		}
		if c.ID == "AEEK" {
			// Repair the misleading local names the paper's Fig 7 documents.
			c.DirtyOverrides["last_ndx"] = namerec.Prediction{Name: "last", Type: "int"}
			c.DirtyOverrides["entry"] = namerec.Prediction{Name: "entry", Type: "data_unset *"}
		}
		out = append(out, c)
	}
	return out
}

// VariantOptScaled returns the snippets with every question's treatment
// effect scaled by the per-snippet factor in scale (keyed by snippet ID,
// missing IDs keep factor 1). The factor models annotation survival under
// optimization: a deleted or rewritten variable cannot carry its
// annotation, so both the help and the harm of DIRTY names attenuate
// toward zero with it — including the misleading questions, whose
// trust-scaled penalty shrinks the same way.
func VariantOptScaled(scale map[string]float64) []*Snippet {
	var out []*Snippet
	for _, s := range Snippets() {
		c := s.Clone()
		f, ok := scale[s.ID]
		if !ok {
			f = 1
		}
		for i := range c.Questions {
			c.Questions[i].Calib.TreatDelta *= f
			c.Questions[i].Calib.TreatTimeDelta *= f
		}
		out = append(out, c)
	}
	return out
}

// VariantHarderQuestions returns the snippets with every question one
// logit harder — the §VI robustness check that the null treatment result
// is not an artifact of question difficulty.
func VariantHarderQuestions() []*Snippet {
	var out []*Snippet
	for _, s := range Snippets() {
		c := s.Clone()
		for i := range c.Questions {
			c.Questions[i].Calib.ControlLogit -= 1
		}
		out = append(out, c)
	}
	return out
}

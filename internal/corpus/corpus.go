// Package corpus embeds the study materials: the four code snippets the
// paper selected (array_extract_element_klen and buffer_append_path_len
// from lighttpd, postorder from coreutils, twos_complement from openssl),
// re-authored in the project's C subset so they flow through the
// compile→decompile→annotate pipeline; the paper's DIRTY outputs for each,
// encoded as annotation overrides (including the postorder argument-swap
// failure); the eight comprehension questions; and a training corpus of
// ordinary C functions for the recovery model and the identifier
// embeddings.
//
// Per-question calibration constants encode the paper's observed outcome
// structure (Figure 5 correctness bars, Figures 6-7 timing, the §IV
// in-text statistics) so the simulated participant pool regenerates the
// same shapes.
package corpus

import (
	"fmt"

	"decompstudy/internal/csrc"
	"decompstudy/internal/namerec"
)

// QuestionKind classifies the four question styles of §III-C.
type QuestionKind int

// Question kinds, mirroring the paper's taxonomy.
const (
	KindValueAt  QuestionKind = iota + 1 // value of Y at line Z given args X
	KindPurpose                          // purpose of lines X–Y
	KindReturns                          // potential return values
	KindArgMatch                         // which argument does X
)

func (k QuestionKind) String() string {
	switch k {
	case KindValueAt:
		return "value-at-line"
	case KindPurpose:
		return "purpose-of-lines"
	case KindReturns:
		return "return-values"
	case KindArgMatch:
		return "argument-matching"
	default:
		return fmt.Sprintf("QuestionKind(%d)", int(k))
	}
}

// Calibration encodes a question's outcome structure, taken from the
// paper's reported results (see DESIGN.md §4).
type Calibration struct {
	// ControlLogit is the log-odds a participant of average skill answers
	// correctly on the plain Hex-Rays version.
	ControlLogit float64
	// TreatDelta is the additive log-odds effect of DIRTY annotations.
	TreatDelta float64
	// Misleading marks questions where DIRTY's annotation actively
	// misleads (postorder Q2's swap, AEEK Q2's `ret`); for these the
	// effective treatment penalty scales with the participant's trust.
	Misleading bool
	// TimeMeanSec and TimeSDSec parameterize the control-condition
	// completion time.
	TimeMeanSec, TimeSDSec float64
	// TreatTimeDelta is the mean additional seconds under DIRTY (negative
	// when annotations speed participants up).
	TreatTimeDelta float64
}

// Question is one comprehension question.
type Question struct {
	ID     string
	Kind   QuestionKind
	Text   string
	Answer string
	Calib  Calibration
}

// Snippet is one study function with everything needed to produce both
// treatment arms.
type Snippet struct {
	// ID is the paper's abbreviation: AEEK, BAPL, POSTORDER, TC.
	ID string
	// FuncName is the function under study within Source.
	FuncName string
	// Project is the provenance the paper cites.
	Project string
	// Source is the original mini-C translation unit (structs + helpers +
	// the function).
	Source string
	// ExtraTypes lists identifier-spelled types the parser must know.
	ExtraTypes []string
	// DirtyOverrides reproduces the paper's DIRTY output per original
	// variable name.
	DirtyOverrides map[string]namerec.Prediction
	// SwapParams injects the postorder argument-swap failure (empty
	// otherwise).
	SwapParams [2]string
	// Questions holds the two questions asked about this snippet.
	Questions []Question
	// TypeOpinionPenalty shifts simulated Likert ratings of DIRTY's types
	// (the twos_complement outlier of §IV-C).
	TypeOpinionPenalty float64
}

// Parse returns the parsed translation unit of the snippet.
func (s *Snippet) Parse() (*csrc.File, error) {
	f, err := csrc.Parse(s.Source, s.ExtraTypes)
	if err != nil {
		return nil, fmt.Errorf("corpus: parsing snippet %s: %w", s.ID, err)
	}
	return f, nil
}

// Snippets returns the four study snippets in presentation order.
func Snippets() []*Snippet {
	return []*Snippet{aeek(), bapl(), postorder(), twosComplement()}
}

// SnippetByID returns the snippet with the given ID.
func SnippetByID(id string) (*Snippet, bool) {
	for _, s := range Snippets() {
		if s.ID == id {
			return s, true
		}
	}
	return nil, false
}

func aeek() *Snippet {
	return &Snippet{
		ID:         "AEEK",
		FuncName:   "array_extract_element_klen",
		Project:    "lighttpd",
		ExtraTypes: []string{"data_unset"},
		Source: `
typedef struct array {
  void *data;
  data_unset **sorted;
  uint32_t used;
  uint32_t size;
} array;

int array_get_index(array *a, const char *k, uint32_t klen) {
  uint32_t i = 0;
  while (i < a->used) {
    if (key_matches(a->sorted[i], k, klen)) {
      return i;
    }
    i = i + 1;
  }
  return -1;
}

data_unset *array_extract_element_klen(array *a, const char *k, uint32_t klen) {
  int index = array_get_index(a, k, klen);
  if (index < 0) {
    return 0;
  }
  data_unset *entry = a->sorted[index];
  uint32_t last_ndx = a->used - 1;
  if (index != last_ndx) {
    memmove(a->sorted + index, a->sorted + index + 1, (last_ndx - index) * sizeof(data_unset *));
  }
  a->used = last_ndx;
  return entry;
}
`,
		// Paper Figs 1b and 7b: param klen becomes "index", the array
		// keeps a layout-incompatible struct type, the extracted entry
		// becomes char *next, and an unrelated local is named ret.
		DirtyOverrides: map[string]namerec.Prediction{
			"a":        {Name: "array", Type: "array_t_0 *"},
			"k":        {Name: "key", Type: "void *"},
			"klen":     {Name: "index", Type: "int"},
			"index":    {Name: "index", Type: "int"}, // dedupes to indexa
			"entry":    {Name: "next", Type: "char *"},
			"last_ndx": {Name: "ret", Type: "int"},
		},
		Questions: []Question{
			{
				ID:     "AEEK-Q1",
				Kind:   KindPurpose,
				Text:   "If a1 + 8 points to an array and the array_get_index call returns an index, what is the purpose of the if and memmove that follow?",
				Answer: "They close the gap left by the extracted element: the tail of the array is shifted down one slot so the array stays contiguous, and the element count is decremented.",
				Calib: Calibration{
					ControlLogit: 0.3, TreatDelta: -0.6,
					TimeMeanSec: 220, TimeSDSec: 110, TreatTimeDelta: 15,
				},
			},
			{
				ID:     "AEEK-Q2",
				Kind:   KindReturns,
				Text:   "What are the potential return values of this function?",
				Answer: "NULL (0) when the key is not found, otherwise a pointer to the extracted element.",
				Calib: Calibration{
					ControlLogit: 0.1, TreatDelta: -0.8, Misleading: true,
					TimeMeanSec: 260, TimeSDSec: 130, TreatTimeDelta: 60,
				},
			},
		},
	}
}

func bapl() *Snippet {
	return &Snippet{
		ID:       "BAPL",
		FuncName: "buffer_append_path_len",
		Project:  "lighttpd",
		Source: `
typedef struct buffer {
  char *ptr;
  uint32_t used;
  uint32_t size;
} buffer;

void buffer_append_path_len(buffer *b, const char *a, size_t alen) {
  uint32_t off = b->used;
  char *s = buffer_string_prepare_append(b, alen + 1);
  if (off != 0 && s[off - 1] == '/') {
    if (alen != 0 && a[0] == '/') {
      a = a + 1;
      alen = alen - 1;
    }
  } else {
    if (alen == 0 || a[0] != '/') {
      s[off] = '/';
      off = off + 1;
    }
  }
  memcpy(s + off, a, alen);
  b->used = off + alen;
}
`,
		// Paper Fig 6a: DIRTY recovers str and n but mislabels the buffer
		// as an SSL session.
		DirtyOverrides: map[string]namerec.Prediction{
			"b":    {Name: "s", Type: "SSL *"},
			"a":    {Name: "str", Type: "const char *"},
			"alen": {Name: "n", Type: "size_t"},
			"off":  {Name: "len", Type: "int"},
			"s":    {Name: "buf", Type: "char *"},
		},
		Questions: []Question{
			{
				ID:     "BAPL-Q1",
				Kind:   KindValueAt,
				Text:   `If the function is called with the buffer holding "usr/" (4 bytes used) and the second argument "/bin" of length 4, how many bytes are used by the buffer when the function returns?`,
				Answer: "7 — one of the two separators is dropped, yielding \"usr/bin\".",
				Calib: Calibration{
					ControlLogit: -0.3, TreatDelta: 0.7,
					TimeMeanSec: 256, TimeSDSec: 145, TreatTimeDelta: -14,
				},
			},
			{
				ID:     "BAPL-Q2",
				Kind:   KindPurpose,
				Text:   "What is the purpose of the nested if statements before the copy call?",
				Answer: "They guarantee exactly one path separator appears at the join point: a leading '/' on the appended string is skipped when the buffer already ends with '/', and a '/' is inserted when neither side provides one.",
				Calib: Calibration{
					ControlLogit: -0.1, TreatDelta: 0.6,
					TimeMeanSec: 250, TimeSDSec: 140, TreatTimeDelta: -10,
				},
			},
		},
	}
}

func postorder() *Snippet {
	return &Snippet{
		ID:       "POSTORDER",
		FuncName: "postorder",
		Project:  "coreutils",
		Source: `
typedef struct tnode {
  struct tnode *left;
  struct tnode *right;
} tnode;

long postorder(tnode *t, long (*visit)(void *aux, void *node), void *aux) {
  long ret;
  if (t == 0) {
    return 0;
  }
  if (t->left != 0) {
    ret = postorder(t->left, visit, aux);
    if (ret != 0) {
      return ret;
    }
  }
  if (t->right != 0) {
    ret = postorder(t->right, visit, aux);
    if (ret != 0) {
      return ret;
    }
  }
  ret = visit(aux, t);
  return ret;
}
`,
		// Paper Fig 4b: DIRTY's names are individually reasonable but the
		// function pointer and auxiliary argument are swapped.
		DirtyOverrides: map[string]namerec.Prediction{
			"t":     {Name: "t", Type: "tree234 *"},
			"visit": {Name: "cmp", Type: "cmpfn234"},
			"aux":   {Name: "e", Type: "void *"},
			"ret":   {Name: "ret", Type: "__int64"},
		},
		SwapParams: [2]string{"visit", "aux"},
		Questions: []Question{
			{
				ID:     "POSTORDER-Q1",
				Kind:   KindPurpose,
				Text:   "In what order does this function process the nodes of the tree relative to calling the supplied function?",
				Answer: "Postorder: both subtrees are fully processed (left, then right) before the function pointer is invoked on the current node; a nonzero status aborts the traversal.",
				Calib: Calibration{
					ControlLogit: 1.5, TreatDelta: 0.0,
					TimeMeanSec: 265, TimeSDSec: 95, TreatTimeDelta: 15,
				},
			},
			{
				ID:     "POSTORDER-Q2",
				Kind:   KindArgMatch,
				Text:   "The three arguments are a pointer to a tree structure, a function pointer called on each node, and auxiliary information maintained during traversal. Match each argument to its description.",
				Answer: "First argument: tree. Second argument: the function pointer (it is the only value invoked). Third argument: the auxiliary information (passed unchanged into every call).",
				Calib: Calibration{
					ControlLogit: 3.4, TreatDelta: -3.1, Misleading: true,
					TimeMeanSec: 285, TimeSDSec: 105, TreatTimeDelta: 30,
				},
			},
		},
	}
}

func twosComplement() *Snippet {
	return &Snippet{
		ID:       "TC",
		FuncName: "twos_complement",
		Project:  "openssl",
		Source: `
void twos_complement(unsigned char *dst, const unsigned char *src, size_t len, unsigned char pad) {
  unsigned int carry = pad & 1;
  if (len == 0) {
    return;
  }
  size_t i = len;
  while (i > 0) {
    i = i - 1;
    unsigned int b = src[i] ^ pad;
    b = b + carry;
    dst[i] = b & 255;
    carry = b >> 8;
  }
}
`,
		// DIRTY's TC types were rated poorly by participants (§IV-C) even
		// though its names helped performance (§IV-D): wrong-domain BN
		// types with serviceable names.
		DirtyOverrides: map[string]namerec.Prediction{
			"dst":   {Name: "to", Type: "BN_ULONG *"},
			"src":   {Name: "from", Type: "const BN_ULONG *"},
			"len":   {Name: "n", Type: "int"},
			"pad":   {Name: "mask", Type: "BN_ULONG"},
			"carry": {Name: "c", Type: "BN_ULONG"},
			"i":     {Name: "idx", Type: "int"},
			"b":     {Name: "w", Type: "BN_ULONG"},
		},
		TypeOpinionPenalty: 1.2,
		Questions: []Question{
			{
				ID:     "TC-Q1",
				Kind:   KindValueAt,
				Text:   "If the function is called with src = {0x01, 0x00}, len = 2, and pad = 0xff, what bytes are written to dst?",
				Answer: "dst = {0xff, 0x00}: the loop runs from the last byte, XORs each byte with 0xff, and propagates the +1 carry upward, producing the two's complement of 0x0100.",
				Calib: Calibration{
					ControlLogit: 0.0, TreatDelta: 0.4,
					TimeMeanSec: 240, TimeSDSec: 120, TreatTimeDelta: -25,
				},
			},
			{
				ID:     "TC-Q2",
				Kind:   KindArgMatch,
				Text:   "Which argument controls whether the input buffer is converted to its two's complement form before copying?",
				Answer: "The fourth argument (pad/mask): when it is 0xff every byte is inverted and an initial carry is added, producing the two's complement; when it is 0 the buffer is copied unchanged.",
				Calib: Calibration{
					ControlLogit: -0.5, TreatDelta: 0.4,
					TimeMeanSec: 220, TimeSDSec: 115, TreatTimeDelta: -20,
				},
			},
		},
	}
}

package corpus

import (
	"fmt"
	"sort"

	"decompstudy/internal/csrc"
)

// trainingSources is the corpus of ordinary C functions (with their
// original names) used to train the recovery model and the identifier
// embeddings — the stand-in for the GitHub corpora DIRE/DIRTY train on.
// The functions deliberately cover the domains the paper sampled from:
// buffers and string handling, array/index manipulation, tree traversal,
// byte copying, and error-status plumbing.
var trainingSources = []string{
	`
int buffer_length(char *buf, int cap) {
  int len = 0;
  while (len < cap) {
    if (buf[len] == 0) {
      return len;
    }
    len = len + 1;
  }
  return cap;
}
`,
	`
long lookup_index(long *table, int index, int count) {
  if (index < 0) {
    return 0;
  }
  if (index >= count) {
    return 0;
  }
  return table[index];
}
`,
	`
void copy_bytes(char *dest, const char *src, int n) {
  for (int i = 0; i < n; i++) {
    dest[i] = src[i];
  }
}
`,
	`
typedef struct list_node {
  struct list_node *next;
  long value;
} list_node;

long list_sum(list_node *head) {
  long total = 0;
  list_node *node = head;
  while (node != 0) {
    total = total + node->value;
    node = node->next;
  }
  return total;
}
`,
	`
int find_char(const char *str, int ch, int len) {
  for (int pos = 0; pos < len; pos++) {
    if (str[pos] == ch) {
      return pos;
    }
  }
  return -1;
}
`,
	`
typedef struct vec {
  long *items;
  int size;
  int capacity;
} vec;

long vec_get(vec *v, int index) {
  if (index < 0 || index >= v->size) {
    return 0;
  }
  return v->items[index];
}
`,
	`
unsigned int checksum(const unsigned char *data, size_t size) {
  unsigned int sum = 0;
  for (size_t i = 0; i < size; i++) {
    sum = sum + data[i];
    sum = sum ^ sum >> 3;
  }
  return sum;
}
`,
	`
int apply_visitor(void *tree, int (*visit)(void *aux, void *node), void *aux) {
  int status = visit(aux, tree);
  if (status != 0) {
    return status;
  }
  return 0;
}
`,
	`
typedef struct strbuf {
  char *ptr;
  int used;
  int size;
} strbuf;

void strbuf_append_char(strbuf *sb, char ch) {
  if (sb->used < sb->size) {
    sb->ptr[sb->used] = ch;
    sb->used = sb->used + 1;
  }
}
`,
	`
int key_compare(const char *key, const char *other, int klen) {
  for (int i = 0; i < klen; i++) {
    if (key[i] != other[i]) {
      return key[i] - other[i];
    }
  }
  return 0;
}
`,
	`
long max_value(long *values, int count) {
  long best = values[0];
  for (int i = 1; i < count; i++) {
    if (values[i] > best) {
      best = values[i];
    }
  }
  return best;
}
`,
	`
void zero_fill(unsigned char *buf, size_t len) {
  for (size_t i = 0; i < len; i++) {
    buf[i] = 0;
  }
}
`,
	`
void move_block(unsigned char *to, const unsigned char *from, size_t count) {
  for (size_t i = 0; i < count; i++) {
    to[i] = from[i];
  }
}
`,
	`
void transfer(char *to, char *from, char *dst, char *src, int n) {
  for (int i = 0; i < n; i++) {
    dst[i] = src[i];
    to[i] = from[i];
  }
}
`,
}

// TrainingSources returns the raw training-corpus sources in training
// order. The model store hashes these (together with the training
// configuration) to content-address the trained models, so any edit to the
// corpus automatically invalidates every cached model.
func TrainingSources() []string {
	out := make([]string, len(trainingSources))
	copy(out, trainingSources)
	return out
}

// TrainingFiles parses the training corpus.
func TrainingFiles() ([]*csrc.File, error) {
	out := make([]*csrc.File, 0, len(trainingSources))
	for i, src := range trainingSources {
		f, err := csrc.Parse(src, nil)
		if err != nil {
			return nil, fmt.Errorf("corpus: training source %d: %w", i, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// EmbeddingContexts returns identifier co-occurrence contexts for the
// embedding trainer: one context per training function plus the study
// snippets' original identifiers, so the semantic metrics recognize both
// candidate and reference vocabularies.
func EmbeddingContexts() ([][]string, error) {
	files, err := TrainingFiles()
	if err != nil {
		return nil, err
	}
	var contexts [][]string
	collect := func(f *csrc.File) {
		for _, fn := range f.Functions {
			var ids []string
			ids = append(ids, fn.Name)
			for _, p := range fn.Params {
				ids = append(ids, p.Name)
			}
			var walk func(s csrc.Stmt)
			walk = func(s csrc.Stmt) {
				switch st := s.(type) {
				case *csrc.Block:
					for _, inner := range st.Stmts {
						walk(inner)
					}
				case *csrc.DeclStmt:
					ids = append(ids, st.Name)
				case *csrc.If:
					walk(st.Then)
					if st.Else != nil {
						walk(st.Else)
					}
				case *csrc.While:
					walk(st.Body)
				case *csrc.For:
					if st.Init != nil {
						walk(st.Init)
					}
					walk(st.Body)
				}
			}
			walk(fn.Body)
			contexts = append(contexts, ids)
		}
	}
	for _, f := range files {
		collect(f)
	}
	for _, s := range Snippets() {
		f, err := s.Parse()
		if err != nil {
			return nil, err
		}
		collect(f)
		// Include the DIRTY vocabulary so candidate names embed too. The
		// overrides live in a map, so iterate in sorted key order: context
		// order decides vocabulary IDs and co-occurrence windows, and a
		// randomized order here would make the trained model differ from run
		// to run.
		keys := make([]string, 0, len(s.DirtyOverrides))
		for k := range s.DirtyOverrides {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var dirty []string
		for _, k := range keys {
			pred := s.DirtyOverrides[k]
			dirty = append(dirty, pred.Name, pred.Type)
		}
		contexts = append(contexts, dirty)
	}
	return contexts, nil
}

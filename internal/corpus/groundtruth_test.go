package corpus

import (
	"testing"

	"decompstudy/internal/compile"
	"decompstudy/internal/csrc"
)

// These tests execute the study snippets themselves in the IR interpreter
// and check the graded answers of the survey questions — the ground truth
// participants were scored against is machine-verified, not asserted by
// fiat.

// harness wraps a snippet's source with stub definitions for its external
// callees so the interpreter can run it.
func harness(t *testing.T, snippetID, stubs string) *compile.Machine {
	t.Helper()
	s, ok := SnippetByID(snippetID)
	if !ok {
		t.Fatalf("snippet %s missing", snippetID)
	}
	file, err := csrc.Parse(s.Source+stubs, s.ExtraTypes)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	obj, err := compile.Compile(file)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return compile.NewMachine(obj, 1<<12)
}

func put64(m *compile.Machine, addr int, v int64) {
	for b := 0; b < 8; b++ {
		m.Mem()[addr+b] = byte(v >> (8 * b))
	}
}

func get32(m *compile.Machine, addr int) uint32 {
	var v uint32
	for b := 3; b >= 0; b-- {
		v = v<<8 | uint32(m.Mem()[addr+b])
	}
	return v
}

// TestBAPLQ1GroundTruth verifies the graded answer to BAPL-Q1: appending
// "/bin" (len 4) to a buffer holding "usr/" (4 bytes used) yields 7 used
// bytes — one separator is dropped.
func TestBAPLQ1GroundTruth(t *testing.T) {
	m := harness(t, "BAPL", `
char *buffer_string_prepare_append(buffer *b, size_t n) {
  return b->ptr;
}
`)
	const (
		bufStruct = 64  // buffer header: ptr @64, used @72, size @76
		data      = 256 // backing storage
		appended  = 512 // the string to append
	)
	put64(m, bufStruct, data)
	copy(m.Mem()[data:], "usr/")
	m.Mem()[bufStruct+8] = 4 // used = 4
	m.Mem()[bufStruct+12] = 64
	copy(m.Mem()[appended:], "/bin")

	if _, err := m.Call("buffer_append_path_len", bufStruct, appended, 4); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if used := get32(m, bufStruct+8); used != 7 {
		t.Errorf("buffer used = %d, want 7 (the BAPL-Q1 answer)", used)
	}
	if got := string(m.Mem()[data : data+7]); got != "usr/bin" {
		t.Errorf("buffer contents = %q, want \"usr/bin\"", got)
	}
}

// TestBAPLSeparatorInsertion covers the other branch: neither side supplies
// a separator, so one is inserted.
func TestBAPLSeparatorInsertion(t *testing.T) {
	m := harness(t, "BAPL", `
char *buffer_string_prepare_append(buffer *b, size_t n) {
  return b->ptr;
}
`)
	const (
		bufStruct = 64
		data      = 256
		appended  = 512
	)
	put64(m, bufStruct, data)
	copy(m.Mem()[data:], "usr")
	m.Mem()[bufStruct+8] = 3
	copy(m.Mem()[appended:], "bin")

	if _, err := m.Call("buffer_append_path_len", bufStruct, appended, 3); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if used := get32(m, bufStruct+8); used != 7 {
		t.Errorf("buffer used = %d, want 7", used)
	}
	if got := string(m.Mem()[data : data+7]); got != "usr/bin" {
		t.Errorf("buffer contents = %q, want \"usr/bin\"", got)
	}
}

// TestAEEKQ1GroundTruth verifies the graded answer to AEEK-Q1: the if +
// memmove close the gap left by the extracted element and the count drops.
func TestAEEKQ1GroundTruth(t *testing.T) {
	// key_matches: the second element matches (element address 1000).
	m := harness(t, "AEEK", `
int key_matches(data_unset *e, const char *k, uint32_t klen) {
  if (e == 1000) {
    return 1;
  }
  return 0;
}
`)
	const (
		arrStruct = 64  // array header: data @64, sorted @72, used @80, size @84
		sorted    = 256 // data_unset*[3]
	)
	put64(m, arrStruct+8, sorted)
	m.Mem()[arrStruct+16] = 3 // used = 3
	put64(m, sorted, 500)     // element 0
	put64(m, sorted+8, 1000)  // element 1 — the match
	put64(m, sorted+16, 1500) // element 2

	got, err := m.Call("array_extract_element_klen", arrStruct, 0, 0)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 1000 {
		t.Errorf("extracted element = %d, want 1000", got)
	}
	if used := get32(m, arrStruct+16); used != 2 {
		t.Errorf("array used = %d, want 2 (count decremented)", used)
	}
	// The memmove closed the gap: element 2 slid into slot 1.
	var slot1 int64
	for b := 7; b >= 0; b-- {
		slot1 = slot1<<8 | int64(m.Mem()[sorted+8+b])
	}
	if slot1 != 1500 {
		t.Errorf("sorted[1] = %d after extraction, want 1500 (gap closed)", slot1)
	}
}

// TestAEEKQ2GroundTruth verifies the graded answer to AEEK-Q2: NULL when
// the key is not found.
func TestAEEKQ2GroundTruth(t *testing.T) {
	m := harness(t, "AEEK", `
int key_matches(data_unset *e, const char *k, uint32_t klen) {
  return 0;
}
`)
	const arrStruct = 64
	m.Mem()[arrStruct+16] = 3
	put64(m, arrStruct+8, 256)
	got, err := m.Call("array_extract_element_klen", arrStruct, 0, 0)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 0 {
		t.Errorf("missing key returned %d, want NULL (0)", got)
	}
}

// TestPostorderGroundTruth cannot call through the function pointer (the
// interpreter has no function table for indirect calls), but the traversal
// structure is exercised through its null-tree fast path.
func TestPostorderNullTree(t *testing.T) {
	m := harness(t, "POSTORDER", "")
	got, err := m.Call("postorder", 0, 0, 0)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 0 {
		t.Errorf("postorder(NULL) = %d, want 0", got)
	}
}

// TestTCQ2GroundTruth verifies the graded answer to TC-Q2: with pad = 0
// the buffer is copied unchanged; with pad = 0xff it is complemented.
func TestTCQ2GroundTruth(t *testing.T) {
	m := harness(t, "TC", "")
	const src, dst = 16, 64
	m.Mem()[src] = 0x12
	m.Mem()[src+1] = 0x34
	if _, err := m.Call("twos_complement", dst, src, 2, 0); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if m.Mem()[dst] != 0x12 || m.Mem()[dst+1] != 0x34 {
		t.Errorf("pad=0 should copy unchanged: got {%#x, %#x}", m.Mem()[dst], m.Mem()[dst+1])
	}
	if _, err := m.Call("twos_complement", dst, src, 2, 0xff); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// Two's complement of 0x1234 (big-endian buffer) = 0xEDCC.
	if m.Mem()[dst] != 0xed || m.Mem()[dst+1] != 0xcc {
		t.Errorf("pad=0xff should complement: got {%#x, %#x}, want {0xed, 0xcc}", m.Mem()[dst], m.Mem()[dst+1])
	}
}

package corpus

import (
	"context"
	"errors"
	"fmt"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
	"decompstudy/internal/compile/opt"
	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/fault"
	"decompstudy/internal/namerec"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// ErrPrepare is returned when a snippet cannot be run through the
// compile→decompile→annotate pipeline. It always wraps the stage error, so
// errors.Is also matches the underlying cause (csrc.ErrParse,
// decomp.ErrStructure, …).
var ErrPrepare = errors.New("corpus: snippet preparation failed")

// Prepared is a snippet run through the full pipeline: parsed, compiled,
// verified, decompiled, and annotated — both treatment arms ready to
// show.
type Prepared struct {
	Snippet *Snippet
	// IR is the verified intermediate representation of the study
	// function; the structural-complexity covariates (RQ5) are computed
	// from it. At OptLevel > 0 this is the optimized IR, so covariates,
	// decompiled output, and annotations all reflect the level.
	IR *compile.Func
	// OptLevel records the optimization level the snippet was prepared at.
	OptLevel opt.Level
	// HexRays is the control arm (plain decompiler output).
	HexRays *decomp.Decompiled
	// Dirty is the treatment arm (decompiler output with recovered names).
	Dirty *namerec.Annotated
	// OrigSource is the original function's pretty-printed source.
	OrigSource string
}

// Prepare runs one snippet through compile→decompile→annotate.
func Prepare(s *Snippet) (*Prepared, error) {
	return PrepareCtx(context.Background(), s)
}

// PrepareCtx is Prepare with telemetry: one corpus.Prepare span per snippet
// with the parse/compile/lift/annotate stages as children. It prepares at
// -O0, the study default.
func PrepareCtx(ctx context.Context, s *Snippet) (*Prepared, error) {
	return PrepareOptCtx(ctx, s, opt.O0)
}

// PrepareOptCtx is PrepareCtx with an optimization level: after the IR
// verifies, the whole object runs through compile/opt at the given level
// (verified after every pass and differentially executed against the
// unoptimized object), and decompilation, annotation, and covariates are
// computed from the optimized IR. opt.O0 is the identity — the pipeline
// is then byte-identical to PrepareCtx.
func PrepareOptCtx(ctx context.Context, s *Snippet, level opt.Level) (*Prepared, error) {
	// The snippet ID is the fault-injection item key for every stage this
	// snippet flows through (key-matched rules fire only on this snippet).
	ctx = fault.WithKey(ctx, s.ID)
	ctx, sp := obs.StartSpan(ctx, "corpus.Prepare",
		obs.KV("snippet", s.ID), obs.KV("opt", level.String()))
	defer sp.End()
	obs.Logger(ctx).Debug("preparing snippet", "snippet", s.ID, "func", s.FuncName, "opt", level.String())

	file, err := csrc.ParseCtx(ctx, s.Source, s.ExtraTypes)
	if err != nil {
		return nil, fmt.Errorf("%w: parsing snippet %s: %w", ErrPrepare, s.ID, err)
	}
	obj, err := compile.CompileCtx(ctx, file)
	if err != nil {
		return nil, fmt.Errorf("%w: compiling %s: %w", ErrPrepare, s.ID, err)
	}
	if err := verifyIR(ctx, s.ID, obj); err != nil {
		return nil, err
	}
	if obj, err = optimizeIR(ctx, s.ID, obj, level); err != nil {
		return nil, err
	}
	cf, ok := obj.Func0(s.FuncName)
	if !ok {
		return nil, fmt.Errorf("%w: snippet %s does not define %s", ErrPrepare, s.ID, s.FuncName)
	}
	d, err := decomp.LiftFuncCtx(ctx, cf)
	if err != nil {
		return nil, fmt.Errorf("%w: decompiling %s: %w", ErrPrepare, s.ID, err)
	}
	an := &namerec.Annotator{Opts: namerec.Options{
		Overrides:  s.DirtyOverrides,
		SwapParams: s.SwapParams,
	}}
	dirty, err := an.AnnotateCtx(ctx, d)
	if err != nil {
		return nil, fmt.Errorf("%w: annotating %s: %w", ErrPrepare, s.ID, err)
	}
	srcFn, ok := file.Function0(s.FuncName)
	if !ok {
		return nil, fmt.Errorf("%w: snippet %s lost function %s after parse", ErrPrepare, s.ID, s.FuncName)
	}
	return &Prepared{
		Snippet:    s,
		IR:         cf,
		OptLevel:   level,
		HexRays:    d,
		Dirty:      dirty,
		OrigSource: printFunc(srcFn),
	}, nil
}

// optimizeIR runs the object through compile/opt. Failures — an
// unverifiable pass output or a differential disagreement — exclude the
// snippet exactly like any other pipeline stage fault, with the
// structured diagnostics riding the error.
func optimizeIR(ctx context.Context, id string, obj *compile.Object, level opt.Level) (*compile.Object, error) {
	out, _, err := opt.OptimizeObject(ctx, obj, level)
	if err != nil {
		obs.AddCount(ctx, "corpus.opt.rejected", 1)
		return nil, fmt.Errorf("%w: optimizing %s at %s: %w", ErrPrepare, id, level, err)
	}
	return out, nil
}

// verifyIR rejects malformed compiled IR with structured diagnostics
// naming the offending block/instruction instead of letting
// decomp.LiftFunc fail opaquely; the diagnostics ride the per-snippet
// error that PrepareSnippets joins, and errors.Is(err,
// analysis.ErrMalformed) identifies the rejection.
func verifyIR(ctx context.Context, id string, obj *compile.Object) error {
	if verr := analysis.AsError(analysis.VerifyObject(ctx, obj), analysis.SevError); verr != nil {
		obs.AddCount(ctx, "corpus.verify.rejected", 1)
		return fmt.Errorf("%w: verifying IR of %s: %w", ErrPrepare, id, verr)
	}
	return nil
}

// PrepareAll prepares every study snippet.
func PrepareAll() ([]*Prepared, error) {
	return PrepareAllCtx(context.Background())
}

// PrepareAllCtx prepares every study snippet under a corpus.PrepareAll span.
func PrepareAllCtx(ctx context.Context) ([]*Prepared, error) {
	return PrepareSnippets(ctx, Snippets())
}

// PrepareAllOptCtx prepares every study snippet at the given optimization
// level.
func PrepareAllOptCtx(ctx context.Context, level opt.Level) ([]*Prepared, error) {
	return PrepareSnippetsOpt(ctx, Snippets(), level)
}

// PrepareSnippets prepares the given snippets, continuing past per-snippet
// failures. On error it returns the successfully prepared snippets together
// with every failure joined via errors.Join, so telemetry can report partial
// pipeline outcomes instead of only the first fault.
//
// Snippets fan out across the context's worker count (par.JobsFrom).
// Successes and failures are both assembled in input order regardless of
// completion order, so the returned slice and the joined error message are
// identical at any worker count.
func PrepareSnippets(ctx context.Context, snippets []*Snippet) ([]*Prepared, error) {
	return PrepareSnippetsOpt(ctx, snippets, opt.O0)
}

// PrepareSnippetsOpt is PrepareSnippets at an explicit optimization level.
func PrepareSnippetsOpt(ctx context.Context, snippets []*Snippet, level opt.Level) ([]*Prepared, error) {
	jobs := par.JobsFrom(ctx)
	ctx, sp := obs.StartSpan(ctx, "corpus.PrepareAll",
		obs.KV("snippets", len(snippets)), obs.KV("jobs", jobs), obs.KV("opt", level.String()))
	defer sp.End()
	obs.SetGauge(ctx, "corpus.prepare.jobs", float64(jobs))

	prepared, errs := par.MapAll(ctx, jobs, snippets, func(ctx context.Context, _ int, s *Snippet) (*Prepared, error) {
		p, err := PrepareOptCtx(ctx, s, level)
		if err != nil {
			obs.AddCount(ctx, "corpus.prepare.failed", 1)
			obs.Logger(ctx).Error("snippet preparation failed", "snippet", s.ID, "err", err)
			return nil, err
		}
		obs.AddCount(ctx, "corpus.prepare.ok", 1)
		return p, nil
	})

	out := make([]*Prepared, 0, len(snippets))
	var failed []error
	for i := range snippets {
		if errs[i] != nil {
			failed = append(failed, errs[i])
			// Cancellation fallout is the run dying, not this snippet being
			// bad — only genuine failures become manifest exclusions.
			if !errors.Is(errs[i], context.Canceled) && !errors.Is(errs[i], context.DeadlineExceeded) {
				fault.Exclude(ctx, "corpus", snippets[i].ID, errs[i])
			}
			continue
		}
		out = append(out, prepared[i])
	}
	if len(failed) > 0 {
		sp.SetAttr("failed", len(failed))
		return out, errors.Join(failed...)
	}
	return out, nil
}

func printFunc(fn *csrc.Function) string {
	return csrc.PrintFunction(fn, nil)
}

package corpus

import (
	"fmt"

	"decompstudy/internal/compile"
	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/namerec"
)

// Prepared is a snippet run through the full pipeline: parsed, compiled,
// decompiled, and annotated — both treatment arms ready to show.
type Prepared struct {
	Snippet *Snippet
	// HexRays is the control arm (plain decompiler output).
	HexRays *decomp.Decompiled
	// Dirty is the treatment arm (decompiler output with recovered names).
	Dirty *namerec.Annotated
	// OrigSource is the original function's pretty-printed source.
	OrigSource string
}

// Prepare runs one snippet through compile→decompile→annotate.
func Prepare(s *Snippet) (*Prepared, error) {
	file, err := s.Parse()
	if err != nil {
		return nil, err
	}
	obj, err := compile.Compile(file)
	if err != nil {
		return nil, fmt.Errorf("corpus: compiling %s: %w", s.ID, err)
	}
	cf, ok := obj.Func0(s.FuncName)
	if !ok {
		return nil, fmt.Errorf("corpus: snippet %s does not define %s", s.ID, s.FuncName)
	}
	d, err := decomp.LiftFunc(cf)
	if err != nil {
		return nil, fmt.Errorf("corpus: decompiling %s: %w", s.ID, err)
	}
	an := &namerec.Annotator{Opts: namerec.Options{
		Overrides:  s.DirtyOverrides,
		SwapParams: s.SwapParams,
	}}
	dirty, err := an.Annotate(d)
	if err != nil {
		return nil, fmt.Errorf("corpus: annotating %s: %w", s.ID, err)
	}
	srcFn, ok := file.Function0(s.FuncName)
	if !ok {
		return nil, fmt.Errorf("corpus: snippet %s lost function %s after parse", s.ID, s.FuncName)
	}
	return &Prepared{
		Snippet:    s,
		HexRays:    d,
		Dirty:      dirty,
		OrigSource: printFunc(srcFn),
	}, nil
}

// PrepareAll prepares every study snippet.
func PrepareAll() ([]*Prepared, error) {
	snippets := Snippets()
	out := make([]*Prepared, 0, len(snippets))
	for _, s := range snippets {
		p, err := Prepare(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func printFunc(fn *csrc.Function) string {
	return csrc.PrintFunction(fn, nil)
}

package embed

import (
	"bytes"
	"testing"
)

func marshalTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := Train([][]string{
		{"buffer_length", "buf", "cap", "len"},
		{"copy_bytes", "dest", "src", "n", "i"},
		{"find_char", "str", "ch", "len", "pos"},
	}, &Config{Dim: 8, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMarshalRoundTripBitIdentical(t *testing.T) {
	m := marshalTestModel(t)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := m2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("marshal(unmarshal(marshal(m))) differs from marshal(m)")
	}

	// The loaded model must behave exactly like the trained one: same
	// vocabulary, same vectors, same derived similarities.
	if m2.Dim() != m.Dim() || m2.VocabSize() != m.VocabSize() {
		t.Fatalf("shape mismatch: got dim=%d vocab=%d, want dim=%d vocab=%d",
			m2.Dim(), m2.VocabSize(), m.Dim(), m.VocabSize())
	}
	for _, pair := range [][2]string{{"buf", "dest"}, {"buffer_length", "len"}, {"str", "pos"}} {
		if a, b := m.Cosine(pair[0], pair[1]), m2.Cosine(pair[0], pair[1]); a != b {
			t.Errorf("Cosine(%s, %s): trained %v, loaded %v", pair[0], pair[1], a, b)
		}
	}
	near, err := m.Nearest("buf", 3)
	if err != nil {
		t.Fatal(err)
	}
	near2, err := m2.Nearest("buf", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range near {
		if near[i] != near2[i] {
			t.Fatalf("Nearest diverges: trained %v, loaded %v", near, near2)
		}
	}
}

func TestUnmarshalRejectsCorruptData(t *testing.T) {
	m := marshalTestModel(t)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"empty":      func([]byte) []byte { return nil },
		"bad-magic":  func(b []byte) []byte { b[0] = 'X'; return b },
		"truncated":  func(b []byte) []byte { return b[:len(b)-9] },
		"half-magic": func(b []byte) []byte { return b[:2] },
	} {
		t.Run(name, func(t *testing.T) {
			buf := append([]byte(nil), data...)
			if _, err := UnmarshalModel(mutate(buf)); err == nil {
				t.Error("UnmarshalModel accepted corrupt data")
			}
		})
	}
}

package embed

import (
	"sync"
	"sync/atomic"
)

// vecShards is the shard count of the identifier-vector cache; a power of
// two so the shard index is a mask of the identifier hash.
const vecShards = 16

// vecEntry is one memoized identifier embedding: the mean of the
// identifier's in-vocabulary subtoken vectors, its L2 norm, and whether
// any subtoken was known. The entry is immutable once published.
type vecEntry struct {
	vec   []float64
	norm  float64
	known bool
}

// vecCache memoizes per-identifier mean vectors and norms so the cosine
// miss path never re-tokenizes an identifier or recomputes its norm: both
// are computed once, at the identifier's first appearance anywhere in the
// metric battery, the panel, or BERTScore's sweeps.
type vecCache struct {
	shards [vecShards]vecShard
}

type vecShard struct {
	mu sync.RWMutex
	m  map[string]vecEntry
}

func newVecCache() *vecCache {
	c := &vecCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]vecEntry{}
	}
	return c
}

// identHash is FNV-1a over the identifier, used only for shard selection.
func identHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// identVec returns the memoized mean vector for an identifier, computing
// and publishing it on first use. Concurrent first lookups may both
// compute the entry; the arithmetic is deterministic, so the duplicates
// are identical and either may win the publish race.
func (m *Model) identVec(identifier string) vecEntry {
	s := &m.idvecs.shards[identHash(identifier)&(vecShards-1)]
	s.mu.RLock()
	e, ok := s.m[identifier]
	s.mu.RUnlock()
	if ok {
		return e
	}
	e = m.identVecUncached(identifier)
	s.mu.Lock()
	s.m[identifier] = e
	s.mu.Unlock()
	return e
}

// identEntries counts the memoized identifier vectors.
func (c *vecCache) entries() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// simShards is the shard count of the similarity memo-cache. A power of
// two so the shard index is a mask of the pair hash; 64 shards keep lock
// contention negligible even with every pipeline stage scoring pairs
// concurrently.
const simShards = 64

// simCache memoizes pairwise cosine similarities keyed by a content hash
// of the identifier pair. BERTScore and VarCLR revisit the same name pairs
// thousands of times per study run (precision and recall sweeps, the
// expert panel, the per-snippet metric reports), so a hit avoids the
// subtoken split, vector mean, and dot product each time.
//
// The cache is sharded: each shard guards its own map with a RWMutex, and
// the hit/miss counters are atomics, so concurrent scorers never serialize
// on a single lock.
type simCache struct {
	shards    [simShards]simShard
	hits      atomic.Int64
	misses    atomic.Int64
	missNanos atomic.Int64 // wall-clock spent computing misses
}

type simShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

func newSimCache() *simCache {
	c := &simCache{}
	for i := range c.shards {
		c.shards[i].m = map[uint64]float64{}
	}
	return c
}

// pairKey content-hashes an unordered identifier pair with FNV-1a,
// separating the two names with a byte that cannot appear in either (0xFF
// is not valid in identifiers), so ("ab","c") and ("a","bc") never
// collide. Cosine is symmetric, so the pair is canonicalized before
// hashing and (a,b) and (b,a) share one entry — which alone makes the
// recall sweep of a BERTScore call hit on the precision sweep's work.
func pairKey(a, b string) uint64 {
	if a > b {
		a, b = b, a
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	h ^= 0xFF
	h *= 1099511628211
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

func (c *simCache) get(k uint64) (float64, bool) {
	s := &c.shards[k&(simShards-1)]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

func (c *simCache) put(k uint64, v float64) {
	s := &c.shards[k&(simShards-1)]
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// CacheStats is a point-in-time reading of the similarity memo-cache.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
	// MissNanos is the cumulative wall-clock spent computing cache
	// misses; MissNanos/Misses is the average miss cost the obs layer
	// reports as embed.cache.miss_ns.
	MissNanos int64
	// IdentEntries counts the memoized per-identifier mean vectors (the
	// vecCache behind the miss path's plain-dot-product form).
	IdentEntries int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MissCostNs returns the average wall-clock nanoseconds per cache miss,
// or 0 before any miss.
func (s CacheStats) MissCostNs() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.MissNanos) / float64(s.Misses)
}

// CacheStats reports the model's memo-cache counters. All zeros before the
// first Cosine call (the cache is created lazily).
func (m *Model) CacheStats() CacheStats {
	c := m.simCache()
	st := CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		MissNanos:    c.missNanos.Load(),
		IdentEntries: m.idvecs.entries(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}

// simCache returns the model's memo-cache, creating it on first use. The
// lazy init goes through sync.Once: Cosine is called concurrently from the
// metric and panel fan-outs, and a bare nil-check-then-assign here is
// exactly the data race `go test -race` flags.
func (m *Model) simCache() *simCache {
	m.cacheOnce.Do(func() { m.cache = newSimCache() })
	return m.cache
}

package embed

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSplitIdentifier(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"buffer_append_path_len", []string{"buffer", "append", "path", "len"}},
		{"bufAppendPathLen", []string{"buf", "append", "path", "len"}},
		{"SSLKey", []string{"ssl", "key"}},
		{"array_t_0", []string{"array", "t", "0"}},
		{"v7", []string{"v", "7"}},
		{"__int64", []string{"int", "64"}},
		{"klen", []string{"klen"}},
		{"", nil},
		{"a1", []string{"a", "1"}},
		{"twosComplement2Buf", []string{"twos", "complement", "2", "buf"}},
	}
	for _, c := range cases {
		if got := SplitIdentifier(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitIdentifier(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// trainingCorpus mimics identifier co-occurrence in C code: size/length
// appear in the same contexts, as do src/dest/copy.
func trainingCorpus() [][]string {
	base := [][]string{
		{"buf", "size", "len", "length", "alloc", "size"},
		{"buffer", "length", "size", "capacity", "len"},
		{"array", "size", "length", "count", "elems"},
		{"str", "len", "length", "size", "strlen"},
		{"src", "dest", "copy", "memcpy", "n"},
		{"source", "destination", "copy", "bytes"},
		{"src", "dst", "copy", "move", "len"},
		{"key", "value", "map", "hash", "lookup"},
		{"key", "index", "lookup", "table", "entry"},
		{"tree", "node", "left", "right", "parent"},
		{"node", "tree", "traverse", "visit", "postorder"},
		{"fd", "file", "open", "read", "write"},
		{"file", "path", "name", "open", "close"},
		{"ret", "result", "return", "status", "code"},
		{"err", "error", "status", "ret", "code"},
	}
	// Repeat to strengthen the counts.
	var out [][]string
	for i := 0; i < 6; i++ {
		out = append(out, base...)
	}
	return out
}

func trainTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := Train(trainingCorpus(), &Config{Dim: 16})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, nil); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
	if _, err := Train([][]string{{}}, nil); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
}

func TestSemanticNeighborsBeatUnrelated(t *testing.T) {
	m := trainTestModel(t)
	// The motivating RQ5 example: size ~ length are semantically close
	// despite maximal edit distance.
	simSemantic := m.Cosine("size", "length")
	simUnrelated := m.Cosine("size", "tree")
	if simSemantic <= simUnrelated {
		t.Errorf("cosine(size,length)=%v should exceed cosine(size,tree)=%v", simSemantic, simUnrelated)
	}
	if sim := m.Cosine("src", "dest"); sim <= m.Cosine("src", "parent") {
		t.Errorf("cosine(src,dest)=%v should exceed cosine(src,parent)=%v", sim, m.Cosine("src", "parent"))
	}
}

func TestCosineSelfSimilarity(t *testing.T) {
	m := trainTestModel(t)
	if sim := m.Cosine("size", "size"); math.Abs(sim-1) > 1e-9 {
		t.Errorf("cosine(size,size) = %v, want 1", sim)
	}
}

func TestCosineOOVFallback(t *testing.T) {
	m := trainTestModel(t)
	if sim := m.Cosine("zzzqqq", "zzzqqq"); sim != 1 {
		t.Errorf("OOV self-similarity = %v, want 1", sim)
	}
	if sim := m.Cosine("zzzqqq", "wwwwpp"); sim != 0 {
		t.Errorf("OOV cross-similarity = %v, want 0", sim)
	}
}

func TestVectorUnknownToken(t *testing.T) {
	m := trainTestModel(t)
	if _, err := m.Vector("qqqzzz"); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v, want ErrUnknownToken", err)
	}
}

func TestCompoundIdentifierVector(t *testing.T) {
	m := trainTestModel(t)
	// A compound identifier embeds as the mean of its parts.
	v, err := m.Vector("buffer_length")
	if err != nil {
		t.Fatalf("Vector: %v", err)
	}
	if len(v) != m.Dim() {
		t.Fatalf("vector dim = %d, want %d", len(v), m.Dim())
	}
	if !m.Contains("bufferLength") {
		t.Error("Contains should see camelCase variant subtokens")
	}
}

func TestNearest(t *testing.T) {
	m := trainTestModel(t)
	near, err := m.Nearest("size", 5)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(near) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(near))
	}
	if near[0] != "size" {
		t.Errorf("nearest to size = %v, want size itself first", near[0])
	}
	found := false
	for _, tok := range near {
		if tok == "length" || tok == "len" {
			found = true
		}
	}
	if !found {
		t.Errorf("neighbors of size = %v, want length/len among them", near)
	}
}

func TestNearestUnknown(t *testing.T) {
	m := trainTestModel(t)
	if _, err := m.Nearest("qqqzzz", 3); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v, want ErrUnknownToken", err)
	}
}

func TestModelDeterminism(t *testing.T) {
	m1 := trainTestModel(t)
	m2 := trainTestModel(t)
	if s1, s2 := m1.Cosine("size", "length"), m2.Cosine("size", "length"); s1 != s2 {
		t.Errorf("training is not deterministic: %v vs %v", s1, s2)
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestQuickCosineSymmetricBounded(t *testing.T) {
	m := trainTestModel(t)
	words := []string{"size", "length", "tree", "node", "src", "dest", "key", "file", "ret", "err"}
	f := func(ai, bi uint8) bool {
		a := words[int(ai)%len(words)]
		b := words[int(bi)%len(words)]
		s1, s2 := m.Cosine(a, b), m.Cosine(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= -1-1e-9 && s1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: splitting is idempotent — splitting a subtoken yields itself.
func TestQuickSplitIdempotent(t *testing.T) {
	f := func(raw string) bool {
		for _, tok := range SplitIdentifier(raw) {
			again := SplitIdentifier(tok)
			if len(again) != 1 || again[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

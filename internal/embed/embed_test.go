package embed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"decompstudy/internal/par"
)

func TestSplitIdentifier(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"buffer_append_path_len", []string{"buffer", "append", "path", "len"}},
		{"bufAppendPathLen", []string{"buf", "append", "path", "len"}},
		{"SSLKey", []string{"ssl", "key"}},
		{"array_t_0", []string{"array", "t", "0"}},
		{"v7", []string{"v", "7"}},
		{"__int64", []string{"int", "64"}},
		{"klen", []string{"klen"}},
		{"", nil},
		{"a1", []string{"a", "1"}},
		{"twosComplement2Buf", []string{"twos", "complement", "2", "buf"}},
	}
	for _, c := range cases {
		if got := SplitIdentifier(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitIdentifier(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// trainingCorpus mimics identifier co-occurrence in C code: size/length
// appear in the same contexts, as do src/dest/copy.
func trainingCorpus() [][]string {
	base := [][]string{
		{"buf", "size", "len", "length", "alloc", "size"},
		{"buffer", "length", "size", "capacity", "len"},
		{"array", "size", "length", "count", "elems"},
		{"str", "len", "length", "size", "strlen"},
		{"src", "dest", "copy", "memcpy", "n"},
		{"source", "destination", "copy", "bytes"},
		{"src", "dst", "copy", "move", "len"},
		{"key", "value", "map", "hash", "lookup"},
		{"key", "index", "lookup", "table", "entry"},
		{"tree", "node", "left", "right", "parent"},
		{"node", "tree", "traverse", "visit", "postorder"},
		{"fd", "file", "open", "read", "write"},
		{"file", "path", "name", "open", "close"},
		{"ret", "result", "return", "status", "code"},
		{"err", "error", "status", "ret", "code"},
	}
	// Repeat to strengthen the counts.
	var out [][]string
	for i := 0; i < 6; i++ {
		out = append(out, base...)
	}
	return out
}

func trainTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := Train(trainingCorpus(), &Config{Dim: 16})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, nil); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
	if _, err := Train([][]string{{}}, nil); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
}

func TestSemanticNeighborsBeatUnrelated(t *testing.T) {
	m := trainTestModel(t)
	// The motivating RQ5 example: size ~ length are semantically close
	// despite maximal edit distance.
	simSemantic := m.Cosine("size", "length")
	simUnrelated := m.Cosine("size", "tree")
	if simSemantic <= simUnrelated {
		t.Errorf("cosine(size,length)=%v should exceed cosine(size,tree)=%v", simSemantic, simUnrelated)
	}
	if sim := m.Cosine("src", "dest"); sim <= m.Cosine("src", "parent") {
		t.Errorf("cosine(src,dest)=%v should exceed cosine(src,parent)=%v", sim, m.Cosine("src", "parent"))
	}
}

func TestCosineSelfSimilarity(t *testing.T) {
	m := trainTestModel(t)
	if sim := m.Cosine("size", "size"); math.Abs(sim-1) > 1e-9 {
		t.Errorf("cosine(size,size) = %v, want 1", sim)
	}
}

func TestCosineOOVFallback(t *testing.T) {
	m := trainTestModel(t)
	if sim := m.Cosine("zzzqqq", "zzzqqq"); sim != 1 {
		t.Errorf("OOV self-similarity = %v, want 1", sim)
	}
	if sim := m.Cosine("zzzqqq", "wwwwpp"); sim != 0 {
		t.Errorf("OOV cross-similarity = %v, want 0", sim)
	}
}

func TestVectorUnknownToken(t *testing.T) {
	m := trainTestModel(t)
	if _, err := m.Vector("qqqzzz"); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v, want ErrUnknownToken", err)
	}
}

func TestCompoundIdentifierVector(t *testing.T) {
	m := trainTestModel(t)
	// A compound identifier embeds as the mean of its parts.
	v, err := m.Vector("buffer_length")
	if err != nil {
		t.Fatalf("Vector: %v", err)
	}
	if len(v) != m.Dim() {
		t.Fatalf("vector dim = %d, want %d", len(v), m.Dim())
	}
	if !m.Contains("bufferLength") {
		t.Error("Contains should see camelCase variant subtokens")
	}
}

func TestNearest(t *testing.T) {
	m := trainTestModel(t)
	near, err := m.Nearest("size", 5)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(near) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(near))
	}
	if near[0] != "size" {
		t.Errorf("nearest to size = %v, want size itself first", near[0])
	}
	found := false
	for _, tok := range near {
		if tok == "length" || tok == "len" {
			found = true
		}
	}
	if !found {
		t.Errorf("neighbors of size = %v, want length/len among them", near)
	}
}

func TestNearestUnknown(t *testing.T) {
	m := trainTestModel(t)
	if _, err := m.Nearest("qqqzzz", 3); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v, want ErrUnknownToken", err)
	}
}

func TestModelDeterminism(t *testing.T) {
	m1 := trainTestModel(t)
	m2 := trainTestModel(t)
	if s1, s2 := m1.Cosine("size", "length"), m2.Cosine("size", "length"); s1 != s2 {
		t.Errorf("training is not deterministic: %v vs %v", s1, s2)
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestQuickCosineSymmetricBounded(t *testing.T) {
	m := trainTestModel(t)
	words := []string{"size", "length", "tree", "node", "src", "dest", "key", "file", "ret", "err"}
	f := func(ai, bi uint8) bool {
		a := words[int(ai)%len(words)]
		b := words[int(bi)%len(words)]
		s1, s2 := m.Cosine(a, b), m.Cosine(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= -1-1e-9 && s1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: splitting is idempotent — splitting a subtoken yields itself.
func TestQuickSplitIdempotent(t *testing.T) {
	f := func(raw string) bool {
		for _, tok := range SplitIdentifier(raw) {
			again := SplitIdentifier(tok)
			if len(again) != 1 || again[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineCacheHitsAndSymmetry(t *testing.T) {
	m := trainTestModel(t)
	a := m.Cosine("size", "length")
	st := m.CacheStats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("first lookup should miss and populate: %+v", st)
	}
	// Repeat and reversed lookups must hit the same entry: the key is a
	// content hash of the canonicalized (unordered) pair.
	b := m.Cosine("size", "length")
	c := m.Cosine("length", "size")
	if a != b || a != c {
		t.Fatalf("cached values diverge: %v %v %v", a, b, c)
	}
	st2 := m.CacheStats()
	if st2.Hits < st.Hits+2 {
		t.Errorf("hits = %d, want ≥ %d (repeat + reversed lookup)", st2.Hits, st.Hits+2)
	}
	if st2.Entries != st.Entries {
		t.Errorf("reversed lookup added an entry: %d → %d", st.Entries, st2.Entries)
	}
	if st2.HitRate() <= 0 {
		t.Errorf("hit rate = %v, want > 0", st2.HitRate())
	}
}

func TestCosineCacheMatchesUncached(t *testing.T) {
	m := trainTestModel(t)
	pairs := [][2]string{
		{"size", "length"}, {"buf", "buffer"}, {"zzzqqq", "zzzqqq"},
		{"node", "tree"}, {"src", "dest"}, {"pathLen", "path_len"},
	}
	for _, p := range pairs {
		cached := m.Cosine(p[0], p[1])
		again := m.Cosine(p[0], p[1])
		raw := m.cosineUncached(p[0], p[1])
		if cached != raw || again != raw {
			t.Errorf("Cosine(%q,%q): cached %v vs raw %v", p[0], p[1], cached, raw)
		}
	}
}

// TestCosineConcurrent drives the lazily-initialized memo-cache from many
// goroutines; under -race this pins down the sync.Once init and the
// sharded map locking.
func TestCosineConcurrent(t *testing.T) {
	m := trainTestModel(t)
	words := []string{"size", "length", "buf", "tree", "node", "src", "dest", "path"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := words[(i+w)%len(words)]
				b := words[(i*3+w)%len(words)]
				if v := m.Cosine(a, b); math.IsNaN(v) {
					t.Errorf("Cosine(%q,%q) = NaN", a, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.CacheStats()
	if st.HitRate() < 0.5 {
		t.Errorf("hit rate %v after 1600 lookups of %d pairs, want > 0.5", st.HitRate(), st.Entries)
	}
}

func TestPairKeySeparatorPreventsConcatCollision(t *testing.T) {
	if pairKey("ab", "c") == pairKey("a", "bc") {
		t.Error("pair key must separate the two names")
	}
	if pairKey("x", "y") != pairKey("y", "x") {
		t.Error("pair key must canonicalize the unordered pair")
	}
}

// TestTrainParallelDeterminism: training is bit-identical at any worker
// count (row-parallel PPMI and matvec chunks keep per-row arithmetic
// order). The synthetic corpus pushes the vocabulary past mulVecPar's
// 64-rows-per-worker threshold so the chunked matvec path actually runs —
// the small trainingCorpus alone would silently fall back to the
// sequential product and test nothing.
func TestTrainParallelDeterminism(t *testing.T) {
	contexts := trainingCorpus()
	for i := 0; i < 200; i++ {
		contexts = append(contexts, []string{
			fmt.Sprintf("tok%dAlpha", i), fmt.Sprintf("tok%dBeta", i), "size", "buf",
		})
	}
	seq, err := TrainCtx(par.WithJobs(context.Background(), 1), contexts, &Config{Dim: 16})
	if err != nil {
		t.Fatalf("jobs=1: %v", err)
	}
	if v := seq.VocabSize(); v < 2*64 {
		t.Fatalf("vocab = %d, too small to exercise the parallel matvec path", v)
	}
	for _, jobs := range []int{2, 8} {
		m, err := TrainCtx(par.WithJobs(context.Background(), jobs), contexts, &Config{Dim: 16})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := 0; i < seq.VocabSize(); i++ {
			for j := 0; j < seq.Dim(); j++ {
				if a, b := seq.vectors.At(i, j), m.vectors.At(i, j); a != b {
					t.Fatalf("jobs=%d: vectors[%d,%d] (%s) = %v, sequential %v", jobs, i, j, seq.tokens[i], b, a)
				}
			}
		}
		for _, pair := range [][2]string{{"size", "length"}, {"src", "dest"}, {"buf", "tree"}} {
			if a, b := seq.Cosine(pair[0], pair[1]), m.Cosine(pair[0], pair[1]); a != b {
				t.Errorf("jobs=%d: Cosine(%q,%q) = %v, sequential %v", jobs, pair[0], pair[1], b, a)
			}
		}
	}
}

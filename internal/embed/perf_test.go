package embed

import (
	"fmt"
	"math"
	"testing"

	"decompstudy/internal/linalg"
)

// TestIdentVecMatchesUncached checks the memoized identifier-vector path
// returns exactly what the direct computation does, including the norm.
func TestIdentVecMatchesUncached(t *testing.T) {
	m := trainTestModel(t)
	for _, id := range []string{"size", "buffer_len", "treeNode", "zzzqqq", ""} {
		want := m.identVecUncached(id)
		got := m.identVec(id)
		if got.known != want.known {
			t.Fatalf("identVec(%q).known = %v, want %v", id, got.known, want.known)
		}
		if math.Float64bits(got.norm) != math.Float64bits(want.norm) {
			t.Fatalf("identVec(%q).norm = %v, want %v", id, got.norm, want.norm)
		}
		if len(got.vec) != len(want.vec) {
			t.Fatalf("identVec(%q) length %d, want %d", id, len(got.vec), len(want.vec))
		}
		for i := range got.vec {
			if math.Float64bits(got.vec[i]) != math.Float64bits(want.vec[i]) {
				t.Fatalf("identVec(%q)[%d] = %v, want %v", id, i, got.vec[i], want.vec[i])
			}
		}
	}
}

// TestUnitRowsMatchNormalizedVectors checks the train-time normalization:
// unit rows are the subtoken vectors scaled by 1/norm, zero rows stay zero.
func TestUnitRowsMatchNormalizedVectors(t *testing.T) {
	m := trainTestModel(t)
	for id := 0; id < m.vectors.Rows(); id++ {
		row := m.vectors.RowView(id)
		norm := math.Sqrt(linalg.Dot(row, row))
		if math.Float64bits(norm) != math.Float64bits(m.rowNorm[id]) {
			t.Fatalf("rowNorm[%d] = %v, want %v", id, m.rowNorm[id], norm)
		}
		unit := m.unit.RowView(id)
		if norm == 0 {
			for j, v := range unit {
				if v != 0 {
					t.Fatalf("unit row %d entry %d = %v for zero vector", id, j, v)
				}
			}
			continue
		}
		for j, v := range row {
			if math.Float64bits(unit[j]) != math.Float64bits(v/norm) {
				t.Fatalf("unit[%d][%d] = %v, want %v", id, j, unit[j], v/norm)
			}
		}
	}
}

// TestCacheStatsMissCost checks the miss-cost and identifier-entry counters
// the obs layer reports as embed.cache.miss_ns / ident_entries.
func TestCacheStatsMissCost(t *testing.T) {
	m := trainTestModel(t)
	m.Cosine("size", "length")
	m.Cosine("size", "tree")
	st := m.CacheStats()
	if st.Misses == 0 {
		t.Fatal("expected cache misses")
	}
	if st.MissNanos <= 0 {
		t.Errorf("MissNanos = %d, want > 0", st.MissNanos)
	}
	if st.MissCostNs() <= 0 {
		t.Errorf("MissCostNs = %v, want > 0", st.MissCostNs())
	}
	if st.IdentEntries < 3 {
		t.Errorf("IdentEntries = %d, want >= 3 (size, length, tree)", st.IdentEntries)
	}
	if (CacheStats{}).MissCostNs() != 0 {
		t.Error("zero-value MissCostNs should be 0")
	}
}

// TestCosineMissAllocs pins the allocation budget of the cache-miss path
// once the identifier vectors are warm: a miss is then one sharded map
// insert (key + value boxing), not a re-tokenization.
func TestCosineMissAllocs(t *testing.T) {
	m := trainTestModel(t)
	// Warm the identifier-vector cache with a pool of names, then measure
	// misses over fresh *pairs* of warm identifiers.
	pool := make([]string, 256)
	for i := range pool {
		pool[i] = fmt.Sprintf("size%d", i)
		m.identVec(pool[i])
	}
	i, j := 0, 1
	avg := testing.AllocsPerRun(200, func() {
		m.Cosine(pool[i], pool[j])
		j++
		if j == len(pool) {
			i++
			j = i + 1
		}
	})
	// One map insert per miss: the similarity value boxes into the shard
	// map and the map occasionally grows. Pre-rewrite this path cost ~20
	// allocations (SplitIdentifier, mean vector, norm recomputation).
	if avg > 3 {
		t.Errorf("cosine miss path allocates %.1f per call, want <= 3", avg)
	}
}

// TestCosineHitAllocs pins the hit path at zero allocations.
func TestCosineHitAllocs(t *testing.T) {
	m := trainTestModel(t)
	m.Cosine("size", "length") // populate
	avg := testing.AllocsPerRun(200, func() {
		m.Cosine("size", "length")
		m.Cosine("length", "size")
	})
	if avg != 0 {
		t.Errorf("cosine hit path allocates %.1f per call, want 0", avg)
	}
}

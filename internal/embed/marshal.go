package embed

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"decompstudy/internal/linalg"
	"decompstudy/internal/obs"
)

// Binary model format. The canonical trained state is (tokens, vectors):
// the vocabulary map, row norms, unit rows, and both memo caches are all
// recomputed deterministically from the vectors on load, so a round-trip
// yields a model whose every query answer is bit-identical to the fresh
// train. Floats travel as IEEE-754 bit patterns (math.Float64bits), never
// through decimal formatting, so no precision is lost.
const (
	marshalMagic   = "DSEM" // decompstudy embed model
	marshalVersion = 1
)

// MarshalBinary serializes the model's canonical trained state. The
// encoding is deterministic: tokens in vocabulary-index order, vector rows
// in the same order, every float as its exact bit pattern — two models
// trained from the same corpus marshal to the same bytes.
func (m *Model) MarshalBinary() ([]byte, error) {
	rows, cols := m.vectors.Rows(), m.vectors.Cols()
	if rows != len(m.tokens) {
		return nil, fmt.Errorf("embed: marshal: %d tokens vs %d vector rows", len(m.tokens), rows)
	}
	var buf []byte
	buf = append(buf, marshalMagic...)
	buf = binary.AppendUvarint(buf, marshalVersion)
	buf = binary.AppendUvarint(buf, uint64(m.dim))
	buf = binary.AppendUvarint(buf, uint64(rows))
	buf = binary.AppendUvarint(buf, uint64(cols))
	for _, tok := range m.tokens {
		buf = binary.AppendUvarint(buf, uint64(len(tok)))
		buf = append(buf, tok...)
	}
	for i := 0; i < rows; i++ {
		for _, x := range m.vectors.RowView(i) {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	return buf, nil
}

// UnmarshalModel reconstructs a model from MarshalBinary output. The
// derived state (vocabulary index, normalization, caches) is rebuilt
// exactly as TrainCtx builds it, so the loaded model is indistinguishable
// from the one that was serialized.
func UnmarshalModel(data []byte) (*Model, error) {
	r := reader{data: data}
	if string(r.bytes(len(marshalMagic))) != marshalMagic {
		return nil, fmt.Errorf("embed: unmarshal: bad magic")
	}
	if v := r.uvarint(); v != marshalVersion {
		return nil, fmt.Errorf("embed: unmarshal: unsupported format version %d", v)
	}
	dim := int(r.uvarint())
	rows := int(r.uvarint())
	cols := int(r.uvarint())
	if r.err != nil {
		return nil, fmt.Errorf("embed: unmarshal: truncated header: %w", r.err)
	}
	// Trained models always have cols == dim (Train clamps dim to |V| before
	// factorizing), and the token table can't outnumber the payload bytes.
	if dim < 0 || rows < 0 || cols != dim || rows > len(data) {
		return nil, fmt.Errorf("embed: unmarshal: implausible dimensions %dx%d (dim %d)", rows, cols, dim)
	}
	tokens := make([]string, rows)
	vocab := make(map[string]int, rows)
	for i := range tokens {
		n := int(r.uvarint())
		if r.err != nil || n > r.remaining() {
			return nil, fmt.Errorf("embed: unmarshal: truncated token table")
		}
		tokens[i] = string(r.bytes(n))
		vocab[tokens[i]] = i
	}
	vectors := linalg.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		row := vectors.RowView(i)
		for j := range row {
			row[j] = math.Float64frombits(r.uint64())
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("embed: unmarshal: truncated vectors: %w", r.err)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("embed: unmarshal: %d trailing bytes", r.remaining())
	}
	m := &Model{vocab: vocab, tokens: tokens, vectors: vectors, dim: dim, idvecs: newVecCache()}
	m.normalize()
	return m, nil
}

// BindObs attaches the live cache-lookup counters a freshly trained model
// gets from TrainCtx, so a model loaded from the store reports telemetry
// identically. It must be called before the model is shared across
// goroutines (the store binds during the single-flight build).
func (m *Model) BindObs(ctx context.Context) {
	if o := obs.From(ctx); o != nil && o.Metrics != nil {
		m.obsHits = o.Metrics.CounterL("embed.cache.lookups", obs.L("result", "hit"))
		m.obsMisses = o.Metrics.CounterL("embed.cache.lookups", obs.L("result", "miss"))
	}
}

// Resolved returns the configuration with defaults applied — the exact
// parameters a Train call with this config uses, which is what a
// content-addressed cache must key on.
func (c *Config) Resolved() Config { return c.defaults() }

// reader is a minimal cursor over a marshal buffer that latches the first
// decode error instead of forcing a check per field.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes, have %d", n, r.remaining())
		}
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) uint64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

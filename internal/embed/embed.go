// Package embed trains small distributional embeddings for identifier
// tokens, standing in for the BERT and VarCLR encoders used by the paper's
// semantic similarity metrics (BERTScore F1 and VarCLR).
//
// The pipeline is classical: identifiers are split into subtokens
// (snake_case, camelCase, digits), a token-token co-occurrence matrix is
// accumulated over a corpus of identifier contexts, the matrix is
// reweighted with positive pointwise mutual information (PPMI), and a
// low-rank representation is extracted by truncated SVD via orthogonal
// power iteration. Cosine similarity in the resulting space captures
// semantic relatedness (e.g. "size" ≈ "length") that the paper's
// surface-level metrics miss — exactly the contrast RQ5 investigates.
package embed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"decompstudy/internal/linalg"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// ErrEmptyCorpus is returned when training is attempted on an empty corpus.
var ErrEmptyCorpus = errors.New("embed: empty corpus")

// ErrUnknownToken is returned when a similarity query involves only
// out-of-vocabulary tokens.
var ErrUnknownToken = errors.New("embed: token not in vocabulary")

// SplitIdentifier splits an identifier into lowercase subtokens on
// underscores, camelCase boundaries, and digit group boundaries.
// "bufAppendPathLen2" → ["buf", "append", "path", "len", "2"].
func SplitIdentifier(id string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(id)
	for i, r := range runes {
		switch {
		case r == '_' || r == ' ' || r == '-':
			flush()
		case unicode.IsUpper(r):
			// Boundary before an upper rune that follows a lower rune, or
			// that begins a new word after an acronym run (e.g. "SSLKey").
			if i > 0 && (unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1])) {
				flush()
			} else if i > 0 && unicode.IsUpper(runes[i-1]) && i+1 < len(runes) && unicode.IsLower(runes[i+1]) {
				flush()
			}
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// Model is a trained embedding space over identifier subtokens. The
// query methods are safe for concurrent use: the trained state is
// immutable, and the similarity memo-cache (see cache.go) synchronizes
// internally.
type Model struct {
	vocab   map[string]int
	tokens  []string
	vectors *linalg.Matrix // |V| × dim
	dim     int

	// cache memoizes pairwise cosine similarities; created lazily on the
	// first Cosine call via cacheOnce (see simCache).
	cacheOnce sync.Once
	cache     *simCache
}

// Config controls training.
type Config struct {
	// Dim is the embedding dimensionality. Zero means 32 (or |V| if the
	// vocabulary is smaller).
	Dim int
	// Window is the co-occurrence window radius within a context. Zero
	// means 4.
	Window int
	// Iterations is the power-iteration count per component. Zero means 40.
	Iterations int
}

func (c *Config) defaults() Config {
	out := Config{Dim: 32, Window: 4, Iterations: 40}
	if c == nil {
		return out
	}
	if c.Dim > 0 {
		out.Dim = c.Dim
	}
	if c.Window > 0 {
		out.Window = c.Window
	}
	if c.Iterations > 0 {
		out.Iterations = c.Iterations
	}
	return out
}

// Train builds an embedding model from a corpus of contexts. Each context
// is a sequence of identifiers that appear together (for this project: the
// identifiers of one function, in source order). Identifiers are split into
// subtokens before windowed co-occurrence counting.
func Train(contexts [][]string, cfg *Config) (*Model, error) {
	return TrainCtx(context.Background(), contexts, cfg)
}

// TrainCtx is Train with telemetry: an embed.Train span plus corpus-size
// counters when the context carries an obs handle.
func TrainCtx(octx context.Context, contexts [][]string, cfg *Config) (*Model, error) {
	_, sp := obs.StartSpan(octx, "embed.Train", obs.KV("contexts", len(contexts)))
	defer sp.End()
	obs.AddCount(octx, "embed.train.calls", 1)
	c := cfg.defaults()

	// Tokenize contexts and build the vocabulary.
	vocab := map[string]int{}
	var tokens []string
	tokenized := make([][]int, 0, len(contexts))
	for _, ctx := range contexts {
		var ids []int
		for _, ident := range ctx {
			for _, tok := range SplitIdentifier(ident) {
				id, ok := vocab[tok]
				if !ok {
					id = len(tokens)
					vocab[tok] = id
					tokens = append(tokens, tok)
				}
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			tokenized = append(tokenized, ids)
		}
	}
	v := len(tokens)
	if v == 0 {
		return nil, ErrEmptyCorpus
	}
	sp.SetAttr("vocab", v)

	// Windowed co-occurrence counts (symmetric).
	co := linalg.NewMatrix(v, v)
	rowSum := make([]float64, v)
	var total float64
	for _, ids := range tokenized {
		for i, a := range ids {
			hi := i + c.Window
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			for j := i + 1; j <= hi; j++ {
				b := ids[j]
				co.Add(a, b, 1)
				co.Add(b, a, 1)
				rowSum[a]++
				rowSum[b]++
				total += 2
			}
			// Self-count keeps singleton contexts in-vocabulary.
			co.Add(a, a, 1)
			rowSum[a]++
			total++
		}
	}

	// PPMI reweighting: max(0, log(p(a,b) / (p(a)p(b)))). Rows are
	// independent, so the O(|V|²) sweep fans out across row chunks; every
	// chunk writes a disjoint row range, and per-cell arithmetic is
	// unchanged, so the matrix is byte-identical at any worker count.
	jobs := par.JobsFrom(octx)
	sp.SetAttr("jobs", jobs)
	ppmi := linalg.NewMatrix(v, v)
	if _, err := par.Map(octx, jobs, par.Chunks(v, jobs), func(_ context.Context, _ int, ch [2]int) (struct{}, error) {
		for a := ch[0]; a < ch[1]; a++ {
			for b := 0; b < v; b++ {
				n := co.At(a, b)
				if n == 0 {
					continue
				}
				val := math.Log(n * total / (rowSum[a] * rowSum[b]))
				if val > 0 {
					ppmi.Set(a, b, val)
				}
			}
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, fmt.Errorf("embed: reweighting PPMI matrix: %w", err)
	}

	dim := c.Dim
	if dim > v {
		dim = v
	}
	vectors, err := truncatedEig(ppmi, dim, c.Iterations, jobs)
	if err != nil {
		return nil, fmt.Errorf("embed: factorizing PPMI matrix: %w", err)
	}
	return &Model{vocab: vocab, tokens: tokens, vectors: vectors, dim: dim}, nil
}

// truncatedEig extracts the top-k eigenpairs of a symmetric matrix by
// orthogonalized power iteration and returns the |V|×k matrix of
// eigenvector columns scaled by sqrt(|eigenvalue|) (the symmetric-SVD
// embedding convention). The matrix-vector products — the O(|V|²) inner
// loop the iteration spends its time in — are row-parallel across jobs
// workers; each row's dot product keeps its sequential arithmetic order,
// so the factorization is bit-identical at any worker count.
func truncatedEig(m *linalg.Matrix, k, iters, jobs int) (*linalg.Matrix, error) {
	v := m.Rows()
	out := linalg.NewMatrix(v, k)
	// Deterministic pseudo-random start vectors.
	basis := make([][]float64, 0, k)
	for comp := 0; comp < k; comp++ {
		x := make([]float64, v)
		seed := uint64(comp)*2654435761 + 12345
		for i := range x {
			seed = seed*6364136223846793005 + 1442695040888963407
			x[i] = float64(int64(seed>>33))/float64(1<<30) - 1
		}
		var lambda float64
		for it := 0; it < iters; it++ {
			// Deflate against previously found eigenvectors.
			for _, b := range basis {
				linalg.AXPY(-linalg.Dot(b, x), b, x)
			}
			y, err := mulVecPar(m, x, jobs)
			if err != nil {
				return nil, err
			}
			for _, b := range basis {
				linalg.AXPY(-linalg.Dot(b, y), b, y)
			}
			norm := linalg.Norm2(y)
			if norm < 1e-12 {
				// Matrix rank exhausted; remaining components are zero.
				lambda = 0
				break
			}
			lambda = linalg.Dot(x, y)
			linalg.Scale(1/norm, y)
			x = y
		}
		basis = append(basis, x)
		scale := math.Sqrt(math.Abs(lambda))
		for i := 0; i < v; i++ {
			out.Set(i, comp, x[i]*scale)
		}
	}
	return out, nil
}

// mulVecPar is a row-parallel matrix-vector product. Below the size
// threshold (or single-worker) it is exactly linalg.MulVec; above it,
// row chunks fan out and each worker writes a disjoint slice of y.
func mulVecPar(m *linalg.Matrix, x []float64, jobs int) ([]float64, error) {
	const minRowsPerWorker = 64
	rows := m.Rows()
	if maxJobs := rows / minRowsPerWorker; jobs > maxJobs {
		jobs = maxJobs
	}
	if jobs <= 1 {
		return linalg.MulVec(m, x)
	}
	if m.Cols() != len(x) {
		return nil, fmt.Errorf("embed: mulVec dimension mismatch: %d cols vs %d", m.Cols(), len(x))
	}
	y := make([]float64, rows)
	if _, err := par.Map(context.Background(), jobs, par.Chunks(rows, jobs), func(_ context.Context, _ int, ch [2]int) (struct{}, error) {
		for i := ch[0]; i < ch[1]; i++ {
			y[i] = linalg.Dot(m.Row(i), x)
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}
	return y, nil
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of subtokens in the vocabulary.
func (m *Model) VocabSize() int { return len(m.tokens) }

// Contains reports whether at least one subtoken of the identifier is in
// the vocabulary.
func (m *Model) Contains(identifier string) bool {
	for _, tok := range SplitIdentifier(identifier) {
		if _, ok := m.vocab[tok]; ok {
			return true
		}
	}
	return false
}

// Vector returns the embedding of an identifier: the mean of its in-
// vocabulary subtoken vectors. It returns ErrUnknownToken if no subtoken is
// known.
func (m *Model) Vector(identifier string) ([]float64, error) {
	sum := make([]float64, m.dim)
	n := 0
	for _, tok := range SplitIdentifier(identifier) {
		id, ok := m.vocab[tok]
		if !ok {
			continue
		}
		for j := 0; j < m.dim; j++ {
			sum[j] += m.vectors.At(id, j)
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("embed: %q: %w", identifier, ErrUnknownToken)
	}
	linalg.Scale(1/float64(n), sum)
	return sum, nil
}

// Cosine returns the cosine similarity of two identifiers' embeddings in
// [-1, 1]. Out-of-vocabulary identifiers fall back to exact-match
// similarity (1 if equal, 0 otherwise), mirroring how the paper's
// embedding metrics degrade on unseen names. Results are memoized in the
// model's sharded content-hash cache, so repeated pairs — the common case
// in BERTScore's bidirectional token sweeps — cost one map lookup.
func (m *Model) Cosine(a, b string) float64 {
	c := m.simCache()
	k := pairKey(a, b)
	if v, ok := c.get(k); ok {
		return v
	}
	v := m.cosineUncached(a, b)
	c.put(k, v)
	return v
}

// cosineUncached is the raw similarity computation behind Cosine.
func (m *Model) cosineUncached(a, b string) float64 {
	va, errA := m.Vector(a)
	vb, errB := m.Vector(b)
	if errA != nil || errB != nil {
		if strings.EqualFold(a, b) {
			return 1
		}
		return 0
	}
	na, nb := linalg.Norm2(va), linalg.Norm2(vb)
	if na == 0 || nb == 0 {
		if strings.EqualFold(a, b) {
			return 1
		}
		return 0
	}
	return linalg.Dot(va, vb) / (na * nb)
}

// Nearest returns the k nearest vocabulary subtokens to the identifier by
// cosine similarity, most similar first.
func (m *Model) Nearest(identifier string, k int) ([]string, error) {
	q, err := m.Vector(identifier)
	if err != nil {
		return nil, err
	}
	nq := linalg.Norm2(q)
	if nq == 0 {
		return nil, fmt.Errorf("embed: %q has zero vector: %w", identifier, ErrUnknownToken)
	}
	type scored struct {
		tok string
		sim float64
	}
	scores := make([]scored, 0, len(m.tokens))
	for id, tok := range m.tokens {
		v := m.vectors.Row(id)
		nv := linalg.Norm2(v)
		if nv == 0 {
			continue
		}
		scores = append(scores, scored{tok, linalg.Dot(q, v) / (nq * nv)})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].sim > scores[j].sim })
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].tok
	}
	return out, nil
}

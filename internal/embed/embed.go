// Package embed trains small distributional embeddings for identifier
// tokens, standing in for the BERT and VarCLR encoders used by the paper's
// semantic similarity metrics (BERTScore F1 and VarCLR).
//
// The pipeline is classical: identifiers are split into subtokens
// (snake_case, camelCase, digits), a token-token co-occurrence matrix is
// accumulated over a corpus of identifier contexts, the matrix is
// reweighted with positive pointwise mutual information (PPMI), and a
// low-rank representation is extracted by truncated SVD via orthogonal
// power iteration. Cosine similarity in the resulting space captures
// semantic relatedness (e.g. "size" ≈ "length") that the paper's
// surface-level metrics miss — exactly the contrast RQ5 investigates.
package embed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"

	"decompstudy/internal/fault"
	"decompstudy/internal/linalg"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// ErrEmptyCorpus is returned when training is attempted on an empty corpus.
var ErrEmptyCorpus = errors.New("embed: empty corpus")

// ErrTrain is returned when embedding training fails.
var ErrTrain = errors.New("embed: training failed")

// ErrUnknownToken is returned when a similarity query involves only
// out-of-vocabulary tokens.
var ErrUnknownToken = errors.New("embed: token not in vocabulary")

// SplitIdentifier splits an identifier into lowercase subtokens on
// underscores, camelCase boundaries, and digit group boundaries.
// "bufAppendPathLen2" → ["buf", "append", "path", "len", "2"].
func SplitIdentifier(id string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(id)
	for i, r := range runes {
		switch {
		case r == '_' || r == ' ' || r == '-':
			flush()
		case unicode.IsUpper(r):
			// Boundary before an upper rune that follows a lower rune, or
			// that begins a new word after an acronym run (e.g. "SSLKey").
			if i > 0 && (unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1])) {
				flush()
			} else if i > 0 && unicode.IsUpper(runes[i-1]) && i+1 < len(runes) && unicode.IsLower(runes[i+1]) {
				flush()
			}
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// Model is a trained embedding space over identifier subtokens. The
// query methods are safe for concurrent use: the trained state is
// immutable, and the similarity memo-cache (see cache.go) synchronizes
// internally.
type Model struct {
	vocab   map[string]int
	tokens  []string
	vectors *linalg.Matrix // |V| × dim
	dim     int

	// Normalization state computed once at train time so query-path
	// cosines reduce to dot products: rowNorm[i] is the L2 norm of row i
	// of vectors, and unit holds the L2-normalized rows (zero rows stay
	// zero). See DESIGN.md's cosine-normalization row for why the
	// identifier-level Cosine keeps the dot/(na·nb) form instead.
	rowNorm []float64
	unit    *linalg.Matrix

	// idvecs caches per-identifier mean vectors and their norms so the
	// similarity miss path is a single dot product (see cache.go).
	idvecs *vecCache

	// cache memoizes pairwise cosine similarities; created lazily on the
	// first Cosine call via cacheOnce (see simCache).
	cacheOnce sync.Once
	cache     *simCache

	// obsHits/obsMisses are live registry counters bumped per Cosine
	// lookup when the model was trained under an obs handle, so a
	// /debug/metrics scrape mid-run shows cache traffic without waiting
	// for the end-of-run CacheStats export. Nil without telemetry.
	obsHits, obsMisses *obs.Counter
}

// Config controls training.
type Config struct {
	// Dim is the embedding dimensionality. Zero means 32 (or |V| if the
	// vocabulary is smaller).
	Dim int
	// Window is the co-occurrence window radius within a context. Zero
	// means 4.
	Window int
	// Iterations is the power-iteration count per component. Zero means 40.
	Iterations int
}

func (c *Config) defaults() Config {
	out := Config{Dim: 32, Window: 4, Iterations: 40}
	if c == nil {
		return out
	}
	if c.Dim > 0 {
		out.Dim = c.Dim
	}
	if c.Window > 0 {
		out.Window = c.Window
	}
	if c.Iterations > 0 {
		out.Iterations = c.Iterations
	}
	return out
}

// Train builds an embedding model from a corpus of contexts. Each context
// is a sequence of identifiers that appear together (for this project: the
// identifiers of one function, in source order). Identifiers are split into
// subtokens before windowed co-occurrence counting.
func Train(contexts [][]string, cfg *Config) (*Model, error) {
	return TrainCtx(context.Background(), contexts, cfg)
}

// TrainCtx is Train with telemetry: an embed.Train span plus corpus-size
// counters when the context carries an obs handle.
func TrainCtx(octx context.Context, contexts [][]string, cfg *Config) (*Model, error) {
	_, sp := obs.StartSpan(octx, "embed.Train", obs.KV("contexts", len(contexts)))
	defer sp.End()
	if err := fault.Check(octx, fault.EmbedTrain); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTrain, err)
	}
	obs.AddCount(octx, "embed.train.calls", 1)
	c := cfg.defaults()

	// Tokenize contexts and build the vocabulary.
	vocab := map[string]int{}
	var tokens []string
	tokenized := make([][]int, 0, len(contexts))
	for _, ctx := range contexts {
		var ids []int
		for _, ident := range ctx {
			for _, tok := range SplitIdentifier(ident) {
				id, ok := vocab[tok]
				if !ok {
					id = len(tokens)
					vocab[tok] = id
					tokens = append(tokens, tok)
				}
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			tokenized = append(tokenized, ids)
		}
	}
	v := len(tokens)
	if v == 0 {
		return nil, ErrEmptyCorpus
	}
	sp.SetAttr("vocab", v)

	// Windowed co-occurrence counts (symmetric), accumulated sparsely:
	// within-window pairs touch a vanishing fraction of the |V|×|V| cells,
	// so per-row hash maps replace the dense count matrix. The counts are
	// small integers, so float accumulation is exact and order-free.
	cooc := make([]map[int]float64, v)
	inc := func(a, b int) {
		row := cooc[a]
		if row == nil {
			row = make(map[int]float64, 8)
			cooc[a] = row
		}
		row[b]++
	}
	rowSum := make([]float64, v)
	var total float64
	for _, ids := range tokenized {
		for i, a := range ids {
			hi := i + c.Window
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			for j := i + 1; j <= hi; j++ {
				b := ids[j]
				inc(a, b)
				inc(b, a)
				rowSum[a]++
				rowSum[b]++
				total += 2
			}
			// Self-count keeps singleton contexts in-vocabulary.
			inc(a, a)
			rowSum[a]++
			total++
		}
	}

	// PPMI reweighting: max(0, log(p(a,b) / (p(a)p(b)))), built directly
	// in CSR form. Rows are independent, so the sweep fans out across row
	// chunks; each chunk writes disjoint per-row slices, columns are
	// visited in ascending order, and the per-cell arithmetic matches the
	// dense formulation, so the matrix is byte-identical at any worker
	// count (and to the dense build it replaced).
	jobs := par.JobsFrom(octx)
	sp.SetAttr("jobs", jobs)
	rowCols := make([][]int, v)
	rowVals := make([][]float64, v)
	if _, err := par.Map(octx, jobs, par.Chunks(v, jobs), func(_ context.Context, _ int, ch [2]int) (struct{}, error) {
		for a := ch[0]; a < ch[1]; a++ {
			counts := cooc[a]
			cols := make([]int, 0, len(counts))
			for b := range counts {
				cols = append(cols, b)
			}
			sort.Ints(cols)
			vals := make([]float64, 0, len(cols))
			keep := cols[:0]
			for _, b := range cols {
				val := math.Log(counts[b] * total / (rowSum[a] * rowSum[b]))
				if val > 0 {
					keep = append(keep, b)
					vals = append(vals, val)
				}
			}
			rowCols[a], rowVals[a] = keep, vals
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, fmt.Errorf("embed: reweighting PPMI matrix: %w", err)
	}
	rowPtr := make([]int, v+1)
	nnz := 0
	for a, cols := range rowCols {
		nnz += len(cols)
		rowPtr[a+1] = nnz
	}
	colIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for a := range rowCols {
		colIdx = append(colIdx, rowCols[a]...)
		vals = append(vals, rowVals[a]...)
	}
	ppmi, err := linalg.NewCSR(v, v, rowPtr, colIdx, vals)
	if err != nil {
		return nil, fmt.Errorf("embed: assembling PPMI matrix: %w", err)
	}
	sp.SetAttr("nnz", ppmi.NNZ())

	dim := c.Dim
	if dim > v {
		dim = v
	}
	vectors, err := truncatedEig(ppmi, dim, c.Iterations, jobs)
	if err != nil {
		return nil, fmt.Errorf("embed: factorizing PPMI matrix: %w", err)
	}
	m := &Model{vocab: vocab, tokens: tokens, vectors: vectors, dim: dim, idvecs: newVecCache()}
	m.normalize()
	if o := obs.From(octx); o != nil && o.Metrics != nil {
		m.obsHits = o.Metrics.CounterL("embed.cache.lookups", obs.L("result", "hit"))
		m.obsMisses = o.Metrics.CounterL("embed.cache.lookups", obs.L("result", "miss"))
	}
	return m, nil
}

// normalize computes the train-time normalization state: per-row L2 norms
// and unit rows. Zero rows (rank-exhausted components or out-of-support
// tokens) keep zero units so similarity against them degrades to the
// exact-match fallback, exactly as before.
func (m *Model) normalize() {
	v := m.vectors.Rows()
	m.rowNorm = make([]float64, v)
	m.unit = linalg.NewMatrix(v, m.dim)
	for i := 0; i < v; i++ {
		row := m.vectors.RowView(i)
		s := 0.0
		for _, x := range row {
			s += x * x
		}
		n := math.Sqrt(s)
		m.rowNorm[i] = n
		if n == 0 {
			continue
		}
		u := m.unit.RowView(i)
		for j, x := range row {
			u[j] = x / n
		}
	}
}

// truncatedEig extracts the top-k eigenpairs of a symmetric sparse matrix
// by orthogonalized power iteration and returns the |V|×k matrix of
// eigenvector columns scaled by sqrt(|eigenvalue|) (the symmetric-SVD
// embedding convention). The matrix-vector products — the O(nnz) inner
// loop the iteration spends its time in — are row-parallel across jobs
// workers and write into a ping-pong scratch buffer, so the whole
// factorization allocates one vector per component instead of one per
// iteration; each row's dot product keeps its sequential left-to-right
// arithmetic order, so the result is bit-identical at any worker count
// (and to the dense formulation it replaced).
func truncatedEig(m *linalg.CSR, k, iters, jobs int) (*linalg.Matrix, error) {
	v := m.Rows()
	out := linalg.NewMatrix(v, k)
	basis := make([][]float64, 0, k)
	y := make([]float64, v) // matvec scratch, recycled via buffer swap
	for comp := 0; comp < k; comp++ {
		// Deterministic pseudo-random start vector.
		x := make([]float64, v)
		seed := uint64(comp)*2654435761 + 12345
		for i := range x {
			seed = seed*6364136223846793005 + 1442695040888963407
			x[i] = float64(int64(seed>>33))/float64(1<<30) - 1
		}
		// deflate removes the projections onto previously found
		// eigenvectors (modified Gram-Schmidt). Each update is fused with
		// the projection against the next basis vector via AXPYDot — one
		// memory pass instead of two, with the exact arithmetic of the
		// AXPY(-Dot(b, v), b, v) sweep it replaces.
		deflate := func(v []float64) {
			last := len(basis) - 1
			if last < 0 {
				return
			}
			d := linalg.Dot(basis[0], v)
			for i := 0; i < last; i++ {
				d = linalg.AXPYDot(-d, basis[i], v, basis[i+1])
			}
			linalg.AXPY(-d, basis[last], v)
		}
		var lambda float64
		for it := 0; it < iters; it++ {
			deflate(x)
			if err := mulVecTo(y, m, x, jobs); err != nil {
				return nil, err
			}
			deflate(y)
			norm := linalg.Norm2(y)
			if norm < 1e-12 {
				// Matrix rank exhausted; remaining components are zero.
				lambda = 0
				break
			}
			lambda = linalg.Dot(x, y)
			linalg.Scale(1/norm, y)
			// The normalized product becomes the new iterate; the old
			// iterate's storage becomes the next matvec destination.
			x, y = y, x
		}
		basis = append(basis, x)
		scale := math.Sqrt(math.Abs(lambda))
		for i := 0; i < v; i++ {
			out.Set(i, comp, x[i]*scale)
		}
	}
	return out, nil
}

// mulVecTo is a row-parallel sparse matrix-vector product into a caller-
// supplied destination. Below the size threshold (or single-worker) it is
// exactly CSR.MulVecTo; above it, row chunks fan out and each worker
// writes a disjoint slice of dst.
func mulVecTo(dst []float64, m *linalg.CSR, x []float64, jobs int) error {
	const minRowsPerWorker = 64
	rows := m.Rows()
	if maxJobs := rows / minRowsPerWorker; jobs > maxJobs {
		jobs = maxJobs
	}
	if jobs <= 1 {
		return m.MulVecTo(dst, x)
	}
	if m.Cols() != len(x) {
		return fmt.Errorf("embed: mulVec dimension mismatch: %d cols vs %d", m.Cols(), len(x))
	}
	if _, err := par.Map(context.Background(), jobs, par.Chunks(rows, jobs), func(_ context.Context, _ int, ch [2]int) (struct{}, error) {
		for i := ch[0]; i < ch[1]; i++ {
			dst[i] = m.RowDot(i, x)
		}
		return struct{}{}, nil
	}); err != nil {
		return err
	}
	return nil
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of subtokens in the vocabulary.
func (m *Model) VocabSize() int { return len(m.tokens) }

// Contains reports whether at least one subtoken of the identifier is in
// the vocabulary.
func (m *Model) Contains(identifier string) bool {
	for _, tok := range SplitIdentifier(identifier) {
		if _, ok := m.vocab[tok]; ok {
			return true
		}
	}
	return false
}

// Vector returns the embedding of an identifier: the mean of its in-
// vocabulary subtoken vectors. It returns ErrUnknownToken if no subtoken is
// known. The mean is computed once per identifier and memoized (see
// identVec); the returned slice is a private copy.
func (m *Model) Vector(identifier string) ([]float64, error) {
	e := m.identVec(identifier)
	if !e.known {
		return nil, fmt.Errorf("embed: %q: %w", identifier, ErrUnknownToken)
	}
	out := make([]float64, m.dim)
	copy(out, e.vec)
	return out, nil
}

// identVecUncached computes an identifier's mean subtoken vector and its
// norm — the arithmetic behind Vector, split out so the vecCache can
// memoize it. The accumulation order matches the historical Vector
// implementation element-for-element, keeping cosines byte-identical.
func (m *Model) identVecUncached(identifier string) vecEntry {
	sum := make([]float64, m.dim)
	n := 0
	for _, tok := range SplitIdentifier(identifier) {
		id, ok := m.vocab[tok]
		if !ok {
			continue
		}
		row := m.vectors.RowView(id)
		for j, x := range row {
			sum[j] += x
		}
		n++
	}
	if n == 0 {
		return vecEntry{}
	}
	linalg.Scale(1/float64(n), sum)
	return vecEntry{vec: sum, norm: linalg.Norm2(sum), known: true}
}

// Cosine returns the cosine similarity of two identifiers' embeddings in
// [-1, 1]. Out-of-vocabulary identifiers fall back to exact-match
// similarity (1 if equal, 0 otherwise), mirroring how the paper's
// embedding metrics degrade on unseen names. Results are memoized in the
// model's sharded content-hash cache, so repeated pairs — the common case
// in BERTScore's bidirectional token sweeps — cost one map lookup; a miss
// costs one dot product plus two cached identifier-vector lookups, with
// the wall-clock spent on misses tracked for the obs miss-cost gauge.
func (m *Model) Cosine(a, b string) float64 {
	c := m.simCache()
	k := pairKey(a, b)
	if v, ok := c.get(k); ok {
		if m.obsHits != nil {
			m.obsHits.Inc()
		}
		return v
	}
	if m.obsMisses != nil {
		m.obsMisses.Inc()
	}
	t0 := time.Now()
	v := m.cosineUncached(a, b)
	c.missNanos.Add(time.Since(t0).Nanoseconds())
	c.put(k, v)
	return v
}

// cosineUncached is the raw similarity computation behind Cosine. The
// identifier mean vectors and their norms come precomputed from the
// vecCache, so the steady-state miss path is a single dot product and a
// divide — no tokenization, no norm recomputation.
func (m *Model) cosineUncached(a, b string) float64 {
	ea := m.identVec(a)
	eb := m.identVec(b)
	if !ea.known || !eb.known || ea.norm == 0 || eb.norm == 0 {
		if strings.EqualFold(a, b) {
			return 1
		}
		return 0
	}
	return linalg.Dot(ea.vec, eb.vec) / (ea.norm * eb.norm)
}

// Nearest returns the k nearest vocabulary subtokens to the identifier by
// cosine similarity, most similar first.
func (m *Model) Nearest(identifier string, k int) ([]string, error) {
	q, err := m.Vector(identifier)
	if err != nil {
		return nil, err
	}
	nq := linalg.Norm2(q)
	if nq == 0 {
		return nil, fmt.Errorf("embed: %q has zero vector: %w", identifier, ErrUnknownToken)
	}
	type scored struct {
		tok string
		sim float64
	}
	// The unit rows are precomputed at train time, so each candidate costs
	// one dot product instead of a norm plus a dot.
	scores := make([]scored, 0, len(m.tokens))
	for id, tok := range m.tokens {
		if m.rowNorm[id] == 0 {
			continue
		}
		scores = append(scores, scored{tok, linalg.Dot(q, m.unit.RowView(id)) / nq})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].sim > scores[j].sim })
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].tok
	}
	return out, nil
}

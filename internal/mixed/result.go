package mixed

import (
	"fmt"
	"math"
	"strings"

	"decompstudy/internal/stats"
)

// FixedEffect reports one estimated fixed-effect coefficient.
type FixedEffect struct {
	Name     string
	Estimate float64
	StdErr   float64
	// Z is the Wald statistic Estimate/StdErr.
	Z float64
	// P is the two-sided Wald p-value (normal reference, as lme4 reports
	// for GLMMs; we use the same reference for LMMs, which is what the
	// paper's star notation reflects).
	P float64
}

// Significant reports whether the Wald p-value is below 0.05, the paper's
// significance threshold.
func (f FixedEffect) Significant() bool { return f.P < 0.05 }

// VarComp reports one random-effect variance component.
type VarComp struct {
	Name   string
	StdDev float64
}

// Result is the common output of both mixed-model fitters.
type Result struct {
	// Kind is "lmer" or "glmer (binomial)".
	Kind string
	// Fixed holds fixed-effect estimates in design-matrix column order.
	Fixed []FixedEffect
	// Random holds the random-intercept standard deviations, one per
	// grouping factor.
	Random []VarComp
	// ResidualSD is the residual standard deviation (linear models only;
	// zero for logistic models).
	ResidualSD float64
	// LogLik is the maximized (approximate, for GLMMs) log-likelihood.
	LogLik float64
	// Deviance is -2·LogLik.
	Deviance float64
	// AIC and BIC are the usual information criteria.
	AIC, BIC float64
	// R2Marginal and R2Conditional are the Nakagawa-Schielzeth coefficients
	// of determination (variance explained by fixed effects alone, and by
	// fixed plus random effects).
	R2Marginal, R2Conditional float64
	// NObs is the number of observations; NGroups the level count per
	// factor.
	NObs    int
	NGroups []int
	// REML reports whether the linear model used REML.
	REML bool
	// Converged reports whether the outer variance-parameter search met its
	// tolerance.
	Converged bool
	// BLUPs holds the conditional modes of the random effects, one slice
	// per grouping factor.
	BLUPs [][]float64
}

// Coef returns the fixed effect with the given name.
func (r *Result) Coef(name string) (FixedEffect, bool) {
	for _, f := range r.Fixed {
		if f.Name == name {
			return f, true
		}
	}
	return FixedEffect{}, false
}

// String renders the fit as a compact summary table in the style of the
// paper's Tables I and II.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s fit (%d obs", r.Kind, r.NObs)
	for i, g := range r.NGroups {
		fmt.Fprintf(&b, ", %d %s levels", g, r.Random[i].Name)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "%-32s %12s %10s %8s\n", "Fixed effect", "Estimate", "Std.Err", "p")
	for _, f := range r.Fixed {
		star := ""
		if f.Significant() {
			star = " *"
		}
		fmt.Fprintf(&b, "%-32s %12.4f %10.4f %8.4f%s\n", f.Name, f.Estimate, f.StdErr, f.P, star)
	}
	for _, v := range r.Random {
		fmt.Fprintf(&b, "σ(%s) = %.3f\n", v.Name, v.StdDev)
	}
	if r.ResidualSD > 0 {
		fmt.Fprintf(&b, "σ(residual) = %.3f\n", r.ResidualSD)
	}
	fmt.Fprintf(&b, "R²m = %.3f  R²c = %.3f\n", r.R2Marginal, r.R2Conditional)
	fmt.Fprintf(&b, "AIC = %.3f  BIC = %.3f  logLik = %.3f\n", r.AIC, r.BIC, r.LogLik)
	return b.String()
}

// waldFixed assembles FixedEffect entries from estimates and a covariance
// matrix diagonal.
func waldFixed(names []string, beta, covDiag []float64) []FixedEffect {
	out := make([]FixedEffect, len(beta))
	for i := range beta {
		se := math.Sqrt(math.Max(covDiag[i], 0))
		z := 0.0
		if se > 0 {
			z = beta[i] / se
		}
		out[i] = FixedEffect{
			Name:     names[i],
			Estimate: beta[i],
			StdErr:   se,
			Z:        z,
			P:        2 * stats.StdNormalCDF(-math.Abs(z)),
		}
	}
	return out
}

// fixedEffectVariance returns the population variance of the linear
// predictor Xβ, the numerator of Nakagawa's marginal R².
func fixedEffectVariance(d *design, beta []float64) float64 {
	eta := make([]float64, d.n)
	for i := 0; i < d.n; i++ {
		s := 0.0
		for j := 0; j < d.p; j++ {
			s += d.spec.Fixed.At(i, j) * beta[j]
		}
		eta[i] = s
	}
	return stats.PopVariance(eta)
}

package mixed

import (
	"fmt"

	"decompstudy/internal/linalg"
	"decompstudy/internal/stats"
)

// LRTResult reports a likelihood-ratio test between a full model and the
// same model with one fixed-effect column dropped.
type LRTResult struct {
	// Dropped is the name of the tested fixed effect.
	Dropped string
	// Chi2 is the deviance difference (reduced − full).
	Chi2 float64
	// DF is the degrees of freedom of the test (1 for a single column).
	DF float64
	// P is the chi-square tail probability.
	P float64
	// Full and Reduced are the two fitted models.
	Full, Reduced *Result
}

// DropColumn returns a copy of the spec with the named fixed-effect column
// removed.
func (s *Spec) DropColumn(name string) (*Spec, error) {
	col := -1
	for i, n := range s.FixedNames {
		if n == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("mixed: no fixed effect %q to drop: %w", name, ErrSpec)
	}
	if s.Fixed.Cols() < 2 {
		return nil, fmt.Errorf("mixed: cannot drop the only column: %w", ErrSpec)
	}
	reduced := linalg.NewMatrix(s.Fixed.Rows(), s.Fixed.Cols()-1)
	names := make([]string, 0, len(s.FixedNames)-1)
	for j, n := range s.FixedNames {
		if j == col {
			continue
		}
		names = append(names, n)
	}
	for i := 0; i < s.Fixed.Rows(); i++ {
		k := 0
		for j := 0; j < s.Fixed.Cols(); j++ {
			if j == col {
				continue
			}
			reduced.Set(i, k, s.Fixed.At(i, j))
			k++
		}
	}
	out := *s
	out.Fixed = reduced
	out.FixedNames = names
	return &out, nil
}

// LikelihoodRatioTest fits the spec with and without the named fixed
// effect and compares deviances against a χ²(1) reference. For linear
// models the comparison uses ML fits (REML deviances are not comparable
// across fixed-effect structures, the standard caveat), selected by
// forcing spec.REML off; logistic models always use ML.
func LikelihoodRatioTest(spec *Spec, drop string, logistic bool) (*LRTResult, error) {
	mlSpec := *spec
	mlSpec.REML = false
	reducedSpec, err := mlSpec.DropColumn(drop)
	if err != nil {
		return nil, err
	}
	fit := func(sp *Spec) (*Result, error) {
		if logistic {
			return FitGLMMLogit(sp)
		}
		return FitLMM(sp)
	}
	full, err := fit(&mlSpec)
	if err != nil {
		return nil, fmt.Errorf("mixed: LRT full model: %w", err)
	}
	reduced, err := fit(reducedSpec)
	if err != nil {
		return nil, fmt.Errorf("mixed: LRT reduced model: %w", err)
	}
	chi2 := reduced.Deviance - full.Deviance
	if chi2 < 0 {
		// Optimizer noise on a truly null effect; clamp.
		chi2 = 0
	}
	cdf, err := stats.ChiSquareCDF(chi2, 1)
	if err != nil {
		return nil, err
	}
	return &LRTResult{
		Dropped: drop,
		Chi2:    chi2,
		DF:      1,
		P:       1 - cdf,
		Full:    full,
		Reduced: reduced,
	}, nil
}

package mixed

import (
	"context"
	"fmt"
	"math"

	"decompstudy/internal/linalg"
	"decompstudy/internal/obs"
	"decompstudy/internal/optimize"
)

// lmmProfile carries the precomputed cross-products used by every profiled
// deviance evaluation, plus a reusable workspace so the Nelder-Mead search
// (hundreds of evaluations) allocates nothing per step. With only random
// intercepts, the Woodbury identity reduces each evaluation to a q×q
// Cholesky factorization.
type lmmProfile struct {
	d          *design
	xtx, ztx   *linalg.Matrix
	ztxT       *linalg.Matrix // (ZᵀX)ᵀ, hoisted: eval used to rebuild it twice per call
	ztz        *linalg.Matrix
	xty, zty   []float64
	yty        float64
	reml       bool
	lastBad    bool
	lastResult lmmEval

	// Per-evaluation scratch. lastResult points into this storage, which is
	// safe because FitLMMCtx re-evaluates at the optimum before reading it.
	gamma, xtVy, tmp, beta []float64
	a, xtVx, corr, covBeta *linalg.Matrix
	aInvZtx                *linalg.Matrix
	aInvZty                []float64
	aChol, xChol           *linalg.Cholesky
	qColBuf, pColBuf       []float64
}

// lmmEval is the by-product of one profiled deviance evaluation.
type lmmEval struct {
	deviance float64
	beta     []float64
	sigma2   float64
	covBeta  *linalg.Matrix // (XᵀV0⁻¹X)⁻¹, multiply by σ² for cov(β̂)
	aChol    *linalg.Cholesky
	gamma    []float64 // per-factor variance ratios
}

func newLMMProfile(d *design, reml bool) (*lmmProfile, error) {
	p := &lmmProfile{
		d:    d,
		xtx:  linalg.XtX(d.spec.Fixed),
		ztx:  d.ztX(),
		ztz:  d.ztZ(),
		reml: reml,
	}
	var err error
	p.xty, err = linalg.XtV(d.spec.Fixed, d.spec.Response)
	if err != nil {
		return nil, err
	}
	p.zty = d.ztVec(d.spec.Response)
	for _, y := range d.spec.Response {
		p.yty += y * y
	}
	p.ztxT = p.ztx.T()

	nf := len(d.spec.Random)
	p.gamma = make([]float64, nf)
	p.a = linalg.NewMatrix(d.q, d.q)
	p.aChol = linalg.NewCholeskyWorkspace(d.q)
	p.aInvZtx = linalg.NewMatrix(d.q, d.p)
	p.aInvZty = make([]float64, d.q)
	p.xtVx = linalg.NewMatrix(d.p, d.p)
	p.corr = linalg.NewMatrix(d.p, d.p)
	p.xtVy = make([]float64, d.p)
	p.tmp = make([]float64, d.p)
	p.xChol = linalg.NewCholeskyWorkspace(d.p)
	p.beta = make([]float64, d.p)
	p.covBeta = linalg.NewMatrix(d.p, d.p)
	p.qColBuf = make([]float64, d.q)
	p.pColBuf = make([]float64, d.p)
	return p, nil
}

// eval computes the profiled (RE)ML deviance at the given per-factor
// log variance ratios.
func (p *lmmProfile) eval(logGamma []float64) float64 {
	d := p.d
	gamma := p.gamma
	for k, lg := range logGamma {
		gamma[k] = math.Exp(lg)
	}

	// A = Γ⁻¹ + ZᵀZ, with Γ the per-column variance ratio.
	a := p.a
	a.CopyFrom(p.ztz)
	logDetGamma := 0.0
	for j := 0; j < d.q; j++ {
		g := gamma[d.colFac[j]]
		a.Add(j, j, 1/g)
		logDetGamma += math.Log(g)
	}
	aChol := p.aChol
	if err := aChol.Refactor(a); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}
	logDetV0 := aChol.LogDet() + logDetGamma

	// Woodbury: MᵀV0⁻¹N = MᵀN − (ZᵀM)ᵀ A⁻¹ (ZᵀN).
	aInvZtx := p.aInvZtx
	if err := aChol.SolveTo(aInvZtx, p.ztx, p.qColBuf); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}
	aInvZty := p.aInvZty
	if err := aChol.SolveVecTo(aInvZty, p.zty); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}

	// XᵀV0⁻¹X and XᵀV0⁻¹y.
	xtVx := p.xtVx
	xtVx.CopyFrom(p.xtx)
	linalg.MulTo(p.corr, p.ztxT, aInvZtx)
	if err := xtVx.AddInPlace(p.corr, -1); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}
	xtVy := p.xtVy
	copy(xtVy, p.xty)
	linalg.MulVecTo(p.tmp, p.ztxT, aInvZty)
	linalg.AXPY(-1, p.tmp, xtVy)

	// yᵀV0⁻¹y.
	ytVy := p.yty - linalg.Dot(p.zty, aInvZty)

	xChol := p.xChol
	if err := xChol.Refactor(xtVx); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}
	beta := p.beta
	if err := xChol.SolveVecTo(beta, xtVy); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}
	rss := ytVy - linalg.Dot(beta, xtVy) // rᵀV0⁻¹r via normal equations
	if rss <= 0 {
		p.lastBad = true
		return math.Inf(1)
	}

	n := float64(d.n)
	var dev float64
	var sigma2 float64
	if p.reml {
		np := n - float64(d.p)
		sigma2 = rss / np
		dev = np*math.Log(2*math.Pi*sigma2) + logDetV0 + xChol.LogDet() + np
	} else {
		sigma2 = rss / n
		dev = n*math.Log(2*math.Pi*sigma2) + logDetV0 + n
	}

	if err := xChol.InverseTo(p.covBeta, p.pColBuf); err != nil {
		p.lastBad = true
		return math.Inf(1)
	}
	p.lastBad = false
	p.lastResult = lmmEval{
		deviance: dev,
		beta:     beta,
		sigma2:   sigma2,
		covBeta:  p.covBeta,
		aChol:    aChol,
		gamma:    gamma,
	}
	return dev
}

// FitLMM fits a linear mixed model with random intercepts by profiled
// maximum likelihood (or REML when spec.REML is set).
func FitLMM(spec *Spec) (*Result, error) {
	return FitLMMCtx(context.Background(), spec)
}

// FitLMMCtx is FitLMM with telemetry: a mixed.FitLMM span plus
// iteration-count and convergence metrics for the outer variance search.
func FitLMMCtx(ctx context.Context, spec *Spec) (*Result, error) {
	_, sp := obs.StartSpan(ctx, "mixed.FitLMM")
	defer sp.End()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	sp.SetAttr("n", len(spec.Response))
	d := newDesign(spec)
	prof, err := newLMMProfile(d, spec.REML)
	if err != nil {
		return nil, fmt.Errorf("mixed: building LMM profile: %w", err)
	}

	start := make([]float64, len(spec.Random))
	res, err := optimize.NelderMead(prof.eval, start, &optimize.NelderMeadConfig{
		MaxIter: 2000, TolF: 1e-10, TolX: 1e-7, Step: 0.7,
	})
	if err != nil {
		return nil, fmt.Errorf("mixed: LMM variance search: %w", err)
	}
	recordFitTelemetry(ctx, sp, "mixed.lmm", res)
	if math.IsInf(res.F, 1) {
		return nil, fmt.Errorf("mixed: LMM deviance is infinite at optimum (degenerate design): %w", ErrFit)
	}
	// Re-evaluate at the optimum so lastResult matches res.X.
	dev := prof.eval(res.X)
	if prof.lastBad {
		return nil, fmt.Errorf("mixed: LMM evaluation failed at optimum: %w", ErrFit)
	}
	e := prof.lastResult

	// Assemble the result.
	sigma2 := e.sigma2
	covDiag := make([]float64, d.p)
	for j := 0; j < d.p; j++ {
		covDiag[j] = sigma2 * e.covBeta.At(j, j)
	}
	randSD := make([]VarComp, len(spec.Random))
	sumRandVar := 0.0
	for k, rf := range spec.Random {
		v := e.gamma[k] * sigma2
		randSD[k] = VarComp{Name: rf.Name, StdDev: math.Sqrt(v)}
		sumRandVar += v
	}

	// BLUPs: b̂ = A⁻¹ Zᵀ r.
	resid := make([]float64, d.n)
	for i := 0; i < d.n; i++ {
		s := spec.Response[i]
		for j := 0; j < d.p; j++ {
			s -= spec.Fixed.At(i, j) * e.beta[j]
		}
		resid[i] = s
	}
	bhat, err := e.aChol.SolveVec(d.ztVec(resid))
	if err != nil {
		return nil, fmt.Errorf("mixed: computing BLUPs: %w", err)
	}
	blups := make([][]float64, len(spec.Random))
	for k, rf := range spec.Random {
		blups[k] = append([]float64(nil), bhat[d.offsets[k]:d.offsets[k]+rf.NLevels]...)
	}

	varF := fixedEffectVariance(d, e.beta)
	total := varF + sumRandVar + sigma2
	df := float64(d.p + len(spec.Random) + 1)
	n := float64(d.n)
	nGroups := make([]int, len(spec.Random))
	for k, rf := range spec.Random {
		nGroups[k] = rf.NLevels
	}
	return &Result{
		Kind:          "lmer",
		Fixed:         waldFixed(spec.FixedNames, e.beta, covDiag),
		Random:        randSD,
		ResidualSD:    math.Sqrt(sigma2),
		LogLik:        -dev / 2,
		Deviance:      dev,
		AIC:           dev + 2*df,
		BIC:           dev + math.Log(n)*df,
		R2Marginal:    varF / total,
		R2Conditional: (varF + sumRandVar) / total,
		NObs:          d.n,
		NGroups:       nGroups,
		REML:          spec.REML,
		Converged:     res.Converged,
		BLUPs:         blups,
	}, nil
}

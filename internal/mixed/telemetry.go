package mixed

import (
	"context"

	"decompstudy/internal/obs"
	"decompstudy/internal/optimize"
)

// recordFitTelemetry attaches the outer variance-search outcome to the fit
// span and the metrics registry. prefix namespaces the metrics per model
// family ("mixed.lmm" / "mixed.glmm"). Nil-safe: a no-op when the context
// carries no obs handle.
func recordFitTelemetry(ctx context.Context, sp *obs.Span, prefix string, res optimize.Result) {
	sp.SetAttr("iterations", res.Iterations)
	sp.SetAttr("converged", res.Converged)
	obs.AddCount(ctx, prefix+".fits", 1)
	obs.AddCount(ctx, prefix+".iterations_total", int64(res.Iterations))
	obs.SetGauge(ctx, prefix+".last_iterations", float64(res.Iterations))
	conv := 0.0
	if res.Converged {
		conv = 1
	}
	obs.SetGauge(ctx, prefix+".converged", conv)
}

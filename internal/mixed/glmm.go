package mixed

import (
	"context"
	"fmt"
	"math"

	"decompstudy/internal/linalg"
	"decompstudy/internal/obs"
	"decompstudy/internal/optimize"
	"decompstudy/internal/stats"
)

// glmmState carries the working vectors of the Laplace/PIRLS fit so the
// outer variance search can reuse the previous conditional modes as warm
// starts, plus a workspace of per-iteration buffers: the variance search
// calls pirls hundreds of times and each call used to allocate a fresh
// (p+q)×(p+q) Hessian, Cholesky factor, gradient, and trial vector per
// Newton step.
type glmmState struct {
	d *design
	u []float64 // joint (β, b) vector, length p+q
	// ctx carries the obs handle so the inner PIRLS loop can report
	// iteration telemetry (nil-safe; zero cost when telemetry is off).
	ctx context.Context

	lastBeta    []float64
	lastBLUP    []float64
	lastCovBeta []float64 // diagonal of the β block of H⁻¹
	lastBad     bool

	// PIRLS scratch, sized once in newGLMMState.
	eta, mu, w        []float64 // length n
	grad, step, trial []float64 // length p+q
	dInv              []float64 // length q, filled by the objective closure
	h, hbb, hInv      *linalg.Matrix
	chol, hbbChol     *linalg.Cholesky
	colBuf            []float64 // length p+q
}

func newGLMMState(ctx context.Context, d *design) *glmmState {
	dim := d.p + d.q
	return &glmmState{
		d:       d,
		u:       make([]float64, dim),
		ctx:     ctx,
		eta:     make([]float64, d.n),
		mu:      make([]float64, d.n),
		w:       make([]float64, d.n),
		grad:    make([]float64, dim),
		step:    make([]float64, dim),
		trial:   make([]float64, dim),
		dInv:    make([]float64, d.q),
		h:       linalg.NewMatrix(dim, dim),
		hbb:     linalg.NewMatrix(d.q, d.q),
		hInv:    linalg.NewMatrix(dim, dim),
		chol:    linalg.NewCholeskyWorkspace(dim),
		hbbChol: linalg.NewCholeskyWorkspace(d.q),
		colBuf:  make([]float64, dim),
	}
}

// pirls runs penalized iteratively reweighted least squares at fixed
// variance parameters, jointly maximizing over (β, b). dInv is the per-Z-
// column prior precision 1/σ²_factor. It returns the Laplace deviance.
func (g *glmmState) pirls(dInv []float64) float64 {
	d := g.d
	p, q := d.p, d.q
	dim := p + q
	y := d.spec.Response

	eta, mu, w := g.eta, g.mu, g.w

	// penalized log-likelihood at the current u.
	pll := func(u []float64) float64 {
		ll := 0.0
		for i := 0; i < d.n; i++ {
			e := 0.0
			for j := 0; j < p; j++ {
				e += d.spec.Fixed.At(i, j) * u[j]
			}
			for _, c := range d.zCols(i) {
				e += u[p+c]
			}
			// y·η − log(1+exp(η)), computed stably.
			ll += y[i]*e - log1pExp(e)
		}
		for c := 0; c < q; c++ {
			ll -= 0.5 * dInv[c] * u[p+c] * u[p+c]
		}
		return ll
	}

	u := g.u
	cur := pll(u)
	haveChol := false
	converged := false
	iters := 0
	defer func() {
		obs.AddCount(g.ctx, "mixed.glmm.pirls_evals", 1)
		obs.AddCount(g.ctx, "mixed.glmm.pirls_iterations", int64(iters))
	}()
	for iter := 0; iter < 100; iter++ {
		iters = iter + 1
		// Linear predictor, mean, weights.
		for i := 0; i < d.n; i++ {
			e := 0.0
			for j := 0; j < p; j++ {
				e += d.spec.Fixed.At(i, j) * u[j]
			}
			for _, c := range d.zCols(i) {
				e += u[p+c]
			}
			eta[i] = e
			mu[i] = stats.LogisticCDF(e)
			w[i] = mu[i] * (1 - mu[i])
			if w[i] < 1e-10 {
				w[i] = 1e-10
			}
		}

		// Gradient = [X Z]ᵀ(y−μ) − [0; D⁻¹ b].
		grad := g.grad
		for j := range grad {
			grad[j] = 0
		}
		for i := 0; i < d.n; i++ {
			r := y[i] - mu[i]
			for j := 0; j < p; j++ {
				grad[j] += d.spec.Fixed.At(i, j) * r
			}
			for _, c := range d.zCols(i) {
				grad[p+c] += r
			}
		}
		for c := 0; c < q; c++ {
			grad[p+c] -= dInv[c] * u[p+c]
		}

		// Hessian = [X Z]ᵀW[X Z] + blkdiag(0, D⁻¹).
		h := g.h
		h.Zero()
		for i := 0; i < d.n; i++ {
			wi := w[i]
			cols := d.zCols(i)
			for a := 0; a < p; a++ {
				xa := d.spec.Fixed.At(i, a)
				if xa == 0 {
					continue
				}
				for b := a; b < p; b++ {
					h.Add(a, b, wi*xa*d.spec.Fixed.At(i, b))
				}
				for _, c := range cols {
					h.Add(a, p+c, wi*xa)
				}
			}
			for ai, ca := range cols {
				for _, cb := range cols[ai:] {
					lo, hi := p+ca, p+cb
					if lo > hi {
						lo, hi = hi, lo
					}
					h.Add(lo, hi, wi)
				}
			}
		}
		for c := 0; c < q; c++ {
			h.Add(p+c, p+c, dInv[c])
		}
		// Mirror the upper triangle.
		for a := 0; a < dim; a++ {
			for b := 0; b < a; b++ {
				h.Set(a, b, h.At(b, a))
			}
		}

		if err := g.chol.Refactor(h); err != nil {
			g.lastBad = true
			return math.Inf(1)
		}
		haveChol = true
		step := g.step
		if err := g.chol.SolveVecTo(step, grad); err != nil {
			g.lastBad = true
			return math.Inf(1)
		}

		// Line search with step halving on the penalized log-likelihood.
		improved := false
		trial := g.trial
		for scale := 1.0; scale > 1e-4; scale /= 2 {
			for j := range u {
				trial[j] = u[j] + scale*step[j]
			}
			if cand := pll(trial); cand > cur-1e-12 {
				stepNorm := linalg.Norm2(step) * scale
				copy(u, trial)
				improved = cand > cur
				cur = cand
				if stepNorm < 1e-9 {
					converged = true
				}
				break
			}
		}
		if converged || !improved {
			break
		}
	}
	if !haveChol {
		g.lastBad = true
		return math.Inf(1)
	}

	// Laplace deviance needs the b-block Hessian H_bb = ZᵀWZ + D⁻¹ at the
	// optimum; recompute weights at the final u.
	for i := 0; i < d.n; i++ {
		e := 0.0
		for j := 0; j < p; j++ {
			e += d.spec.Fixed.At(i, j) * u[j]
		}
		for _, c := range d.zCols(i) {
			e += u[p+c]
		}
		mu[i] = stats.LogisticCDF(e)
		w[i] = mu[i] * (1 - mu[i])
	}
	hbb := g.hbb
	hbb.Zero()
	for i := 0; i < d.n; i++ {
		cols := d.zCols(i)
		for _, a := range cols {
			for _, b := range cols {
				hbb.Add(a, b, w[i])
			}
		}
	}
	for c := 0; c < q; c++ {
		hbb.Add(c, c, dInv[c])
	}
	if err := g.hbbChol.Refactor(hbb); err != nil {
		g.lastBad = true
		return math.Inf(1)
	}
	logDetD := 0.0
	for c := 0; c < q; c++ {
		logDetD -= math.Log(dInv[c]) // log σ²_c
	}
	logLik := cur - 0.5*(g.hbbChol.LogDet()+logDetD)

	// Stash β, BLUPs, and Wald covariance diagonal from the full Hessian.
	g.lastBeta = append(g.lastBeta[:0], u[:p]...)
	g.lastBLUP = append(g.lastBLUP[:0], u[p:]...)
	g.lastCovBeta = g.lastCovBeta[:0]
	hInv := g.hInv
	if err := g.chol.InverseTo(hInv, g.colBuf); err != nil {
		g.lastBad = true
		return math.Inf(1)
	}
	for j := 0; j < p; j++ {
		g.lastCovBeta = append(g.lastCovBeta, hInv.At(j, j))
	}
	g.lastBad = false
	return -2 * logLik
}

// log1pExp computes log(1+e^x) without overflow.
func log1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// FitGLMMLogit fits a logistic mixed model with random intercepts using the
// Laplace approximation, matching R's glmer(..., family=binomial) for the
// models in the paper. spec.REML is ignored (GLMMs are always fit by ML).
func FitGLMMLogit(spec *Spec) (*Result, error) {
	return FitGLMMLogitCtx(context.Background(), spec)
}

// FitGLMMLogitCtx is FitGLMMLogit with telemetry: a mixed.FitGLMMLogit span
// plus outer-search iteration counts, inner PIRLS iteration counts, and a
// convergence gauge.
func FitGLMMLogitCtx(ctx context.Context, spec *Spec) (*Result, error) {
	_, sp := obs.StartSpan(ctx, "mixed.FitGLMMLogit")
	defer sp.End()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	for i, y := range spec.Response {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("mixed: logistic response[%d] = %v, want 0 or 1: %w", i, y, ErrSpec)
		}
	}
	sp.SetAttr("n", len(spec.Response))
	d := newDesign(spec)
	st := newGLMMState(ctx, d)

	obj := func(logSD []float64) float64 {
		dInv := st.dInv
		for c := 0; c < d.q; c++ {
			sd := math.Exp(logSD[d.colFac[c]])
			if sd < 1e-6 {
				sd = 1e-6
			}
			dInv[c] = 1 / (sd * sd)
		}
		return st.pirls(dInv)
	}

	start := make([]float64, len(spec.Random)) // σ = 1 per factor
	res, err := optimize.NelderMead(obj, start, &optimize.NelderMeadConfig{
		MaxIter: 800, TolF: 1e-8, TolX: 1e-5, Step: 0.7,
	})
	if err != nil {
		return nil, fmt.Errorf("mixed: GLMM variance search: %w", err)
	}
	recordFitTelemetry(ctx, sp, "mixed.glmm", res)
	dev := obj(res.X)
	if st.lastBad || math.IsInf(dev, 1) {
		return nil, fmt.Errorf("mixed: GLMM evaluation failed at optimum: %w", ErrFit)
	}

	randSD := make([]VarComp, len(spec.Random))
	sumRandVar := 0.0
	for k, rf := range spec.Random {
		sd := math.Exp(res.X[k])
		if sd < 1e-6 {
			sd = 0
		}
		randSD[k] = VarComp{Name: rf.Name, StdDev: sd}
		sumRandVar += sd * sd
	}
	blups := make([][]float64, len(spec.Random))
	for k, rf := range spec.Random {
		blups[k] = append([]float64(nil), st.lastBLUP[d.offsets[k]:d.offsets[k]+rf.NLevels]...)
	}

	varF := fixedEffectVariance(d, st.lastBeta)
	const logitResidVar = math.Pi * math.Pi / 3
	total := varF + sumRandVar + logitResidVar
	df := float64(d.p + len(spec.Random))
	n := float64(d.n)
	nGroups := make([]int, len(spec.Random))
	for k, rf := range spec.Random {
		nGroups[k] = rf.NLevels
	}
	return &Result{
		Kind:          "glmer (binomial)",
		Fixed:         waldFixed(spec.FixedNames, st.lastBeta, st.lastCovBeta),
		Random:        randSD,
		LogLik:        -dev / 2,
		Deviance:      dev,
		AIC:           dev + 2*df,
		BIC:           dev + math.Log(n)*df,
		R2Marginal:    varF / total,
		R2Conditional: (varF + sumRandVar) / total,
		NObs:          d.n,
		NGroups:       nGroups,
		Converged:     res.Converged,
		BLUPs:         blups,
	}, nil
}

package mixed

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"decompstudy/internal/linalg"
)

// crossedSpec simulates the paper's model shape: a treatment indicator plus
// two crossed random intercepts (user, question).
func crossedSpec(binary bool) *Spec {
	rng := rand.New(rand.NewSource(7))
	const users, questions = 20, 8
	n := users * questions
	y := make([]float64, 0, n)
	uIdx := make([]int, 0, n)
	qIdx := make([]int, 0, n)
	fixed := linalg.NewMatrix(n, 2)
	i := 0
	for u := 0; u < users; u++ {
		ub := rng.NormFloat64() * 0.8
		for q := 0; q < questions; q++ {
			qb := float64(q%3-1) * 0.5
			treat := float64((u + q) % 2)
			eta := 0.3 + 0.9*treat + ub + qb
			if binary {
				p := 1 / (1 + math.Exp(-eta))
				if rng.Float64() < p {
					y = append(y, 1)
				} else {
					y = append(y, 0)
				}
			} else {
				y = append(y, eta+rng.NormFloat64()*0.6)
			}
			fixed.Set(i, 0, 1)
			fixed.Set(i, 1, treat)
			uIdx = append(uIdx, u)
			qIdx = append(qIdx, q)
			i++
		}
	}
	return &Spec{
		Response:   y,
		Fixed:      fixed,
		FixedNames: []string{"(Intercept)", "treat"},
		Random: []RandomFactor{
			{Name: "user", Index: uIdx, NLevels: users},
			{Name: "question", Index: qIdx, NLevels: questions},
		},
	}
}

// TestLMMEvalAllocFree pins the workspace contract of the profiled-deviance
// kernel: after the first evaluation, the Nelder-Mead search runs with zero
// allocations per step.
func TestLMMEvalAllocFree(t *testing.T) {
	spec := crossedSpec(false)
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	d := newDesign(spec)
	prof, err := newLMMProfile(d, false)
	if err != nil {
		t.Fatal(err)
	}
	pt := []float64{-0.1, -0.2}
	prof.eval(pt) // warm-up
	if prof.lastBad {
		t.Fatal("warm-up evaluation failed")
	}
	avg := testing.AllocsPerRun(50, func() { prof.eval(pt) })
	if avg != 0 {
		t.Errorf("lmmProfile.eval allocates %.1f per call, want 0", avg)
	}
}

// TestGLMMPirlsAllocBounded pins the PIRLS workspace: one call used to
// allocate a fresh Hessian, Cholesky factor, gradient, and trial vector per
// Newton step; with the workspace only the telemetry closure and warm-start
// bookkeeping remain.
func TestGLMMPirlsAllocBounded(t *testing.T) {
	spec := crossedSpec(true)
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	d := newDesign(spec)
	st := newGLMMState(context.Background(), d)
	dInv := make([]float64, d.q)
	for c := range dInv {
		dInv[c] = 1
	}
	st.pirls(dInv) // warm-up also sizes lastBeta/lastBLUP/lastCovBeta
	if st.lastBad {
		t.Fatal("warm-up PIRLS failed")
	}
	avg := testing.AllocsPerRun(20, func() { st.pirls(dInv) })
	// The deferred obs closure plus pll captures cost a few boxes per call;
	// the pre-rewrite kernel cost thousands (per-iteration Hessians).
	if avg > 8 {
		t.Errorf("pirls allocates %.1f per call, want <= 8", avg)
	}
}

// TestLMMWorkspaceReuseMatchesFresh checks that evaluating at one point,
// then another, gives exactly the result of a fresh profile evaluated at
// the second point — the workspace carries no state across evaluations.
func TestLMMWorkspaceReuseMatchesFresh(t *testing.T) {
	spec := crossedSpec(false)
	d := newDesign(spec)
	reused, err := newLMMProfile(d, false)
	if err != nil {
		t.Fatal(err)
	}
	reused.eval([]float64{1.5, -2})
	got := reused.eval([]float64{-0.3, 0.4})

	fresh, err := newLMMProfile(newDesign(spec), false)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.eval([]float64{-0.3, 0.4})
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("reused deviance %v != fresh %v", got, want)
	}
	for j := range reused.lastResult.beta {
		if math.Float64bits(reused.lastResult.beta[j]) != math.Float64bits(fresh.lastResult.beta[j]) {
			t.Fatalf("beta[%d]: reused %v != fresh %v", j, reused.lastResult.beta[j], fresh.lastResult.beta[j])
		}
	}
}

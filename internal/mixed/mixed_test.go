package mixed

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"decompstudy/internal/linalg"
	"decompstudy/internal/stats"
)

// balancedOneWay simulates y_ij = mu + u_i + e_ij for a balanced one-way
// random-effects design.
func balancedOneWay(rng *rand.Rand, k, m int, mu, sdU, sdE float64) ([]float64, []int) {
	y := make([]float64, 0, k*m)
	idx := make([]int, 0, k*m)
	for g := 0; g < k; g++ {
		u := rng.NormFloat64() * sdU
		for j := 0; j < m; j++ {
			y = append(y, mu+u+rng.NormFloat64()*sdE)
			idx = append(idx, g)
		}
	}
	return y, idx
}

func interceptOnly(n int) (*linalg.Matrix, []string) {
	x := linalg.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
	}
	return x, []string{"(Intercept)"}
}

// TestLMMBalancedOneWayMatchesANOVA checks REML estimates against the exact
// closed-form ANOVA estimators, which coincide with REML in the balanced
// one-way design.
func TestLMMBalancedOneWayMatchesANOVA(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k, m = 12, 8
	y, idx := balancedOneWay(rng, k, m, 5, 2, 1)
	x, names := interceptOnly(len(y))

	res, err := FitLMM(&Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: names,
		Random:     []RandomFactor{{Name: "group", Index: idx, NLevels: k}},
		REML:       true,
	})
	if err != nil {
		t.Fatalf("FitLMM: %v", err)
	}

	// Closed-form ANOVA estimators.
	grand := stats.Mean(y)
	groupMeans := make([]float64, k)
	counts := make([]int, k)
	for i, g := range idx {
		groupMeans[g] += y[i]
		counts[g]++
	}
	for g := range groupMeans {
		groupMeans[g] /= float64(counts[g])
	}
	var ssb, sse float64
	for i, g := range idx {
		d := y[i] - groupMeans[g]
		sse += d * d
	}
	for g := range groupMeans {
		d := groupMeans[g] - grand
		ssb += float64(m) * d * d
	}
	msb := ssb / float64(k-1)
	mse := sse / float64(k*(m-1))
	wantSigmaE := math.Sqrt(mse)
	wantSigmaU := math.Sqrt((msb - mse) / float64(m))

	if math.Abs(res.ResidualSD-wantSigmaE) > 1e-3 {
		t.Errorf("σ(resid) = %v, want %v", res.ResidualSD, wantSigmaE)
	}
	if math.Abs(res.Random[0].StdDev-wantSigmaU) > 1e-3 {
		t.Errorf("σ(group) = %v, want %v", res.Random[0].StdDev, wantSigmaU)
	}
	if got := res.Fixed[0].Estimate; math.Abs(got-grand) > 1e-6 {
		t.Errorf("intercept = %v, want grand mean %v", got, grand)
	}
	// SE of the grand mean in a balanced design is sqrt(MSB/(k*m)).
	wantSE := math.Sqrt(msb / float64(k*m))
	if got := res.Fixed[0].StdErr; math.Abs(got-wantSE) > 1e-3 {
		t.Errorf("SE(intercept) = %v, want %v", got, wantSE)
	}
}

// TestLMMRecoversSimulationTruth fits the paper's model shape (two crossed
// random intercepts plus covariates) on data simulated from known
// parameters.
func TestLMMRecoversSimulationTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nUser, nQ = 60, 8
	trueBeta := []float64{200, 25, 4, -6} // intercept, treatment, covariate1, covariate2
	sdUser, sdQ, sdE := 90.0, 120.0, 50.0

	userEff := make([]float64, nUser)
	for i := range userEff {
		userEff[i] = rng.NormFloat64() * sdUser
	}
	qEff := make([]float64, nQ)
	for i := range qEff {
		qEff[i] = rng.NormFloat64() * sdQ
	}

	var y []float64
	var userIdx, qIdx []int
	var rows [][]float64
	for u := 0; u < nUser; u++ {
		coding := float64(rng.Intn(15))
		re := float64(rng.Intn(8))
		for q := 0; q < nQ; q++ {
			treat := float64(rng.Intn(2))
			eta := trueBeta[0] + trueBeta[1]*treat + trueBeta[2]*coding + trueBeta[3]*re +
				userEff[u] + qEff[q] + rng.NormFloat64()*sdE
			y = append(y, eta)
			rows = append(rows, []float64{1, treat, coding, re})
			userIdx = append(userIdx, u)
			qIdx = append(qIdx, q)
		}
	}
	x, err := linalg.NewMatrixFromRows(rows)
	if err != nil {
		t.Fatalf("design: %v", err)
	}
	res, err := FitLMM(&Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: []string{"(Intercept)", "treat", "coding", "re"},
		Random: []RandomFactor{
			{Name: "user", Index: userIdx, NLevels: nUser},
			{Name: "question", Index: qIdx, NLevels: nQ},
		},
	})
	if err != nil {
		t.Fatalf("FitLMM: %v", err)
	}
	if !res.Converged {
		t.Error("LMM did not converge")
	}
	// β recovery within ~3 SEs.
	for j, want := range trueBeta {
		f := res.Fixed[j]
		if math.Abs(f.Estimate-want) > 3.5*f.StdErr+1e-9 {
			t.Errorf("β[%s] = %v ± %v, truth %v", f.Name, f.Estimate, f.StdErr, want)
		}
	}
	// Variance components within a factor of ~2 (8 question levels is a
	// small sample for σ_q).
	if sd := res.Random[0].StdDev; sd < sdUser/2 || sd > sdUser*2 {
		t.Errorf("σ(user) = %v, truth %v", sd, sdUser)
	}
	if sd := res.Random[1].StdDev; sd < sdQ/3 || sd > sdQ*3 {
		t.Errorf("σ(question) = %v, truth %v", sd, sdQ)
	}
	if sd := res.ResidualSD; sd < sdE*0.85 || sd > sdE*1.15 {
		t.Errorf("σ(resid) = %v, truth %v", sd, sdE)
	}
	if res.R2Conditional <= res.R2Marginal {
		t.Errorf("R²c (%v) should exceed R²m (%v)", res.R2Conditional, res.R2Marginal)
	}
	if res.R2Conditional < 0.5 {
		t.Errorf("R²c = %v; random effects dominate this simulation, want > 0.5", res.R2Conditional)
	}
}

// TestLMMNoRandomVarianceMatchesOLS checks that when the grouping factor
// carries no variance, the LMM collapses to ordinary least squares.
func TestLMMNoRandomVarianceMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 400
	var y []float64
	var rows [][]float64
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		xv := rng.NormFloat64()
		y = append(y, 1.5+2*xv+rng.NormFloat64()*0.5)
		rows = append(rows, []float64{1, xv})
		idx[i] = i % 10 // grouping unrelated to y
	}
	x, _ := linalg.NewMatrixFromRows(rows)
	res, err := FitLMM(&Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: []string{"(Intercept)", "x"},
		Random:     []RandomFactor{{Name: "g", Index: idx, NLevels: 10}},
	})
	if err != nil {
		t.Fatalf("FitLMM: %v", err)
	}
	// OLS solution.
	xtx := linalg.XtX(x)
	xty, _ := linalg.XtV(x, y)
	ch, _ := linalg.NewCholesky(xtx)
	ols, _ := ch.SolveVec(xty)
	for j := range ols {
		if math.Abs(res.Fixed[j].Estimate-ols[j]) > 0.02 {
			t.Errorf("β[%d] = %v, OLS %v", j, res.Fixed[j].Estimate, ols[j])
		}
	}
	if res.Random[0].StdDev > 0.12 {
		t.Errorf("σ(g) = %v, want ≈0 for uninformative grouping", res.Random[0].StdDev)
	}
}

func TestLMMSpecValidation(t *testing.T) {
	x, names := interceptOnly(4)
	base := &Spec{
		Response:   []float64{1, 2, 3, 4},
		Fixed:      x,
		FixedNames: names,
		Random:     []RandomFactor{{Name: "g", Index: []int{0, 0, 1, 1}, NLevels: 2}},
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"nil fixed", func(s *Spec) { s.Fixed = nil }},
		{"empty response", func(s *Spec) { s.Response = nil }},
		{"row mismatch", func(s *Spec) { s.Response = []float64{1, 2} }},
		{"name mismatch", func(s *Spec) { s.FixedNames = nil }},
		{"no random", func(s *Spec) { s.Random = nil }},
		{"bad index len", func(s *Spec) { s.Random = []RandomFactor{{Name: "g", Index: []int{0}, NLevels: 2}} }},
		{"level out of range", func(s *Spec) {
			s.Random = []RandomFactor{{Name: "g", Index: []int{0, 0, 1, 5}, NLevels: 2}}
		}},
		{"zero levels", func(s *Spec) {
			s.Random = []RandomFactor{{Name: "g", Index: []int{0, 0, 0, 0}, NLevels: 0}}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := *base
			s.Random = append([]RandomFactor(nil), base.Random...)
			c.mutate(&s)
			if _, err := FitLMM(&s); !errors.Is(err, ErrSpec) {
				t.Errorf("err = %v, want ErrSpec", err)
			}
		})
	}
}

func TestGLMMRejectsNonBinaryResponse(t *testing.T) {
	x, names := interceptOnly(3)
	_, err := FitGLMMLogit(&Spec{
		Response:   []float64{0, 1, 2},
		Fixed:      x,
		FixedNames: names,
		Random:     []RandomFactor{{Name: "g", Index: []int{0, 1, 0}, NLevels: 2}},
	})
	if !errors.Is(err, ErrSpec) {
		t.Fatalf("err = %v, want ErrSpec", err)
	}
}

// TestGLMMRecoversSimulationTruth simulates the paper's correctness model
// and checks coefficient recovery.
func TestGLMMRecoversSimulationTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const nUser, nQ = 80, 8
	trueBeta := []float64{0.4, -0.5, 0.08} // intercept, treatment, covariate
	sdUser, sdQ := 0.8, 1.1

	userEff := make([]float64, nUser)
	for i := range userEff {
		userEff[i] = rng.NormFloat64() * sdUser
	}
	qEff := make([]float64, nQ)
	for i := range qEff {
		qEff[i] = rng.NormFloat64() * sdQ
	}
	var y []float64
	var rows [][]float64
	var userIdx, qIdx []int
	for u := 0; u < nUser; u++ {
		cov := float64(rng.Intn(15))
		for q := 0; q < nQ; q++ {
			treat := float64(rng.Intn(2))
			eta := trueBeta[0] + trueBeta[1]*treat + trueBeta[2]*cov + userEff[u] + qEff[q]
			pr := stats.LogisticCDF(eta)
			v := 0.0
			if rng.Float64() < pr {
				v = 1
			}
			y = append(y, v)
			rows = append(rows, []float64{1, treat, cov})
			userIdx = append(userIdx, u)
			qIdx = append(qIdx, q)
		}
	}
	x, _ := linalg.NewMatrixFromRows(rows)
	res, err := FitGLMMLogit(&Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: []string{"(Intercept)", "treat", "cov"},
		Random: []RandomFactor{
			{Name: "user", Index: userIdx, NLevels: nUser},
			{Name: "question", Index: qIdx, NLevels: nQ},
		},
	})
	if err != nil {
		t.Fatalf("FitGLMMLogit: %v", err)
	}
	for j, want := range trueBeta {
		f := res.Fixed[j]
		if math.Abs(f.Estimate-want) > 3.5*f.StdErr+0.05 {
			t.Errorf("β[%s] = %v ± %v, truth %v", f.Name, f.Estimate, f.StdErr, want)
		}
	}
	if sd := res.Random[0].StdDev; sd < 0.3 || sd > 1.6 {
		t.Errorf("σ(user) = %v, truth %v", sd, sdUser)
	}
	if res.R2Conditional <= res.R2Marginal {
		t.Errorf("R²c (%v) ≤ R²m (%v)", res.R2Conditional, res.R2Marginal)
	}
	if res.AIC <= res.Deviance {
		t.Errorf("AIC %v should exceed deviance %v", res.AIC, res.Deviance)
	}
	if res.BIC <= res.AIC {
		t.Errorf("BIC %v should exceed AIC %v for n > e²", res.BIC, res.AIC)
	}
}

// TestGLMMNullTreatmentIsInsignificant verifies the no-effect case: with a
// treatment that has no real effect, the Wald p-value should (almost
// always) be insignificant — the paper's central RQ1 situation.
func TestGLMMNullTreatmentIsInsignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const nUser, nQ = 38, 8
	userEff := make([]float64, nUser)
	for i := range userEff {
		userEff[i] = rng.NormFloat64() * 0.85
	}
	qEff := make([]float64, nQ)
	for i := range qEff {
		qEff[i] = rng.NormFloat64() * 1.14
	}
	var y []float64
	var rows [][]float64
	var userIdx, qIdx []int
	for u := 0; u < nUser; u++ {
		for q := 0; q < nQ; q++ {
			treat := float64(rng.Intn(2))
			eta := 0.5 + userEff[u] + qEff[q] // treatment truly absent
			v := 0.0
			if rng.Float64() < stats.LogisticCDF(eta) {
				v = 1
			}
			y = append(y, v)
			rows = append(rows, []float64{1, treat})
			userIdx = append(userIdx, u)
			qIdx = append(qIdx, q)
		}
	}
	x, _ := linalg.NewMatrixFromRows(rows)
	res, err := FitGLMMLogit(&Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: []string{"(Intercept)", "uses_DIRTY"},
		Random: []RandomFactor{
			{Name: "user", Index: userIdx, NLevels: nUser},
			{Name: "question", Index: qIdx, NLevels: nQ},
		},
	})
	if err != nil {
		t.Fatalf("FitGLMMLogit: %v", err)
	}
	f, ok := res.Coef("uses_DIRTY")
	if !ok {
		t.Fatal("uses_DIRTY coefficient missing")
	}
	if f.Significant() {
		t.Errorf("null treatment flagged significant: %+v (seed-specific flake would indicate a calibration bug)", f)
	}
}

func TestResultStringAndCoef(t *testing.T) {
	r := &Result{
		Kind:       "lmer",
		Fixed:      []FixedEffect{{Name: "(Intercept)", Estimate: 1, StdErr: 0.1, P: 0.001}},
		Random:     []VarComp{{Name: "user", StdDev: 2}},
		ResidualSD: 3,
		NObs:       10,
		NGroups:    []int{5},
	}
	s := r.String()
	if s == "" {
		t.Fatal("empty summary")
	}
	if _, ok := r.Coef("(Intercept)"); !ok {
		t.Error("Coef failed to find intercept")
	}
	if _, ok := r.Coef("nope"); ok {
		t.Error("Coef found nonexistent effect")
	}
}

func TestLikelihoodRatioTestNullEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const nUser, nQ = 40, 8
	userEff := make([]float64, nUser)
	for i := range userEff {
		userEff[i] = rng.NormFloat64() * 0.7
	}
	var y []float64
	var rows [][]float64
	var userIdx, qIdx []int
	for u := 0; u < nUser; u++ {
		for q := 0; q < nQ; q++ {
			treat := float64(rng.Intn(2))
			eta := 0.3 + userEff[u] // no treatment effect
			v := 0.0
			if rng.Float64() < stats.LogisticCDF(eta) {
				v = 1
			}
			y = append(y, v)
			rows = append(rows, []float64{1, treat})
			userIdx = append(userIdx, u)
			qIdx = append(qIdx, q)
		}
	}
	x, _ := linalg.NewMatrixFromRows(rows)
	spec := &Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: []string{"(Intercept)", "treat"},
		Random: []RandomFactor{
			{Name: "user", Index: userIdx, NLevels: nUser},
			{Name: "question", Index: qIdx, NLevels: nQ},
		},
	}
	lrt, err := LikelihoodRatioTest(spec, "treat", true)
	if err != nil {
		t.Fatalf("LikelihoodRatioTest: %v", err)
	}
	if lrt.P < 0.05 {
		t.Errorf("null effect flagged significant by LRT: chi2=%v p=%v", lrt.Chi2, lrt.P)
	}
	if lrt.Full.Deviance > lrt.Reduced.Deviance+1e-6 {
		t.Errorf("full model deviance %v should not exceed reduced %v", lrt.Full.Deviance, lrt.Reduced.Deviance)
	}
}

func TestLikelihoodRatioTestRealEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n = 500
	var y []float64
	var rows [][]float64
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		xv := float64(rng.Intn(2))
		mu := 1 + 3*xv + rng.NormFloat64()
		y = append(y, mu)
		rows = append(rows, []float64{1, xv})
		idx[i] = i % 10
	}
	x, _ := linalg.NewMatrixFromRows(rows)
	spec := &Spec{
		Response:   y,
		Fixed:      x,
		FixedNames: []string{"(Intercept)", "x"},
		Random:     []RandomFactor{{Name: "g", Index: idx, NLevels: 10}},
	}
	lrt, err := LikelihoodRatioTest(spec, "x", false)
	if err != nil {
		t.Fatalf("LikelihoodRatioTest: %v", err)
	}
	if lrt.P > 1e-6 {
		t.Errorf("strong effect not detected: chi2=%v p=%v", lrt.Chi2, lrt.P)
	}
}

func TestDropColumnErrors(t *testing.T) {
	x, names := interceptOnly(4)
	spec := &Spec{
		Response:   []float64{1, 2, 3, 4},
		Fixed:      x,
		FixedNames: names,
		Random:     []RandomFactor{{Name: "g", Index: []int{0, 0, 1, 1}, NLevels: 2}},
	}
	if _, err := spec.DropColumn("missing"); !errors.Is(err, ErrSpec) {
		t.Errorf("missing column: err = %v, want ErrSpec", err)
	}
	if _, err := spec.DropColumn("(Intercept)"); !errors.Is(err, ErrSpec) {
		t.Errorf("only column: err = %v, want ErrSpec", err)
	}
}

// Package mixed fits linear and logistic mixed-effects regression models
// with crossed random intercepts, reproducing the two models in the paper:
//
//	correctness ~ uses_DIRTY + Exp_Coding + Exp_RE + (1|user) + (1|question)   [glmer, binomial]
//	timing      ~ uses_DIRTY + Exp_Coding + Exp_RE + (1|user) + (1|question)   [lmer]
//
// The linear model is fit by profiled maximum likelihood (or REML) over the
// variance ratios, using the Woodbury identity so each deviance evaluation
// factors only a q×q system (q = total random-effect levels). The logistic
// model uses the Laplace approximation with a penalized-IRLS inner loop,
// the same strategy as lme4's glmer. Both report Wald standard errors,
// Nakagawa marginal/conditional R², AIC, and BIC.
package mixed

import (
	"errors"
	"fmt"

	"decompstudy/internal/linalg"
)

// ErrSpec is returned when a model specification is malformed.
var ErrSpec = errors.New("mixed: invalid model specification")

// ErrFit is returned when estimation fails to converge or the model matrix
// is degenerate.
var ErrFit = errors.New("mixed: model fitting failed")

// RandomFactor names a random-intercept grouping factor: Index[i] gives the
// level (0-based) of observation i, and NLevels is the number of distinct
// levels.
type RandomFactor struct {
	Name    string
	Index   []int
	NLevels int
}

// Spec describes a mixed model: a response vector, a fixed-effects design
// matrix (including the intercept column), and one or more random-intercept
// factors.
type Spec struct {
	// Response holds the dependent variable; for logistic models entries
	// must be 0 or 1.
	Response []float64
	// Fixed is the n×p fixed-effects design matrix including an intercept
	// column.
	Fixed *linalg.Matrix
	// FixedNames labels the columns of Fixed.
	FixedNames []string
	// Random lists the random-intercept grouping factors.
	Random []RandomFactor
	// REML requests REML rather than ML estimation (linear models only).
	REML bool
}

// validate checks the shape invariants shared by both fitters.
func (s *Spec) validate() error {
	if s.Fixed == nil {
		return fmt.Errorf("mixed: nil fixed-effects matrix: %w", ErrSpec)
	}
	n := len(s.Response)
	if n == 0 {
		return fmt.Errorf("mixed: empty response: %w", ErrSpec)
	}
	if s.Fixed.Rows() != n {
		return fmt.Errorf("mixed: %d responses but %d design rows: %w", n, s.Fixed.Rows(), ErrSpec)
	}
	if len(s.FixedNames) != s.Fixed.Cols() {
		return fmt.Errorf("mixed: %d column names for %d columns: %w", len(s.FixedNames), s.Fixed.Cols(), ErrSpec)
	}
	if s.Fixed.Cols() > n {
		return fmt.Errorf("mixed: more fixed effects (%d) than observations (%d): %w", s.Fixed.Cols(), n, ErrSpec)
	}
	if len(s.Random) == 0 {
		return fmt.Errorf("mixed: at least one random factor required: %w", ErrSpec)
	}
	for _, rf := range s.Random {
		if len(rf.Index) != n {
			return fmt.Errorf("mixed: factor %q has %d indices for %d observations: %w", rf.Name, len(rf.Index), n, ErrSpec)
		}
		if rf.NLevels <= 0 {
			return fmt.Errorf("mixed: factor %q has %d levels: %w", rf.Name, rf.NLevels, ErrSpec)
		}
		for i, l := range rf.Index {
			if l < 0 || l >= rf.NLevels {
				return fmt.Errorf("mixed: factor %q index %d has level %d outside [0,%d): %w", rf.Name, i, l, rf.NLevels, ErrSpec)
			}
		}
	}
	return nil
}

// design holds the sparse random-effects design bookkeeping: the column
// offset of each factor within the concatenated Z matrix and the factor of
// each Z column.
type design struct {
	spec    *Spec
	n, p, q int
	offsets []int   // per factor, column offset in Z
	colFac  []int   // per Z column, owning factor
	zcols   [][]int // per observation, the Z columns that are 1 (one per factor)
}

func newDesign(s *Spec) *design {
	d := &design{spec: s, n: len(s.Response), p: s.Fixed.Cols()}
	d.offsets = make([]int, len(s.Random))
	for k, rf := range s.Random {
		d.offsets[k] = d.q
		d.q += rf.NLevels
	}
	d.colFac = make([]int, d.q)
	for k, rf := range s.Random {
		for j := 0; j < rf.NLevels; j++ {
			d.colFac[d.offsets[k]+j] = k
		}
	}
	// Precompute the per-observation indicator columns into one flat
	// backing array; zCols is called for every observation on every
	// cross-product and PIRLS sweep, so this trades O(n·factors) ints once
	// for an allocation per call.
	nf := len(s.Random)
	flat := make([]int, d.n*nf)
	d.zcols = make([][]int, d.n)
	for i := 0; i < d.n; i++ {
		row := flat[i*nf : (i+1)*nf : (i+1)*nf]
		for k, rf := range s.Random {
			row[k] = d.offsets[k] + rf.Index[i]
		}
		d.zcols[i] = row
	}
	return d
}

// zCols returns, for observation i, the Z columns that are 1 (one per
// factor). The returned slice is a view into precomputed storage; callers
// must not modify it.
func (d *design) zCols(i int) []int {
	return d.zcols[i]
}

// ztZ returns ZᵀZ (q×q) built from the indicator structure.
func (d *design) ztZ() *linalg.Matrix {
	m := linalg.NewMatrix(d.q, d.q)
	for i := 0; i < d.n; i++ {
		cols := d.zCols(i)
		for _, a := range cols {
			for _, b := range cols {
				m.Add(a, b, 1)
			}
		}
	}
	return m
}

// ztX returns ZᵀX (q×p).
func (d *design) ztX() *linalg.Matrix {
	m := linalg.NewMatrix(d.q, d.p)
	for i := 0; i < d.n; i++ {
		for _, c := range d.zCols(i) {
			for j := 0; j < d.p; j++ {
				m.Add(c, j, d.spec.Fixed.At(i, j))
			}
		}
	}
	return m
}

// ztVec returns Zᵀv (length q) for a per-observation vector v.
func (d *design) ztVec(v []float64) []float64 {
	out := make([]float64, d.q)
	for i := 0; i < d.n; i++ {
		for _, c := range d.zCols(i) {
			out[c] += v[i]
		}
	}
	return out
}

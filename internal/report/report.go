// Package report renders the paper's tables and figures as plain text:
// fixed-width tables (Tables I–IV), horizontal bar histograms (Figure 3),
// grouped correctness bars (Figure 5), boxplots (Figures 6–7), and
// diverging Likert charts (Figure 8). Everything returns a string so the
// same renderers serve the CLI, the benchmarks, and EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"decompstudy/internal/stats"
)

// Table renders rows as a fixed-width table with a header rule.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Note is printed under the table (the paper's "Note:" lines).
	Note string
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		b.WriteString("Note: " + t.Note + "\n")
	}
	return b.String()
}

// Histogram renders labeled counts as horizontal bars (Figure 3 style).
func Histogram(title string, labels []string, counts []int, width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	for i, l := range labels {
		n := 0
		if i < len(counts) {
			n = counts[i]
		}
		bar := strings.Repeat("█", n*width/maxCount)
		fmt.Fprintf(&b, "  %-*s | %-*s %d\n", labelWidth, l, width, bar, n)
	}
	return b.String()
}

// GroupedBars renders two-series percentage bars per category (Figure 5
// style: DIRTY vs Hex-Rays correctness).
func GroupedBars(title string, categories []string, seriesA, seriesB []float64, nameA, nameB string) string {
	const width = 30
	var b strings.Builder
	b.WriteString(title + "\n")
	labelWidth := 0
	for _, c := range categories {
		if len(c) > labelWidth {
			labelWidth = len(c)
		}
	}
	for i, cat := range categories {
		a, bb := seriesA[i], seriesB[i]
		fmt.Fprintf(&b, "  %-*s %-9s |%-*s| %5.1f%%\n", labelWidth, cat, nameA,
			width, strings.Repeat("█", int(a*width+0.5)), a*100)
		fmt.Fprintf(&b, "  %-*s %-9s |%-*s| %5.1f%%\n", labelWidth, "", nameB,
			width, strings.Repeat("░", int(bb*width+0.5)), bb*100)
	}
	return b.String()
}

// Boxplot renders a five-number summary as an ASCII box (Figures 6b/7c).
func Boxplot(label string, xs []float64, lo, hi float64, width int) string {
	if width <= 0 {
		width = 50
	}
	fn, err := stats.Summarize(xs)
	if err != nil {
		return fmt.Sprintf("%s: (no data)\n", label)
	}
	if hi <= lo {
		lo, hi = fn.Min, fn.Max
		if hi <= lo {
			hi = lo + 1
		}
	}
	pos := func(v float64) int {
		p := int((v - lo) / (hi - lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []rune(strings.Repeat(" ", width))
	for i := pos(fn.Min); i <= pos(fn.Max); i++ {
		row[i] = '-'
	}
	for i := pos(fn.Q1); i <= pos(fn.Q3); i++ {
		row[i] = '▒'
	}
	row[pos(fn.Median)] = '█'
	row[pos(fn.Min)] = '|'
	row[pos(fn.Max)] = '|'
	return fmt.Sprintf("%-10s %s  (n=%d, median=%.1f, mean=%.1f)\n",
		label, string(row), fn.N, fn.Median, fn.Mean)
}

// DivergingLikert renders a centered diverging bar for 5-point Likert
// counts (Figure 8 style): levels 1-2 extend left (positive), level 3 is
// the pivot, levels 4-5 extend right (negative).
func DivergingLikert(label string, counts [5]int, width int) string {
	if width <= 0 {
		width = 30
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return fmt.Sprintf("%-10s (no ratings)\n", label)
	}
	frac := func(n int) int { return int(math.Round(float64(n) / float64(total) * float64(width))) }
	left := strings.Repeat("█", frac(counts[0])) + strings.Repeat("▓", frac(counts[1]))
	mid := strings.Repeat("─", frac(counts[2]))
	right := strings.Repeat("░", frac(counts[3])) + strings.Repeat("×", frac(counts[4]))
	posPct := float64(counts[0]+counts[1]) / float64(total) * 100
	negPct := float64(counts[3]+counts[4]) / float64(total) * 100
	return fmt.Sprintf("%-10s %*s│%s%-*s  +%.0f%% / -%.0f%%\n",
		label, width, left+mid, right, width, "", posPct, negPct)
}

// LikertCounts tallies 1-5 ratings into the five buckets.
func LikertCounts(ratings []float64) [5]int {
	var out [5]int
	for _, r := range ratings {
		i := int(r) - 1
		if i >= 0 && i < 5 {
			out[i]++
		}
	}
	return out
}

// CountBy tallies string keys in deterministic (sorted) order, returning
// parallel label and count slices — a helper for demographic histograms.
func CountBy(values []string) (labels []string, counts []int) {
	m := map[string]int{}
	for _, v := range values {
		m[v]++
	}
	for k := range m {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	counts = make([]int, len(labels))
	for i, l := range labels {
		counts[i] = m[l]
	}
	return labels, counts
}

// Stars renders the paper's significance notation for a p-value.
func Stars(p float64) string {
	switch {
	case p < 0.001:
		return "***"
	case p < 0.01:
		return "**"
	case p < 0.05:
		return "*"
	default:
		return ""
	}
}

// Arrow renders the correlation-direction glyph used in Tables III/IV.
func Arrow(rho float64) string {
	switch {
	case rho > 0.005:
		return "↗"
	case rho < -0.005:
		return "↘"
	default:
		return "→"
	}
}

package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableString(t *testing.T) {
	tbl := &Table{
		Title:   "Table I",
		Columns: []string{"Effect", "Estimate"},
		Rows:    [][]string{{"uses_DIRTY", "-0.074"}, {"(Intercept)", "0.563"}},
		Note:    "p > 0.05",
	}
	out := tbl.String()
	for _, want := range []string{"Table I", "uses_DIRTY", "-0.074", "Note: p > 0.05", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Alignment: estimate column starts at the same offset in both rows.
	lines := strings.Split(out, "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "uses_DIRTY") || strings.HasPrefix(l, "(Intercept)") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 {
		t.Fatalf("data lines = %d", len(dataLines))
	}
	if strings.Index(dataLines[0], "-0.074") != strings.Index(dataLines[1], "0.563") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("Age Group", []string{"18-24", "25-34"}, []int{20, 10}, 20)
	if !strings.Contains(out, "18-24") || !strings.Contains(out, "20") {
		t.Errorf("histogram malformed:\n%s", out)
	}
	// Longer bar for larger count.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("Fig 5", []string{"AEEK Q1"}, []float64{0.75}, []float64{0.5}, "DIRTY", "Hex-Rays")
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "50.0%") {
		t.Errorf("grouped bars missing percentages:\n%s", out)
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{100, 150, 200, 250, 300, 350, 400}
	out := Boxplot("DIRTY", xs, 0, 500, 40)
	if !strings.Contains(out, "median=250") {
		t.Errorf("boxplot missing median:\n%s", out)
	}
	if !strings.Contains(out, "█") || !strings.Contains(out, "▒") {
		t.Errorf("boxplot missing glyphs:\n%s", out)
	}
	if empty := Boxplot("X", nil, 0, 1, 10); !strings.Contains(empty, "no data") {
		t.Errorf("empty boxplot = %q", empty)
	}
}

func TestDivergingLikert(t *testing.T) {
	out := DivergingLikert("DIRTY", [5]int{10, 20, 5, 3, 2}, 30)
	if !strings.Contains(out, "+75%") {
		t.Errorf("diverging bar missing positive share:\n%s", out)
	}
	if empty := DivergingLikert("X", [5]int{}, 10); !strings.Contains(empty, "no ratings") {
		t.Errorf("empty likert = %q", empty)
	}
}

func TestLikertCounts(t *testing.T) {
	c := LikertCounts([]float64{1, 1, 3, 5, 2})
	if c != [5]int{2, 1, 1, 0, 1} {
		t.Errorf("counts = %v", c)
	}
	// Out-of-range ratings ignored.
	c = LikertCounts([]float64{0, 6, 2})
	if c != [5]int{0, 1, 0, 0, 0} {
		t.Errorf("counts with junk = %v", c)
	}
}

func TestCountBy(t *testing.T) {
	labels, counts := CountBy([]string{"b", "a", "b"})
	if len(labels) != 2 || labels[0] != "a" || counts[1] != 2 {
		t.Errorf("CountBy = %v %v", labels, counts)
	}
}

func TestStars(t *testing.T) {
	cases := map[float64]string{0.0001: "***", 0.005: "**", 0.03: "*", 0.5: ""}
	for p, want := range cases {
		if got := Stars(p); got != want {
			t.Errorf("Stars(%v) = %q, want %q", p, got, want)
		}
	}
}

func TestArrow(t *testing.T) {
	if Arrow(0.3) != "↗" || Arrow(-0.3) != "↘" || Arrow(0) != "→" {
		t.Error("Arrow glyph mismatch")
	}
}

// Property: LikertCounts totals match the number of in-range inputs.
func TestQuickLikertCountsTotal(t *testing.T) {
	f := func(raw []uint8) bool {
		ratings := make([]float64, len(raw))
		inRange := 0
		for i, r := range raw {
			ratings[i] = float64(r%7) - 0.0 // 0..6
			if ratings[i] >= 1 && ratings[i] <= 5 {
				inRange++
			}
		}
		c := LikertCounts(ratings)
		total := 0
		for _, n := range c {
			total += n
		}
		return total == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package compile

import (
	"errors"
	"strings"
	"testing"

	"decompstudy/internal/csrc"
)

func compileSrc(t *testing.T, src string, extraTypes []string) *Object {
	t.Helper()
	f, err := csrc.Parse(src, extraTypes)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	obj, err := Compile(f)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return obj
}

func TestCompileStripsNames(t *testing.T) {
	obj := compileSrc(t, `
int add_two(int first, int second) {
  int total = first + second;
  return total;
}
`, nil)
	fn, ok := obj.Func0("add_two")
	if !ok {
		t.Fatal("add_two not found")
	}
	if fn.NParams != 2 {
		t.Fatalf("NParams = %d, want 2", fn.NParams)
	}
	// Names survive only in the symbol table, never in instruction text.
	text := fn.String()
	for _, name := range []string{"first", "second", "total"} {
		if strings.Contains(text, name) {
			t.Errorf("IR text leaks source name %q:\n%s", name, text)
		}
	}
	if len(fn.Symbols) != 3 {
		t.Fatalf("symbols = %d, want 3", len(fn.Symbols))
	}
	if fn.Symbols[2].OrigName != "total" || fn.Symbols[2].Kind != VarLocal {
		t.Errorf("symbol[2] = %+v, want local total", fn.Symbols[2])
	}
	if fn.Symbols[0].Kind != VarParam {
		t.Errorf("symbol[0] kind = %v, want VarParam", fn.Symbols[0].Kind)
	}
}

func TestCompileMemberAccessBecomesAddressArithmetic(t *testing.T) {
	obj := compileSrc(t, `
struct array {
  void *data;
  char **sorted;
  int used;
};
int get_used(struct array *a) {
  return a->used;
}
`, nil)
	fn, _ := obj.Func0("get_used")
	text := fn.String()
	// a->used is at offset 16; the IR must show an add of 16 and a load4.
	if !strings.Contains(text, "16") {
		t.Errorf("expected offset 16 in IR:\n%s", text)
	}
	if !strings.Contains(text, "load4") {
		t.Errorf("expected 4-byte load for int field:\n%s", text)
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if strings.Contains(in.String(), "used") {
				t.Errorf("field name leaked into instruction %q", in.String())
			}
		}
	}
}

func TestCompileIndexScaling(t *testing.T) {
	obj := compileSrc(t, `
long get_elem(long *xs, int i) {
  return xs[i];
}
`, nil)
	fn, _ := obj.Func0("get_elem")
	text := fn.String()
	if !strings.Contains(text, "mul") || !strings.Contains(text, "8") {
		t.Errorf("expected 8-byte scaling mul in IR:\n%s", text)
	}
	if !strings.Contains(text, "load8") {
		t.Errorf("expected 8-byte load:\n%s", text)
	}
}

func TestCompileByteIndexNoScaling(t *testing.T) {
	obj := compileSrc(t, `
char get_byte(char *s, int i) {
  return s[i];
}
`, nil)
	fn, _ := obj.Func0("get_byte")
	text := fn.String()
	if strings.Contains(text, "mul") {
		t.Errorf("byte access should not scale:\n%s", text)
	}
	if !strings.Contains(text, "load1") {
		t.Errorf("expected 1-byte load:\n%s", text)
	}
}

func TestCompileControlFlowShape(t *testing.T) {
	obj := compileSrc(t, `
int clamp(int x) {
  if (x < 0) {
    return 0;
  }
  while (x > 100) {
    x -= 10;
  }
  return x;
}
`, nil)
	fn, _ := obj.Func0("clamp")
	var condCount, retCount int
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpCondBr:
				condCount++
			case OpRet:
				retCount++
			}
		}
	}
	if condCount != 2 {
		t.Errorf("cond branches = %d, want 2 (if + while)", condCount)
	}
	if retCount != 2 {
		t.Errorf("returns = %d, want 2", retCount)
	}
	// Exactly one back edge (the while loop).
	back := 0
	seen := map[int]bool{}
	order := []int{}
	var dfs func(id int)
	dfs = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		order = append(order, id)
		for _, s := range fn.Block0(id).Succs() {
			dfs(s)
		}
	}
	dfs(fn.Blocks[0].ID)
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			if p, ok := pos[s]; ok && p <= pos[b.ID] && s != b.ID {
				back++
			}
		}
	}
	if back < 1 {
		t.Errorf("expected at least one back edge for the while loop")
	}
}

func TestCompileShortCircuitCondition(t *testing.T) {
	obj := compileSrc(t, `
int both(int a, int b) {
  if (a > 0 && b > 0) {
    return 1;
  }
  return 0;
}
`, nil)
	fn, _ := obj.Func0("both")
	// Short-circuit in condition context must not materialize a boolean
	// temp: no OpMov of constants 0/1 before the branches.
	condCount := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCondBr {
				condCount++
			}
		}
	}
	if condCount != 2 {
		t.Errorf("cond branches = %d, want 2 for short-circuit &&", condCount)
	}
}

func TestCompileShortCircuitValue(t *testing.T) {
	obj := compileSrc(t, `
int val(int a, int b) {
  int c = a > 0 && b > 0;
  return c;
}
`, nil)
	fn, _ := obj.Func0("val")
	text := fn.String()
	if !strings.Contains(text, "condbr") {
		t.Errorf("value-context && should still short-circuit:\n%s", text)
	}
}

func TestCompileFunctionPointerCall(t *testing.T) {
	obj := compileSrc(t, `
long apply(long (*fn)(long, long), long x, long y) {
  return fn(x, y);
}
`, nil)
	fn, _ := obj.Func0("apply")
	found := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall && in.Callee.Kind == OperandTemp {
				found = true
			}
		}
	}
	if !found {
		t.Error("expected an indirect call through a temp")
	}
	if !fn.Symbols[0].IsFuncPtr {
		t.Errorf("symbol[0] = %+v, want IsFuncPtr", fn.Symbols[0])
	}
}

func TestCompilePointerArithScaling(t *testing.T) {
	obj := compileSrc(t, `
long deref_off(long *p, int i) {
  return *(p + i);
}
`, nil)
	fn, _ := obj.Func0("deref_off")
	text := fn.String()
	if !strings.Contains(text, "mul") {
		t.Errorf("pointer arithmetic should scale the integer side:\n%s", text)
	}
}

func TestCompileTernary(t *testing.T) {
	obj := compileSrc(t, `
int absval(int x) {
  return x > 0 ? x : -x;
}
`, nil)
	fn, _ := obj.Func0("absval")
	var movs, condbrs int
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpMov:
				movs++
			case OpCondBr:
				condbrs++
			}
		}
	}
	if condbrs != 1 || movs < 2 {
		t.Errorf("ternary lowering: %d condbr, %d mov; want 1, ≥2", condbrs, movs)
	}
}

func TestCompileForLoop(t *testing.T) {
	obj := compileSrc(t, `
int sum_n(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s += i;
  }
  return s;
}
`, nil)
	fn, _ := obj.Func0("sum_n")
	if len(fn.Blocks) < 4 {
		t.Errorf("for loop should produce ≥4 blocks, got %d", len(fn.Blocks))
	}
}

func TestCompileBreakContinue(t *testing.T) {
	obj := compileSrc(t, `
int scan(int n) {
  int found = 0;
  while (n > 0) {
    n -= 1;
    if (n == 7) {
      found = 1;
      break;
    }
    if (n % 2 == 0) continue;
    found += 1;
  }
  return found;
}
`, nil)
	if _, ok := obj.Func0("scan"); !ok {
		t.Fatal("scan not compiled")
	}
}

func TestCompileBreakOutsideLoop(t *testing.T) {
	f, err := csrc.Parse(`int f(void) { break; return 0; }`, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Compile(f); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestCompileSizeof(t *testing.T) {
	obj := compileSrc(t, `
struct pair { long a; long b; };
long size_of_pair(void) {
  return sizeof(struct pair);
}
`, nil)
	fn, _ := obj.Func0("size_of_pair")
	text := fn.String()
	if !strings.Contains(text, "ret 16") {
		t.Errorf("sizeof(struct pair) should fold to 16:\n%s", text)
	}
}

func TestCompileIntLiterals(t *testing.T) {
	cases := map[string]int64{
		"42":   42,
		"0x10": 16,
		"0xff": 255,
		"7LL":  7,
		"3U":   3,
	}
	for text, want := range cases {
		got, err := parseIntLit(text)
		if err != nil {
			t.Errorf("parseIntLit(%q): %v", text, err)
			continue
		}
		if got != want {
			t.Errorf("parseIntLit(%q) = %d, want %d", text, got, want)
		}
	}
	if _, err := parseIntLit("zz"); !errors.Is(err, ErrUnsupported) {
		t.Errorf("bad literal: err = %v, want ErrUnsupported", err)
	}
}

func TestCharValue(t *testing.T) {
	cases := map[string]int64{
		"a": 'a', `\n`: '\n', `\0`: 0, `\\`: '\\', "/": '/',
	}
	for body, want := range cases {
		if got := charValue(body); got != want {
			t.Errorf("charValue(%q) = %d, want %d", body, got, want)
		}
	}
}

func TestUnreachableBlocksPruned(t *testing.T) {
	obj := compileSrc(t, `
int early(int x) {
  return x;
}
`, nil)
	fn, _ := obj.Func0("early")
	if len(fn.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1 (no unreachable tails)", len(fn.Blocks))
	}
}

func TestEveryBlockTerminated(t *testing.T) {
	obj := compileSrc(t, `
int f(int a, int b) {
  int m = a;
  if (a < b) m = b;
  for (int i = 0; i < 3; i++) m += i;
  return m;
}
`, nil)
	fn, _ := obj.Func0("f")
	for _, b := range fn.Blocks {
		term := b.Term()
		switch term.Op {
		case OpRet, OpBr, OpCondBr:
		default:
			t.Errorf("block b%d not terminated (last op %v)", b.ID, term.Op)
		}
		// No terminator mid-block.
		for i, in := range b.Instrs[:max(0, len(b.Instrs)-1)] {
			switch in.Op {
			case OpRet, OpBr, OpCondBr:
				t.Errorf("block b%d has terminator at position %d", b.ID, i)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCompileDoWhile(t *testing.T) {
	obj := compileSrc(t, `
int drain(int n) {
  int total = 0;
  do {
    total += n;
    n -= 1;
  } while (n > 0);
  return total;
}
`, nil)
	fn, _ := obj.Func0("drain")
	// Do-while: exactly one conditional branch, and the body runs before it.
	condbrs := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCondBr {
				condbrs++
			}
		}
	}
	if condbrs != 1 {
		t.Errorf("do-while cond branches = %d, want 1", condbrs)
	}
	// Entry block must branch straight into the body (test-at-bottom).
	entry := fn.Blocks[0]
	if entry.Term().Op != OpBr {
		t.Errorf("entry terminator = %v, want unconditional branch into body", entry.Term().Op)
	}
}

func TestCompileSwitch(t *testing.T) {
	obj := compileSrc(t, `
int classify(int code) {
  switch (code) {
  case 1:
    return 10;
  case 2:
    return 20;
  default:
    return -1;
  }
}
`, nil)
	fn, _ := obj.Func0("classify")
	var cmps, condbrs int
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpCmpEQ:
				cmps++
			case OpCondBr:
				condbrs++
			}
		}
	}
	if cmps != 2 || condbrs != 2 {
		t.Errorf("switch chain: %d compares, %d branches; want 2, 2", cmps, condbrs)
	}
}

func TestCompileSwitchTagEvaluatedOnce(t *testing.T) {
	obj := compileSrc(t, `
int pick(int x) {
  int r = 0;
  switch (next_value(x)) {
  case 1:
    r = 1;
    break;
  case 2:
    r = 2;
    break;
  default:
    r = 3;
  }
  return r;
}
`, nil)
	fn, _ := obj.Func0("pick")
	calls := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				calls++
			}
		}
	}
	if calls != 1 {
		t.Errorf("switch tag evaluated %d times, want once", calls)
	}
}

func TestCompileBreakInSwitchInsideLoop(t *testing.T) {
	// A break inside a switch exits the switch, not the loop.
	obj := compileSrc(t, `
int count(int n) {
  int total = 0;
  for (int i = 0; i < n; i++) {
    switch (i % 2) {
    case 0:
      total += 1;
      break;
    default:
      total += 2;
    }
    total += 100;
  }
  return total;
}
`, nil)
	if _, ok := obj.Func0("count"); !ok {
		t.Fatal("count not compiled")
	}
}

func TestTerminatorEmptyBlock(t *testing.T) {
	b := &Block{ID: 3}
	if _, ok := b.Terminator(); ok {
		t.Error("Terminator() ok = true for an empty block")
	}
	// Term keeps its legacy zero-Instr contract for empty blocks; callers
	// that may see unverified IR must use Terminator instead.
	if got := b.Term(); got.Op != 0 {
		t.Errorf("Term() on empty block = %v, want the zero Instr", got)
	}
	if succs := b.Succs(); succs != nil {
		t.Errorf("Succs() on empty block = %v, want nil", succs)
	}
}

func TestTerminatorNonEmptyBlock(t *testing.T) {
	b := &Block{ID: 0, Instrs: []Instr{
		{Op: OpMov, Dst: 0, A: Const(1)},
		{Op: OpCondBr, Dst: -1, A: Temp(0), Target: 1, Else: 2},
	}}
	term, ok := b.Terminator()
	if !ok || term.Op != OpCondBr {
		t.Fatalf("Terminator() = %v, %v; want the condbr", term, ok)
	}
	if got := b.Term(); got.Op != term.Op || got.Target != term.Target {
		t.Error("Term() must agree with Terminator() on non-empty blocks")
	}
	want := []int{1, 2}
	got := b.Succs()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Succs() = %v, want %v", got, want)
	}
}

package compile

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"decompstudy/internal/csrc"
	"decompstudy/internal/fault"
	"decompstudy/internal/obs"
)

// Compile lowers every function in the file to IR.
func Compile(file *csrc.File) (*Object, error) {
	return CompileCtx(context.Background(), file)
}

// CompileCtx is Compile with telemetry: a compile.Compile span plus
// call/function counters when the context carries an obs handle.
func CompileCtx(ctx context.Context, file *csrc.File) (*Object, error) {
	_, sp := obs.StartSpan(ctx, "compile.Compile", obs.KV("functions", len(file.Functions)))
	defer sp.End()
	if err := fault.Check(ctx, fault.CompileLower); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrExec, err)
	}
	obs.AddCount(ctx, "compile.calls", 1)
	obs.AddCount(ctx, "compile.functions", int64(len(file.Functions)))
	obj := &Object{}
	for _, fn := range file.Functions {
		lf, err := lowerFunc(file, fn)
		if err != nil {
			return nil, fmt.Errorf("compile: function %s: %w", fn.Name, err)
		}
		obj.Funcs = append(obj.Funcs, lf)
	}
	return obj, nil
}

// typeInfo is the width/signedness summary a csrc type collapses to.
type typeInfo struct {
	width   int
	signed  bool
	pointee int // element width for pointers; 0 otherwise
	funcPtr bool
}

// resolveType normalizes typedefs to their underlying type.
func resolveType(file *csrc.File, t *csrc.Type) *csrc.Type {
	for t != nil && t.Kind == csrc.TypeNamed {
		under, ok := file.Typedefs[t.Name]
		if !ok || under == t {
			return t
		}
		t = under
	}
	return t
}

var baseWidths = map[string]typeInfo{
	"void":               {width: 0, signed: true},
	"char":               {width: 1, signed: true},
	"signed char":        {width: 1, signed: true},
	"unsigned char":      {width: 1},
	"short":              {width: 2, signed: true},
	"unsigned short":     {width: 2},
	"int":                {width: 4, signed: true},
	"signed":             {width: 4, signed: true},
	"signed int":         {width: 4, signed: true},
	"unsigned":           {width: 4},
	"unsigned int":       {width: 4},
	"long":               {width: 8, signed: true},
	"long int":           {width: 8, signed: true},
	"unsigned long":      {width: 8},
	"long long":          {width: 8, signed: true},
	"unsigned long long": {width: 8},
	"size_t":             {width: 8},
	"ssize_t":            {width: 8, signed: true},
	"uint64_t":           {width: 8},
	"int64_t":            {width: 8, signed: true},
	"uint32_t":           {width: 4},
	"int32_t":            {width: 4, signed: true},
	"uint8_t":            {width: 1},
	"intptr_t":           {width: 8, signed: true},
	"bool":               {width: 1},
	"__int64":            {width: 8, signed: true},
	"__int32":            {width: 4, signed: true},
	"__int16":            {width: 2, signed: true},
	"__int8":             {width: 1, signed: true},
	"_QWORD":             {width: 8},
	"_DWORD":             {width: 4},
	"_WORD":              {width: 2},
	"_BYTE":              {width: 1},
}

// typeInfoOf summarizes a csrc type.
func typeInfoOf(file *csrc.File, t *csrc.Type) (typeInfo, error) {
	t = resolveType(file, t)
	if t == nil {
		return typeInfo{}, fmt.Errorf("nil type: %w", ErrUnsupported)
	}
	switch t.Kind {
	case csrc.TypeBase:
		// Normalize keyword order loosely ("unsigned long" etc.).
		if ti, ok := baseWidths[t.Name]; ok {
			return ti, nil
		}
		return typeInfo{}, fmt.Errorf("base type %q: %w", t.Name, ErrUnsupported)
	case csrc.TypeNamed:
		if ti, ok := baseWidths[t.Name]; ok {
			return ti, nil
		}
		// A bare struct-named type used by value: only meaningful behind a
		// pointer in this subset, but give it a width so sizeof works.
		if _, ok := file.Struct(t.Name); ok {
			return typeInfo{width: 8, signed: false}, nil
		}
		return typeInfo{}, fmt.Errorf("named type %q: %w", t.Name, ErrUnsupported)
	case csrc.TypePointer:
		elem := resolveType(file, t.Elem)
		pointee := 8
		if elem != nil {
			if ei, err := typeInfoOf(file, elem); err == nil && ei.width > 0 {
				pointee = ei.width
			}
		}
		return typeInfo{width: 8, pointee: pointee}, nil
	case csrc.TypeFunc:
		return typeInfo{width: 8, funcPtr: true}, nil
	default:
		return typeInfo{}, fmt.Errorf("type kind %d: %w", int(t.Kind), ErrUnsupported)
	}
}

// lowerer carries per-function lowering state.
type lowerer struct {
	file   *csrc.File
	fn     *Func
	blocks []*Block
	cur    *Block
	scopes []map[string]int // name → temp
	types  map[int]typeInfo // temp → type summary
	breaks []int            // break target stack (block IDs)
	conts  []int            // continue target stack
	done   bool             // current block already terminated
}

func lowerFunc(file *csrc.File, src *csrc.Function) (*Func, error) {
	retTI := typeInfo{}
	if src.Ret != nil {
		var err error
		retTI, err = typeInfoOf(file, src.Ret)
		if err != nil {
			return nil, err
		}
	}
	lo := &lowerer{
		file: file,
		fn: &Func{
			Name:      src.Name,
			NParams:   len(src.Params),
			RetWidth:  retTI.width,
			RetSigned: retTI.signed,
		},
		types: map[int]typeInfo{},
	}
	lo.pushScope()
	for _, p := range src.Params {
		ti, err := typeInfoOf(file, p.Type)
		if err != nil {
			return nil, fmt.Errorf("param %s: %w", p.Name, err)
		}
		t := lo.newTemp(ti)
		lo.bind(p.Name, t)
		lo.fn.Symbols = append(lo.fn.Symbols, Symbol{
			Kind: VarParam, OrigName: p.Name, OrigType: p.Type.String(),
			Temp: t, Width: ti.width, Signed: ti.signed, Pointee: ti.pointee,
			IsFuncPtr: ti.funcPtr,
		})
	}
	lo.cur = lo.newBlock()
	if err := lo.stmt(src.Body); err != nil {
		return nil, err
	}
	if !lo.done {
		lo.emit(Instr{Op: OpRet, A: None, Dst: -1})
	}
	lo.fn.Blocks = lo.pruneUnreachable()
	lo.fn.NTemps = len(lo.types)
	return lo.fn, nil
}

func (lo *lowerer) pushScope() { lo.scopes = append(lo.scopes, map[string]int{}) }
func (lo *lowerer) popScope()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) bind(name string, temp int) { lo.scopes[len(lo.scopes)-1][name] = temp }

func (lo *lowerer) lookup(name string) (int, bool) {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if t, ok := lo.scopes[i][name]; ok {
			return t, true
		}
	}
	return 0, false
}

func (lo *lowerer) newTemp(ti typeInfo) int {
	id := len(lo.types)
	lo.types[id] = ti
	return id
}

func (lo *lowerer) newBlock() *Block {
	b := &Block{ID: len(lo.blocks)}
	lo.blocks = append(lo.blocks, b)
	return b
}

// emit appends an instruction to the current block unless it is already
// terminated (unreachable code is dropped).
func (lo *lowerer) emit(in Instr) {
	if lo.done {
		return
	}
	lo.cur.Instrs = append(lo.cur.Instrs, in)
	switch in.Op {
	case OpRet, OpBr, OpCondBr:
		lo.done = true
	}
}

// switchTo makes b the current block.
func (lo *lowerer) switchTo(b *Block) {
	lo.cur = b
	lo.done = false
}

// pruneUnreachable drops blocks not reachable from block 0 and renumbers
// nothing (IDs are stable; decomp follows edges, not slice order).
func (lo *lowerer) pruneUnreachable() []*Block {
	reach := map[int]bool{}
	var walk func(id int)
	walk = func(id int) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, b := range lo.blocks {
			if b.ID == id {
				for _, s := range b.Succs() {
					walk(s)
				}
			}
		}
	}
	if len(lo.blocks) > 0 {
		walk(lo.blocks[0].ID)
	}
	var out []*Block
	for _, b := range lo.blocks {
		if reach[b.ID] {
			out = append(out, b)
		}
	}
	return out
}

// --- statements ---

func (lo *lowerer) stmt(s csrc.Stmt) error {
	switch st := s.(type) {
	case *csrc.Block:
		lo.pushScope()
		defer lo.popScope()
		for _, inner := range st.Stmts {
			if err := lo.stmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *csrc.DeclStmt:
		ti, err := typeInfoOf(lo.file, st.Type)
		if err != nil {
			return fmt.Errorf("declaration %s: %w", st.Name, err)
		}
		t := lo.newTemp(ti)
		lo.bind(st.Name, t)
		lo.fn.Symbols = append(lo.fn.Symbols, Symbol{
			Kind: VarLocal, OrigName: st.Name, OrigType: st.Type.String(),
			Temp: t, Width: ti.width, Signed: ti.signed, Pointee: ti.pointee,
			IsFuncPtr: ti.funcPtr,
		})
		if st.Init != nil {
			v, err := lo.expr(st.Init)
			if err != nil {
				return err
			}
			lo.emit(Instr{Op: OpMov, Dst: t, A: v})
		}
		return nil
	case *csrc.ExprStmt:
		_, err := lo.expr(st.X)
		return err
	case *csrc.If:
		thenB := lo.newBlock()
		elseB := lo.newBlock()
		joinB := lo.newBlock()
		elseTarget := joinB
		if st.Else != nil {
			elseTarget = elseB
		}
		if err := lo.cond(st.Cond, thenB, elseTarget); err != nil {
			return err
		}
		lo.switchTo(thenB)
		if err := lo.stmt(st.Then); err != nil {
			return err
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: joinB.ID})
		if st.Else != nil {
			lo.switchTo(elseB)
			if err := lo.stmt(st.Else); err != nil {
				return err
			}
			lo.emit(Instr{Op: OpBr, Dst: -1, Target: joinB.ID})
		}
		lo.switchTo(joinB)
		return nil
	case *csrc.While:
		head := lo.newBlock()
		body := lo.newBlock()
		exit := lo.newBlock()
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: head.ID})
		lo.switchTo(head)
		if err := lo.cond(st.Cond, body, exit); err != nil {
			return err
		}
		lo.breaks = append(lo.breaks, exit.ID)
		lo.conts = append(lo.conts, head.ID)
		lo.switchTo(body)
		if err := lo.stmt(st.Body); err != nil {
			return err
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: head.ID})
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		lo.switchTo(exit)
		return nil
	case *csrc.For:
		lo.pushScope()
		defer lo.popScope()
		if st.Init != nil {
			if err := lo.stmt(st.Init); err != nil {
				return err
			}
		}
		head := lo.newBlock()
		body := lo.newBlock()
		post := lo.newBlock()
		exit := lo.newBlock()
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: head.ID})
		lo.switchTo(head)
		if st.Cond != nil {
			if err := lo.cond(st.Cond, body, exit); err != nil {
				return err
			}
		} else {
			lo.emit(Instr{Op: OpBr, Dst: -1, Target: body.ID})
		}
		lo.breaks = append(lo.breaks, exit.ID)
		lo.conts = append(lo.conts, post.ID)
		lo.switchTo(body)
		if err := lo.stmt(st.Body); err != nil {
			return err
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: post.ID})
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		lo.switchTo(post)
		if st.Post != nil {
			if _, err := lo.expr(st.Post); err != nil {
				return err
			}
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: head.ID})
		lo.switchTo(exit)
		return nil
	case *csrc.DoWhile:
		body := lo.newBlock()
		condB := lo.newBlock()
		exit := lo.newBlock()
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: body.ID})
		lo.breaks = append(lo.breaks, exit.ID)
		lo.conts = append(lo.conts, condB.ID)
		lo.switchTo(body)
		if err := lo.stmt(st.Body); err != nil {
			return err
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: condB.ID})
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		lo.switchTo(condB)
		if err := lo.cond(st.Cond, body, exit); err != nil {
			return err
		}
		lo.switchTo(exit)
		return nil
	case *csrc.Switch:
		// Evaluate the tag once, then lower to an equality chain. Cases
		// break implicitly; an explicit break targets the switch exit, as
		// in C.
		tag, err := lo.expr(st.Tag)
		if err != nil {
			return err
		}
		// Pin the tag in a temp so repeated comparisons don't re-evaluate
		// side effects.
		tagTemp := lo.newTemp(lo.operandType(tag))
		lo.emit(Instr{Op: OpMov, Dst: tagTemp, A: tag})
		exit := lo.newBlock()
		lo.breaks = append(lo.breaks, exit.ID)
		var defaultCase *csrc.SwitchCase
		for i := range st.Cases {
			if st.Cases[i].Value == nil {
				defaultCase = &st.Cases[i]
			}
		}
		for i := range st.Cases {
			c := &st.Cases[i]
			if c.Value == nil {
				continue
			}
			val, err := lo.expr(c.Value)
			if err != nil {
				return err
			}
			cmp := lo.newTemp(typeInfo{width: 4, signed: true})
			lo.emit(Instr{Op: OpCmpEQ, Dst: cmp, A: Temp(tagTemp), B: val})
			bodyB := lo.newBlock()
			nextB := lo.newBlock()
			lo.emit(Instr{Op: OpCondBr, Dst: -1, A: Temp(cmp), Target: bodyB.ID, Else: nextB.ID})
			lo.switchTo(bodyB)
			for _, inner := range c.Stmts {
				if err := lo.stmt(inner); err != nil {
					return err
				}
			}
			lo.emit(Instr{Op: OpBr, Dst: -1, Target: exit.ID})
			lo.switchTo(nextB)
		}
		if defaultCase != nil {
			for _, inner := range defaultCase.Stmts {
				if err := lo.stmt(inner); err != nil {
					return err
				}
			}
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: exit.ID})
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.switchTo(exit)
		return nil
	case *csrc.Return:
		if st.X == nil {
			lo.emit(Instr{Op: OpRet, Dst: -1, A: None})
			return nil
		}
		v, err := lo.expr(st.X)
		if err != nil {
			return err
		}
		lo.emit(Instr{Op: OpRet, Dst: -1, A: v})
		return nil
	case *csrc.Break:
		if len(lo.breaks) == 0 {
			return fmt.Errorf("break outside loop: %w", ErrUnsupported)
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: lo.breaks[len(lo.breaks)-1]})
		return nil
	case *csrc.Continue:
		if len(lo.conts) == 0 {
			return fmt.Errorf("continue outside loop: %w", ErrUnsupported)
		}
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: lo.conts[len(lo.conts)-1]})
		return nil
	default:
		return fmt.Errorf("statement %T: %w", s, ErrUnsupported)
	}
}

// cond lowers a boolean expression in condition context, branching to
// trueB or falseB. Short-circuit operators become control flow with no
// materialized temps.
func (lo *lowerer) cond(e csrc.Expr, trueB, falseB *Block) error {
	switch x := e.(type) {
	case *csrc.Binary:
		switch x.Op {
		case "&&":
			mid := lo.newBlock()
			if err := lo.cond(x.L, mid, falseB); err != nil {
				return err
			}
			lo.switchTo(mid)
			return lo.cond(x.R, trueB, falseB)
		case "||":
			mid := lo.newBlock()
			if err := lo.cond(x.L, trueB, mid); err != nil {
				return err
			}
			lo.switchTo(mid)
			return lo.cond(x.R, trueB, falseB)
		}
	case *csrc.Unary:
		if x.Op == "!" {
			return lo.cond(x.X, falseB, trueB)
		}
	}
	v, err := lo.expr(e)
	if err != nil {
		return err
	}
	lo.emit(Instr{Op: OpCondBr, Dst: -1, A: v, Target: trueB.ID, Else: falseB.ID})
	return nil
}

// --- expressions ---

var binOps = map[string]Opcode{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpRem,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"==": OpCmpEQ, "!=": OpCmpNE, "<": OpCmpLT, "<=": OpCmpLE,
	">": OpCmpGT, ">=": OpCmpGE,
}

// expr lowers an expression to an operand carrying its value.
func (lo *lowerer) expr(e csrc.Expr) (Operand, error) {
	switch x := e.(type) {
	case *csrc.Ident:
		if t, ok := lo.lookup(x.Name); ok {
			return Temp(t), nil
		}
		// Unbound identifier: a function or global symbol.
		return Sym(x.Name), nil
	case *csrc.IntLit:
		v, err := parseIntLit(x.Text)
		if err != nil {
			return None, err
		}
		return Const(v), nil
	case *csrc.CharLit:
		return Const(charValue(x.Value)), nil
	case *csrc.StrLit:
		return Sym("\"" + x.Value + "\""), nil
	case *csrc.Unary:
		return lo.unary(x)
	case *csrc.Postfix:
		// x++/x-- on a named variable: save old value, update.
		t, ok := lo.lvalTemp(x.X)
		if !ok {
			addr, width, err := lo.addr(x.X)
			if err != nil {
				return None, err
			}
			old := lo.newTemp(typeInfo{width: width, signed: true})
			lo.emit(Instr{Op: OpLoad, Dst: old, A: addr, Width: width})
			upd := lo.newTemp(typeInfo{width: width, signed: true})
			op := OpAdd
			if x.Op == "--" {
				op = OpSub
			}
			lo.emit(Instr{Op: op, Dst: upd, A: Temp(old), B: Const(1)})
			lo.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: Temp(upd), Width: width})
			return Temp(old), nil
		}
		old := lo.newTemp(lo.types[t])
		lo.emit(Instr{Op: OpMov, Dst: old, A: Temp(t)})
		op := OpAdd
		if x.Op == "--" {
			op = OpSub
		}
		lo.emit(Instr{Op: op, Dst: t, A: Temp(t), B: Const(1)})
		return Temp(old), nil
	case *csrc.Binary:
		if x.Op == "&&" || x.Op == "||" {
			return lo.shortCircuitValue(x)
		}
		l, err := lo.expr(x.L)
		if err != nil {
			return None, err
		}
		r, err := lo.expr(x.R)
		if err != nil {
			return None, err
		}
		// Pointer arithmetic scaling: ptr + int scales by pointee width.
		if x.Op == "+" || x.Op == "-" {
			l, r = lo.scalePointerArith(x.Op, l, r)
		}
		dst := lo.newTemp(lo.resultType(x.Op, l, r))
		lo.emit(Instr{Op: binOps[x.Op], Dst: dst, A: l, B: r})
		return Temp(dst), nil
	case *csrc.Assign:
		return lo.assign(x)
	case *csrc.Ternary:
		thenB := lo.newBlock()
		elseB := lo.newBlock()
		joinB := lo.newBlock()
		result := lo.newTemp(typeInfo{width: 8, signed: true})
		if err := lo.cond(x.Cond, thenB, elseB); err != nil {
			return None, err
		}
		lo.switchTo(thenB)
		tv, err := lo.expr(x.Then)
		if err != nil {
			return None, err
		}
		lo.emit(Instr{Op: OpMov, Dst: result, A: tv})
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: joinB.ID})
		lo.switchTo(elseB)
		ev, err := lo.expr(x.Else)
		if err != nil {
			return None, err
		}
		lo.emit(Instr{Op: OpMov, Dst: result, A: ev})
		lo.emit(Instr{Op: OpBr, Dst: -1, Target: joinB.ID})
		lo.switchTo(joinB)
		return Temp(result), nil
	case *csrc.Call:
		var callee Operand
		switch fun := x.Fun.(type) {
		case *csrc.Ident:
			if t, ok := lo.lookup(fun.Name); ok {
				callee = Temp(t) // call through function pointer variable
			} else {
				callee = Sym(fun.Name)
			}
		default:
			v, err := lo.expr(x.Fun)
			if err != nil {
				return None, err
			}
			callee = v
		}
		args := make([]Operand, len(x.Args))
		for i, a := range x.Args {
			v, err := lo.expr(a)
			if err != nil {
				return None, err
			}
			args[i] = v
		}
		dst := lo.newTemp(typeInfo{width: 8, signed: true})
		lo.emit(Instr{Op: OpCall, Dst: dst, Callee: callee, Args: args})
		return Temp(dst), nil
	case *csrc.Index, *csrc.Member:
		addr, width, err := lo.addr(e)
		if err != nil {
			return None, err
		}
		ti := typeInfo{width: width, signed: true}
		// Loads of pointer-typed fields keep their pointee width so later
		// pointer arithmetic scales correctly.
		if m, ok := e.(*csrc.Member); ok {
			if pw := lo.fieldPointee(m); pw > 0 {
				ti.pointee = pw
			}
		}
		dst := lo.newTemp(ti)
		lo.emit(Instr{Op: OpLoad, Dst: dst, A: addr, Width: width})
		return Temp(dst), nil
	case *csrc.Cast:
		// Casts carry no code in this IR; value passes through with the
		// cast's width if it narrows a load elsewhere.
		return lo.expr(x.X)
	case *csrc.SizeofType:
		t := resolveType(lo.file, x.T)
		if t.Kind == csrc.TypeNamed {
			if s, ok := lo.file.Struct(t.Name); ok {
				return Const(int64(s.Size())), nil
			}
		}
		ti, err := typeInfoOf(lo.file, x.T)
		if err != nil {
			return None, err
		}
		return Const(int64(ti.width)), nil
	default:
		return None, fmt.Errorf("expression %T: %w", e, ErrUnsupported)
	}
}

func (lo *lowerer) unary(x *csrc.Unary) (Operand, error) {
	switch x.Op {
	case "-", "~", "!":
		v, err := lo.expr(x.X)
		if err != nil {
			return None, err
		}
		if v.Kind == OperandConst && x.Op == "-" {
			return Const(-v.Const), nil
		}
		op := map[string]Opcode{"-": OpNeg, "~": OpNot, "!": OpLNot}[x.Op]
		dst := lo.newTemp(typeInfo{width: 8, signed: true})
		lo.emit(Instr{Op: op, Dst: dst, A: v})
		return Temp(dst), nil
	case "*":
		addr, err := lo.exprAsAddr(x.X)
		if err != nil {
			return None, err
		}
		width := lo.pointeeWidth(x.X)
		dst := lo.newTemp(typeInfo{width: width, signed: true})
		lo.emit(Instr{Op: OpLoad, Dst: dst, A: addr, Width: width})
		return Temp(dst), nil
	case "&":
		addr, _, err := lo.addr(x.X)
		if err != nil {
			return None, err
		}
		return addr, nil
	case "++", "--":
		if t, ok := lo.lvalTemp(x.X); ok {
			op := OpAdd
			if x.Op == "--" {
				op = OpSub
			}
			lo.emit(Instr{Op: op, Dst: t, A: Temp(t), B: Const(1)})
			return Temp(t), nil
		}
		addr, width, err := lo.addr(x.X)
		if err != nil {
			return None, err
		}
		old := lo.newTemp(typeInfo{width: width, signed: true})
		lo.emit(Instr{Op: OpLoad, Dst: old, A: addr, Width: width})
		upd := lo.newTemp(typeInfo{width: width, signed: true})
		op := OpAdd
		if x.Op == "--" {
			op = OpSub
		}
		lo.emit(Instr{Op: op, Dst: upd, A: Temp(old), B: Const(1)})
		lo.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: Temp(upd), Width: width})
		return Temp(upd), nil
	default:
		return None, fmt.Errorf("unary %q: %w", x.Op, ErrUnsupported)
	}
}

// shortCircuitValue materializes && / || used in value context.
func (lo *lowerer) shortCircuitValue(x *csrc.Binary) (Operand, error) {
	result := lo.newTemp(typeInfo{width: 4, signed: true})
	trueB := lo.newBlock()
	falseB := lo.newBlock()
	joinB := lo.newBlock()
	if err := lo.cond(x, trueB, falseB); err != nil {
		return None, err
	}
	lo.switchTo(trueB)
	lo.emit(Instr{Op: OpMov, Dst: result, A: Const(1)})
	lo.emit(Instr{Op: OpBr, Dst: -1, Target: joinB.ID})
	lo.switchTo(falseB)
	lo.emit(Instr{Op: OpMov, Dst: result, A: Const(0)})
	lo.emit(Instr{Op: OpBr, Dst: -1, Target: joinB.ID})
	lo.switchTo(joinB)
	return Temp(result), nil
}

func (lo *lowerer) assign(x *csrc.Assign) (Operand, error) {
	// Simple variable target.
	if t, ok := lo.lvalTemp(x.L); ok {
		r, err := lo.expr(x.R)
		if err != nil {
			return None, err
		}
		if x.Op == "=" {
			lo.emit(Instr{Op: OpMov, Dst: t, A: r})
			return Temp(t), nil
		}
		op, ok := binOps[strings.TrimSuffix(x.Op, "=")]
		if !ok {
			return None, fmt.Errorf("assignment op %q: %w", x.Op, ErrUnsupported)
		}
		lo.emit(Instr{Op: op, Dst: t, A: Temp(t), B: r})
		return Temp(t), nil
	}
	// Memory target.
	addr, width, err := lo.addr(x.L)
	if err != nil {
		return None, err
	}
	r, err := lo.expr(x.R)
	if err != nil {
		return None, err
	}
	if x.Op == "=" {
		lo.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: r, Width: width})
		return r, nil
	}
	op, ok := binOps[strings.TrimSuffix(x.Op, "=")]
	if !ok {
		return None, fmt.Errorf("assignment op %q: %w", x.Op, ErrUnsupported)
	}
	old := lo.newTemp(typeInfo{width: width, signed: true})
	lo.emit(Instr{Op: OpLoad, Dst: old, A: addr, Width: width})
	upd := lo.newTemp(typeInfo{width: width, signed: true})
	lo.emit(Instr{Op: op, Dst: upd, A: Temp(old), B: r})
	lo.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: Temp(upd), Width: width})
	return Temp(upd), nil
}

// lvalTemp returns the temp for a plain variable lvalue, unwrapping casts.
func (lo *lowerer) lvalTemp(e csrc.Expr) (int, bool) {
	for {
		if c, ok := e.(*csrc.Cast); ok {
			e = c.X
			continue
		}
		break
	}
	if id, ok := e.(*csrc.Ident); ok {
		if t, found := lo.lookup(id.Name); found {
			return t, true
		}
	}
	return 0, false
}

// addr lowers an lvalue expression to (address operand, access width).
func (lo *lowerer) addr(e csrc.Expr) (Operand, int, error) {
	switch x := e.(type) {
	case *csrc.Member:
		if !x.Arrow {
			return None, 0, fmt.Errorf("non-arrow member access: %w", ErrUnsupported)
		}
		base, err := lo.expr(x.X)
		if err != nil {
			return None, 0, err
		}
		sd, fieldWidth, off, err := lo.fieldOf(x)
		if err != nil {
			return None, 0, err
		}
		_ = sd
		if off == 0 {
			return base, fieldWidth, nil
		}
		dst := lo.newTemp(typeInfo{width: 8})
		lo.emit(Instr{Op: OpAdd, Dst: dst, A: base, B: Const(int64(off))})
		return Temp(dst), fieldWidth, nil
	case *csrc.Index:
		base, err := lo.expr(x.X)
		if err != nil {
			return None, 0, err
		}
		idx, err := lo.expr(x.I)
		if err != nil {
			return None, 0, err
		}
		width := lo.pointeeWidth(x.X)
		var offset Operand
		if width == 1 {
			offset = idx
		} else {
			scaled := lo.newTemp(typeInfo{width: 8})
			lo.emit(Instr{Op: OpMul, Dst: scaled, A: Const(int64(width)), B: idx})
			offset = Temp(scaled)
		}
		dst := lo.newTemp(typeInfo{width: 8})
		lo.emit(Instr{Op: OpAdd, Dst: dst, A: offset, B: base})
		return Temp(dst), width, nil
	case *csrc.Unary:
		if x.Op == "*" {
			addr, err := lo.exprAsAddr(x.X)
			if err != nil {
				return None, 0, err
			}
			return addr, lo.pointeeWidth(x.X), nil
		}
	case *csrc.Cast:
		return lo.addr(x.X)
	}
	return None, 0, fmt.Errorf("cannot take address of %T: %w", e, ErrUnsupported)
}

// exprAsAddr lowers an expression used as a pointer.
func (lo *lowerer) exprAsAddr(e csrc.Expr) (Operand, error) {
	return lo.expr(e)
}

// pointeeWidth statically determines the width accessed through a pointer
// expression, defaulting to 8.
func (lo *lowerer) pointeeWidth(e csrc.Expr) int {
	switch x := e.(type) {
	case *csrc.Ident:
		if t, ok := lo.lookup(x.Name); ok {
			if ti := lo.types[t]; ti.pointee > 0 {
				return ti.pointee
			}
		}
	case *csrc.Cast:
		t := resolveType(lo.file, x.To)
		if t != nil && t.Kind == csrc.TypePointer {
			if ei, err := typeInfoOf(lo.file, t.Elem); err == nil && ei.width > 0 {
				return ei.width
			}
		}
		return lo.pointeeWidth(x.X)
	case *csrc.Member:
		if _, w, _, err := lo.fieldOf(x); err == nil {
			// A pointer field: its pointee defaults to 8 unless the struct
			// type says otherwise; fieldPointee handles that.
			if pw := lo.fieldPointee(x); pw > 0 {
				return pw
			}
			_ = w
		}
	case *csrc.Binary:
		if x.Op == "+" || x.Op == "-" {
			if w := lo.pointeeWidth(x.L); w != 8 {
				return w
			}
			return lo.pointeeWidth(x.R)
		}
	}
	return 8
}

// fieldOf resolves the struct field behind a member expression, returning
// the struct def, field width, and byte offset.
func (lo *lowerer) fieldOf(m *csrc.Member) (*csrc.StructDef, int, int, error) {
	st := lo.structOfExpr(m.X)
	if st == nil {
		return nil, 0, 0, fmt.Errorf("member %s on non-struct expression: %w", m.Name, ErrUnsupported)
	}
	off, ok := st.FieldOffset(m.Name)
	if !ok {
		return nil, 0, 0, fmt.Errorf("struct %s has no field %s: %w", st.Name, m.Name, ErrUnsupported)
	}
	for _, f := range st.Fields {
		if f.Name == m.Name {
			ti, err := typeInfoOf(lo.file, f.Type)
			if err != nil {
				return nil, 0, 0, err
			}
			w := ti.width
			if w == 0 {
				w = 8
			}
			return st, w, off, nil
		}
	}
	return nil, 0, 0, fmt.Errorf("struct %s has no field %s: %w", st.Name, m.Name, ErrUnsupported)
}

// fieldPointee returns the pointee width of a pointer-typed field, or 0.
func (lo *lowerer) fieldPointee(m *csrc.Member) int {
	st := lo.structOfExpr(m.X)
	if st == nil {
		return 0
	}
	for _, f := range st.Fields {
		if f.Name == m.Name {
			t := resolveType(lo.file, f.Type)
			if t != nil && t.Kind == csrc.TypePointer {
				if ei, err := typeInfoOf(lo.file, t.Elem); err == nil && ei.width > 0 {
					return ei.width
				}
				return 8
			}
		}
	}
	return 0
}

// structOfExpr resolves the struct type a pointer expression points to.
func (lo *lowerer) structOfExpr(e csrc.Expr) *csrc.StructDef {
	var t *csrc.Type
	switch x := e.(type) {
	case *csrc.Ident:
		// Find the declared type via the symbol table.
		for _, sym := range lo.fn.Symbols {
			if tmp, ok := lo.lookup(x.Name); ok && sym.Temp == tmp {
				t = typeFromString(sym.OrigType)
			}
		}
		if t == nil {
			return nil
		}
	case *csrc.Cast:
		t = x.To
	case *csrc.Member:
		// Nested member: s->a->b; resolve the field's type.
		st := lo.structOfExpr(x.X)
		if st == nil {
			return nil
		}
		for _, f := range st.Fields {
			if f.Name == x.Name {
				t = f.Type
			}
		}
	default:
		return nil
	}
	t = resolveType(lo.file, t)
	for t != nil && t.Kind == csrc.TypePointer {
		t = resolveType(lo.file, t.Elem)
	}
	if t == nil || t.Kind != csrc.TypeNamed {
		return nil
	}
	st, _ := lo.file.Struct(t.Name)
	return st
}

// typeFromString reparses a type spelling recorded in the symbol table.
// Spellings come from Type.String(), so the mini-parser below suffices.
func typeFromString(s string) *csrc.Type {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "const ")
	stars := 0
	for strings.HasSuffix(s, "*") {
		s = strings.TrimSpace(strings.TrimSuffix(s, "*"))
		stars++
	}
	var t *csrc.Type
	if baseTypeSpelling(s) {
		t = csrc.BaseType(s)
	} else {
		t = csrc.NamedType(s)
	}
	for i := 0; i < stars; i++ {
		t = csrc.PointerTo(t)
	}
	return t
}

func baseTypeSpelling(s string) bool {
	switch strings.Fields(s)[0] {
	case "void", "char", "short", "int", "long", "unsigned", "signed":
		return true
	default:
		return false
	}
}

// resultType infers the temp type of a binary operation for pointer
// propagation.
func (lo *lowerer) resultType(op string, l, r Operand) typeInfo {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return typeInfo{width: 4, signed: true}
	}
	lt := lo.operandType(l)
	rt := lo.operandType(r)
	if lt.pointee > 0 {
		return lt
	}
	if rt.pointee > 0 {
		return rt
	}
	w := lt.width
	if rt.width > w {
		w = rt.width
	}
	if w == 0 {
		w = 8
	}
	return typeInfo{width: w, signed: lt.signed || rt.signed}
}

func (lo *lowerer) operandType(o Operand) typeInfo {
	if o.Kind == OperandTemp {
		return lo.types[o.Temp]
	}
	return typeInfo{width: 8, signed: true}
}

// scalePointerArith multiplies the integer side of pointer+int arithmetic
// by the pointee width, mirroring C semantics so the IR address math is
// explicit bytes.
func (lo *lowerer) scalePointerArith(op string, l, r Operand) (Operand, Operand) {
	lt, rt := lo.operandType(l), lo.operandType(r)
	scale := func(o Operand, w int) Operand {
		if w <= 1 {
			return o
		}
		if o.Kind == OperandConst {
			return Const(o.Const * int64(w))
		}
		dst := lo.newTemp(typeInfo{width: 8})
		lo.emit(Instr{Op: OpMul, Dst: dst, A: Const(int64(w)), B: o})
		return Temp(dst)
	}
	if lt.pointee > 0 && rt.pointee == 0 {
		return l, scale(r, lt.pointee)
	}
	if rt.pointee > 0 && lt.pointee == 0 && op == "+" {
		return scale(l, rt.pointee), r
	}
	return l, r
}

// parseIntLit parses C integer literal spellings (decimal, hex, suffixes).
func parseIntLit(text string) (int64, error) {
	t := strings.TrimRight(text, "uUlL")
	base := 10
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		base = 16
		t = t[2:]
	}
	v, err := strconv.ParseInt(t, base, 64)
	if err != nil {
		// Try unsigned range.
		u, uerr := strconv.ParseUint(t, base, 64)
		if uerr != nil {
			return 0, fmt.Errorf("compile: integer literal %q: %w", text, ErrUnsupported)
		}
		return int64(u), nil
	}
	return v, nil
}

// charValue evaluates a character literal body.
func charValue(body string) int64 {
	if body == "" {
		return 0
	}
	if body[0] == '\\' && len(body) > 1 {
		switch body[1] {
		case 'n':
			return '\n'
		case 't':
			return '\t'
		case 'r':
			return '\r'
		case '0':
			return 0
		case '\\':
			return '\\'
		case '\'':
			return '\''
		default:
			return int64(body[1])
		}
	}
	return int64(body[0])
}

package compile

import (
	"errors"
	"fmt"
)

// ErrStepLimit is the sentinel wrapped by step-limit faults. Differential
// harnesses (compile/opt) match it to tell "this input runs too long under
// the configured budget" apart from genuine execution faults: an optimized
// function executes a different instruction count than its source, so a
// one-sided step-limit hit is inconclusive rather than a semantic
// disagreement. It wraps ErrExec, so existing errors.Is(err, ErrExec)
// checks keep matching.
var ErrStepLimit = fmt.Errorf("compile: step limit exceeded: %w", ErrExec)

// IsStepLimit reports whether err is a step-limit fault.
func IsStepLimit(err error) bool { return errors.Is(err, ErrStepLimit) }

// EvalBinop constant-folds one binary IR operation with exactly the
// interpreter's semantics — shift counts masked to 6 bits, logical right
// shift, Go's truncated division (MinInt64 / -1 wraps), comparisons to
// 0/1 — and fails with ErrExec on division or modulo by zero, the cases
// the interpreter traps on. The optimizer folds through this function so
// constant propagation can never disagree with execution.
func EvalBinop(op Opcode, a, b int64) (int64, error) {
	return applyBinop(op, a, b)
}

// EvalUnop constant-folds one unary IR operation (neg, not, lnot) with the
// interpreter's semantics.
func EvalUnop(op Opcode, a int64) (int64, error) {
	switch op {
	case OpNeg:
		return -a, nil
	case OpNot:
		return ^a, nil
	case OpLNot:
		return b2i(a == 0), nil
	default:
		return 0, fmt.Errorf("compile: not a unop: %v: %w", op, ErrExec)
	}
}

package compile

import (
	"errors"
	"fmt"
)

// ErrExec is returned for runtime faults during IR interpretation.
var ErrExec = errors.New("compile: execution fault")

// Machine executes compiled IR. It provides a flat little-endian byte
// memory for load/store, resolves calls to other functions in the same
// object, and supports a few libc builtins (memmove, memcpy, memset) so
// the corpus functions run. The interpreter exists to differentially test
// the decompiler: original IR and recompiled-decompiled IR must agree on
// every input.
type Machine struct {
	obj *Object
	mem []byte
	// StepLimit bounds total executed instructions (default 1e6).
	StepLimit int
	steps     int
}

// NewMachine builds a machine over obj with memSize bytes of memory.
func NewMachine(obj *Object, memSize int) *Machine {
	if memSize <= 0 {
		memSize = 1 << 16
	}
	return &Machine{obj: obj, mem: make([]byte, memSize), StepLimit: 1_000_000}
}

// Mem exposes the machine memory for test setup and inspection.
func (m *Machine) Mem() []byte { return m.mem }

// Call runs the named function with the given arguments and returns its
// result (0 for void functions).
func (m *Machine) Call(name string, args ...int64) (int64, error) {
	m.steps = 0
	return m.call(name, args, 0)
}

func (m *Machine) call(name string, args []int64, depth int) (int64, error) {
	if depth > 200 {
		return 0, fmt.Errorf("compile: call depth exceeded in %s: %w", name, ErrExec)
	}
	if v, ok, err := m.builtin(name, args); ok {
		return v, err
	}
	fn, ok := m.obj.Func0(name)
	if !ok {
		return 0, fmt.Errorf("compile: undefined function %q: %w", name, ErrExec)
	}
	if len(args) != fn.NParams {
		return 0, fmt.Errorf("compile: %s called with %d args, wants %d: %w", name, len(args), fn.NParams, ErrExec)
	}
	regs := make([]int64, fn.NTemps)
	copy(regs, args)

	val := func(o Operand) (int64, error) {
		switch o.Kind {
		case OperandTemp:
			return regs[o.Temp], nil
		case OperandConst:
			return o.Const, nil
		case OperandNone:
			return 0, nil
		default:
			return 0, fmt.Errorf("compile: cannot evaluate symbol operand %s: %w", o, ErrExec)
		}
	}

	cur := fn.Blocks[0]
	for {
		for _, in := range cur.Instrs {
			m.steps++
			if m.steps > m.StepLimit {
				return 0, fmt.Errorf("in %s: %w", name, ErrStepLimit)
			}
			switch in.Op {
			case OpMov:
				v, err := val(in.A)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
				OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE:
				a, err := val(in.A)
				if err != nil {
					return 0, err
				}
				b, err := val(in.B)
				if err != nil {
					return 0, err
				}
				v, err := applyBinop(in.Op, a, b)
				if err != nil {
					return 0, fmt.Errorf("%w (in %s)", err, name)
				}
				regs[in.Dst] = v
			case OpNeg:
				a, err := val(in.A)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = -a
			case OpNot:
				a, err := val(in.A)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = ^a
			case OpLNot:
				a, err := val(in.A)
				if err != nil {
					return 0, err
				}
				if a == 0 {
					regs[in.Dst] = 1
				} else {
					regs[in.Dst] = 0
				}
			case OpLoad:
				addr, err := val(in.A)
				if err != nil {
					return 0, err
				}
				v, err := m.load(addr, in.Width)
				if err != nil {
					return 0, fmt.Errorf("%w (in %s)", err, name)
				}
				regs[in.Dst] = v
			case OpStore:
				addr, err := val(in.A)
				if err != nil {
					return 0, err
				}
				v, err := val(in.B)
				if err != nil {
					return 0, err
				}
				if err := m.store(addr, in.Width, v); err != nil {
					return 0, fmt.Errorf("%w (in %s)", err, name)
				}
			case OpCall:
				callArgs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					v, err := val(a)
					if err != nil {
						return 0, err
					}
					callArgs[i] = v
				}
				var callee string
				switch in.Callee.Kind {
				case OperandSym:
					callee = in.Callee.Sym
				case OperandTemp:
					return 0, fmt.Errorf("compile: indirect calls need a function table, %s: %w", name, ErrExec)
				default:
					return 0, fmt.Errorf("compile: bad callee %s: %w", in.Callee, ErrExec)
				}
				v, err := m.call(callee, callArgs, depth+1)
				if err != nil {
					return 0, err
				}
				if in.Dst >= 0 {
					regs[in.Dst] = v
				}
			case OpRet:
				if in.A.Kind == OperandNone {
					return 0, nil
				}
				v, err := val(in.A)
				if err != nil {
					return 0, err
				}
				return truncate(v, fn.RetWidth, fn.RetSigned), nil
			case OpBr:
				next := m.obj.blockIn(fn, in.Target)
				if next == nil {
					return 0, fmt.Errorf("compile: missing block b%d in %s: %w", in.Target, name, ErrExec)
				}
				cur = next
				goto nextBlock
			case OpCondBr:
				c, err := val(in.A)
				if err != nil {
					return 0, err
				}
				target := in.Target
				if c == 0 {
					target = in.Else
				}
				next := m.obj.blockIn(fn, target)
				if next == nil {
					return 0, fmt.Errorf("compile: missing block b%d in %s: %w", target, name, ErrExec)
				}
				cur = next
				goto nextBlock
			default:
				return 0, fmt.Errorf("compile: unknown opcode %v in %s: %w", in.Op, name, ErrExec)
			}
		}
		return 0, fmt.Errorf("compile: block b%d in %s fell through: %w", cur.ID, name, ErrExec)
	nextBlock:
	}
}

func (o *Object) blockIn(fn *Func, id int) *Block { return fn.Block0(id) }

func applyBinop(op Opcode, a, b int64) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("compile: division by zero: %w", ErrExec)
		}
		return a / b, nil
	case OpRem:
		if b == 0 {
			return 0, fmt.Errorf("compile: modulo by zero: %w", ErrExec)
		}
		return a % b, nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		return a << (uint(b) & 63), nil
	case OpShr:
		return int64(uint64(a) >> (uint(b) & 63)), nil
	case OpCmpEQ:
		return b2i(a == b), nil
	case OpCmpNE:
		return b2i(a != b), nil
	case OpCmpLT:
		return b2i(a < b), nil
	case OpCmpLE:
		return b2i(a <= b), nil
	case OpCmpGT:
		return b2i(a > b), nil
	case OpCmpGE:
		return b2i(a >= b), nil
	default:
		return 0, fmt.Errorf("compile: not a binop: %v: %w", op, ErrExec)
	}
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// truncate narrows a value to the declared return width.
func truncate(v int64, width int, signed bool) int64 {
	switch width {
	case 1:
		if signed {
			return int64(int8(v))
		}
		return int64(uint8(v))
	case 2:
		if signed {
			return int64(int16(v))
		}
		return int64(uint16(v))
	case 4:
		if signed {
			return int64(int32(v))
		}
		return int64(uint32(v))
	default:
		return v
	}
}

func (m *Machine) load(addr int64, width int) (int64, error) {
	if addr < 0 || addr+int64(width) > int64(len(m.mem)) {
		return 0, fmt.Errorf("compile: load of %d bytes at %#x out of bounds: %w", width, addr, ErrExec)
	}
	var v uint64
	for i := width - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.mem[addr+int64(i)])
	}
	return truncate(int64(v), width, false), nil
}

func (m *Machine) store(addr int64, width int, v int64) error {
	if addr < 0 || addr+int64(width) > int64(len(m.mem)) {
		return fmt.Errorf("compile: store of %d bytes at %#x out of bounds: %w", width, addr, ErrExec)
	}
	for i := 0; i < width; i++ {
		m.mem[addr+int64(i)] = byte(v)
		v >>= 8
	}
	return nil
}

// builtin implements the small libc surface the corpus uses.
func (m *Machine) builtin(name string, args []int64) (int64, bool, error) {
	switch name {
	case "memcpy", "memmove":
		if len(args) != 3 {
			return 0, true, fmt.Errorf("compile: %s wants 3 args: %w", name, ErrExec)
		}
		dst, src, n := args[0], args[1], args[2]
		if n < 0 || dst < 0 || src < 0 ||
			dst+n > int64(len(m.mem)) || src+n > int64(len(m.mem)) {
			return 0, true, fmt.Errorf("compile: %s out of bounds: %w", name, ErrExec)
		}
		copy(m.mem[dst:dst+n], append([]byte(nil), m.mem[src:src+n]...))
		return dst, true, nil
	case "memset":
		if len(args) != 3 {
			return 0, true, fmt.Errorf("compile: memset wants 3 args: %w", ErrExec)
		}
		dst, c, n := args[0], args[1], args[2]
		if n < 0 || dst < 0 || dst+n > int64(len(m.mem)) {
			return 0, true, fmt.Errorf("compile: memset out of bounds: %w", ErrExec)
		}
		for i := int64(0); i < n; i++ {
			m.mem[dst+i] = byte(c)
		}
		return dst, true, nil
	default:
		return 0, false, nil
	}
}

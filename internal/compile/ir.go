// Package compile lowers the csrc AST to a three-address intermediate
// representation with explicit basic blocks — the "binary" of this
// project's toolchain. The lowering is deliberately lossy in exactly the
// ways real compilation is lossy for the paper's purposes:
//
//   - variable and parameter names disappear (operands are numbered temps),
//   - types collapse to widths and signedness,
//   - struct member accesses become explicit address arithmetic
//     (base + byte-offset loads and stores),
//   - array subscripts become scaled pointer arithmetic.
//
// The companion package internal/decomp lifts this IR back into
// Hex-Rays-style pseudo-C, completing the compile→decompile pipeline the
// study's snippets went through. The compiler also emits a SymbolTable —
// the ground-truth alignment between original and stripped names that the
// paper's intrinsic metrics are computed over.
package compile

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnsupported is returned when a source construct is outside the
// compilable subset.
var ErrUnsupported = errors.New("compile: unsupported construct")

// Opcode enumerates IR operations.
type Opcode int

// IR opcodes. Binary arithmetic ops take A and B; Load/Store move Width
// bytes through an address operand; Call invokes Callee with Args.
const (
	OpMov Opcode = iota + 1
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot  // bitwise ~
	OpNeg  // arithmetic -
	OpLNot // logical !
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpLoad  // Dst = *(Width*)A
	OpStore // *(Width*)A = B
	OpCall  // Dst = Callee(Args...)
	OpRet   // return A (A.Kind == OperandNone for void)
	OpBr    // unconditional branch to Target
	OpCondBr
)

var opNames = map[Opcode]string{
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpNot: "not", OpNeg: "neg", OpLNot: "lnot",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge", OpLoad: "load", OpStore: "store",
	OpCall: "call", OpRet: "ret", OpBr: "br", OpCondBr: "condbr",
}

func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// OperandKind discriminates Operand representations.
type OperandKind int

// Operand kinds.
const (
	OperandNone OperandKind = iota
	OperandTemp
	OperandConst
	OperandSym // global symbol (function name, string label)
)

// Operand is one IR operand.
type Operand struct {
	Kind  OperandKind
	Temp  int
	Const int64
	Sym   string
}

// Temp returns a temp operand.
func Temp(id int) Operand { return Operand{Kind: OperandTemp, Temp: id} }

// Const returns an integer-constant operand.
func Const(v int64) Operand { return Operand{Kind: OperandConst, Const: v} }

// Sym returns a symbol operand.
func Sym(name string) Operand { return Operand{Kind: OperandSym, Sym: name} }

// None is the absent operand.
var None = Operand{Kind: OperandNone}

func (o Operand) String() string {
	switch o.Kind {
	case OperandNone:
		return "_"
	case OperandTemp:
		return fmt.Sprintf("t%d", o.Temp)
	case OperandConst:
		return fmt.Sprintf("%d", o.Const)
	case OperandSym:
		return "@" + o.Sym
	default:
		return fmt.Sprintf("Operand(kind=%d)", int(o.Kind))
	}
}

// Instr is one IR instruction.
type Instr struct {
	Op   Opcode
	Dst  int // destination temp, -1 when none
	A, B Operand
	// Callee and Args are used by OpCall.
	Callee Operand
	Args   []Operand
	// Width is the byte width for OpLoad/OpStore (1, 2, 4, or 8).
	Width int
	// Target and Else are successor block IDs for OpBr/OpCondBr (Else is
	// the false edge).
	Target, Else int
}

func (in Instr) String() string {
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("t%d = load%d %s", in.Dst, in.Width, in.A)
	case OpStore:
		return fmt.Sprintf("store%d %s, %s", in.Width, in.A, in.B)
	case OpCall:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = a.String()
		}
		if in.Dst >= 0 {
			return fmt.Sprintf("t%d = call %s(%s)", in.Dst, in.Callee, strings.Join(parts, ", "))
		}
		return fmt.Sprintf("call %s(%s)", in.Callee, strings.Join(parts, ", "))
	case OpRet:
		if in.A.Kind == OperandNone {
			return "ret"
		}
		return "ret " + in.A.String()
	case OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", in.A, in.Target, in.Else)
	case OpMov:
		return fmt.Sprintf("t%d = %s", in.Dst, in.A)
	case OpNot, OpNeg, OpLNot:
		return fmt.Sprintf("t%d = %s %s", in.Dst, in.Op, in.A)
	default:
		return fmt.Sprintf("t%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}

// Block is a basic block: straight-line instructions ending in a
// terminator (OpRet, OpBr, or OpCondBr).
type Block struct {
	ID     int
	Instrs []Instr
}

// Term returns the block terminator. For an empty block it returns the
// zero Instr (Op 0), which no opcode switch matches — callers that can
// meet unverified IR should use Terminator and check ok instead.
func (b *Block) Term() Instr {
	t, _ := b.Terminator()
	return t
}

// Terminator returns the block's last instruction and whether the block
// has one at all. ok is false for empty blocks; analysis.Verify flags
// those as verify.empty-block.
func (b *Block) Terminator() (Instr, bool) {
	if len(b.Instrs) == 0 {
		return Instr{}, false
	}
	return b.Instrs[len(b.Instrs)-1], true
}

// Succs returns the successor block IDs.
func (b *Block) Succs() []int {
	t := b.Term()
	switch t.Op {
	case OpBr:
		return []int{t.Target}
	case OpCondBr:
		return []int{t.Target, t.Else}
	default:
		return nil
	}
}

// VarKind distinguishes parameters from locals in the symbol table.
type VarKind int

// Symbol kinds.
const (
	VarParam VarKind = iota + 1
	VarLocal
)

// Symbol records the ground-truth identity of one stripped variable: its
// original name and type spelling, the temp that carries it in the IR, and
// its inferred width/signedness.
type Symbol struct {
	Kind     VarKind
	OrigName string
	OrigType string
	Temp     int
	Width    int
	Signed   bool
	// Pointee is the width of the pointed-to element for pointer-typed
	// variables (0 for non-pointers); it drives the decompiler's cast
	// rendering.
	Pointee int
	// IsFuncPtr marks function-pointer variables.
	IsFuncPtr bool
}

// Func is one compiled function.
type Func struct {
	Name    string
	NParams int
	// NTemps is the total number of temps (params occupy temps 0..NParams-1).
	NTemps int
	Blocks []*Block
	// Symbols lists the named variables in declaration order (params
	// first); scratch temps introduced by expression lowering are not
	// listed.
	Symbols []Symbol
	// RetWidth is the return value width in bytes, 0 for void.
	RetWidth int
	// RetSigned records return signedness for rendering.
	RetSigned bool
}

// Block0 returns the block with the given ID.
func (f *Func) Block0(id int) *Block {
	for _, b := range f.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// SymbolForTemp returns the symbol carried by the given temp, if any.
func (f *Func) SymbolForTemp(t int) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Temp == t {
			return s, true
		}
	}
	return Symbol{}, false
}

// String renders the function's IR as text, one instruction per line.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d params, %d temps):\n", f.Name, f.NParams, f.NTemps)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
	}
	return sb.String()
}

// Object is the result of compiling a translation unit.
type Object struct {
	Funcs []*Func
}

// Func0 returns the compiled function with the given name.
func (o *Object) Func0(name string) (*Func, bool) {
	for _, f := range o.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

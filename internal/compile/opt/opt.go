package opt

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
	"decompstudy/internal/obs"
)

// ErrOpt is the sentinel wrapped by every optimizer failure: an invalid
// level, a pass whose output the verifier rejects, or a differential
// disagreement between original and optimized IR.
var ErrOpt = errors.New("opt: optimization failed")

// Level is an optimization level. O0 is the identity (callers get the
// exact *compile.Func/*compile.Object they passed in, so study artifacts
// stay byte-identical); O1 runs constant propagation and dead-code
// elimination once each; O2 adds copy propagation and iterates the
// pipeline until the instruction count stops shrinking.
type Level int

// The supported optimization levels.
const (
	O0 Level = 0
	O1 Level = 1
	O2 Level = 2
)

func (l Level) String() string { return fmt.Sprintf("-O%d", int(l)) }

// ParseLevel validates a numeric optimization level from a CLI flag or
// config field.
func ParseLevel(n int) (Level, error) {
	if n < 0 || n > 2 {
		return 0, fmt.Errorf("invalid optimization level %d (want 0, 1, or 2): %w", n, ErrOpt)
	}
	return Level(n), nil
}

// maxRounds bounds the -O2 fixpoint loop. Each productive round strictly
// shrinks the instruction count, so the bound exists only to cap cost on
// adversarial inputs; real functions settle in one or two rounds.
const maxRounds = 8

// PassStat records one pass's aggregate work.
type PassStat struct {
	// Pass names the pass: constprop, copyprop, or dce.
	Pass string `json:"pass"`
	// Runs counts pass applications (O2 iterates, so Runs can exceed the
	// function count).
	Runs int `json:"runs"`
	// Removed is the net instruction-count reduction attributed to the
	// pass, measured on the deconstructed (non-SSA) output. Negative means
	// the pass round-trip grew the function.
	Removed int `json:"removed"`
	// Nanos is wall time spent in the pass, SSA round-trip included.
	Nanos int64 `json:"nanos"`
}

// Stats aggregates optimizer work over a function or object.
type Stats struct {
	Level Level `json:"level"`
	// Funcs counts optimized functions.
	Funcs int `json:"funcs"`
	// InstrsBefore and InstrsAfter count IR instructions over all blocks
	// before and after optimization; their ratio is the shrink factor the
	// benchmarks record.
	InstrsBefore int `json:"instrs_before"`
	InstrsAfter  int `json:"instrs_after"`
	// Passes holds per-pass breakdowns in pipeline order.
	Passes []PassStat `json:"passes"`
}

func newStats(level Level) *Stats {
	return &Stats{Level: level, Passes: []PassStat{
		{Pass: "constprop"}, {Pass: "copyprop"}, {Pass: "dce"},
	}}
}

func (st *Stats) pass(name string) *PassStat {
	for i := range st.Passes {
		if st.Passes[i].Pass == name {
			return &st.Passes[i]
		}
	}
	st.Passes = append(st.Passes, PassStat{Pass: name})
	return &st.Passes[len(st.Passes)-1]
}

// Merge folds another Stats into st, pass by pass; benchmarks and
// OptimizeObject use it to aggregate per-function stats.
func (st *Stats) Merge(o *Stats) {
	st.Funcs += o.Funcs
	st.InstrsBefore += o.InstrsBefore
	st.InstrsAfter += o.InstrsAfter
	for _, p := range o.Passes {
		dst := st.pass(p.Pass)
		dst.Runs += p.Runs
		dst.Removed += p.Removed
		dst.Nanos += p.Nanos
	}
}

// countFuncInstrs counts IR instructions over all blocks — the size metric
// the fixpoint loop, Stats, and the benchmarks share.
func countFuncInstrs(fn *compile.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Optimize runs the pass pipeline for the level over one function. The
// input must be verifier-error-free and is never mutated; at O0 the input
// pointer itself is returned. After every pass the output is re-verified
// and any diagnostic at all — warnings included — fails the whole
// optimization with the structured Diags wrapped in the returned error.
// SSA round-trips are engineered to be warning-free (unreachable blocks
// are dropped, maybe-uninitialized reads become explicit zero
// initializations), so a surviving diagnostic is a pass bug, not noise.
func Optimize(ctx context.Context, fn *compile.Func, level Level) (*compile.Func, *Stats, error) {
	st := newStats(level)
	st.Funcs = 1
	st.InstrsBefore = countFuncInstrs(fn)
	st.InstrsAfter = st.InstrsBefore
	if level == O0 {
		return fn, st, nil
	}
	if _, err := ParseLevel(int(level)); err != nil {
		return nil, st, err
	}

	ctx, sp := obs.StartSpan(ctx, "opt.Optimize",
		obs.KV("func", fn.Name), obs.KV("level", level.String()))
	defer sp.End()

	cur := fn
	apply := func(name string, pass func(*ssaFunc)) error {
		start := time.Now()
		s := buildSSA(cur)
		pass(s)
		out := s.deconstruct()
		ps := st.pass(name)
		ps.Runs++
		removed := countFuncInstrs(cur) - countFuncInstrs(out)
		ps.Removed += removed
		ps.Nanos += time.Since(start).Nanoseconds()
		obs.AddCountL(ctx, "opt.pass.runs", 1, obs.L("pass", name))
		obs.AddCountL(ctx, "opt.pass.removed", int64(removed), obs.L("pass", name))
		if diags := analysis.VerifyCtx(ctx, out); len(diags) > 0 {
			return fmt.Errorf("%s: pass %s produced unverifiable IR for %s: %w",
				level, name, fn.Name,
				errors.Join(ErrOpt, analysis.AsError(diags, analysis.SevWarn)))
		}
		cur = out
		return nil
	}

	var err error
	switch level {
	case O1:
		if err = apply("constprop", (*ssaFunc).constProp); err == nil {
			err = apply("dce", (*ssaFunc).dce)
		}
	case O2:
		// Iterate to a fixpoint, keeping the smallest gated pass output: a
		// later round that fails to shrink is discarded. The first round is
		// always kept even when it grows — making implicit zero
		// initialization explicit can cost instructions — so every -O2
		// result is a verified pass output (zero diagnostics), never the
		// raw input with whatever warnings it carried.
		var best *compile.Func
		for round := 0; round < maxRounds; round++ {
			if err = apply("constprop", (*ssaFunc).constProp); err != nil {
				break
			}
			if err = apply("copyprop", (*ssaFunc).copyProp); err != nil {
				break
			}
			if err = apply("dce", (*ssaFunc).dce); err != nil {
				break
			}
			if best != nil && countFuncInstrs(cur) >= countFuncInstrs(best) {
				break
			}
			best = cur
		}
		if err == nil {
			cur = best
		}
	}
	if err != nil {
		return nil, st, err
	}
	st.InstrsAfter = countFuncInstrs(cur)
	sp.SetAttr("instrs_before", st.InstrsBefore)
	sp.SetAttr("instrs_after", st.InstrsAfter)
	return cur, st, nil
}

// diffVectors is the number of randomized input vectors OptimizeObject
// executes differentially per function.
const diffVectors = 4

// OptimizeObject optimizes every function of an object and gates the
// result twice: each pass output is verified (see Optimize), and the
// optimized object is executed against the original on randomized inputs
// through compile.Machine — both must agree exactly on result, fault
// behavior, and memory. At O0 the input object is returned untouched.
// The per-function differential seed derives from the function name, so
// runs are deterministic.
func OptimizeObject(ctx context.Context, obj *compile.Object, level Level) (*compile.Object, *Stats, error) {
	st := newStats(level)
	for _, fn := range obj.Funcs {
		n := countFuncInstrs(fn)
		st.InstrsBefore += n
		st.InstrsAfter += n
	}
	st.Funcs = len(obj.Funcs)
	if level == O0 {
		return obj, st, nil
	}
	if _, err := ParseLevel(int(level)); err != nil {
		return nil, st, err
	}

	ctx, sp := obs.StartSpan(ctx, "opt.OptimizeObject", obs.KV("level", level.String()))
	defer sp.End()

	st = newStats(level)
	out := &compile.Object{Funcs: make([]*compile.Func, 0, len(obj.Funcs))}
	for _, fn := range obj.Funcs {
		ofn, fst, err := Optimize(ctx, fn, level)
		st.Merge(fst)
		if err != nil {
			return nil, st, err
		}
		out.Funcs = append(out.Funcs, ofn)
	}
	for _, fn := range obj.Funcs {
		if err := Equivalent(obj, out, fn.Name, diffVectors, diffSeed(fn.Name)); err != nil {
			return nil, st, fmt.Errorf("%s: %w", level, err)
		}
	}
	obs.AddCountL(ctx, "opt.funcs", int64(st.Funcs), obs.L("level", level.String()))
	obs.AddCountL(ctx, "opt.instrs.removed",
		int64(st.InstrsBefore-st.InstrsAfter), obs.L("level", level.String()))
	return out, st, nil
}

// diffSeed derives the deterministic differential-testing seed for a
// function name.
func diffSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

package opt

import (
	"bytes"
	"fmt"
	"math/rand"

	"decompstudy/internal/compile"
)

// diffMemSize is the machine memory used for differential runs — the
// interpreter default, so in-bounds addresses behave identically.
const diffMemSize = 1 << 16

// diffStepLimit bounds each differential execution. Both machines get the
// same budget; a one-sided hit is inconclusive (the optimized function
// executes a different instruction count), so that vector is skipped
// rather than reported as a disagreement.
const diffStepLimit = 200_000

// Equivalent executes function name in both objects on vectors randomized
// input vectors (deterministic per seed) and reports the first observable
// disagreement: differing fault behavior, differing results, or differing
// final memory. Both machines start from identical pseudorandom memory so
// loads of unwritten addresses agree too. A nil return means no
// disagreement was observed.
func Equivalent(a, b *compile.Object, name string, vectors int, seed int64) error {
	fn, ok := a.Func0(name)
	if !ok {
		return fmt.Errorf("no function %q in original object: %w", name, ErrOpt)
	}
	r := rand.New(rand.NewSource(seed))
	mem := make([]byte, diffMemSize)
	for v := 0; v < vectors; v++ {
		r.Read(mem)
		args := make([]int64, fn.NParams)
		for i := range args {
			args[i] = diffArg(r)
		}

		ma := compile.NewMachine(a, diffMemSize)
		mb := compile.NewMachine(b, diffMemSize)
		ma.StepLimit = diffStepLimit
		mb.StepLimit = diffStepLimit
		copy(ma.Mem(), mem)
		copy(mb.Mem(), mem)

		va, ea := ma.Call(name, args...)
		vb, eb := mb.Call(name, args...)
		if compile.IsStepLimit(ea) || compile.IsStepLimit(eb) {
			continue
		}
		switch {
		case (ea != nil) != (eb != nil):
			return fmt.Errorf("differential mismatch in %s (args %v): original %s, optimized %s: %w",
				name, args, describe(va, ea), describe(vb, eb), ErrOpt)
		case ea == nil && va != vb:
			return fmt.Errorf("differential mismatch in %s (args %v): original returned %d, optimized %d: %w",
				name, args, va, vb, ErrOpt)
		case ea == nil && !bytes.Equal(ma.Mem(), mb.Mem()):
			return fmt.Errorf("differential mismatch in %s (args %v): memories diverge at offset %#x: %w",
				name, args, firstDiff(ma.Mem(), mb.Mem()), ErrOpt)
		}
		// Both faulted (non-step-limit): they agree the input is bad. The
		// exact message may differ (e.g. which of two dead divisions
		// trapped first), which is not an observable program behavior.
	}
	return nil
}

// diffArg draws one argument value, mixing magnitudes so small constants,
// in-bounds addresses, negatives, and wide values all occur.
func diffArg(r *rand.Rand) int64 {
	switch r.Intn(4) {
	case 0:
		return int64(r.Intn(16)) // small counts and flags
	case 1:
		return int64(r.Intn(diffMemSize - 64)) // plausible addresses
	case 2:
		return -int64(r.Intn(1 << 20)) // negatives
	default:
		return int64(r.Uint64()) // full width
	}
}

func describe(v int64, err error) string {
	if err != nil {
		return fmt.Sprintf("faulted (%v)", err)
	}
	return fmt.Sprintf("returned %d", v)
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

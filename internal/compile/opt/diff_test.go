package opt

import (
	"context"
	"math/rand"
	"testing"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
)

// TestDifferentialRandom is the quick-check suite from the roadmap: a
// thousand randomized well-formed functions, each optimized at -O1 and
// -O2 with the built-in differential gate, plus extra input vectors
// through Equivalent. Any behavioral divergence or verifier diagnostic
// fails the run. Short mode trims the count for the pre-commit loop.
func TestDifferentialRandom(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	r := rand.New(rand.NewSource(26))
	ctx := context.Background()
	for i := 0; i < n; i++ {
		f := analysis.GenFunc(r)
		if analysis.CountSev(analysis.Verify(f), analysis.SevError) > 0 {
			t.Fatalf("GenFunc emitted invalid IR at i=%d", i)
		}
		obj := &compile.Object{Funcs: []*compile.Func{f}}
		for _, level := range []Level{O1, O2} {
			out, _, err := OptimizeObject(ctx, obj, level)
			if err != nil {
				t.Fatalf("i=%d %s: %v\ninput:\n%s", i, level, err, f)
			}
			for _, ofn := range out.Funcs {
				if diags := analysis.Verify(ofn); len(diags) > 0 {
					t.Fatalf("i=%d %s: %d diagnostics on optimized IR: %v", i, level, len(diags), diags[0])
				}
			}
			if err := Equivalent(obj, out, f.Name, 8, int64(i)*1009+int64(level)); err != nil {
				t.Fatalf("i=%d %s extra vectors: %v\ninput:\n%s", i, level, err, f)
			}
		}
	}
}

// TestEquivalentCatchesMiscompiles: the harness itself must flag a wrong
// constant, a wrong store, and a wrong fault — otherwise the gate is
// decorative.
func TestEquivalentCatchesMiscompiles(t *testing.T) {
	orig := fn("victim", 1, 2,
		blk(0,
			ibin(compile.OpAdd, 1, compile.Temp(0), compile.Const(1)),
			iret(compile.Temp(1)),
		),
	)
	obj := &compile.Object{Funcs: []*compile.Func{orig}}

	wrongValue := fn("victim", 1, 2,
		blk(0,
			ibin(compile.OpAdd, 1, compile.Temp(0), compile.Const(2)),
			iret(compile.Temp(1)),
		),
	)
	wrongMem := fn("victim", 1, 2,
		blk(0,
			ibin(compile.OpAdd, 1, compile.Temp(0), compile.Const(1)),
			istore(compile.Const(64), compile.Const(7), 1),
			iret(compile.Temp(1)),
		),
	)
	wrongFault := fn("victim", 1, 2,
		blk(0,
			ibin(compile.OpDiv, 1, compile.Const(1), compile.Const(0)),
			iret(compile.Temp(1)),
		),
	)
	for name, bad := range map[string]*compile.Func{
		"value": wrongValue, "memory": wrongMem, "fault": wrongFault,
	} {
		badObj := &compile.Object{Funcs: []*compile.Func{bad}}
		if err := Equivalent(obj, badObj, "victim", 8, 3); err == nil {
			t.Errorf("Equivalent missed the %s miscompile", name)
		}
	}
}

// TestOptimizeRejectsBadLevel: invalid levels error through both entry
// points rather than silently running some default.
func TestOptimizeRejectsBadLevel(t *testing.T) {
	f := fn("f", 0, 1, blk(0, iret(compile.Const(0))))
	obj := &compile.Object{Funcs: []*compile.Func{f}}
	if _, _, err := Optimize(context.Background(), f, Level(7)); err == nil {
		t.Error("Optimize accepted level 7")
	}
	if _, _, err := OptimizeObject(context.Background(), obj, Level(-2)); err == nil {
		t.Error("OptimizeObject accepted level -2")
	}
}

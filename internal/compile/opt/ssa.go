// Package opt is the SSA-based optimizer for the project's three-address
// IR: construction via dominance-frontier phi placement (on top of
// analysis.Dominators), three classic passes — sparse conditional
// constant propagation with branch folding, copy propagation, and
// dead-code elimination — and out-of-SSA deconstruction back to plain
// compile.Func form, exposed as the study's optimization levels:
//
//	-O0  identity (the default; study artifacts stay byte-identical)
//	-O1  constprop + DCE
//	-O2  adds copy propagation and iterates the pipeline to a fixpoint
//
// Every pass is double-gated: the internal/analysis verifier must report
// zero diagnostics on the pass output (a structured Diag rides the error
// otherwise), and OptimizeObject differentially executes the original and
// optimized IR on randomized inputs through compile.Machine, requiring
// exact agreement. For the study, optimization is an annotation-difficulty
// axis: passes delete and rewrite the very instructions the symbol table
// anchors names to, so fewer annotations survive lifting at higher levels.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
)

// phi is one SSA phi node: dst takes the value of args[j] when control
// arrives over the j-th predecessor edge of the block (slot order matches
// the dense Preds list of the CFG). Args hold value-indexed Temp operands
// at construction; passes may rewrite them to constants.
type phi struct {
	dst  int // SSA value defined
	orig int // original temp this phi versions
	args []compile.Operand
}

// ssaBlock mirrors one reachable block of the source function with
// operands renamed to SSA values.
type ssaBlock struct {
	id     int // original block ID
	phis   []phi
	instrs []compile.Instr // Temp operands and Dst hold SSA value IDs
}

// ssaFunc is a function in SSA form. Values 0..NParams-1 are the incoming
// parameters; every other value has exactly one definition (a phi, an
// instruction Dst, or a synthetic zero-initialization at entry, matching
// the interpreter's zero-filled register file).
type ssaFunc struct {
	fn  *compile.Func
	g   *analysis.Graph
	dom *analysis.DomInfo
	// idom and children encode the dominator tree over dense block
	// indices; idom[entry] = -1, unreachable blocks carry -1.
	idom     []int
	children [][]int
	// blocks is indexed by dense block index; nil for unreachable blocks.
	blocks []*ssaBlock
	// live marks the blocks the optimized function still contains; SCCP
	// clears it for blocks proven unexecutable.
	live []bool
	// nvals counts SSA values; origOf maps a value to the original temp it
	// versions (-1 for none).
	nvals  int
	origOf []int
	// zeroVals lists, in creation order, the values that materialize the
	// interpreter's implicit zero for temps read before any definition on
	// some path; deconstruct emits them as `mov v, 0` at entry.
	zeroVals []int
	zeroOf   []int // temp → zero value, -1 if none
}

// buildSSA converts fn (which must be verifier-error-free) into SSA form.
// Unreachable blocks are dropped here: they contribute no semantics and
// removing them is what lets the output be verifier-warning-free too.
func buildSSA(fn *compile.Func) *ssaFunc {
	g := analysis.NewGraph(fn)
	if len(g.Preds[0]) > 0 {
		// The entry block is a branch target (a loop back to block 0):
		// parameters would then flow in over an implicit edge no phi slot
		// represents. Split it: a synthetic entry that only branches to the
		// old one restores the invariant that entry has no predecessors.
		fn = splitEntry(fn)
		g = analysis.NewGraph(fn)
	}
	s := &ssaFunc{
		fn:     fn,
		g:      g,
		dom:    analysis.Dominators(g),
		blocks: make([]*ssaBlock, len(g.Blocks)),
		live:   make([]bool, len(g.Blocks)),
		zeroOf: make([]int, fn.NTemps),
	}
	s.buildDomTree()
	for t := range s.zeroOf {
		s.zeroOf[t] = -1
	}
	for i := range g.Blocks {
		if g.Reach.Has(i) {
			s.live[i] = true
			s.blocks[i] = &ssaBlock{id: g.Blocks[i].ID}
		}
	}
	// Parameters are values 0..NParams-1.
	s.nvals = fn.NParams
	s.origOf = make([]int, fn.NParams)
	for p := 0; p < fn.NParams; p++ {
		s.origOf[p] = p
	}
	s.placePhis()
	s.rename()
	return s
}

// splitEntry returns a copy of fn with a fresh entry block (a previously
// unused ID) that only branches to the old entry, so block 0 of the copy
// has no CFG predecessors. Blocks and instructions are shared with the
// input — callers treat them as read-only.
func splitEntry(fn *compile.Func) *compile.Func {
	maxID := 0
	for _, b := range fn.Blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
	}
	nf := *fn
	nf.Blocks = make([]*compile.Block, 0, len(fn.Blocks)+1)
	nf.Blocks = append(nf.Blocks, &compile.Block{
		ID:     maxID + 1,
		Instrs: []compile.Instr{{Op: compile.OpBr, Dst: -1, Target: fn.Blocks[0].ID}},
	})
	nf.Blocks = append(nf.Blocks, fn.Blocks...)
	return &nf
}

// buildDomTree derives the immediate-dominator tree from the dominator
// sets: idom(b) is the strict dominator of b with the largest dominator
// set (every other strict dominator of b also dominates it).
func (s *ssaFunc) buildDomTree() {
	n := len(s.g.Blocks)
	s.idom = make([]int, n)
	s.children = make([][]int, n)
	for i := range s.idom {
		s.idom[i] = -1
	}
	for b := 0; b < n; b++ {
		if b == 0 || !s.g.Reach.Has(b) {
			continue
		}
		best, bestSize := -1, -1
		s.dom.Dom[b].ForEach(func(c int) {
			if c == b || !s.g.Reach.Has(c) {
				return
			}
			if size := s.dom.Dom[c].Count(); size > bestSize {
				best, bestSize = c, size
			}
		})
		s.idom[b] = best
		if best >= 0 {
			s.children[best] = append(s.children[best], b)
		}
	}
	for _, c := range s.children {
		sort.Ints(c)
	}
}

// frontiers computes the dominance frontier of every reachable block with
// the classic Cytron walk: for a join block b, every reachable
// predecessor p and its dominators up to (excluding) idom(b) have b in
// their frontier.
func (s *ssaFunc) frontiers() [][]int {
	n := len(s.g.Blocks)
	df := make([][]int, n)
	in := make([]analysis.Bits, n)
	for i := range in {
		in[i] = analysis.NewBits(n)
	}
	for b := 0; b < n; b++ {
		if !s.g.Reach.Has(b) || len(s.g.Preds[b]) < 2 {
			continue
		}
		for _, p := range s.g.Preds[b] {
			if !s.g.Reach.Has(p) {
				continue
			}
			for runner := p; runner != -1 && runner != s.idom[b]; runner = s.idom[runner] {
				if !in[runner].Has(b) {
					in[runner].Set(b)
					df[runner] = append(df[runner], b)
				}
				if runner == 0 {
					break
				}
			}
		}
	}
	return df
}

// placePhis inserts pruned-SSA phi nodes: a temp gets a phi at the
// iterated dominance frontier of its definition blocks, but only where it
// is live into the join (liveness pruning keeps the out-of-SSA copy count
// near what the original had).
func (s *ssaFunc) placePhis() {
	df := s.frontiers()
	liv := analysis.Liveness(s.g)
	n := len(s.g.Blocks)

	defBlocks := make([]analysis.Bits, s.fn.NTemps)
	for t := range defBlocks {
		defBlocks[t] = analysis.NewBits(n)
	}
	for p := 0; p < s.fn.NParams; p++ {
		defBlocks[p].Set(0)
	}
	for bi, b := range s.g.Blocks {
		if !s.g.Reach.Has(bi) {
			continue
		}
		for _, in := range b.Instrs {
			if d := defTempOf(in); d >= 0 && d < s.fn.NTemps {
				defBlocks[d].Set(bi)
			}
		}
	}

	for t := 0; t < s.fn.NTemps; t++ {
		if defBlocks[t].Count() == 0 {
			continue
		}
		hasPhi := analysis.NewBits(n)
		var work []int
		defBlocks[t].ForEach(func(b int) { work = append(work, b) })
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[b] {
				if hasPhi.Has(y) || !liv.In[y].Has(t) {
					continue
				}
				hasPhi.Set(y)
				s.blocks[y].phis = append(s.blocks[y].phis, phi{
					orig: t,
					args: make([]compile.Operand, len(s.g.Preds[y])),
				})
				if !defBlocks[t].Has(y) {
					work = append(work, y)
				}
			}
		}
	}
	// Keep phi order deterministic: ascending by versioned temp.
	for _, b := range s.blocks {
		if b != nil {
			sort.SliceStable(b.phis, func(i, j int) bool { return b.phis[i].orig < b.phis[j].orig })
		}
	}
}

// rename walks the dominator tree assigning SSA values: a stack per
// original temp, a fresh value at each definition, reads rewritten to the
// stack top. A read with an empty stack means the original could reach
// this use with the temp never written — the interpreter's register file
// is zero-filled, so such reads see a synthetic zero value defined at
// entry.
func (s *ssaFunc) rename() {
	stacks := make([][]int, s.fn.NTemps)

	newValue := func(orig int) int {
		v := s.nvals
		s.nvals++
		s.origOf = append(s.origOf, orig)
		return v
	}
	lookup := func(t int) int {
		if st := stacks[t]; len(st) > 0 {
			return st[len(st)-1]
		}
		if s.zeroOf[t] < 0 {
			v := newValue(t)
			s.zeroOf[t] = v
			s.zeroVals = append(s.zeroVals, v)
		}
		return s.zeroOf[t]
	}
	rewriteUse := func(o compile.Operand) compile.Operand {
		if o.Kind == compile.OperandTemp {
			return compile.Temp(lookup(o.Temp))
		}
		return o
	}

	var walk func(b int)
	walk = func(b int) {
		var pushed []int // temps pushed in this block, for the epilogue pop
		push := func(t, v int) {
			stacks[t] = append(stacks[t], v)
			pushed = append(pushed, t)
		}
		if b == 0 {
			for p := 0; p < s.fn.NParams; p++ {
				push(p, p)
			}
		}
		sb := s.blocks[b]
		for i := range sb.phis {
			sb.phis[i].dst = newValue(sb.phis[i].orig)
			push(sb.phis[i].orig, sb.phis[i].dst)
		}
		for _, in := range s.g.Blocks[b].Instrs {
			out := in
			out.A = rewriteUse(in.A)
			out.B = rewriteUse(in.B)
			if in.Op == compile.OpCall {
				out.Callee = rewriteUse(in.Callee)
				out.Args = make([]compile.Operand, len(in.Args))
				for i, a := range in.Args {
					out.Args[i] = rewriteUse(a)
				}
			}
			if d := defTempOf(in); d >= 0 {
				v := newValue(d)
				out.Dst = v
				push(d, v)
			} else if in.Op != compile.OpCall {
				out.Dst = -1
			}
			sb.instrs = append(sb.instrs, out)
		}
		// Fill this block's slots in every successor phi. Duplicate edges
		// (condbr with both arms on one target) fill both slots with the
		// same value, which is exactly their semantics.
		for _, succ := range s.g.Succs[b] {
			tb := s.blocks[succ]
			for pi := range tb.phis {
				for slot, pred := range s.g.Preds[succ] {
					if pred == b {
						tb.phis[pi].args[slot] = compile.Temp(lookup(tb.phis[pi].orig))
					}
				}
			}
		}
		for _, c := range s.children[b] {
			walk(c)
		}
		for _, t := range pushed {
			stacks[t] = stacks[t][:len(stacks[t])-1]
		}
	}
	if len(s.g.Blocks) > 0 && s.g.Reach.Has(0) {
		walk(0)
	}
}

// countInstrs returns the SSA instruction count (phis included) over live
// blocks — the size metric the fixpoint loop and the obs counters use.
func (s *ssaFunc) countInstrs() int {
	n := 0
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		n += len(b.phis) + len(b.instrs)
	}
	return n
}

// String renders the SSA form for the golden phi-placement tests: values
// as vN, phis with their per-predecessor arguments.
func (s *ssaFunc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ssa %s(%d params, %d values):\n", s.fn.Name, s.fn.NParams, s.nvals)
	for _, zv := range s.zeroVals {
		fmt.Fprintf(&sb, "  v%d = zero (t%d)\n", zv, s.origOf[zv])
	}
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		fmt.Fprintf(&sb, "b%d:\n", b.id)
		for _, p := range b.phis {
			parts := make([]string, len(p.args))
			for j, a := range p.args {
				from := "?"
				if j < len(s.g.Preds[bi]) {
					from = fmt.Sprintf("b%d", s.g.Blocks[s.g.Preds[bi][j]].ID)
				}
				parts[j] = fmt.Sprintf("%s: %s", from, renderOperand(a))
			}
			fmt.Fprintf(&sb, "  v%d = phi(t%d) [%s]\n", p.dst, p.orig, strings.Join(parts, ", "))
		}
		for _, in := range b.instrs {
			fmt.Fprintf(&sb, "  %s\n", renderInstr(in))
		}
	}
	return sb.String()
}

// renderOperand prints an SSA operand (Temp fields are value IDs).
func renderOperand(o compile.Operand) string {
	if o.Kind == compile.OperandTemp {
		return fmt.Sprintf("v%d", o.Temp)
	}
	return o.String()
}

// renderInstr prints one SSA instruction with vN value names.
func renderInstr(in compile.Instr) string {
	switch in.Op {
	case compile.OpLoad:
		return fmt.Sprintf("v%d = load%d %s", in.Dst, in.Width, renderOperand(in.A))
	case compile.OpStore:
		return fmt.Sprintf("store%d %s, %s", in.Width, renderOperand(in.A), renderOperand(in.B))
	case compile.OpCall:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = renderOperand(a)
		}
		call := fmt.Sprintf("call %s(%s)", renderOperand(in.Callee), strings.Join(parts, ", "))
		if in.Dst >= 0 {
			return fmt.Sprintf("v%d = %s", in.Dst, call)
		}
		return call
	case compile.OpRet:
		if in.A.Kind == compile.OperandNone {
			return "ret"
		}
		return "ret " + renderOperand(in.A)
	case compile.OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case compile.OpCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", renderOperand(in.A), in.Target, in.Else)
	case compile.OpMov:
		return fmt.Sprintf("v%d = %s", in.Dst, renderOperand(in.A))
	case compile.OpNot, compile.OpNeg, compile.OpLNot:
		return fmt.Sprintf("v%d = %s %s", in.Dst, in.Op, renderOperand(in.A))
	default:
		return fmt.Sprintf("v%d = %s %s, %s", in.Dst, in.Op, renderOperand(in.A), renderOperand(in.B))
	}
}

// defTempOf mirrors analysis's defTemp: the temp an instruction defines,
// or -1 — stores, returns, and branches define nothing.
func defTempOf(in compile.Instr) int {
	switch in.Op {
	case compile.OpStore, compile.OpRet, compile.OpBr, compile.OpCondBr:
		return -1
	}
	if in.Dst >= 0 {
		return in.Dst
	}
	return -1
}

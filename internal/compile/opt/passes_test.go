package opt

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
)

func optimize(t *testing.T, f *compile.Func, level Level) (*compile.Func, *Stats) {
	t.Helper()
	mustVerify(t, f)
	out, st, err := Optimize(context.Background(), f, level)
	if err != nil {
		t.Fatalf("Optimize(%s, %s): %v", f.Name, level, err)
	}
	mustVerify(t, out)
	return out, st
}

// TestConstPropStraightLine: a chain of constant arithmetic collapses to
// a single returned constant at -O1.
func TestConstPropStraightLine(t *testing.T) {
	f := fn("arith", 0, 3,
		blk(0,
			imov(0, compile.Const(2)),
			imov(1, compile.Const(3)),
			ibin(compile.OpMul, 2, compile.Temp(0), compile.Temp(1)),
			ibin(compile.OpAdd, 2, compile.Temp(2), compile.Const(4)),
			iret(compile.Temp(2)),
		),
	)
	out, st := optimize(t, f, O1)
	if got := countFuncInstrs(out); got != 1 {
		t.Errorf("want 1 instruction (ret 10), got %d:\n%v", got, out.Blocks[0].Instrs)
	}
	term := out.Blocks[0].Instrs[len(out.Blocks[0].Instrs)-1]
	if term.Op != compile.OpRet || term.A != compile.Const(10) {
		t.Errorf("want `ret 10`, got %s", term)
	}
	if st.InstrsBefore != 5 || st.InstrsAfter != 1 {
		t.Errorf("stats before/after = %d/%d, want 5/1", st.InstrsBefore, st.InstrsAfter)
	}
}

// TestConstPropFoldsBranch: a condbr on a constant condition folds and
// the dead arm disappears, including its instructions.
func TestConstPropFoldsBranch(t *testing.T) {
	f := fn("deadarm", 1, 2,
		blk(0, imov(1, compile.Const(1)), icondbr(compile.Temp(1), 1, 2)),
		blk(1, ibin(compile.OpAdd, 1, compile.Temp(0), compile.Const(5)), ibr(3)),
		blk(2, ibin(compile.OpMul, 1, compile.Temp(0), compile.Const(9)), ibr(3)),
		blk(3, iret(compile.Temp(1))),
	)
	out, _ := optimize(t, f, O1)
	if len(out.Blocks) >= len(f.Blocks) {
		t.Errorf("dead arm not removed: %d blocks, started with %d", len(out.Blocks), len(f.Blocks))
	}
	for _, b := range out.Blocks {
		for _, in := range b.Instrs {
			if in.Op == compile.OpMul {
				t.Errorf("dead-arm multiply survived in b%d", b.ID)
			}
			if in.Op == compile.OpCondBr {
				t.Errorf("constant branch not folded in b%d", b.ID)
			}
		}
	}
}

// TestSCCPCorrelatedBranches: SCCP proves a second branch constant only
// along executable paths — the classic case plain constprop misses.
func TestSCCPCorrelatedBranches(t *testing.T) {
	// t1 = 0; if (p0) t1 = 0; /* both arms leave t1 == 0 */ if (t1) return 99; return p0
	f := fn("correlated", 1, 2,
		blk(0, imov(1, compile.Const(0)), icondbr(compile.Temp(0), 1, 2)),
		blk(1, imov(1, compile.Const(0)), ibr(2)),
		blk(2, icondbr(compile.Temp(1), 3, 4)),
		blk(3, iret(compile.Const(99))),
		blk(4, iret(compile.Temp(0))),
	)
	out, _ := optimize(t, f, O1)
	for _, b := range out.Blocks {
		for _, in := range b.Instrs {
			if in.Op == compile.OpRet && in.A == compile.Const(99) {
				t.Errorf("unreachable `return 99` survived SCCP")
			}
		}
	}
}

// TestDCETrapPreservation: dead pure instructions go; dead loads and dead
// divisions by a possibly-zero divisor stay, because they can fault.
func TestDCETrapPreservation(t *testing.T) {
	f := fn("traps", 2, 6,
		blk(0,
			ibin(compile.OpAdd, 2, compile.Temp(0), compile.Const(1)), // dead, pure: goes
			iload(3, compile.Temp(0), 8),                              // dead, can fault: stays
			ibin(compile.OpDiv, 4, compile.Temp(1), compile.Temp(0)),  // dead, divisor unknown: stays
			ibin(compile.OpDiv, 5, compile.Temp(1), compile.Const(4)), // dead, divisor 4: goes
			iret(compile.Temp(1)),
		),
	)
	out, _ := optimize(t, f, O2)
	var ops []compile.Opcode
	for _, in := range out.Blocks[0].Instrs {
		ops = append(ops, in.Op)
	}
	want := []compile.Opcode{compile.OpLoad, compile.OpDiv, compile.OpRet}
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("surviving ops %v, want %v", ops, want)
	}
}

// TestCopyPropChain: -O2 collapses mov chains that -O1 leaves.
func TestCopyPropChain(t *testing.T) {
	f := fn("chain", 1, 4,
		blk(0,
			imov(1, compile.Temp(0)),
			imov(2, compile.Temp(1)),
			imov(3, compile.Temp(2)),
			ibin(compile.OpAdd, 3, compile.Temp(3), compile.Temp(3)),
			iret(compile.Temp(3)),
		),
	)
	out, _ := optimize(t, f, O2)
	if got := countFuncInstrs(out); got != 2 {
		t.Errorf("want 2 instructions (add + ret), got %d:\n%v", got, out.Blocks[0].Instrs)
	}
	add := out.Blocks[0].Instrs[0]
	if add.Op != compile.OpAdd || add.A != compile.Temp(0) || add.B != compile.Temp(0) {
		t.Errorf("copy chain not collapsed onto the parameter: %s", add)
	}
}

// TestO0IsIdentity: level 0 returns the very same pointers.
func TestO0IsIdentity(t *testing.T) {
	f := fn("id", 1, 2, blk(0, imov(1, compile.Temp(0)), iret(compile.Temp(1))))
	out, st, err := Optimize(context.Background(), f, O0)
	if err != nil || out != f {
		t.Fatalf("O0 not identity: out=%p f=%p err=%v", out, f, err)
	}
	if st.InstrsBefore != st.InstrsAfter {
		t.Errorf("O0 stats claim a size change: %+v", st)
	}
	obj := &compile.Object{Funcs: []*compile.Func{f}}
	oout, _, err := OptimizeObject(context.Background(), obj, O0)
	if err != nil || oout != obj {
		t.Fatalf("O0 OptimizeObject not identity: %v", err)
	}
}

// TestParseLevel rejects out-of-range levels with ErrOpt.
func TestParseLevel(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		if l, err := ParseLevel(n); err != nil || int(l) != n {
			t.Errorf("ParseLevel(%d) = %v, %v", n, l, err)
		}
	}
	for _, n := range []int{-1, 3, 42} {
		if _, err := ParseLevel(n); !errors.Is(err, ErrOpt) {
			t.Errorf("ParseLevel(%d) err = %v, want ErrOpt", n, err)
		}
	}
}

// TestOptimizeDeterministic: two runs over the same input agree exactly.
func TestOptimizeDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		f := analysis.GenFunc(r)
		if analysis.CountSev(analysis.Verify(f), analysis.SevError) > 0 {
			t.Fatalf("GenFunc produced invalid IR at i=%d", i)
		}
		a, _, err := Optimize(context.Background(), f, O2)
		if err != nil {
			t.Fatalf("first run: %v", err)
		}
		b, _, err := Optimize(context.Background(), f, O2)
		if err != nil {
			t.Fatalf("second run: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("nondeterministic optimization at i=%d", i)
		}
	}
}

// TestStatsAccounting: pass stats cover every pass that ran and the
// object-level aggregate matches the sum over functions.
func TestStatsAccounting(t *testing.T) {
	f1 := fn("f1", 0, 2,
		blk(0, imov(0, compile.Const(1)), ibin(compile.OpAdd, 1, compile.Temp(0), compile.Const(1)), iret(compile.Temp(1))))
	f2 := fn("f2", 1, 2,
		blk(0, imov(1, compile.Temp(0)), iret(compile.Temp(1))))
	obj := &compile.Object{Funcs: []*compile.Func{f1, f2}}
	out, st, err := OptimizeObject(context.Background(), obj, O2)
	if err != nil {
		t.Fatalf("OptimizeObject: %v", err)
	}
	if st.Funcs != 2 || len(out.Funcs) != 2 {
		t.Fatalf("want 2 funcs, got %d/%d", st.Funcs, len(out.Funcs))
	}
	if st.InstrsBefore != 5 {
		t.Errorf("InstrsBefore = %d, want 5", st.InstrsBefore)
	}
	if st.InstrsAfter >= st.InstrsBefore {
		t.Errorf("no shrink recorded: %d -> %d", st.InstrsBefore, st.InstrsAfter)
	}
	for _, p := range st.Passes {
		if p.Runs == 0 {
			t.Errorf("pass %s never ran at O2", p.Pass)
		}
	}
}

package opt

import (
	"strings"
	"testing"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
)

// Local IR builders, mirroring the lowering conventions of
// internal/compile (Dst -1 on non-defining instructions).

func imov(dst int, a compile.Operand) compile.Instr {
	return compile.Instr{Op: compile.OpMov, Dst: dst, A: a}
}

func ibin(op compile.Opcode, dst int, a, b compile.Operand) compile.Instr {
	return compile.Instr{Op: op, Dst: dst, A: a, B: b}
}

func iload(dst int, addr compile.Operand, width int) compile.Instr {
	return compile.Instr{Op: compile.OpLoad, Dst: dst, A: addr, Width: width}
}

func istore(addr, val compile.Operand, width int) compile.Instr {
	return compile.Instr{Op: compile.OpStore, Dst: -1, A: addr, B: val, Width: width}
}

func iret(a compile.Operand) compile.Instr {
	return compile.Instr{Op: compile.OpRet, Dst: -1, A: a}
}

func ibr(target int) compile.Instr {
	return compile.Instr{Op: compile.OpBr, Dst: -1, Target: target}
}

func icondbr(cond compile.Operand, target, els int) compile.Instr {
	return compile.Instr{Op: compile.OpCondBr, Dst: -1, A: cond, Target: target, Else: els}
}

func blk(id int, instrs ...compile.Instr) *compile.Block {
	return &compile.Block{ID: id, Instrs: instrs}
}

func fn(name string, nparams, ntemps int, blocks ...*compile.Block) *compile.Func {
	return &compile.Func{
		Name: name, NParams: nparams, NTemps: ntemps,
		RetWidth: 8, RetSigned: true, Blocks: blocks,
	}
}

// mustVerify fails the test if fn has any verifier diagnostics at all.
func mustVerify(t *testing.T, f *compile.Func) {
	t.Helper()
	if diags := analysis.Verify(f); len(diags) > 0 {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString("\n  " + d.String())
		}
		t.Fatalf("%s not verifier-clean:%s", f.Name, sb.String())
	}
}

func checkGolden(t *testing.T, f *compile.Func, want string) {
	t.Helper()
	got := buildSSA(f).String()
	if got != strings.TrimLeft(want, "\n") {
		t.Errorf("SSA mismatch for %s:\ngot:\n%s\nwant:\n%s", f.Name, got, strings.TrimLeft(want, "\n"))
	}
}

// TestSSADiamond pins phi placement at an if/else join: one phi for the
// temp assigned in both arms, none for the untouched parameter.
func TestSSADiamond(t *testing.T) {
	f := fn("diamond", 1, 2,
		blk(0, icondbr(compile.Temp(0), 1, 2)),
		blk(1, imov(1, compile.Const(1)), ibr(3)),
		blk(2, imov(1, compile.Const(2)), ibr(3)),
		blk(3, iret(compile.Temp(1))),
	)
	checkGolden(t, f, `
ssa diamond(1 params, 4 values):
b0:
  condbr v0, b1, b2
b1:
  v1 = 1
  br b3
b2:
  v2 = 2
  br b3
b3:
  v3 = phi(t1) [b1: v1, b2: v2]
  ret v3
`)
}

// TestSSALoop pins the loop-header phi: the accumulator gets a phi
// merging its initial value and the back-edge update; the loop bound,
// never reassigned, gets none.
func TestSSALoop(t *testing.T) {
	// i = 0; while (i < n) i = i + 1; return i
	f := fn("loop", 1, 2,
		blk(0, imov(1, compile.Const(0)), ibr(1)),
		blk(1, ibin(compile.OpCmpLT, 1, compile.Temp(1), compile.Temp(0)), icondbr(compile.Temp(1), 2, 3)),
		blk(2, ibin(compile.OpAdd, 1, compile.Temp(1), compile.Const(1)), ibr(1)),
		blk(3, iret(compile.Temp(1))),
	)
	checkGolden(t, f, `
ssa loop(1 params, 5 values):
b0:
  v1 = 0
  br b1
b1:
  v2 = phi(t1) [b0: v1, b2: v4]
  v3 = cmplt v2, v0
  condbr v3, b2, b3
b2:
  v4 = add v3, 1
  br b1
b3:
  ret v3
`)
}

// TestSSANestedLoop pins iterated-frontier placement: the inner header's
// phi feeds the outer header's phi through the outer back edge.
func TestSSANestedLoop(t *testing.T) {
	// acc = 0
	// outer: if (!(acc < p0)) goto done
	// inner: if (!(acc < p1)) goto outer_latch
	//        acc = acc + 1; goto inner
	// outer_latch: acc = acc + 2; goto outer
	// done: ret acc
	f := fn("nested", 2, 3,
		blk(0, imov(2, compile.Const(0)), ibr(1)),
		blk(1, ibin(compile.OpCmpLT, 2, compile.Temp(2), compile.Temp(0)), icondbr(compile.Temp(2), 2, 5)),
		blk(2, ibin(compile.OpCmpLT, 2, compile.Temp(2), compile.Temp(1)), icondbr(compile.Temp(2), 3, 4)),
		blk(3, ibin(compile.OpAdd, 2, compile.Temp(2), compile.Const(1)), ibr(2)),
		blk(4, ibin(compile.OpAdd, 2, compile.Temp(2), compile.Const(2)), ibr(1)),
		blk(5, iret(compile.Temp(2))),
	)
	got := buildSSA(f).String()
	// The full golden is noisy here; pin the structural facts instead:
	// phis at both headers (b1, b2) and at the join blocks that read acc.
	for _, want := range []string{
		"= phi(t2) [b0: v2, b4: v8]",
		"= phi(t2) [b1: v4, b3: v7]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("nested-loop SSA missing %q:\n%s", want, got)
		}
	}
}

// TestSSASwitchJoin pins phi placement when several dispatch arms meet at
// one join (a lowered switch): the join phi has one slot per arm.
func TestSSASwitchJoin(t *testing.T) {
	f := fn("switchjoin", 1, 3,
		blk(0, ibin(compile.OpCmpEQ, 1, compile.Temp(0), compile.Const(1)), icondbr(compile.Temp(1), 2, 1)),
		blk(1, ibin(compile.OpCmpEQ, 1, compile.Temp(0), compile.Const(2)), icondbr(compile.Temp(1), 3, 4)),
		blk(2, imov(2, compile.Const(10)), ibr(5)),
		blk(3, imov(2, compile.Const(20)), ibr(5)),
		blk(4, imov(2, compile.Const(30)), ibr(5)),
		blk(5, iret(compile.Temp(2))),
	)
	checkGolden(t, f, `
ssa switchjoin(1 params, 7 values):
b0:
  v1 = cmpeq v0, 1
  condbr v1, b2, b1
b1:
  v2 = cmpeq v0, 2
  condbr v2, b3, b4
b2:
  v5 = 10
  br b5
b3:
  v3 = 20
  br b5
b4:
  v4 = 30
  br b5
b5:
  v6 = phi(t2) [b2: v5, b3: v3, b4: v4]
  ret v6
`)
}

// TestSSAEntrySplit pins the synthetic-entry transform: a branch back to
// block 0 forces a fresh predecessor-free entry so parameters keep a
// well-defined incoming edge.
func TestSSAEntrySplit(t *testing.T) {
	f := fn("entryloop", 1, 2,
		blk(0, ibin(compile.OpSub, 0, compile.Temp(0), compile.Const(1)), icondbr(compile.Temp(0), 0, 1)),
		blk(1, iret(compile.Temp(0))),
	)
	s := buildSSA(f)
	if got := len(s.g.Preds[0]); got != 0 {
		t.Fatalf("entry still has %d predecessors after split", got)
	}
	got := s.String()
	if !strings.Contains(got, "b2:\n  br b0") {
		t.Errorf("no synthetic entry in:\n%s", got)
	}
	if !strings.Contains(got, "phi(t0)") {
		t.Errorf("no phi for the parameter reassigned in the entry loop:\n%s", got)
	}
}

// TestSSAZeroInit pins the synthetic zero value: a temp read before any
// definition on some path resolves to an explicit zero, matching the
// interpreter's zero-filled register file.
func TestSSAZeroInit(t *testing.T) {
	// if (p0) t1 = 7; return t1   — t1 unset on the else path.
	f := fn("maybeset", 1, 2,
		blk(0, icondbr(compile.Temp(0), 1, 2)),
		blk(1, imov(1, compile.Const(7)), ibr(2)),
		blk(2, iret(compile.Temp(1))),
	)
	s := buildSSA(f)
	if len(s.zeroVals) != 1 {
		t.Fatalf("want 1 zero value, got %d", len(s.zeroVals))
	}
	if !strings.Contains(s.String(), "= zero (t1)") {
		t.Errorf("zero value not rendered:\n%s", s.String())
	}
}

// TestDeconstructRoundTrip checks that buildSSA+deconstruct with no pass
// in between yields verifier-clean IR that the differential harness
// cannot tell apart from the original.
func TestDeconstructRoundTrip(t *testing.T) {
	funcs := []*compile.Func{
		fn("diamond", 1, 2,
			blk(0, icondbr(compile.Temp(0), 1, 2)),
			blk(1, imov(1, compile.Const(1)), ibr(3)),
			blk(2, imov(1, compile.Const(2)), ibr(3)),
			blk(3, iret(compile.Temp(1))),
		),
		fn("loop", 1, 2,
			blk(0, imov(1, compile.Const(0)), ibr(1)),
			blk(1, ibin(compile.OpCmpLT, 1, compile.Temp(1), compile.Temp(0)), icondbr(compile.Temp(1), 2, 3)),
			blk(2, ibin(compile.OpAdd, 1, compile.Temp(1), compile.Const(1)), ibr(1)),
			blk(3, iret(compile.Temp(1))),
		),
		fn("maybeset", 1, 2,
			blk(0, icondbr(compile.Temp(0), 1, 2)),
			blk(1, imov(1, compile.Const(7)), ibr(2)),
			blk(2, iret(compile.Temp(1))),
		),
		fn("entryloop", 1, 2,
			blk(0, ibin(compile.OpSub, 0, compile.Temp(0), compile.Const(1)), icondbr(compile.Temp(0), 0, 1)),
			blk(1, iret(compile.Temp(0))),
		),
	}
	for _, f := range funcs {
		out := buildSSA(f).deconstruct()
		mustVerify(t, out)
		orig := &compile.Object{Funcs: []*compile.Func{f}}
		rt := &compile.Object{Funcs: []*compile.Func{out}}
		if err := Equivalent(orig, rt, f.Name, 16, 1); err != nil {
			t.Errorf("round-trip changed behavior: %v", err)
		}
	}
}

// TestSwapLoop exercises the parallel-copy swap problem: two phis whose
// back-edge arguments reference each other must go through a scratch
// temp, not clobber one another.
func TestSwapLoop(t *testing.T) {
	// a=p1; b=p2; for n iterations: a,b = b,a; return a*64+b
	f := fn("swap", 3, 6,
		blk(0, imov(3, compile.Temp(1)), imov(4, compile.Temp(2)), imov(5, compile.Const(0)), ibr(1)),
		blk(1, ibin(compile.OpCmpLT, 5, compile.Temp(5), compile.Temp(0)), icondbr(compile.Temp(5), 2, 3)),
		blk(2,
			imov(5, compile.Temp(3)),
			imov(3, compile.Temp(4)),
			imov(4, compile.Temp(5)),
			// recompute the induction variable from scratch would need
			// another temp; keep the loop bounded by the condbr above going
			// false once p0 <= 0... instead just exit unconditionally after
			// one swap to keep the test tiny.
			ibr(3)),
		blk(3,
			ibin(compile.OpShl, 3, compile.Temp(3), compile.Const(6)),
			ibin(compile.OpAdd, 3, compile.Temp(3), compile.Temp(4)),
			iret(compile.Temp(3))),
	)
	mustVerify(t, f)
	out := buildSSA(f).deconstruct()
	mustVerify(t, out)
	orig := &compile.Object{Funcs: []*compile.Func{f}}
	rt := &compile.Object{Funcs: []*compile.Func{out}}
	if err := Equivalent(orig, rt, "swap", 24, 2); err != nil {
		t.Errorf("swap round-trip changed behavior: %v", err)
	}
}

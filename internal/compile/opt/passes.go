package opt

import "decompstudy/internal/compile"

// Lattice tags for sparse conditional constant propagation. Values start
// at top ("no evidence yet"), fall to a single constant, and bottom out
// at "varies". The lattice only ever descends, so the fixpoint loop
// terminates.
const (
	latTop = iota
	latConst
	latBot
)

// lat is one value's SCCP lattice cell.
type lat struct {
	tag int
	c   int64
}

// meet joins two lattice cells.
func meet(a, b lat) lat {
	switch {
	case a.tag == latTop:
		return b
	case b.tag == latTop:
		return a
	case a.tag == latConst && b.tag == latConst && a.c == b.c:
		return a
	default:
		return lat{tag: latBot}
	}
}

// constProp runs sparse conditional constant propagation with branch
// folding over the SSA function, in place:
//
//   - values proven constant have their defining instructions rewritten
//     to `mov #c` and their uses replaced by constant operands,
//   - condbr on a proven-constant condition folds to an unconditional br,
//   - blocks no realizable path executes are removed (s.live cleared).
//
// Folding goes through compile.EvalBinop/EvalUnop — the interpreter's own
// arithmetic — and never folds a division or modulo whose divisor could
// be zero: the trapping instruction stays so -O0 and -O2 fault on exactly
// the same inputs.
func (s *ssaFunc) constProp() {
	vals := make([]lat, s.nvals)
	for p := 0; p < s.fn.NParams; p++ {
		vals[p] = lat{tag: latBot}
	}
	for _, zv := range s.zeroVals {
		vals[zv] = lat{tag: latConst, c: 0}
	}

	operandLat := func(o compile.Operand) lat {
		switch o.Kind {
		case compile.OperandConst:
			return lat{tag: latConst, c: o.Const}
		case compile.OperandTemp:
			return vals[o.Temp]
		default:
			// Symbol operands (string labels, function names) never fold.
			return lat{tag: latBot}
		}
	}

	exec := make([]bool, len(s.blocks))
	// edgeExec is keyed by (pred, succ) dense indices.
	edgeExec := map[[2]int]bool{}
	if len(s.blocks) > 0 && s.blocks[0] != nil {
		exec[0] = true
	}

	evalInstr := func(in compile.Instr) lat {
		switch in.Op {
		case compile.OpMov:
			return operandLat(in.A)
		case compile.OpNeg, compile.OpNot, compile.OpLNot:
			a := operandLat(in.A)
			if a.tag == latConst {
				if v, err := compile.EvalUnop(in.Op, a.c); err == nil {
					return lat{tag: latConst, c: v}
				}
				return lat{tag: latBot}
			}
			return a
		case compile.OpAdd, compile.OpSub, compile.OpMul, compile.OpDiv, compile.OpRem,
			compile.OpAnd, compile.OpOr, compile.OpXor, compile.OpShl, compile.OpShr,
			compile.OpCmpEQ, compile.OpCmpNE, compile.OpCmpLT, compile.OpCmpLE,
			compile.OpCmpGT, compile.OpCmpGE:
			a, b := operandLat(in.A), operandLat(in.B)
			if a.tag == latBot || b.tag == latBot {
				return lat{tag: latBot}
			}
			if a.tag == latTop || b.tag == latTop {
				return lat{tag: latTop}
			}
			v, err := compile.EvalBinop(in.Op, a.c, b.c)
			if err != nil {
				// Division by a constant zero: the instruction traps at
				// runtime; its "result" never exists.
				return lat{tag: latBot}
			}
			return lat{tag: latConst, c: v}
		default:
			// Loads and calls produce unknowable values.
			return lat{tag: latBot}
		}
	}

	// Fixpoint: re-simulate executable blocks until nothing descends and
	// no new edge lights up. Functions here are tiny; the simple loop
	// beats worklist bookkeeping.
	for changed := true; changed; {
		changed = false
		for bi, b := range s.blocks {
			if b == nil || !exec[bi] {
				continue
			}
			for pi := range b.phis {
				m := lat{tag: latTop}
				for slot, pred := range s.g.Preds[bi] {
					if !edgeExec[[2]int{pred, bi}] {
						continue
					}
					m = meet(m, operandLat(b.phis[pi].args[slot]))
				}
				d := b.phis[pi].dst
				if nv := meet(vals[d], m); nv != vals[d] {
					vals[d] = nv
					changed = true
				}
			}
			for _, in := range b.instrs {
				if d := defTempOf(in); d >= 0 {
					nv := meet(vals[d], evalInstr(in))
					if nv != vals[d] {
						vals[d] = nv
						changed = true
					}
				}
			}
			if len(b.instrs) == 0 {
				continue
			}
			term := b.instrs[len(b.instrs)-1]
			markEdge := func(succID int) {
				si, ok := s.g.Index[succID]
				if !ok || s.blocks[si] == nil {
					return
				}
				if !edgeExec[[2]int{bi, si}] {
					edgeExec[[2]int{bi, si}] = true
					changed = true
				}
				if !exec[si] {
					exec[si] = true
					changed = true
				}
			}
			switch term.Op {
			case compile.OpBr:
				markEdge(term.Target)
			case compile.OpCondBr:
				switch c := operandLat(term.A); c.tag {
				case latConst:
					if c.c != 0 {
						markEdge(term.Target)
					} else {
						markEdge(term.Else)
					}
				case latBot:
					markEdge(term.Target)
					markEdge(term.Else)
				}
			}
		}
	}

	// Rewrite: fold constant definitions, substitute constant uses, fold
	// branches, drop unexecutable blocks.
	subst := func(o compile.Operand) compile.Operand {
		if o.Kind == compile.OperandTemp && vals[o.Temp].tag == latConst {
			return compile.Const(vals[o.Temp].c)
		}
		return o
	}
	for bi, b := range s.blocks {
		if b == nil {
			continue
		}
		if !exec[bi] {
			s.live[bi] = false
			continue
		}
		for pi := range b.phis {
			for j := range b.phis[pi].args {
				b.phis[pi].args[j] = subst(b.phis[pi].args[j])
			}
		}
		for ii := range b.instrs {
			in := &b.instrs[ii]
			if d := defTempOf(*in); d >= 0 && vals[d].tag == latConst && foldable(in.Op) {
				*in = compile.Instr{Op: compile.OpMov, Dst: d, A: compile.Const(vals[d].c)}
				continue
			}
			in.A = subst(in.A)
			in.B = subst(in.B)
			if in.Op == compile.OpCall {
				// The callee slot stays symbolic; argument temps fold.
				for ai := range in.Args {
					in.Args[ai] = subst(in.Args[ai])
				}
			}
			if in.Op == compile.OpCondBr && in.A.Kind == compile.OperandConst {
				target := in.Target
				if in.A.Const == 0 {
					target = in.Else
				}
				*in = compile.Instr{Op: compile.OpBr, Dst: -1, Target: target}
			}
		}
	}
}

// foldable reports whether a constant result may replace the instruction
// outright: pure register ops only. Loads and calls are never rewritten
// (their lattice is bottom anyway); a div/rem whose result is a known
// constant already proved its divisor non-zero, so it is pure here.
func foldable(op compile.Opcode) bool {
	switch op {
	case compile.OpLoad, compile.OpStore, compile.OpCall,
		compile.OpRet, compile.OpBr, compile.OpCondBr:
		return false
	}
	return true
}

// copyProp replaces every use of a value defined by a copy (`mov v, w`,
// `mov v, #c`, or a phi whose live arguments all agree) with the copied
// operand, chasing chains to their origin. The now-unused copies stay in
// place for DCE to collect.
func (s *ssaFunc) copyProp() {
	// defs: value → the operand it copies, or None when not a copy.
	resolved := make([]compile.Operand, s.nvals)
	state := make([]int, s.nvals) // 0 unvisited, 1 in progress, 2 done

	def := make([]compile.Operand, s.nvals) // raw copy source per value
	phiOf := make(map[int]*phi, 0)          // value → defining phi
	phiBlock := make(map[int]int, 0)        // value → dense block of the phi
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		for pi := range b.phis {
			phiOf[b.phis[pi].dst] = &b.phis[pi]
			phiBlock[b.phis[pi].dst] = bi
		}
		for _, in := range b.instrs {
			if in.Op == compile.OpMov && in.Dst >= 0 {
				def[in.Dst] = in.A
			}
		}
	}

	var resolve func(v int) compile.Operand
	resolve = func(v int) compile.Operand {
		self := compile.Temp(v)
		if state[v] == 2 {
			return resolved[v]
		}
		if state[v] == 1 {
			return self // cycle through phis: keep the value itself
		}
		state[v] = 1
		out := self
		switch {
		case def[v].Kind == compile.OperandConst:
			out = def[v]
		case def[v].Kind == compile.OperandTemp:
			out = resolve(def[v].Temp)
		default:
			if p, ok := phiOf[v]; ok {
				// A phi whose live arguments all resolve to one operand is a
				// copy of it (self-references ignored, the standard rule).
				agreed := compile.Operand{}
				ok := true
				bi := phiBlock[v]
				for slot, pred := range s.g.Preds[bi] {
					if s.blocks[pred] == nil || !s.live[pred] {
						continue
					}
					a := p.args[slot]
					if a.Kind == compile.OperandNone {
						continue
					}
					if a.Kind == compile.OperandTemp {
						a = resolve(a.Temp)
					}
					if a.Kind == compile.OperandTemp && a.Temp == v {
						continue // self loop
					}
					if agreed.Kind == compile.OperandNone {
						agreed = a
					} else if agreed != a {
						ok = false
						break
					}
				}
				if ok && agreed.Kind != compile.OperandNone {
					out = agreed
				}
			}
		}
		state[v] = 2
		resolved[v] = out
		return out
	}

	subst := func(o compile.Operand) compile.Operand {
		if o.Kind == compile.OperandTemp {
			return resolve(o.Temp)
		}
		return o
	}
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		for pi := range b.phis {
			for j := range b.phis[pi].args {
				b.phis[pi].args[j] = subst(b.phis[pi].args[j])
			}
		}
		for ii := range b.instrs {
			in := &b.instrs[ii]
			in.A = subst(in.A)
			in.B = subst(in.B)
			if in.Op == compile.OpCall {
				if in.Callee.Kind == compile.OperandTemp {
					in.Callee = subst(in.Callee)
				}
				for ai := range in.Args {
					in.Args[ai] = subst(in.Args[ai])
				}
			}
		}
	}
}

// dce removes instructions whose results nothing observes. Effectful or
// potentially trapping instructions are roots and always stay: stores,
// calls, returns, branches, loads (out-of-bounds faults), and div/rem
// with a possibly-zero divisor — removing any of those would change
// observable behavior on some input, which the differential gate would
// catch. Everything else survives only if a chain of uses connects it to
// a root.
func (s *ssaFunc) dce() {
	needed := make([]bool, s.nvals)
	var work []int
	need := func(o compile.Operand) {
		if o.Kind == compile.OperandTemp && !needed[o.Temp] {
			needed[o.Temp] = true
			work = append(work, o.Temp)
		}
	}

	type defSite struct {
		block int
		instr int // -1: phi
		phi   int
	}
	defAt := make(map[int]defSite, s.nvals)

	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		for pi, p := range b.phis {
			defAt[p.dst] = defSite{block: bi, instr: -1, phi: pi}
		}
		for ii, in := range b.instrs {
			if d := defTempOf(in); d >= 0 {
				defAt[d] = defSite{block: bi, instr: ii}
			}
			if !removable(in) {
				need(in.A)
				need(in.B)
				if in.Op == compile.OpCall {
					need(in.Callee)
					for _, a := range in.Args {
						need(a)
					}
				}
			}
		}
	}

	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		site, ok := defAt[v]
		if !ok {
			continue // parameter or zero-init: no instruction to keep
		}
		b := s.blocks[site.block]
		if site.instr < 0 {
			for _, a := range b.phis[site.phi].args {
				need(a)
			}
			continue
		}
		in := b.instrs[site.instr]
		need(in.A)
		need(in.B)
		if in.Op == compile.OpCall {
			need(in.Callee)
			for _, a := range in.Args {
				need(a)
			}
		}
	}

	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		kept := b.phis[:0]
		for _, p := range b.phis {
			if needed[p.dst] {
				kept = append(kept, p)
			}
		}
		b.phis = kept
		keptIn := b.instrs[:0]
		for _, in := range b.instrs {
			if d := defTempOf(in); d >= 0 && removable(in) && !needed[d] {
				continue
			}
			keptIn = append(keptIn, in)
		}
		b.instrs = keptIn
	}
}

// removable reports whether the instruction is pure — free of side
// effects and unable to trap — so DCE may delete it when its result is
// unused. Division and modulo are pure only when the divisor is a
// non-zero constant.
func removable(in compile.Instr) bool {
	switch in.Op {
	case compile.OpStore, compile.OpCall, compile.OpRet, compile.OpBr, compile.OpCondBr,
		compile.OpLoad:
		return false
	case compile.OpDiv, compile.OpRem:
		return in.B.Kind == compile.OperandConst && in.B.Const != 0
	}
	return true
}

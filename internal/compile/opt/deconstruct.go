package opt

import "decompstudy/internal/compile"

// deconstruct translates SSA back into plain compile.Func form. Values
// are first coalesced (see coalesce.go): a phi and its non-interfering
// arguments share one temp, so their copies vanish; parameters pin their
// classes to temps 0..NParams-1, preserving the interpreter's calling
// convention. The copies that remain become parallel-copy sets,
// sequentialized with cycle-breaking scratch temps so the lost-copy and
// swap problems cannot bite. A block with several successors emits its
// copies on a fresh edge block per successor (critical-edge splitting) —
// emitting them before the branch would execute them on paths that never
// reach the phi, clobbering coalesced temps.
//
// The output is deterministic, structurally verifier-clean (only live
// blocks are emitted, entry first; coalescing is interference-checked, so
// every read is definitely assigned), and never aliases the input
// function.
func (s *ssaFunc) deconstruct() *compile.Func {
	cls := s.coalesce()

	// Pass 1: find which values are actually read by the emitted program,
	// so unused zero-inits do not materialize.
	used := make([]bool, s.nvals)
	markOp := func(o compile.Operand) {
		if o.Kind == compile.OperandTemp {
			used[o.Temp] = true
		}
	}
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		for _, p := range b.phis {
			for _, a := range p.args {
				markOp(a)
			}
		}
		for _, in := range b.instrs {
			markOp(in.A)
			markOp(in.B)
			if in.Op == compile.OpCall {
				markOp(in.Callee)
				for _, a := range in.Args {
					markOp(a)
				}
			}
		}
	}

	// Pass 2: assign one temp per coalescing class, in deterministic
	// encounter order. Parameter classes are pinned.
	tempOf := make([]int, s.nvals)
	for i := range tempOf {
		tempOf[i] = -1
	}
	classTemp := make(map[int]int, s.nvals)
	next := s.fn.NParams
	assign := func(v int) {
		if v < 0 || tempOf[v] >= 0 {
			return
		}
		r := cls.find(v)
		t, ok := classTemp[r]
		if !ok {
			if cls.param[r] >= 0 {
				t = cls.param[r]
			} else {
				t = next
				next++
			}
			classTemp[r] = t
		}
		tempOf[v] = t
	}
	for p := 0; p < s.fn.NParams; p++ {
		assign(p)
	}
	for _, zv := range s.zeroVals {
		if used[zv] {
			assign(zv)
		}
	}
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		for _, p := range b.phis {
			assign(p.dst)
		}
		for _, in := range b.instrs {
			if d := defTempOf(in); d >= 0 {
				assign(d)
			}
		}
	}

	mapOp := func(o compile.Operand) compile.Operand {
		if o.Kind == compile.OperandTemp {
			return compile.Temp(tempOf[o.Temp])
		}
		return o
	}

	out := &compile.Func{
		Name:      s.fn.Name,
		NParams:   s.fn.NParams,
		RetWidth:  s.fn.RetWidth,
		RetSigned: s.fn.RetSigned,
	}

	nextBlockID := 0
	for bi, b := range s.blocks {
		if b != nil && s.live[bi] && b.id >= nextBlockID {
			nextBlockID = b.id + 1
		}
	}

	// copiesInto collects the still-needed parallel copies for the edge
	// bi→si; coalesced pairs map to the same temp and drop out.
	copiesInto := func(bi, si int) []parCopy {
		var copies []parCopy
		for _, p := range s.blocks[si].phis {
			slot := -1
			for j, pred := range s.g.Preds[si] {
				if pred == bi && p.args[j].Kind != compile.OperandNone {
					slot = j
					break
				}
			}
			if slot < 0 {
				continue
			}
			src := mapOp(p.args[slot])
			if src.Kind == compile.OperandTemp && src.Temp == tempOf[p.dst] {
				continue
			}
			copies = append(copies, parCopy{dst: tempOf[p.dst], src: src})
		}
		return copies
	}

	// Pass 3: emit live blocks in original order, splitting critical
	// edges that still carry copies.
	var edgeBlocks []*compile.Block
	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		nb := &compile.Block{ID: b.id}
		if bi == 0 {
			for _, zv := range s.zeroVals {
				if used[zv] {
					nb.Instrs = append(nb.Instrs, compile.Instr{
						Op: compile.OpMov, Dst: tempOf[zv], A: compile.Const(0),
					})
				}
			}
		}
		if len(b.instrs) == 0 {
			// Cannot happen on verifier-clean input (every block has a
			// terminator), but stay total.
			out.Blocks = append(out.Blocks, nb)
			continue
		}
		for _, in := range b.instrs[:len(b.instrs)-1] {
			o := in
			o.A = mapOp(in.A)
			o.B = mapOp(in.B)
			if in.Op == compile.OpCall {
				o.Callee = mapOp(in.Callee)
				o.Args = make([]compile.Operand, len(in.Args))
				for i, a := range in.Args {
					o.Args[i] = mapOp(a)
				}
			}
			if d := defTempOf(in); d >= 0 {
				o.Dst = tempOf[d]
			}
			nb.Instrs = append(nb.Instrs, o)
		}

		term := b.instrs[len(b.instrs)-1]
		t := term
		t.A = mapOp(term.A)

		var succs []int // distinct dense successor indices
		seen := map[int]bool{}
		for _, succID := range termSuccs(term) {
			si, ok := s.g.Index[succID]
			if !ok || seen[si] || s.blocks[si] == nil {
				continue
			}
			seen[si] = true
			succs = append(succs, si)
		}

		if len(succs) == 1 {
			// Unique successor: copies run inline before the terminator.
			// The terminator reads its operand AFTER those copies execute,
			// but semantically it must see the pre-copy value (a condbr with
			// both arms on one block can read a temp the copies overwrite) —
			// park the pre-copy value in a scratch temp then.
			copies := copiesInto(bi, succs[0])
			if t.A.Kind == compile.OperandTemp {
				for _, c := range copies {
					if c.dst == t.A.Temp {
						scratch := next
						next++
						nb.Instrs = append(nb.Instrs, compile.Instr{
							Op: compile.OpMov, Dst: scratch, A: t.A,
						})
						t.A = compile.Temp(scratch)
						break
					}
				}
			}
			nb.Instrs = append(nb.Instrs, sequentialize(copies, &next)...)
		} else if len(succs) > 1 {
			for _, si := range succs {
				copies := copiesInto(bi, si)
				if len(copies) == 0 {
					continue
				}
				eb := &compile.Block{ID: nextBlockID}
				nextBlockID++
				eb.Instrs = append(sequentialize(copies, &next),
					compile.Instr{Op: compile.OpBr, Dst: -1, Target: s.blocks[si].id})
				edgeBlocks = append(edgeBlocks, eb)
				if t.Target == s.blocks[si].id {
					t.Target = eb.ID
				} else if t.Op == compile.OpCondBr && t.Else == s.blocks[si].id {
					t.Else = eb.ID
				}
			}
		}
		nb.Instrs = append(nb.Instrs, t)
		out.Blocks = append(out.Blocks, nb)
	}
	out.Blocks = append(out.Blocks, edgeBlocks...)
	out.NTemps = next
	if out.NTemps < out.NParams {
		out.NTemps = out.NParams
	}

	// Symbol table: parameters keep their temps; a local follows its
	// lowest-numbered surviving SSA value (the first definition in
	// dominator order). Locals whose every version was optimized away drop
	// out of the table — that is the study's annotation-survival axis.
	for _, sym := range s.fn.Symbols {
		if sym.Kind == compile.VarParam && sym.Temp < s.fn.NParams {
			out.Symbols = append(out.Symbols, sym)
			continue
		}
		mapped := -1
		for v := 0; v < s.nvals; v++ {
			if s.origOf[v] == sym.Temp && tempOf[v] >= 0 {
				mapped = tempOf[v]
				break
			}
		}
		if mapped >= 0 {
			ns := sym
			ns.Temp = mapped
			out.Symbols = append(out.Symbols, ns)
		}
	}
	return out
}

// parCopy is one pending parallel copy.
type parCopy struct {
	dst int
	src compile.Operand
}

// sequentialize orders a parallel copy set into mov instructions. A copy
// is safe to emit when no pending copy still reads its destination; when
// every pending copy is blocked the set contains a cycle, which is broken
// by saving one blocked destination into a fresh scratch temp (allocated
// from *next) and redirecting its readers — the standard lost-copy/swap
// treatment.
func sequentialize(copies []parCopy, next *int) []compile.Instr {
	var out []compile.Instr
	pending := make([]parCopy, 0, len(copies))
	for _, c := range copies {
		// Self-copies (a coalesced or self-looping phi argument) are no-ops.
		if c.src.Kind == compile.OperandTemp && c.src.Temp == c.dst {
			continue
		}
		pending = append(pending, c)
	}
	for len(pending) > 0 {
		emitted := false
		for i, c := range pending {
			blocked := false
			for _, o := range pending {
				if o.src.Kind == compile.OperandTemp && o.src.Temp == c.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			out = append(out, compile.Instr{Op: compile.OpMov, Dst: c.dst, A: c.src})
			pending = append(pending[:i], pending[i+1:]...)
			emitted = true
			break
		}
		if emitted {
			continue
		}
		// Every pending destination is still read: break the cycle by
		// parking the first destination in a scratch temp.
		d := pending[0].dst
		scratch := *next
		*next++
		out = append(out, compile.Instr{Op: compile.OpMov, Dst: scratch, A: compile.Temp(d)})
		for i := range pending {
			if pending[i].src.Kind == compile.OperandTemp && pending[i].src.Temp == d {
				pending[i].src = compile.Temp(scratch)
			}
		}
	}
	return out
}

// termSuccs returns the successor block IDs of a terminator instruction.
func termSuccs(t compile.Instr) []int {
	switch t.Op {
	case compile.OpBr:
		return []int{t.Target}
	case compile.OpCondBr:
		return []int{t.Target, t.Else}
	default:
		return nil
	}
}

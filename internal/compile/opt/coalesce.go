package opt

import (
	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
)

// This file implements the out-of-SSA copy-coalescing analysis. Naive phi
// deconstruction inserts one copy per phi per predecessor edge, which
// GROWS mov-heavy lowered code instead of shrinking it. Coalescing
// assigns a phi and its arguments one shared temp whenever their SSA
// values do not interfere, so most copies become self-copies and vanish.
//
// Interference is exact for strict SSA: two values interfere iff one is
// live at the other's (unique) definition. Liveness is computed over SSA
// values with phi arguments live-out of the predecessor edge, phi
// destinations defined at the top of their block.

// liveInfo carries per-block value liveness plus, per value, the set of
// values live immediately after its definition (its interference row).
type liveInfo struct {
	in, out []analysis.Bits // per dense block index, over value IDs
	atDef   []analysis.Bits // per value ID, over value IDs
}

// uses appends the value IDs an instruction reads.
func uses(in compile.Instr, out []int) []int {
	add := func(o compile.Operand) []int {
		if o.Kind == compile.OperandTemp {
			out = append(out, o.Temp)
		}
		return out
	}
	out = add(in.A)
	out = add(in.B)
	if in.Op == compile.OpCall {
		out = add(in.Callee)
		for _, a := range in.Args {
			out = add(a)
		}
	}
	return out
}

// valueLiveness runs the backward dataflow over live blocks, following
// the rewritten terminators (edges SCCP folded away are gone).
func (s *ssaFunc) valueLiveness() *liveInfo {
	nb := len(s.blocks)
	li := &liveInfo{
		in:    make([]analysis.Bits, nb),
		out:   make([]analysis.Bits, nb),
		atDef: make([]analysis.Bits, s.nvals),
	}
	for i := range li.in {
		li.in[i] = analysis.NewBits(s.nvals)
		li.out[i] = analysis.NewBits(s.nvals)
	}
	for v := range li.atDef {
		li.atDef[v] = analysis.NewBits(s.nvals)
	}

	// phiArg returns the argument value flowing over edge pred→bi into the
	// pi-th phi, or -1. Duplicate-edge slots carry identical values, so the
	// first non-None slot is authoritative.
	phiArg := func(bi, pi, pred int) int {
		p := s.blocks[bi].phis[pi]
		for slot, pb := range s.g.Preds[bi] {
			if pb == pred && p.args[slot].Kind == compile.OperandTemp {
				return p.args[slot].Temp
			}
			if pb == pred && p.args[slot].Kind != compile.OperandNone {
				return -1 // constant argument: nothing live
			}
		}
		return -1
	}

	// transfer recomputes liveIn[bi] from liveOut[bi]; returns true when it
	// changed.
	transfer := func(bi int) bool {
		b := s.blocks[bi]
		live := li.out[bi].Clone()
		for i := len(b.instrs) - 1; i >= 0; i-- {
			in := b.instrs[i]
			if d := defTempOf(in); d >= 0 {
				live.Clear(d)
			}
			var scratch [8]int
			for _, u := range uses(b.instrs[i], scratch[:0]) {
				live.Set(u)
			}
		}
		for _, p := range b.phis {
			live.Clear(p.dst)
		}
		if live.Equal(li.in[bi]) {
			return false
		}
		li.in[bi] = live
		return true
	}

	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := s.blocks[bi]
			if b == nil || !s.live[bi] {
				continue
			}
			if len(b.instrs) == 0 {
				continue
			}
			out := analysis.NewBits(s.nvals)
			seen := map[int]bool{}
			for _, succID := range termSuccs(b.instrs[len(b.instrs)-1]) {
				si, ok := s.g.Index[succID]
				if !ok || seen[si] || s.blocks[si] == nil || !s.live[si] {
					continue
				}
				seen[si] = true
				out.Union(li.in[si])
				for pi := range s.blocks[si].phis {
					if a := phiArg(si, pi, bi); a >= 0 {
						out.Set(a)
					}
				}
			}
			if !out.Equal(li.out[bi]) {
				li.out[bi] = out
				changed = true
			}
			if transfer(bi) {
				changed = true
			}
		}
	}

	// Final backward pass: record the live set at every definition point.
	for bi := range s.blocks {
		b := s.blocks[bi]
		if b == nil || !s.live[bi] {
			continue
		}
		live := li.out[bi].Clone()
		for i := len(b.instrs) - 1; i >= 0; i-- {
			in := b.instrs[i]
			if d := defTempOf(in); d >= 0 {
				live.Clear(d)
				li.atDef[d].Union(live)
			}
			var scratch [8]int
			for _, u := range uses(b.instrs[i], scratch[:0]) {
				live.Set(u)
			}
		}
		// Phi destinations define in parallel at the block top: each
		// interferes with everything live there, the other phi dsts
		// included.
		for _, p := range b.phis {
			live.Set(p.dst)
		}
		for _, p := range b.phis {
			live.Clear(p.dst)
			li.atDef[p.dst].Union(live)
			live.Set(p.dst)
		}
		if bi == 0 {
			// Parameters and synthetic zero values define in parallel at
			// entry (the interpreter's register file). Entry has no phis —
			// buildSSA splits the entry block when it has predecessors.
			for _, p := range b.phis {
				live.Clear(p.dst)
			}
			ent := func(v int) {
				live.Clear(v)
				li.atDef[v].Union(live)
				live.Set(v)
			}
			for p := 0; p < s.fn.NParams; p++ {
				ent(p)
			}
			for _, zv := range s.zeroVals {
				ent(zv)
			}
		}
	}
	return li
}

// classes is a union-find over SSA values with the merge metadata the
// coalescer needs.
type classes struct {
	parent  []int
	members [][]int
	param   []int // param ID pinned to the class, -1 if none
	named   []int // the symbol-table orig temp the class carries, -1 if none
}

func (c *classes) find(v int) int {
	for c.parent[v] != v {
		c.parent[v] = c.parent[c.parent[v]]
		v = c.parent[v]
	}
	return v
}

// coalesce builds the value classes: every phi tries to merge with each
// of its argument values. A merge is allowed when no pair of member
// values interferes, at most one side is pinned to a parameter, and the
// classes do not carry two different named variables (a temp serving two
// symbols would make annotations ambiguous).
func (s *ssaFunc) coalesce() *classes {
	li := s.valueLiveness()
	named := make(map[int]bool, len(s.fn.Symbols))
	for _, sym := range s.fn.Symbols {
		named[sym.Temp] = true
	}

	c := &classes{
		parent:  make([]int, s.nvals),
		members: make([][]int, s.nvals),
		param:   make([]int, s.nvals),
		named:   make([]int, s.nvals),
	}
	for v := 0; v < s.nvals; v++ {
		c.parent[v] = v
		c.members[v] = []int{v}
		c.param[v] = -1
		if v < s.fn.NParams {
			c.param[v] = v
		}
		c.named[v] = -1
		if o := s.origOf[v]; o >= 0 && named[o] {
			c.named[v] = o
		}
	}

	interfere := func(x, y int) bool {
		return li.atDef[x].Has(y) || li.atDef[y].Has(x)
	}
	tryMerge := func(a, b int) {
		ra, rb := c.find(a), c.find(b)
		if ra == rb {
			return
		}
		if c.param[ra] >= 0 && c.param[rb] >= 0 {
			return
		}
		if c.named[ra] >= 0 && c.named[rb] >= 0 && c.named[ra] != c.named[rb] {
			return
		}
		for _, x := range c.members[ra] {
			for _, y := range c.members[rb] {
				if interfere(x, y) {
					return
				}
			}
		}
		// Merge rb into ra.
		c.parent[rb] = ra
		c.members[ra] = append(c.members[ra], c.members[rb]...)
		c.members[rb] = nil
		if c.param[rb] >= 0 {
			c.param[ra] = c.param[rb]
		}
		if c.named[rb] >= 0 {
			c.named[ra] = c.named[rb]
		}
	}

	for bi, b := range s.blocks {
		if b == nil || !s.live[bi] {
			continue
		}
		for _, p := range b.phis {
			for _, a := range p.args {
				if a.Kind == compile.OperandTemp {
					tryMerge(p.dst, a.Temp)
				}
			}
		}
	}
	return c
}

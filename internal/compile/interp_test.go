package compile

import (
	"errors"
	"testing"

	"decompstudy/internal/csrc"
)

func machineFor(t *testing.T, src string, extra []string) *Machine {
	t.Helper()
	f, err := csrc.Parse(src, extra)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	obj, err := Compile(f)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return NewMachine(obj, 1<<12)
}

func TestInterpArithmetic(t *testing.T) {
	m := machineFor(t, `
int calc(int a, int b) {
  return (a + b) * 3 - a % 7;
}
`, nil)
	got, err := m.Call("calc", 10, 4)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	want := int64((10+4)*3 - 10%7)
	if got != want {
		t.Errorf("calc(10,4) = %d, want %d", got, want)
	}
}

func TestInterpControlFlow(t *testing.T) {
	m := machineFor(t, `
int collatz_steps(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  return steps;
}
`, nil)
	got, err := m.Call("collatz_steps", 27)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 111 {
		t.Errorf("collatz_steps(27) = %d, want 111", got)
	}
}

func TestInterpRecursion(t *testing.T) {
	m := machineFor(t, `
long fib(long n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
`, nil)
	got, err := m.Call("fib", 15)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestInterpMemory(t *testing.T) {
	m := machineFor(t, `
long sum_array(long *xs, int n) {
  long total = 0;
  for (int i = 0; i < n; i++) {
    total += xs[i];
  }
  return total;
}
`, nil)
	// Lay out 4 int64s at address 64.
	vals := []int64{3, 5, 7, 11}
	for i, v := range vals {
		for b := 0; b < 8; b++ {
			m.Mem()[64+8*i+b] = byte(v >> (8 * b))
		}
	}
	got, err := m.Call("sum_array", 64, 4)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 26 {
		t.Errorf("sum_array = %d, want 26", got)
	}
}

func TestInterpTwosComplementSnippet(t *testing.T) {
	// Execute the actual TC study snippet on the question's inputs: the
	// ground-truth answer used to grade TC-Q1.
	m := machineFor(t, `
void twos_complement(unsigned char *dst, const unsigned char *src, size_t len, unsigned char pad) {
  unsigned int carry = pad & 1;
  if (len == 0) {
    return;
  }
  size_t i = len;
  while (i > 0) {
    i = i - 1;
    unsigned int b = src[i] ^ pad;
    b = b + carry;
    dst[i] = b & 255;
    carry = b >> 8;
  }
}
`, nil)
	// src = {0x01, 0x00} at 16, dst at 32, pad = 0xff.
	m.Mem()[16] = 0x01
	m.Mem()[17] = 0x00
	if _, err := m.Call("twos_complement", 32, 16, 2, 0xff); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if m.Mem()[32] != 0xff || m.Mem()[33] != 0x00 {
		t.Errorf("dst = {%#x, %#x}, want {0xff, 0x00} (the TC-Q1 answer)", m.Mem()[32], m.Mem()[33])
	}
}

func TestInterpMemmoveBuiltin(t *testing.T) {
	m := machineFor(t, `
void shift_left(long *xs, int n) {
  memmove(xs, xs + 1, (n - 1) * sizeof(long));
}
`, nil)
	for i, v := range []int64{10, 20, 30} {
		for b := 0; b < 8; b++ {
			m.Mem()[8*i+b] = byte(v >> (8 * b))
		}
	}
	if _, err := m.Call("shift_left", 0, 3); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if m.Mem()[0] != 20 || m.Mem()[8] != 30 {
		t.Errorf("after shift: mem[0]=%d mem[8]=%d, want 20, 30", m.Mem()[0], m.Mem()[8])
	}
}

func TestInterpFaults(t *testing.T) {
	m := machineFor(t, `
int crash_div(int a) {
  return 100 / a;
}
long wild_load(long p) {
  return *(long *)p;
}
int spin(void) {
  while (1) { }
  return 0;
}
`, nil)
	if _, err := m.Call("crash_div", 0); !errors.Is(err, ErrExec) {
		t.Errorf("div by zero: err = %v, want ErrExec", err)
	}
	if _, err := m.Call("wild_load", 1<<40); !errors.Is(err, ErrExec) {
		t.Errorf("wild load: err = %v, want ErrExec", err)
	}
	m.StepLimit = 10_000
	if _, err := m.Call("spin"); !errors.Is(err, ErrExec) {
		t.Errorf("infinite loop: err = %v, want ErrExec", err)
	}
	if _, err := m.Call("nonexistent"); !errors.Is(err, ErrExec) {
		t.Errorf("undefined function: err = %v, want ErrExec", err)
	}
	if _, err := m.Call("crash_div", 1, 2, 3); !errors.Is(err, ErrExec) {
		t.Errorf("arity mismatch: err = %v, want ErrExec", err)
	}
}

func TestInterpReturnTruncation(t *testing.T) {
	m := machineFor(t, `
char low_byte(int x) {
  return x;
}
unsigned char low_ubyte(int x) {
  return x;
}
`, nil)
	got, err := m.Call("low_byte", 0x1FF)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != -1 { // 0xFF as signed char
		t.Errorf("low_byte(0x1FF) = %d, want -1", got)
	}
	got, err = m.Call("low_ubyte", 0x1FF)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != 255 {
		t.Errorf("low_ubyte(0x1FF) = %d, want 255", got)
	}
}

package modelstore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/embed"
	"decompstudy/internal/fault"
)

var testContexts = [][]string{
	{"buffer_length", "buf", "cap", "len"},
	{"copy_bytes", "dest", "src", "n", "i"},
	{"find_char", "str", "ch", "len", "pos"},
}

func testEmbedCfg() *embed.Config { return &embed.Config{Dim: 8, Iterations: 5} }

func TestSingleFlightTrainsOnce(t *testing.T) {
	s := New()
	ctx := context.Background()
	const callers = 16
	models := make([]*embed.Model, callers)
	var wg sync.WaitGroup
	for i := range models {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := s.EmbedModel(ctx, testContexts, testEmbedCfg())
			if err != nil {
				t.Errorf("EmbedModel: %v", err)
				return
			}
			models[i] = m
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Trains != 1 {
		t.Errorf("Trains = %d, want 1 (single-flight should dedup %d concurrent callers)", st.Trains, callers)
	}
	for i, m := range models {
		if m != models[0] {
			t.Fatalf("caller %d got a different model pointer; the store must share one immutable model", i)
		}
	}
	if st := s.Stats(); st.Lookups != callers || st.Hits+st.Misses != callers {
		t.Errorf("Stats = %+v; want %d lookups split between hits and misses", st, callers)
	}
}

func TestDiskRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	em, err := cold.EmbedModel(ctx, testContexts, testEmbedCfg())
	if err != nil {
		t.Fatal(err)
	}
	nm, err := cold.NamerecModel(ctx, corpus.TrainingSources(), corpus.TrainingFiles)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Trains != 2 || st.DiskHits != 0 {
		t.Fatalf("cold Stats = %+v, want 2 trains and 0 disk hits", st)
	}

	// A second store over the same directory must load both models from
	// disk — without parsing the training corpus — and the loaded models
	// must serialize to the exact bytes the trained ones do: bit-identity,
	// not just behavioral equivalence.
	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	em2, err := warm.EmbedModel(ctx, testContexts, testEmbedCfg())
	if err != nil {
		t.Fatal(err)
	}
	nm2, err := warm.NamerecModel(ctx, corpus.TrainingSources(), func() ([]*csrc.File, error) {
		t.Error("disk hit must not parse the training corpus")
		return corpus.TrainingFiles()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Trains != 0 || st.DiskHits != 2 || st.DiskErrors != 0 {
		t.Fatalf("warm Stats = %+v, want 0 trains, 2 disk hits, 0 disk errors", st)
	}

	b1, _ := em.MarshalBinary()
	b2, _ := em2.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Error("embed model round-tripped through disk is not bit-identical")
	}
	n1, _ := nm.MarshalBinary()
	n2, _ := nm2.MarshalBinary()
	if !bytes.Equal(n1, n2) {
		t.Error("namerec model round-tripped through disk is not bit-identical")
	}
}

func TestCorruptDiskEntryRetrains(t *testing.T) {
	ctx := context.Background()
	corruptions := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"flipped-byte": func(b []byte) []byte { b[len(b)-8] ^= 0xff; return b },
		"bad-magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"empty":        func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cold, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			em, err := cold.EmbedModel(ctx, testContexts, testEmbedCfg())
			if err != nil {
				t.Fatal(err)
			}
			path := cold.path(EmbedKey(testContexts, testEmbedCfg()))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			warm, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			em2, err := warm.EmbedModel(ctx, testContexts, testEmbedCfg())
			if err != nil {
				t.Fatalf("a corrupt disk entry must retrain, not fail: %v", err)
			}
			st := warm.Stats()
			if st.Trains != 1 {
				t.Errorf("Trains = %d, want 1 (corrupt entry treated as a miss)", st.Trains)
			}
			if name != "empty" && st.DiskErrors == 0 {
				t.Error("DiskErrors = 0, want the corruption counted")
			}
			b1, _ := em.MarshalBinary()
			b2, _ := em2.MarshalBinary()
			if !bytes.Equal(b1, b2) {
				t.Error("retrained model differs from the original")
			}
		})
	}
}

func TestOpenRejectsUnusableDirs(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, dir := range map[string]string{
		"missing": filepath.Join(t.TempDir(), "nope", "deeper"),
		"file":    file,
	} {
		t.Run(name, func(t *testing.T) {
			_, err := Open(dir)
			if !errors.Is(err, ErrCacheDir) {
				t.Fatalf("Open(%s) err = %v, want ErrCacheDir", dir, err)
			}
			if !containsPath(err, dir) {
				t.Errorf("error %q does not name the path %q", err, dir)
			}
		})
	}
}

func containsPath(err error, path string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(path))
}

func TestFromFlags(t *testing.T) {
	if s, err := FromFlags("", true); s != nil || err != nil {
		t.Errorf("FromFlags(disable) = %v, %v; want nil store, nil error", s, err)
	}
	s, err := FromFlags("", false)
	if s == nil || err != nil || s.Dir() != "" {
		t.Errorf("FromFlags(default) = %v, %v; want in-memory store", s, err)
	}
	dir := t.TempDir()
	s, err = FromFlags(dir, false)
	if err != nil || s.Dir() != dir {
		t.Errorf("FromFlags(%s) = %v, %v; want disk store", dir, s, err)
	}
	if _, err := FromFlags(filepath.Join(dir, "missing"), false); !errors.Is(err, ErrCacheDir) {
		t.Errorf("FromFlags(bad dir) err = %v, want ErrCacheDir", err)
	}
}

func TestFailedTrainingStoresNothing(t *testing.T) {
	// An injected training fault must propagate unchanged and leave the
	// store empty — never a poisoned entry in memory or on disk.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.ParsePlan("seed=1; embed.train:error")
	if err != nil {
		t.Fatal(err)
	}
	armed := fault.With(context.Background(), fault.NewInjector(plan, 0))

	if _, err := s.EmbedModel(armed, testContexts, testEmbedCfg()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("EmbedModel under fault = %v, want ErrInjected chain", err)
	}
	if !errors.Is(func() error { _, err := s.EmbedModel(armed, testContexts, testEmbedCfg()); return err }(), fault.ErrInjected) {
		t.Fatal("second faulted call should fail again, not hit a poisoned entry")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed training left %d file(s) on disk", len(entries))
	}

	// With the fault gone, the same store trains successfully.
	m, err := s.EmbedModel(context.Background(), testContexts, testEmbedCfg())
	if err != nil || m == nil {
		t.Fatalf("clean retry = %v, %v; want a model", m, err)
	}
	if st := s.Stats(); st.Hits != 0 {
		t.Errorf("Hits = %d, want 0 — no faulted result may have been cached", st.Hits)
	}
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Errorf("zero Stats HitRate = %v, want 0", r)
	}
	if r := (Stats{Lookups: 4, Hits: 1, DiskHits: 1, Misses: 2}).HitRate(); r != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", r)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if From(context.Background()) != nil {
		t.Error("From(empty ctx) should be nil")
	}
	s := New()
	if got := From(With(context.Background(), s)); got != s {
		t.Error("With/From should round-trip the store")
	}
	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Error("With(nil) should return the context unchanged")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := EmbedKey(testContexts, testEmbedCfg())
	if EmbedKey(testContexts, testEmbedCfg()) != base {
		t.Error("EmbedKey is not deterministic")
	}
	if EmbedKey(testContexts, &embed.Config{Dim: 9, Iterations: 5}) == base {
		t.Error("config change must change the key")
	}
	altered := [][]string{{"buffer_length", "buf", "cap", "len"}, {"copy_bytes", "dest", "src", "n", "X"}, testContexts[2]}
	if EmbedKey(altered, testEmbedCfg()) == base {
		t.Error("corpus change must change the key")
	}
	// Length framing: moving a token across a context boundary must not
	// collide even though the concatenated content is identical.
	joined := [][]string{{"a", "b"}, {"c"}}
	split := [][]string{{"a"}, {"b", "c"}}
	if EmbedKey(joined, testEmbedCfg()) == EmbedKey(split, testEmbedCfg()) {
		t.Error("context framing must be part of the key")
	}

	nbase := NamerecKey(corpus.TrainingSources())
	if NamerecKey(corpus.TrainingSources()) != nbase {
		t.Error("NamerecKey is not deterministic")
	}
	altSources := corpus.TrainingSources()
	altSources[0] += " "
	if NamerecKey(altSources) == nbase {
		t.Error("source change must change the namerec key")
	}
}

// Package modelstore is a content-addressed cache for trained models. A
// model is identified by the sha256 of everything its training depends on
// — the corpus content, the resolved training configuration, the format
// version, and the training seed — so a lookup either returns a model
// bit-identical to what training would produce or trains one. Nothing is
// ever invalidated by time or by hand: editing the corpus or the training
// parameters changes the key, and the stale entry is simply never asked
// for again.
//
// The store has two tiers. The in-process tier is a sharded map (the same
// FNV-over-shards idiom as embed's similarity cache) holding live model
// pointers; models are immutable after training, so a pointer can be
// shared by every study run in the process. The optional on-disk tier
// (-model-cache DIR) persists models across processes in a checksummed
// binary format written atomically (temp file + rename); a corrupted or
// truncated file is treated as a miss and retrained, never trusted.
//
// Concurrent requests for the same key are single-flighted: one caller
// trains, the rest wait for the result. A failed training stores nothing —
// an injected fault or a genuine error can never leave a poisoned model
// behind — and waiters whose winner was cancelled retry the build
// themselves rather than inheriting someone else's cancellation.
//
// Telemetry: every lookup bumps the labeled counter
// modelstore.lookups{result=hit|miss|disk_hit}, and Stats() exposes the
// same tallies programmatically for benchmarks.
package modelstore

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"decompstudy/internal/csrc"
	"decompstudy/internal/embed"
	"decompstudy/internal/namerec"
	"decompstudy/internal/obs"
)

// ErrCacheDir is returned by Open when the cache directory is unusable.
var ErrCacheDir = errors.New("modelstore: unusable cache directory")

// Key identifies one trained model: a sha256 over the training inputs.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// trainSeed is the training-RNG seed component of every key. Both trainers
// are deterministic with fixed internal seeds today, so this is a
// constant; if a trainer ever grows a seed parameter, it joins the key
// here and old cache entries invalidate themselves.
const trainSeed = 0

const numShards = 16

type shard struct {
	mu sync.RWMutex
	m  map[Key]any
}

// Store is the two-tier content-addressed model cache. The zero value is
// not usable; construct with New or Open.
type Store struct {
	dir string // "" = in-memory only

	shards [numShards]shard

	fmu    sync.Mutex
	flight map[Key]*call

	lookups, hits, misses, diskHits, diskErrors, trains atomic.Int64
}

// call is one in-flight training, shared by every waiter for its key.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Stats is a snapshot of the store's lookup tallies. Lookups = Hits +
// Misses + DiskHits; Trains counts actual training runs (≤ Misses, since
// single-flighted waiters count as hits).
type Stats struct {
	Lookups, Hits, Misses, DiskHits, DiskErrors, Trains int64
}

// HitRate is the fraction of lookups served without training.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits) / float64(s.Lookups)
}

// New returns an in-memory-only store.
func New() *Store {
	s := &Store{flight: map[Key]*call{}}
	for i := range s.shards {
		s.shards[i].m = map[Key]any{}
	}
	return s
}

// Open returns a store backed by an on-disk cache directory. The directory
// must already exist and be writable; anything else — missing, a plain
// file, read-only — is ErrCacheDir naming the path, so a CLI typo fails
// fast instead of silently training from scratch every run.
func Open(dir string) (*Store, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCacheDir, dir, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("%w: %s: not a directory", ErrCacheDir, dir)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("%w: %s: not writable: %v", ErrCacheDir, dir, err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	s := New()
	s.dir = dir
	return s, nil
}

// Dir returns the on-disk cache directory, or "" for an in-memory store.
func (s *Store) Dir() string { return s.dir }

// FromFlags resolves the CLI cache flags shared by every command: nil when
// -no-model-cache disabled caching, a disk-backed store for -model-cache
// DIR (failing with ErrCacheDir on an unusable directory), an in-memory
// store otherwise.
func FromFlags(dir string, disable bool) (*Store, error) {
	if disable {
		return nil, nil
	}
	if dir != "" {
		return Open(dir)
	}
	return New(), nil
}

// Stats returns a snapshot of the lookup tallies.
func (s *Store) Stats() Stats {
	return Stats{
		Lookups:    s.lookups.Load(),
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		DiskHits:   s.diskHits.Load(),
		DiskErrors: s.diskErrors.Load(),
		Trains:     s.trains.Load(),
	}
}

type ctxKey struct{}

// With attaches the store to the context; stages below pick it up via
// From. A nil store returns the context unchanged.
func With(ctx context.Context, s *Store) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// From returns the context's store, or nil when none was attached.
func From(ctx context.Context) *Store {
	s, _ := ctx.Value(ctxKey{}).(*Store)
	return s
}

// EmbedModel returns the embedding model for (contexts, cfg), training it
// on a miss. The key covers every identifier of every context, the
// resolved configuration, and the training seed. Errors from a miss-path
// training are exactly embed.TrainCtx's — including injected faults — and
// a failed training is never stored.
func (s *Store) EmbedModel(ctx context.Context, contexts [][]string, cfg *embed.Config) (*embed.Model, error) {
	v, err := s.get(ctx, EmbedKey(contexts, cfg), embedCodec{},
		func(ctx context.Context) (any, error) { return embed.TrainCtx(ctx, contexts, cfg) })
	if err != nil {
		return nil, err
	}
	return v.(*embed.Model), nil
}

// NamerecModel returns the recovery model trained from the given sources,
// training on a miss. files supplies the parsed sources only when training
// actually runs, so a cache hit never pays the parse. The sources must be
// the exact text the files were parsed from — they are the key material.
func (s *Store) NamerecModel(ctx context.Context, sources []string, files func() ([]*csrc.File, error)) (*namerec.Model, error) {
	v, err := s.get(ctx, NamerecKey(sources), namerecCodec{},
		func(ctx context.Context) (any, error) {
			fs, err := files()
			if err != nil {
				return nil, err
			}
			return namerec.TrainModelCtx(ctx, fs)
		})
	if err != nil {
		return nil, err
	}
	return v.(*namerec.Model), nil
}

// EmbedKey computes the content address of an embedding model: format
// version, resolved configuration, training seed, and every context's
// identifiers with unambiguous length framing.
func EmbedKey(contexts [][]string, cfg *embed.Config) Key {
	c := cfg.Resolved()
	h := sha256.New()
	fmt.Fprintf(h, "decompstudy/modelstore embed v%d\n", marshalGeneration)
	writeInts(h, int64(c.Dim), int64(c.Window), int64(c.Iterations), trainSeed)
	writeInts(h, int64(len(contexts)))
	for _, ctx := range contexts {
		writeInts(h, int64(len(ctx)))
		for _, ident := range ctx {
			writeStr(h, ident)
		}
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// NamerecKey computes the content address of a recovery model: format
// version, training seed, and the raw corpus sources in order.
func NamerecKey(sources []string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "decompstudy/modelstore namerec v%d\n", marshalGeneration)
	writeInts(h, trainSeed, int64(len(sources)))
	for _, src := range sources {
		writeStr(h, src)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// marshalGeneration versions the keys alongside the disk format: bumping
// it (when a model's serialization changes) orphans old disk entries
// instead of misreading them.
const marshalGeneration = 1

func writeInts(h interface{ Write([]byte) (int, error) }, vs ...int64) {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vs {
		h.Write(buf[:binary.PutVarint(buf[:], v)])
	}
}

func writeStr(h interface{ Write([]byte) (int, error) }, s string) {
	writeInts(h, int64(len(s)))
	h.Write([]byte(s))
}

// get is the two-tier single-flighted lookup. codec may be nil for values
// that live only in memory.
func (s *Store) get(ctx context.Context, key Key, c codec, build func(context.Context) (any, error)) (any, error) {
	s.lookups.Add(1)
	if v, ok := s.load(key); ok {
		s.hits.Add(1)
		obs.AddCountL(ctx, "modelstore.lookups", 1, obs.L("result", "hit"))
		return v, nil
	}
	for {
		s.fmu.Lock()
		// Re-check under the flight lock: the previous winner may have
		// published between our shard read and here.
		if v, ok := s.load(key); ok {
			s.fmu.Unlock()
			s.hits.Add(1)
			obs.AddCountL(ctx, "modelstore.lookups", 1, obs.L("result", "hit"))
			return v, nil
		}
		if cl, ok := s.flight[key]; ok {
			s.fmu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if cl.err == nil {
				s.hits.Add(1)
				obs.AddCountL(ctx, "modelstore.lookups", 1, obs.L("result", "hit"))
				return cl.val, nil
			}
			// The winner failed. Its cancellation is not ours: if our own
			// context is still live, take over the build; a genuine training
			// failure propagates to every waiter as-is.
			if isCancellation(cl.err) && ctx.Err() == nil {
				continue
			}
			return nil, cl.err
		}
		cl := &call{done: make(chan struct{})}
		s.flight[key] = cl
		s.fmu.Unlock()

		cl.val, cl.err = s.buildMiss(ctx, key, c, build)
		s.fmu.Lock()
		delete(s.flight, key)
		s.fmu.Unlock()
		close(cl.done)
		return cl.val, cl.err
	}
}

// buildMiss resolves a miss for the winning caller: disk first, then a
// real training run. Only a successful result is published.
func (s *Store) buildMiss(ctx context.Context, key Key, c codec, build func(context.Context) (any, error)) (any, error) {
	if s.dir != "" && c != nil {
		if v, ok := s.loadDisk(ctx, key, c); ok {
			s.diskHits.Add(1)
			obs.AddCountL(ctx, "modelstore.lookups", 1, obs.L("result", "disk_hit"))
			s.publish(key, v)
			return v, nil
		}
	}
	s.misses.Add(1)
	obs.AddCountL(ctx, "modelstore.lookups", 1, obs.L("result", "miss"))
	s.trains.Add(1)
	v, err := build(ctx)
	if err != nil {
		return nil, err
	}
	s.publish(key, v)
	if s.dir != "" && c != nil {
		s.writeDisk(ctx, key, c, v)
	}
	return v, nil
}

func (s *Store) shardFor(key Key) *shard {
	// The key is already a cryptographic hash; its first byte is as good a
	// shard selector as rehashing would be.
	return &s.shards[int(key[0])%numShards]
}

func (s *Store) load(key Key) (any, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (s *Store) publish(key Key, v any) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// --- disk tier ---

// Disk entry layout: magic, format generation, the full key, a uvarint
// payload length, the payload, and a sha256 of the payload. The key in the
// file guards against renamed files; the checksum against torn writes.
const diskMagic = "DSMSTORE"

func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.String()+".model")
}

func (s *Store) loadDisk(ctx context.Context, key Key, c codec) (any, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false // not on disk: a plain miss, not an error
	}
	payload, err := decodeDiskEntry(data, key)
	if err != nil {
		s.diskError(ctx, err)
		return nil, false
	}
	v, err := c.unmarshal(ctx, payload)
	if err != nil {
		s.diskError(ctx, err)
		return nil, false
	}
	return v, true
}

func decodeDiskEntry(data []byte, key Key) ([]byte, error) {
	if len(data) < len(diskMagic)+1+len(key) || string(data[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("modelstore: %s: bad magic", key)
	}
	off := len(diskMagic)
	gen, n := binary.Uvarint(data[off:])
	if n <= 0 || gen != marshalGeneration {
		return nil, fmt.Errorf("modelstore: %s: format generation mismatch", key)
	}
	off += n
	if off+len(key) > len(data) || Key(data[off:off+len(key)]) != key {
		return nil, fmt.Errorf("modelstore: %s: key mismatch", key)
	}
	off += len(key)
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("modelstore: %s: truncated length", key)
	}
	off += n
	if off+int(plen)+sha256.Size != len(data) {
		return nil, fmt.Errorf("modelstore: %s: truncated payload", key)
	}
	payload := data[off : off+int(plen)]
	sum := sha256.Sum256(payload)
	if [sha256.Size]byte(data[off+int(plen):]) != sum {
		return nil, fmt.Errorf("modelstore: %s: checksum mismatch", key)
	}
	return payload, nil
}

// writeDisk persists a model atomically. A write failure (disk full, a
// permission change after Open) degrades the store to in-memory for that
// entry: the error is counted and logged, never propagated — the caller
// already holds a perfectly good model.
func (s *Store) writeDisk(ctx context.Context, key Key, c codec, v any) {
	payload, err := c.marshal(v)
	if err != nil {
		s.diskError(ctx, err)
		return
	}
	var buf []byte
	buf = append(buf, diskMagic...)
	buf = binary.AppendUvarint(buf, marshalGeneration)
	buf = append(buf, key[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		s.diskError(ctx, err)
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		s.diskError(ctx, err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		s.diskError(ctx, err)
		return
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
		s.diskError(ctx, err)
		return
	}
}

func (s *Store) diskError(ctx context.Context, err error) {
	s.diskErrors.Add(1)
	obs.AddCount(ctx, "modelstore.disk_errors", 1)
	obs.Logger(ctx).Error("modelstore disk tier error", "err", err)
}

// --- codecs ---

// codec (de)serializes one model kind for the disk tier.
type codec interface {
	marshal(v any) ([]byte, error)
	unmarshal(ctx context.Context, data []byte) (any, error)
}

type embedCodec struct{}

func (embedCodec) marshal(v any) ([]byte, error) { return v.(*embed.Model).MarshalBinary() }
func (embedCodec) unmarshal(ctx context.Context, data []byte) (any, error) {
	m, err := embed.UnmarshalModel(data)
	if err != nil {
		return nil, err
	}
	// Bind the live telemetry counters exactly as a fresh train would,
	// before the model escapes the single-flight build.
	m.BindObs(ctx)
	return m, nil
}

type namerecCodec struct{}

func (namerecCodec) marshal(v any) ([]byte, error) { return v.(*namerec.Model).MarshalBinary() }
func (namerecCodec) unmarshal(_ context.Context, data []byte) (any, error) {
	return namerec.UnmarshalModel(data)
}

package modelstore

import (
	"context"
	"sync"
	"testing"

	"decompstudy/internal/embed"
)

// TestConcurrentGetTrainStorm is the serving hot path's guarantee: many
// goroutines hammering the same key must observe exactly one training run
// and all receive the same immutable model pointer. Run under -race this
// also proves the post-train read path is lock-free safe.
func TestConcurrentGetTrainStorm(t *testing.T) {
	s := New()
	ctx := context.Background()
	cfg := testEmbedCfg()

	const (
		goroutines = 64
		rounds     = 4
	)
	models := make([]*embed.Model, goroutines*rounds)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start // maximize contention: everyone arrives at once
			for r := 0; r < rounds; r++ {
				m, err := s.EmbedModel(ctx, testContexts, cfg)
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				models[g*rounds+r] = m
			}
		}(g)
	}
	close(start)
	wg.Wait()

	first := models[0]
	if first == nil {
		t.Fatal("no model returned")
	}
	for i, m := range models {
		if m != first {
			t.Fatalf("call %d returned a different model pointer: single-flight broken", i)
		}
	}
	st := s.Stats()
	if st.Trains != 1 {
		t.Fatalf("Trains = %d, want exactly 1 across %d concurrent gets", st.Trains, goroutines*rounds)
	}
	if st.Lookups != goroutines*rounds {
		t.Errorf("Lookups = %d, want %d", st.Lookups, goroutines*rounds)
	}
	if st.Hits != st.Lookups-1 {
		t.Errorf("Hits = %d, want %d (every lookup after the first is served warm)", st.Hits, st.Lookups-1)
	}
}

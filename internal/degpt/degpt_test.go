package degpt

import (
	"math/rand"
	"strings"
	"testing"

	"decompstudy/internal/compile"
	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/namerec"
)

func liftOne(t *testing.T, src string) *decomp.Decompiled {
	t.Helper()
	f, err := csrc.Parse(src, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	obj, err := compile.Compile(f)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	d, err := decomp.LiftFunc(obj.Funcs[0])
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	return d
}

func TestOptimizeProducesAllAugmentations(t *testing.T) {
	training, err := corpus.TrainingFiles()
	if err != nil {
		t.Fatalf("TrainingFiles: %v", err)
	}
	model, err := namerec.TrainModel(training)
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}
	d := liftOne(t, `
long find_first(long *table, int count, long needle) {
  if (count == 0) {
    return -1;
  }
  for (int i = 0; i < count; i++) {
    if (table[i] == needle) {
      return i;
    }
  }
  return -1;
}
`)
	opt := &Optimizer{Model: model}
	res, err := opt.Optimize(d)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	src := res.Source()
	if !strings.Contains(src, "// ") {
		t.Errorf("no comments generated:\n%s", src)
	}
	if !strings.Contains(src, "guard:") {
		t.Errorf("missing guard comment for the early return:\n%s", src)
	}
	if !strings.Contains(src, "loop:") {
		t.Errorf("missing loop comment:\n%s", src)
	}
	if res.Summary == "" || !strings.Contains(res.Summary, "loop(s)") {
		t.Errorf("summary = %q", res.Summary)
	}
	if len(res.Renames) == 0 {
		t.Error("no renames recorded")
	}
}

func TestSimplifyFusesNestedIfs(t *testing.T) {
	f, err := csrc.Parse(`
int f(int a, int b) {
  if (a > 0) {
    if (b > 0) {
      return 1;
    }
  }
  return 0;
}
`, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	simplified := SimplifyFunction(f.Functions[0])
	out := csrc.PrintFunction(simplified, nil)
	if !strings.Contains(out, "a > 0 && b > 0") {
		t.Errorf("nested ifs not fused:\n%s", out)
	}
}

func TestSimplifyCollapsesAssignReturn(t *testing.T) {
	f, err := csrc.Parse(`
int f(int a) {
  int v;
  v = a * 2;
  return v;
}
`, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	simplified := SimplifyFunction(f.Functions[0])
	out := csrc.PrintFunction(simplified, nil)
	if !strings.Contains(out, "return a * 2;") {
		t.Errorf("assign+return not collapsed:\n%s", out)
	}
}

// TestSimplifyPreservesSemantics is the "referee": structural rewrites are
// differentially executed against the originals over random programs.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	progs := []string{
		`long f0(long a, long b, long c) {
  long r = 0;
  if (a > 0) {
    if (b > 0) {
      r = a + b;
    }
  }
  r = r + c;
  return r;
}`,
		`long f1(long a, long b, long c) {
  long v;
  if (a > b) {
    if (b > c) {
      v = 1;
      return v;
    }
  }
  v = 2;
  return v;
}`,
		`long f2(long a, long b, long c) {
  long total = 0;
  for (long i = 0; i < 5; i++) {
    if (i > 1) {
      if (a > 0) {
        total = total + i;
      }
    }
  }
  return total;
}`,
	}
	for _, src := range progs {
		file, err := csrc.Parse(src, nil)
		if err != nil {
			t.Fatalf("Parse: %v\n%s", err, src)
		}
		orig := file.Functions[0]
		simplified := SimplifyFunction(orig)

		origSrc := csrc.PrintFunction(orig, nil)
		simpSrc := csrc.PrintFunction(simplified, nil)
		run := func(text string, a, b, c int64) (int64, error) {
			f2, err := csrc.Parse(text, nil)
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, text)
			}
			obj, err := compile.Compile(f2)
			if err != nil {
				t.Fatalf("recompile: %v\n%s", err, text)
			}
			m := compile.NewMachine(obj, 1024)
			return m.Call(obj.Funcs[0].Name, a, b, c)
		}
		for i := 0; i < 30; i++ {
			a := int64(rng.Intn(21) - 10)
			b := int64(rng.Intn(21) - 10)
			c := int64(rng.Intn(21) - 10)
			v1, e1 := run(origSrc, a, b, c)
			v2, e2 := run(simpSrc, a, b, c)
			if v1 != v2 || (e1 == nil) != (e2 == nil) {
				t.Fatalf("simplification changed semantics on (%d,%d,%d): %d vs %d\n--- orig ---\n%s\n--- simplified ---\n%s",
					a, b, c, v1, v2, origSrc, simpSrc)
			}
		}
	}
}

func TestOptimizeConfoundIsolation(t *testing.T) {
	// The paper's §VI point: deGPT's extra augmentations change the code
	// structure itself. With comments and simplification disabled, output
	// must match plain renaming.
	d := liftOne(t, `
int g(int a) {
  int v;
  v = a + 1;
  return v;
}
`)
	bare := &Optimizer{DisableComments: true, DisableSimplify: true}
	res, err := bare.Optimize(d)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if strings.Contains(csrc.PrintFunction(res.Pseudo, nil), "//") {
		t.Error("comments generated despite DisableComments")
	}
	full := &Optimizer{}
	res2, err := full.Optimize(d)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if csrc.PrintFunction(res.Pseudo, nil) == csrc.PrintFunction(res2.Pseudo, nil) {
		t.Error("full enrichment should differ from bare renaming (the confound)")
	}
}

func TestOptimizeNil(t *testing.T) {
	o := &Optimizer{}
	if _, err := o.Optimize(nil); err == nil {
		t.Error("nil input: want error")
	}
}

func TestOptimizeStudySnippets(t *testing.T) {
	// Every study snippet must survive the full enrichment pipeline.
	for _, s := range corpus.Snippets() {
		p, err := corpus.Prepare(s)
		if err != nil {
			t.Fatalf("Prepare %s: %v", s.ID, err)
		}
		o := &Optimizer{}
		res, err := o.Optimize(p.HexRays)
		if err != nil {
			t.Errorf("%s: %v", s.ID, err)
			continue
		}
		if res.Source() == "" {
			t.Errorf("%s: empty output", s.ID)
		}
	}
}

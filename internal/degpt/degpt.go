// Package degpt is this project's analog of deGPT (Hu et al., NDSS 2024),
// the LLM-based decompiler-output optimizer the paper discusses as related
// work and deliberately excluded from its experiment: besides renaming
// variables, deGPT simplifies structure and generates comments — exactly
// the confounds the paper's §VI says would prevent attributing
// comprehension effects to names and types alone.
//
// The analog implements the same three augmentations with deterministic
// machinery:
//
//   - renaming: reuses the namerec recovery model (the "operator" role),
//   - structure simplification: semantics-preserving AST rewrites —
//     nested-if fusion into &&, collapse of v = E; return v tails — checked
//     by the project's differential interpreter in tests (the "referee"),
//   - comment generation: heuristic per-construct purpose comments and a
//     function summary derived from IR features (the "advisor").
//
// Having both tools in one harness lets the experiments show the confound
// concretely: deGPT's output moves codeBLEU and structural metrics even
// when its names are identical to DIRTY's.
package degpt

import (
	"fmt"
	"strings"

	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/namerec"
)

// Result is an enriched decompilation.
type Result struct {
	// Pseudo is the simplified, renamed, commented function.
	Pseudo *csrc.Function
	// Renames echoes the name recovery provenance.
	Renames []namerec.Rename
	// Summary is the generated function-level comment.
	Summary string
}

// Source renders the enriched pseudo-C.
func (r *Result) Source() string {
	var b strings.Builder
	if r.Summary != "" {
		fmt.Fprintf(&b, "// %s\n", r.Summary)
	}
	b.WriteString(csrc.PrintFunction(r.Pseudo, &csrc.PrintOptions{DeclComments: true}))
	return b.String()
}

// Optimizer enriches decompiled functions.
type Optimizer struct {
	// Model drives renaming; nil keeps the decompiler names.
	Model *namerec.Model
	// DisableComments / DisableSimplify switch off individual augmentations
	// (used by the confound experiment to isolate effects).
	DisableComments bool
	DisableSimplify bool
}

// Optimize runs the full deGPT-style enrichment pipeline.
func (o *Optimizer) Optimize(d *decomp.Decompiled) (*Result, error) {
	if d == nil || d.Pseudo == nil {
		return nil, fmt.Errorf("degpt: nil decompiled input")
	}
	an := &namerec.Annotator{Model: o.Model}
	annotated, err := an.Annotate(d)
	if err != nil {
		return nil, fmt.Errorf("degpt: renaming: %w", err)
	}
	fn := annotated.Pseudo
	if !o.DisableSimplify {
		fn = SimplifyFunction(fn)
	}
	if !o.DisableComments {
		fn = CommentFunction(fn)
	}
	return &Result{
		Pseudo:  fn,
		Renames: annotated.Renames,
		Summary: summarize(fn),
	}, nil
}

// SimplifyFunction applies the semantics-preserving structural rewrites to
// a copy of fn.
func SimplifyFunction(fn *csrc.Function) *csrc.Function {
	out := *fn
	out.Body = simplifyBlock(fn.Body)
	return &out
}

func simplifyBlock(b *csrc.Block) *csrc.Block {
	if b == nil {
		return nil
	}
	out := &csrc.Block{}
	for i := 0; i < len(b.Stmts); i++ {
		st := simplifyStmt(b.Stmts[i])
		// Collapse `v = E; return v;` into `return E;` when v is a plain
		// variable (its value cannot be observed after the return).
		if i+1 < len(b.Stmts) {
			if es, ok := st.(*csrc.ExprStmt); ok {
				if asg, ok := es.X.(*csrc.Assign); ok && asg.Op == "=" {
					if id, ok := asg.L.(*csrc.Ident); ok {
						if ret, ok := b.Stmts[i+1].(*csrc.Return); ok {
							if rid, ok := ret.X.(*csrc.Ident); ok && rid.Name == id.Name {
								out.Stmts = append(out.Stmts, &csrc.Return{X: asg.R})
								i++
								continue
							}
						}
					}
				}
			}
		}
		out.Stmts = append(out.Stmts, st)
	}
	return out
}

func simplifyStmt(s csrc.Stmt) csrc.Stmt {
	switch st := s.(type) {
	case *csrc.Block:
		return simplifyBlock(st)
	case *csrc.If:
		inner := &csrc.If{
			Cond: st.Cond,
			Then: simplifyStmt(st.Then),
			Else: simplifyStmt(st.Else),
		}
		// Fuse `if (c) { if (d) { S } }` (no elses) into `if (c && d) S`.
		if inner.Else == nil {
			if thenBlock, ok := inner.Then.(*csrc.Block); ok && len(thenBlock.Stmts) == 1 {
				if nested, ok := thenBlock.Stmts[0].(*csrc.If); ok && nested.Else == nil {
					return &csrc.If{
						Cond: &csrc.Binary{Op: "&&", L: inner.Cond, R: nested.Cond},
						Then: nested.Then,
					}
				}
			}
		}
		return inner
	case *csrc.While:
		return &csrc.While{Cond: st.Cond, Body: simplifyStmt(st.Body)}
	case *csrc.DoWhile:
		return &csrc.DoWhile{Body: simplifyStmt(st.Body), Cond: st.Cond}
	case *csrc.For:
		out := &csrc.For{Cond: st.Cond, Post: st.Post, Body: simplifyStmt(st.Body)}
		if st.Init != nil {
			out.Init = simplifyStmt(st.Init)
		}
		return out
	case nil:
		return nil
	default:
		return s
	}
}

// CommentFunction inserts heuristic purpose comments before the
// interesting constructs of a copy of fn.
func CommentFunction(fn *csrc.Function) *csrc.Function {
	out := *fn
	out.Body = commentBlock(fn.Body)
	return &out
}

func commentBlock(b *csrc.Block) *csrc.Block {
	if b == nil {
		return nil
	}
	out := &csrc.Block{}
	for _, s := range b.Stmts {
		if c := commentFor(s); c != "" {
			out.Stmts = append(out.Stmts, &csrc.LineComment{Text: c})
		}
		out.Stmts = append(out.Stmts, commentStmt(s))
	}
	return out
}

func commentStmt(s csrc.Stmt) csrc.Stmt {
	switch st := s.(type) {
	case *csrc.Block:
		return commentBlock(st)
	case *csrc.If:
		return &csrc.If{Cond: st.Cond, Then: commentStmt(st.Then), Else: commentStmt(st.Else)}
	case *csrc.While:
		return &csrc.While{Cond: st.Cond, Body: commentStmt(st.Body)}
	case *csrc.DoWhile:
		return &csrc.DoWhile{Body: commentStmt(st.Body), Cond: st.Cond}
	case *csrc.For:
		out := &csrc.For{Init: st.Init, Cond: st.Cond, Post: st.Post, Body: commentStmt(st.Body)}
		return out
	case nil:
		return nil
	default:
		return s
	}
}

// commentFor produces the "advisor" annotation for one statement, or "".
func commentFor(s csrc.Stmt) string {
	switch st := s.(type) {
	case *csrc.While, *csrc.For, *csrc.DoWhile:
		return "loop: " + loopDescription(s)
	case *csrc.If:
		if isEarlyReturn(st) {
			if isNullCheck(st.Cond) {
				return "guard: bail out on null/zero input"
			}
			return "guard: early return"
		}
		return ""
	case *csrc.Return:
		return ""
	default:
		return ""
	}
}

func loopDescription(s csrc.Stmt) string {
	var cond csrc.Expr
	switch st := s.(type) {
	case *csrc.While:
		cond = st.Cond
	case *csrc.For:
		cond = st.Cond
	case *csrc.DoWhile:
		cond = st.Cond
	}
	if cond == nil {
		return "runs until an inner exit"
	}
	return "iterates while " + csrc.PrintExpr(cond)
}

func isEarlyReturn(st *csrc.If) bool {
	if st.Else != nil {
		return false
	}
	block, ok := st.Then.(*csrc.Block)
	if !ok {
		_, isRet := st.Then.(*csrc.Return)
		return isRet
	}
	if len(block.Stmts) != 1 {
		return false
	}
	_, isRet := block.Stmts[0].(*csrc.Return)
	return isRet
}

func isNullCheck(cond csrc.Expr) bool {
	b, ok := cond.(*csrc.Binary)
	if !ok {
		return false
	}
	isZero := func(e csrc.Expr) bool {
		l, ok := e.(*csrc.IntLit)
		return ok && (l.Text == "0" || l.Text == "0LL")
	}
	return (b.Op == "==" || b.Op == "<") && (isZero(b.L) || isZero(b.R))
}

// summarize produces the function-level comment from structural counts.
func summarize(fn *csrc.Function) string {
	var loops, branches, calls, returns int
	var walkStmt func(s csrc.Stmt)
	var walkExpr func(e csrc.Expr)
	walkExpr = func(e csrc.Expr) {
		switch x := e.(type) {
		case *csrc.Call:
			calls++
			for _, a := range x.Args {
				walkExpr(a)
			}
			walkExpr(x.Fun)
		case *csrc.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *csrc.Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *csrc.Unary:
			walkExpr(x.X)
		case *csrc.Ternary:
			walkExpr(x.Cond)
			walkExpr(x.Then)
			walkExpr(x.Else)
		case *csrc.Index:
			walkExpr(x.X)
			walkExpr(x.I)
		case *csrc.Member:
			walkExpr(x.X)
		case *csrc.Cast:
			walkExpr(x.X)
		}
	}
	walkStmt = func(s csrc.Stmt) {
		switch st := s.(type) {
		case *csrc.Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *csrc.If:
			branches++
			walkExpr(st.Cond)
			walkStmt(st.Then)
			walkStmt(st.Else)
		case *csrc.While:
			loops++
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *csrc.DoWhile:
			loops++
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *csrc.For:
			loops++
			walkStmt(st.Body)
		case *csrc.Return:
			returns++
			walkExpr(st.X)
		case *csrc.ExprStmt:
			walkExpr(st.X)
		case *csrc.DeclStmt:
			walkExpr(st.Init)
		}
	}
	walkStmt(fn.Body)
	return fmt.Sprintf("%s: %d loop(s), %d branch(es), %d call(s), %d return path(s)",
		fn.Name, loops, branches, calls, returns)
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"decompstudy/internal/corpus"
	"decompstudy/internal/embed"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/namerec"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// Defaults for Options zero values.
const (
	DefaultBatchSize        = 64
	DefaultBatchDelay       = 2 * time.Millisecond
	DefaultQueue            = 256
	DefaultStudyConcurrency = 2
	DefaultStudyQueue       = 2
	DefaultEmbedDim         = 24 // the study default, so /study shares the store key
)

// Options configures a Server. Zero values mean the defaults above;
// Jobs zero means GOMAXPROCS.
type Options struct {
	// Jobs is the worker budget: batch flushes fan out over this many
	// workers, and in NoBatch mode this many requests compute at once —
	// the two modes always spend equal worker counts, so benchmark
	// comparisons isolate batching itself.
	Jobs int
	// BatchSize and BatchDelay bound a flush: it fires at BatchSize items
	// or BatchDelay after the first queued item, whichever comes first.
	BatchSize  int
	BatchDelay time.Duration
	// Queue bounds each endpoint's admission backlog; beyond it requests
	// are rejected with 503 + Retry-After.
	Queue int
	// StudyConcurrency and StudyQueue bound the heavyweight /v1/study
	// endpoint separately (a study run is ~10^4x an annotate request).
	StudyConcurrency int
	StudyQueue       int
	// NoBatch serves annotate/metrics per request under a plain
	// concurrency limiter instead of the batcher — the benchmark baseline
	// loadgen compares against.
	NoBatch bool
	// AllowFaultHeader honors X-Fault-Plan chaos headers. Off by default:
	// arbitrary callers must not be able to inject faults.
	AllowFaultHeader bool
	// EmbedDim overrides the metric embedding dimensionality (0 = 24).
	EmbedDim int
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = DefaultBatchDelay
	}
	if o.Queue <= 0 {
		o.Queue = DefaultQueue
	}
	if o.StudyConcurrency <= 0 {
		o.StudyConcurrency = DefaultStudyConcurrency
	}
	if o.StudyQueue <= 0 {
		o.StudyQueue = DefaultStudyQueue
	}
	if o.EmbedDim <= 0 {
		o.EmbedDim = DefaultEmbedDim
	}
	return o
}

// Server is the decompilation service: warm shared models, a coalescing
// batcher for annotate/metric requests, per-endpoint admission control,
// and the /debug telemetry surface, behind one http.Handler.
type Server struct {
	opts Options
	// base is the server-lifetime context all processing derives from:
	// telemetry handle, worker count, and model store attached; cancelled
	// only by Close. Request contexts never feed it, so one disconnect
	// cannot poison shared work.
	base   context.Context
	cancel context.CancelFunc
	o      *obs.Obs

	// embedModel and recModel are the warm models: trained once at
	// startup (or loaded from the content-addressed store), immutable
	// after, read lock-free by every request.
	embedModel *embed.Model
	recModel   *namerec.Model

	batch    *Batcher[workItem, any]
	pipeline *Limiter // decompile + lint
	work     *Limiter // annotate/metrics in NoBatch mode
	study    *Limiter

	mux      *http.ServeMux
	draining atomic.Bool
}

// NewServer warms the models and assembles the service. o carries the
// telemetry facilities (nil facilities degrade gracefully); store may be
// nil to train in-process without a cache. Warming is part of startup by
// design: the first request must never pay the training tax.
func NewServer(parent context.Context, o *obs.Obs, store *modelstore.Store, opts Options) (*Server, error) {
	if o == nil {
		o = &obs.Obs{}
	}
	opts = opts.withDefaults()
	base, cancel := context.WithCancel(par.WithJobs(obs.With(parent, o), opts.Jobs))
	if store != nil {
		base = modelstore.With(base, store)
	}
	s := &Server{
		opts:     opts,
		base:     base,
		cancel:   cancel,
		o:        o,
		pipeline: NewLimiter("pipeline", opts.Jobs, opts.Queue),
		work:     NewLimiter("work", opts.Jobs, opts.Queue),
		study:    NewLimiter("study", opts.StudyConcurrency, opts.StudyQueue),
	}
	if err := s.warmModels(base, store); err != nil {
		cancel()
		return nil, err
	}
	s.batch = NewBatcher[workItem, any](base, "work", opts.BatchSize, opts.Queue, opts.BatchDelay, s.processBatch)
	s.mux = s.routes()
	return s, nil
}

// warmModels trains (or loads via the store) the embedding and name
// recovery models before the server accepts traffic.
func (s *Server) warmModels(ctx context.Context, store *modelstore.Store) error {
	ctx, sp := obs.StartSpan(ctx, "serve.warm")
	defer sp.End()
	ecfg := &embed.Config{Dim: s.opts.EmbedDim}
	if store != nil {
		ctxs, err := corpus.EmbeddingContexts()
		if err != nil {
			return fmt.Errorf("serve: warm embed corpus: %w", err)
		}
		em, err := store.EmbedModel(ctx, ctxs, ecfg)
		if err != nil {
			return fmt.Errorf("serve: warm embed model: %w", err)
		}
		rm, err := store.NamerecModel(ctx, corpus.TrainingSources(), corpus.TrainingFiles)
		if err != nil {
			return fmt.Errorf("serve: warm namerec model: %w", err)
		}
		s.embedModel, s.recModel = em, rm
		return nil
	}
	ctxs, err := corpus.EmbeddingContexts()
	if err != nil {
		return fmt.Errorf("serve: warm embed corpus: %w", err)
	}
	em, err := embed.TrainCtx(ctx, ctxs, ecfg)
	if err != nil {
		return fmt.Errorf("serve: warm embed model: %w", err)
	}
	files, err := corpus.TrainingFiles()
	if err != nil {
		return fmt.Errorf("serve: warm namerec corpus: %w", err)
	}
	rm, err := namerec.TrainModelCtx(ctx, files)
	if err != nil {
		return fmt.Errorf("serve: warm namerec model: %w", err)
	}
	s.embedModel, s.recModel = em, rm
	return nil
}

// Handler returns the service's HTTP surface: /healthz, the /v1 API, and
// the /debug telemetry endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/v1/decompile", s.wrap("decompile", s.handleDecompile))
	mux.Handle("/v1/annotate", s.wrap("annotate", s.handleAnnotate))
	mux.Handle("/v1/lint", s.wrap("lint", s.handleLint))
	mux.Handle("/v1/metrics", s.wrap("metrics", s.handleMetrics))
	mux.Handle("/v1/study", s.wrap("study", s.handleStudy))
	mux.Handle("/debug/", obs.NewDebugServer(s.o))
	return mux
}

// SetDraining flips /healthz to 503 so load balancers stop routing here.
// Call it before http.Server.Shutdown; in-flight and already-queued
// requests still complete.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Close drains the batcher (queued items are flushed and answered) and
// cancels the server context. Call after http.Server.Shutdown has waited
// out in-flight requests.
func (s *Server) Close() {
	s.draining.Store(true)
	s.batch.Close()
	s.cancel()
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"decompstudy/internal/analysis"
	"decompstudy/internal/compile"
	"decompstudy/internal/compile/opt"
	"decompstudy/internal/core"
	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/decomp"
	"decompstudy/internal/experiments"
	"decompstudy/internal/fault"
	"decompstudy/internal/metrics"
	"decompstudy/internal/namerec"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// maxBody bounds request bodies; the largest legitimate payload is a
// source file, and 1 MiB is orders of magnitude above any study snippet.
const maxBody = 1 << 20

// ---- middleware ----------------------------------------------------------

// statusWriter records the status code written by a handler so the
// middleware can label its metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// wrap is the per-endpoint middleware: POST-only, bounded body, a span
// per request, latency/throughput metrics labeled by endpoint and status,
// and a recover barrier turning handler panics into 500s instead of
// connection resets.
func (s *Server) wrap(name string, fn http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		_, sp := obs.StartSpan(s.base, "serve.request", obs.KV("endpoint", name))
		defer func() {
			if rec := recover(); rec != nil {
				obs.Logger(s.base).Error("handler panic", "endpoint", name, "panic", rec)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			sp.SetAttr("status", strconv.Itoa(sw.code))
			sp.End()
			el := obs.L("endpoint", name)
			obs.ObserveL(s.base, "serve.request.seconds", time.Since(start).Seconds(), el)
			obs.AddCountL(s.base, "serve.requests", 1, el, obs.L("status", strconv.Itoa(sw.code)))
		}()
		fn(sw, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// fail maps processing errors to status codes: saturation and draining are
// 503 (retryable elsewhere), client abandonment gets no body, everything
// else is a 500 carrying the pipeline error.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated) || errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// requestCtx derives the per-request processing context from the server
// base: a fresh fault manifest, plus an injector when a chaos plan rides
// the X-Fault-Plan header. The returned spec is non-empty iff faults are
// armed — fault-armed work must never coalesce with clean work. The
// context deliberately does not inherit the HTTP request's cancellation.
func (s *Server) requestCtx(r *http.Request) (ctx context.Context, faultSpec string, status int, err error) {
	ctx = fault.WithManifest(s.base, fault.NewManifest())
	spec := r.Header.Get("X-Fault-Plan")
	if spec == "" {
		return ctx, "", 0, nil
	}
	if !s.opts.AllowFaultHeader {
		return nil, "", http.StatusForbidden, fmt.Errorf("X-Fault-Plan is disabled (start served with -allow-fault-header)")
	}
	plan, perr := fault.ParsePlan(spec)
	if perr != nil {
		return nil, "", http.StatusBadRequest, fmt.Errorf("invalid X-Fault-Plan: %w", perr)
	}
	obs.AddCount(s.base, "serve.fault.armed", 1)
	return fault.With(ctx, fault.NewInjector(plan, fault.DefaultRetryBudget)), spec, 0, nil
}

func snippetByID(id string) (*corpus.Snippet, error) {
	sn, ok := corpus.SnippetByID(strings.ToUpper(id))
	if !ok {
		return nil, fmt.Errorf("unknown snippet %q (want AEEK, BAPL, POSTORDER, TC)", id)
	}
	return sn, nil
}

func parseOpt(level int) (opt.Level, error) {
	l, err := opt.ParseLevel(level)
	if err != nil {
		return 0, fmt.Errorf("invalid opt level: %w", err)
	}
	return l, nil
}

// ---- health --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ---- batched work: annotate + metrics ------------------------------------

// workItem is one unit of batchable work: annotate or score a prepared
// snippet at an optimization level, under its request's processing
// context (carried by the batcher, not the item).
type workItem struct {
	kind    string // "annotate" | "metrics"
	snippet *corpus.Snippet
	level   opt.Level
}

// coalesceKey is the batch-level identity of an item. Fault-armed
// requests return "" — injector state is per-request, so their work is
// never shared.
func coalesceKey(it workItem, faultSpec string) string {
	if faultSpec != "" {
		return ""
	}
	return it.kind + "|" + it.snippet.ID + "|" + it.level.String()
}

// processBatch computes one flush: the unique items fan out over the
// server's worker budget, each computed single-worker under its own
// request context — total parallelism equals NoBatch mode at the same
// Jobs, so measured wins come from coalescing, not extra workers.
func (s *Server) processBatch(ctx context.Context, items []workItem, ctxs []context.Context) ([]any, []error) {
	return par.MapAll(ctx, s.opts.Jobs, items, func(_ context.Context, i int, it workItem) (any, error) {
		return s.computeItem(ctxs[i], it)
	})
}

// computeItem runs one annotate/metrics unit end to end: prepare the
// snippet at the requested level, then either render the annotated arm or
// evaluate the full metric battery against the warm embedding model.
func (s *Server) computeItem(ctx context.Context, it workItem) (any, error) {
	// Single worker inside an item: the fan-out is across items.
	ctx = par.WithJobs(ctx, 1)
	p, err := corpus.PrepareOptCtx(ctx, it.snippet, it.level)
	if err != nil {
		return nil, err
	}
	switch it.kind {
	case "annotate":
		return annotateResponseFrom(p), nil
	case "metrics":
		return s.metricsResponseFrom(ctx, p)
	}
	return nil, fmt.Errorf("serve: unknown work kind %q", it.kind)
}

// submitWork routes an item through the batcher, or — in NoBatch mode —
// computes it directly under the work limiter. Both paths produce
// identical responses; only scheduling differs.
func (s *Server) submitWork(r *http.Request, procCtx context.Context, key string, it workItem) (any, error) {
	if s.opts.NoBatch {
		if err := s.work.Acquire(r.Context()); err != nil {
			return nil, err
		}
		defer s.work.Release()
		return s.computeItem(procCtx, it)
	}
	return s.batch.Submit(r.Context(), procCtx, key, it)
}

// AnnotateRequest asks for the DIRTY-style annotated arm of a study
// snippet at an optimization level.
type AnnotateRequest struct {
	Snippet string `json:"snippet"`
	Opt     int    `json:"opt"`
}

// RenameJSON is one recovered variable in an annotate response.
type RenameJSON struct {
	OrigName   string  `json:"orig_name"`
	OrigType   string  `json:"orig_type"`
	NewName    string  `json:"new_name"`
	NewType    string  `json:"new_type"`
	Confidence float64 `json:"confidence"`
}

// AnnotateResponse is the annotated pseudo-C plus the rename provenance.
type AnnotateResponse struct {
	Snippet string       `json:"snippet"`
	Opt     string       `json:"opt"`
	Output  string       `json:"output"`
	Renames []RenameJSON `json:"renames"`
}

func annotateResponseFrom(p *corpus.Prepared) *AnnotateResponse {
	resp := &AnnotateResponse{
		Snippet: p.Snippet.ID,
		Opt:     p.OptLevel.String(),
		Output:  p.Dirty.Source(),
		Renames: make([]RenameJSON, 0, len(p.Dirty.Renames)),
	}
	for _, rn := range p.Dirty.Renames {
		resp.Renames = append(resp.Renames, RenameJSON{
			OrigName: rn.OrigName, OrigType: rn.OrigType,
			NewName: rn.NewName, NewType: rn.NewType,
			Confidence: rn.Confidence,
		})
	}
	return resp
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req AnnotateRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sn, err := snippetByID(req.Snippet)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	level, err := parseOpt(req.Opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	procCtx, spec, status, err := s.requestCtx(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	it := workItem{kind: "annotate", snippet: sn, level: level}
	out, err := s.submitWork(r, procCtx, coalesceKey(it, spec), it)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// MetricsRequest asks for the intrinsic metric battery of a snippet's
// recovered names against ground truth.
type MetricsRequest struct {
	Snippet string `json:"snippet"`
	Opt     int    `json:"opt"`
}

// MetricsReport mirrors metrics.Report with wire-stable field names.
type MetricsReport struct {
	ExactMatch    float64 `json:"exact_match"`
	Levenshtein   float64 `json:"levenshtein"`
	NormalizedLev float64 `json:"normalized_levenshtein"`
	Jaccard       float64 `json:"jaccard"`
	BLEU          float64 `json:"bleu"`
	CodeBLEU      float64 `json:"code_bleu"`
	BERTScoreF1   float64 `json:"bertscore_f1"`
	VarCLR        float64 `json:"varclr"`
}

// MetricsResponse is the metric battery plus the structural-complexity
// covariates of the snippet's IR.
type MetricsResponse struct {
	Snippet    string              `json:"snippet"`
	Opt        string              `json:"opt"`
	Pairs      int                 `json:"pairs"`
	Report     MetricsReport       `json:"report"`
	Covariates analysis.Covariates `json:"covariates"`
}

func (s *Server) metricsResponseFrom(ctx context.Context, p *corpus.Prepared) (*MetricsResponse, error) {
	pairs := make([]metrics.Pair, 0, len(p.Dirty.Renames))
	for _, rn := range p.Dirty.Renames {
		pairs = append(pairs, metrics.Pair{Candidate: rn.NewName, Reference: rn.OrigName})
	}
	rep, err := metrics.EvaluateCtx(fault.WithKey(ctx, p.Snippet.ID), pairs, p.Dirty.Source(), p.OrigSource, s.embedModel)
	if err != nil {
		return nil, err
	}
	cov := analysis.MeasureCtx(ctx, p.IR)
	return &MetricsResponse{
		Snippet: p.Snippet.ID,
		Opt:     p.OptLevel.String(),
		Pairs:   len(pairs),
		Report: MetricsReport{
			ExactMatch:    rep.ExactMatch,
			Levenshtein:   rep.Levenshtein,
			NormalizedLev: rep.NormalizedLev,
			Jaccard:       rep.Jaccard,
			BLEU:          rep.BLEU,
			CodeBLEU:      rep.CodeBLEU,
			BERTScoreF1:   rep.BERTScoreF1,
			VarCLR:        rep.VarCLR,
		},
		Covariates: cov,
	}, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var req MetricsRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sn, err := snippetByID(req.Snippet)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	level, err := parseOpt(req.Opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	procCtx, spec, status, err := s.requestCtx(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	it := workItem{kind: "metrics", snippet: sn, level: level}
	out, err := s.submitWork(r, procCtx, coalesceKey(it, spec), it)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- decompile -----------------------------------------------------------

// DecompileRequest decompiles either an embedded study snippet or an
// arbitrary mini-C source. IR dumps the intermediate representation
// instead of pseudo-C; Annotate applies name recovery (the warm
// corpus-trained model for sources, the paper-faithful overrides for
// snippets); Func filters a source's functions by name.
type DecompileRequest struct {
	Snippet  string   `json:"snippet,omitempty"`
	Source   string   `json:"source,omitempty"`
	Types    []string `json:"types,omitempty"`
	Opt      int      `json:"opt"`
	Annotate bool     `json:"annotate"`
	IR       bool     `json:"ir"`
	Func     string   `json:"func,omitempty"`
}

// DecompileResponse carries the rendered output (pseudo-C or IR).
type DecompileResponse struct {
	Output string `json:"output"`
}

func (s *Server) handleDecompile(w http.ResponseWriter, r *http.Request) {
	var req DecompileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Snippet == "") == (req.Source == "") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("exactly one of snippet or source is required"))
		return
	}
	level, err := parseOpt(req.Opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	procCtx, _, status, err := s.requestCtx(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if err := s.pipeline.Acquire(r.Context()); err != nil {
		s.fail(w, err)
		return
	}
	defer s.pipeline.Release()
	ctx := par.WithJobs(procCtx, 1)

	var out string
	if req.Snippet != "" {
		out, err = s.decompileSnippet(ctx, req, level)
	} else {
		out, err = s.decompileSource(ctx, req, level)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &DecompileResponse{Output: out})
}

func (s *Server) decompileSnippet(ctx context.Context, req DecompileRequest, level opt.Level) (string, error) {
	sn, err := snippetByID(req.Snippet)
	if err != nil {
		return "", err
	}
	p, err := corpus.PrepareOptCtx(ctx, sn, level)
	if err != nil {
		return "", err
	}
	switch {
	case req.IR:
		return p.IR.String(), nil
	case req.Annotate:
		return p.Dirty.Source(), nil
	default:
		return p.HexRays.Source(), nil
	}
}

func (s *Server) decompileSource(ctx context.Context, req DecompileRequest, level opt.Level) (string, error) {
	file, err := csrc.ParseCtx(ctx, req.Source, req.Types)
	if err != nil {
		return "", err
	}
	obj, err := compile.CompileCtx(ctx, file)
	if err != nil {
		return "", err
	}
	if obj, _, err = opt.OptimizeObject(ctx, obj, level); err != nil {
		return "", err
	}
	var annotator *namerec.Annotator
	if req.Annotate {
		annotator = &namerec.Annotator{Model: s.recModel}
	}
	var sb strings.Builder
	matched := false
	for _, fn := range obj.Funcs {
		if req.Func != "" && fn.Name != req.Func {
			continue
		}
		matched = true
		if req.IR {
			fmt.Fprintln(&sb, fn.String())
			continue
		}
		d, err := decomp.LiftFuncCtx(ctx, fn)
		if err != nil {
			return "", fmt.Errorf("%s: %w", fn.Name, err)
		}
		if annotator != nil {
			a, err := annotator.AnnotateCtx(ctx, d)
			if err != nil {
				return "", fmt.Errorf("%s: %w", fn.Name, err)
			}
			fmt.Fprintln(&sb, a.Source())
			continue
		}
		fmt.Fprintln(&sb, d.Source())
	}
	if !matched {
		return "", fmt.Errorf("no function matched %q", req.Func)
	}
	return sb.String(), nil
}

// ---- lint ----------------------------------------------------------------

// LintRequest verifies and lints a snippet or source and measures its
// structural-complexity covariates.
type LintRequest struct {
	Snippet string   `json:"snippet,omitempty"`
	Source  string   `json:"source,omitempty"`
	Types   []string `json:"types,omitempty"`
	Opt     int      `json:"opt"`
}

// LintResponse is the combined verifier+lint findings plus per-function
// covariates.
type LintResponse struct {
	Diags      []analysis.Diag                `json:"diags"`
	Covariates map[string]analysis.Covariates `json:"covariates"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req LintRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Snippet == "") == (req.Source == "") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("exactly one of snippet or source is required"))
		return
	}
	level, err := parseOpt(req.Opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	procCtx, _, status, err := s.requestCtx(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if err := s.pipeline.Acquire(r.Context()); err != nil {
		s.fail(w, err)
		return
	}
	defer s.pipeline.Release()
	ctx := par.WithJobs(procCtx, 1)

	source, types := req.Source, req.Types
	if req.Snippet != "" {
		sn, err := snippetByID(req.Snippet)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		source, types = sn.Source, sn.ExtraTypes
	}
	file, err := csrc.ParseCtx(ctx, source, types)
	if err != nil {
		s.fail(w, err)
		return
	}
	obj, err := compile.CompileCtx(ctx, file)
	if err != nil {
		s.fail(w, err)
		return
	}
	if obj, _, err = opt.OptimizeObject(ctx, obj, level); err != nil {
		s.fail(w, err)
		return
	}
	diags := analysis.CheckObject(ctx, obj)
	if diags == nil {
		diags = []analysis.Diag{}
	}
	writeJSON(w, http.StatusOK, &LintResponse{
		Diags:      diags,
		Covariates: analysis.MeasureObject(ctx, obj),
	})
}

// ---- study ---------------------------------------------------------------

// StudyRequest runs the full study simulation. Seed 0 means the shipped
// default (26); Artifact selects a single table/figure (empty = all, in
// paper order — byte-identical to the studysim CLI).
type StudyRequest struct {
	Seed     int64  `json:"seed"`
	Opt      int    `json:"opt"`
	Artifact string `json:"artifact,omitempty"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	var req StudyRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := parseOpt(req.Opt); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := strings.ToLower(req.Artifact)
	var entry experiments.Artifact
	if name != "" {
		var ok bool
		entry, ok = experiments.LookupArtifact(name)
		if !ok {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown artifact %q (valid: %s)", req.Artifact, experiments.ArtifactNames()))
			return
		}
	}
	procCtx, _, status, err := s.requestCtx(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if err := s.study.Acquire(r.Context()); err != nil {
		s.fail(w, err)
		return
	}
	defer s.study.Release()

	// A study run is seconds of CPU — unlike batched items it is not
	// shared, so honor client disconnects by forwarding the request
	// context's cancellation onto the (base-derived) processing context.
	ctx, cancel := context.WithCancel(procCtx)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	runner, err := experiments.NewRunnerCtx(ctx, &core.Config{Seed: req.Seed, Jobs: s.opts.Jobs, OptLevel: req.Opt})
	if err != nil {
		s.fail(w, err)
		return
	}
	var out string
	if name == "" {
		out, err = runner.All()
	} else {
		out, err = entry.Render(runner, req.Seed)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	// Raw text, exactly the bytes studysim prints — the sha256-identity
	// contract between the service and the CLI.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(out))
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingProcess records every flush it receives and returns item+1 for
// each input.
type countingProcess struct {
	mu      sync.Mutex
	flushes [][]int
	block   chan struct{} // non-nil: processing waits here after signaling started
	started chan struct{}
}

func (p *countingProcess) fn(_ context.Context, items []int, _ []context.Context) ([]int, []error) {
	if p.started != nil {
		p.started <- struct{}{}
	}
	if p.block != nil {
		<-p.block
	}
	p.mu.Lock()
	cp := make([]int, len(items))
	copy(cp, items)
	p.flushes = append(p.flushes, cp)
	p.mu.Unlock()
	out := make([]int, len(items))
	errs := make([]error, len(items))
	for i, it := range items {
		out[i] = it + 1
	}
	return out, errs
}

func (p *countingProcess) flushCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.flushes)
}

func TestBatcherCoalescesDuplicateKeys(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{}
	b := NewBatcher(ctx, "t", 64, 64, 50*time.Millisecond, p.fn)
	defer b.Close()

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.Submit(ctx, ctx, "same", 41)
		}(i)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != 42 {
			t.Fatalf("waiter %d = %d, want 42", i, results[i])
		}
	}
	// All 8 coalesced: every flush that ran carried exactly one unique item.
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, f := range p.flushes {
		if len(f) != 1 {
			t.Fatalf("flush carried %d unique items, want 1 (all keys equal)", len(f))
		}
		total += len(f)
	}
	if total >= waiters {
		t.Fatalf("processed %d items for %d identical submissions — no coalescing", total, waiters)
	}
}

func TestBatcherDistinctKeysAllProcessed(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{}
	b := NewBatcher(ctx, "t", 64, 64, 20*time.Millisecond, p.fn)
	defer b.Close()

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := b.Submit(ctx, ctx, fmt.Sprintf("k%d", i), i)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			} else if got != i+1 {
				t.Errorf("submit %d = %d, want %d", i, got, i+1)
			}
		}(i)
	}
	wg.Wait()
	p.mu.Lock()
	total := 0
	for _, f := range p.flushes {
		total += len(f)
	}
	p.mu.Unlock()
	if total != n {
		t.Fatalf("processed %d items, want %d (distinct keys never coalesce)", total, n)
	}
}

func TestBatcherEmptyKeyNeverCoalesces(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{}
	b := NewBatcher(ctx, "t", 64, 64, 20*time.Millisecond, p.fn)
	defer b.Close()

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(ctx, ctx, "", 7); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	p.mu.Lock()
	total := 0
	for _, f := range p.flushes {
		total += len(f)
	}
	p.mu.Unlock()
	if total != n {
		t.Fatalf("processed %d items, want %d (empty keys are unique)", total, n)
	}
}

func TestBatcherFlushBySizeDoesNotWaitForTimer(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{}
	// Huge delay: only the size bound can flush within the test deadline.
	b := NewBatcher(ctx, "t", 2, 64, time.Hour, p.fn)
	defer b.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				b.Submit(ctx, ctx, fmt.Sprintf("k%d", i), i)
			}(i)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("size-bounded flush never fired")
	}
}

func TestBatcherFlushByDelay(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{}
	// Batch bound far above the submission count: only the timer flushes.
	b := NewBatcher(ctx, "t", 1000, 64, 10*time.Millisecond, p.fn)
	defer b.Close()
	got, err := b.Submit(ctx, ctx, "k", 1)
	if err != nil || got != 2 {
		t.Fatalf("Submit = %d, %v; want 2, nil", got, err)
	}
}

func TestBatcherSaturationRejectsFast(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{block: make(chan struct{}), started: make(chan struct{}, 16)}
	b := NewBatcher(ctx, "t", 1, 1, time.Millisecond, p.fn)
	defer b.Close()
	defer close(p.block)

	// First submission: collector dequeues it and blocks in processing.
	go b.Submit(ctx, ctx, "a", 1)
	<-p.started
	// The queue's single slot can't drain while processing blocks. Poll
	// with a short wait timeout: an iteration that wins the empty slot
	// times out waiting (the item stays queued), and the next one must
	// bounce off the now-full queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		wctx, wcancel := context.WithTimeout(ctx, 5*time.Millisecond)
		_, err := b.Submit(wctx, ctx, "c", 3)
		wcancel()
		if errors.Is(err, ErrSaturated) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saturated; last err = %v", err)
		}
	}
}

func TestBatcherCloseDrainsQueued(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{}
	b := NewBatcher(ctx, "t", 4, 16, 5*time.Millisecond, p.fn)

	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(ctx, ctx, fmt.Sprintf("k%d", i), i); err == nil {
				ok.Add(1)
			}
		}(i)
	}
	// Close concurrently: everything already queued must still be answered.
	time.Sleep(time.Millisecond)
	b.Close()
	wg.Wait()
	// Post-close submissions are refused.
	if _, err := b.Submit(ctx, ctx, "x", 9); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Close = %v, want ErrDraining", err)
	}
	if ok.Load() == 0 {
		t.Fatal("no queued submission was answered during drain")
	}
}

func TestBatcherProcessPanicFailsFlushOnly(t *testing.T) {
	ctx := context.Background()
	panicky := func(_ context.Context, items []int, _ []context.Context) ([]int, []error) {
		if items[0] == 666 {
			panic("boom")
		}
		out := make([]int, len(items))
		for i, it := range items {
			out[i] = it + 1
		}
		return out, make([]error, len(items))
	}
	b := NewBatcher(ctx, "t", 1, 16, time.Millisecond, panicky)
	defer b.Close()

	if _, err := b.Submit(ctx, ctx, "bad", 666); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking flush err = %v, want panic error", err)
	}
	// The collector survived; the next flush works.
	if got, err := b.Submit(ctx, ctx, "good", 1); err != nil || got != 2 {
		t.Fatalf("Submit after panic = %d, %v; want 2, nil", got, err)
	}
}

func TestBatcherProcessLengthMismatchIsError(t *testing.T) {
	ctx := context.Background()
	short := func(_ context.Context, items []int, _ []context.Context) ([]int, []error) {
		return nil, nil
	}
	b := NewBatcher(ctx, "t", 1, 16, time.Millisecond, short)
	defer b.Close()
	if _, err := b.Submit(ctx, ctx, "k", 1); err == nil || !strings.Contains(err.Error(), "results") {
		t.Fatalf("err = %v, want length-mismatch error", err)
	}
}

func TestBatcherWaitCtxCancelAbandonsWaitOnly(t *testing.T) {
	ctx := context.Background()
	p := &countingProcess{block: make(chan struct{}), started: make(chan struct{}, 16)}
	b := NewBatcher(ctx, "t", 1, 16, time.Millisecond, p.fn)
	defer b.Close()

	waitCtx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(waitCtx, ctx, "k", 1)
		errc <- err
	}()
	<-p.started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel = %v, want context.Canceled", err)
	}
	// The computation itself still completes once unblocked.
	close(p.block)
	deadline := time.Now().Add(5 * time.Second)
	for p.flushCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned flush never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

package serve

import (
	"context"
	"sync/atomic"

	"decompstudy/internal/obs"
)

// Limiter is per-endpoint admission control: at most `concurrency`
// requests execute at once, at most `queue` more wait for a slot, and
// anything beyond that is rejected immediately with ErrSaturated (the
// HTTP layer answers 503 + Retry-After). Bounding the wait pool keeps
// overload latency flat — a saturated server answers in microseconds
// instead of accumulating an unbounded backlog.
type Limiter struct {
	name    string
	slots   chan struct{}
	waiting atomic.Int64
	queue   int64
}

// NewLimiter builds a limiter admitting `concurrency` concurrent holders
// with a wait queue of `queue`. Both are clamped to at least 1 and 0.
func NewLimiter(name string, concurrency, queue int) *Limiter {
	if concurrency < 1 {
		concurrency = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Limiter{
		name:  name,
		slots: make(chan struct{}, concurrency),
		queue: int64(queue),
	}
}

// Acquire takes a slot, waiting in the bounded queue if none is free.
// Returns ErrSaturated without blocking when the queue is full, or the
// context error if the caller gives up while waiting. The caller must
// Release exactly once per successful Acquire.
func (l *Limiter) Acquire(ctx context.Context) error {
	// Fast path: free slot, no queuing.
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.waiting.Add(1) > l.queue {
		l.waiting.Add(-1)
		obs.AddCountL(ctx, "serve.admission.rejected", 1, obs.L("limiter", l.name))
		return ErrSaturated
	}
	defer l.waiting.Add(-1)
	obs.AddCountL(ctx, "serve.admission.queued", 1, obs.L("limiter", l.name))
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by a successful Acquire.
func (l *Limiter) Release() {
	<-l.slots
}

// InFlight reports the number of currently held slots (for tests and the
// drain path).
func (l *Limiter) InFlight() int {
	return len(l.slots)
}

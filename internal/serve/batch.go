// Package serve is the decompilation-as-a-service layer: an HTTP JSON API
// in front of the study pipeline where trained models are loaded once and
// amortized across thousands of requests. The performance core is a
// request batcher that coalesces concurrent work into bounded batches
// (flushed by size or latency, identical requests computed once per
// flush), fronted by per-endpoint admission control (bounded queue, 503
// with Retry-After on saturation) so overload degrades into fast
// rejections instead of collapse.
//
// The package is transport-complete but process-agnostic: cmd/served wires
// it to a listener and signals, the httptest suite drives it in-process,
// and cmd/loadgen measures it from outside.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"decompstudy/internal/obs"
)

// ErrSaturated is returned when an endpoint's bounded queue is full — the
// HTTP layer maps it to 503 with a Retry-After header. Load sheds at the
// door, never by queuing without bound.
var ErrSaturated = errors.New("serve: saturated, retry later")

// ErrDraining is returned once shutdown has begun; the HTTP layer also
// maps it to 503 so a load balancer retries against another instance.
var ErrDraining = errors.New("serve: draining")

// pending is one submitted work item waiting for its result.
type pending[T, R any] struct {
	// ctx is the item's processing context: server-lifetime cancellation
	// with request-scoped values (fault injector, item key) attached. It
	// is deliberately NOT the HTTP request context — a client disconnect
	// must never cancel a computation shared with co-batched waiters.
	ctx  context.Context
	key  string
	item T
	done chan result[R]
}

type result[R any] struct {
	val R
	err error
}

// Process computes one flushed batch. items holds one entry per distinct
// coalescing key (first-submitted order); ctxs[i] is the context of the
// first request that submitted items[i]. It returns a result or error per
// item, in order — par.MapAll's shape, so processors fan out directly.
type Process[T, R any] func(ctx context.Context, items []T, ctxs []context.Context) ([]R, []error)

// Batcher coalesces concurrent submissions into size/latency-bounded
// batches. Submissions carrying the same key are computed once per flush
// and the result fanned out to every waiter — the serving-time analog of
// the model store's single-flight training. A zero key disables
// coalescing for that item.
//
// One goroutine collects and flushes; parallelism lives inside Process
// (par.MapAll over the unique items), so the worker budget is identical
// to per-request serving at equal -jobs — what batching buys is fewer
// computations (dedup) and per-flush rather than per-request overhead.
type Batcher[T, R any] struct {
	name     string
	maxBatch int
	maxDelay time.Duration
	process  Process[T, R]
	base     context.Context

	queue chan *pending[T, R]

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewBatcher starts a batcher flushing at maxBatch items or maxDelay after
// the first queued item, whichever comes first. queueDepth bounds the
// submission backlog: a full queue rejects with ErrSaturated. base is the
// server-lifetime context processing runs under (request cancellation
// never kills a shared computation); its obs handle records the batch
// telemetry.
func NewBatcher[T, R any](base context.Context, name string, maxBatch, queueDepth int, maxDelay time.Duration, process Process[T, R]) *Batcher[T, R] {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	b := &Batcher[T, R]{
		name:     name,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		process:  process,
		base:     base,
		queue:    make(chan *pending[T, R], queueDepth),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Submit enqueues one item and blocks for its result. waitCtx bounds the
// caller's wait (the HTTP request context: cancellation abandons the wait,
// the shared computation finishes for any co-waiters). procCtx is the
// context the item is processed under — derive it from the server-lifetime
// context, attaching request-scoped values like a fault injector. key is
// the coalescing identity: concurrent submissions with equal keys share
// one computation ("" = never coalesce). A full queue fails fast with
// ErrSaturated; a closed batcher with ErrDraining.
func (b *Batcher[T, R]) Submit(waitCtx, procCtx context.Context, key string, item T) (R, error) {
	var zero R
	p := &pending[T, R]{ctx: procCtx, key: key, item: item, done: make(chan result[R], 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return zero, ErrDraining
	}
	select {
	case b.queue <- p:
		b.mu.Unlock()
	default:
		b.mu.Unlock()
		obs.AddCountL(b.base, "serve.batch.rejected", 1, obs.L("batcher", b.name))
		return zero, ErrSaturated
	}
	select {
	case r := <-p.done:
		return r.val, r.err
	case <-waitCtx.Done():
		return zero, waitCtx.Err()
	}
}

// Close drains the batcher: no new submissions are accepted, everything
// already queued is flushed and answered, and the collector goroutine
// exits. Safe to call more than once.
func (b *Batcher[T, R]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// run is the collector loop: wait for a first item, gather until the batch
// fills or the delay elapses, flush, repeat. A closed queue still yields
// its buffered items, so draining flushes the backlog before exit.
func (b *Batcher[T, R]) run() {
	defer b.wg.Done()
	for {
		p, ok := <-b.queue
		if !ok {
			return
		}
		batch := []*pending[T, R]{p}
		reason := "drain"
		timer := time.NewTimer(b.maxDelay)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case q, ok := <-b.queue:
				if !ok {
					break collect
				}
				batch = append(batch, q)
			case <-timer.C:
				reason = "timer"
				break collect
			}
		}
		timer.Stop()
		if len(batch) >= b.maxBatch {
			reason = "size"
		}
		b.flush(batch, reason)
	}
}

// flush groups the batch by coalescing key (first-seen order, so results
// are deterministic for a fixed arrival order), runs Process once over the
// unique items, and fans each group's result out to all its waiters.
func (b *Batcher[T, R]) flush(batch []*pending[T, R], reason string) {
	var (
		items  []T
		ctxs   []context.Context
		groups [][]*pending[T, R]
		index  = map[string]int{}
	)
	for _, p := range batch {
		if p.key != "" {
			if gi, ok := index[p.key]; ok {
				groups[gi] = append(groups[gi], p)
				continue
			}
			index[p.key] = len(items)
		}
		items = append(items, p.item)
		ctxs = append(ctxs, p.ctx)
		groups = append(groups, []*pending[T, R]{p})
	}

	obs.ObserveL(b.base, "serve.batch.size", float64(len(batch)), obs.L("batcher", b.name))
	obs.AddCountL(b.base, "serve.batch.flushes", 1, obs.L("batcher", b.name), obs.L("reason", reason))
	obs.AddCountL(b.base, "serve.batch.items", int64(len(batch)), obs.L("batcher", b.name))
	obs.AddCountL(b.base, "serve.batch.coalesced", int64(len(batch)-len(items)), obs.L("batcher", b.name))

	vals, errs := b.runProcess(items, ctxs)
	for gi, group := range groups {
		r := result[R]{err: errs[gi]}
		if r.err == nil {
			r.val = vals[gi]
		}
		for _, p := range group {
			p.done <- r // buffered; never blocks on an abandoned waiter
		}
	}
}

// runProcess guards the processor: a panic fails every item of the flush
// with an error carrying the stack instead of killing the collector.
func (b *Batcher[T, R]) runProcess(items []T, ctxs []context.Context) (vals []R, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: batch processor panic: %v\n%s", r, debug.Stack())
			vals = make([]R, len(items))
			errs = make([]error, len(items))
			for i := range errs {
				errs[i] = err
			}
		}
	}()
	vals, errs = b.process(b.base, items, ctxs)
	if len(vals) != len(items) || len(errs) != len(items) {
		err := fmt.Errorf("serve: batch processor returned %d/%d results for %d items", len(vals), len(errs), len(items))
		vals = make([]R, len(items))
		errs = make([]error, len(items))
		for i := range errs {
			errs[i] = err
		}
	}
	return vals, errs
}

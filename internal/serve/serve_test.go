package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"decompstudy/internal/core"
	"decompstudy/internal/corpus"
	"decompstudy/internal/experiments"
	"decompstudy/internal/fault"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// newTestServer builds a Server over an in-memory model store and wraps it
// in an httptest listener. Cleanup tears both down in drain order.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	o := &obs.Obs{Trace: obs.NewCollector(), Metrics: obs.NewRegistry()}
	srv, err := NewServer(context.Background(), o, modelstore.New(), opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func post(t *testing.T, client *http.Client, url string, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw
}

// TestStudyEndpointByteIdenticalToCLI is the service↔CLI determinism
// contract: /v1/study at seed 26 must return exactly the bytes studysim
// prints — same Runner, same All() render, nothing added by transport.
func TestStudyEndpointByteIdenticalToCLI(t *testing.T) {
	_, hs := newTestServer(t, Options{})

	// The reference output, produced the way cmd/studysim does.
	ctx := fault.WithManifest(par.WithJobs(obs.With(context.Background(), &obs.Obs{}), runtime.GOMAXPROCS(0)), fault.NewManifest())
	r, err := experiments.NewRunnerCtx(ctx, &core.Config{Seed: 26, Jobs: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatalf("reference runner: %v", err)
	}
	want, err := r.All()
	if err != nil {
		t.Fatalf("reference All(): %v", err)
	}

	resp, got := post(t, hs.Client(), hs.URL+"/v1/study", `{"seed": 26}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, got)
	}
	if sha256.Sum256(got) != sha256.Sum256([]byte(want)) {
		t.Fatalf("/v1/study output differs from the CLI render (%d vs %d bytes)", len(got), len(want))
	}

	// Single artifacts go through the same shared registry.
	resp, got = post(t, hs.Client(), hs.URL+"/v1/study", `{"seed": 26, "artifact": "table2"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status = %d, body %s", resp.StatusCode, got)
	}
	wantT2, err := r.TableII()
	if err != nil {
		t.Fatalf("reference TableII: %v", err)
	}
	if string(got) != wantT2 {
		t.Fatalf("table2 artifact differs from CLI render")
	}
}

func TestAnnotateMatchesDirectPrepare(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	for _, id := range []string{"AEEK", "TC"} {
		resp, raw := post(t, hs.Client(), hs.URL+"/v1/annotate", fmt.Sprintf(`{"snippet": %q}`, id), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", id, resp.StatusCode, raw)
		}
		var got AnnotateResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("%s: bad JSON: %v", id, err)
		}
		sn, _ := corpus.SnippetByID(id)
		p, err := corpus.PrepareCtx(context.Background(), sn)
		if err != nil {
			t.Fatalf("%s: prepare: %v", id, err)
		}
		if got.Output != p.Dirty.Source() {
			t.Errorf("%s: annotated output differs from direct pipeline", id)
		}
		if len(got.Renames) != len(p.Dirty.Renames) {
			t.Errorf("%s: %d renames, want %d", id, len(got.Renames), len(p.Dirty.Renames))
		}
	}
}

func TestMetricsEndpointReportsBattery(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, raw := post(t, hs.Client(), hs.URL+"/v1/metrics", `{"snippet": "BAPL", "opt": 1}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var got MetricsResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if got.Snippet != "BAPL" || got.Opt != "-O1" {
		t.Errorf("echo = %s/%s, want BAPL/-O1", got.Snippet, got.Opt)
	}
	if got.Pairs == 0 {
		t.Error("no rename pairs scored")
	}
	if got.Report.NormalizedLev <= 0 {
		t.Errorf("NormalizedLev = %v, want > 0", got.Report.NormalizedLev)
	}
	if got.Covariates.Cyclomatic <= 0 {
		t.Errorf("Cyclomatic = %d, want > 0", got.Covariates.Cyclomatic)
	}
}

func TestDecompileAndLintEndpoints(t *testing.T) {
	_, hs := newTestServer(t, Options{})

	resp, raw := post(t, hs.Client(), hs.URL+"/v1/decompile", `{"snippet": "AEEK", "annotate": true}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompile status = %d, body %s", resp.StatusCode, raw)
	}
	var dec DecompileResponse
	if err := json.Unmarshal(raw, &dec); err != nil || dec.Output == "" {
		t.Fatalf("decompile body = %s (err %v)", raw, err)
	}

	src := "int add(int a, int b) { return a + b; }"
	resp, raw = post(t, hs.Client(), hs.URL+"/v1/decompile", fmt.Sprintf(`{"source": %q}`, src), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("source decompile status = %d, body %s", resp.StatusCode, raw)
	}

	resp, raw = post(t, hs.Client(), hs.URL+"/v1/lint", `{"snippet": "POSTORDER", "opt": 2}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lint status = %d, body %s", resp.StatusCode, raw)
	}
	var lint LintResponse
	if err := json.Unmarshal(raw, &lint); err != nil {
		t.Fatalf("lint body: %v", err)
	}
	if len(lint.Covariates) == 0 {
		t.Error("lint returned no covariates")
	}
}

// TestBatchedAndUnbatchedResponsesIdentical proves -no-batch is purely a
// scheduling change: both modes return byte-identical bodies.
func TestBatchedAndUnbatchedResponsesIdentical(t *testing.T) {
	_, batched := newTestServer(t, Options{})
	_, unbatched := newTestServer(t, Options{NoBatch: true})
	reqs := []struct{ path, body string }{
		{"/v1/annotate", `{"snippet": "AEEK"}`},
		{"/v1/annotate", `{"snippet": "POSTORDER", "opt": 2}`},
		{"/v1/metrics", `{"snippet": "TC"}`},
		{"/v1/metrics", `{"snippet": "BAPL", "opt": 1}`},
	}
	for _, rq := range reqs {
		_, a := post(t, batched.Client(), batched.URL+rq.path, rq.body, nil)
		_, b := post(t, unbatched.Client(), unbatched.URL+rq.path, rq.body, nil)
		if !bytes.Equal(a, b) {
			t.Errorf("%s %s: batched and unbatched bodies differ", rq.path, rq.body)
		}
	}
}

// TestSaturationReturns503 drives an overloaded server and requires every
// response to be either a success or a complete 503 JSON body with
// Retry-After — never a hang, never a partial body.
func TestSaturationReturns503(t *testing.T) {
	delayPlan := "seed=1; csrc.parse:delay,p=1,delay=200ms"
	for name, opts := range map[string]Options{
		"batched":  {Jobs: 1, BatchSize: 1, Queue: 1, AllowFaultHeader: true},
		"no-batch": {Jobs: 1, Queue: 1, NoBatch: true, AllowFaultHeader: true},
	} {
		t.Run(name, func(t *testing.T) {
			_, hs := newTestServer(t, opts)
			client := hs.Client()
			client.Timeout = 30 * time.Second

			const n = 8
			var wg sync.WaitGroup
			codes := make([]int, n)
			bodies := make([][]byte, n)
			retryAfter := make([]string, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp, raw := post(t, client, hs.URL+"/v1/annotate", `{"snippet": "AEEK"}`,
						map[string]string{"X-Fault-Plan": delayPlan})
					codes[i] = resp.StatusCode
					bodies[i] = raw
					retryAfter[i] = resp.Header.Get("Retry-After")
				}(i)
			}
			wg.Wait()

			saturated := 0
			for i := 0; i < n; i++ {
				switch codes[i] {
				case http.StatusOK:
					var ok AnnotateResponse
					if err := json.Unmarshal(bodies[i], &ok); err != nil {
						t.Errorf("request %d: 200 with unparseable body: %v", i, err)
					}
				case http.StatusServiceUnavailable:
					saturated++
					if retryAfter[i] == "" {
						t.Errorf("request %d: 503 without Retry-After", i)
					}
					var e map[string]string
					if err := json.Unmarshal(bodies[i], &e); err != nil || e["error"] == "" {
						t.Errorf("request %d: 503 body incomplete: %s", i, bodies[i])
					}
				default:
					t.Errorf("request %d: unexpected status %d: %s", i, codes[i], bodies[i])
				}
			}
			if saturated == 0 {
				t.Error("no request was shed: saturation path untested")
			}
		})
	}
}

func TestFaultHeaderGating(t *testing.T) {
	_, locked := newTestServer(t, Options{})
	resp, raw := post(t, locked.Client(), locked.URL+"/v1/annotate", `{"snippet": "AEEK"}`,
		map[string]string{"X-Fault-Plan": "seed=1; csrc.parse:error,p=1"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled header status = %d, body %s", resp.StatusCode, raw)
	}

	_, open := newTestServer(t, Options{AllowFaultHeader: true})
	resp, raw = post(t, open.Client(), open.URL+"/v1/annotate", `{"snippet": "AEEK"}`,
		map[string]string{"X-Fault-Plan": "not a plan"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid plan status = %d, body %s", resp.StatusCode, raw)
	}
	resp, raw = post(t, open.Client(), open.URL+"/v1/annotate", `{"snippet": "AEEK"}`,
		map[string]string{"X-Fault-Plan": "seed=1; csrc.parse:error,p=1"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("armed error plan status = %d, body %s", resp.StatusCode, raw)
	}
	var e map[string]string
	if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
		t.Fatalf("fault error body incomplete: %s", raw)
	}
	// The same request without the header is unaffected: injector state is
	// per-request, and fault-armed work never coalesces with clean work.
	resp, _ = post(t, open.Client(), open.URL+"/v1/annotate", `{"snippet": "AEEK"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean request after fault = %d", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	client := hs.Client()

	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/annotate", `{"snippet":`, http.StatusBadRequest},
		{"unknown field", "/v1/annotate", `{"snipet": "AEEK"}`, http.StatusBadRequest},
		{"unknown snippet", "/v1/annotate", `{"snippet": "NOPE"}`, http.StatusBadRequest},
		{"bad opt", "/v1/metrics", `{"snippet": "AEEK", "opt": 9}`, http.StatusBadRequest},
		{"both inputs", "/v1/decompile", `{"snippet": "AEEK", "source": "int f() {}"}`, http.StatusBadRequest},
		{"neither input", "/v1/lint", `{}`, http.StatusBadRequest},
		{"bad artifact", "/v1/study", `{"artifact": "tableX"}`, http.StatusBadRequest},
	} {
		resp, raw := post(t, client, hs.URL+tc.path, tc.body, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, raw)
		}
	}

	resp, err := client.Get(hs.URL + "/v1/annotate")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndDebugSurface(t *testing.T) {
	srv, hs := newTestServer(t, Options{})
	client := hs.Client()

	get := func(path string) (*http.Response, []byte) {
		resp, err := client.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, raw
	}

	resp, raw := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("healthz = %d %s", resp.StatusCode, raw)
	}

	// A request lands per-endpoint metrics on the debug surface.
	post(t, client, hs.URL+"/v1/annotate", `{"snippet": "AEEK"}`, nil)
	resp, raw = get("/debug/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug metrics = %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "serve.request") {
		t.Errorf("debug metrics missing serve.request series: %.200s", raw)
	}
	resp, _ = get("/debug/health")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug health = %d", resp.StatusCode)
	}

	srv.SetDraining()
	resp, raw = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "draining") {
		t.Fatalf("draining healthz = %d %s", resp.StatusCode, raw)
	}
}

// TestNoGoroutineLeakAfterDrain exercises the server — including the
// saturation path — then tears it down and requires the goroutine count
// to return to baseline: nothing hangs in batcher queues or limiters.
func TestNoGoroutineLeakAfterDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	o := &obs.Obs{Trace: obs.NewCollector(), Metrics: obs.NewRegistry()}
	srv, err := NewServer(context.Background(), o, modelstore.New(), Options{Jobs: 2, Queue: 2, AllowFaultHeader: true})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	client := hs.Client()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hdr := map[string]string{}
			if i%3 == 0 {
				hdr["X-Fault-Plan"] = "seed=1; csrc.parse:delay,p=1,delay=50ms"
			}
			post(t, client, hs.URL+"/v1/annotate", `{"snippet": "BAPL"}`, hdr)
		}(i)
	}
	wg.Wait()

	hs.Close()
	srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToConcurrency(t *testing.T) {
	ctx := context.Background()
	l := NewLimiter("t", 2, 4)
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	l.Release()
	l.Release()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestLimiterRejectsBeyondQueue(t *testing.T) {
	ctx := context.Background()
	l := NewLimiter("t", 1, 0)
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer l.Release()
	// Zero queue: a second caller is rejected immediately, never blocked.
	if err := l.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Acquire = %v, want ErrSaturated", err)
	}
}

func TestLimiterCancelWhileQueued(t *testing.T) {
	l := NewLimiter("t", 1, 1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer l.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire = %v, want DeadlineExceeded", err)
	}
}

func TestLimiterReleaseAdmitsQueuedWaiter(t *testing.T) {
	l := NewLimiter("t", 1, 1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	admitted := make(chan error, 1)
	go func() {
		admitted <- l.Acquire(context.Background())
	}()
	// Give the waiter time to enter the queue, then free the slot.
	time.Sleep(10 * time.Millisecond)
	l.Release()
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("queued Acquire = %v, want nil", err)
		}
		l.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted after Release")
	}
}

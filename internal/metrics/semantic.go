package metrics

import (
	"context"
	"errors"
	"fmt"

	"decompstudy/internal/embed"
	"decompstudy/internal/fault"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// ErrNilModel is returned when a semantic metric is called without a
// trained embedding model.
var ErrNilModel = errors.New("metrics: nil embedding model")

// ErrEvaluate is returned when a metric evaluation fails.
var ErrEvaluate = errors.New("metrics: evaluation failed")

// BERTScoreF1 computes a BERTScore-style F1 between candidate and reference
// token sequences: precision is the mean over candidate tokens of the best
// cosine similarity to any reference token, recall is the symmetric
// quantity, and F1 their harmonic mean. Similarities are clamped to [0, 1]
// (negative cosine contributes nothing, as in rescaled BERTScore).
func BERTScoreF1(candidate, reference []string, m *embed.Model) (float64, error) {
	return BERTScoreF1Ctx(context.Background(), candidate, reference, m)
}

// BERTScoreF1Ctx is BERTScoreF1 with per-token fan-out: the best-match
// search for each token runs on par.JobsFrom(ctx) workers. Every token's
// score is independent and the precision/recall sums reduce in token
// order, so the result is bit-identical at any worker count. Each cosine
// goes through the model's memo-cache; the symmetric recall sweep re-reads
// the pairs the precision sweep populated.
func BERTScoreF1Ctx(ctx context.Context, candidate, reference []string, m *embed.Model) (float64, error) {
	if m == nil {
		return 0, ErrNilModel
	}
	if err := fault.Check(ctx, fault.EmbedCosine); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrEvaluate, err)
	}
	if len(candidate) == 0 || len(reference) == 0 {
		if len(candidate) == len(reference) {
			return 1, nil
		}
		return 0, nil
	}
	best := func(tok string, others []string) float64 {
		b := 0.0
		for _, o := range others {
			if s := m.Cosine(tok, o); s > b {
				b = s
			}
		}
		if b > 1 {
			b = 1
		}
		return b
	}
	jobs := par.JobsFrom(ctx)
	bestAgainst := func(toks, others []string) (float64, error) {
		scores, err := par.Map(ctx, jobs, toks, func(_ context.Context, _ int, tok string) (float64, error) {
			return best(tok, others), nil
		})
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for _, s := range scores {
			sum += s
		}
		return sum / float64(len(toks)), nil
	}
	p, err := bestAgainst(candidate, reference)
	if err != nil {
		return 0, err
	}
	r, err := bestAgainst(reference, candidate)
	if err != nil {
		return 0, err
	}
	if p+r == 0 {
		return 0, nil
	}
	return 2 * p * r / (p + r), nil
}

// VarCLR computes a VarCLR-style semantic similarity between two single
// variable (or type) names: the cosine similarity of their identifier
// embeddings, mapped from [-1, 1] to [0, 1].
func VarCLR(a, b string, m *embed.Model) (float64, error) {
	if m == nil {
		return 0, ErrNilModel
	}
	return (m.Cosine(a, b) + 1) / 2, nil
}

// VarCLRMean averages VarCLR similarity over aligned name pairs — the
// paper's per-function aggregation ("we compare matching variable names and
// types in isolation and average the resulting scores over each function").
func VarCLRMean(pairs [][2]string, m *embed.Model) (float64, error) {
	if m == nil {
		return 0, ErrNilModel
	}
	if len(pairs) == 0 {
		return 0, fmt.Errorf("metrics: VarCLRMean with no pairs: %w", ErrNilModel)
	}
	sum := 0.0
	for _, p := range pairs {
		v, err := VarCLR(p[0], p[1], m)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(len(pairs)), nil
}

// Report bundles every intrinsic metric for one candidate/reference
// renaming comparison, mirroring the rows of the paper's Tables III/IV.
type Report struct {
	ExactMatch     float64
	Levenshtein    float64
	NormalizedLev  float64
	Jaccard        float64
	BLEU           float64
	CodeBLEU       float64
	BERTScoreF1    float64
	VarCLR         float64
	HumanVariables float64 // filled by qualcode's expert panel when available
	HumanTypes     float64

	// Structural-complexity covariates, computed by internal/analysis
	// over the snippet's IR and filled in by core alongside the human
	// scores — the RQ5 structural predictors that sit next to the
	// similarity metrics in Tables III/IV.
	Cyclomatic   float64
	CFGEdges     float64
	MaxLoopDepth float64
	LivePressure float64
	CallCount    float64
}

// Pair is one aligned (candidate, reference) identifier pair.
type Pair struct {
	Candidate, Reference string
}

// Evaluate computes the full metric report for a set of aligned name pairs
// plus the code fragments they come from (for codeBLEU). candCode and
// refCode may be empty, in which case CodeBLEU is computed over the joined
// names.
func Evaluate(pairs []Pair, candCode, refCode string, m *embed.Model) (Report, error) {
	return EvaluateCtx(context.Background(), pairs, candCode, refCode, m)
}

// EvaluateCtx is Evaluate with telemetry and fan-out: the per-pair surface
// metrics (exact match, Levenshtein, Jaccard, VarCLR) run on
// par.JobsFrom(ctx) workers and reduce in input order, so the report is
// bit-identical at any worker count. The semantic scores go through the
// model's similarity memo-cache.
func EvaluateCtx(ctx context.Context, pairs []Pair, candCode, refCode string, m *embed.Model) (Report, error) {
	rep, _, err := evaluateCtx(ctx, pairs, candCode, refCode, m)
	return rep, err
}

// evalTokens carries the joined-name strings and their subtoken sequences,
// computed once per evaluation and shared by every sequence metric (BLEU,
// BERTScore, and the extended report's ROUGE-L/chrF) instead of
// re-tokenizing per metric.
type evalTokens struct {
	candJoined, refJoined string
	candToks, refToks     []string
}

// evaluateCtx is the shared implementation behind EvaluateCtx and
// EvaluateExtendedCtx; it returns the tokenization alongside the report so
// the extended metrics reuse it.
func evaluateCtx(ctx context.Context, pairs []Pair, candCode, refCode string, m *embed.Model) (Report, evalTokens, error) {
	jobs := par.JobsFrom(ctx)
	ctx, sp := obs.StartSpan(ctx, "metrics.Evaluate",
		obs.KV("pairs", len(pairs)), obs.KV("jobs", jobs))
	defer sp.End()
	if err := fault.Check(ctx, fault.MetricsEvaluate); err != nil {
		return Report{}, evalTokens{}, fmt.Errorf("%w: %w", ErrEvaluate, err)
	}
	obs.AddCount(ctx, "metrics.evaluate.calls", 1)
	obs.AddCount(ctx, "metrics.evaluate.pairs", int64(len(pairs)))
	if len(pairs) == 0 {
		return Report{}, evalTokens{}, fmt.Errorf("metrics: Evaluate with no pairs: %w", ErrNilModel)
	}
	if m == nil {
		return Report{}, evalTokens{}, ErrNilModel
	}
	candNames := make([]string, len(pairs))
	refNames := make([]string, len(pairs))
	for i, p := range pairs {
		candNames[i] = p.Candidate
		refNames[i] = p.Reference
	}

	// Per-pair surface + VarCLR scores, one work item per aligned pair.
	type pairScores struct {
		exact, lev, nlev, jac, varclr float64
	}
	perPair, err := par.Map(ctx, jobs, pairs, func(_ context.Context, _ int, p Pair) (pairScores, error) {
		vc, err := VarCLR(p.Candidate, p.Reference, m)
		if err != nil {
			return pairScores{}, err
		}
		// One DP run serves both the raw and normalized Levenshtein views.
		d := Levenshtein(p.Candidate, p.Reference)
		return pairScores{
			exact:  ExactMatch(p.Candidate, p.Reference),
			lev:    float64(d),
			nlev:   normalizedLevFromDistance(d, p.Candidate, p.Reference),
			jac:    JaccardNGrams(p.Candidate, p.Reference, 2),
			varclr: vc,
		}, nil
	})
	if err != nil {
		return Report{}, evalTokens{}, err
	}
	var exact, lev, nlev, jac, vc float64
	for _, s := range perPair {
		exact += s.exact
		lev += s.lev
		nlev += s.nlev
		jac += s.jac
		vc += s.varclr
	}
	n := float64(len(pairs))
	candJoined := JoinNames(candNames)
	refJoined := JoinNames(refNames)
	if candCode == "" {
		candCode = candJoined
	}
	if refCode == "" {
		refCode = refJoined
	}

	// Tokenize the joined names once; BLEU, BERTScore, and the extended
	// metrics all consume the same sequences.
	toks := evalTokens{
		candJoined: candJoined,
		refJoined:  refJoined,
		candToks:   TokenizeNames(candJoined),
		refToks:    TokenizeNames(refJoined),
	}
	bleu := BLEU(toks.candToks, toks.refToks, 4)
	cb := CodeBLEU(candCode, refCode, CodeBLEUWeights{})
	bert, err := BERTScoreF1Ctx(ctx, toks.candToks, toks.refToks, m)
	if err != nil {
		return Report{}, evalTokens{}, err
	}
	return Report{
		ExactMatch:    exact / n,
		Levenshtein:   lev / n,
		NormalizedLev: nlev / n,
		Jaccard:       jac / n,
		BLEU:          bleu,
		CodeBLEU:      cb,
		BERTScoreF1:   bert,
		VarCLR:        vc / n,
	}, toks, nil
}

package metrics

import (
	"testing"
	"unicode/utf8"
)

// levReference is the textbook full-matrix DP, kept deliberately naive so
// the optimized kernel (prefix/suffix trimming, ASCII byte path, rolling
// stack rows) is checked against an independent implementation.
func levReference(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	dp := make([][]int, len(ra)+1)
	for i := range dp {
		dp[i] = make([]int, len(rb)+1)
		dp[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		dp[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			dp[i][j] = min3(dp[i-1][j]+1, dp[i][j-1]+1, dp[i-1][j-1]+cost)
		}
	}
	return dp[len(ra)][len(rb)]
}

func TestLevenshteinMatchesReference(t *testing.T) {
	cases := [][2]string{
		{"", ""},
		{"", "abc"},
		{"abc", ""},
		{"abc", "abc"},
		{"kitten", "sitting"},
		{"flaw", "lawn"},
		{"buffer_len", "lenBuffer"},
		{"recursive_descent_parser", "recursiveDescentParse"},
		{"aa", "a"},
		{"aba", "a"},
		{"abcdef", "abzdef"},   // shared prefix and suffix
		{"prefix_x", "prefix"}, // suffix of one is prefix of other
		{"héllo", "hello"},     // non-ASCII forces the rune path
		{"日本語", "日本"},
		{"naïve", "naive"},
		{"αβγδ", "αγδ"},
	}
	for _, c := range cases {
		want := levReference(c[0], c[1])
		if got := Levenshtein(c[0], c[1]); got != want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c[0], c[1], got, want)
		}
		if got := Levenshtein(c[1], c[0]); got != want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d (symmetry)", c[1], c[0], got, want)
		}
	}
}

// TestLevenshteinRandomized fuzzes the kernel against the reference over
// identifier-like strings, including lengths past the stack-row cutoff and
// a sprinkle of multi-byte runes.
func TestLevenshteinRandomized(t *testing.T) {
	alphabet := []rune("abcXYZ_09éλ")
	seed := uint64(26)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	randStr := func(maxLen int) string {
		n := next(maxLen + 1)
		r := make([]rune, n)
		for i := range r {
			r[i] = alphabet[next(len(alphabet))]
		}
		return string(r)
	}
	for _, maxLen := range []int{6, 30, levStackRow + 20} {
		for i := 0; i < 300; i++ {
			a, b := randStr(maxLen), randStr(maxLen)
			want := levReference(a, b)
			if got := Levenshtein(a, b); got != want {
				t.Fatalf("Levenshtein(%q, %q) = %d, want %d", a, b, got, want)
			}
			wantN := normalizedLevFromDistance(want, a, b)
			if gotN := NormalizedLevenshtein(a, b); gotN != wantN {
				t.Fatalf("NormalizedLevenshtein(%q, %q) = %v, want %v", a, b, gotN, wantN)
			}
		}
	}
}

func TestNormalizedLevFromDistance(t *testing.T) {
	a, b := "buffer_len", "lenBuffer"
	d := Levenshtein(a, b)
	want := NormalizedLevenshtein(a, b)
	if got := normalizedLevFromDistance(d, a, b); got != want {
		t.Errorf("normalizedLevFromDistance = %v, want %v", got, want)
	}
	if got := normalizedLevFromDistance(0, "x", "x"); got != 0 {
		t.Errorf("identical strings: got %v, want 0", got)
	}
	// Rune counting, not byte counting, in the normalization.
	u := "héé"
	if utf8.RuneCountInString(u) == len(u) {
		t.Fatal("test string must be multi-byte")
	}
	if got := NormalizedLevenshtein(u, "h"); got <= 0 || got > 1 {
		t.Errorf("unicode normalization out of range: %v", got)
	}
}

// TestLevenshteinAllocFree pins the zero-allocation contract for
// identifier-scale operands — the regression the two-row stack rewrite
// exists to protect.
func TestLevenshteinAllocFree(t *testing.T) {
	pairs := [][2]string{
		{"recursive_descent_parser", "recursiveDescentParse"},
		{"buffer_len", "lenBuffer"},
		{"x", "yz"},
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, p := range pairs {
			Levenshtein(p[0], p[1])
			NormalizedLevenshtein(p[0], p[1])
		}
	})
	if avg != 0 {
		t.Errorf("Levenshtein battery allocates %.1f per run, want 0", avg)
	}
}

package metrics_test

import (
	"fmt"

	"decompstudy/internal/metrics"
)

// The paper's motivating pair: "size" and "length" are semantically
// interchangeable but maximally distant to surface metrics.
func ExampleJaccardNGrams() {
	fmt.Printf("%.2f\n", metrics.JaccardNGrams("size", "length", 2))
	fmt.Printf("%.2f\n", metrics.JaccardNGrams("buffer", "buffer", 2))
	// Output:
	// 0.00
	// 1.00
}

func ExampleLevenshtein() {
	fmt.Println(metrics.Levenshtein("klen", "index"))
	fmt.Println(metrics.Levenshtein("size", "length"))
	// Output:
	// 4
	// 6
}

func ExampleBLEU() {
	cand := metrics.TokenizeNames("array key index")
	ref := metrics.TokenizeNames("array k klen")
	fmt.Printf("%.3f\n", metrics.BLEU(cand, cand, 4))
	fmt.Printf("identical > renamed: %t\n", metrics.BLEU(cand, cand, 4) > metrics.BLEU(cand, ref, 4))
	// Output:
	// 1.000
	// identical > renamed: true
}

func ExampleCodeBLEU() {
	ref := "v7 = *(_QWORD *)(8LL * v4 + *(_QWORD *)(a1 + 8));"
	same := metrics.CodeBLEU(ref, ref, metrics.CodeBLEUWeights{})
	different := metrics.CodeBLEU("return 0;", ref, metrics.CodeBLEUWeights{})
	fmt.Printf("identical: %.2f, unrelated lower: %t\n", same, different < same)
	// Output:
	// identical: 1.00, unrelated lower: true
}

package metrics

import (
	"context"
	"fmt"
	"math"

	"decompstudy/internal/embed"
	"decompstudy/internal/par"
)

// ROUGEL computes the ROUGE-L F-measure between candidate and reference
// token sequences: LCS-based recall and precision combined with the
// standard beta weighting (beta = 1 gives the harmonic mean). The score is
// in [0, 1].
func ROUGEL(candidate, reference []string) float64 {
	if len(candidate) == 0 || len(reference) == 0 {
		if len(candidate) == len(reference) {
			return 1
		}
		return 0
	}
	l := lcsLength(candidate, reference)
	if l == 0 {
		return 0
	}
	p := float64(l) / float64(len(candidate))
	r := float64(l) / float64(len(reference))
	return 2 * p * r / (p + r)
}

// lcsLength returns the longest-common-subsequence length of a and b.
func lcsLength(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = 0
		}
	}
	return prev[len(b)]
}

// ChrF computes the chrF character n-gram F-score (Popović 2015) with the
// standard beta = 2 recall weighting, averaged over n-gram orders 1..maxN.
func ChrF(candidate, reference string, maxN int) float64 {
	if maxN <= 0 {
		maxN = 6
	}
	if candidate == "" || reference == "" {
		if candidate == reference {
			return 1
		}
		return 0
	}
	const beta2 = 4.0 // beta = 2
	var totalF float64
	orders := 0
	for n := 1; n <= maxN; n++ {
		cg := charNGramCounts(candidate, n)
		rg := charNGramCounts(reference, n)
		if len(cg) == 0 && len(rg) == 0 {
			continue
		}
		orders++
		if len(cg) == 0 || len(rg) == 0 {
			continue // F contribution is zero
		}
		inter, ctotal, rtotal := 0, 0, 0
		for g, c := range cg {
			ctotal += c
			if r := rg[g]; r < c {
				inter += r
			} else {
				inter += c
			}
		}
		for _, r := range rg {
			rtotal += r
		}
		if inter == 0 {
			continue
		}
		p := float64(inter) / float64(ctotal)
		r := float64(inter) / float64(rtotal)
		totalF += (1 + beta2) * p * r / (beta2*p + r)
	}
	if orders == 0 {
		return 0
	}
	return totalF / float64(orders)
}

func charNGramCounts(s string, n int) map[string]int {
	out := map[string]int{}
	runes := []rune(s)
	if len(runes) < n {
		return out
	}
	for i := 0; i+n <= len(runes); i++ {
		out[string(runes[i:i+n])]++
	}
	return out
}

// ContextWeighted implements the metric the paper's Discussion (§V) asks
// for: instead of treating every renamed variable equally, each pair's
// similarity is weighted by the variable's salience in the code — how
// often it participates in the reference function's dataflow. A recovered
// name for a variable used fifteen times matters more than one used once.
//
// Per-pair similarity blends subtoken overlap with embedding cosine so
// that semantically-equivalent renamings (size↔length) receive credit that
// surface metrics deny them.
type ContextWeighted struct {
	// Model supplies the semantic component; nil degrades to pure token
	// overlap.
	Model *embed.Model
	// SemanticWeight is the blend factor for the embedding component
	// (default 0.5).
	SemanticWeight float64
}

// Score computes the context-weighted similarity of aligned pairs against
// the reference code. pairs[i] is (candidate, reference); refCode is the
// original function the reference names come from.
func (cw *ContextWeighted) Score(pairs []Pair, refCode string) (float64, error) {
	return cw.ScoreCtx(context.Background(), pairs, refCode)
}

// ScoreCtx is Score with per-pair fan-out on par.JobsFrom(ctx) workers.
// The weighted terms reduce in input order, so the score is bit-identical
// at any worker count; cosine lookups go through the model's memo-cache.
func (cw *ContextWeighted) ScoreCtx(ctx context.Context, pairs []Pair, refCode string) (float64, error) {
	if len(pairs) == 0 {
		return 0, fmt.Errorf("metrics: ContextWeighted with no pairs: %w", ErrNilModel)
	}
	sw := cw.SemanticWeight
	if sw <= 0 || sw > 1 {
		sw = 0.5
	}
	usage := identifierUsage(refCode)
	type term struct{ num, den float64 }
	terms, err := par.Map(ctx, par.JobsFrom(ctx), pairs, func(_ context.Context, _ int, p Pair) (term, error) {
		w := 1 + math.Log1p(float64(usage[p.Reference]))
		sim := TokenJaccard(p.Candidate, p.Reference)
		if cw.Model != nil {
			sem := (cw.Model.Cosine(p.Candidate, p.Reference) + 1) / 2
			sim = (1-sw)*sim + sw*sem
		}
		return term{num: w * sim, den: w}, nil
	})
	if err != nil {
		return 0, err
	}
	var num, den float64
	for _, t := range terms {
		num += t.num
		den += t.den
	}
	return num / den, nil
}

// identifierUsage counts identifier occurrences in C-like code.
func identifierUsage(code string) map[string]int {
	out := map[string]int{}
	for _, tok := range TokenizeCode(code) {
		if tok == "" {
			continue
		}
		c := rune(tok[0])
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			if !cKeywords[tok] {
				out[tok]++
			}
		}
	}
	return out
}

// ExtendedReport carries the additional metrics alongside a base Report.
type ExtendedReport struct {
	Report
	ROUGEL          float64
	ChrF            float64
	ContextWeighted float64
}

// EvaluateExtended computes the base report plus the extension metrics.
func EvaluateExtended(pairs []Pair, candCode, refCode string, m *embed.Model) (ExtendedReport, error) {
	return EvaluateExtendedCtx(context.Background(), pairs, candCode, refCode, m)
}

// EvaluateExtendedCtx is EvaluateExtended with the base report's per-pair
// fan-out and a fanned-out context-weighted score. The base evaluation's
// joined strings and token sequences are reused for ROUGE-L and chrF
// instead of re-joining and re-tokenizing the name lists.
func EvaluateExtendedCtx(ctx context.Context, pairs []Pair, candCode, refCode string, m *embed.Model) (ExtendedReport, error) {
	base, toks, err := evaluateCtx(ctx, pairs, candCode, refCode, m)
	if err != nil {
		return ExtendedReport{}, err
	}
	cw := &ContextWeighted{Model: m}
	ctxScore, err := cw.ScoreCtx(ctx, pairs, refCode)
	if err != nil {
		return ExtendedReport{}, err
	}
	return ExtendedReport{
		Report:          base,
		ROUGEL:          ROUGEL(toks.candToks, toks.refToks),
		ChrF:            ChrF(toks.candJoined, toks.refJoined, 6),
		ContextWeighted: ctxScore,
	}, nil
}

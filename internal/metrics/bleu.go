package metrics

import (
	"math"
	"strings"
	"unicode"

	"decompstudy/internal/embed"
)

// BLEU computes the sentence-level BLEU score of a candidate token sequence
// against a reference, with uniform weights over 1..maxN-grams, add-one
// smoothing for higher-order precisions (Lin & Och smoothing method 1), and
// the standard brevity penalty. maxN ≤ 0 defaults to 4. The score is in
// [0, 1].
func BLEU(candidate, reference []string, maxN int) float64 {
	if maxN <= 0 {
		maxN = 4
	}
	if len(candidate) == 0 || len(reference) == 0 {
		if len(candidate) == len(reference) {
			return 1
		}
		return 0
	}
	logSum := 0.0
	for n := 1; n <= maxN; n++ {
		matched, total := clippedNGramMatches(candidate, reference, n)
		var p float64
		if n == 1 {
			if total == 0 {
				return 0
			}
			p = float64(matched) / float64(total)
			if p == 0 {
				return 0
			}
		} else {
			// Add-one smoothing keeps short sequences comparable.
			p = (float64(matched) + 1) / (float64(total) + 1)
		}
		logSum += math.Log(p)
	}
	precision := math.Exp(logSum / float64(maxN))
	bp := 1.0
	if len(candidate) < len(reference) {
		bp = math.Exp(1 - float64(len(reference))/float64(len(candidate)))
	}
	return bp * precision
}

// clippedNGramMatches counts candidate n-grams that appear in the
// reference, clipped by reference multiplicity, plus the total candidate
// n-gram count.
func clippedNGramMatches(candidate, reference []string, n int) (matched, total int) {
	if len(candidate) < n {
		return 0, 0
	}
	refCounts := map[string]int{}
	for i := 0; i+n <= len(reference); i++ {
		refCounts[strings.Join(reference[i:i+n], "\x00")]++
	}
	for i := 0; i+n <= len(candidate); i++ {
		total++
		key := strings.Join(candidate[i:i+n], "\x00")
		if refCounts[key] > 0 {
			refCounts[key]--
			matched++
		}
	}
	return matched, total
}

// TokenizeNames splits a paired-names string (space-separated identifiers)
// into the subtoken sequence BLEU-style metrics operate on.
func TokenizeNames(paired string) []string {
	var out []string
	for _, ident := range strings.Fields(paired) {
		out = append(out, embed.SplitIdentifier(ident)...)
	}
	return out
}

// cKeywords are weighted higher by codeBLEU's weighted n-gram component.
var cKeywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "goto": true, "sizeof": true,
	"struct": true, "union": true, "enum": true, "typedef": true,
	"const": true, "static": true, "void": true, "int": true, "char": true,
	"long": true, "short": true, "unsigned": true, "signed": true,
	"float": true, "double": true,
}

// TokenizeCode lexes a line (or block) of C-like code into coarse tokens:
// identifiers/keywords, numbers, and individual punctuation characters.
func TokenizeCode(code string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range code {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			cur.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			out = append(out, string(r))
		}
	}
	flush()
	return out
}

// tokenClass maps a code token to a syntactic class, the skeleton that
// codeBLEU's "AST" component compares when full parse trees are not
// available for a fragment.
func tokenClass(tok string) string {
	switch {
	case cKeywords[tok]:
		return "KW:" + tok
	case tok == "":
		return ""
	case unicode.IsDigit(rune(tok[0])):
		return "NUM"
	case unicode.IsLetter(rune(tok[0])) || tok[0] == '_':
		return "ID"
	default:
		return tok // punctuation is its own class
	}
}

// defUsePairs extracts a crude dataflow signature from C-like code: for
// every assignment `lhs = ...rhs...`, one (def, use) pair per identifier on
// the right-hand side. This approximates codeBLEU's dataflow-match
// component on fragments.
func defUsePairs(tokens []string) map[string]int {
	pairs := map[string]int{}
	for i, tok := range tokens {
		if tok != "=" {
			continue
		}
		// Skip comparison/compound operators.
		if i > 0 && strings.ContainsAny(tokens[i-1], "=!<>+-*/&|^%") {
			continue
		}
		if i+1 < len(tokens) && tokens[i+1] == "=" {
			continue
		}
		if i == 0 || tokenClass(tokens[i-1]) != "ID" {
			continue
		}
		def := tokens[i-1]
		for j := i + 1; j < len(tokens) && tokens[j] != ";"; j++ {
			if tokenClass(tokens[j]) == "ID" && !cKeywords[tokens[j]] {
				pairs[def+"\x00"+tokens[j]]++
			}
		}
	}
	return pairs
}

// CodeBLEUWeights sets the component mixture for CodeBLEU. The zero value
// is replaced by the canonical equal weighting (0.25 each).
type CodeBLEUWeights struct {
	NGram, WeightedNGram, Syntax, Dataflow float64
}

func (w CodeBLEUWeights) normalized() CodeBLEUWeights {
	if w.NGram == 0 && w.WeightedNGram == 0 && w.Syntax == 0 && w.Dataflow == 0 {
		return CodeBLEUWeights{0.25, 0.25, 0.25, 0.25}
	}
	s := w.NGram + w.WeightedNGram + w.Syntax + w.Dataflow
	return CodeBLEUWeights{w.NGram / s, w.WeightedNGram / s, w.Syntax / s, w.Dataflow / s}
}

// CodeBLEU computes the codeBLEU score between a candidate and reference
// code fragment: a weighted combination of token BLEU, keyword-weighted
// BLEU, syntactic-skeleton BLEU, and dataflow match (Ren et al., 2020). The
// score is in [0, 1].
func CodeBLEU(candidate, reference string, w CodeBLEUWeights) float64 {
	wt := w.normalized()
	ct, rt := TokenizeCode(candidate), TokenizeCode(reference)

	ngram := BLEU(ct, rt, 4)

	// Weighted n-gram: duplicate keyword tokens so they carry 5× weight in
	// the unigram precision, the spirit of codeBLEU's keyword weighting.
	weight := func(toks []string) []string {
		var out []string
		for _, t := range toks {
			out = append(out, t)
			if cKeywords[t] {
				for i := 0; i < 4; i++ {
					out = append(out, t)
				}
			}
		}
		return out
	}
	weighted := BLEU(weight(ct), weight(rt), 4)

	// Syntax skeleton: BLEU over token classes.
	classes := func(toks []string) []string {
		out := make([]string, len(toks))
		for i, t := range toks {
			out[i] = tokenClass(t)
		}
		return out
	}
	syntax := BLEU(classes(ct), classes(rt), 4)

	// Dataflow: F1 over def-use pair multisets.
	cp, rp := defUsePairs(ct), defUsePairs(rt)
	dataflow := multisetF1(cp, rp)

	return wt.NGram*ngram + wt.WeightedNGram*weighted + wt.Syntax*syntax + wt.Dataflow*dataflow
}

// multisetF1 returns the F1 overlap of two multisets; two empty multisets
// score 1 (no dataflow to disagree about).
func multisetF1(a, b map[string]int) float64 {
	totalA, totalB, inter := 0, 0, 0
	for _, n := range a {
		totalA += n
	}
	for _, n := range b {
		totalB += n
	}
	if totalA == 0 && totalB == 0 {
		return 1
	}
	if totalA == 0 || totalB == 0 {
		return 0
	}
	for k, n := range a {
		if m := b[k]; m < n {
			inter += m
		} else {
			inter += n
		}
	}
	p := float64(inter) / float64(totalA)
	r := float64(inter) / float64(totalB)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

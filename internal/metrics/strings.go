// Package metrics implements the intrinsic similarity metrics the paper
// correlates with human comprehension in RQ5: exact-match accuracy,
// Levenshtein edit distance (raw and normalized), Jaccard n-gram
// similarity, BLEU, codeBLEU, BERTScore F1, and VarCLR.
//
// Surface metrics operate on identifier strings or token sequences; the
// semantic metrics (BERTScore, VarCLR) take a trained embed.Model. All
// similarity scores lie in [0, 1] except raw Levenshtein distance, which is
// a non-negative edit count.
package metrics

import (
	"strings"

	"decompstudy/internal/embed"
)

// ExactMatch returns 1 if the two identifiers are byte-identical and 0
// otherwise — the "accuracy" metric used by DIRE, DIRECT, and DIRTY.
func ExactMatch(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// NormalizedLevenshtein returns the Yujian-Bo normalized edit distance in
// [0, 1]: 2·GLD / (α·(|a|+|b|) + GLD) with α = 1, where GLD is the
// generalized Levenshtein distance. Zero means identical strings.
func NormalizedLevenshtein(a, b string) float64 {
	if a == b {
		return 0
	}
	d := float64(Levenshtein(a, b))
	la, lb := float64(len([]rune(a))), float64(len([]rune(b)))
	if la+lb == 0 {
		return 0
	}
	return 2 * d / (la + lb + d)
}

// LevenshteinSimilarity returns 1 − NormalizedLevenshtein, a similarity in
// [0, 1].
func LevenshteinSimilarity(a, b string) float64 {
	return 1 - NormalizedLevenshtein(a, b)
}

// CharNGrams returns the set of character n-grams of s (over runes). For
// strings shorter than n the whole string is the single n-gram.
func CharNGrams(s string, n int) map[string]bool {
	out := map[string]bool{}
	r := []rune(s)
	if len(r) == 0 {
		return out
	}
	if len(r) <= n {
		out[string(r)] = true
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])] = true
	}
	return out
}

// JaccardNGrams returns the Jaccard similarity |A∩B| / |A∪B| of the
// character n-gram sets of a and b, the metric DIRECT reports. Two empty
// strings are defined to have similarity 1.
func JaccardNGrams(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	sa, sb := CharNGrams(a, n), CharNGrams(b, n)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for g := range sa {
		if sb[g] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TokenJaccard returns the Jaccard similarity of the subtoken sets of two
// identifiers ("buffer_len" vs "lenBuffer" → 1.0).
func TokenJaccard(a, b string) float64 {
	sa := map[string]bool{}
	for _, t := range embed.SplitIdentifier(a) {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range embed.SplitIdentifier(b) {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JoinNames appends a list of names into the single paired string the paper
// compares with sequence metrics ("we appended all the names into paired
// strings").
func JoinNames(names []string) string {
	return strings.Join(names, " ")
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Package metrics implements the intrinsic similarity metrics the paper
// correlates with human comprehension in RQ5: exact-match accuracy,
// Levenshtein edit distance (raw and normalized), Jaccard n-gram
// similarity, BLEU, codeBLEU, BERTScore F1, and VarCLR.
//
// Surface metrics operate on identifier strings or token sequences; the
// semantic metrics (BERTScore, VarCLR) take a trained embed.Model. All
// similarity scores lie in [0, 1] except raw Levenshtein distance, which is
// a non-negative edit count.
package metrics

import (
	"strings"
	"unicode/utf8"

	"decompstudy/internal/embed"
)

// ExactMatch returns 1 if the two identifiers are byte-identical and 0
// otherwise — the "accuracy" metric used by DIRE, DIRECT, and DIRTY.
func ExactMatch(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// levStackRow bounds the DP row length served from the stack; identifier
// pairs are far shorter, so the common case runs allocation-free.
const levStackRow = 64

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed over runes.
//
// The kernel is a two-row rolling DP with three fast paths: common prefix
// and suffix trimming (edits never touch shared ends, so the distance is
// unchanged), a byte-wise path when both operands are pure ASCII (bytes
// and runes coincide), and stack-served DP rows for operands up to
// levStackRow runes — which covers every identifier pair in the study, so
// the hot path performs zero heap allocations.
func Levenshtein(a, b string) int {
	if isASCII(a) && isASCII(b) {
		// Trim common prefix and suffix byte-wise.
		for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
			a, b = a[1:], b[1:]
		}
		for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
			a, b = a[:len(a)-1], b[:len(b)-1]
		}
		if len(a) == 0 {
			return len(b)
		}
		if len(b) == 0 {
			return len(a)
		}
		// Roll over the shorter operand to minimize the DP rows.
		if len(b) > len(a) {
			a, b = b, a
		}
		var stack [2 * (levStackRow + 1)]int
		var prev, cur []int
		if len(b) < levStackRow {
			prev, cur = stack[:len(b)+1], stack[levStackRow+1:levStackRow+len(b)+2]
		} else {
			heap := make([]int, 2*(len(b)+1))
			prev, cur = heap[:len(b)+1], heap[len(b)+1:]
		}
		for j := range prev {
			prev[j] = j
		}
		for i := 1; i <= len(a); i++ {
			cur[0] = i
			ai := a[i-1]
			for j := 1; j <= len(b); j++ {
				cost := 1
				if ai == b[j-1] {
					cost = 0
				}
				cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			}
			prev, cur = cur, prev
		}
		return prev[len(b)]
	}
	return levRunes([]rune(a), []rune(b))
}

// levRunes is the rune-path DP behind Levenshtein, with the same trimming.
func levRunes(ra, rb []rune) int {
	for len(ra) > 0 && len(rb) > 0 && ra[0] == rb[0] {
		ra, rb = ra[1:], rb[1:]
	}
	for len(ra) > 0 && len(rb) > 0 && ra[len(ra)-1] == rb[len(rb)-1] {
		ra, rb = ra[:len(ra)-1], rb[:len(rb)-1]
	}
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	var stack [2 * (levStackRow + 1)]int
	var prev, cur []int
	if len(rb) < levStackRow {
		prev, cur = stack[:len(rb)+1], stack[levStackRow+1:levStackRow+len(rb)+2]
	} else {
		heap := make([]int, 2*(len(rb)+1))
		prev, cur = heap[:len(rb)+1], heap[len(rb)+1:]
	}
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		ai := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// NormalizedLevenshtein returns the Yujian-Bo normalized edit distance in
// [0, 1]: 2·GLD / (α·(|a|+|b|) + GLD) with α = 1, where GLD is the
// generalized Levenshtein distance. Zero means identical strings.
func NormalizedLevenshtein(a, b string) float64 {
	if a == b {
		return 0
	}
	return normalizedLevFromDistance(Levenshtein(a, b), a, b)
}

// normalizedLevFromDistance finishes the Yujian-Bo normalization for a
// precomputed distance, letting the per-pair battery compute the DP once
// for both the raw and normalized views.
func normalizedLevFromDistance(d int, a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := float64(utf8.RuneCountInString(a)), float64(utf8.RuneCountInString(b))
	if la+lb == 0 {
		return 0
	}
	df := float64(d)
	return 2 * df / (la + lb + df)
}

// LevenshteinSimilarity returns 1 − NormalizedLevenshtein, a similarity in
// [0, 1].
func LevenshteinSimilarity(a, b string) float64 {
	return 1 - NormalizedLevenshtein(a, b)
}

// CharNGrams returns the set of character n-grams of s (over runes). For
// strings shorter than n the whole string is the single n-gram.
func CharNGrams(s string, n int) map[string]bool {
	out := map[string]bool{}
	r := []rune(s)
	if len(r) == 0 {
		return out
	}
	if len(r) <= n {
		out[string(r)] = true
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])] = true
	}
	return out
}

// JaccardNGrams returns the Jaccard similarity |A∩B| / |A∪B| of the
// character n-gram sets of a and b, the metric DIRECT reports. Two empty
// strings are defined to have similarity 1.
func JaccardNGrams(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	sa, sb := CharNGrams(a, n), CharNGrams(b, n)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for g := range sa {
		if sb[g] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TokenJaccard returns the Jaccard similarity of the subtoken sets of two
// identifiers ("buffer_len" vs "lenBuffer" → 1.0).
func TokenJaccard(a, b string) float64 {
	sa := map[string]bool{}
	for _, t := range embed.SplitIdentifier(a) {
		sa[t] = true
	}
	sb := map[string]bool{}
	for _, t := range embed.SplitIdentifier(b) {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JoinNames appends a list of names into the single paired string the paper
// compares with sequence metrics ("we appended all the names into paired
// strings").
func JoinNames(names []string) string {
	return strings.Join(names, " ")
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"decompstudy/internal/embed"
)

func TestExactMatch(t *testing.T) {
	if ExactMatch("klen", "klen") != 1 {
		t.Error("identical names should score 1")
	}
	if ExactMatch("klen", "index") != 0 {
		t.Error("different names should score 0")
	}
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"klen", "index", 4},
		{"size", "length", 6}, // the paper's motivating maximally-distant pair
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	if got := NormalizedLevenshtein("abc", "abc"); got != 0 {
		t.Errorf("identical: %v, want 0", got)
	}
	got := NormalizedLevenshtein("ab", "cd")
	// d=2, len sum 4: 2*2/(4+2) = 2/3.
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("disjoint: %v, want 2/3", got)
	}
	if s := LevenshteinSimilarity("ab", "cd"); math.Abs(s-1.0/3) > 1e-12 {
		t.Errorf("similarity: %v, want 1/3", s)
	}
}

func TestJaccardNGrams(t *testing.T) {
	if got := JaccardNGrams("abc", "abc", 2); got != 1 {
		t.Errorf("identical: %v, want 1", got)
	}
	if got := JaccardNGrams("", "", 2); got != 1 {
		t.Errorf("both empty: %v, want 1", got)
	}
	// "abcd" bigrams {ab,bc,cd}; "bcde" bigrams {bc,cd,de}: 2/4.
	if got := JaccardNGrams("abcd", "bcde", 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("overlap: %v, want 0.5", got)
	}
	if got := JaccardNGrams("xy", "ab", 2); got != 0 {
		t.Errorf("disjoint: %v, want 0", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("buffer_len", "lenBuffer"); got != 1 {
		t.Errorf("token reordering: %v, want 1", got)
	}
	if got := TokenJaccard("size", "length"); got != 0 {
		t.Errorf("disjoint tokens: %v, want 0", got)
	}
}

func TestBLEUIdentity(t *testing.T) {
	toks := strings.Fields("the quick brown fox jumps over the lazy dog")
	if got := BLEU(toks, toks, 4); math.Abs(got-1) > 1e-12 {
		t.Errorf("BLEU(x,x) = %v, want 1", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	if got := BLEU([]string{"a", "b"}, []string{"c", "d"}, 4); got != 0 {
		t.Errorf("disjoint BLEU = %v, want 0", got)
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := []string{"a", "b", "c", "d", "e", "f"}
	short := []string{"a", "b", "c"}
	long := []string{"a", "b", "c", "d", "e", "f"}
	sShort := BLEU(short, ref, 2)
	sLong := BLEU(long, ref, 2)
	if sShort >= sLong {
		t.Errorf("brevity penalty missing: short=%v ≥ long=%v", sShort, sLong)
	}
}

func TestBLEUEmpty(t *testing.T) {
	if got := BLEU(nil, nil, 4); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
	if got := BLEU(nil, []string{"a"}, 4); got != 0 {
		t.Errorf("empty candidate = %v, want 0", got)
	}
}

func TestBLEUClipping(t *testing.T) {
	// Candidate repeats a reference unigram; clipping must cap credit.
	cand := []string{"the", "the", "the", "the"}
	ref := []string{"the", "cat"}
	got := BLEU(cand, ref, 1)
	if math.Abs(got-0.25) > 1e-12 { // 1 clipped match / 4 candidate unigrams
		t.Errorf("clipped BLEU-1 = %v, want 0.25", got)
	}
}

func TestTokenizeCode(t *testing.T) {
	toks := TokenizeCode("if (index < 0) return 0LL;")
	want := []string{"if", "(", "index", "<", "0", ")", "return", "0LL", ";"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("tok[%d] = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestCodeBLEUIdentity(t *testing.T) {
	code := "v7 = *(_QWORD *)(8LL * index + *(_QWORD *)(a1 + 8));"
	if got := CodeBLEU(code, code, CodeBLEUWeights{}); math.Abs(got-1) > 1e-9 {
		t.Errorf("CodeBLEU(x,x) = %v, want 1", got)
	}
}

func TestCodeBLEURanksStructuralSimilarity(t *testing.T) {
	ref := "next = *(char *)(8LL * indexa + *(_QWORD *)&array->size);"
	// Same structure, renamed identifiers.
	renamed := "v7 = *(char *)(8LL * v3 + *(_QWORD *)&a1->size);"
	// Different structure entirely.
	different := "for (i = 0; i < n; i++) sum += data[i];"
	sRenamed := CodeBLEU(renamed, ref, CodeBLEUWeights{})
	sDifferent := CodeBLEU(different, ref, CodeBLEUWeights{})
	if sRenamed <= sDifferent {
		t.Errorf("structural match %v should beat different code %v", sRenamed, sDifferent)
	}
}

func TestCodeBLEUDataflowComponent(t *testing.T) {
	w := CodeBLEUWeights{Dataflow: 1}
	same := CodeBLEU("x = a + b;", "x = a + b;", w)
	if math.Abs(same-1) > 1e-12 {
		t.Errorf("identical dataflow = %v, want 1", same)
	}
	none := CodeBLEU("x = a + b;", "y = c * d;", w)
	if none != 0 {
		t.Errorf("disjoint dataflow = %v, want 0", none)
	}
	empty := CodeBLEU("return 0;", "return 1;", w)
	if empty != 1 {
		t.Errorf("no assignments on either side = %v, want 1 (vacuous agreement)", empty)
	}
}

func semModel(t *testing.T) *embed.Model {
	t.Helper()
	corpus := [][]string{
		{"buf", "size", "len", "length", "alloc"},
		{"buffer", "length", "size", "capacity", "len"},
		{"array", "size", "length", "count"},
		{"str", "len", "length", "size"},
		{"tree", "node", "left", "right"},
		{"node", "tree", "visit", "postorder"},
		{"src", "dest", "copy", "len"},
	}
	var rep [][]string
	for i := 0; i < 5; i++ {
		rep = append(rep, corpus...)
	}
	m, err := embed.Train(rep, &embed.Config{Dim: 12})
	if err != nil {
		t.Fatalf("embed.Train: %v", err)
	}
	return m
}

func TestBERTScoreSemanticOverSurface(t *testing.T) {
	m := semModel(t)
	// size vs length: zero n-gram overlap but semantically close.
	semantic, err := BERTScoreF1([]string{"size"}, []string{"length"}, m)
	if err != nil {
		t.Fatalf("BERTScoreF1: %v", err)
	}
	unrelated, err := BERTScoreF1([]string{"size"}, []string{"tree"}, m)
	if err != nil {
		t.Fatalf("BERTScoreF1: %v", err)
	}
	if semantic <= unrelated {
		t.Errorf("BERTScore(size,length)=%v should exceed BERTScore(size,tree)=%v", semantic, unrelated)
	}
	// Surface metrics see them as maximally distant — the RQ5 disconnect.
	if JaccardNGrams("size", "length", 2) != 0 {
		t.Error("Jaccard(size,length) should be 0")
	}
}

func TestBERTScoreIdentity(t *testing.T) {
	m := semModel(t)
	got, err := BERTScoreF1([]string{"size", "len"}, []string{"size", "len"}, m)
	if err != nil {
		t.Fatalf("BERTScoreF1: %v", err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("identity BERTScore = %v, want 1", got)
	}
}

func TestBERTScoreNilModel(t *testing.T) {
	if _, err := BERTScoreF1([]string{"a"}, []string{"b"}, nil); !errors.Is(err, ErrNilModel) {
		t.Fatalf("err = %v, want ErrNilModel", err)
	}
}

func TestVarCLR(t *testing.T) {
	m := semModel(t)
	self, err := VarCLR("size", "size", m)
	if err != nil {
		t.Fatalf("VarCLR: %v", err)
	}
	if math.Abs(self-1) > 1e-9 {
		t.Errorf("VarCLR(x,x) = %v, want 1", self)
	}
	sem, _ := VarCLR("size", "length", m)
	unrel, _ := VarCLR("size", "tree", m)
	if sem <= unrel {
		t.Errorf("VarCLR(size,length)=%v should exceed VarCLR(size,tree)=%v", sem, unrel)
	}
}

func TestVarCLRMean(t *testing.T) {
	m := semModel(t)
	got, err := VarCLRMean([][2]string{{"size", "size"}, {"len", "len"}}, m)
	if err != nil {
		t.Fatalf("VarCLRMean: %v", err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("mean of identical pairs = %v, want 1", got)
	}
	if _, err := VarCLRMean(nil, m); err == nil {
		t.Error("VarCLRMean(nil pairs): want error")
	}
}

func TestEvaluateFullReport(t *testing.T) {
	m := semModel(t)
	pairs := []Pair{
		{Candidate: "index", Reference: "klen"},
		{Candidate: "array", Reference: "a"},
		{Candidate: "ret", Reference: "entry"},
	}
	rep, err := Evaluate(pairs, "", "", m)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.ExactMatch != 0 {
		t.Errorf("exact = %v, want 0", rep.ExactMatch)
	}
	for name, v := range map[string]float64{
		"Jaccard": rep.Jaccard, "BLEU": rep.BLEU, "CodeBLEU": rep.CodeBLEU,
		"BERTScore": rep.BERTScoreF1, "VarCLR": rep.VarCLR,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	if rep.Levenshtein <= 0 {
		t.Errorf("mean Levenshtein = %v, want > 0", rep.Levenshtein)
	}
	// Identical pairs must dominate every similarity.
	same := []Pair{{Candidate: "size", Reference: "size"}}
	repSame, err := Evaluate(same, "", "", m)
	if err != nil {
		t.Fatalf("Evaluate(same): %v", err)
	}
	if repSame.ExactMatch != 1 || repSame.BLEU <= rep.BLEU {
		t.Errorf("identical pairs should maximize similarity: %+v", repSame)
	}
	if _, err := Evaluate(nil, "", "", m); err == nil {
		t.Error("Evaluate(no pairs): want error")
	}
}

// Property: Levenshtein is a metric — symmetry, identity, triangle
// inequality.
func TestQuickLevenshteinMetricAxioms(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 30 || len(b) > 30 || len(c) > 30 {
			return true
		}
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: all bounded similarities stay in [0, 1] and are symmetric.
func TestQuickSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		j := JaccardNGrams(a, b, 2)
		n := NormalizedLevenshtein(a, b)
		if j < 0 || j > 1 || n < 0 || n > 1 {
			return false
		}
		return math.Abs(j-JaccardNGrams(b, a, 2)) < 1e-12 &&
			math.Abs(n-NormalizedLevenshtein(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: BLEU is bounded in [0, 1] and equals 1 on identical inputs.
func TestQuickBLEUBounds(t *testing.T) {
	words := []string{"a", "b", "c", "d"}
	f := func(pattern []uint8) bool {
		if len(pattern) == 0 || len(pattern) > 20 {
			return true
		}
		toks := make([]string, len(pattern))
		for i, p := range pattern {
			toks[i] = words[int(p)%len(words)]
		}
		s := BLEU(toks, toks, 4)
		if math.Abs(s-1) > 1e-9 {
			return false
		}
		rev := make([]string, len(toks))
		for i := range toks {
			rev[i] = toks[len(toks)-1-i]
		}
		sr := BLEU(rev, toks, 4)
		return sr >= 0 && sr <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestROUGELIdentity(t *testing.T) {
	toks := strings.Fields("a b c d e")
	if got := ROUGEL(toks, toks); math.Abs(got-1) > 1e-12 {
		t.Errorf("ROUGE-L(x,x) = %v, want 1", got)
	}
}

func TestROUGELKnownValue(t *testing.T) {
	// cand: a b c d, ref: a c b d → LCS = 3 ("a b d" or "a c d").
	cand := []string{"a", "b", "c", "d"}
	ref := []string{"a", "c", "b", "d"}
	got := ROUGEL(cand, ref)
	want := 2.0 * (3.0 / 4) * (3.0 / 4) / ((3.0 / 4) + (3.0 / 4))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ROUGE-L = %v, want %v", got, want)
	}
}

func TestROUGELDisjointAndEmpty(t *testing.T) {
	if got := ROUGEL([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := ROUGEL(nil, nil); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
	if got := ROUGEL(nil, []string{"a"}); got != 0 {
		t.Errorf("empty cand = %v, want 0", got)
	}
}

func TestChrFIdentity(t *testing.T) {
	if got := ChrF("buffer_append", "buffer_append", 6); math.Abs(got-1) > 1e-9 {
		t.Errorf("chrF(x,x) = %v, want 1", got)
	}
}

func TestChrFOrdering(t *testing.T) {
	// Shared stem should beat disjoint strings.
	near := ChrF("buflen", "buffer", 4)
	far := ChrF("tree", "buffer", 4)
	if near <= far {
		t.Errorf("chrF(buflen,buffer)=%v should exceed chrF(tree,buffer)=%v", near, far)
	}
}

func TestChrFEmpty(t *testing.T) {
	if got := ChrF("", "", 6); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
	if got := ChrF("", "x", 6); got != 0 {
		t.Errorf("empty cand = %v, want 0", got)
	}
}

func TestContextWeightedSalience(t *testing.T) {
	// The variable `count` is used five times; `tmp` once. Getting the
	// high-salience name right must score better than getting the
	// low-salience one right.
	refCode := `
int f(int count, int tmp) {
  count = count + 1;
  if (count > 10) { return count; }
  return count + tmp;
}
`
	cw := &ContextWeighted{}
	goodOnSalient, err := cw.Score([]Pair{
		{Candidate: "count", Reference: "count"},
		{Candidate: "zzz", Reference: "tmp"},
	}, refCode)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	goodOnRare, err := cw.Score([]Pair{
		{Candidate: "zzz", Reference: "count"},
		{Candidate: "tmp", Reference: "tmp"},
	}, refCode)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if goodOnSalient <= goodOnRare {
		t.Errorf("salience weighting: matching the hot variable (%v) should beat matching the cold one (%v)",
			goodOnSalient, goodOnRare)
	}
}

func TestContextWeightedSemanticBlend(t *testing.T) {
	m := semModel(t)
	cw := &ContextWeighted{Model: m}
	sem, err := cw.Score([]Pair{{Candidate: "size", Reference: "length"}}, "int f(int length) { return length; }")
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	unrelated, err := cw.Score([]Pair{{Candidate: "tree", Reference: "length"}}, "int f(int length) { return length; }")
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if sem <= unrelated {
		t.Errorf("semantic blend: size↔length (%v) should beat tree↔length (%v)", sem, unrelated)
	}
}

func TestContextWeightedNoPairs(t *testing.T) {
	cw := &ContextWeighted{}
	if _, err := cw.Score(nil, "int f(void) { return 0; }"); err == nil {
		t.Error("no pairs: want error")
	}
}

func TestEvaluateExtended(t *testing.T) {
	m := semModel(t)
	pairs := []Pair{{Candidate: "index", Reference: "klen"}, {Candidate: "next", Reference: "entry"}}
	rep, err := EvaluateExtended(pairs, "", "int f(int klen) { return klen; }", m)
	if err != nil {
		t.Fatalf("EvaluateExtended: %v", err)
	}
	for name, v := range map[string]float64{
		"ROUGEL": rep.ROUGEL, "ChrF": rep.ChrF, "ContextWeighted": rep.ContextWeighted,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	// Base report embedded and populated.
	if rep.Levenshtein <= 0 {
		t.Errorf("embedded base report missing: %+v", rep.Report)
	}
}

// Property: ROUGE-L is symmetric in its F-measure form and bounded.
func TestQuickROUGELBounds(t *testing.T) {
	words := []string{"a", "b", "c"}
	f := func(x, y []uint8) bool {
		if len(x) > 15 || len(y) > 15 {
			return true
		}
		a := make([]string, len(x))
		for i, v := range x {
			a[i] = words[int(v)%3]
		}
		b := make([]string, len(y))
		for i, v := range y {
			b[i] = words[int(v)%3]
		}
		s1 := ROUGEL(a, b)
		s2 := ROUGEL(b, a)
		return s1 >= 0 && s1 <= 1 && math.Abs(s1-s2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: chrF stays in [0,1].
func TestQuickChrFBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		v := ChrF(a, b, 6)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

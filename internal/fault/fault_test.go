package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCheckNoInjectorIsNil(t *testing.T) {
	if err := Check(context.Background(), CsrcParse); err != nil {
		t.Fatalf("Check without injector = %v, want nil", err)
	}
	if err := CheckKey(context.Background(), CsrcParse, "AEEK"); err != nil {
		t.Fatalf("CheckKey without injector = %v, want nil", err)
	}
}

func TestErrorChainAndKeyMatch(t *testing.T) {
	inj := NewInjector(&Plan{Rules: []Rule{
		{Point: CsrcParse, Mode: ModeError, Key: "AEEK"},
	}}, 0)
	ctx := With(context.Background(), inj)

	if err := CheckKey(ctx, CsrcParse, "BAPL"); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := CheckKey(ctx, CompileLower, "AEEK"); err != nil {
		t.Fatalf("non-matching point fired: %v", err)
	}
	err := CheckKey(ctx, CsrcParse, "AEEK")
	if err == nil {
		t.Fatal("matching (point, key) did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("errors.Is(err, ErrInjected) = false for %v", err)
	}
	if IsTransient(err) {
		t.Errorf("non-transient fault classified transient: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != CsrcParse || fe.Key != "AEEK" {
		t.Errorf("errors.As(*Error) = %+v", fe)
	}
}

func TestKeyTravelsInContext(t *testing.T) {
	inj := NewInjector(&Plan{Rules: []Rule{
		{Point: DecompLift, Mode: ModeError, Key: "TC"},
	}}, 0)
	ctx := With(context.Background(), inj)
	if err := Check(WithKey(ctx, "AEEK"), DecompLift); err != nil {
		t.Fatalf("wrong context key fired: %v", err)
	}
	if err := Check(WithKey(ctx, "TC"), DecompLift); !errors.Is(err, ErrInjected) {
		t.Fatalf("context key TC did not fire: %v", err)
	}
}

func TestMaxHitsBoundsFiring(t *testing.T) {
	inj := NewInjector(&Plan{Rules: []Rule{
		{Point: EmbedTrain, Mode: ModeError, MaxHits: 2},
	}}, 0)
	ctx := With(context.Background(), inj)
	for i := 0; i < 2; i++ {
		if err := Check(ctx, EmbedTrain); err == nil {
			t.Fatalf("hit %d did not fire", i)
		}
	}
	if err := Check(ctx, EmbedTrain); err != nil {
		t.Fatalf("rule fired past MaxHits: %v", err)
	}
}

func TestDerivedProbabilityIsDeterministic(t *testing.T) {
	plan := &Plan{Seed: 7, Rules: []Rule{
		{Point: SurveyParticipant, Mode: ModeError, Prob: 0.3},
	}}
	keys := []string{"participant:1", "participant:2", "participant:3", "participant:4",
		"participant:5", "participant:6", "participant:7", "participant:8"}
	fire := func() []bool {
		ctx := With(context.Background(), NewInjector(plan, 0))
		out := make([]bool, len(keys))
		for i, k := range keys {
			out[i] = CheckKey(ctx, SurveyParticipant, k) != nil
		}
		return out
	}
	a, b := fire(), fire()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw for %s differs between replays", keys[i])
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(keys) {
		t.Errorf("p=0.3 over %d keys hit %d times — draw looks degenerate", len(keys), hits)
	}
	// A different seed must relocate the hit set (with 8 keys the chance of
	// an identical pattern is small but not zero; use a seed pair known to
	// differ).
	plan2 := &Plan{Seed: 8, Rules: plan.Rules}
	ctx2 := With(context.Background(), NewInjector(plan2, 0))
	same := true
	for i, k := range keys {
		if (CheckKey(ctx2, SurveyParticipant, k) != nil) != a[i] {
			same = false
		}
	}
	_ = same // seeds may coincide on tiny key sets; determinism is what matters
}

func TestTransientRetryRecoversWithinBudget(t *testing.T) {
	inj := NewInjector(&Plan{Rules: []Rule{
		{Point: MetricsEvaluate, Mode: ModeError, Transient: true, MaxHits: 1},
	}}, 4)
	m := NewManifest()
	ctx := WithManifest(With(context.Background(), inj), m)
	if err := Check(ctx, MetricsEvaluate); err != nil {
		t.Fatalf("transient fault within budget did not recover: %v", err)
	}
	if m.Retries() != 1 {
		t.Errorf("manifest retries = %d, want 1", m.Retries())
	}
	if inj.RetriesLeft() != 3 {
		t.Errorf("RetriesLeft = %d, want 3", inj.RetriesLeft())
	}
}

func TestTransientRetryBudgetExhausted(t *testing.T) {
	// Unlimited hits: the fault never clears, so the budget drains and the
	// transient error finally sticks.
	inj := NewInjector(&Plan{Rules: []Rule{
		{Point: MetricsEvaluate, Mode: ModeError, Transient: true},
	}}, 2)
	m := NewManifest()
	ctx := WithManifest(With(context.Background(), inj), m)
	err := Check(ctx, MetricsEvaluate)
	if !IsTransient(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted budget returned %v, want a transient injected fault", err)
	}
	if m.Retries() != 2 {
		t.Errorf("manifest retries = %d, want 2 (the whole budget)", m.Retries())
	}
}

func TestPanicMode(t *testing.T) {
	inj := NewInjector(&Plan{Rules: []Rule{{Point: CompileLower, Mode: ModePanic}}}, 0)
	ctx := With(context.Background(), inj)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("ModePanic did not panic")
		} else if !strings.Contains(r.(string), string(CompileLower)) {
			t.Errorf("panic %q does not name the point", r)
		}
	}()
	_ = Check(ctx, CompileLower)
}

func TestDelayMode(t *testing.T) {
	inj := NewInjector(&Plan{Rules: []Rule{
		{Point: DecompLift, Mode: ModeDelay, Delay: 5 * time.Millisecond},
	}}, 0)
	ctx := With(context.Background(), inj)
	start := time.Now()
	if err := Check(ctx, DecompLift); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("delay mode slept %v, want >= 5ms", d)
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("seed=26; csrc.parse:error,key=AEEK; survey.participant:error,p=0.25,transient,max=1; embed.train:panic; metrics.evaluate:delay,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 26 {
		t.Errorf("seed = %d", plan.Seed)
	}
	if len(plan.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(plan.Rules))
	}
	r := plan.Rules[1]
	if r.Point != SurveyParticipant || r.Prob != 0.25 || !r.Transient || r.MaxHits != 1 {
		t.Errorf("rule[1] = %+v", r)
	}
	if plan.Rules[2].Mode != ModePanic {
		t.Errorf("rule[2].Mode = %v", plan.Rules[2].Mode)
	}
	if plan.Rules[3].Mode != ModeDelay || plan.Rules[3].Delay != 2*time.Millisecond {
		t.Errorf("rule[3] = %+v", plan.Rules[3])
	}

	for _, bad := range []string{
		"nosuch.point:error",
		"csrc.parse:explode",
		"csrc.parse:error,p=2",
		"csrc.parse:error,wat=1",
		"seed=abc",
		"csrc.parse",
	} {
		if _, err := ParsePlan(bad); !errors.Is(err, ErrPlan) {
			t.Errorf("ParsePlan(%q) = %v, want ErrPlan", bad, err)
		}
	}
	// Empty plan parses to zero rules.
	plan, err = ParsePlan("")
	if err != nil || len(plan.Rules) != 0 {
		t.Errorf("empty spec: %v, %d rules", err, len(plan.Rules))
	}
}

func TestManifestReportDeterministic(t *testing.T) {
	m := NewManifest()
	m.Exclude("survey", "participant:9", errors.New("boom9"))
	m.Exclude("corpus", "TC", errors.New("boomTC"))
	m.Exclude("corpus", "AEEK", errors.New("boomA"))
	rep := m.Report()
	ia, it, is := strings.Index(rep, "AEEK"), strings.Index(rep, "TC"), strings.Index(rep, "participant:9")
	if !(ia < it && it < is) {
		t.Errorf("report not sorted by (stage, key):\n%s", rep)
	}
	if m.Empty() {
		t.Error("manifest with exclusions reports Empty")
	}
	var nilM *Manifest
	nilM.Exclude("x", "y", nil) // must not panic
	if !nilM.Empty() || nilM.Report() == "" {
		t.Error("nil manifest helpers misbehave")
	}
}

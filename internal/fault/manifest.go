package fault

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"decompstudy/internal/obs"
)

// Exclusion records one work item that failed and was removed from the run
// instead of killing it — the pipeline's analog of the paper's participant
// dropout and response-exclusion handling.
type Exclusion struct {
	// Stage is the pipeline stage that excluded the item ("corpus",
	// "survey", "metrics", "artifact").
	Stage string
	// Key identifies the item (snippet ID, participant ID, artifact name).
	Key string
	// Reason is the failure's error text.
	Reason string
}

// Manifest is the run's failure ledger: which items were excluded and why,
// plus how many transient-fault retries the run spent. One manifest travels
// in the context for the whole run; every method is safe for concurrent use
// and nil-safe, so stages record unconditionally.
type Manifest struct {
	mu         sync.Mutex
	exclusions []Exclusion
	retries    map[string]int // "point|key" → retry count
}

// NewManifest returns an empty run manifest.
func NewManifest() *Manifest {
	return &Manifest{retries: map[string]int{}}
}

// WithManifest attaches the manifest to the context (nil leaves the context
// unchanged).
func WithManifest(ctx context.Context, m *Manifest) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, manifestKey, m)
}

// ManifestFrom returns the context's manifest, or nil (whose methods are
// no-ops).
func ManifestFrom(ctx context.Context) *Manifest {
	m, _ := ctx.Value(manifestKey).(*Manifest)
	return m
}

// Exclude records one excluded work item into the context's manifest and
// bumps the live fault.excluded counter for the stage, so a /debug/metrics
// scrape shows exclusions as they happen rather than only in the end-of-run
// report.
func Exclude(ctx context.Context, stage, key string, err error) {
	ManifestFrom(ctx).Exclude(stage, key, err)
	obs.AddCountL(ctx, "fault.excluded", 1, obs.L("stage", stage))
}

// Exclude records one excluded work item.
func (m *Manifest) Exclude(stage, key string, err error) {
	if m == nil {
		return
	}
	reason := ""
	if err != nil {
		reason = err.Error()
	}
	m.mu.Lock()
	m.exclusions = append(m.exclusions, Exclusion{Stage: stage, Key: key, Reason: reason})
	m.mu.Unlock()
}

func (m *Manifest) recordRetry(pt Point, key string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.retries == nil {
		m.retries = map[string]int{}
	}
	m.retries[string(pt)+"|"+key]++
	m.mu.Unlock()
}

// Exclusions returns the recorded exclusions sorted by (stage, key) — a
// deterministic view at any worker count.
func (m *Manifest) Exclusions() []Exclusion {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := append([]Exclusion(nil), m.exclusions...)
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Reason < out[j].Reason
	})
	return out
}

// Retries returns the total transient-fault retries the run spent.
func (m *Manifest) Retries() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.retries {
		n += c
	}
	return n
}

// Empty reports whether the run recorded no exclusions and no retries.
func (m *Manifest) Empty() bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.exclusions) == 0 && len(m.retries) == 0
}

// Report renders the manifest as text: the exclusion table (sorted by
// stage, key) followed by the retry ledger.
func (m *Manifest) Report() string {
	var b strings.Builder
	b.WriteString("Run manifest\n")
	b.WriteString("============\n")
	ex := m.Exclusions()
	if len(ex) == 0 {
		b.WriteString("exclusions: none\n")
	} else {
		fmt.Fprintf(&b, "exclusions: %d\n", len(ex))
		for _, e := range ex {
			fmt.Fprintf(&b, "  %-8s %-16s %s\n", e.Stage, e.Key, e.Reason)
		}
	}
	if n := m.Retries(); n > 0 {
		fmt.Fprintf(&b, "transient retries: %d\n", n)
		m.mu.Lock()
		keys := make([]string, 0, len(m.retries))
		for k := range m.retries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %d\n", k, m.retries[k])
		}
		m.mu.Unlock()
	}
	return b.String()
}

// Package fault is the pipeline's deterministic fault-injection layer.
// Every stage boundary in the study pipeline (mini-C parsing, IR lowering,
// decompiler lifting, name recovery, embedding training and cosine scoring,
// survey administration, metric evaluation) carries a named injection point;
// a seeded fault plan decides — as a pure function of (plan seed, point,
// item key) — whether that point errors, panics, or delays for a given work
// item. Because no decision ever consults wall-clock time, scheduling, or a
// shared random stream, any run can be replayed fault-for-fault with the
// same plan, at any worker count.
//
// The layer exists to make failure paths first-class tested code: the chaos
// suite sweeps plans across every point and asserts that injected faults
// surface through the error taxonomy (never masked behind context.Canceled),
// that transient faults are retried within the per-run budget, and that
// items which genuinely fail degrade into recorded exclusions — mirroring
// how the paper's study handles participant dropout and excluded responses
// instead of aborting the analysis.
//
// With no Injector in the context, Check is a single context lookup and
// returns nil, so the instrumented hot paths cost nothing in normal runs.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"decompstudy/internal/obs"
	"decompstudy/internal/par"
)

// Point names one fault-injection seam at a pipeline stage boundary.
type Point string

// The pipeline's injection points. Every stage entry checks its point
// before doing any work; the item key (snippet ID, participant ID) travels
// in the context via WithKey so per-item rules can target one work item.
const (
	CsrcParse         Point = "csrc.parse"
	CompileLower      Point = "compile.lower"
	DecompLift        Point = "decomp.lift"
	NamerecAnnotate   Point = "namerec.annotate"
	NamerecTrain      Point = "namerec.train"
	EmbedTrain        Point = "embed.train"
	EmbedCosine       Point = "embed.cosine"
	SurveyParticipant Point = "survey.participant"
	MetricsEvaluate   Point = "metrics.evaluate"
)

// Points returns every registered injection point in pipeline order — the
// sweep axis for the chaos suite.
func Points() []Point {
	return []Point{
		CsrcParse, CompileLower, DecompLift, NamerecAnnotate, NamerecTrain,
		EmbedTrain, EmbedCosine, SurveyParticipant, MetricsEvaluate,
	}
}

// Mode is what an injected fault does at its point.
type Mode int

const (
	// ModeError makes Check return an *Error wrapping ErrInjected.
	ModeError Mode = iota
	// ModePanic makes Check panic — exercising the pipeline's panic
	// guards (par converts worker panics into errors).
	ModePanic
	// ModeDelay makes Check sleep before returning nil — exercising the
	// pipeline's order-independence under skewed completion times.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	default:
		return "error"
	}
}

// Rule arms one injection point. A rule fires when its Point matches and
// its Key (if set) equals the work item's key and its probability draw (if
// Prob > 0) hits. The draw is derived by hashing (plan seed, rule index,
// point, key) — the same item faults in every replay of the plan.
type Rule struct {
	Point Point
	Mode  Mode
	// Key restricts the rule to one work item ("" = every item).
	Key string
	// Prob injects with this derived probability per item key (0 = always).
	Prob float64
	// Delay is the ModeDelay sleep (default 1ms).
	Delay time.Duration
	// Transient classifies the fault as retryable: Check retries the
	// injection decision with backoff while the per-run budget allows,
	// so a rule bounded by MaxHits recovers instead of excluding the item.
	Transient bool
	// MaxHits bounds how many times the rule fires per item key
	// (0 = unlimited).
	MaxHits int
}

// Plan is a replayable fault schedule: a seed plus the armed rules.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// ErrInjected is the root of every injected fault's error chain;
// errors.Is(err, ErrInjected) identifies synthetic failures from the CLIs
// down to the stage that faulted.
var ErrInjected = errors.New("fault: injected fault")

// ErrTransient marks injected faults classified as retryable.
var ErrTransient = errors.New("fault: transient fault")

// Error is one injected fault, naming the point and item it fired at.
type Error struct {
	Point     Point
	Key       string
	Transient bool
}

func (e *Error) Error() string {
	kind := "injected fault"
	if e.Transient {
		kind = "injected transient fault"
	}
	if e.Key == "" {
		return fmt.Sprintf("fault: %s at %s", kind, e.Point)
	}
	return fmt.Sprintf("fault: %s at %s (key %q)", kind, e.Point, e.Key)
}

// Is makes errors.Is(err, ErrInjected) — and, for transient faults,
// errors.Is(err, ErrTransient) — hold across the wrapped chain.
func (e *Error) Is(target error) bool {
	return target == ErrInjected || (e.Transient && target == ErrTransient)
}

// IsTransient reports whether err is (or wraps) a transient-classed fault.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient)
}

// Injector evaluates a Plan. It is safe for concurrent use: hit counters
// are per (rule, key), so which items fault is a pure function of the plan
// regardless of scheduling, and the retry budget is one shared atomic.
type Injector struct {
	plan   Plan
	budget atomic.Int64 // remaining per-run retries

	mu   sync.Mutex
	hits map[string]int // (rule index, key) → times fired
}

// DefaultRetryBudget is the per-run cap on transient-fault retries when the
// caller does not set one.
const DefaultRetryBudget = 64

// NewInjector arms a plan. retryBudget caps transient retries for the whole
// run (<= 0 = DefaultRetryBudget). A nil plan yields a nil injector, which
// every entry point treats as injection-off.
func NewInjector(plan *Plan, retryBudget int) *Injector {
	if plan == nil {
		return nil
	}
	inj := &Injector{plan: *plan, hits: map[string]int{}}
	if retryBudget <= 0 {
		retryBudget = DefaultRetryBudget
	}
	inj.budget.Store(int64(retryBudget))
	return inj
}

type ctxKey int

const (
	injectorKey ctxKey = iota
	itemKey
	manifestKey
)

// With attaches the injector to the context. A nil injector returns the
// context unchanged, keeping the injection-off fast path a single Value call.
func With(ctx context.Context, inj *Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey, inj)
}

// From returns the context's injector, or nil.
func From(ctx context.Context) *Injector {
	inj, _ := ctx.Value(injectorKey).(*Injector)
	return inj
}

// WithKey tags the context with the current work item's key (snippet ID,
// participant ID), so rules with a Key match only that item. Stage entries
// below the tag inherit it.
func WithKey(ctx context.Context, key string) context.Context {
	if From(ctx) == nil {
		return ctx // no injector — the key would never be read
	}
	return context.WithValue(ctx, itemKey, key)
}

// KeyFrom returns the context's work-item key, or "".
func KeyFrom(ctx context.Context) string {
	k, _ := ctx.Value(itemKey).(string)
	return k
}

// Check evaluates the context's fault plan at the given point for the
// context's work-item key. It returns nil with no injector attached.
func Check(ctx context.Context, pt Point) error {
	inj := From(ctx)
	if inj == nil {
		return nil
	}
	return inj.check(ctx, pt, KeyFrom(ctx))
}

// CheckKey is Check with an explicit item key, for call sites where the key
// is at hand and not in the context (e.g. the survey's participant fan-out).
func CheckKey(ctx context.Context, pt Point, key string) error {
	inj := From(ctx)
	if inj == nil {
		return nil
	}
	return inj.check(ctx, pt, key)
}

// check runs one injection decision, retrying transient faults with
// backoff while the per-run budget allows. Because a transient rule is
// normally bounded by MaxHits, the re-evaluation after backoff finds the
// rule exhausted and recovers — modeling a fault that clears on retry.
func (inj *Injector) check(ctx context.Context, pt Point, key string) error {
	err := inj.eval(pt, key)
	if err != nil {
		obs.AddCountL(ctx, "fault.injected", 1, obs.L("point", string(pt)))
	}
	if err == nil || !IsTransient(err) {
		return err
	}
	for attempt := 1; ; attempt++ {
		if inj.budget.Add(-1) < 0 {
			inj.budget.Add(1) // keep the budget at a floor of zero
			return err        // budget exhausted — the transient fault sticks
		}
		ManifestFrom(ctx).recordRetry(pt, key)
		obs.AddCountL(ctx, "fault.retried", 1, obs.L("point", string(pt)))
		backoff(ctx, attempt)
		err = inj.eval(pt, key)
		if err == nil || !IsTransient(err) {
			return err
		}
	}
}

// eval runs a single pass over the plan's rules for (pt, key): delays are
// applied inline, and the first matching error/panic rule decides the
// outcome.
func (inj *Injector) eval(pt Point, key string) error {
	for ri := range inj.plan.Rules {
		r := &inj.plan.Rules[ri]
		if r.Point != pt {
			continue
		}
		if r.Key != "" && r.Key != key {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !derivedHit(inj.plan.Seed, ri, pt, key, r.Prob) {
			continue
		}
		if !inj.takeHit(ri, key, r.MaxHits) {
			continue
		}
		switch r.Mode {
		case ModePanic:
			panic(fmt.Sprintf("fault: injected panic at %s (key %q)", pt, key))
		case ModeDelay:
			d := r.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
			// A delay perturbs timing, not outcome: keep scanning.
		default:
			return &Error{Point: pt, Key: key, Transient: r.Transient}
		}
	}
	return nil
}

// takeHit consumes one firing of rule ri for the given key, honoring the
// rule's per-key MaxHits bound.
func (inj *Injector) takeHit(ri int, key string, max int) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	k := fmt.Sprintf("%d|%s", ri, key)
	if max > 0 && inj.hits[k] >= max {
		return false
	}
	inj.hits[k]++
	return true
}

// RetriesLeft returns the remaining per-run transient-retry budget.
func (inj *Injector) RetriesLeft() int {
	if inj == nil {
		return 0
	}
	if n := inj.budget.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// derivedHit is the deterministic probability draw: a uniform in [0, 1)
// derived from (seed, rule index, point, key) through par.SplitSeed, so the
// same item hits in every replay and distinct items draw independently.
func derivedHit(seed int64, ri int, pt Point, key string, p float64) bool {
	h := par.SplitSeed(seed, fmt.Sprintf("%d|%s|%s", ri, pt, key))
	u := float64(uint64(h)>>11) / float64(1<<53)
	return u < p
}

// backoff sleeps exponentially (1, 2, 4, 8 ms, capped) between transient
// retries, returning early if the context is cancelled.
func backoff(ctx context.Context, attempt int) {
	if attempt > 3 {
		attempt = 3
	}
	d := time.Millisecond << attempt >> 1
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

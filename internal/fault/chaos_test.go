// Chaos suite: sweeps fault plans across every injection point of the full
// study pipeline and asserts the failure-path contracts — an empty plan
// changes nothing, injected faults surface through the error taxonomy
// (never masked behind context.Canceled), per-item faults degrade into
// recorded exclusions, transient faults recover within the retry budget,
// and nothing leaks goroutines. Run with -race; scripts/check.sh chaos and
// `make chaos` do.
package fault_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"decompstudy/internal/core"
	"decompstudy/internal/embed"
	"decompstudy/internal/experiments"
	"decompstudy/internal/fault"
	"decompstudy/internal/namerec"
	"decompstudy/internal/par"
	"decompstudy/internal/survey"
)

// leakCheck fails the test if more goroutines are alive at cleanup (after a
// grace period) than at the start — a hand-rolled stand-in for goleak.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// chaosRun builds a study under the given plan (nil = injection off) and
// renders every artifact. It returns the runner, the run's manifest, the
// rendered output, and the pipeline error (output is "" on error).
func chaosRun(t *testing.T, plan *fault.Plan, jobs int) (*experiments.Runner, *fault.Manifest, string, error) {
	t.Helper()
	man := fault.NewManifest()
	ctx := fault.WithManifest(context.Background(), man)
	ctx = fault.With(ctx, fault.NewInjector(plan, 0))
	r, err := experiments.NewRunnerCtx(ctx, &core.Config{Jobs: jobs})
	if err != nil {
		return nil, man, "", err
	}
	out, err := r.All()
	if err != nil {
		return r, man, "", err
	}
	return r, man, out + "\n===CSV===\n" + r.Study.Dataset.CSV(), nil
}

// TestChaosEmptyPlanByteIdentity: arming the injector with an empty plan
// must not change a single output byte relative to no injector at all, at
// any worker count, and the manifest must stay empty.
func TestChaosEmptyPlanByteIdentity(t *testing.T) {
	leakCheck(t)
	_, _, baseline, err := chaosRun(t, nil, 1)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	for _, jobs := range []int{1, 4} {
		_, man, out, err := chaosRun(t, &fault.Plan{Seed: 26}, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: empty-plan run failed: %v", jobs, err)
		}
		if out != baseline {
			t.Errorf("jobs=%d: empty-plan output differs from baseline (len %d vs %d)",
				jobs, len(out), len(baseline))
		}
		if !man.Empty() {
			t.Errorf("jobs=%d: empty plan produced a non-empty manifest:\n%s", jobs, man.Report())
		}
	}
}

// TestChaosPointSweep injects an error at every registered point and checks
// the expected outcome: per-item faults degrade to recorded exclusions,
// shared-stage faults fail the pipeline through the error taxonomy, and no
// injected fault is ever reported as context.Canceled.
func TestChaosPointSweep(t *testing.T) {
	leakCheck(t)
	type expectation struct {
		key string // rule key ("" = every item)
		// fatal: NewRunnerCtx must fail wrapping these sentinels.
		fatal     bool
		sentinels []error
		// stage/exclKey: on a degraded run, the manifest must hold this
		// exclusion and the study must still be analyzable.
		stage, exclKey string
	}
	cases := map[fault.Point]expectation{
		fault.CsrcParse:         {key: "AEEK", stage: "corpus", exclKey: "AEEK"},
		fault.CompileLower:      {key: "AEEK", stage: "corpus", exclKey: "AEEK"},
		fault.DecompLift:        {key: "AEEK", stage: "corpus", exclKey: "AEEK"},
		fault.NamerecAnnotate:   {key: "AEEK", stage: "corpus", exclKey: "AEEK"},
		fault.NamerecTrain:      {fatal: true, sentinels: []error{core.ErrPipeline, namerec.ErrTrain}},
		fault.EmbedTrain:        {fatal: true, sentinels: []error{core.ErrPipeline, embed.ErrTrain}},
		fault.EmbedCosine:       {key: "AEEK", stage: "metrics", exclKey: "AEEK"},
		fault.MetricsEvaluate:   {key: "AEEK", stage: "metrics", exclKey: "AEEK"},
		fault.SurveyParticipant: {key: "participant:7", stage: "survey", exclKey: "participant:7"},
	}
	for _, pt := range fault.Points() {
		exp, ok := cases[pt]
		if !ok {
			t.Fatalf("no expectation for point %s — update the sweep", pt)
		}
		t.Run(string(pt), func(t *testing.T) {
			plan := &fault.Plan{Rules: []fault.Rule{
				{Point: pt, Mode: fault.ModeError, Key: exp.key},
			}}
			r, man, _, err := chaosRun(t, plan, 4)
			if err != nil && errors.Is(err, context.Canceled) {
				t.Fatalf("injected fault surfaced as context.Canceled: %v", err)
			}
			if exp.fatal {
				if err == nil {
					t.Fatal("shared-stage fault did not fail the pipeline")
				}
				if !errors.Is(err, fault.ErrInjected) {
					t.Errorf("errors.Is(err, fault.ErrInjected) = false for %v", err)
				}
				for _, s := range exp.sentinels {
					if !errors.Is(err, s) {
						t.Errorf("errors.Is(err, %v) = false for %v", s, err)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("per-item fault killed the run: %v", err)
			}
			found := false
			for _, ex := range man.Exclusions() {
				if ex.Stage == exp.stage && ex.Key == exp.exclKey {
					found = true
					if !strings.Contains(ex.Reason, "injected") {
						t.Errorf("exclusion reason does not name the injected fault: %s", ex.Reason)
					}
				}
			}
			if !found {
				t.Fatalf("no (%s, %s) exclusion in manifest:\n%s", exp.stage, exp.exclKey, man.Report())
			}
			// The degraded study still answers the research questions.
			if _, aerr := r.Study.AnalyzeCorrectnessCtx(context.Background()); aerr != nil {
				t.Errorf("degraded study cannot run RQ1: %v", aerr)
			}
			switch exp.stage {
			case "corpus":
				if _, ok := r.Study.PreparedByID(exp.exclKey); ok {
					t.Error("excluded snippet still in Prepared")
				}
			case "metrics":
				if _, ok := r.Study.MetricReports[exp.exclKey]; ok {
					t.Error("excluded snippet still has a metric report")
				}
			case "survey":
				if got := fmt.Sprint(r.Study.Dataset.DroppedIDs); got != "[7]" {
					t.Errorf("DroppedIDs = %s, want [7]", got)
				}
			}
		})
	}
}

// TestChaosPanicRecovered: a panic-mode fault inside the corpus fan-out is
// recovered by par's worker guards and degrades into an exclusion like any
// other per-item failure.
func TestChaosPanicRecovered(t *testing.T) {
	leakCheck(t)
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.CsrcParse, Mode: fault.ModePanic, Key: "AEEK"},
	}}
	r, man, _, err := chaosRun(t, plan, 4)
	if err != nil {
		t.Fatalf("injected panic killed the run: %v", err)
	}
	if _, ok := r.Study.PreparedByID("AEEK"); ok {
		t.Error("panicked snippet still in Prepared")
	}
	// Besides the (corpus, AEEK) exclusion, All() records one artifact
	// exclusion per AEEK-dependent figure — that's the degradation working,
	// not noise.
	var corpusExcl *fault.Exclusion
	for _, ex := range man.Exclusions() {
		ex := ex
		if ex.Stage == "corpus" && ex.Key == "AEEK" {
			corpusExcl = &ex
		} else if ex.Stage != "artifact" {
			t.Errorf("unexpected exclusion %+v", ex)
		}
	}
	if corpusExcl == nil {
		t.Fatalf("no (corpus, AEEK) exclusion in manifest:\n%s", man.Report())
	}
	if !strings.Contains(corpusExcl.Reason, "panic") {
		t.Errorf("exclusion reason does not mention the panic: %s", corpusExcl.Reason)
	}
}

// TestChaosTransientRecoversByteIdentical: a MaxHits-bounded transient
// fault is retried within the budget and the run recovers to the exact
// baseline bytes, with the retries ledgered and nothing excluded.
func TestChaosTransientRecoversByteIdentical(t *testing.T) {
	leakCheck(t)
	_, _, baseline, err := chaosRun(t, nil, 1)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.MetricsEvaluate, Mode: fault.ModeError, Transient: true, MaxHits: 1},
	}}
	_, man, out, err := chaosRun(t, plan, 2)
	if err != nil {
		t.Fatalf("transient run failed: %v", err)
	}
	if out != baseline {
		t.Error("transient-recovered output differs from baseline")
	}
	if len(man.Exclusions()) != 0 {
		t.Errorf("transient recovery still excluded items:\n%s", man.Report())
	}
	if man.Retries() == 0 {
		t.Error("no retries ledgered for a transient fault")
	}
}

// TestChaosDelayByteIdentical: delay injection perturbs completion order
// but must not change a byte of output — the determinism contract of the
// parallel fan-outs under scheduling skew.
func TestChaosDelayByteIdentical(t *testing.T) {
	leakCheck(t)
	_, _, baseline, err := chaosRun(t, nil, 1)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.DecompLift, Mode: fault.ModeDelay, Delay: 2 * time.Millisecond},
		{Point: fault.MetricsEvaluate, Mode: fault.ModeDelay, Delay: time.Millisecond},
	}}
	_, man, out, err := chaosRun(t, plan, 4)
	if err != nil {
		t.Fatalf("delay run failed: %v", err)
	}
	if out != baseline {
		t.Error("delay-perturbed output differs from baseline")
	}
	if !man.Empty() {
		t.Errorf("delay injection dirtied the manifest:\n%s", man.Report())
	}
}

// TestChaosSurveyTotalLossIsFatal: when every participant fails, graceful
// degradation correctly gives up — the error names the participant stage
// and the injected fault, not a cancellation.
func TestChaosSurveyTotalLossIsFatal(t *testing.T) {
	leakCheck(t)
	man := fault.NewManifest()
	ctx := fault.WithManifest(context.Background(), man)
	ctx = fault.With(ctx, fault.NewInjector(&fault.Plan{Rules: []fault.Rule{
		{Point: fault.SurveyParticipant, Mode: fault.ModeError},
	}}, 0))
	_, err := survey.RunCtx(par.WithJobs(ctx, 4), &survey.Config{Seed: 26})
	if err == nil {
		t.Fatal("total participant loss did not fail the run")
	}
	for _, s := range []error{survey.ErrParticipant, fault.ErrInjected} {
		if !errors.Is(err, s) {
			t.Errorf("errors.Is(err, %v) = false for %v", s, err)
		}
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("total loss reported as cancellation: %v", err)
	}
}

// TestChaosProbabilisticSweepReplays: a derived-probability participant
// plan drops the identical set of participants at every worker count — the
// decisions are a pure function of the plan, not of scheduling.
func TestChaosProbabilisticSweepReplays(t *testing.T) {
	leakCheck(t)
	drops := func(jobs int) string {
		man := fault.NewManifest()
		ctx := fault.WithManifest(context.Background(), man)
		ctx = fault.With(ctx, fault.NewInjector(&fault.Plan{Seed: 3, Rules: []fault.Rule{
			{Point: fault.SurveyParticipant, Mode: fault.ModeError, Prob: 0.1},
		}}, 0))
		ds, err := survey.RunCtx(par.WithJobs(ctx, jobs), &survey.Config{Seed: 26})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		ids := append([]int(nil), ds.DroppedIDs...)
		sort.Ints(ids)
		return fmt.Sprint(ids)
	}
	base := drops(1)
	if base == "[]" {
		t.Fatal("p=0.1 dropped nobody — plan seed needs adjusting")
	}
	for _, jobs := range []int{2, 8} {
		if got := drops(jobs); got != base {
			t.Errorf("jobs=%d: dropped %s, want %s", jobs, got, base)
		}
	}
}

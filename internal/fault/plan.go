package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan parses the CLI fault-plan DSL into a Plan. The grammar is a
// semicolon-separated rule list; each rule is POINT:MODE followed by
// comma-separated options, and a bare "seed=N" entry sets the plan seed:
//
//	seed=26; csrc.parse:error,key=AEEK; survey.participant:error,p=0.1,transient,max=1
//
// Modes: error, panic, delay. Options: key=K (exact item-key match),
// p=F (derived probability in (0,1]), delay=DUR (ModeDelay sleep),
// transient (retry-classed), max=N (per-key firing bound).
// An empty spec yields an empty plan (injection armed, nothing fires).
func ParsePlan(spec string) (*Plan, error) {
	plan := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad plan seed %q: %w", v, ErrPlan)
			}
			plan.Seed = seed
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		plan.Rules = append(plan.Rules, r)
	}
	return plan, nil
}

// ErrPlan is returned for malformed fault-plan specs.
var ErrPlan = fmt.Errorf("fault: invalid plan")

func parseRule(part string) (Rule, error) {
	fields := strings.Split(part, ",")
	head := strings.SplitN(strings.TrimSpace(fields[0]), ":", 2)
	if len(head) != 2 {
		return Rule{}, fmt.Errorf("fault: rule %q is not POINT:MODE: %w", part, ErrPlan)
	}
	pt := Point(strings.TrimSpace(head[0]))
	if !validPoint(pt) {
		return Rule{}, fmt.Errorf("fault: unknown point %q (valid: %s): %w", head[0], pointNames(), ErrPlan)
	}
	r := Rule{Point: pt}
	switch mode := strings.TrimSpace(head[1]); mode {
	case "error":
		r.Mode = ModeError
	case "panic":
		r.Mode = ModePanic
	case "delay":
		r.Mode = ModeDelay
	default:
		return Rule{}, fmt.Errorf("fault: unknown mode %q (valid: error, panic, delay): %w", mode, ErrPlan)
	}
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		switch {
		case f == "transient":
			r.Transient = true
		case strings.HasPrefix(f, "key="):
			r.Key = strings.TrimPrefix(f, "key=")
		case strings.HasPrefix(f, "p="):
			p, err := strconv.ParseFloat(strings.TrimPrefix(f, "p="), 64)
			if err != nil || p <= 0 || p > 1 {
				return Rule{}, fmt.Errorf("fault: bad probability %q (want (0,1]): %w", f, ErrPlan)
			}
			r.Prob = p
		case strings.HasPrefix(f, "delay="):
			d, err := time.ParseDuration(strings.TrimPrefix(f, "delay="))
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("fault: bad delay %q: %w", f, ErrPlan)
			}
			r.Delay = d
		case strings.HasPrefix(f, "max="):
			n, err := strconv.Atoi(strings.TrimPrefix(f, "max="))
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("fault: bad max %q: %w", f, ErrPlan)
			}
			r.MaxHits = n
		default:
			return Rule{}, fmt.Errorf("fault: unknown option %q in rule %q: %w", f, part, ErrPlan)
		}
	}
	return r, nil
}

func validPoint(pt Point) bool {
	for _, p := range Points() {
		if p == pt {
			return true
		}
	}
	return false
}

func pointNames() string {
	pts := Points()
	names := make([]string, len(pts))
	for i, p := range pts {
		names[i] = string(p)
	}
	return strings.Join(names, ", ")
}

package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, nil)
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if !res.Converged {
		t.Errorf("did not converge in %d iterations", res.Iterations)
	}
	if math.Abs(res.X[0]-3) > 1e-5 || math.Abs(res.X[1]+1) > 1e-5 {
		t.Errorf("min at %v, want (3, -1)", res.X)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, &NelderMeadConfig{MaxIter: 5000})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Errorf("min at %v (f=%v), want (1, 1)", res.X, res.F)
	}
}

func TestNelderMeadHandlesInfeasibleRegion(t *testing.T) {
	// Objective is +Inf for x < 0; minimum at x = 2 within feasible region.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.Inf(1)
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res, err := NelderMead(f, []float64{5}, nil)
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-5 {
		t.Errorf("min at %v, want 2", res.X[0])
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, nil); err == nil {
		t.Fatal("empty start: want error")
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.5) * (x - 1.5) }
	x, fx, err := GoldenSection(f, -10, 10, 1e-9)
	if err != nil {
		t.Fatalf("GoldenSection: %v", err)
	}
	if math.Abs(x-1.5) > 1e-6 {
		t.Errorf("min at %v, want 1.5", x)
	}
	if fx > 1e-10 {
		t.Errorf("f(min) = %v, want ~0", fx)
	}
}

func TestGoldenSectionBadInterval(t *testing.T) {
	if _, _, err := GoldenSection(math.Sin, 3, 1, 1e-6); err == nil {
		t.Fatal("inverted interval: want error")
	}
}

func TestGradient(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[0]*x[1] }
	g := Gradient(f, []float64{2, 1}, 0)
	// df/dx0 = 2x0 + 3x1 = 7; df/dx1 = 3x0 = 6.
	if math.Abs(g[0]-7) > 1e-5 || math.Abs(g[1]-6) > 1e-5 {
		t.Errorf("gradient = %v, want [7 6]", g)
	}
}

func TestHessian(t *testing.T) {
	f := func(x []float64) float64 { return 2*x[0]*x[0] + 5*x[0]*x[1] + 3*x[1]*x[1] }
	h := Hessian(f, []float64{0.3, -0.7}, 0)
	want := [][]float64{{4, 5}, {5, 6}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(h[i][j]-want[i][j]) > 1e-3 {
				t.Errorf("H[%d][%d] = %v, want %v", i, j, h[i][j], want[i][j])
			}
		}
	}
}

// Property: Nelder-Mead finds the vertex of a random positive-definite
// quadratic in 2D.
func TestQuickNelderMeadQuadratics(t *testing.T) {
	f := func(cx, cy float64, seedA uint8) bool {
		// Keep centers in a modest range.
		cx = math.Mod(cx, 5)
		cy = math.Mod(cy, 5)
		if math.IsNaN(cx) || math.IsNaN(cy) {
			return true
		}
		a := 1 + float64(seedA%7) // curvature in [1, 7]
		obj := func(x []float64) float64 {
			return a*(x[0]-cx)*(x[0]-cx) + (x[1]-cy)*(x[1]-cy)
		}
		res, err := NelderMead(obj, []float64{0, 0}, &NelderMeadConfig{MaxIter: 3000})
		if err != nil {
			return false
		}
		return math.Abs(res.X[0]-cx) < 1e-4 && math.Abs(res.X[1]-cy) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

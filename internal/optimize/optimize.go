// Package optimize provides derivative-free and quasi-Newton optimizers used
// to fit the mixed-effects models in this project: Nelder-Mead simplex
// minimization for low-dimensional variance-parameter searches,
// golden-section search for one-dimensional profiles, and central-difference
// numerical gradients/Hessians for Wald standard errors.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoProgress is returned when an optimizer cannot improve the objective
// beyond its tolerance within the iteration budget.
var ErrNoProgress = errors.New("optimize: no progress within iteration budget")

// Objective is a function to be minimized.
type Objective func(x []float64) float64

// Result reports the outcome of a minimization.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of iterations performed.
	Iterations int
	// Converged reports whether the tolerance was met before the budget ran
	// out.
	Converged bool
}

// NelderMeadConfig controls the simplex search.
type NelderMeadConfig struct {
	// MaxIter bounds the number of simplex iterations. Zero means 1000.
	MaxIter int
	// TolF is the convergence tolerance on the spread of objective values
	// across the simplex. Zero means 1e-10.
	TolF float64
	// TolX is the convergence tolerance on the simplex diameter. Zero means
	// 1e-8.
	TolX float64
	// Step is the initial simplex edge length. Zero means 0.5.
	Step float64
}

func (c *NelderMeadConfig) defaults() NelderMeadConfig {
	out := NelderMeadConfig{MaxIter: 1000, TolF: 1e-10, TolX: 1e-8, Step: 0.5}
	if c == nil {
		return out
	}
	if c.MaxIter > 0 {
		out.MaxIter = c.MaxIter
	}
	if c.TolF > 0 {
		out.TolF = c.TolF
	}
	if c.TolX > 0 {
		out.TolX = c.TolX
	}
	if c.Step > 0 {
		out.Step = c.Step
	}
	return out
}

type vertex struct {
	x []float64
	f float64
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead simplex
// method with standard reflection/expansion/contraction/shrink coefficients.
// Non-finite objective values are treated as +Inf, so the search simply
// avoids infeasible regions.
func NelderMead(f Objective, x0 []float64, cfg *NelderMeadConfig) (Result, error) {
	if len(x0) == 0 {
		return Result{}, fmt.Errorf("optimize: empty starting point")
	}
	c := cfg.defaults()
	n := len(x0)
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build initial simplex.
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{x: base, f: eval(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := c.Step
		if x[i] != 0 {
			step = c.Step * math.Abs(x[i])
		}
		x[i] += step
		simplex[i+1] = vertex{x: x, f: eval(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	var iter int
	for iter = 0; iter < c.MaxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		best, worst := simplex[0], simplex[n]

		// Convergence tests.
		fSpread := math.Abs(worst.f - best.f)
		xSpread := 0.0
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(simplex[i].x[j] - simplex[0].x[j]); d > xSpread {
					xSpread = d
				}
			}
		}
		if fSpread < c.TolF && xSpread < c.TolX {
			return Result{X: best.x, F: best.f, Iterations: iter, Converged: true}, nil
		}

		// Centroid of all but worst.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}

		lerp := func(t float64) []float64 {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = centroid[j] + t*(centroid[j]-worst.x[j])
			}
			return x
		}

		reflected := lerp(alpha)
		fr := eval(reflected)
		switch {
		case fr < best.f:
			expanded := lerp(gamma)
			if fe := eval(expanded); fe < fr {
				simplex[n] = vertex{x: expanded, f: fe}
			} else {
				simplex[n] = vertex{x: reflected, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: reflected, f: fr}
		default:
			contracted := lerp(-rho)
			if fc := eval(contracted); fc < worst.f {
				simplex[n] = vertex{x: contracted, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{X: simplex[0].x, F: simplex[0].f, Iterations: iter, Converged: false}, nil
}

// GoldenSection minimizes a one-dimensional function on [a, b] to within tol.
func GoldenSection(f func(float64) float64, a, b, tol float64) (x, fx float64, err error) {
	if b <= a {
		return 0, 0, fmt.Errorf("optimize: golden section needs a < b, got [%g, %g]", a, b)
	}
	if tol <= 0 {
		tol = 1e-8
	}
	const invPhi = 0.6180339887498949
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for i := 0; i < 500 && (b-a) > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x), nil
}

// Gradient estimates the gradient of f at x with central differences.
func Gradient(f Objective, x []float64, h float64) []float64 {
	if h <= 0 {
		h = 1e-6
	}
	g := make([]float64, len(x))
	xp := append([]float64(nil), x...)
	for i := range x {
		step := h * (1 + math.Abs(x[i]))
		xp[i] = x[i] + step
		fp := f(xp)
		xp[i] = x[i] - step
		fm := f(xp)
		xp[i] = x[i]
		g[i] = (fp - fm) / (2 * step)
	}
	return g
}

// Hessian estimates the Hessian of f at x with central differences. The
// result is symmetrized.
func Hessian(f Objective, x []float64, h float64) [][]float64 {
	if h <= 0 {
		h = 1e-4
	}
	n := len(x)
	hess := make([][]float64, n)
	for i := range hess {
		hess[i] = make([]float64, n)
	}
	f0 := f(x)
	xp := append([]float64(nil), x...)
	steps := make([]float64, n)
	for i := range x {
		steps[i] = h * (1 + math.Abs(x[i]))
	}
	for i := 0; i < n; i++ {
		// Diagonal: (f(x+h) - 2f(x) + f(x-h)) / h².
		xp[i] = x[i] + steps[i]
		fp := f(xp)
		xp[i] = x[i] - steps[i]
		fm := f(xp)
		xp[i] = x[i]
		hess[i][i] = (fp - 2*f0 + fm) / (steps[i] * steps[i])
		for j := i + 1; j < n; j++ {
			xp[i], xp[j] = x[i]+steps[i], x[j]+steps[j]
			fpp := f(xp)
			xp[j] = x[j] - steps[j]
			fpm := f(xp)
			xp[i] = x[i] - steps[i]
			fmm := f(xp)
			xp[j] = x[j] + steps[j]
			fmp := f(xp)
			xp[i], xp[j] = x[i], x[j]
			v := (fpp - fpm - fmp + fmm) / (4 * steps[i] * steps[j])
			hess[i][j], hess[j][i] = v, v
		}
	}
	return hess
}

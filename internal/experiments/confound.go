package experiments

import (
	"fmt"
	"strings"

	"decompstudy/internal/corpus"
	"decompstudy/internal/csrc"
	"decompstudy/internal/degpt"
	"decompstudy/internal/embed"
	"decompstudy/internal/metrics"
	"decompstudy/internal/namerec"
	"decompstudy/internal/report"
)

// ConfoundComparison demonstrates why the paper excluded deGPT-style tools
// from its experiment (§VI): even with the *same names as DIRTY*, deGPT's
// structure simplification and comment generation move the code-level
// metrics (codeBLEU), so any comprehension difference could not be
// attributed to names and types. The table contrasts, per snippet:
//
//	names-only   — DIRTY's renaming applied to the raw decompilation,
//	deGPT-full   — the same renaming plus simplification and comments.
//
// Name-level metrics are identical between the rows by construction;
// code-level metrics differ — the confound, quantified.
func ConfoundComparison() (string, error) {
	ctxs, err := corpus.EmbeddingContexts()
	if err != nil {
		return "", err
	}
	model, err := embed.Train(ctxs, &embed.Config{Dim: 24})
	if err != nil {
		return "", err
	}
	tbl := &report.Table{
		Title:   "Confound check: names-only (DIRTY) vs full enrichment (deGPT analog)",
		Columns: []string{"Snippet", "Variant", "BLEU(names)", "VarCLR", "codeBLEU", "Lines"},
	}
	var maxShift float64
	for _, s := range corpus.Snippets() {
		p, err := corpus.Prepare(s)
		if err != nil {
			return "", err
		}
		pairs := make([]metrics.Pair, 0, len(p.Dirty.Renames))
		for _, r := range p.Dirty.Renames {
			pairs = append(pairs, metrics.Pair{Candidate: r.NewName, Reference: r.OrigName})
		}

		// Row 1: DIRTY names on the unmodified decompilation.
		dirtyRep, err := metrics.Evaluate(pairs, p.Dirty.Source(), p.OrigSource, model)
		if err != nil {
			return "", err
		}

		// Row 2: identical names, but run through the deGPT pipeline.
		// Reuse the paper-faithful names by annotating with the same
		// overrides, then enriching.
		an := &namerec.Annotator{Opts: namerec.Options{
			Overrides:  s.DirtyOverrides,
			SwapParams: s.SwapParams,
		}}
		annotated, err := an.Annotate(p.HexRays)
		if err != nil {
			return "", err
		}
		enriched := degpt.CommentFunction(degpt.SimplifyFunction(annotated.Pseudo))
		enrichedSrc := csrc.PrintFunction(enriched, nil)
		degptRep, err := metrics.Evaluate(pairs, enrichedSrc, p.OrigSource, model)
		if err != nil {
			return "", err
		}

		tbl.Rows = append(tbl.Rows, []string{
			s.ID, "names-only",
			fmt.Sprintf("%.3f", dirtyRep.BLEU),
			fmt.Sprintf("%.3f", dirtyRep.VarCLR),
			fmt.Sprintf("%.3f", dirtyRep.CodeBLEU),
			fmt.Sprintf("%d", strings.Count(p.Dirty.Source(), "\n")),
		})
		tbl.Rows = append(tbl.Rows, []string{
			"", "deGPT-full",
			fmt.Sprintf("%.3f", degptRep.BLEU),
			fmt.Sprintf("%.3f", degptRep.VarCLR),
			fmt.Sprintf("%.3f", degptRep.CodeBLEU),
			fmt.Sprintf("%d", strings.Count(enrichedSrc, "\n")),
		})
		if shift := abs(dirtyRep.CodeBLEU - degptRep.CodeBLEU); shift > maxShift {
			maxShift = shift
		}
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, `
Name-level metrics (BLEU over names, VarCLR) are identical across each
pair of rows — the names ARE the same. codeBLEU shifts by up to %.3f and
the line counts grow: structural enrichment changes what participants
read. A comprehension study of deGPT therefore cannot attribute effects
to names and types, which is exactly why the paper evaluated DIRTY alone.
`, maxShift)
	return b.String(), nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

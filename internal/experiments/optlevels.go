package experiments

import (
	"context"
	"fmt"
	"strings"

	"decompstudy/internal/compile/opt"
	"decompstudy/internal/core"
	"decompstudy/internal/corpus"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/par"
	"decompstudy/internal/survey"
)

// OptLevelResult summarizes one optimization level as a study dimension:
// how much IR the optimizer deleted, how many annotations survived the
// deletion, and what the survey's treatment effect looks like once the
// surviving annotations are all participants get to see.
type OptLevelResult struct {
	Level opt.Level
	// Instrs is the corpus-wide IR instruction count at this level.
	Instrs int
	// ShrinkPct is the instruction-count reduction relative to -O0.
	ShrinkPct float64
	// Survival is the fraction of -O0 annotation renames still present on
	// the optimized decompilation (optimized-away variables carry no
	// annotation).
	Survival float64
	// Ablation carries the behavioral outcomes of the scaled study run.
	Ablation AblationResult
}

// OptLevels renders the optimization-level sweep under the runner's
// context (shared model store and telemetry).
func (r *Runner) OptLevels(seed int64) (string, []OptLevelResult, error) {
	return OptLevelsCtx(r.obsCtx(), seed)
}

// OptLevels sweeps the optimization level across the whole study: the
// corpus is re-prepared at -O0/-O1/-O2, annotation survival is measured
// against the -O0 decompilation, and a full study runs per level with
// every question's treatment effect attenuated by that snippet's survival
// fraction — an annotation on a deleted variable can neither help nor
// mislead. The rendered table puts IR shrink, annotation survival, and
// the resulting treatment coefficients side by side.
func OptLevels(seed int64) (string, []OptLevelResult, error) {
	return OptLevelsCtx(context.Background(), seed)
}

// OptLevelsCtx is OptLevels as a batched multi-run. The corpus is prepared
// once per level (the -O0 preparation doubles as the survival baseline and
// the -O0 cell's corpus, so it is never prepared twice), and the trained
// models are resolved through a shared content-addressed store: training
// inputs don't depend on the optimization level, so all three studies run
// off ONE embedding train and ONE recovery train instead of three of each.
// Levels fan out across the context's worker budget; results are collected
// in level order, byte-identical to the sequential sweep this replaced.
func OptLevelsCtx(ctx context.Context, seed int64) (string, []OptLevelResult, error) {
	if seed == 0 {
		seed = 26 // the library-default study seed (core.Config)
	}
	if modelstore.From(ctx) == nil {
		ctx = modelstore.With(ctx, modelstore.New())
	}

	countInstrs := func(ps []*corpus.Prepared) int {
		n := 0
		for _, p := range ps {
			for _, b := range p.IR.Blocks {
				n += len(b.Instrs)
			}
		}
		return n
	}
	countRenames := func(ps []*corpus.Prepared) map[string]int {
		out := make(map[string]int, len(ps))
		for _, p := range ps {
			out[p.Snippet.ID] = len(p.Dirty.Renames)
		}
		return out
	}

	base, err := corpus.PrepareAllCtx(ctx)
	if err != nil {
		return "", nil, fmt.Errorf("experiments: optlevels -O0 corpus: %w", err)
	}
	baseInstrs := countInstrs(base)
	baseRenames := countRenames(base)

	results, err := par.Map(ctx, par.JobsFrom(ctx), []opt.Level{opt.O0, opt.O1, opt.O2},
		func(ctx context.Context, _ int, level opt.Level) (OptLevelResult, error) {
			ps := base // -O0 reuses the baseline preparation
			if level != opt.O0 {
				var err error
				ps, err = corpus.PrepareAllOptCtx(ctx, level)
				if err != nil {
					return OptLevelResult{}, fmt.Errorf("experiments: optlevels %s corpus: %w", level, err)
				}
			}
			r := OptLevelResult{Level: level, Instrs: countInstrs(ps), Survival: 1}
			if baseInstrs > 0 {
				r.ShrinkPct = 100 * float64(baseInstrs-r.Instrs) / float64(baseInstrs)
			}

			// Per-snippet annotation survival, and its corpus-wide aggregate.
			scale := make(map[string]float64, len(ps))
			kept, total := 0, 0
			for _, p := range ps {
				b := baseRenames[p.Snippet.ID]
				n := len(p.Dirty.Renames)
				if n > b {
					n = b // new scratch temps never count as surviving annotations
				}
				f := 1.0
				if b > 0 {
					f = float64(n) / float64(b)
				}
				scale[p.Snippet.ID] = f
				kept += n
				total += b
			}
			if total > 0 {
				r.Survival = float64(kept) / float64(total)
			}

			var err error
			r.Ablation, err = runAblationCfgCtx(ctx, level.String(), &core.Config{
				Seed:     seed,
				OptLevel: int(level),
				Prepared: ps,
				Survey:   &survey.Config{Snippets: corpus.VariantOptScaled(scale)},
			})
			if err != nil {
				return OptLevelResult{}, fmt.Errorf("experiments: optlevels %s study: %w", level, err)
			}
			return r, nil
		})
	if err != nil {
		return "", nil, err
	}

	var b strings.Builder
	b.WriteString("Optimization level as a study dimension\n\n")
	fmt.Fprintf(&b, "%-6s %7s %8s %9s %14s %12s %9s\n",
		"level", "instrs", "shrink", "survival", "ΔlogOdds (p)", "PO-Q2 gap", "retained")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-6s %7d %7.1f%% %8.0f%% %+7.3f (%.2f) %12.2f %9d\n",
			r.Level, r.Instrs, r.ShrinkPct, 100*r.Survival,
			r.Ablation.DirtyLogit, r.Ablation.DirtyLogitP,
			r.Ablation.PostorderGap, r.Ablation.Retained)
	}
	b.WriteString(`
Reading: -O0 is the paper's configuration. Higher levels delete the very
instructions and variables the annotations anchor to: the treatment
effect — help and harm alike — attenuates with annotation survival, and
the POSTORDER-Q2 gap closes not because the annotations improved but
because the misleading ones no longer exist to be believed.
`)
	return b.String(), results, nil
}

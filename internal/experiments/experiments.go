// Package experiments provides one driver per table and figure in the
// paper's evaluation section. Each driver runs against a core.Study and
// renders the artifact as text; the same drivers back cmd/studysim, the
// root benchmark suite, and EXPERIMENTS.md. The experiment-to-module index
// lives in DESIGN.md §3.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"decompstudy/internal/core"
	"decompstudy/internal/htest"
	"decompstudy/internal/obs"
	"decompstudy/internal/par"
	"decompstudy/internal/participants"
	"decompstudy/internal/report"
	"decompstudy/internal/survey"
)

// Runner executes the experiment drivers against one study run.
type Runner struct {
	Study *core.Study
	// ctx carries the telemetry handle the runner was built under; every
	// artifact renders inside its own artifact.* span parented here.
	ctx context.Context
}

// NewRunner builds a study with the given configuration (nil = shipped
// defaults) and wraps it in a Runner.
func NewRunner(cfg *core.Config) (*Runner, error) {
	return NewRunnerCtx(context.Background(), cfg)
}

// NewRunnerCtx is NewRunner with telemetry: the study build and every
// artifact render report spans when the context carries an obs handle.
func NewRunnerCtx(ctx context.Context, cfg *core.Config) (*Runner, error) {
	s, err := core.NewCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{Study: s, ctx: ctx}, nil
}

func (r *Runner) obsCtx() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// artifact opens the span every driver renders under and bumps the render
// counter. Nil-safe: a no-op pair when telemetry is disabled.
func (r *Runner) artifact(name string) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(r.obsCtx(), "artifact."+name)
	obs.AddCount(ctx, "experiments.artifacts.rendered", 1)
	return ctx, sp
}

// TableI renders the RQ1 correctness GLMM (paper Table I).
func (r *Runner) TableI() (string, error) {
	ctx, sp := r.artifact("table1")
	defer sp.End()
	res, err := r.Study.AnalyzeCorrectnessCtx(ctx)
	if err != nil {
		return "", err
	}
	return renderModelTable("Table I: GLMER Correctness Performance Model", res.String()), nil
}

// TableII renders the RQ2 timing LMM (paper Table II).
func (r *Runner) TableII() (string, error) {
	ctx, sp := r.artifact("table2")
	defer sp.End()
	res, err := r.Study.AnalyzeTimingCtx(ctx)
	if err != nil {
		return "", err
	}
	return renderModelTable("Table II: LMER Timing Performance Model", res.String()), nil
}

func renderModelTable(title, body string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n" + body
}

// TelemetryReport renders the pipeline's own observability data: it first
// exercises the two mixed-model fits (so the report covers the full
// prepare→survey→fit path), then prints the per-stage timing tree, the
// aggregated stage summary, and the metrics snapshot. It requires a runner
// built with NewRunnerCtx under a context carrying an enabled obs handle.
func (r *Runner) TelemetryReport() (string, error) {
	o := obs.From(r.obsCtx())
	if !o.Enabled() {
		return "", fmt.Errorf("experiments: telemetry disabled (build the runner with NewRunnerCtx and an obs handle): %w", core.ErrAnalysis)
	}
	if _, err := r.TableI(); err != nil {
		return "", err
	}
	if _, err := r.TableII(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Pipeline telemetry report\n")
	b.WriteString("=========================\n")
	if o.Trace != nil {
		b.WriteString("\nSpan timing tree:\n\n")
		b.WriteString(o.Trace.TimingTree())
		b.WriteString("\nPer-stage totals:\n\n")
		for _, st := range o.Trace.StageSummary() {
			fmt.Fprintf(&b, "  %-28s %4d call(s)  total %v\n", st.Name, st.Count, st.Total)
		}
	}
	if o.Metrics != nil {
		b.WriteString("\nMetrics snapshot:\n\n")
		b.WriteString(o.Metrics.Snapshot().String())
	}
	if m := r.Study.Manifest; !m.Empty() {
		b.WriteString("\n")
		b.WriteString(m.Report())
	}
	return b.String(), nil
}

// TableIII renders the similarity-vs-time correlations (paper Table III).
func (r *Runner) TableIII() (string, error) {
	_, sp := r.artifact("table3")
	defer sp.End()
	mcs, err := r.Study.MetricCorrelations()
	if err != nil {
		return "", err
	}
	tbl := &report.Table{
		Title:   "Table III: Correlation Between Similarity Metrics and Participant Time Taken (DIRTY snippets)",
		Columns: []string{"Similarity Metric", "Dir", "rho", "p-value"},
	}
	for _, m := range mcs {
		tbl.Rows = append(tbl.Rows, []string{
			m.Metric, report.Arrow(m.TimeRho),
			fmt.Sprintf("%+.4f", m.TimeRho), fmt.Sprintf("%.4f%s", m.TimeP, report.Stars(m.TimeP)),
		})
	}
	return tbl.String(), nil
}

// TableIV renders the similarity-vs-correctness correlations (paper Table IV).
func (r *Runner) TableIV() (string, error) {
	_, sp := r.artifact("table4")
	defer sp.End()
	mcs, err := r.Study.MetricCorrelations()
	if err != nil {
		return "", err
	}
	tbl := &report.Table{
		Title:   "Table IV: Correlation Between Similarity Metrics and Participant Correctness (DIRTY snippets)",
		Columns: []string{"Similarity Metric", "Dir", "rho", "p-value"},
	}
	for _, m := range mcs {
		tbl.Rows = append(tbl.Rows, []string{
			m.Metric, report.Arrow(m.CorrRho),
			fmt.Sprintf("%+.4f", m.CorrRho), fmt.Sprintf("%.4f%s", m.CorrP, report.Stars(m.CorrP)),
		})
	}
	return tbl.String(), nil
}

// Figure1 renders the AEEK original source next to its DIRTY-annotated
// decompilation (paper Figure 1).
func (r *Runner) Figure1() (string, error) {
	_, sp := r.artifact("fig1")
	defer sp.End()
	p, ok := r.Study.PreparedByID("AEEK")
	if !ok {
		return "", fmt.Errorf("experiments: AEEK not prepared: %w", core.ErrAnalysis)
	}
	var b strings.Builder
	b.WriteString("Figure 1(a): Original Source Code\n\n")
	b.WriteString(p.OrigSource)
	b.WriteString("\nFigure 1(b): Decompiled Binary with Name Recovery (DIRTY)\n\n")
	b.WriteString(p.Dirty.Source())
	return b.String(), nil
}

// Figure2 renders an example survey page (paper Figure 2).
func (r *Runner) Figure2() (string, error) {
	_, sp := r.artifact("fig2")
	defer sp.End()
	p, ok := r.Study.PreparedByID("AEEK")
	if !ok {
		return "", fmt.Errorf("experiments: AEEK not prepared: %w", core.ErrAnalysis)
	}
	q := p.Snippet.Questions[0]
	return "Figure 2: AEEK question 1 as shown to participants\n\n" +
		survey.RenderQuestion(p.HexRays.Source(), q), nil
}

// Figure3 renders the participant demographics histograms (paper Figure 3).
func (r *Runner) Figure3() (string, error) {
	_, sp := r.artifact("fig3")
	defer sp.End()
	var ages, genders, education []string
	for _, p := range r.Study.Dataset.Participants {
		ages = append(ages, p.Demo.AgeGroup)
		genders = append(genders, p.Demo.Gender)
		education = append(education, p.Demo.Education)
	}
	if len(ages) == 0 {
		return "", fmt.Errorf("experiments: no participants: %w", core.ErrAnalysis)
	}
	var b strings.Builder
	b.WriteString("Figure 3: Participant demographics\n\n")
	l, c := report.CountBy(ages)
	b.WriteString(report.Histogram("Age Group", l, c, 30))
	b.WriteString("\n")
	l, c = report.CountBy(genders)
	b.WriteString(report.Histogram("Gender", l, c, 30))
	b.WriteString("\n")
	l, c = report.CountBy(education)
	b.WriteString(report.Histogram("Education Level", l, c, 30))
	return b.String(), nil
}

// Figure4 renders the postorder argument-swap comparison (paper Figure 4).
func (r *Runner) Figure4() (string, error) {
	_, sp := r.artifact("fig4")
	defer sp.End()
	p, ok := r.Study.PreparedByID("POSTORDER")
	if !ok {
		return "", fmt.Errorf("experiments: POSTORDER not prepared: %w", core.ErrAnalysis)
	}
	var b strings.Builder
	b.WriteString("Figure 4(a): Hex-Rays\n\n")
	b.WriteString(p.HexRays.Source())
	b.WriteString("\nFigure 4(b): DIRTY (note the swapped function pointer and auxiliary argument)\n\n")
	b.WriteString(p.Dirty.Source())
	return b.String(), nil
}

// Figure5 renders per-question correctness grouped by treatment (paper
// Figure 5).
func (r *Runner) Figure5() (string, error) {
	_, sp := r.artifact("fig5")
	defer sp.End()
	qcs, err := r.Study.CorrectnessByQuestion()
	if err != nil {
		return "", err
	}
	var cats []string
	var dirty, hex []float64
	for _, q := range qcs {
		cats = append(cats, q.QuestionID)
		dirty = append(dirty, q.DirtyRate())
		hex = append(hex, q.HexRate())
	}
	out := report.GroupedBars("Figure 5: Correct answers by treatment", cats, dirty, hex, "DIRTY", "Hex-Rays")
	var b strings.Builder
	b.WriteString(out)
	b.WriteString("\nFisher exact (two-sided) per question:\n")
	for _, q := range qcs {
		fmt.Fprintf(&b, "  %-14s p = %.4f%s\n", q.QuestionID, q.FisherP, report.Stars(q.FisherP))
	}
	return b.String(), nil
}

// Figure6 renders the BAPL signature comparison and completion-time
// boxplots with Welch's t-test (paper Figure 6).
func (r *Runner) Figure6() (string, error) {
	_, sp := r.artifact("fig6")
	defer sp.End()
	p, ok := r.Study.PreparedByID("BAPL")
	if !ok {
		return "", fmt.Errorf("experiments: BAPL not prepared: %w", core.ErrAnalysis)
	}
	hex, dirty, err := r.Study.TimingGroups("BAPL", "", false)
	if err != nil {
		return "", err
	}
	w, err := htest.WelchT(hex, dirty, htest.TwoSided)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 6(a): buffer_append_path_len signatures\n\n")
	fmt.Fprintf(&b, "  // Original\n  %s\n", firstLine(p.OrigSource))
	fmt.Fprintf(&b, "  // Hex-Rays\n  %s\n", firstLine(p.HexRays.Source()))
	fmt.Fprintf(&b, "  // DIRTY\n  %s\n", firstLine(p.Dirty.Source()))
	b.WriteString("\nFigure 6(b): Completion time for BAPL (seconds)\n\n")
	lo, hi := boundsOf(hex, dirty)
	b.WriteString(report.Boxplot("Hex-Rays", hex, lo, hi, 50))
	b.WriteString(report.Boxplot("DIRTY", dirty, lo, hi, 50))
	fmt.Fprintf(&b, "\nWelch two-sample t-test: t = %.3f, df = %.1f, p = %.4f\n", w.T, w.DF, w.P)
	return b.String(), nil
}

// Figure7 renders the AEEK comparison and the correct-answer completion
// times (paper Figure 7).
func (r *Runner) Figure7() (string, error) {
	_, sp := r.artifact("fig7")
	defer sp.End()
	p, ok := r.Study.PreparedByID("AEEK")
	if !ok {
		return "", fmt.Errorf("experiments: AEEK not prepared: %w", core.ErrAnalysis)
	}
	hex, dirty, err := r.Study.TimingGroups("", "AEEK-Q2", true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 7(a): Hex-Rays output\n\n")
	b.WriteString(p.HexRays.Source())
	b.WriteString("\nFigure 7(b): DIRTY output\n\n")
	b.WriteString(p.Dirty.Source())
	b.WriteString("\nFigure 7(c): Completion time for correct answers, AEEK Q2 (seconds)\n\n")
	lo, hi := boundsOf(hex, dirty)
	b.WriteString(report.Boxplot("Hex-Rays", hex, lo, hi, 50))
	b.WriteString(report.Boxplot("DIRTY", dirty, lo, hi, 50))
	return b.String(), nil
}

// Figure8 renders the diverging Likert opinions with the Wilcoxon tests
// (paper Figure 8).
func (r *Runner) Figure8() (string, error) {
	_, sp := r.artifact("fig8")
	defer sp.End()
	op, err := r.Study.AnalyzeOpinions()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 8: Opinion of how names/types impacted understanding\n")
	b.WriteString("(left of │: helped; right: hindered)\n\n")
	b.WriteString("Type\n")
	b.WriteString(report.DivergingLikert("Hex-Rays", report.LikertCounts(op.TypeHex), 30))
	b.WriteString(report.DivergingLikert("DIRTY", report.LikertCounts(op.TypeDirty), 30))
	fmt.Fprintf(&b, "  Wilcoxon rank-sum: p = %.4f%s\n\n", op.TypeTest.P, report.Stars(op.TypeTest.P))
	b.WriteString("Name\n")
	b.WriteString(report.DivergingLikert("Hex-Rays", report.LikertCounts(op.NameHex), 30))
	b.WriteString(report.DivergingLikert("DIRTY", report.LikertCounts(op.NameDirty), 30))
	fmt.Fprintf(&b, "  Wilcoxon rank-sum: p = %.3g%s\n", op.NameTest.P, report.Stars(op.NameTest.P))
	return b.String(), nil
}

// InTextStats renders the §IV in-text statistics (experiments X1–X3 in
// DESIGN.md).
func (r *Runner) InTextStats() (string, error) {
	_, sp := r.artifact("intext")
	defer sp.End()
	tr, err := r.Study.AnalyzeTrust()
	if err != nil {
		return "", err
	}
	pp, err := r.Study.PerceptionVsPerformance()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("In-text statistics (§IV)\n\n")
	fmt.Fprintf(&b, "X1  POSTORDER-Q2 Fisher exact:                p = %.5f%s  (paper: 0.01059)\n",
		tr.PostorderFisher, report.Stars(tr.PostorderFisher))
	fmt.Fprintf(&b, "X1  Trust vs correctness (Wilcoxon):          p = %.5f%s  (paper: 0.02477)\n",
		tr.TrustTest.P, report.Stars(tr.TrustTest.P))
	for _, th := range tr.Themes {
		fmt.Fprintf(&b, "    theme %-28s %s, correct rate %.2f\n", th.Code, th.Label(), th.CorrectRate)
	}
	fmt.Fprintf(&b, "X2  Type rating vs correctness (Spearman):    rho = %+.4f, p = %.5f%s  (paper: 0.1035, 0.02459)\n",
		pp.TypeCorr.R, pp.TypeCorr.P, report.Stars(pp.TypeCorr.P))
	fmt.Fprintf(&b, "X2  Name rating vs correctness (Spearman):    rho = %+.4f, p = %.5f  (paper: n.s., 0.6467)\n",
		pp.NameCorr.R, pp.NameCorr.P)
	fmt.Fprintf(&b, "X3  Expert panel ordinal Krippendorff alpha:  %.3f over %d units  (paper: 0.872)\n",
		r.Study.Panel.Alpha, r.Study.Panel.Units)
	return b.String(), nil
}

// MetricReportTable summarizes the per-snippet intrinsic metric values the
// RQ5 correlations are computed from (not a paper artifact, but needed to
// interpret Tables III/IV).
func (r *Runner) MetricReportTable() string {
	_, sp := r.artifact("metrics")
	defer sp.End()
	tbl := &report.Table{
		Title:   "Per-snippet intrinsic metric values (DIRTY vs original)",
		Columns: []string{"Snippet", "BLEU", "codeBLEU", "Jaccard", "Lev", "BERTScore", "VarCLR", "Hum(V)", "Hum(T)"},
	}
	for _, p := range r.Study.Prepared {
		rep := r.Study.MetricReports[p.Snippet.ID]
		tbl.Rows = append(tbl.Rows, []string{
			p.Snippet.ID,
			fmt.Sprintf("%.3f", rep.BLEU),
			fmt.Sprintf("%.3f", rep.CodeBLEU),
			fmt.Sprintf("%.3f", rep.Jaccard),
			fmt.Sprintf("%.1f", rep.Levenshtein),
			fmt.Sprintf("%.3f", rep.BERTScoreF1),
			fmt.Sprintf("%.3f", rep.VarCLR),
			fmt.Sprintf("%.2f", rep.HumanVariables),
			fmt.Sprintf("%.2f", rep.HumanTypes),
		})
	}
	return tbl.String()
}

// ComplexityReport renders the RQ5 structural-covariate artifact: the
// per-function complexity measures computed by internal/analysis from
// the verified IR, their Spearman correlations with participant time and
// correctness (the structural rows of Tables III/IV), and the timing LMM
// refit with standardized structural predictors.
func (r *Runner) ComplexityReport() (string, error) {
	ctx, sp := r.artifact("complexity")
	defer sp.End()

	covTbl := &report.Table{
		Title:   "Structural-complexity covariates per study function (from verified IR)",
		Columns: []string{"Snippet", "Function", "Blocks", "Edges", "Instrs", "Cyclomatic", "LoopDepth", "LivePressure", "Calls"},
	}
	for _, p := range r.Study.Prepared {
		cov, ok := r.Study.Complexity[p.Snippet.ID]
		if !ok {
			return "", fmt.Errorf("experiments: no covariates for %s: %w", p.Snippet.ID, core.ErrAnalysis)
		}
		covTbl.Rows = append(covTbl.Rows, []string{
			p.Snippet.ID, p.Snippet.FuncName,
			fmt.Sprintf("%d", cov.Blocks), fmt.Sprintf("%d", cov.Edges),
			fmt.Sprintf("%d", cov.Instrs), fmt.Sprintf("%d", cov.Cyclomatic),
			fmt.Sprintf("%d", cov.MaxLoopDepth), fmt.Sprintf("%d", cov.MaxLivePressure),
			fmt.Sprintf("%d", cov.Calls),
		})
	}

	mcs, err := r.Study.MetricCorrelations()
	if err != nil {
		return "", err
	}
	structural := map[string]bool{}
	for _, name := range core.StructuralMetricNames {
		structural[name] = true
	}
	corrTbl := &report.Table{
		Title:   "Structural covariates vs participant time and correctness (DIRTY snippets)",
		Columns: []string{"Covariate", "Dir", "time rho", "time p", "corr rho", "corr p"},
	}
	for _, m := range mcs {
		if !structural[m.Metric] {
			continue
		}
		corrTbl.Rows = append(corrTbl.Rows, []string{
			m.Metric, report.Arrow(m.TimeRho),
			fmt.Sprintf("%+.4f", m.TimeRho), fmt.Sprintf("%.4f%s", m.TimeP, report.Stars(m.TimeP)),
			fmt.Sprintf("%+.4f", m.CorrRho), fmt.Sprintf("%.4f%s", m.CorrP, report.Stars(m.CorrP)),
		})
	}

	lmm, err := r.Study.AnalyzeTimingStructuralCtx(ctx)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString(covTbl.String())
	b.WriteString("\n")
	b.WriteString(corrTbl.String())
	b.WriteString("\n")
	b.WriteString(renderModelTable("Timing LMM with structural predictors (RQ5 extension)", lmm.String()))
	return b.String(), nil
}

// All renders every table and figure in paper order. The sections are
// independent reads of the immutable study, so they render concurrently
// (par.JobsFrom workers) and are concatenated in paper order afterwards —
// the output is byte-identical at any worker count.
func (r *Runner) All() (string, error) {
	ctx, sp := r.artifact("all")
	defer sp.End()
	type section struct {
		name string
		fn   func() (string, error)
	}
	sections := []section{
		{"Figure 1", r.Figure1},
		{"Figure 2", r.Figure2},
		{"Figure 3", r.Figure3},
		{"Table I", r.TableI},
		{"Figure 4", r.Figure4},
		{"Figure 5", r.Figure5},
		{"Table II", r.TableII},
		{"Figure 6", r.Figure6},
		{"Figure 7", r.Figure7},
		{"Figure 8", r.Figure8},
		{"Tables III/IV inputs", func() (string, error) { return r.MetricReportTable(), nil }},
		{"Table III", r.TableIII},
		{"Table IV", r.TableIV},
		{"In-text", r.InTextStats},
	}
	jobs := par.JobsFrom(ctx)
	sp.SetAttr("jobs", jobs)
	obs.SetGauge(ctx, "experiments.jobs", float64(jobs))
	// MapAll, not Map: one artifact failing to render (e.g. its snippet was
	// excluded upstream) must not suppress the rest of the report. The
	// failed section degrades to a placeholder and lands in the manifest;
	// only the caller's own cancellation aborts.
	rendered, errs := par.MapAll(ctx, jobs, sections, func(_ context.Context, _ int, s section) (string, error) {
		out, err := s.fn()
		if err != nil {
			return "", fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		return out, nil
	})
	var b strings.Builder
	for i, out := range rendered {
		if err := errs[i]; err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return "", err
			}
			// The runner's ctx may not carry the manifest (it is built
			// post-run), so record into the study's ledger directly and bump
			// the live counter alongside.
			r.Study.Manifest.Exclude("artifact", sections[i].name, err)
			obs.AddCountL(ctx, "fault.excluded", 1, obs.L("stage", "artifact"))
			obs.AddCount(ctx, "experiments.artifacts.failed", 1)
			title := sections[i].name + " unavailable"
			out = title + "\n" + strings.Repeat("=", len(title)) + "\n" +
				"This artifact could not be rendered: " + err.Error() + "\n"
		}
		b.WriteString(out)
		b.WriteString("\n" + strings.Repeat("─", 72) + "\n\n")
	}
	return b.String(), nil
}

// PowerSweep estimates, by Monte-Carlo over seeds, how often the
// POSTORDER-Q2 Fisher test reaches significance at a given pool size — the
// §VI discussion of statistical power under recruitment constraints. It is
// the basis of the surveydesign example.
func PowerSweep(poolSizes []int, trials int, seed int64) (map[int]float64, error) {
	if trials <= 0 {
		trials = 10
	}
	rng := rand.New(rand.NewSource(seed))
	out := map[int]float64{}
	for _, n := range poolSizes {
		hits := 0
		ran := 0
		for tr := 0; tr < trials; tr++ {
			students := n * 3 / 4
			pros := n - students
			ds, err := survey.Run(&survey.Config{
				Seed: rng.Int63(),
				Pool: &participants.PoolConfig{Students: students, Professionals: pros, Rushers: -1},
			})
			if err != nil {
				return nil, err
			}
			var a, bCell, c, d int
			for _, r := range ds.CorrectnessRows() {
				if r.QuestionID != "POSTORDER-Q2" {
					continue
				}
				switch {
				case r.UsesDirty && r.Correct:
					a++
				case r.UsesDirty:
					bCell++
				case r.Correct:
					c++
				default:
					d++
				}
			}
			fr, err := htest.FisherExact2x2(a, bCell, c, d, htest.TwoSided)
			if err != nil {
				continue
			}
			ran++
			if fr.P < 0.05 {
				hits++
			}
		}
		if ran == 0 {
			out[n] = 0
			continue
		}
		out[n] = float64(hits) / float64(ran)
	}
	return out, nil
}

func firstLine(src string) string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			return strings.TrimSuffix(line, " {")
		}
	}
	return ""
}

func boundsOf(a, b []float64) (lo, hi float64) {
	lo, hi = a[0], a[0]
	for _, v := range append(append([]float64{}, a...), b...) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	ablOnce sync.Once
	ablText string
	ablRes  []AblationResult
	ablErr  error
)

func sharedAblations(t *testing.T) ([]AblationResult, string) {
	t.Helper()
	ablOnce.Do(func() {
		ablText, ablRes, ablErr = Ablations(99)
	})
	if ablErr != nil {
		t.Fatalf("Ablations: %v", ablErr)
	}
	return ablRes, ablText
}

func TestAblationsRun(t *testing.T) {
	results, text := sharedAblations(t)
	if len(results) != 5 {
		t.Fatalf("ablations = %d, want 5", len(results))
	}
	for _, name := range []string{"baseline", "perfect-annotations", "skepticism-training", "no-quality-filter", "harder-questions"} {
		if !strings.Contains(text, name) {
			t.Errorf("report missing %q", name)
		}
	}
}

func byName(results []AblationResult) map[string]AblationResult {
	out := map[string]AblationResult{}
	for _, r := range results {
		out[r.Name] = r
	}
	return out
}

func TestAblationPerfectAnnotationsFlipsEffect(t *testing.T) {
	results, _ := sharedAblations(t)
	m := byName(results)
	base, perfect := m["baseline"], m["perfect-annotations"]
	if perfect.DirtyLogit <= base.DirtyLogit {
		t.Errorf("repairing annotations should raise the treatment effect: baseline %+.3f, perfect %+.3f",
			base.DirtyLogit, perfect.DirtyLogit)
	}
	if perfect.PostorderGap >= base.PostorderGap-0.2 {
		t.Errorf("repairing the swap should close the POSTORDER-Q2 gap: baseline %.2f, perfect %.2f",
			base.PostorderGap, perfect.PostorderGap)
	}
}

func TestAblationSkepticismShrinksGap(t *testing.T) {
	results, _ := sharedAblations(t)
	m := byName(results)
	base, skeptic := m["baseline"], m["skepticism-training"]
	if skeptic.PostorderGap >= base.PostorderGap {
		t.Errorf("skepticism training should shrink the misleading-annotation gap: baseline %.2f, trained %.2f",
			base.PostorderGap, skeptic.PostorderGap)
	}
}

func TestAblationNoFilterKeepsRushers(t *testing.T) {
	results, _ := sharedAblations(t)
	m := byName(results)
	base, noFilter := m["baseline"], m["no-quality-filter"]
	if noFilter.Retained <= base.Retained {
		t.Errorf("disabling the quality filter should retain more participants: %d vs %d",
			noFilter.Retained, base.Retained)
	}
}

func TestAblationHarderQuestionsKeepsNull(t *testing.T) {
	results, _ := sharedAblations(t)
	m := byName(results)
	hard := m["harder-questions"]
	if hard.DirtyLogitP < 0.05 && hard.DirtyLogit > 0.4 {
		t.Errorf("harder questions should not manufacture a positive treatment effect: %+.3f (p=%.3f)",
			hard.DirtyLogit, hard.DirtyLogitP)
	}
}

package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"decompstudy/internal/core"
	"decompstudy/internal/par"
)

var (
	runnerOnce sync.Once
	runnerVal  *Runner
	runnerErr  error
)

func sharedRunner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		runnerVal, runnerErr = NewRunner(nil)
	})
	if runnerErr != nil {
		t.Fatalf("NewRunner: %v", runnerErr)
	}
	return runnerVal
}

func TestAllSectionsRender(t *testing.T) {
	r := sharedRunner(t)
	out, err := r.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for _, want := range []string{
		"Figure 1(a)", "Figure 2", "Figure 3", "Table I:", "Figure 4(a)",
		"Figure 5", "Table II:", "Figure 6(a)", "Figure 7(a)", "Figure 8",
		"Table III:", "Table IV:", "In-text statistics",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All() missing section %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("All() output suspiciously short: %d bytes", len(out))
	}
}

func TestFigure1ShowsBothVersions(t *testing.T) {
	r := sharedRunner(t)
	out, err := r.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if !strings.Contains(out, "data_unset *array_extract_element_klen") {
		t.Errorf("Figure 1 missing original signature:\n%s", out)
	}
	if !strings.Contains(out, "array_t_0 *array") {
		t.Errorf("Figure 1 missing DIRTY signature:\n%s", out)
	}
}

func TestFigure2HasNumberedListing(t *testing.T) {
	r := sharedRunner(t)
	out, err := r.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if !strings.Contains(out, "  1 | ") {
		t.Errorf("Figure 2 not line-numbered:\n%s", out)
	}
	if !strings.Contains(out, "Please write your answer here") {
		t.Errorf("Figure 2 missing answer prompt")
	}
}

func TestFigure3CoversAllDemographics(t *testing.T) {
	r := sharedRunner(t)
	out, err := r.Figure3()
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	for _, want := range []string{"Age Group", "Gender", "Education Level"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 3 missing %q", want)
		}
	}
}

func TestFigure4ShowsSwap(t *testing.T) {
	r := sharedRunner(t)
	out, err := r.Figure4()
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if !strings.Contains(out, "a2(a3, a1)") {
		t.Errorf("Figure 4(a) missing the Hex-Rays call shape")
	}
	if !strings.Contains(out, "e(cmp, t)") {
		t.Errorf("Figure 4(b) missing the swapped DIRTY call shape")
	}
}

func TestTablesRender(t *testing.T) {
	r := sharedRunner(t)
	t1, err := r.TableI()
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if !strings.Contains(t1, "uses_DIRTY") || !strings.Contains(t1, "R²m") {
		t.Errorf("Table I malformed:\n%s", t1)
	}
	t3, err := r.TableIII()
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	for _, metric := range []string{"BLEU", "codeBLEU", "Jaccard Similarity", "BERTScore F1", "VarCLR", "Human Evaluation (Variables)"} {
		if !strings.Contains(t3, metric) {
			t.Errorf("Table III missing %q", metric)
		}
	}
}

func TestMetricReportTable(t *testing.T) {
	r := sharedRunner(t)
	out := r.MetricReportTable()
	for _, id := range []string{"AEEK", "BAPL", "POSTORDER", "TC"} {
		if !strings.Contains(out, id) {
			t.Errorf("metric table missing %s", id)
		}
	}
}

func TestPowerSweep(t *testing.T) {
	power, err := PowerSweep([]int{12, 60}, 4, 7)
	if err != nil {
		t.Fatalf("PowerSweep: %v", err)
	}
	if len(power) != 2 {
		t.Fatalf("power entries = %d, want 2", len(power))
	}
	for n, p := range power {
		if p < 0 || p > 1 {
			t.Errorf("power[%d] = %v outside [0,1]", n, p)
		}
	}
	// Larger pools should not have materially lower power.
	if power[60] < power[12]-0.25 {
		t.Errorf("power decreased with pool size: %v", power)
	}
}

// TestArtifactsDeterministicAcrossWorkerCounts is the parallel-determinism
// golden check for the rendering layer: the full study build plus every
// artifact Runner.All renders must be byte-identical between a sequential
// run (jobs=1) and a wide fan-out (jobs=8).
func TestArtifactsDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(jobs int) string {
		t.Helper()
		r, err := NewRunnerCtx(par.WithJobs(context.Background(), jobs), &core.Config{Seed: 11})
		if err != nil {
			t.Fatalf("jobs=%d: NewRunnerCtx: %v", jobs, err)
		}
		out, err := r.All()
		if err != nil {
			t.Fatalf("jobs=%d: All: %v", jobs, err)
		}
		return out
	}
	seq := render(1)
	wide := render(8)
	if seq != wide {
		t.Error("Runner.All output differs between jobs=1 and jobs=8")
	}
}

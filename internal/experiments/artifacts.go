package experiments

import "strings"

// Artifact is one named, individually renderable output of the study — a
// table, figure, or report. The registry is the single menu shared by the
// studysim CLI's -artifact flag and the served /v1/study endpoint, so both
// surfaces render byte-identical text for the same name and seed.
type Artifact struct {
	Name string
	// Render produces the artifact. seed is only consulted by artifacts
	// that launch extra pipeline runs (ablations, optlevels).
	Render func(r *Runner, seed int64) (string, error)
}

var artifactRegistry = []Artifact{
	{"table1", func(r *Runner, _ int64) (string, error) { return r.TableI() }},
	{"table2", func(r *Runner, _ int64) (string, error) { return r.TableII() }},
	{"table3", func(r *Runner, _ int64) (string, error) { return r.TableIII() }},
	{"table4", func(r *Runner, _ int64) (string, error) { return r.TableIV() }},
	{"fig1", func(r *Runner, _ int64) (string, error) { return r.Figure1() }},
	{"fig2", func(r *Runner, _ int64) (string, error) { return r.Figure2() }},
	{"fig3", func(r *Runner, _ int64) (string, error) { return r.Figure3() }},
	{"fig4", func(r *Runner, _ int64) (string, error) { return r.Figure4() }},
	{"fig5", func(r *Runner, _ int64) (string, error) { return r.Figure5() }},
	{"fig6", func(r *Runner, _ int64) (string, error) { return r.Figure6() }},
	{"fig7", func(r *Runner, _ int64) (string, error) { return r.Figure7() }},
	{"fig8", func(r *Runner, _ int64) (string, error) { return r.Figure8() }},
	{"intext", func(r *Runner, _ int64) (string, error) { return r.InTextStats() }},
	{"metrics", func(r *Runner, _ int64) (string, error) { return r.MetricReportTable(), nil }},
	{"complexity", func(r *Runner, _ int64) (string, error) { return r.ComplexityReport() }},
	{"ablations", func(r *Runner, seed int64) (string, error) {
		out, _, err := r.Ablations(seed)
		return out, err
	}},
	{"confound", func(_ *Runner, _ int64) (string, error) {
		return ConfoundComparison()
	}},
	{"optlevels", func(r *Runner, seed int64) (string, error) {
		out, _, err := r.OptLevels(seed)
		return out, err
	}},
	{"telemetry", func(r *Runner, _ int64) (string, error) { return r.TelemetryReport() }},
}

// ArtifactNames lists every registered artifact name, comma-separated and
// in paper order — the menu shown by flag help and error messages.
func ArtifactNames() string {
	names := make([]string, len(artifactRegistry))
	for i, e := range artifactRegistry {
		names[i] = e.Name
	}
	return strings.Join(names, ", ")
}

// LookupArtifact resolves a (lower-cased) artifact name.
func LookupArtifact(name string) (Artifact, bool) {
	for _, e := range artifactRegistry {
		if e.Name == name {
			return e, true
		}
	}
	return Artifact{}, false
}

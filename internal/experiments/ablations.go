package experiments

import (
	"context"
	"fmt"
	"strings"

	"decompstudy/internal/core"
	"decompstudy/internal/corpus"
	"decompstudy/internal/modelstore"
	"decompstudy/internal/par"
	"decompstudy/internal/participants"
	"decompstudy/internal/survey"
)

// AblationResult summarizes one counterfactual study run against the
// baseline: the treatment coefficient of the correctness GLMM, the timing
// coefficient, and the POSTORDER-Q2 gap.
type AblationResult struct {
	Name string
	// DirtyLogit and DirtyLogitP are the uses_DIRTY correctness
	// coefficient and its Wald p-value.
	DirtyLogit, DirtyLogitP float64
	// DirtySec and DirtySecP are the uses_DIRTY timing coefficient and
	// p-value.
	DirtySec, DirtySecP float64
	// PostorderGap is HexRate − DirtyRate on POSTORDER-Q2 (positive when
	// the annotations mislead).
	PostorderGap float64
	// Retained is the analyzed participant count.
	Retained int
}

// runAblation builds a study from the given survey configuration and
// extracts the ablation summary.
func runAblation(name string, seed int64, svCfg *survey.Config) (AblationResult, error) {
	return runAblationCfg(name, &core.Config{Seed: seed, Survey: svCfg})
}

// runAblationCfg is runAblation over a full study configuration, for
// ablations that vary more than the survey (the opt-level sweep).
func runAblationCfg(name string, cfg *core.Config) (AblationResult, error) {
	return runAblationCfgCtx(context.Background(), name, cfg)
}

// runAblationCfgCtx is runAblationCfg under a caller context, so batched
// grids can thread a shared model store (and telemetry) through every
// cell.
func runAblationCfgCtx(ctx context.Context, name string, cfg *core.Config) (AblationResult, error) {
	out := AblationResult{Name: name}
	s, err := core.NewCtx(ctx, cfg)
	if err != nil {
		return out, fmt.Errorf("experiments: ablation %s: %w", name, err)
	}
	cr, err := s.AnalyzeCorrectness()
	if err != nil {
		return out, fmt.Errorf("experiments: ablation %s correctness: %w", name, err)
	}
	tm, err := s.AnalyzeTiming()
	if err != nil {
		return out, fmt.Errorf("experiments: ablation %s timing: %w", name, err)
	}
	if c, ok := cr.Coef("uses_DIRTY"); ok {
		out.DirtyLogit, out.DirtyLogitP = c.Estimate, c.P
	}
	if c, ok := tm.Coef("uses_DIRTY"); ok {
		out.DirtySec, out.DirtySecP = c.Estimate, c.P
	}
	qcs, err := s.CorrectnessByQuestion()
	if err != nil {
		return out, fmt.Errorf("experiments: ablation %s fig5: %w", name, err)
	}
	for _, q := range qcs {
		if q.QuestionID == "POSTORDER-Q2" {
			out.PostorderGap = q.HexRate() - q.DirtyRate()
		}
	}
	out.Retained = len(s.Dataset.Participants)
	return out, nil
}

// Ablations renders the ablation grid under the runner's context, so the
// batched cells share the CLI's model store and telemetry — and hit the
// models the runner's own study already trained.
func (r *Runner) Ablations(seed int64) (string, []AblationResult, error) {
	return AblationsCtx(r.obsCtx(), seed)
}

// Ablations runs the design-choice counterfactuals DESIGN.md §3 calls out
// and renders them next to the baseline:
//
//   - baseline: the paper-faithful configuration;
//   - perfect-annotations: every documented DIRTY failure repaired — shows
//     how much of the null result the misleading annotations explain;
//   - skepticism-training: the §V recommendation, as a trust-distribution
//     shift — misleading annotations hurt less, at a time cost;
//   - no-quality-filter: rushers retained — shows the §III-E exclusion
//     rule guards the timing model;
//   - harder-questions: §VI robustness of the null to question difficulty.
func Ablations(seed int64) (string, []AblationResult, error) {
	return AblationsCtx(context.Background(), seed)
}

// AblationsCtx is Ablations as a batched multi-run: every cell shares one
// corpus preparation (core.Config.Prepared) and one base-model training
// (resolved through a content-addressed model store — the context's, or a
// run-local one), so each cell pays only for its own delta: the survey,
// the metric battery, and the fits. Cells fan out across the context's
// worker budget and results are collected in configuration order, so the
// rendered table is byte-identical to the sequential unbatched runs it
// replaced.
func AblationsCtx(ctx context.Context, seed int64) (string, []AblationResult, error) {
	if seed == 0 {
		seed = 26 // the library-default study seed (core.Config)
	}
	type cell struct {
		name string
		cfg  *survey.Config
	}
	configs := []cell{
		{"baseline", nil},
		{"perfect-annotations", &survey.Config{Snippets: corpus.VariantPerfectAnnotations()}},
		{"skepticism-training", &survey.Config{Pool: &participants.PoolConfig{TrustAlpha: 1.2, TrustBeta: 3}}},
		{"no-quality-filter", &survey.Config{DisableQualityFilter: true}},
		{"harder-questions", &survey.Config{Snippets: corpus.VariantHarderQuestions()}},
	}
	if modelstore.From(ctx) == nil {
		ctx = modelstore.With(ctx, modelstore.New())
	}
	prepared, err := corpus.PrepareAllCtx(ctx)
	if err != nil && len(prepared) == 0 {
		return "", nil, fmt.Errorf("experiments: ablations corpus: %w", err)
	}
	results, err := par.Map(ctx, par.JobsFrom(ctx), configs, func(ctx context.Context, _ int, c cell) (AblationResult, error) {
		return runAblationCfgCtx(ctx, c.name, &core.Config{Seed: seed, Survey: c.cfg, Prepared: prepared})
	})
	if err != nil {
		return "", nil, err
	}

	var b strings.Builder
	b.WriteString("Ablations: the design choices behind the paper's findings\n\n")
	fmt.Fprintf(&b, "%-22s %14s %14s %14s %9s\n",
		"configuration", "ΔlogOdds (p)", "Δseconds (p)", "PO-Q2 gap", "retained")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %+7.3f (%.2f) %+7.1f (%.2f) %12.2f %9d\n",
			r.Name, r.DirtyLogit, r.DirtyLogitP, r.DirtySec, r.DirtySecP, r.PostorderGap, r.Retained)
	}
	b.WriteString(`
Reading: the baseline reproduces the paper (null treatment effect, large
POSTORDER-Q2 gap). Repairing the annotations turns the treatment effect
positive and closes the gap — the misleading annotations, not annotation
per se, drive the null. Skepticism training shrinks the gap at the cost
of time. Dropping the quality filter pollutes the timing model.
`)
	return b.String(), results, nil
}

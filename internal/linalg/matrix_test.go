package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	_, err := NewMatrixFromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: err = %v, want ErrShape", err)
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("Mul mismatch: err = %v, want ErrShape", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose is %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Errorf("at[2][1] = %v, want 6", at.At(2, 1))
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := MulVec(a, []float64{1, -1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

// randomSPD builds a random symmetric positive definite matrix A = BᵀB + nI.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a, _ := Mul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, _ := MulVec(a, x)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: NewCholesky: %v", trial, err)
		}
		got, err := ch.SolveVec(b)
		if err != nil {
			t.Fatalf("trial %d: SolveVec: %v", trial, err)
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	l := ch.L()
	llt, _ := Mul(l, l.T())
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEqual(llt.At(i, j), a.At(i, j), 1e-10) {
				t.Fatalf("LLᵀ[%d][%d] = %v, want %v", i, j, llt.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("non-PD cholesky: err = %v, want ErrSingular", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	if got, want := ch.LogDet(), math.Log(36); !almostEqual(got, want, 1e-12) {
		t.Errorf("LogDet = %v, want %v", got, want)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 5)
	ch, _ := NewCholesky(a)
	inv, err := ch.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	prod, _ := Mul(a, inv)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("A*A⁻¹[%d][%d] = %v, want %v", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestLUSolve(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}})
	x := []float64{1, 2, 3}
	b, _ := MulVec(a, x)
	f, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	got, err := f.SolveVec(b)
	if err != nil {
		t.Fatalf("SolveVec: %v", err)
	}
	for i := range x {
		if !almostEqual(got[i], x[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular LU: err = %v, want ErrSingular", err)
	}
}

func TestLULogDet(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}}) // det = -1
	f, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	logAbs, sign := f.LogDet()
	if !almostEqual(logAbs, 0, 1e-12) || sign != -1 {
		t.Errorf("LogDet = (%v, %v), want (0, -1)", logAbs, sign)
	}
}

func TestXtX(t *testing.T) {
	x, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := XtX(x)
	want, _ := Mul(x.T(), x)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(got.At(i, j), want.At(i, j), 1e-12) {
				t.Errorf("XtX[%d][%d] = %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestXtWXMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := NewMatrix(7, 3)
	for i := 0; i < 7; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	w := make([]float64, 7)
	for i := range w {
		w[i] = rng.Float64() + 0.1
	}
	got, err := XtWX(x, w)
	if err != nil {
		t.Fatalf("XtWX: %v", err)
	}
	// Explicit: Xᵀ diag(w) X.
	wx := x.Clone()
	for i := 0; i < 7; i++ {
		for j := 0; j < 3; j++ {
			wx.Set(i, j, wx.At(i, j)*w[i])
		}
	}
	want, _ := Mul(x.T(), wx)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(got.At(i, j), want.At(i, j), 1e-12) {
				t.Errorf("XtWX[%d][%d] = %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("AXPY = %v, want [3 5]", y)
	}
	v := []float64{2, 4}
	Scale(0.5, v)
	if v[0] != 1 || v[1] != 2 {
		t.Errorf("Scale = %v, want [1 2]", v)
	}
}

// Property: for random SPD systems, solving then multiplying recovers the RHS.
func TestQuickCholeskyResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x, err := ch.SolveVec(b)
		if err != nil {
			return false
		}
		ax, _ := MulVec(a, x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		tt := m.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package linalg

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the randomized equivalence
// checks reproduce exactly across runs without touching math/rand.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// float returns a value in [-1, 1).
func (r *lcg) float() float64 {
	return float64(int64(r.next()>>11))/float64(1<<52) - 1
}

func randMatrix(r *lcg, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.float())
		}
	}
	return m
}

// randSparseMatrix fills roughly the given fraction of entries, leaving the
// rest exactly zero — the structure CSRFromDense prunes.
func randSparseMatrix(r *lcg, rows, cols int, density float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if float64(r.next()%1000)/1000 < density {
				m.Set(i, j, r.float())
			}
		}
	}
	return m
}

func randVec(r *lcg, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.float()
	}
	return v
}

// randSPD builds a well-conditioned symmetric positive definite matrix as
// BᵀB + n·I.
func randSPD(r *lcg, n int) *Matrix {
	b := randMatrix(r, n, n)
	m := XtX(b)
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

func bitEqualVec(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d = %v (bits %x), want %v (bits %x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func bitEqualMat(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		bitEqualVec(t, name, got.RowView(i), want.RowView(i))
	}
}

// TestCSRMulVecBitIdentical proves the sparse matvec reproduces the dense
// result bit-for-bit: skipping exact-zero entries only removes ±0 terms
// from each row's left-to-right accumulation, which cannot change an IEEE
// round-to-nearest sum.
func TestCSRMulVecBitIdentical(t *testing.T) {
	r := &lcg{s: 1}
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {17, 9}, {40, 40}} {
		for _, density := range []float64{0, 0.05, 0.3, 1} {
			m := randSparseMatrix(r, dims[0], dims[1], density)
			sp := CSRFromDense(m)
			x := randVec(r, dims[1])
			want, err := MulVec(m, x)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, dims[0])
			if err := sp.MulVecTo(got, x); err != nil {
				t.Fatal(err)
			}
			bitEqualVec(t, "csr mulvec", got, want)
			for i := 0; i < dims[0]; i++ {
				if math.Float64bits(sp.RowDot(i, x)) != math.Float64bits(want[i]) {
					t.Fatalf("RowDot(%d) = %v, want %v", i, sp.RowDot(i, x), want[i])
				}
			}
		}
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	r := &lcg{s: 2}
	m := randSparseMatrix(r, 12, 7, 0.25)
	sp := CSRFromDense(m)
	bitEqualMat(t, "csr dense round-trip", sp.Dense(), m)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if math.Float64bits(sp.At(i, j)) != math.Float64bits(m.At(i, j)) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, sp.At(i, j), m.At(i, j))
			}
		}
	}
}

// TestMulToBitIdentical checks the in-place dense kernels against their
// allocating counterparts on randomized inputs.
func TestMulToBitIdentical(t *testing.T) {
	r := &lcg{s: 3}
	a := randSparseMatrix(r, 9, 13, 0.6) // zeros exercise the skip branch
	b := randMatrix(r, 13, 5)
	want, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := NewMatrix(9, 5)
	got.Set(0, 0, 42) // MulTo must overwrite stale contents
	if err := MulTo(got, a, b); err != nil {
		t.Fatal(err)
	}
	bitEqualMat(t, "MulTo", got, want)
}

func TestMulVecToBitIdentical(t *testing.T) {
	r := &lcg{s: 4}
	a := randMatrix(r, 11, 6)
	x := randVec(r, 6)
	want, err := MulVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 11)
	if err := MulVecTo(got, a, x); err != nil {
		t.Fatal(err)
	}
	bitEqualVec(t, "MulVecTo", got, want)
}

func TestTransposeToBitIdentical(t *testing.T) {
	r := &lcg{s: 5}
	a := randMatrix(r, 8, 3)
	dst := NewMatrix(3, 8)
	if err := a.TransposeTo(dst); err != nil {
		t.Fatal(err)
	}
	bitEqualMat(t, "TransposeTo", dst, a.T())
}

func TestAddScaledTo(t *testing.T) {
	r := &lcg{s: 6}
	y := randVec(r, 10)
	x := randVec(r, 10)
	want := make([]float64, 10)
	copy(want, y)
	AXPY(-0.5, x, want)
	got := make([]float64, 10)
	AddScaledTo(got, y, -0.5, x)
	bitEqualVec(t, "AddScaledTo", got, want)
	// Aliased destination.
	aliased := make([]float64, 10)
	copy(aliased, y)
	AddScaledTo(aliased, aliased, -0.5, x)
	bitEqualVec(t, "AddScaledTo aliased", aliased, want)
}

// TestRefactorBitIdentical proves a reused Cholesky workspace reproduces a
// fresh factorization bit-for-bit, including after factoring a different
// matrix first (stale lower-triangle contents are fully overwritten).
func TestRefactorBitIdentical(t *testing.T) {
	r := &lcg{s: 7}
	for _, n := range []int{1, 4, 12} {
		first := randSPD(r, n)
		second := randSPD(r, n)
		ws := NewCholeskyWorkspace(n)
		if err := ws.Refactor(first); err != nil {
			t.Fatal(err)
		}
		if err := ws.Refactor(second); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewCholesky(second)
		if err != nil {
			t.Fatal(err)
		}
		bitEqualMat(t, "Refactor L", ws.L(), fresh.L())
		if math.Float64bits(ws.LogDet()) != math.Float64bits(fresh.LogDet()) {
			t.Fatalf("LogDet = %v, want %v", ws.LogDet(), fresh.LogDet())
		}

		b := randVec(r, n)
		want, err := fresh.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if err := ws.SolveVecTo(got, b); err != nil {
			t.Fatal(err)
		}
		bitEqualVec(t, "SolveVecTo", got, want)
		// Aliased solve: dst == b.
		aliased := make([]float64, n)
		copy(aliased, b)
		if err := ws.SolveVecTo(aliased, aliased); err != nil {
			t.Fatal(err)
		}
		bitEqualVec(t, "SolveVecTo aliased", aliased, want)

		rhs := randMatrix(r, n, 3)
		wantM, err := fresh.Solve(rhs)
		if err != nil {
			t.Fatal(err)
		}
		gotM := NewMatrix(n, 3)
		colBuf := make([]float64, n)
		if err := ws.SolveTo(gotM, rhs, colBuf); err != nil {
			t.Fatal(err)
		}
		bitEqualMat(t, "SolveTo", gotM, wantM)

		wantInv, err := fresh.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		gotInv := NewMatrix(n, n)
		if err := ws.InverseTo(gotInv, colBuf); err != nil {
			t.Fatal(err)
		}
		bitEqualMat(t, "InverseTo", gotInv, wantInv)
	}
}

func TestRefactorRejectsNonSPD(t *testing.T) {
	ws := NewCholeskyWorkspace(2)
	bad := NewMatrix(2, 2) // all zeros: first leading minor not positive
	if err := ws.Refactor(bad); err == nil {
		t.Fatal("Refactor accepted a singular matrix")
	}
	// The workspace must recover on the next SPD refactor.
	r := &lcg{s: 8}
	good := randSPD(r, 2)
	if err := ws.Refactor(good); err != nil {
		t.Fatalf("Refactor after failure: %v", err)
	}
	fresh, err := NewCholesky(good)
	if err != nil {
		t.Fatal(err)
	}
	bitEqualMat(t, "Refactor after failure", ws.L(), fresh.L())
}

func TestCopyFromZero(t *testing.T) {
	r := &lcg{s: 9}
	a := randMatrix(r, 4, 6)
	b := NewMatrix(4, 6)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	bitEqualMat(t, "CopyFrom", b, a)
	b.Zero()
	for i := 0; i < 4; i++ {
		for _, v := range b.RowView(i) {
			if v != 0 {
				t.Fatal("Zero left a nonzero entry")
			}
		}
	}
	if err := b.CopyFrom(NewMatrix(3, 6)); err == nil {
		t.Fatal("CopyFrom accepted a shape mismatch")
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(2, 2, []int{0, 1, 2}, []int{0, 0}, []float64{1, 1}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	cases := []struct {
		name   string
		rowPtr []int
		colIdx []int
		val    []float64
	}{
		{"short rowPtr", []int{0, 2}, []int{0, 1}, []float64{1, 1}},
		{"descending columns", []int{0, 2, 2}, []int{1, 0}, []float64{1, 1}},
		{"duplicate columns", []int{0, 2, 2}, []int{0, 0}, []float64{1, 1}},
		{"column out of range", []int{0, 1, 2}, []int{0, 2}, []float64{1, 1}},
		{"rowPtr not monotone", []int{0, 2, 1}, []int{0, 1}, []float64{1, 1}},
		{"val length mismatch", []int{0, 1, 2}, []int{0, 1}, []float64{1}},
	}
	for _, c := range cases {
		if _, err := NewCSR(2, 2, c.rowPtr, c.colIdx, c.val); err == nil {
			t.Fatalf("%s: invalid CSR accepted", c.name)
		}
	}
}

// TestInPlaceKernelAllocs pins the allocation-free contract of the hot
// kernels the mixed-model and embedding loops rely on.
func TestInPlaceKernelAllocs(t *testing.T) {
	r := &lcg{s: 10}
	n := 8
	spd := randSPD(r, n)
	ws := NewCholeskyWorkspace(n)
	a := randMatrix(r, n, n)
	b := randMatrix(r, n, n)
	dstM := NewMatrix(n, n)
	x := randVec(r, n)
	dstV := make([]float64, n)
	colBuf := make([]float64, n)
	sp := CSRFromDense(randSparseMatrix(r, n, n, 0.3))

	checks := []struct {
		name string
		fn   func()
	}{
		{"MulTo", func() { MulTo(dstM, a, b) }},
		{"MulVecTo", func() { MulVecTo(dstV, a, x) }},
		{"AddScaledTo", func() { AddScaledTo(dstV, x, 2, x) }},
		{"Refactor", func() { ws.Refactor(spd) }},
		{"SolveVecTo", func() { ws.SolveVecTo(dstV, x) }},
		{"InverseTo", func() { ws.InverseTo(dstM, colBuf) }},
		{"CSR.MulVecTo", func() { sp.MulVecTo(dstV, x) }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(100, c.fn); avg != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", c.name, avg)
		}
	}
}

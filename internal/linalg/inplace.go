// Allocation-free variants of the dense kernels. Every function here
// computes exactly the same floating-point operation sequence as its
// allocating counterpart in matrix.go — callers rely on bit-identical
// results when swapping one for the other — and writes into caller-supplied
// storage so per-iteration loops (mixed-model fits, power iteration) run
// without garbage-collector churn.
package linalg

import (
	"fmt"
	"math"
)

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// CopyFrom overwrites m with the contents of b. Shapes must match.
func (m *Matrix) CopyFrom(b *Matrix) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("linalg: copy %dx%d from %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	copy(m.data, b.data)
	return nil
}

// TransposeTo writes mᵀ into dst, which must be cols×rows and must not
// alias m.
func (m *Matrix) TransposeTo(dst *Matrix) error {
	if dst.rows != m.cols || dst.cols != m.rows {
		return fmt.Errorf("linalg: transpose %dx%d into %dx%d: %w", m.rows, m.cols, dst.rows, dst.cols, ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			dst.data[j*dst.cols+i] = m.data[i*m.cols+j]
		}
	}
	return nil
}

// MulTo computes dst = a*b without allocating. dst must not alias a or b.
// The accumulation order matches Mul exactly.
func MulTo(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("linalg: mul %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("linalg: mul destination %dx%d for %dx%d product: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// MulVecTo computes dst = a*x without allocating. dst must not alias x.
// The per-row accumulation order matches MulVec exactly.
func MulVecTo(dst []float64, a *Matrix, x []float64) error {
	if a.cols != len(x) {
		return fmt.Errorf("linalg: mulvec %dx%d by vector of %d: %w", a.rows, a.cols, len(x), ErrShape)
	}
	if len(dst) != a.rows {
		return fmt.Errorf("linalg: mulvec destination of %d for %d rows: %w", len(dst), a.rows, ErrShape)
	}
	for i := 0; i < a.rows; i++ {
		s := 0.0
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// AddScaledTo computes dst = y + a*x element-wise. dst may alias y or x.
func AddScaledTo(dst, y []float64, a float64, x []float64) {
	if len(x) != len(y) || len(dst) != len(y) {
		panic(fmt.Sprintf("linalg: addscaled of lengths %d, %d into %d", len(y), len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = y[i] + a*x[i]
	}
}

// NewCholeskyWorkspace returns an order-n Cholesky whose factor storage can
// be (re)filled with Refactor. The factor is all-zero — and the solve and
// determinant methods meaningless — until the first successful Refactor.
func NewCholeskyWorkspace(n int) *Cholesky {
	return &Cholesky{l: NewMatrix(n, n)}
}

// Order returns the order (number of rows) of the factored matrix.
func (c *Cholesky) Order() int { return c.l.rows }

// Refactor factors the symmetric positive definite matrix a into the
// receiver's existing storage, avoiding the per-iteration factor allocation
// of NewCholesky. Only the lower triangle of a is read, and only the lower
// triangle of the factor is written (the upper stays zero), so repeated
// refactorizations reuse the same memory. The arithmetic matches
// NewCholesky operation-for-operation. On error the factor contents are
// undefined until the next successful Refactor.
func (c *Cholesky) Refactor(a *Matrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("linalg: cholesky of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	if c.l.rows != a.rows {
		return fmt.Errorf("linalg: refactor order %d into workspace of order %d: %w", a.rows, c.l.rows, ErrShape)
	}
	n := a.rows
	l := c.l
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("linalg: leading minor %d not positive (%.6g): %w", j+1, d, ErrSingular)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return nil
}

// SolveVecTo solves A x = b into dst without allocating. dst may alias b:
// the forward solve overwrites dst ascending reading only already-written
// entries, and the back solve descends in place. The arithmetic matches
// SolveVec exactly.
func (c *Cholesky) SolveVecTo(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("linalg: cholesky solve with vector of %d into %d, want %d: %w", len(b), len(dst), n, ErrShape)
	}
	// Forward solve L y = b, y stored in dst.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * dst[k]
		}
		dst[i] = s / c.l.At(i, i)
	}
	// Back solve Lᵀ x = y in place.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * dst[k]
		}
		dst[i] = s / c.l.At(i, i)
	}
	return nil
}

// SolveTo solves A X = B column-by-column into dst using colBuf (length
// ≥ order) as scratch, allocation-free. dst must not alias b.
func (c *Cholesky) SolveTo(dst, b *Matrix, colBuf []float64) error {
	n := c.l.rows
	if b.rows != n {
		return fmt.Errorf("linalg: cholesky solve %dx%d rhs for order %d: %w", b.rows, b.cols, n, ErrShape)
	}
	if dst.rows != b.rows || dst.cols != b.cols {
		return fmt.Errorf("linalg: cholesky solve destination %dx%d for %dx%d rhs: %w", dst.rows, dst.cols, b.rows, b.cols, ErrShape)
	}
	if len(colBuf) < n {
		return fmt.Errorf("linalg: cholesky solve scratch of %d for order %d: %w", len(colBuf), n, ErrShape)
	}
	col := colBuf[:n]
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		if err := c.SolveVecTo(col, col); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst.Set(i, j, col[i])
		}
	}
	return nil
}

// InverseTo writes A⁻¹ into dst using colBuf (length ≥ order) as scratch,
// allocation-free. Column j solves against the j-th unit vector, exactly as
// Inverse does via Solve(Identity).
func (c *Cholesky) InverseTo(dst *Matrix, colBuf []float64) error {
	n := c.l.rows
	if dst.rows != n || dst.cols != n {
		return fmt.Errorf("linalg: inverse destination %dx%d for order %d: %w", dst.rows, dst.cols, n, ErrShape)
	}
	if len(colBuf) < n {
		return fmt.Errorf("linalg: inverse scratch of %d for order %d: %w", len(colBuf), n, ErrShape)
	}
	col := colBuf[:n]
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = 0
		}
		col[j] = 1
		if err := c.SolveVecTo(col, col); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst.Set(i, j, col[i])
		}
	}
	return nil
}

package linalg

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix of float64 values. Row i's nonzero
// entries live in colIdx[rowPtr[i]:rowPtr[i+1]] / val[rowPtr[i]:rowPtr[i+1]]
// with column indices strictly ascending, so a row scan visits entries in
// the same left-to-right order a dense row scan does — which is what makes
// CSR·v bit-identical to dense·v: the skipped entries are exact zeros, and
// adding ±0 to a partial sum that starts at +0 never changes it under
// round-to-nearest.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// NewCSR wraps pre-built CSR storage. rowPtr must have rows+1 entries with
// rowPtr[0] == 0 and rowPtr[rows] == len(val); each row's column indices
// must be strictly ascending and in range. The slices are retained, not
// copied.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: negative CSR dimensions %dx%d: %w", rows, cols, ErrShape)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("linalg: CSR rowPtr has %d entries for %d rows: %w", len(rowPtr), rows, ErrShape)
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(val) || len(colIdx) != len(val) {
		return nil, fmt.Errorf("linalg: CSR storage lengths inconsistent (rowPtr end %d, %d cols, %d vals): %w",
			rowPtr[rows], len(colIdx), len(val), ErrShape)
	}
	for i := 0; i < rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi {
			return nil, fmt.Errorf("linalg: CSR row %d has negative extent: %w", i, ErrShape)
		}
		for k := lo; k < hi; k++ {
			if c := colIdx[k]; c < 0 || c >= cols {
				return nil, fmt.Errorf("linalg: CSR row %d column %d out of range [0,%d): %w", i, c, cols, ErrShape)
			}
			if k > lo && colIdx[k] <= colIdx[k-1] {
				return nil, fmt.Errorf("linalg: CSR row %d columns not strictly ascending at %d: %w", i, k, ErrShape)
			}
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// CSRFromDense converts a dense matrix to CSR, dropping exact zeros.
func CSRFromDense(m *Matrix) *CSR {
	rowPtr := make([]int, m.rows+1)
	var colIdx []int
	var val []float64
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if v != 0 {
				colIdx = append(colIdx, j)
				val = append(val, v)
			}
		}
		rowPtr[i+1] = len(val)
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Rows returns the number of rows.
func (s *CSR) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *CSR) Cols() int { return s.cols }

// NNZ returns the number of stored (nonzero) entries.
func (s *CSR) NNZ() int { return len(s.val) }

// At returns the element at row i, column j (zero when not stored).
func (s *CSR) At(i, j int) float64 {
	if i < 0 || i >= s.rows || j < 0 || j >= s.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d CSR", i, j, s.rows, s.cols))
	}
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	cols := s.colIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return s.val[lo+k]
	}
	return 0
}

// Dense materializes the sparse matrix as a dense Matrix.
func (s *CSR) Dense() *Matrix {
	m := NewMatrix(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			m.data[i*s.cols+s.colIdx[k]] = s.val[k]
		}
	}
	return m
}

// RowDot returns the inner product of row i with x, accumulating over the
// stored entries in ascending column order.
func (s *CSR) RowDot(i int, x []float64) float64 {
	b, e := s.rowPtr[i], s.rowPtr[i+1]
	vals := s.val[b:e]
	cols := s.colIdx[b:e]
	acc := 0.0
	for k, v := range vals {
		acc += v * x[cols[k]]
	}
	return acc
}

// MulVecTo computes dst = S·x without allocating. dst must not alias x.
func (s *CSR) MulVecTo(dst, x []float64) error {
	if s.cols != len(x) {
		return fmt.Errorf("linalg: CSR mulvec %dx%d by vector of %d: %w", s.rows, s.cols, len(x), ErrShape)
	}
	if len(dst) != s.rows {
		return fmt.Errorf("linalg: CSR mulvec destination of %d for %d rows: %w", len(dst), s.rows, ErrShape)
	}
	for i := 0; i < s.rows; i++ {
		dst[i] = s.RowDot(i, x)
	}
	return nil
}

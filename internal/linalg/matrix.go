// Package linalg provides small dense linear-algebra kernels used by the
// statistics and embedding substrates: matrix arithmetic, Cholesky and LU
// factorizations, triangular and general solves, and a few vector helpers.
//
// Matrices are row-major and sized at construction. The package favors
// clarity and numerical robustness over raw speed; the model matrices in
// this project are at most a few hundred rows, so dense O(n^3) kernels are
// more than fast enough.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or not positive definite, for Cholesky) to working
// precision.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible matrix shapes")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-valued r-by-c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length. The data is copied.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d: %w", i, len(row), c, ErrShape)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates v into the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice aliasing the matrix storage — the
// allocation-free counterpart of Row for hot read paths. Writing through
// the view mutates the matrix; callers that need isolation use Row.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("linalg: mul %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("linalg: mulvec %dx%d by vector of %d: %w", a.rows, a.cols, len(x), ErrShape)
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		s := 0.0
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// ScaleInPlace multiplies every element of m by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddInPlace accumulates s*b into m. Shapes must match.
func (m *Matrix) AddInPlace(b *Matrix, s float64) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("linalg: add %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	for i := range m.data {
		m.data[i] += s * b.data[i]
	}
	return nil
}

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrSingular if a is not positive
// definite to working precision.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: cholesky of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: leading minor %d not positive (%.6g): %w", j+1, d, ErrSingular)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// LogDet returns the log-determinant of the factored matrix A.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.l.rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveVec solves A x = b for x given the factorization of A.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: cholesky solve with vector of %d, want %d: %w", len(b), n, ErrShape)
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back solve Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// Solve solves A X = B column-by-column given the factorization of A.
func (c *Cholesky) Solve(b *Matrix) (*Matrix, error) {
	if b.rows != c.l.rows {
		return nil, fmt.Errorf("linalg: cholesky solve %dx%d rhs for order %d: %w", b.rows, b.cols, c.l.rows, ErrShape)
	}
	out := NewMatrix(b.rows, b.cols)
	col := make([]float64, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		x, err := c.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < b.rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Inverse returns A⁻¹ given the factorization of A.
func (c *Cholesky) Inverse() (*Matrix, error) {
	return c.Solve(Identity(c.l.rows))
}

// LU holds an LU factorization with partial pivoting: P A = L U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// NewLU factors the square matrix a with partial pivoting.
func NewLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: LU of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs, p = v, i
			}
		}
		if maxAbs < 1e-300 {
			return nil, fmt.Errorf("linalg: zero pivot at column %d: %w", k, ErrSingular)
		}
		pivot[k] = p
		if p != k {
			sign = -sign
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) * inv
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// SolveVec solves A x = b given the factorization.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU solve with vector of %d, want %d: %w", len(b), n, ErrShape)
	}
	x := make([]float64, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward solve with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s
	}
	// Back solve with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// LogDet returns log|det A| and the sign of det A.
func (f *LU) LogDet() (logAbs, sign float64) {
	sign = f.sign
	for i := 0; i < f.lu.rows; i++ {
		d := f.lu.At(i, i)
		if d < 0 {
			sign = -sign
			d = -d
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}

// Dot returns the inner product of two equal-length vectors, accumulating
// left to right. The reslice of b lets the compiler drop the per-element
// bounds checks — the summation order is unchanged.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot of lengths %d and %d", len(a), len(b)))
	}
	b = b[:len(a)]
	s := 0.0
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: axpy of lengths %d and %d", len(x), len(y)))
	}
	y = y[:len(x)]
	for i, xv := range x {
		y[i] += a * xv
	}
}

// AXPYDot computes y += a*x in place and returns Dot(z, y) over the updated
// y, all in one pass. Each y[i] is final before the dot term z[i]*y[i] is
// accumulated and the accumulation runs left to right, so the result is
// bit-identical to AXPY(a, x, y) followed by Dot(z, y) — the fusion exists
// for the orthogonalized power iteration, where every Gram-Schmidt update
// is immediately followed by the projection against the next basis vector.
func AXPYDot(a float64, x, y, z []float64) float64 {
	if len(x) != len(y) || len(z) != len(y) {
		panic(fmt.Sprintf("linalg: axpydot of lengths %d, %d, %d", len(x), len(y), len(z)))
	}
	x = x[:len(y)]
	z = z[:len(y)]
	s := 0.0
	for i := range y {
		v := y[i] + a*x[i]
		y[i] = v
		s += z[i] * v
	}
	return s
}

// Scale multiplies v by a in place.
func Scale(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// XtX returns XᵀX for the matrix x.
func XtX(x *Matrix) *Matrix {
	n := x.cols
	out := NewMatrix(n, n)
	for i := 0; i < x.rows; i++ {
		row := x.data[i*x.cols : (i+1)*x.cols]
		for a := 0; a < n; a++ {
			if row[a] == 0 {
				continue
			}
			for b := a; b < n; b++ {
				out.data[a*n+b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < a; b++ {
			out.data[a*n+b] = out.data[b*n+a]
		}
	}
	return out
}

// XtWX returns XᵀWX where w is a diagonal weight vector.
func XtWX(x *Matrix, w []float64) (*Matrix, error) {
	if len(w) != x.rows {
		return nil, fmt.Errorf("linalg: XtWX with %d weights for %d rows: %w", len(w), x.rows, ErrShape)
	}
	n := x.cols
	out := NewMatrix(n, n)
	for i := 0; i < x.rows; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		row := x.data[i*x.cols : (i+1)*x.cols]
		for a := 0; a < n; a++ {
			if row[a] == 0 {
				continue
			}
			wa := wi * row[a]
			for b := a; b < n; b++ {
				out.data[a*n+b] += wa * row[b]
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < a; b++ {
			out.data[a*n+b] = out.data[b*n+a]
		}
	}
	return out, nil
}

// XtV returns Xᵀv for a vector v with one entry per row of x.
func XtV(x *Matrix, v []float64) ([]float64, error) {
	if len(v) != x.rows {
		return nil, fmt.Errorf("linalg: XtV with %d entries for %d rows: %w", len(v), x.rows, ErrShape)
	}
	out := make([]float64, x.cols)
	for i := 0; i < x.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := x.data[i*x.cols : (i+1)*x.cols]
		for j := range row {
			out[j] += row[j] * vi
		}
	}
	return out, nil
}

// Package htest implements the hypothesis tests used in the paper's
// analysis: the Wilcoxon rank-sum test with continuity correction (R's
// wilcox.test default), Fisher's exact test for 2×2 tables, Welch's
// two-sample t-test, Pearson and Spearman correlation with p-values, and
// Krippendorff's alpha for ordinal inter-rater agreement.
//
// Each test returns a result struct carrying the statistic, the p-value,
// and test-specific extras; tests validate their inputs and return wrapped
// sentinel errors on degenerate samples rather than panicking.
package htest

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"decompstudy/internal/stats"
)

// ErrSample is returned when a test's sample-size or degeneracy
// preconditions are not met.
var ErrSample = errors.New("htest: sample does not meet test preconditions")

// Alternative selects the tail(s) of a test.
type Alternative int

// Supported alternatives. TwoSided is the zero value and the default used
// throughout the paper.
const (
	TwoSided Alternative = iota
	Less
	Greater
)

func (a Alternative) String() string {
	switch a {
	case TwoSided:
		return "two.sided"
	case Less:
		return "less"
	case Greater:
		return "greater"
	default:
		return fmt.Sprintf("Alternative(%d)", int(a))
	}
}

// WilcoxonResult reports a Wilcoxon rank-sum (Mann-Whitney) test.
type WilcoxonResult struct {
	// W is the rank-sum statistic of the first sample, in R's
	// parameterization (U statistic of sample x).
	W float64
	// Z is the normal approximation z-score after tie and continuity
	// corrections.
	Z float64
	// P is the p-value under the requested alternative.
	P float64
	// LocationShift is the Hodges-Lehmann estimate of the location
	// difference (median of pairwise differences x_i - y_j).
	LocationShift float64
}

// WilcoxonRankSum performs a two-sample Wilcoxon rank-sum test using the
// normal approximation with tie correction and continuity correction,
// matching R's wilcox.test(x, y, correct=TRUE, exact=FALSE).
func WilcoxonRankSum(x, y []float64, alt Alternative) (WilcoxonResult, error) {
	nx, ny := len(x), len(y)
	if nx == 0 || ny == 0 {
		return WilcoxonResult{}, fmt.Errorf("htest: wilcoxon with empty sample (nx=%d, ny=%d): %w", nx, ny, ErrSample)
	}
	combined := make([]float64, 0, nx+ny)
	combined = append(combined, x...)
	combined = append(combined, y...)
	ranks := stats.Ranks(combined)
	rx := 0.0
	for i := 0; i < nx; i++ {
		rx += ranks[i]
	}
	// U statistic for x (R's W).
	w := rx - float64(nx*(nx+1))/2
	n := float64(nx + ny)
	mu := float64(nx) * float64(ny) / 2
	ties := stats.TieCorrection(combined)
	sigma2 := float64(nx) * float64(ny) / 12 * (n + 1 - ties/(n*(n-1)))
	if sigma2 <= 0 {
		return WilcoxonResult{}, fmt.Errorf("htest: wilcoxon variance is zero (all values tied): %w", ErrSample)
	}
	sigma := math.Sqrt(sigma2)

	// Continuity correction in the direction of the alternative.
	var z, p float64
	switch alt {
	case TwoSided:
		d := w - mu
		var cc float64
		switch {
		case d > 0:
			cc = -0.5
		case d < 0:
			cc = 0.5
		}
		z = (d + cc) / sigma
		p = 2 * stats.StdNormalCDF(-math.Abs(z))
		if p > 1 {
			p = 1
		}
	case Greater:
		z = (w - mu - 0.5) / sigma
		p = 1 - stats.StdNormalCDF(z)
	case Less:
		z = (w - mu + 0.5) / sigma
		p = stats.StdNormalCDF(z)
	default:
		return WilcoxonResult{}, fmt.Errorf("htest: unknown alternative %v", alt)
	}

	return WilcoxonResult{W: w, Z: z, P: p, LocationShift: hodgesLehmann(x, y)}, nil
}

// hodgesLehmann returns the median of all pairwise differences x_i - y_j.
func hodgesLehmann(x, y []float64) float64 {
	diffs := make([]float64, 0, len(x)*len(y))
	for _, xi := range x {
		for _, yj := range y {
			diffs = append(diffs, xi-yj)
		}
	}
	return stats.Median(diffs)
}

// FisherResult reports Fisher's exact test on a 2×2 table.
type FisherResult struct {
	// P is the two-sided p-value (sum of all tables with probability no
	// greater than the observed one, R's default method).
	P float64
	// OddsRatio is the sample odds ratio (a*d)/(b*c); it is +Inf when b*c
	// is zero and a*d is not.
	OddsRatio float64
}

// FisherExact2x2 performs Fisher's exact test on the table
//
//	a b
//	c d
//
// with the two-sided p-value defined, as in R, as the total probability of
// tables at least as extreme (no more probable) than the one observed.
func FisherExact2x2(a, b, c, d int, alt Alternative) (FisherResult, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return FisherResult{}, fmt.Errorf("htest: fisher with negative cell: %w", ErrSample)
	}
	n := a + b + c + d
	if n == 0 {
		return FisherResult{}, fmt.Errorf("htest: fisher with empty table: %w", ErrSample)
	}
	row1 := a + b
	col1 := a + c
	// Support of the first cell given the margins.
	lo := max(0, row1+col1-n)
	hi := min(row1, col1)

	pObs, err := stats.HypergeomPMF(a, col1, row1, n)
	if err != nil {
		return FisherResult{}, err
	}

	var p float64
	switch alt {
	case TwoSided:
		// Sum probabilities of all tables no more probable than observed
		// (with a small relative tolerance, as in R).
		const relTol = 1 + 1e-7
		for k := lo; k <= hi; k++ {
			pk, err := stats.HypergeomPMF(k, col1, row1, n)
			if err != nil {
				return FisherResult{}, err
			}
			if pk <= pObs*relTol {
				p += pk
			}
		}
	case Greater:
		for k := a; k <= hi; k++ {
			pk, _ := stats.HypergeomPMF(k, col1, row1, n)
			p += pk
		}
	case Less:
		for k := lo; k <= a; k++ {
			pk, _ := stats.HypergeomPMF(k, col1, row1, n)
			p += pk
		}
	default:
		return FisherResult{}, fmt.Errorf("htest: unknown alternative %v", alt)
	}
	if p > 1 {
		p = 1
	}

	var or float64
	switch {
	case b*c != 0:
		or = float64(a*d) / float64(b*c)
	case a*d != 0:
		or = math.Inf(1)
	default:
		or = math.NaN()
	}
	return FisherResult{P: p, OddsRatio: or}, nil
}

// WelchResult reports Welch's two-sample t-test.
type WelchResult struct {
	// T is the t statistic.
	T float64
	// DF is the Welch-Satterthwaite degrees of freedom.
	DF float64
	// P is the p-value under the requested alternative.
	P float64
	// MeanX and MeanY are the two sample means.
	MeanX, MeanY float64
}

// WelchT performs Welch's unequal-variances two-sample t-test.
func WelchT(x, y []float64, alt Alternative) (WelchResult, error) {
	if len(x) < 2 || len(y) < 2 {
		return WelchResult{}, fmt.Errorf("htest: welch needs ≥2 observations per group (nx=%d, ny=%d): %w", len(x), len(y), ErrSample)
	}
	mx, my := stats.Mean(x), stats.Mean(y)
	vx, vy := stats.Variance(x), stats.Variance(y)
	nx, ny := float64(len(x)), float64(len(y))
	se2 := vx/nx + vy/ny
	if se2 == 0 {
		return WelchResult{}, fmt.Errorf("htest: welch with zero variance in both samples: %w", ErrSample)
	}
	tStat := (mx - my) / math.Sqrt(se2)
	df := se2 * se2 / ((vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1)))
	var p float64
	var err error
	switch alt {
	case TwoSided:
		p, err = stats.TTailP(tStat, df)
	case Greater:
		var cdf float64
		cdf, err = stats.TCDF(tStat, df)
		p = 1 - cdf
	case Less:
		p, err = stats.TCDF(tStat, df)
	default:
		return WelchResult{}, fmt.Errorf("htest: unknown alternative %v", alt)
	}
	if err != nil {
		return WelchResult{}, err
	}
	return WelchResult{T: tStat, DF: df, P: p, MeanX: mx, MeanY: my}, nil
}

// CorrResult reports a correlation test.
type CorrResult struct {
	// R is the correlation coefficient (Pearson's r or Spearman's ρ).
	R float64
	// P is the two-sided p-value from the t approximation.
	P float64
	// N is the number of paired observations.
	N int
}

// Pearson computes Pearson's product-moment correlation with a two-sided
// t-test p-value.
func Pearson(x, y []float64) (CorrResult, error) {
	if len(x) != len(y) {
		return CorrResult{}, fmt.Errorf("htest: pearson with unequal lengths %d and %d: %w", len(x), len(y), ErrSample)
	}
	n := len(x)
	if n < 3 {
		return CorrResult{}, fmt.Errorf("htest: pearson needs ≥3 pairs, got %d: %w", n, ErrSample)
	}
	mx, my := stats.Mean(x), stats.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return CorrResult{}, fmt.Errorf("htest: pearson with constant sample: %w", ErrSample)
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against floating-point |r| slightly above 1.
	r = math.Max(-1, math.Min(1, r))
	var p float64
	if math.Abs(r) == 1 {
		p = 0
	} else {
		tStat := r * math.Sqrt(float64(n-2)/(1-r*r))
		var err error
		p, err = stats.TTailP(tStat, float64(n-2))
		if err != nil {
			return CorrResult{}, err
		}
	}
	return CorrResult{R: r, P: p, N: n}, nil
}

// Spearman computes Spearman's rank correlation ρ with a two-sided t
// approximation p-value (the method R uses for samples with ties).
func Spearman(x, y []float64) (CorrResult, error) {
	if len(x) != len(y) {
		return CorrResult{}, fmt.Errorf("htest: spearman with unequal lengths %d and %d: %w", len(x), len(y), ErrSample)
	}
	res, err := Pearson(stats.Ranks(x), stats.Ranks(y))
	if err != nil {
		return CorrResult{}, fmt.Errorf("htest: spearman: %w", err)
	}
	return res, nil
}

// KrippendorffOrdinal computes Krippendorff's alpha for ordinal data.
// ratings[u][r] is rater r's score for unit u; NaN marks a missing rating.
// Scores must be small non-negative integers encoded as float64 (Likert
// levels). Units with fewer than two ratings are ignored, as the
// coefficient requires pairable values.
func KrippendorffOrdinal(ratings [][]float64) (float64, error) {
	// Collect the set of levels in use.
	levelSet := map[int]bool{}
	for _, unit := range ratings {
		for _, v := range unit {
			if !math.IsNaN(v) {
				levelSet[int(v)] = true
			}
		}
	}
	if len(levelSet) == 0 {
		return 0, fmt.Errorf("htest: krippendorff with no ratings: %w", ErrSample)
	}
	levels := make([]int, 0, len(levelSet))
	for l := range levelSet {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	index := make(map[int]int, len(levels))
	for i, l := range levels {
		index[l] = i
	}
	k := len(levels)

	// Coincidence matrix.
	co := make([][]float64, k)
	for i := range co {
		co[i] = make([]float64, k)
	}
	totalPairable := 0.0
	for _, unit := range ratings {
		var vals []int
		for _, v := range unit {
			if !math.IsNaN(v) {
				vals = append(vals, index[int(v)])
			}
		}
		m := len(vals)
		if m < 2 {
			continue
		}
		totalPairable += float64(m)
		w := 1 / float64(m-1)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j {
					co[vals[i]][vals[j]] += w
				}
			}
		}
	}
	if totalPairable == 0 {
		return 0, fmt.Errorf("htest: krippendorff needs at least one unit with two ratings: %w", ErrSample)
	}

	// Marginals.
	nc := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			nc[i] += co[i][j]
		}
	}
	n := 0.0
	for _, v := range nc {
		n += v
	}

	// Ordinal distance: δ(c,d)² = (Σ_{g=c..d} n_g − (n_c + n_d)/2)².
	dist := func(c, d int) float64 {
		if c == d {
			return 0
		}
		if c > d {
			c, d = d, c
		}
		s := 0.0
		for g := c; g <= d; g++ {
			s += nc[g]
		}
		s -= (nc[c] + nc[d]) / 2
		return s * s
	}

	var dObs, dExp float64
	for c := 0; c < k; c++ {
		for d := 0; d < k; d++ {
			if c == d {
				continue
			}
			delta := dist(c, d)
			dObs += co[c][d] * delta
			dExp += nc[c] * nc[d] * delta
		}
	}
	if dExp == 0 {
		// Perfect agreement on a single level everywhere.
		return 1, nil
	}
	dExp /= n - 1
	return 1 - dObs/dExp, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

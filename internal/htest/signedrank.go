package htest

import (
	"fmt"
	"math"

	"decompstudy/internal/stats"
)

// SignedRankResult reports a Wilcoxon signed-rank test on paired samples.
type SignedRankResult struct {
	// V is the signed-rank statistic (sum of positive-difference ranks, R's
	// parameterization).
	V float64
	// Z is the normal approximation z-score after tie and continuity
	// corrections.
	Z float64
	// P is the p-value under the requested alternative.
	P float64
	// N is the number of non-zero differences used.
	N int
}

// WilcoxonSignedRank performs the paired Wilcoxon signed-rank test between
// x and y using the normal approximation with continuity correction,
// matching R's wilcox.test(x, y, paired=TRUE, correct=TRUE, exact=FALSE).
// Zero differences are dropped (the zero-elimination convention). The
// paper's between-subjects design uses the rank-sum test; the signed-rank
// variant serves within-subject follow-up designs where each participant
// sees both arms of the same snippet.
func WilcoxonSignedRank(x, y []float64, alt Alternative) (SignedRankResult, error) {
	if len(x) != len(y) {
		return SignedRankResult{}, fmt.Errorf("htest: signed-rank with unequal lengths %d and %d: %w", len(x), len(y), ErrSample)
	}
	var diffs []float64
	for i := range x {
		if d := x[i] - y[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n == 0 {
		return SignedRankResult{}, fmt.Errorf("htest: signed-rank with all-zero differences: %w", ErrSample)
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := stats.Ranks(abs)
	v := 0.0
	for i, d := range diffs {
		if d > 0 {
			v += ranks[i]
		}
	}
	nf := float64(n)
	mu := nf * (nf + 1) / 4
	ties := stats.TieCorrection(abs)
	sigma2 := nf*(nf+1)*(2*nf+1)/24 - ties/48
	if sigma2 <= 0 {
		return SignedRankResult{}, fmt.Errorf("htest: signed-rank variance is zero: %w", ErrSample)
	}
	sigma := math.Sqrt(sigma2)

	var z, p float64
	switch alt {
	case TwoSided:
		d := v - mu
		var cc float64
		switch {
		case d > 0:
			cc = -0.5
		case d < 0:
			cc = 0.5
		}
		z = (d + cc) / sigma
		p = 2 * stats.StdNormalCDF(-math.Abs(z))
		if p > 1 {
			p = 1
		}
	case Greater:
		z = (v - mu - 0.5) / sigma
		p = 1 - stats.StdNormalCDF(z)
	case Less:
		z = (v - mu + 0.5) / sigma
		p = stats.StdNormalCDF(z)
	default:
		return SignedRankResult{}, fmt.Errorf("htest: unknown alternative %v", alt)
	}
	return SignedRankResult{V: v, Z: z, P: p, N: n}, nil
}

package htest_test

import (
	"fmt"

	"decompstudy/internal/htest"
)

// The paper's §IV-A Fisher test shape: nearly-perfect control arm versus a
// half-misled treatment arm on POSTORDER-Q2.
func ExampleFisherExact2x2() {
	res, err := htest.FisherExact2x2(10, 8, 17, 1, htest.TwoSided)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("significant: %t\n", res.P < 0.05)
	// Output:
	// significant: true
}

func ExampleWilcoxonRankSum() {
	dirty := []float64{1, 2, 1, 2, 2, 1, 1, 2, 1, 2}
	hexrays := []float64{3, 4, 3, 4, 3, 4, 4, 3, 3, 4}
	res, err := htest.WilcoxonRankSum(dirty, hexrays, htest.TwoSided)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("dirty ratings better (lower): %t, significant: %t\n",
		res.LocationShift < 0, res.P < 0.001)
	// Output:
	// dirty ratings better (lower): true, significant: true
}

func ExampleSpearman() {
	likert := []float64{1, 2, 3, 4, 5, 1, 2, 3, 4, 5}
	correct := []float64{0, 0, 1, 1, 1, 0, 1, 0, 1, 1}
	res, err := htest.Spearman(likert, correct)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("rho positive: %t\n", res.R > 0)
	// Output:
	// rho positive: true
}

package htest

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g (tol %g)", name, got, want, tol)
	}
}

// The x/y fixtures and expected values below were computed independently
// with exact enumeration (Fisher) and high-resolution numeric integration
// of the t density (Welch, Spearman); they match R's wilcox.test,
// fisher.test, t.test, and cor.test outputs.
var (
	fixtureX = []float64{1.83, 0.50, 1.62, 2.48, 1.68, 1.88, 1.55, 3.06, 1.30}
	fixtureY = []float64{0.878, 0.647, 0.598, 2.05, 1.06, 1.29, 1.06, 3.14, 1.29}
)

func TestWilcoxonRankSum(t *testing.T) {
	res, err := WilcoxonRankSum(fixtureX, fixtureY, TwoSided)
	if err != nil {
		t.Fatalf("WilcoxonRankSum: %v", err)
	}
	approx(t, "W", res.W, 58, 1e-12)
	approx(t, "Z", res.Z, 1.5026882342, 1e-9)
	approx(t, "P", res.P, 0.1329194582, 1e-9)
}

func TestWilcoxonRankSumWithTies(t *testing.T) {
	x := []float64{1, 2, 2, 3, 3, 3, 4}
	y := []float64{2, 3, 3, 4, 4, 5, 5}
	res, err := WilcoxonRankSum(x, y, TwoSided)
	if err != nil {
		t.Fatalf("WilcoxonRankSum: %v", err)
	}
	approx(t, "W ties", res.W, 11, 1e-12)
	approx(t, "P ties", res.P, 0.0860363144, 1e-9)
}

func TestWilcoxonOneSided(t *testing.T) {
	resG, err := WilcoxonRankSum(fixtureX, fixtureY, Greater)
	if err != nil {
		t.Fatalf("greater: %v", err)
	}
	resL, err := WilcoxonRankSum(fixtureX, fixtureY, Less)
	if err != nil {
		t.Fatalf("less: %v", err)
	}
	if resG.P >= 0.5 || resL.P <= 0.5 {
		t.Errorf("one-sided p-values: greater=%v, less=%v; x is stochastically larger", resG.P, resL.P)
	}
}

func TestWilcoxonDegenerate(t *testing.T) {
	if _, err := WilcoxonRankSum(nil, []float64{1}, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("empty sample: err = %v, want ErrSample", err)
	}
	if _, err := WilcoxonRankSum([]float64{1, 1}, []float64{1, 1}, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("all tied: err = %v, want ErrSample", err)
	}
}

func TestFisherExactKnownTables(t *testing.T) {
	cases := []struct {
		a, b, c, d int
		want       float64
	}{
		{1, 9, 11, 3, 0.0027594562}, // R's tea-tasting style example
		{12, 5, 5, 12, 0.0380843431},
		{3, 1, 1, 3, 0.4857142857},
	}
	for _, c := range cases {
		res, err := FisherExact2x2(c.a, c.b, c.c, c.d, TwoSided)
		if err != nil {
			t.Fatalf("FisherExact2x2(%d,%d,%d,%d): %v", c.a, c.b, c.c, c.d, err)
		}
		approx(t, "fisher p", res.P, c.want, 1e-9)
	}
}

func TestFisherExactOneSided(t *testing.T) {
	// One-sided tails must sum to ≥ 1 (they share the observed table).
	g, err := FisherExact2x2(12, 5, 5, 12, Greater)
	if err != nil {
		t.Fatalf("greater: %v", err)
	}
	l, err := FisherExact2x2(12, 5, 5, 12, Less)
	if err != nil {
		t.Fatalf("less: %v", err)
	}
	if g.P+l.P < 1 {
		t.Errorf("one-sided tails sum to %v, want ≥ 1", g.P+l.P)
	}
	if g.P > 0.05 {
		t.Errorf("greater-tail p = %v, want < 0.05 for this association", g.P)
	}
}

func TestFisherExactErrors(t *testing.T) {
	if _, err := FisherExact2x2(-1, 0, 0, 0, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("negative cell: err = %v, want ErrSample", err)
	}
	if _, err := FisherExact2x2(0, 0, 0, 0, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("empty table: err = %v, want ErrSample", err)
	}
}

func TestFisherOddsRatio(t *testing.T) {
	res, _ := FisherExact2x2(4, 2, 1, 3, TwoSided)
	approx(t, "odds ratio", res.OddsRatio, 6, 1e-12)
	res, _ = FisherExact2x2(4, 0, 1, 3, TwoSided)
	if !math.IsInf(res.OddsRatio, 1) {
		t.Errorf("odds ratio with zero cell = %v, want +Inf", res.OddsRatio)
	}
}

func TestWelchT(t *testing.T) {
	res, err := WelchT(fixtureX, fixtureY, TwoSided)
	if err != nil {
		t.Fatalf("WelchT: %v", err)
	}
	approx(t, "t", res.T, 1.2051727991, 1e-9)
	approx(t, "df", res.DF, 15.7950355825, 1e-8)
	approx(t, "p", res.P, 0.2458828385, 1e-7)
}

func TestWelchTDegenerate(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("tiny sample: err = %v, want ErrSample", err)
	}
	if _, err := WelchT([]float64{2, 2}, []float64{3, 3}, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("zero variance: err = %v, want ErrSample", err)
	}
}

func TestSpearman(t *testing.T) {
	res, err := Spearman(fixtureX, fixtureY)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	approx(t, "rho", res.R, 0.6470816712, 1e-9)
	approx(t, "p", res.P, 0.0595922135, 1e-7)
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 100, 1000, 10000, 100000}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	approx(t, "rho", res.R, 1, 1e-12)
	approx(t, "p", res.P, 0, 1e-12)
}

func TestPearsonDegenerate(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrSample) {
		t.Errorf("length mismatch: err = %v, want ErrSample", err)
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !errors.Is(err, ErrSample) {
		t.Errorf("constant x: err = %v, want ErrSample", err)
	}
}

func TestKrippendorffBinaryHandComputed(t *testing.T) {
	// Units: (0,0), (1,1), (0,1), (0,0); by hand α = 8/15 ≈ 0.5333.
	ratings := [][]float64{{0, 0}, {1, 1}, {0, 1}, {0, 0}}
	alpha, err := KrippendorffOrdinal(ratings)
	if err != nil {
		t.Fatalf("KrippendorffOrdinal: %v", err)
	}
	approx(t, "alpha", alpha, 8.0/15, 1e-12)
}

func TestKrippendorffPerfectAgreement(t *testing.T) {
	ratings := [][]float64{{1, 1, 1}, {3, 3, 3}, {5, 5, 5}}
	alpha, err := KrippendorffOrdinal(ratings)
	if err != nil {
		t.Fatalf("KrippendorffOrdinal: %v", err)
	}
	approx(t, "alpha perfect", alpha, 1, 1e-12)
}

func TestKrippendorffMissingData(t *testing.T) {
	nan := math.NaN()
	ratings := [][]float64{{1, 1, nan}, {2, nan, 2}, {3, 3, 3}, {nan, nan, 4}}
	alpha, err := KrippendorffOrdinal(ratings)
	if err != nil {
		t.Fatalf("KrippendorffOrdinal with missing: %v", err)
	}
	approx(t, "alpha missing", alpha, 1, 1e-12) // all pairable values agree
}

func TestKrippendorffOrdinalSensitivity(t *testing.T) {
	// Ordinal alpha must punish a 1-vs-5 disagreement more than 1-vs-2.
	near := [][]float64{{1, 2}, {1, 1}, {5, 5}, {3, 3}, {2, 2}, {4, 4}}
	far := [][]float64{{1, 5}, {1, 1}, {5, 5}, {3, 3}, {2, 2}, {4, 4}}
	aNear, err := KrippendorffOrdinal(near)
	if err != nil {
		t.Fatalf("near: %v", err)
	}
	aFar, err := KrippendorffOrdinal(far)
	if err != nil {
		t.Fatalf("far: %v", err)
	}
	if aNear <= aFar {
		t.Errorf("ordinal alpha: near-disagreement %v should exceed far-disagreement %v", aNear, aFar)
	}
}

func TestKrippendorffErrors(t *testing.T) {
	if _, err := KrippendorffOrdinal(nil); !errors.Is(err, ErrSample) {
		t.Errorf("no ratings: err = %v, want ErrSample", err)
	}
	nan := math.NaN()
	if _, err := KrippendorffOrdinal([][]float64{{1, nan}, {nan, 2}}); !errors.Is(err, ErrSample) {
		t.Errorf("no pairable: err = %v, want ErrSample", err)
	}
}

func TestAlternativeString(t *testing.T) {
	if TwoSided.String() != "two.sided" || Less.String() != "less" || Greater.String() != "greater" {
		t.Error("Alternative String() mismatch")
	}
}

// Property: Fisher's two-sided p is symmetric under transposing the table
// and under swapping both rows and columns.
func TestQuickFisherSymmetry(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		ai, bi, ci, di := int(a%12), int(b%12), int(c%12), int(d%12)
		if ai+bi+ci+di == 0 {
			return true
		}
		p1, err1 := FisherExact2x2(ai, bi, ci, di, TwoSided)
		p2, err2 := FisherExact2x2(ai, ci, bi, di, TwoSided) // transpose
		p3, err3 := FisherExact2x2(di, ci, bi, ai, TwoSided) // rotate 180°
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(p1.P-p2.P) < 1e-9 && math.Abs(p1.P-p3.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms of
// either variable.
func TestQuickSpearmanMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i]*0.5 + rng.NormFloat64()
		}
		r1, err := Spearman(x, y)
		if err != nil {
			return true // constant sample by chance
		}
		// exp is strictly monotone.
		xt := make([]float64, n)
		for i := range x {
			xt[i] = math.Exp(x[i])
		}
		r2, err := Spearman(xt, y)
		if err != nil {
			return false
		}
		return math.Abs(r1.R-r2.R) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Wilcoxon p-value is symmetric in its arguments.
func TestQuickWilcoxonSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 3+rng.Intn(10), 3+rng.Intn(10)
		x := make([]float64, nx)
		y := make([]float64, ny)
		for i := range x {
			x[i] = float64(rng.Intn(6))
		}
		for i := range y {
			y[i] = float64(rng.Intn(6)) + 0.5
		}
		r1, err1 := WilcoxonRankSum(x, y, TwoSided)
		r2, err2 := WilcoxonRankSum(y, x, TwoSided)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return math.Abs(r1.P-r2.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWilcoxonSignedRank(t *testing.T) {
	// Paired version of the fixture; V, Z, p verified independently
	// (matches R's wilcox.test(x, y, paired=TRUE, exact=FALSE)).
	res, err := WilcoxonSignedRank(fixtureX, fixtureY, TwoSided)
	if err != nil {
		t.Fatalf("WilcoxonSignedRank: %v", err)
	}
	approx(t, "V", res.V, 40, 1e-12)
	approx(t, "Z", res.Z, 2.0139861844, 1e-9)
	approx(t, "P", res.P, 0.0440109840, 1e-9)
	if res.N != 9 {
		t.Errorf("N = %d, want 9", res.N)
	}
}

func TestWilcoxonSignedRankDropsZeroDiffs(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 1, 3, 2}
	res, err := WilcoxonSignedRank(x, y, TwoSided)
	if err != nil {
		t.Fatalf("WilcoxonSignedRank: %v", err)
	}
	if res.N != 2 {
		t.Errorf("N = %d, want 2 after zero elimination", res.N)
	}
}

func TestWilcoxonSignedRankErrors(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("length mismatch: err = %v, want ErrSample", err)
	}
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}, TwoSided); !errors.Is(err, ErrSample) {
		t.Errorf("all zero diffs: err = %v, want ErrSample", err)
	}
}

// Property: signed-rank is antisymmetric — swapping the samples flips the
// one-sided tails and preserves the two-sided p.
func TestQuickSignedRankAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(15)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(10))
			y[i] = float64(rng.Intn(10))
		}
		r1, err1 := WilcoxonSignedRank(x, y, TwoSided)
		r2, err2 := WilcoxonSignedRank(y, x, TwoSided)
		if err1 != nil || err2 != nil {
			return (err1 != nil) == (err2 != nil)
		}
		return math.Abs(r1.P-r2.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

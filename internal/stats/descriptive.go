package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs, or
// NaN if xs has fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// PopVariance returns the population (n denominator) variance of xs, or NaN
// if xs is empty.
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or NaN if xs is empty. xs is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs using linear interpolation
// between order statistics (type 7, the R default). It returns NaN for
// empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FiveNumber holds a Tukey five-number summary plus the mean, used to render
// boxplots.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNumber, error) {
	if len(xs) == 0 {
		return FiveNumber{}, fmt.Errorf("stats: Summarize of empty sample: %w", ErrDomain)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return FiveNumber{
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		N:      len(sorted),
	}, nil
}

// Ranks assigns 1-based ranks to xs, averaging ranks across ties (midranks),
// as required by Wilcoxon and Spearman procedures.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank over the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// TieCorrection returns Σ (t³ - t) over tie groups in xs, used by the
// variance corrections in rank tests.
func TieCorrection(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	total := 0.0
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			total += t*t*t - t
		}
		i = j + 1
	}
	return total
}

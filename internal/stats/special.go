// Package stats provides the probability distributions, special functions,
// and descriptive statistics that underlie the hypothesis tests and
// mixed-effects models in this project. Everything is implemented on top of
// the standard library's math package (Lgamma, Erf); the incomplete beta and
// gamma functions use the continued-fraction and series expansions from
// Numerical Recipes, which are accurate to roughly 1e-12 over the parameter
// ranges exercised here.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDomain is returned when a function is evaluated outside its domain.
var ErrDomain = errors.New("stats: argument outside function domain")

const (
	maxIterations = 300
	epsilon       = 3e-14
	fpMin         = 1e-300
)

// LogBeta returns the natural log of the complete beta function B(a, b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// the CDF of the Beta(a, b) distribution at x.
func RegIncBeta(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("stats: RegIncBeta(a=%g, b=%g): %w", a, b, ErrDomain)
	}
	if x < 0 || x > 1 {
		return 0, fmt.Errorf("stats: RegIncBeta x=%g: %w", x, ErrDomain)
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	// Front factor: x^a (1-x)^b / (a B(a,b)).
	lf := a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b)
	front := math.Exp(lf)
	// Use the continued fraction directly when x < (a+1)/(a+b+2),
	// otherwise use the symmetry relation.
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) (float64, error) {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			return h, nil
		}
	}
	return h, fmt.Errorf("stats: incomplete beta continued fraction did not converge (a=%g, b=%g, x=%g)", a, b, x)
}

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), the CDF of the Gamma(a, 1) distribution at x.
func RegIncGammaP(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("stats: RegIncGammaP(a=%g): %w", a, ErrDomain)
	}
	if x < 0 {
		return 0, fmt.Errorf("stats: RegIncGammaP(x=%g): %w", x, ErrDomain)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		// Series representation converges quickly.
		return gammaSeries(a, x)
	}
	// Continued fraction for Q(a, x); P = 1 - Q.
	q, err := gammaCF(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 1; n <= maxIterations; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma series did not converge (a=%g, x=%g)", a, x)
}

func gammaCF(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpMin
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = b + an/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma continued fraction did not converge (a=%g, x=%g)", a, x)
}

// LogChoose returns log of the binomial coefficient C(n, k).
func LogChoose(n, k int) (float64, error) {
	if k < 0 || n < 0 || k > n {
		return 0, fmt.Errorf("stats: LogChoose(%d, %d): %w", n, k, ErrDomain)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk, nil
}

package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns P(Z ≤ x) for Z ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// StdNormalCDF returns P(Z ≤ x) for a standard normal Z.
func StdNormalCDF(x float64) float64 { return NormalCDF(x, 0, 1) }

// StdNormalQuantile returns the x with P(Z ≤ x) = p for a standard normal Z,
// using the Acklam rational approximation refined with one Halley step.
func StdNormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: StdNormalQuantile(p=%g): %w", p, ErrDomain)
	}
	// Acklam's approximation coefficients.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// TCDF returns P(T ≤ x) for Student's t with df degrees of freedom.
func TCDF(x, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: TCDF(df=%g): %w", df, ErrDomain)
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if math.IsInf(x, -1) {
		return 0, nil
	}
	ib, err := RegIncBeta(df/2, 0.5, df/(df+x*x))
	if err != nil {
		return 0, err
	}
	if x > 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// TTailP returns the two-sided p-value for an observed t statistic with df
// degrees of freedom.
func TTailP(t, df float64) (float64, error) {
	cdf, err := TCDF(-math.Abs(t), df)
	if err != nil {
		return 0, err
	}
	return 2 * cdf, nil
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square with df degrees of freedom.
func ChiSquareCDF(x, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: ChiSquareCDF(df=%g): %w", df, ErrDomain)
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGammaP(df/2, x/2)
}

// FCDF returns P(X ≤ x) for an F distribution with d1 and d2 degrees of
// freedom.
func FCDF(x, d1, d2 float64) (float64, error) {
	if d1 <= 0 || d2 <= 0 {
		return 0, fmt.Errorf("stats: FCDF(d1=%g, d2=%g): %w", d1, d2, ErrDomain)
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncBeta(d1/2, d2/2, d1*x/(d1*x+d2))
}

// HypergeomPMF returns P(X = k) where X counts successes in a draw of n from
// a population of size nn containing kk successes.
func HypergeomPMF(k, kk, n, nn int) (float64, error) {
	if nn < 0 || kk < 0 || kk > nn || n < 0 || n > nn {
		return 0, fmt.Errorf("stats: HypergeomPMF population (k=%d in %d, draw %d of %d): %w", kk, nn, n, nn, ErrDomain)
	}
	if k < 0 || k > n || k > kk || n-k > nn-kk {
		return 0, nil
	}
	a, err := LogChoose(kk, k)
	if err != nil {
		return 0, err
	}
	b, err := LogChoose(nn-kk, n-k)
	if err != nil {
		return 0, err
	}
	c, err := LogChoose(nn, n)
	if err != nil {
		return 0, err
	}
	return math.Exp(a + b - c), nil
}

// LogisticCDF returns the standard logistic CDF at x.
func LogisticCDF(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g (tol %g)", name, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, "Φ(0)", StdNormalCDF(0), 0.5, 1e-15)
	approx(t, "Φ(1.96)", StdNormalCDF(1.96), 0.9750021049, 1e-9)
	approx(t, "Φ(-1.6449)", StdNormalCDF(-1.6448536269514722), 0.05, 1e-9)
	approx(t, "N(2,3) at 5", NormalCDF(5, 2, 3), StdNormalCDF(1), 1e-15)
}

func TestStdNormalQuantile(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x, err := StdNormalQuantile(p)
		if err != nil {
			t.Fatalf("quantile(%v): %v", p, err)
		}
		approx(t, "Φ(Φ⁻¹(p))", StdNormalCDF(x), p, 1e-10)
	}
	if _, err := StdNormalQuantile(0); !errors.Is(err, ErrDomain) {
		t.Errorf("quantile(0): err = %v, want ErrDomain", err)
	}
	if _, err := StdNormalQuantile(1); !errors.Is(err, ErrDomain) {
		t.Errorf("quantile(1): err = %v, want ErrDomain", err)
	}
}

func TestTCDFAgainstR(t *testing.T) {
	// Reference values from R's pt().
	cases := []struct {
		x, df, want float64
	}{
		{0, 5, 0.5},
		{1, 1, 0.75},                 // pt(1, 1)
		{2.0, 10, 0.9633059826},      // pt(2, 10)
		{-2.5, 30, 0.009057825},      // pt(-2.5, 30)
		{1.6448536, 1e6, 0.95000033}, // converges to normal
	}
	for _, c := range cases {
		got, err := TCDF(c.x, c.df)
		if err != nil {
			t.Fatalf("TCDF(%v, %v): %v", c.x, c.df, err)
		}
		approx(t, "TCDF", got, c.want, 1e-6)
	}
}

func TestTTailP(t *testing.T) {
	// R: 2*pt(-2, 20) = 0.05926554
	p, err := TTailP(2, 20)
	if err != nil {
		t.Fatalf("TTailP: %v", err)
	}
	approx(t, "TTailP(2,20)", p, 0.05926554, 1e-6)
	// Symmetry.
	pNeg, _ := TTailP(-2, 20)
	approx(t, "TTailP symmetry", pNeg, p, 1e-14)
}

func TestChiSquareCDFAgainstR(t *testing.T) {
	// R: pchisq(3.841459, 1) = 0.95; pchisq(5, 3) = 0.8282029.
	got, err := ChiSquareCDF(3.841458820694124, 1)
	if err != nil {
		t.Fatalf("ChiSquareCDF: %v", err)
	}
	approx(t, "pchisq(3.84,1)", got, 0.95, 1e-8)
	got, _ = ChiSquareCDF(5, 3)
	approx(t, "pchisq(5,3)", got, 0.8282029, 1e-6)
}

func TestFCDFAgainstR(t *testing.T) {
	// R: pf(1, 1, 1) = 0.5; pf(2.5, 3, 12) = 0.8908453.
	got, err := FCDF(1, 1, 1)
	if err != nil {
		t.Fatalf("FCDF: %v", err)
	}
	approx(t, "pf(1,1,1)", got, 0.5, 1e-8)
	got, _ = FCDF(2.5, 3, 12)
	approx(t, "pf(2.5,3,12)", got, 0.8908453, 1e-6)
}

func TestHypergeomPMF(t *testing.T) {
	// Drawing 5 from 20 with 8 successes: P(X=2).
	// R: dhyper(2, 8, 12, 5) = 0.3973168
	got, err := HypergeomPMF(2, 8, 5, 20)
	if err != nil {
		t.Fatalf("HypergeomPMF: %v", err)
	}
	approx(t, "dhyper(2,8,12,5)", got, 0.3973168, 1e-6)
	// Out-of-support values are zero, not errors.
	got, err = HypergeomPMF(7, 8, 5, 20)
	if err != nil || got != 0 {
		t.Errorf("out-of-support pmf = (%v, %v), want (0, nil)", got, err)
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	sum := 0.0
	for k := 0; k <= 5; k++ {
		p, err := HypergeomPMF(k, 8, 5, 20)
		if err != nil {
			t.Fatalf("HypergeomPMF(%d): %v", k, err)
		}
		sum += p
	}
	approx(t, "Σ pmf", sum, 1, 1e-12)
}

func TestRegIncBetaEdges(t *testing.T) {
	for _, c := range []struct{ a, b, x, want float64 }{
		{2, 3, 0, 0},
		{2, 3, 1, 1},
		{1, 1, 0.3, 0.3}, // Beta(1,1) is uniform
		{2, 2, 0.5, 0.5}, // symmetric
	} {
		got, err := RegIncBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("RegIncBeta(%v,%v,%v): %v", c.a, c.b, c.x, err)
		}
		approx(t, "RegIncBeta", got, c.want, 1e-10)
	}
	if _, err := RegIncBeta(-1, 1, 0.5); !errors.Is(err, ErrDomain) {
		t.Errorf("negative a: err = %v, want ErrDomain", err)
	}
	if _, err := RegIncBeta(1, 1, 2); !errors.Is(err, ErrDomain) {
		t.Errorf("x>1: err = %v, want ErrDomain", err)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "pop variance", PopVariance(xs), 4, 1e-12)
	approx(t, "sample variance", Variance(xs), 32.0/7, 1e-12)
	approx(t, "median", Median(xs), 4.5, 1e-12)
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
}

func TestQuantileMatchesRType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// R: quantile(1:10, 0.25) = 3.25
	approx(t, "q25", Quantile(xs, 0.25), 3.25, 1e-12)
	approx(t, "q75", Quantile(xs, 0.75), 7.75, 1e-12)
	approx(t, "q0", Quantile(xs, 0), 1, 1e-12)
	approx(t, "q1", Quantile(xs, 1), 10, 1e-12)
}

func TestSummarize(t *testing.T) {
	fn, err := Summarize([]float64{3, 1, 2})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if fn.Min != 1 || fn.Max != 3 || fn.Median != 2 || fn.N != 3 {
		t.Errorf("Summarize = %+v", fn)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil): want error")
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %v, want %v", i, ranks[i], want[i])
		}
	}
}

func TestTieCorrection(t *testing.T) {
	// One tie group of 3: 3³-3 = 24.
	approx(t, "ties", TieCorrection([]float64{1, 2, 2, 2, 5}), 24, 1e-12)
	approx(t, "no ties", TieCorrection([]float64{1, 2, 3}), 0, 1e-12)
}

// Property: ranks are a permutation-invariant bijection onto average ranks;
// they always sum to n(n+1)/2.
func TestQuickRanksSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) // force ties
		}
		sum := 0.0
		for _, r := range Ranks(xs) {
			sum += r
		}
		return math.Abs(sum-float64(n*(n+1))/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CDFs are monotone non-decreasing in x.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		df := 1 + rng.Float64()*30
		prev := -1.0
		for x := -5.0; x <= 5; x += 0.5 {
			v, err := TCDF(x, df)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: quantile of the CDF is the identity on (0,1).
func TestQuickNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p <= 1e-6 || p >= 1-1e-6 || math.IsNaN(p) {
			return true
		}
		x, err := StdNormalQuantile(p)
		if err != nil {
			return false
		}
		return math.Abs(StdNormalCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package csrc

import (
	"fmt"
	"strings"
)

// PrintOptions controls pretty-printing.
type PrintOptions struct {
	// Indent is the indentation unit. Empty means two spaces.
	Indent string
	// DeclComments renders DeclStmt.Comment trailers (the decompiler's
	// stack-slot annotations).
	DeclComments bool
}

func (o *PrintOptions) defaults() PrintOptions {
	out := PrintOptions{Indent: "  "}
	if o == nil {
		return out
	}
	if o.Indent != "" {
		out.Indent = o.Indent
	}
	out.DeclComments = o.DeclComments
	return out
}

// printer accumulates formatted output.
type printer struct {
	sb    strings.Builder
	opts  PrintOptions
	depth int
}

// PrintFile renders a translation unit.
func PrintFile(f *File, opts *PrintOptions) string {
	p := &printer{opts: opts.defaults()}
	for i, s := range f.Structs {
		if i > 0 {
			p.sb.WriteString("\n")
		}
		p.printStruct(s)
	}
	for i, fn := range f.Functions {
		if i > 0 || len(f.Structs) > 0 {
			p.sb.WriteString("\n")
		}
		p.printFunction(fn)
	}
	return p.sb.String()
}

// PrintFunction renders a single function definition.
func PrintFunction(fn *Function, opts *PrintOptions) string {
	p := &printer{opts: opts.defaults()}
	p.printFunction(fn)
	return p.sb.String()
}

// PrintStmt renders a statement at top level.
func PrintStmt(s Stmt, opts *PrintOptions) string {
	p := &printer{opts: opts.defaults()}
	p.printStmt(s)
	return p.sb.String()
}

// PrintExpr renders an expression.
func PrintExpr(e Expr) string {
	p := &printer{opts: (&PrintOptions{}).defaults()}
	return p.expr(e, 0)
}

func (p *printer) indent() {
	for i := 0; i < p.depth; i++ {
		p.sb.WriteString(p.opts.Indent)
	}
}

func (p *printer) line(format string, args ...any) {
	p.indent()
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteString("\n")
}

func (p *printer) printStruct(s *StructDef) {
	p.line("struct %s {", s.Name)
	p.depth++
	for _, f := range s.Fields {
		p.line("%s;", declString(f.Type, f.Name))
	}
	p.depth--
	p.line("};")
}

// declString renders "type name", handling function-pointer declarators.
func declString(t *Type, name string) string {
	if t != nil && t.Kind == TypeFunc {
		parts := make([]string, len(t.Params))
		for i, pt := range t.Params {
			parts[i] = pt.String()
		}
		return fmt.Sprintf("%s (*%s)(%s)", t.Ret.String(), name, strings.Join(parts, ", "))
	}
	ts := t.String()
	if strings.HasSuffix(ts, "*") {
		return ts + name
	}
	return ts + " " + name
}

func (p *printer) printFunction(fn *Function) {
	params := make([]string, len(fn.Params))
	for i, pr := range fn.Params {
		params[i] = declString(pr.Type, pr.Name)
	}
	ret := fn.Ret.String()
	sig := ret
	if !strings.HasSuffix(sig, "*") {
		sig += " "
	}
	if fn.CallConv != "" {
		sig += fn.CallConv + " "
	}
	sig += fn.Name
	paramList := strings.Join(params, ", ")
	if paramList == "" {
		paramList = "void"
	}
	p.line("%s(%s) {", sig, paramList)
	p.depth++
	for _, s := range fn.Body.Stmts {
		p.printStmt(s)
	}
	p.depth--
	p.line("}")
}

func (p *printer) printStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		p.line("{")
		p.depth++
		for _, inner := range st.Stmts {
			p.printStmt(inner)
		}
		p.depth--
		p.line("}")
	case *DeclStmt:
		text := declString(st.Type, st.Name)
		if st.Init != nil {
			text += " = " + p.expr(st.Init, 1)
		}
		text += ";"
		if p.opts.DeclComments && st.Comment != "" {
			text += " // " + st.Comment
		}
		p.line("%s", text)
	case *ExprStmt:
		p.line("%s;", p.expr(st.X, 0))
	case *If:
		p.line("if ( %s ) {", p.expr(st.Cond, 0))
		p.depth++
		p.printStmtsOf(st.Then)
		p.depth--
		if st.Else != nil {
			if elseIf, ok := st.Else.(*If); ok {
				p.indent()
				p.sb.WriteString("} else ")
				p.printElseIfChain(elseIf)
				return
			}
			p.line("} else {")
			p.depth++
			p.printStmtsOf(st.Else)
			p.depth--
		}
		p.line("}")
	case *While:
		p.line("while ( %s ) {", p.expr(st.Cond, 0))
		p.depth++
		p.printStmtsOf(st.Body)
		p.depth--
		p.line("}")
	case *For:
		init, cond, post := "", "", ""
		switch is := st.Init.(type) {
		case *DeclStmt:
			init = declString(is.Type, is.Name)
			if is.Init != nil {
				init += " = " + p.expr(is.Init, 1)
			}
		case *ExprStmt:
			init = p.expr(is.X, 0)
		}
		if st.Cond != nil {
			cond = p.expr(st.Cond, 0)
		}
		if st.Post != nil {
			post = p.expr(st.Post, 0)
		}
		p.line("for ( %s; %s; %s ) {", init, cond, post)
		p.depth++
		p.printStmtsOf(st.Body)
		p.depth--
		p.line("}")
	case *DoWhile:
		p.line("do {")
		p.depth++
		p.printStmtsOf(st.Body)
		p.depth--
		p.line("} while ( %s );", p.expr(st.Cond, 0))
	case *Switch:
		p.line("switch ( %s ) {", p.expr(st.Tag, 0))
		p.depth++
		for _, c := range st.Cases {
			if c.Value == nil {
				p.line("default:")
			} else {
				p.line("case %s:", p.expr(c.Value, 0))
			}
			p.depth++
			for _, inner := range c.Stmts {
				p.printStmt(inner)
			}
			p.line("break;")
			p.depth--
		}
		p.depth--
		p.line("}")
	case *LineComment:
		p.line("// %s", st.Text)
	case *Return:
		if st.X == nil {
			p.line("return;")
		} else {
			p.line("return %s;", p.expr(st.X, 0))
		}
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	default:
		p.line("/* unknown statement %T */", s)
	}
}

// printElseIfChain continues an `} else if (...) {` chain without extra
// nesting.
func (p *printer) printElseIfChain(st *If) {
	fmt.Fprintf(&p.sb, "if ( %s ) {\n", p.expr(st.Cond, 0))
	p.depth++
	p.printStmtsOf(st.Then)
	p.depth--
	if st.Else != nil {
		if elseIf, ok := st.Else.(*If); ok {
			p.indent()
			p.sb.WriteString("} else ")
			p.printElseIfChain(elseIf)
			return
		}
		p.line("} else {")
		p.depth++
		p.printStmtsOf(st.Else)
		p.depth--
	}
	p.line("}")
}

// printStmtsOf flattens a Block body one level (brace style), printing
// other statements as-is.
func (p *printer) printStmtsOf(s Stmt) {
	if b, ok := s.(*Block); ok {
		for _, inner := range b.Stmts {
			p.printStmt(inner)
		}
		return
	}
	p.printStmt(s)
}

// Expression precedence levels for parenthesization decisions. Mirrors
// binPrec with extra levels for assignment (lowest) and unary/postfix
// (highest).
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *Assign:
		return 0
	case *Ternary:
		return 1
	case *Binary:
		return 1 + binPrec[x.Op]
	case *Cast, *Unary, *SizeofType:
		return 20
	case *Postfix, *Call, *Index, *Member:
		return 30
	default:
		return 40
	}
}

// expr renders e, parenthesizing when its precedence is below min.
func (p *printer) expr(e Expr, minPrec int) string {
	prec := exprPrec(e)
	s := p.exprRaw(e)
	if prec < minPrec {
		return "(" + s + ")"
	}
	return s
}

func (p *printer) exprRaw(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return x.Text
	case *StrLit:
		return "\"" + x.Value + "\""
	case *CharLit:
		return "'" + x.Value + "'"
	case *Unary:
		operand := p.expr(x.X, 20)
		if x.Op == "-" || x.Op == "--" {
			// Avoid "--x" when negating a negative literal.
			if strings.HasPrefix(operand, "-") {
				operand = " " + operand
			}
		}
		return x.Op + operand
	case *Postfix:
		return p.expr(x.X, 30) + x.Op
	case *Binary:
		prec := 1 + binPrec[x.Op]
		return p.expr(x.L, prec) + " " + x.Op + " " + p.expr(x.R, prec+1)
	case *Assign:
		return p.expr(x.L, 1) + " " + x.Op + " " + p.expr(x.R, 0)
	case *Ternary:
		return p.expr(x.Cond, 2) + " ? " + p.expr(x.Then, 0) + " : " + p.expr(x.Else, 1)
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = p.expr(a, 1)
		}
		fun := p.expr(x.Fun, 30)
		if _, isIdent := x.Fun.(*Ident); !isIdent {
			fun = "(" + p.expr(x.Fun, 0) + ")"
		}
		return fun + "(" + strings.Join(args, ", ") + ")"
	case *Index:
		return p.expr(x.X, 30) + "[" + p.expr(x.I, 0) + "]"
	case *Member:
		op := "."
		if x.Arrow {
			op = "->"
		}
		return p.expr(x.X, 30) + op + x.Name
	case *Cast:
		return "(" + x.To.String() + ")" + p.expr(x.X, 20)
	case *SizeofType:
		return "sizeof(" + x.T.String() + ")"
	default:
		return fmt.Sprintf("/* unknown expr %T */", e)
	}
}
